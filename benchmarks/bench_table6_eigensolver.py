"""Table 6: ISDA eigensolver with DGEMM vs DGEFMM (real wall clock)."""

from benchmarks.conftest import emit
from repro.harness import experiments as E
from repro.utils.tables import format_table


def test_table6_eigensolver(benchmark):
    d = benchmark.pedantic(
        lambda: E.table6_eigensolver(n=256, base_size=32),
        rounds=1, iterations=1,
    )
    emit(
        f"Table 6: ISDA eigensolver, n={d['n']} (paper: n=1000, RS/6000)",
        format_table(
            ["", "using DGEMM", "using DGEFMM", "paper DGEMM",
             "paper DGEFMM"],
            [
                ("Total time (s)", f"{d['dgemm']['total_s']:.2f}",
                 f"{d['dgefmm']['total_s']:.2f}", "1168", "974"),
                ("MM time (s)", f"{d['dgemm']['mm_s']:.2f}",
                 f"{d['dgefmm']['mm_s']:.2f}", "1030", "812"),
            ],
        )
        + f"\nMM-time ratio {d['mm_ratio']:.3f} (paper 0.788); "
        f"multiply-flop ratio {d['mul_flop_ratio']:.3f}",
    )
    # correctness is identical under the swap
    assert d["dgemm"]["residual"] < 1e-7
    assert d["dgefmm"]["residual"] < 1e-7
    # the renaming deterministically removes multiply work (the source
    # of the paper's ~20 % MM-time saving; wall seconds at this scaled
    # order are too noisy to gate CI on, so they are reported only)
    assert d["mul_flop_ratio"] < 0.95
    # MM is a large share of total time; at the paper's n=1000 it is 88%,
    # at this scaled-down order the O(n^3)-but-smaller-constant QR/Jacobi
    # stages weigh more, so only a floor is asserted
    assert d["dgemm"]["mm_s"] / d["dgemm"]["total_s"] > 0.25
