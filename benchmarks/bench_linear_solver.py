"""Linear-solver bench (the paper's reference [3] use case).

Blocked LU where the trailing-update GEMM is swapped DGEMM <-> DGEFMM;
multiply-flop reduction is asserted (deterministic), wall seconds are
reported.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.blas.level3 import dgemm
from repro.context import ExecutionContext
from repro.core.cutoff import SimpleCutoff
from repro.core.dgefmm import dgefmm
from repro.linalg import getrf, lu_reconstruct
from repro.utils.matrixgen import random_matrix


def run(n=768, block=192):
    a = random_matrix(n, n, seed=0) + n * np.eye(n)
    out = {}
    for kind in ("dgemm", "dgefmm"):
        ctx = ExecutionContext()
        if kind == "dgemm":
            def gemm(aa, bb, cc, alpha=1.0, beta=0.0):
                dgemm(aa, bb, cc, alpha, beta, ctx=ctx)
        else:
            crit = SimpleCutoff(64)

            def gemm(aa, bb, cc, alpha=1.0, beta=0.0):
                dgefmm(aa, bb, cc, alpha, beta, cutoff=crit, ctx=ctx)

        import time

        t0 = time.perf_counter()
        lu, piv = getrf(a, gemm, block=block)
        dt = time.perf_counter() - t0
        p, l, u = lu_reconstruct(lu, piv)
        resid = float(np.max(np.abs(p @ a - l @ u)))
        out[kind] = {"seconds": dt, "mul_flops": ctx.mul_flops,
                     "residual": resid}
    return out


def test_lu_gemm_swap(benchmark):
    d = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Linear solver (blocked LU, n=768, panel 192): GEMM swap",
        "\n".join(
            f"  {k}: {v['seconds']:.2f} s, {v['mul_flops'] / 1e9:.3f} G "
            f"update multiplies, residual {v['residual']:.2e}"
            for k, v in d.items()
        ),
    )
    assert d["dgemm"]["residual"] < 1e-9
    assert d["dgefmm"]["residual"] < 1e-9
    # Strassen removes multiply work from the updates deterministically
    assert d["dgefmm"]["mul_flops"] < 0.97 * d["dgemm"]["mul_flops"]
