"""Autotuning bench: the closed loop's two numbers that matter.

1. **Predictor error** — the Section 3.4 crossover measured on this
   host with the calibration timers, next to the cost-model ladder's
   predictions of the same experiment.  The models' crossover is the
   quantity the whole offline methodology hangs on; the tuner exists
   precisely because this error is not zero, and ``BENCH_tune.json``
   tracks it instead of assuming it.

2. **Tuned-vs-default serving throughput** — ``tune_class`` on one
   signature class under a short budget, the winner persisted and
   hot-loaded into a ``GemmService`` through the ``profiles`` store,
   then the same burst served with and without the profile.  The ratio
   is the end-to-end value of closing the loop.

Acceptance: the tuned service must not lose to the default one (the
tuner's floor is the default config, so a regression here means the
serving integration — not the search — is broken), and every tuned
response stays bit-identical to direct dgefmm under the tuned config.
"""

import time

import numpy as np

from benchmarks.conftest import emit, emit_json
from repro.core.dgefmm import dgefmm
from repro.plan import PlanCache
from repro.serve import GemmService
from repro.tune import ProfileStore, measure_crossover, tune_class

ORDER = 200
N_REQUESTS = 16
BUDGET_S = 20.0


def _requests(n=N_REQUESTS, order=ORDER, seed=0):
    rng = np.random.default_rng(seed)
    return [(np.asfortranarray(rng.standard_normal((order, order))),
             np.asfortranarray(rng.standard_normal((order, order))))
            for _ in range(n)]


def _serve_burst(reqs, store=None):
    kwargs = {"profiles": store} if store is not None else {}
    with GemmService(workers=1, capacity=4 * len(reqs), **kwargs) as svc:
        t0 = time.perf_counter()
        futs = [svc.submit(a, b) for a, b in reqs]
        outs = [f.result(timeout=120.0) for f in futs]
        dt = time.perf_counter() - t0
        stats = svc.stats()
    return dt, outs, stats


def test_tune_loop(benchmark, tmp_path):
    """Measure the predictor, tune one class, serve through the swap."""
    # -- 1. measured vs predicted crossover ---------------------------- #
    crossover = measure_crossover(lo=64, hi=320, step=64, repeats=1)

    # -- 2. tune one signature class under budget ---------------------- #
    prof = benchmark.pedantic(
        lambda: tune_class(ORDER, ORDER, ORDER, budget_s=BUDGET_S),
        rounds=1, iterations=1,
    )
    store = ProfileStore(str(tmp_path))
    store.put(prof)
    store.save()

    # -- 3. tuned vs default serving throughput ------------------------ #
    reqs = _requests()
    t_default, _, _ = _serve_burst(reqs)
    swapped = ProfileStore(str(tmp_path))
    swapped.load()
    t_tuned, outs, stats = _serve_burst(reqs, store=swapped)

    # bit-exactness of every tuned response vs direct dgefmm
    cfg = prof.to_config()
    cache = PlanCache(max_plans=8)
    exact = 0
    for (a, b), got in zip(reqs, outs):
        want = np.zeros((ORDER, ORDER), order="F")
        dgefmm(a, b, want, cutoff=cfg.cutoff, scheme=cfg.scheme,
               peel=cfg.peel, nb=cfg.nb, backend=cfg.backend,
               plan_cache=cache, fuse=cfg.fuse)
        exact += np.array_equal(got, want)

    ratio = t_default / t_tuned
    meas = prof.measured
    rows = [
        {"stage": "crossover", **crossover},
        {"stage": "search", "profile": prof.to_json(),
         "tuned_s": meas["tuned_s"], "default_s": meas["default_s"],
         "speedup": meas["speedup"], "spent_s": meas["spent_s"]},
        {"stage": "serve",
         "n_requests": len(reqs), "order": ORDER,
         "default_total_s": t_default,
         "tuned_total_s": t_tuned,
         "default_rps": len(reqs) / t_default,
         "tuned_rps": len(reqs) / t_tuned,
         "throughput_ratio": ratio,
         "exact": exact,
         "profile_resolved": stats["counters"]["profile_resolved"]},
    ]

    pred = crossover["predicted"]
    measured = crossover["measured"]
    cross_line = (
        f"measured tau {measured['recommended']}" if measured
        else f"no measured crossover ({crossover['reason']})"
    )
    emit(
        "Autotune: predictor error and tuned-vs-default serving",
        f"crossover: {cross_line}; predicted opcount {pred['opcount']}, "
        f"traffic {pred['traffic']}\n"
        f"tuned config: {prof.scheme}/{prof.peel}, {prof.cutoff!r}, "
        f"nb={prof.nb}, fuse={prof.fuse} "
        f"(probe speedup {meas['speedup']:.2f}x in {meas['spent_s']:.1f} s)\n"
        f"serving {len(reqs)} x {ORDER}^3: default "
        f"{len(reqs) / t_default:.1f} req/s, tuned "
        f"{len(reqs) / t_tuned:.1f} req/s ({ratio:.2f}x), "
        f"{exact}/{len(reqs)} bit-identical",
    )
    emit_json(
        "tune",
        {"order": ORDER, "n_requests": len(reqs), "budget_s": BUDGET_S,
         "scan": crossover["scan"]},
        rows,
        throughput_ratio=ratio,
        predictor_error=crossover["error"],
    )

    # acceptance: zero divergence, profile actually governed the burst,
    # and the tuned service does not lose to the default one
    assert exact == len(reqs)
    assert stats["counters"]["profile_resolved"] == len(reqs)
    assert ratio >= 0.9, (
        f"tuned serving {ratio:.2f}x the default — the swapped profile "
        f"made serving slower than its own measured floor"
    )
