"""Section 2 analysis: operation-count model headline numbers."""

import pytest

from benchmarks.conftest import emit
from repro.harness import experiments as E


def test_section2_opcounts(benchmark):
    d = benchmark(E.section2_opcounts)
    emit(
        "Section 2 operation-count analysis",
        "\n".join(
            f"  {k}: {v}" for k, v in d.items() if k != "paper"
        ),
    )
    assert d["theoretical_square_cutoff"] == 12
    assert d["cutoff_improvement_256"] == pytest.approx(0.382, abs=0.002)
    assert d["winograd_improvement_full"] == pytest.approx(0.143, abs=0.001)
    assert d["winograd_improvement_m7"] == pytest.approx(0.0526, abs=0.0005)
    assert d["winograd_improvement_m12"] == pytest.approx(0.0345, abs=0.0005)
