"""Section 2 analysis: operation-count model headline numbers,
extended with the per-scheme executed-schedule counts of the registry
families (the ⟨m̄,k̄,n̄;R⟩ generalization)."""

import pytest

from benchmarks.conftest import emit, emit_json
from repro.core.cutoff import DepthCutoff
from repro.core.opcount import scheme_ops, standard_ops
from repro.core.schemes import LEVELS, SCHEME_DISPATCH, SCHEME_NAMES
from repro.harness import experiments as E
from repro.utils.tables import format_table


def test_section2_opcounts(benchmark):
    d = benchmark(E.section2_opcounts)
    emit(
        "Section 2 operation-count analysis",
        "\n".join(
            f"  {k}: {v}" for k, v in d.items() if k != "paper"
        ),
    )
    assert d["theoretical_square_cutoff"] == 12
    assert d["cutoff_improvement_256"] == pytest.approx(0.382, abs=0.002)
    assert d["winograd_improvement_full"] == pytest.approx(0.143, abs=0.001)
    assert d["winograd_improvement_m7"] == pytest.approx(0.0526, abs=0.0005)
    assert d["winograd_improvement_m12"] == pytest.approx(0.0345, abs=0.0005)

    # per-scheme executed-schedule counts at two recursion depths, on a
    # divisor-exact order per family (2^d*q for the 2x2 schemes, 3^d*q
    # for Laderman) — the ratio to the standard algorithm exposes each
    # scheme's multiply saving (7/8 per 2x2 level, 23/27 per 3x3 level)
    rows = []
    for scheme in SCHEME_NAMES:
        (lvl_b0, _), _ = SCHEME_DISPATCH[scheme]
        r = LEVELS[lvl_b0]
        base = 2 if r != 23 else 3
        for depth in (1, 2):
            size = base**depth * 12
            std = standard_ops(size, size, size)
            for beta_zero in (True, False):
                ops = scheme_ops(size, size, size, scheme,
                                 DepthCutoff(depth), beta_zero=beta_zero)
                rows.append({
                    "scheme": scheme, "r": r, "depth": depth,
                    "order": size, "beta_zero": beta_zero,
                    "ops": ops, "vs_standard": ops / std,
                })
    emit(
        "Executed-schedule op counts per registry scheme",
        format_table(
            ["scheme", "R", "depth", "order", "beta=0", "ops",
             "vs standard"],
            [
                (w["scheme"], str(w["r"]), str(w["depth"]),
                 str(w["order"]), str(w["beta_zero"]),
                 f"{w['ops']:.3e}", f"{w['vs_standard']:.4f}")
                for w in rows
            ],
        ),
    )
    emit_json("opcount", {"depths": [1, 2], "q": 12}, rows,
              section2={k: v for k, v in d.items() if k != "paper"})

    by = {(w["scheme"], w["depth"], w["beta_zero"]): w for w in rows}
    # every scheme's depth-2 recursion beats the standard multiply count
    for scheme in SCHEME_NAMES:
        assert by[(scheme, 2, True)]["vs_standard"] < 1.0, scheme
    # Laderman saves (23/27)^d multiplies, less than 2x2's (7/8)^d
    assert by[("laderman", 2, True)]["vs_standard"] > \
        by[("auto", 2, True)]["vs_standard"]
    # BDPZ pays extra additions versus the two-temporary auto schedule
    # in exchange for its flat 2/3 m^2 workspace bound
    assert by[("bdpz", 2, False)]["ops"] >= by[("auto", 2, False)]["ops"]
