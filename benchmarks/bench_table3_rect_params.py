"""Table 3: rectangular cutoff parameters (long-thin crossovers)."""

from benchmarks.conftest import emit
from repro.harness import experiments as E
from repro.utils.tables import format_table


def test_table3_rect_params(benchmark):
    rows = benchmark(E.table3_rect_params)
    emit(
        "Table 3: rectangular cutoff parameters",
        format_table(
            ["machine", "tau_m", "tau_k", "tau_n", "sum", "paper",
             "paper sum"],
            [
                (r["machine"], r["tau_m"], r["tau_k"], r["tau_n"],
                 r["sum"], str(r["paper"]), r["paper_sum"])
                for r in rows
            ],
        ),
    )
    for r in rows:
        pm, pk, pn = r["paper"]
        assert abs(r["tau_m"] - pm) <= 8
        assert abs(r["tau_k"] - pk) <= 8
        assert abs(r["tau_n"] - pn) <= 8
    # the paper's asymmetry observations survive:
    by = {r["machine"]: r for r in rows}
    # RS/6000: sum differs from tau=199 by ~100 (DGEMM long-thin differs)
    assert by["RS6000"]["sum"] > 199 + 60
    # DGEMM performance is not symmetric in the dimensions
    assert by["RS6000"]["tau_k"] > by["RS6000"]["tau_m"]
    assert by["C90"]["tau_m"] > by["C90"]["tau_n"]
