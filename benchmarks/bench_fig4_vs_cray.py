"""Figure 4: DGEFMM / CRAY SGEMMS ratio on the C90."""

from benchmarks.conftest import emit
from repro.harness import experiments as E


def test_fig4_vs_cray(benchmark):
    d = benchmark.pedantic(
        lambda: E.fig4_vs_cray(step=25), rounds=1, iterations=1
    )
    pts = d["beta0"]["points"]
    emit(
        "Figure 4: DGEFMM / CRAY SGEMMS, C90",
        f"beta=0 average {d['beta0']['average']:.4f} (paper 1.066); "
        f"general average {d['general']['average']:.4f} (paper 1.052)",
    )
    assert abs(d["beta0"]["average"] - 1.066) < 0.025
    # DGEFMM does relatively better in the general case (paper's note)
    assert d["general"]["average"] < d["beta0"]["average"]
    assert all(0.8 < r < 1.3 for _, r in pts)
