"""Figure 5: DGEFMM / DGEMMW on square problems, RS/6000."""

from benchmarks.conftest import emit
from repro.harness import experiments as E


def test_fig5_vs_dgemmw(benchmark):
    d = benchmark.pedantic(
        lambda: E.fig5_vs_dgemmw(step=25), rounds=1, iterations=1
    )
    emit(
        "Figure 5: DGEFMM / DGEMMW, square, RS/6000",
        f"general average {d['general']['average']:.4f} (paper 0.991); "
        f"beta=0 average {d['beta0']['average']:.4f} (paper 1.0089)",
    )
    # both codes are portable Winograd implementations: near parity,
    # with DGEFMM ahead in the general case (STRASSEN2 avoids DGEMMW's
    # m*n product buffer and extra pass)
    assert d["general"]["average"] < 1.0
    assert d["general"]["average"] > 0.9
    assert abs(d["beta0"]["average"] - 1.0) < 0.05
    assert d["general"]["average"] < d["beta0"]["average"]
