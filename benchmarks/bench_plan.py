"""Plan-compiler bench: warm-cache replay vs the recursive driver.

The plan subsystem's acceptance target is mechanical: with a warm
:class:`PlanCache` and a warm :class:`WorkspacePool`, repeated
same-signature DGEFMM calls must (a) allocate nothing fresh and (b) cut
the *non-kernel overhead* — wall time above the pure kernel-sequence
floor — by at least 20% versus the recursive driver.

The floor is measured honestly: the compiled op list is replayed over
operand views resolved *outside* the timed region, which is exactly the
kernel call sequence both paths execute, with zero planning, zero
allocation, and zero view construction around it.  Whatever either
driver spends above that floor is its per-call overhead.
"""

import time

import numpy as np

from benchmarks.conftest import emit, emit_json
from repro.context import ExecutionContext
from repro.core.config import GemmConfig
from repro.core.cutoff import SimpleCutoff
from repro.core.dgefmm import dgefmm
from repro.core.pool import WorkspacePool, workspace_bound_bytes
from repro.plan import PlanCache
from repro.plan.compiler import compile_plan, signature_for
from repro.plan.executor import _aligned_buffer, _resolve, _run_ops


def _best(fn, n=7):
    ts = []
    for _ in range(n):
        t0 = time.perf_counter()
        fn()
        ts.append(time.perf_counter() - t0)
    return min(ts)


def test_plan_overhead(benchmark):
    """Warm-cache planned replay vs recursive walk, m=k=n=192, tau=24.

    A deep recursion over small base blocks maximizes the per-call
    planning share (cutoff tests, peeling logic, workspace frames,
    closure and event construction), which is the regime the plan
    subsystem exists for.
    """
    m = k = n = 192
    alpha, beta = 1.0, 0.0
    crit = SimpleCutoff(24)
    rng = np.random.default_rng(0)
    a = np.asfortranarray(rng.standard_normal((m, k)))
    b = np.asfortranarray(rng.standard_normal((k, n)))
    c_rec = np.zeros((m, n), order="F")
    c_pln = np.zeros((m, n), order="F")

    pool = WorkspacePool(workspace_bound_bytes(m, k, n, "strassen1"))
    cache = PlanCache()

    def recursive():
        dgefmm(a, b, c_rec, alpha, beta, cutoff=crit, pool=pool)

    def planned():
        dgefmm(a, b, c_pln, alpha, beta, cutoff=crit, pool=pool,
               plan_cache=cache)

    recursive()
    planned()  # warm-up: compiles the plan, grows the pooled arena
    np.testing.assert_array_equal(c_pln, c_rec)

    # the zero-allocation claim: nothing fresh once cache and pool are warm
    warm_bytes = pool.new_buffer_bytes
    for _ in range(3):
        planned()
    assert pool.new_buffer_bytes == warm_bytes
    assert cache.stats()["misses"] == 1

    sig = signature_for("serial", m, k, n, False, False, False,
                        beta == 0.0, "float64", GemmConfig(cutoff=crit))
    plan = cache.get_or_compile(sig)  # a hit: planned() compiled it
    assert cache.stats()["misses"] == 1 and not plan.branches

    # kernel-sequence floor: same ops, operands pre-resolved
    buf = _aligned_buffer(plan.arena_bytes)
    c_floor = np.zeros((m, n), order="F")
    views = _resolve(plan, a, b, c_floor, buf)
    st = (alpha, -alpha, beta, -beta)
    ctx = ExecutionContext()

    def floor():
        _run_ops(plan.ops_quiet, views, st, ctx, plan.nb, plan.backend)
        if plan.epilogue_quiet:
            _run_ops(plan.epilogue_quiet, views, st, ctx, plan.nb,
                     plan.backend)

    t_floor = _best(floor)
    t_rec = _best(recursive)
    t_pln = benchmark.pedantic(lambda: _best(planned),
                               rounds=1, iterations=1)
    over_rec = t_rec - t_floor
    over_pln = t_pln - t_floor
    reduction = 1.0 - over_pln / over_rec

    emit(
        "Plan replay vs recursive DGEFMM, m=192, tau=24",
        f"kernel floor {t_floor * 1e3:.2f} ms/call\n"
        f"recursive    {t_rec * 1e3:.2f} ms/call "
        f"({over_rec * 1e3:.2f} ms non-kernel overhead)\n"
        f"planned warm {t_pln * 1e3:.2f} ms/call "
        f"({over_pln * 1e3:.2f} ms non-kernel overhead)\n"
        f"non-kernel overhead reduction {reduction:.0%} "
        f"(acceptance floor 20%); fresh bytes after warm-up: "
        f"{pool.new_buffer_bytes - warm_bytes}",
    )
    emit_json(
        "plan_overhead",
        {"m": m, "k": k, "n": n, "alpha": alpha, "beta": beta,
         "cutoff": crit.tau, "repeats": 7},
        [
            {"path": "kernel_floor", "best_s": t_floor, "overhead_s": 0.0},
            {"path": "recursive", "best_s": t_rec, "overhead_s": over_rec},
            {"path": "planned_warm", "best_s": t_pln,
             "overhead_s": over_pln},
        ],
        summary={"overhead_reduction": reduction,
                 "fresh_bytes_after_warmup": pool.new_buffer_bytes
                 - warm_bytes,
                 "cache": cache.stats()},
    )
    # the acceptance criterion: planned replay sheds >= 20% of the
    # recursive driver's non-kernel overhead
    assert reduction >= 0.20, (t_floor, t_rec, t_pln)


def test_plan_cache_amortization(benchmark):
    """Compile-once economics over a mixed-shape workload.

    Times the first (compiling) pass against later warm passes over the
    same shape mix through one bounded cache, and reports how plan bytes
    and evictions behave when the bound is deliberately small.
    """
    crit = SimpleCutoff(16)
    shapes = [(64, 64, 64), (65, 63, 67), (96, 48, 80), (33, 97, 41)]
    rng = np.random.default_rng(1)
    work = []
    for mm, kk, nn in shapes:
        work.append((
            np.asfortranarray(rng.standard_normal((mm, kk))),
            np.asfortranarray(rng.standard_normal((kk, nn))),
            np.zeros((mm, nn), order="F"),
        ))
    cache = PlanCache(max_plans=len(shapes))

    def sweep():
        for a, b, c in work:
            dgefmm(a, b, c, cutoff=crit, plan_cache=cache)

    t_cold = _best(sweep, 1)        # every shape compiles
    t_warm = benchmark.pedantic(lambda: _best(sweep, 5),
                                rounds=1, iterations=1)
    stats = cache.stats()
    emit(
        "Plan cache amortization over a 4-shape workload",
        f"cold sweep (compiles) {t_cold * 1e3:.2f} ms, warm sweep "
        f"{t_warm * 1e3:.2f} ms ({t_cold / t_warm:.1f}x)\n"
        f"cache: {stats['plans']} plans, {stats['bytes']:,} B, "
        f"{stats['hits']} hits, {stats['misses']} misses, "
        f"{stats['evictions']} evictions",
    )
    assert stats["misses"] == len(shapes)
    assert stats["evictions"] == 0
    assert t_warm < t_cold


def test_plan_fused_replay(benchmark):
    """Fused replay vs interpreted replay, warm cache, m=k=n=192.

    The fusion pass (:mod:`repro.plan.fuse`) exists to shed the
    interpreted executor's per-op Python dispatch: elementwise chains
    run as one inline loop, partnered base-case products execute as one
    batched ``np.matmul`` over packed stacks, and lone products as one
    strided ``np.matmul`` each.  Acceptance asks >= 2x warm-replay
    throughput on cache-hot signatures; the assert below uses 1.6x to
    keep headroom for CI-host jitter (measured locally: ~2.1x for both
    beta classes — recorded in BENCH_plan_fused.json).
    """
    m = k = n = 192
    crit = SimpleCutoff(24)
    rng = np.random.default_rng(3)
    a = np.asfortranarray(rng.standard_normal((m, k)))
    b = np.asfortranarray(rng.standard_normal((k, n)))
    c0 = np.asfortranarray(rng.standard_normal((m, n)))

    pool = WorkspacePool(workspace_bound_bytes(m, k, n, "strassen1"))
    cache = PlanCache()
    rows = []
    speedups = {}
    for beta in (0.0, 0.5):
        c_int = c0.copy(order="F")
        c_fus = c0.copy(order="F")

        def interpreted():
            dgefmm(a, b, c_int, 1.0, beta, cutoff=crit, pool=pool,
                   plan_cache=cache)

        def fused():
            dgefmm(a, b, c_fus, 1.0, beta, cutoff=crit, pool=pool,
                   plan_cache=cache, fuse=True)

        interpreted()
        fused()     # warm-up: compiles both plans, grows the arena
        # the documented tolerance: batched/direct matmul accumulation
        # order differs from the tiled substrate kernel — never exact,
        # always within the oracle's float64 tolerance
        scale = max(1.0, float(np.max(np.abs(c_int))))
        assert float(np.max(np.abs(c_fus - c_int))) <= 1e-9 * scale

        t_int = _best(interpreted)
        t_fus = _best(fused)
        speedups[beta] = t_int / t_fus
        rows.append({"beta": beta, "path": "interpreted_warm",
                     "best_s": t_int})
        rows.append({"beta": beta, "path": "fused_warm", "best_s": t_fus})

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    sig = signature_for("serial", m, k, n, False, False, False, True,
                        "float64", GemmConfig(cutoff=crit, fuse=True))
    fp = cache.peek(sig).fused
    emit(
        "Fused vs interpreted plan replay, m=192, tau=24",
        "\n".join(
            f"beta={beta}: interpreted "
            f"{rows[2 * i]['best_s'] * 1e3:.2f} ms, fused "
            f"{rows[2 * i + 1]['best_s'] * 1e3:.2f} ms "
            f"-> {speedups[beta]:.2f}x"
            for i, beta in enumerate((0.0, 0.5))
        ) + f"\nfused program: {fp!r}",
    )
    emit_json(
        "plan_fused",
        {"m": m, "k": k, "n": n, "cutoff": crit.tau, "repeats": 7,
         "assert_floor": 1.6},
        rows,
        summary={
            "speedup_beta0": speedups[0.0],
            "speedup_beta": speedups[0.5],
            "steps": len(fp.steps),
            "batched_groups": fp.n_batched,
            "max_batch_depth": fp.max_batch,
            "direct_products": fp.n_direct,
            "pack_bytes": fp.pack_bytes,
        },
    )
    for beta, s in speedups.items():
        assert s >= 1.6, (
            f"fused replay only {s:.2f}x interpreted at beta={beta} "
            f"(acceptance target 2x, assert floor 1.6x)"
        )


#: pre-refactor reference times (seconds) for the traversal-core
#: rewrite, measured on this bench's fixed workload (m=k=n=192,
#: tau=24) immediately before the single-decide refactor landed.  The
#: guard allows a generous 3x over them: it exists to catch an
#: accidental complexity-class or per-node-cost blowup in the shared
#: decide() kernel, not to pin CI-host jitter.
_PRE_REFACTOR_S = {
    "compile_serial": 4.77e-3,
    "compile_parallel": 6.08e-3,
    "replay_warm": 10.38e-3,
    "recursive": 11.57e-3,
}
_GUARD_SLACK = 3.0


def test_traversal_refactor_guard(benchmark):
    """Compile time and warm-replay overhead vs pre-refactor numbers.

    The single-traversal-core refactor routed every walker through one
    decide() kernel; this guard re-runs the plan bench's workload and
    asserts none of compile (serial + parallel mirror), warm replay, or
    the eager recursive walk regressed past 3x the numbers recorded
    before the refactor.
    """
    m = k = n = 192
    crit = SimpleCutoff(24)
    cfg = GemmConfig(cutoff=crit)
    sig_s = signature_for("serial", m, k, n, False, False, False, True,
                          "float64", cfg)
    sig_p = signature_for("parallel", m, k, n, False, False, False,
                          True, "float64", cfg, 1)

    rng = np.random.default_rng(2)
    a = np.asfortranarray(rng.standard_normal((m, k)))
    b = np.asfortranarray(rng.standard_normal((k, n)))
    c = np.zeros((m, n), order="F")
    pool = WorkspacePool(workspace_bound_bytes(m, k, n, "strassen1"))
    cache = PlanCache()

    def replay():
        dgefmm(a, b, c, cutoff=crit, pool=pool, plan_cache=cache)

    def recursive():
        dgefmm(a, b, c, cutoff=crit, pool=pool)

    replay()  # warm the cache and the pooled arena
    measured = {
        "compile_serial": _best(lambda: compile_plan(sig_s), 3),
        "compile_parallel": _best(lambda: compile_plan(sig_p), 3),
        "replay_warm": _best(replay),
        "recursive": benchmark.pedantic(lambda: _best(recursive),
                                        rounds=1, iterations=1),
    }

    lines = []
    for key, t in measured.items():
        ref = _PRE_REFACTOR_S[key]
        lines.append(f"{key:<16} {t * 1e3:7.2f} ms "
                     f"(pre-refactor {ref * 1e3:.2f} ms, "
                     f"{t / ref:.2f}x)")
    emit("Traversal-core refactor regression guard, m=192, tau=24",
         "\n".join(lines))
    emit_json(
        "traversal_refactor_guard",
        {"m": m, "k": k, "n": n, "cutoff": crit.tau,
         "slack": _GUARD_SLACK},
        [{"path": key, "best_s": t,
          "pre_refactor_s": _PRE_REFACTOR_S[key]}
         for key, t in measured.items()],
    )
    for key, t in measured.items():
        ref = _PRE_REFACTOR_S[key]
        assert t <= _GUARD_SLACK * ref, (
            f"{key} regressed: {t * 1e3:.2f} ms vs pre-refactor "
            f"{ref * 1e3:.2f} ms (allowed {_GUARD_SLACK}x)"
        )
