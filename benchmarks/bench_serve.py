"""Serving bench: micro-batched pipeline vs one-request-at-a-time.

The serving subsystem's acceptance target: a burst of small
same-signature requests through the micro-batching engine must beat the
naive one-request-at-a-time baseline (a synchronous submit-wait loop on
a ``max_batch=1`` service — every request pays the full round trip of
worker wakeup, plan fetch, arena checkout, and result wakeup) by at
least 1.2x throughput.  Small problems are the honest regime: per-call
fixed overhead is the entire difference between the two modes, and it
is exactly what batching exists to amortize.

Also reported (informationally, unasserted): the async-burst
``max_batch=1`` middle ground, tail latencies, and the batch-size
distribution, all emitted as ``BENCH_serve.json``.
"""

import time

import numpy as np

from benchmarks.conftest import emit, emit_json
from repro.core.cutoff import SimpleCutoff
from repro.serve import GemmService, run_load

N_REQUESTS = 400
ORDER = 12
CUT = SimpleCutoff(16)   # above order: every request is one base kernel


def _requests(n=N_REQUESTS, order=ORDER, seed=0):
    rng = np.random.default_rng(seed)
    return [(rng.standard_normal((order, order)),
             rng.standard_normal((order, order))) for _ in range(n)]


def _service(max_batch):
    return GemmService(workers=1, capacity=4 * N_REQUESTS,
                       max_batch=max_batch, cutoff=CUT)


def _run_sync(reqs):
    """One-request-at-a-time: submit, wait, repeat."""
    with _service(max_batch=1) as svc:
        t0 = time.perf_counter()
        for a, b in reqs:
            svc.call(a, b, timeout=60.0)
        return time.perf_counter() - t0, svc.stats()


def _run_burst(reqs, max_batch):
    """Async burst: submit everything, then drain the futures."""
    with _service(max_batch=max_batch) as svc:
        t0 = time.perf_counter()
        futs = [svc.submit(a, b) for a, b in reqs]
        for f in futs:
            f.result(timeout=60.0)
        return time.perf_counter() - t0, svc.stats()


def _best(fn, rounds=3):
    results = [fn() for _ in range(rounds)]
    return min(results, key=lambda r: r[0])


def test_microbatch_throughput(benchmark):
    """Batched burst vs sync loop on 400 tiny same-signature requests."""
    reqs = _requests()

    t_sync, st_sync = _best(lambda: _run_sync(reqs))
    t_naive, st_naive = _best(lambda: _run_burst(reqs, max_batch=1))
    t_batch, st_batch = benchmark.pedantic(
        lambda: _best(lambda: _run_burst(reqs, max_batch=32)),
        rounds=1, iterations=1,
    )

    n = len(reqs)
    rows = []
    for label, t, st in (("sync_one_at_a_time", t_sync, st_sync),
                         ("burst_unbatched", t_naive, st_naive),
                         ("burst_batched", t_batch, st_batch)):
        lat = st["histograms"]["latency_ms"]
        bat = st["histograms"]["batch_size"]
        rows.append({
            "mode": label,
            "total_s": t,
            "throughput_rps": n / t,
            "latency_p50_ms": lat["p50"],
            "latency_p99_ms": lat["p99"],
            "batches": st["counters"]["batches"],
            "batch_size_mean": bat["mean"],
            "batch_size_max": bat["max"],
        })

    speedup = t_sync / t_batch
    emit(
        "Serving: micro-batched pipeline vs one-request-at-a-time",
        "\n".join(
            f"{r['mode']:<20} {r['total_s'] * 1e3:7.1f} ms "
            f"({r['throughput_rps']:7.0f} req/s), p99 "
            f"{r['latency_p99_ms']:.2f} ms, mean batch "
            f"{r['batch_size_mean']:.1f}"
            for r in rows
        ) + f"\nbatched vs sync speedup {speedup:.2f}x",
    )
    emit_json(
        "serve",
        {"n_requests": n, "order": ORDER, "tau": CUT.tau,
         "max_batch": 32, "workers": 1},
        rows,
        speedup_batched_vs_sync=speedup,
    )

    # acceptance: batching amortizes per-request overhead >= 1.2x
    assert speedup >= 1.2, (
        f"batched throughput only {speedup:.2f}x the one-at-a-time "
        f"baseline (need >= 1.2x)"
    )
    # batching must actually have engaged
    assert rows[2]["batch_size_max"] >= 8


def test_fused_serving_throughput(benchmark):
    """Fused vs interpreted micro-batched bursts on one hot signature.

    Reuses the micro-batch burst harness with ``fuse`` on: every batch
    replays the same cache-hot fused program.  The per-request problems
    here are tiny (one base kernel each), so the plan is a single
    direct product and the measured gap is mostly dispatch — reported
    informationally; the asserted fused-replay floor lives in
    ``bench_plan.py::test_plan_fused_replay`` where the plan is deep.
    """
    reqs = _requests(n=200, order=48)

    def burst(fuse):
        with GemmService(workers=1, capacity=1024, max_batch=32,
                         cutoff=SimpleCutoff(16), fuse=fuse) as svc:
            t0 = time.perf_counter()
            futs = [svc.submit(a, b) for a, b in reqs]
            for f in futs:
                f.result(timeout=60.0)
            return time.perf_counter() - t0, svc.stats()

    t_int, _ = _best(lambda: burst(False))
    t_fus, st = benchmark.pedantic(
        lambda: _best(lambda: burst(True)), rounds=1, iterations=1,
    )
    n = len(reqs)
    emit(
        "Serving: fused vs interpreted batched bursts (order-48, tau=16)",
        f"interpreted {t_int * 1e3:7.1f} ms ({n / t_int:7.0f} req/s)\n"
        f"fused       {t_fus * 1e3:7.1f} ms ({n / t_fus:7.0f} req/s)\n"
        f"ratio {t_int / t_fus:.2f}x",
    )
    emit_json(
        "serve_fused",
        {"n_requests": n, "order": 48, "tau": 16, "max_batch": 32,
         "workers": 1},
        [{"mode": "burst_interpreted", "total_s": t_int,
          "throughput_rps": n / t_int},
         {"mode": "burst_fused", "total_s": t_fus,
          "throughput_rps": n / t_fus}],
        ratio_fused_vs_interpreted=t_int / t_fus,
    )
    # fused serving must never lose outright; the strong floor is
    # asserted on the deep-plan bench
    assert t_fus <= 1.2 * t_int
    assert st["plan_cache"]["plans"] == 1


def test_open_loop_load(benchmark):
    """Open-loop mixed-shape load: verified, with tail-latency report."""
    report = benchmark.pedantic(
        lambda: run_load(duration=2.0, rate=300, workers=2, n_shapes=6,
                         seed=1, max_dim=32),
        rounds=1, iterations=1,
    )
    svc = report["service"]
    lat = svc["histograms"]["latency_ms"]
    emit(
        "Serving: open-loop mixed-shape load (2 s at 300 req/s)",
        f"completed {report['completed']}/{report['attempts']} "
        f"({report['achieved_rate']:.0f} req/s), divergent "
        f"{report['divergent']}, errors {report['errors']}\n"
        f"latency ms: p50 {lat['p50']:.2f}, p95 {lat['p95']:.2f}, "
        f"p99 {lat['p99']:.2f}\n"
        f"plan cache hit rate {svc['plan_cache']['hit_rate']:.2f}, "
        f"pool arenas {svc['pool']['created']}",
    )
    emit_json(
        "serve_load",
        {"duration": 2.0, "rate": 300, "workers": 2, "n_shapes": 6,
         "seed": 1, "max_dim": 32},
        [report],
    )
    assert report["divergent"] == 0 and report["errors"] == 0
    assert report["completed"] >= 500
    assert svc["plan_cache"]["hit_rate"] > 0.8


def test_open_loop_load_fused(benchmark):
    """Open-loop load with fused plans: every reply is still verified.

    Same harness as :func:`test_open_loop_load` but with ``fuse=True``,
    so the loadgen checks each fused reply bit-for-bit against a fused
    reference replay.  The assertion of record is ``divergent == 0``:
    fused serving under concurrent mixed-shape load must be
    deterministic and correct, not merely fast.
    """
    report = benchmark.pedantic(
        lambda: run_load(duration=2.0, rate=300, workers=2, n_shapes=6,
                         seed=1, max_dim=32, fuse=True),
        rounds=1, iterations=1,
    )
    svc = report["service"]
    lat = svc["histograms"]["latency_ms"]
    emit(
        "Serving: fused open-loop mixed-shape load (2 s at 300 req/s)",
        f"completed {report['completed']}/{report['attempts']} "
        f"({report['achieved_rate']:.0f} req/s), divergent "
        f"{report['divergent']}, errors {report['errors']}\n"
        f"latency ms: p50 {lat['p50']:.2f}, p99 {lat['p99']:.2f}\n"
        f"plan cache hit rate {svc['plan_cache']['hit_rate']:.2f}",
    )
    emit_json(
        "serve_load_fused",
        {"duration": 2.0, "rate": 300, "workers": 2, "n_shapes": 6,
         "seed": 1, "max_dim": 32, "fuse": True},
        [report],
    )
    assert report["fuse"] is True
    assert report["divergent"] == 0 and report["errors"] == 0
    assert report["completed"] >= 500
    assert svc["plan_cache"]["hit_rate"] > 0.8
