"""Real wall-clock benchmarks of the actual kernels on this host.

These are the only benches whose *numbers* are host-dependent: they
demonstrate that the DGEFMM implementation (not just its model) beats the
standard-algorithm substrate DGEMM above the crossover, with the measured
speedup growing with size — the paper's core practical claim.
"""

import numpy as np
import pytest

from repro.blas.level3 import dgemm
from repro.core.cutoff import SimpleCutoff
from repro.core.dgefmm import dgefmm


def _mats(m):
    rng = np.random.default_rng(m)
    a = np.asfortranarray(rng.standard_normal((m, m)))
    b = np.asfortranarray(rng.standard_normal((m, m)))
    c = np.zeros((m, m), order="F")
    return a, b, c


@pytest.mark.parametrize("m", [256, 512, 768])
def test_dgemm_standard(benchmark, m):
    a, b, c = _mats(m)
    benchmark.pedantic(lambda: dgemm(a, b, c), rounds=3, iterations=1,
                       warmup_rounds=1)


@pytest.mark.parametrize("m", [256, 512, 768])
def test_dgefmm_strassen(benchmark, m):
    a, b, c = _mats(m)
    crit = SimpleCutoff(128)
    benchmark.pedantic(lambda: dgefmm(a, b, c, cutoff=crit), rounds=3,
                       iterations=1, warmup_rounds=1)


def test_strassen_beats_standard_at_768(benchmark):
    """The host crossover claim, measured head-to-head."""
    import time

    m = 768
    a, b, c = _mats(m)
    crit = SimpleCutoff(128)

    def best_of(fn, n=3):
        times = []
        for _ in range(n):
            t0 = time.perf_counter()
            fn()
            times.append(time.perf_counter() - t0)
        return min(times)

    t_std = best_of(lambda: dgemm(a, b, c))
    t_str = benchmark.pedantic(
        lambda: best_of(lambda: dgefmm(a, b, c, cutoff=crit)),
        rounds=1, iterations=1,
    )
    print(f"\nwallclock m=768: dgemm {t_std:.3f}s, dgefmm {t_str:.3f}s, "
          f"ratio {t_str / t_std:.3f}")
    assert t_str < t_std


@pytest.mark.parametrize("m", [513, 767])
def test_dgefmm_odd_sizes(benchmark, m):
    """Odd orders exercise peeling on the real code path."""
    a, b, c = _mats(m)
    crit = SimpleCutoff(128)
    result = benchmark.pedantic(
        lambda: dgefmm(a, b, c, cutoff=crit), rounds=2, iterations=1,
        warmup_rounds=1,
    )
    np.testing.assert_allclose(c, a @ b, atol=1e-8 * m)
