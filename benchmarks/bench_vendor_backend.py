"""Modern-host practicality: Strassen over a vendor (BLAS) base kernel.

The paper's question, asked thirty years later on this host: with the
base-case multiply delegated to numpy's tuned BLAS (`backend="vendor"`),
does a Strassen level still pay?  The answer depends on the host's BLAS
and threading; the bench reports the measured ratios and asserts only
correctness (vendor kernels' speed is not ours to assert).
"""

import time

import numpy as np

from benchmarks.conftest import emit
from repro.blas.level3 import dgemm
from repro.core.cutoff import SimpleCutoff
from repro.core.dgefmm import dgefmm


def best(fn, n=3):
    ts = []
    for _ in range(n):
        t0 = time.perf_counter()
        fn()
        ts.append(time.perf_counter() - t0)
    return min(ts)


def test_vendor_backend(benchmark):
    rng = np.random.default_rng(0)
    rows = []

    def run():
        for m in (1024, 1536):
            a = np.asfortranarray(rng.standard_normal((m, m)))
            b = np.asfortranarray(rng.standard_normal((m, m)))
            c_v = np.zeros((m, m), order="F")
            c_s = np.zeros((m, m), order="F")
            t_v = best(lambda: dgemm(a, b, c_v, backend="vendor"))
            crit = SimpleCutoff(m // 2 - 1)  # exactly one level
            t_s = best(
                lambda: dgefmm(a, b, c_s, cutoff=crit, backend="vendor")
            )
            np.testing.assert_allclose(c_s, c_v, atol=1e-8 * m)
            rows.append((m, t_v, t_s, t_s / t_v))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Vendor-backend: one Strassen level over numpy BLAS (this host)",
        "\n".join(
            f"  m={m}: vendor {tv:.3f} s, strassen+vendor {ts:.3f} s, "
            f"ratio {r:.3f}"
            for m, tv, ts, r in rows
        )
        + "\n  (< 1 means Strassen still pays over a tuned BLAS here)",
    )
    # correctness asserted inside run(); ratios are reported, not gated
    assert all(r > 0 for *_x, r in rows)
