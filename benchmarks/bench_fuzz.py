"""Fuzz-campaign bench: conformance throughput of the differential oracle.

Not a performance claim from the paper — a harness-health trajectory:
how many differential cases per second the oracle sustains, what the
edge-class coverage of a seeded campaign looks like, and (the part that
must never regress) that a seeded campaign reports **zero divergences**
across every execution path.  Tracking cases/s keeps the CI fuzz lane's
budget honest as the oracle grows more paths.
"""

import time

from benchmarks.conftest import emit, emit_json
from repro.fuzz import run_fuzz


def test_fuzz_campaign_throughput(benchmark):
    """120 seeded cases through all paths; report rate and coverage."""
    cases, seed = 120, 0
    reports = []

    def campaign():
        t0 = time.perf_counter()
        reports.append((run_fuzz(cases=cases, seed=seed),
                        time.perf_counter() - t0))

    benchmark.pedantic(campaign, rounds=1, iterations=1)
    report, elapsed = reports[-1]

    assert report.ok, report.failures[:3]
    assert report.cases == cases

    rate = cases / elapsed
    rows = [{
        "cases": report.cases,
        "divergent": report.divergent,
        "seconds": elapsed,
        "cases_per_s": rate,
        "coverage": dict(sorted(report.coverage.items())),
    }]
    emit_json("fuzz_campaign", {"cases": cases, "seed": seed, "max_dim": 32},
              rows)
    emit(
        f"Differential fuzz campaign, {cases} cases, seed {seed}",
        f"{cases} cases in {elapsed:.2f} s ({rate:.1f} cases/s), "
        f"{report.divergent} divergent\n"
        f"coverage: zero-dim {report.coverage.get('zero-dim', 0)}, "
        f"alias {report.coverage.get('alias:a', 0)}+"
        f"{report.coverage.get('alias:b', 0)}, "
        f"nan-c {report.coverage.get('nan-c', 0)}, "
        f"alpha-zero {report.coverage.get('alpha-zero', 0)}, "
        f"beta-zero {report.coverage.get('beta-zero', 0)}",
    )
