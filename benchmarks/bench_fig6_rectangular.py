"""Figure 6: DGEFMM / DGEMMW on random rectangular problems."""

from benchmarks.conftest import emit
from repro.harness import experiments as E


def test_fig6_rectangular(benchmark):
    d = benchmark.pedantic(
        lambda: E.fig6_rect_vs_dgemmw(count=150), rounds=1, iterations=1
    )
    emit(
        "Figure 6: DGEFMM / DGEMMW, random rectangular, RS/6000",
        f"general average {d['general']['average']:.4f} (paper 0.974); "
        f"beta=0 average {d['beta0']['average']:.4f} (paper 0.999)",
    )
    # rectangular problems favour DGEFMM more than square ones did
    # (hybrid criterion catches extra recursions; peeling beats padding)
    f5 = E.fig5_vs_dgemmw(step=100)
    assert d["general"]["average"] < f5["general"]["average"] + 0.01
    assert d["general"]["average"] < 0.99
    assert d["beta0"]["average"] < 1.0
    # x-axis range matches the paper's 10^7..10^10.5 operation window
    xs = [x for x, _ in d["general"]["points"]]
    assert min(xs) > 6.5 and max(xs) < 10.6
