"""Table 2: empirical square cutoffs on RS/6000, C90, T3D."""

from benchmarks.conftest import emit
from repro.harness import experiments as E
from repro.utils.tables import format_table


def test_table2_square_cutoffs(benchmark):
    rows = benchmark(E.table2_square_cutoffs)
    emit(
        "Table 2: empirical square cutoffs",
        format_table(
            ["machine", "measured tau", "paper tau", "band"],
            [
                (r["machine"], r["measured_tau"], r["paper_tau"],
                 f"[{r['first_win']}, {r['always_win']}]")
                for r in rows
            ],
        ),
    )
    for r in rows:
        assert abs(r["measured_tau"] - r["paper_tau"]) <= 6
    # ordering across machines: C90 < RS6000 < T3D (paper 129/199/325)
    taus = {r["machine"]: r["measured_tau"] for r in rows}
    assert taus["C90"] < taus["RS6000"] < taus["T3D"]
