"""Table 5: DGEMM vs DGEFMM across recursion depths, all machines."""

import pytest

from benchmarks.conftest import emit
from repro.harness import experiments as E
from repro.utils.tables import format_table


def test_table5_recursions(benchmark):
    rows = benchmark(E.table5_recursions)
    emit(
        "Table 5: times by recursion count (alpha=1/3, beta=1/4)",
        format_table(
            ["machine", "recs", "m", "DGEMM s", "DGEFMM s", "ratio",
             "paper ratio"],
            [
                (r["machine"], r["recursions"], r["m"],
                 f"{r['dgemm_s']:.4g}", f"{r['dgefmm_s']:.4g}",
                 f"{r['ratio']:.3f}", f"{r['paper_ratio']:.3f}")
                for r in rows
            ],
        ),
    )
    for r in rows:
        # ratio within 0.11 of the paper's measurement, everywhere
        assert r["ratio"] == pytest.approx(r["paper_ratio"], abs=0.11)
        # absolute seconds within 15% (the models are anchored at the
        # smallest size; drift accumulates with size)
        assert r["dgemm_s"] == pytest.approx(r["paper_dgemm_s"], rel=0.15)
    # scaling with matrix order is within 10% of the theoretical factor
    # of 7 per doubling (the paper's observation)
    for mach in ("RS6000", "C90", "T3D"):
        ms = [r for r in rows if r["machine"] == mach]
        for prev, cur in zip(ms, ms[1:]):
            assert 0.9 * 7 <= cur["dgefmm_s"] / prev["dgefmm_s"] <= 1.1 * 7
    # largest size per machine: DGEFMM/DGEMM in the paper's 0.66-0.78
    # window (plus modeling slack)
    for mach in ("RS6000", "C90", "T3D"):
        last = [r for r in rows if r["machine"] == mach][-1]
        assert 0.63 <= last["ratio"] <= 0.88
