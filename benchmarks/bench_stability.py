"""Stability exhibit: measured error vs recursion depth vs Higham bounds.

Not a paper table, but the quantitative backing of its Section 1 claim
that Strassen's algorithm "is stable enough ... to be considered
seriously": measured errors sit orders of magnitude below the normwise
bounds and grow gently with depth.

Extended across the precision matrix: every inexact dtype runs the same
depth sweep under both the fast and the compensated discipline, against
its own unit roundoff.  The committed ``BENCH_stability.json`` records
the error trajectories per ``(dtype, accuracy, depth)`` — the evidence
that (a) the Higham bound holds at every precision and (b) compensated
accumulation buys real digits for the narrow dtypes.
"""

from benchmarks.conftest import emit, emit_json
from repro.blas.dtypes import unit_roundoff
from repro.core.cutoff import DepthCutoff
from repro.core.dgefmm import dgefmm
from repro.core.stability import (
    UNIT_ROUNDOFF,
    measure_error,
    winograd_growth,
)
from repro.utils.tables import format_table

#: the inexact precision lanes: every dtype under both disciplines
LANES = [
    (dtype, accuracy)
    for dtype in ("float64", "float32", "complex128", "complex64")
    for accuracy in ("fast", "compensated")
]


def run(m=256, depths=(0, 1, 2, 3, 4)):
    rows = []
    for dtype, accuracy in LANES:
        u = unit_roundoff(dtype)
        for d in depths:
            def mult(a, b, c, _d=d, _acc=accuracy):
                dgefmm(a, b, c, cutoff=DepthCutoff(_d), accuracy=_acc)

            err, denom = measure_error(mult, m, seed=d, dtype=dtype)
            bound = winograd_growth(d, m >> d) * u * denom
            rows.append({
                "dtype": dtype, "accuracy": accuracy, "depth": d,
                "error": err, "bound": bound,
                "ratio": err / bound if bound else None,
            })
    return rows


def test_stability_vs_depth(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Stability: measured error vs Higham bound per precision, "
        "order 256",
        format_table(
            ["dtype", "accuracy", "depth", "max error", "normwise bound",
             "error/bound"],
            [(r["dtype"], r["accuracy"], r["depth"], f"{r['error']:.3e}",
              f"{r['bound']:.3e}", f"{r['ratio']:.2e}")
             for r in rows],
        ),
    )
    for r in rows:
        assert r["error"] <= r["bound"], r    # the theorem, per precision
    by = {(r["dtype"], r["accuracy"], r["depth"]): r["error"]
          for r in rows}
    # float64 fast: the original exhibit's claims still hold
    f64 = [by[("float64", "fast", d)] for d in (0, 1, 2, 3, 4)]
    assert f64[-1] < 1e-11                    # absolutely tiny on unit data
    assert all(r["ratio"] < 0.01 for r in rows
               if r["dtype"] == "float64" and r["accuracy"] == "fast")
    # compensated buys real digits on the narrow dtypes at depth: wide
    # accumulation leaves only the final narrowing rounding
    for dtype in ("float32", "complex64"):
        assert (by[(dtype, "compensated", 4)]
                < by[(dtype, "fast", 4)]), dtype
    emit_json(
        "stability",
        {"m": 256, "depths": [0, 1, 2, 3, 4],
         "lanes": [f"{dt}/{acc}" for dt, acc in LANES]},
        rows,
    )


# keep the legacy constant referenced: it documents the float64 unit
# roundoff the original exhibit was stated in
_ = UNIT_ROUNDOFF
