"""Stability exhibit: measured error vs recursion depth vs Higham bounds.

Not a paper table, but the quantitative backing of its Section 1 claim
that Strassen's algorithm "is stable enough ... to be considered
seriously": measured errors sit orders of magnitude below the normwise
bounds and grow gently with depth.
"""

from benchmarks.conftest import emit
from repro.core.cutoff import DepthCutoff
from repro.core.dgefmm import dgefmm
from repro.core.stability import (
    UNIT_ROUNDOFF,
    measure_error,
    winograd_growth,
)
from repro.utils.tables import format_table


def run(m=256, depths=(0, 1, 2, 3, 4)):
    rows = []
    for d in depths:
        def mult(a, b, c, _d=d):
            dgefmm(a, b, c, cutoff=DepthCutoff(_d))

        err, denom = measure_error(mult, m, seed=d)
        bound = winograd_growth(d, m >> d) * UNIT_ROUNDOFF * denom
        rows.append((d, err, bound, err / bound))
    return rows


def test_stability_vs_depth(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Stability: measured error vs Higham bound, order 256",
        format_table(
            ["depth", "max error", "normwise bound", "error/bound"],
            [(d, f"{e:.3e}", f"{b:.3e}", f"{r:.2e}")
             for d, e, b, r in rows],
        ),
    )
    for d, err, bound, _ in rows:
        assert err <= bound           # the theorem holds
    # error grows with depth but stays far below the bound
    errs = [e for _, e, _, _ in rows]
    assert errs[-1] < 1e-11           # absolutely tiny on unit data
    assert all(r < 0.01 for *_x, r in rows)  # bounds are very loose
