"""Benchmark-suite helpers.

Every bench module regenerates one paper exhibit.  The ``benchmark``
fixture times the experiment run itself (so ``--benchmark-only`` excludes
none of them); the exhibit's content is printed so the run doubles as the
reproduction log recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import sys


def emit(title: str, body: str) -> None:
    """Print an exhibit so it lands in the benchmark session output."""
    sys.stdout.write(f"\n===== {title} =====\n{body}\n")
