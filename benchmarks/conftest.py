"""Benchmark-suite helpers.

Every bench module regenerates one paper exhibit.  The ``benchmark``
fixture times the experiment run itself (so ``--benchmark-only`` excludes
none of them); the exhibit's content is printed so the run doubles as the
reproduction log recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import os
import sys


def emit(title: str, body: str) -> None:
    """Print an exhibit so it lands in the benchmark session output."""
    sys.stdout.write(f"\n===== {title} =====\n{body}\n")


def emit_json(bench: str, params: dict, rows: list, **extra) -> str:
    """Write one ``BENCH_<name>.json`` trajectory document.

    The document uses the same schema as the ``--json`` mode of the
    ``python -m repro`` commands — ``{"bench", "schema", "params",
    "rows"}`` plus any extra keys — so CLI captures and benchmark runs
    can be collected and diffed with one set of tooling.  The output
    directory defaults to the current directory and can be redirected
    with the ``BENCH_JSON_DIR`` environment variable.

    Serving documents (``BENCH_serve*.json``, ``python -m repro serve
    --json``) embed the :meth:`repro.serve.GemmService.stats` snapshot
    in their rows: ``{"counters", "histograms"`` (count/sum/min/max/
    mean/p50/p95/p99 each), ``"plan_cache", "pool", "queue", "work"}``
    — schema documented in docs/api.md, "Serving".
    """
    doc = {"bench": bench, "schema": 1, "params": params, "rows": rows}
    doc.update(extra)
    outdir = os.environ.get("BENCH_JSON_DIR", ".")
    path = os.path.join(outdir, f"BENCH_{bench}.json")
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path
