"""Parallel-extension bench: pdgefmm vs serial DGEFMM (wall clock).

Speedup depends on host core count (a single-core container shows ~1x or
slightly below due to pool overhead), so the bench *reports* the ratio
and asserts only correctness and the documented memory trade.
"""

import os
import time

import numpy as np

from benchmarks.conftest import emit
from repro.core.cutoff import SimpleCutoff
from repro.core.dgefmm import dgefmm
from repro.core.parallel import pdgefmm
from repro.core.workspace import Workspace


def test_parallel_level(benchmark):
    m = 768
    rng = np.random.default_rng(0)
    a = np.asfortranarray(rng.standard_normal((m, m)))
    b = np.asfortranarray(rng.standard_normal((m, m)))
    c_s = np.zeros((m, m), order="F")
    c_p = np.zeros((m, m), order="F")
    crit = SimpleCutoff(128)

    def best(fn, n=3):
        ts = []
        for _ in range(n):
            t0 = time.perf_counter()
            fn()
            ts.append(time.perf_counter() - t0)
        return min(ts)

    t_serial = best(lambda: dgefmm(a, b, c_s, cutoff=crit))
    t_par = benchmark.pedantic(
        lambda: best(lambda: pdgefmm(a, b, c_p, cutoff=crit)),
        rounds=1, iterations=1,
    )
    ws_s, ws_p = Workspace(), Workspace()
    dgefmm(a, b, c_s, cutoff=crit, workspace=ws_s)
    pdgefmm(a, b, c_p, cutoff=crit, workspace=ws_p)
    emit(
        "Parallel extension: pdgefmm vs dgefmm, m=768",
        f"serial {t_serial:.3f} s, parallel {t_par:.3f} s "
        f"(speedup {t_serial / t_par:.2f}x on {os.cpu_count()} cpus)\n"
        f"workspace: serial {ws_s.peak_elements / m**2:.3f} m^2, "
        f"parallel {ws_p.peak_elements / m**2:.3f} m^2 "
        f"(the memory-for-parallelism trade)",
    )
    np.testing.assert_allclose(c_p, c_s, atol=1e-9)
    assert ws_p.peak_bytes > 2 * ws_s.peak_bytes
