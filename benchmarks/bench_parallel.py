"""Parallel-extension bench: pdgefmm vs serial DGEFMM (wall clock).

Two exhibits:

- the one-level memory-for-parallelism trade of the original extension
  (correctness + workspace ratio, speedup *reported*), and
- the repeated-call throughput regime the multi-level engine targets:
  depth-2 ``pdgefmm`` with a warm :class:`WorkspacePool` against serial
  ``dgefmm``, with per-call fresh-allocation bytes measured before and
  after pooling so the amortization claim is a number, not an assertion.

Speedup depends on host core count (a single-core container shows ~1x
or slightly below due to pool overhead), so the wall-clock comparison is
asserted only on multi-core hosts; the zero-allocation claim is
deterministic and asserted everywhere.
"""

import os
import time

import numpy as np

from benchmarks.conftest import emit
from repro.core.config import GemmConfig
from repro.core.cutoff import SimpleCutoff
from repro.core.dgefmm import dgefmm
from repro.core.parallel import parallel_arena_count, pdgefmm
from repro.core.pool import WorkspacePool, workspace_bound_bytes
from repro.core.workspace import Workspace
from repro.plan import PlanCache
from repro.plan.compiler import compile_plan, signature_for


def _best(fn, n=3):
    ts = []
    for _ in range(n):
        t0 = time.perf_counter()
        fn()
        ts.append(time.perf_counter() - t0)
    return min(ts)


def test_parallel_level(benchmark):
    m = 768
    rng = np.random.default_rng(0)
    a = np.asfortranarray(rng.standard_normal((m, m)))
    b = np.asfortranarray(rng.standard_normal((m, m)))
    c_s = np.zeros((m, m), order="F")
    c_p = np.zeros((m, m), order="F")
    crit = SimpleCutoff(128)

    t_serial = _best(lambda: dgefmm(a, b, c_s, cutoff=crit))
    t_par = benchmark.pedantic(
        lambda: _best(lambda: pdgefmm(a, b, c_p, cutoff=crit)),
        rounds=1, iterations=1,
    )
    ws_s, ws_p = Workspace(), Workspace()
    dgefmm(a, b, c_s, cutoff=crit, workspace=ws_s)
    pdgefmm(a, b, c_p, cutoff=crit, workspace=ws_p)
    emit(
        "Parallel extension: pdgefmm vs dgefmm, m=768",
        f"serial {t_serial:.3f} s, parallel {t_par:.3f} s "
        f"(speedup {t_serial / t_par:.2f}x on {os.cpu_count()} cpus)\n"
        f"workspace: serial {ws_s.peak_elements / m**2:.3f} m^2, "
        f"parallel {ws_p.peak_elements / m**2:.3f} m^2 "
        f"(the memory-for-parallelism trade)",
    )
    np.testing.assert_allclose(c_p, c_s, atol=1e-9)
    assert ws_p.peak_bytes > 2 * ws_s.peak_bytes


def test_pooled_throughput(benchmark):
    """Depth-2 pdgefmm + warm pool vs serial dgefmm, repeated 1024s.

    Measures per-call fresh-allocation bytes in three configurations
    (serial unpooled, parallel unpooled, parallel pooled) so the
    amortization benefit of the pool is visible as a before/after
    number.  Asserts the zero-allocation claim always, and the
    wall-clock win only where threads can actually overlap (>= 2 cpus).
    """
    m = 1024
    workers, depth, repeat = 14, 2, 3
    rng = np.random.default_rng(1)
    a = np.asfortranarray(rng.standard_normal((m, m)))
    b = np.asfortranarray(rng.standard_normal((m, m)))
    c_s = np.zeros((m, m), order="F")
    c_p = np.zeros((m, m), order="F")
    crit = SimpleCutoff(128)

    # -- serial, unpooled: fresh Workspace per call ---------------------- #
    serial_bytes = []

    def serial_call():
        ws = Workspace()
        dgefmm(a, b, c_s, cutoff=crit, workspace=ws)
        serial_bytes.append(ws.new_buffer_bytes)

    t_serial = _best(serial_call, repeat)

    # -- parallel, unpooled: fresh arenas per call (the "before") -------- #
    probe = WorkspacePool()  # measures what unpooled calls would allocate
    pdgefmm(a, b, c_p, cutoff=crit, workers=workers,
            max_parallel_depth=depth, pool=probe)
    unpooled_bytes = probe.new_buffer_bytes  # cold pool == per-call cost

    # -- parallel, pooled and warm (the "after") ------------------------- #
    pool = WorkspacePool(
        workspace_bound_bytes(m, m, m, "parallel"),
        prewarm=parallel_arena_count(workers, depth),
    )

    def pooled_call():
        pdgefmm(a, b, c_p, cutoff=crit, workers=workers,
                max_parallel_depth=depth, pool=pool)

    pooled_call()  # warm-up
    warm_bytes = pool.new_buffer_bytes
    t_pooled = benchmark.pedantic(
        lambda: _best(pooled_call, repeat), rounds=1, iterations=1,
    )
    pooled_delta = pool.new_buffer_bytes - warm_bytes

    emit(
        "Pooled multi-level pdgefmm: repeated-call throughput, m=1024",
        f"serial {t_serial:.3f} s/call, pooled depth-{depth} parallel "
        f"{t_pooled:.3f} s/call (speedup {t_serial / t_pooled:.2f}x on "
        f"{os.cpu_count()} cpus, workers={workers})\n"
        f"fresh allocation per call: serial {serial_bytes[-1]:,} B, "
        f"parallel unpooled {unpooled_bytes:,} B, "
        f"parallel pooled+warm {pooled_delta // repeat:,} B "
        f"({pool.arenas_created} pooled arenas)",
    )
    np.testing.assert_allclose(c_p, c_s, atol=1e-9)
    # the amortization claim, measured: zero fresh bytes after warm-up
    assert pooled_delta == 0
    # per-call allocation before pooling is real and nonzero
    assert unpooled_bytes > 0 and serial_bytes[-1] > 0
    cpus = os.cpu_count() or 1
    if cpus >= 2:
        # with real cores to overlap on, warm depth-2 pooled parallel
        # must beat serial wall-clock (the acceptance target)
        assert t_pooled < t_serial


#: pre-refactor parallel-mirror compile time (seconds) at m=192,
#: tau=24, depth 1, recorded immediately before the traversal-core
#: refactor; the 3x slack catches structural blowups, not host jitter.
_PRE_REFACTOR_COMPILE_PARALLEL_S = 6.08e-3
_GUARD_SLACK = 3.0


def test_parallel_refactor_guard(benchmark):
    """Parallel plan compile + warm replay vs pre-refactor behaviour.

    The traversal refactor rewrote ``_prun``/``_prun_mirror`` as
    consumers of the shared decide() kernel; this guard asserts the
    parallel mirror's compile time stayed within 3x of the pre-refactor
    measurement, and that a warm cached replay through ``pdgefmm`` is
    no slower than re-deciding the recursion on every call (the whole
    point of caching the traversal's output).
    """
    m = 192
    crit = SimpleCutoff(24)
    rng = np.random.default_rng(3)
    a = np.asfortranarray(rng.standard_normal((m, m)))
    b = np.asfortranarray(rng.standard_normal((m, m)))
    c = np.zeros((m, m), order="F")

    sig = signature_for("parallel", m, m, m, False, False, False, True,
                        "float64", GemmConfig(cutoff=crit), 1)
    t_compile = _best(lambda: compile_plan(sig), 3)

    pool = WorkspacePool(workspace_bound_bytes(m, m, m, "parallel"))
    cache = PlanCache()

    def replay():
        pdgefmm(a, b, c, cutoff=crit, pool=pool, plan_cache=cache)

    def recursed():
        pdgefmm(a, b, c, cutoff=crit, pool=pool)

    replay()  # compile + warm the arenas
    t_replay = _best(replay, 5)
    t_recursed = benchmark.pedantic(lambda: _best(recursed, 5),
                                    rounds=1, iterations=1)

    emit(
        "Parallel traversal-refactor guard, m=192, tau=24, depth 1",
        f"parallel compile {t_compile * 1e3:.2f} ms (pre-refactor "
        f"{_PRE_REFACTOR_COMPILE_PARALLEL_S * 1e3:.2f} ms, "
        f"{t_compile / _PRE_REFACTOR_COMPILE_PARALLEL_S:.2f}x)\n"
        f"warm replay {t_replay * 1e3:.2f} ms/call, re-deciding "
        f"{t_recursed * 1e3:.2f} ms/call",
    )
    assert t_compile <= _GUARD_SLACK * _PRE_REFACTOR_COMPILE_PARALLEL_S
    # warm replay must not be slower than walking the decision tree
    # fresh each call (1.2x tolerance for thread-pool noise)
    assert t_replay <= 1.2 * t_recursed, (t_replay, t_recursed)
