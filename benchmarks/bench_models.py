"""Model-ladder bench: predicted vs empirical cutoffs (Section 3.4).

Quantifies the paper's argument that "operation count is not an accurate
enough predictor of performance to be used to tune actual code": each
rung of the [14]-style model ladder predicts a square crossover, compared
against the empirical cutoffs of the calibrated machines (Table 2).
"""

from benchmarks.conftest import emit
from repro.models import (
    MemoryTrafficModel,
    OperationCountModel,
    WeightedOpsModel,
    predicted_square_crossover,
)
from repro.utils.tables import format_table


def run_ladder():
    rungs = [
        ("operation count", OperationCountModel()),
        ("weighted ops (g=5)", WeightedOpsModel(add_weight=5.0)),
        ("weighted ops (g=10)", WeightedOpsModel(add_weight=10.0)),
        ("traffic (Z=32Kw, w=4)",
         MemoryTrafficModel(cache_words=32768, word_cost=4.0)),
        ("traffic (Z=128Kw, w=4)",
         MemoryTrafficModel(cache_words=131072, word_cost=4.0)),
    ]
    return [(name, predicted_square_crossover(m)) for name, m in rungs]


def test_model_ladder(benchmark):
    rows = benchmark.pedantic(run_ladder, rounds=1, iterations=1)
    emit(
        "Model ladder: predicted square crossovers "
        "(empirical: RS/6000 199, C90 129, T3D 325)",
        format_table(["model", "predicted tau"], rows),
    )
    by = dict(rows)
    # the ladder's monotone story
    assert by["operation count"] < 25
    assert by["operation count"] < by["weighted ops (g=5)"]
    assert by["weighted ops (g=5)"] < by["traffic (Z=32Kw, w=4)"]
    # refined rungs land in the empirical decade, op count does not
    assert 60 <= by["weighted ops (g=5)"] <= 400
    assert 100 <= by["traffic (Z=32Kw, w=4)"] <= 500
