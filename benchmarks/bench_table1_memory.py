"""Table 1: temporary memory requirements of every implementation."""

import pytest

from benchmarks.conftest import emit, emit_json
from repro.harness import experiments as E
from repro.utils.tables import format_table


def test_table1_memory(benchmark):
    rows = benchmark(E.table1_memory, m=2048)
    emit(
        "Table 1: measured peak workspace / m^2 (order 2048)",
        format_table(
            ["implementation", "beta=0", "general", "paper b0", "paper gen"],
            [
                (r["implementation"], f"{r['beta0']:.3f}",
                 f"{r['general']:.3f}",
                 f"{r['paper_beta0']:.3f}" if r["paper_beta0"] else "n/a",
                 f"{r['paper_general']:.3f}" if r["paper_general"] else "n/a")
                for r in rows
            ],
        ),
    )
    emit_json("table1_memory", {"m": 2048, "tau": 64}, rows)
    by = {r["implementation"]: r for r in rows}
    # our codes measure exactly the paper's coefficients
    assert by["DGEFMM"]["beta0"] == pytest.approx(2 / 3, abs=0.01)
    assert by["DGEFMM"]["general"] == pytest.approx(1.0, abs=0.01)
    assert by["STRASSEN1"]["general"] == pytest.approx(2.0, abs=0.02)
    assert by["STRASSEN2"]["beta0"] == pytest.approx(1.0, abs=0.01)
    assert by["DGEMMW"]["general"] == pytest.approx(5 / 3, abs=0.02)
    # the ordering story of the paper's memory discussion: DGEFMM's
    # general case is 40+% below DGEMMW and 57+% below the CRAY scheme
    assert by["DGEFMM"]["general"] <= 0.62 * by["DGEMMW"]["general"]
    assert by["DGEFMM"]["general"] <= 0.43 * by["CRAY SGEMMS"]["general"]
    # the BDPZ schedule (arXiv:0707.2347) holds the beta = 0 bound in
    # *both* scalar classes — strictly below every general-case row,
    # including STRASSEN2's 1.0
    assert by["BDPZ"]["beta0"] == pytest.approx(2 / 3, abs=0.01)
    assert by["BDPZ"]["general"] == pytest.approx(2 / 3, abs=0.01)
    assert by["BDPZ"]["general"] < by["STRASSEN2"]["general"]
