"""Figure 3: DGEFMM / IBM ESSL DGEMMS ratio on the RS/6000."""

from benchmarks.conftest import emit
from repro.harness import experiments as E


def test_fig3_vs_essl(benchmark):
    d = benchmark.pedantic(
        lambda: E.fig3_vs_essl(step=25), rounds=1, iterations=1
    )
    pts = d["beta0"]["points"]
    sample = "  ".join(f"{m}:{r:.3f}" for m, r in pts[::8])
    emit(
        "Figure 3: DGEFMM / ESSL DGEMMS, RS/6000",
        "\n".join(
            [
                f"beta=0 average {d['beta0']['average']:.4f} "
                f"(paper 1.052); general average "
                f"{d['general']['average']:.4f} (paper 1.028)",
                f"series sample: {sample}",
            ]
        ),
    )
    # vendor code slightly ahead on its own machine, within ~2% of paper
    assert abs(d["beta0"]["average"] - 1.052) < 0.02
    # the general case narrows the gap (ESSL needs the caller update)
    assert d["general"]["average"] < d["beta0"]["average"]
    # ratios hover near 1: competitive everywhere, never off by > 15%
    assert all(0.85 < r < 1.2 for _, r in pts)
