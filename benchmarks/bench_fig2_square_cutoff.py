"""Figure 2: the square-cutoff crossover scan on the RS/6000 model."""

from benchmarks.conftest import emit
from repro.harness import experiments as E


def test_fig2_square_cutoff(benchmark):
    d = benchmark(E.fig2_square_cutoff)
    pts = d["points"]
    # a crude ASCII rendition of the saw-toothed ratio curve
    lines = []
    for m, r in pts[::5]:
        bar = "#" * max(0, int((r - 0.9) * 200))
        lines.append(f"  {m:4d} {r:6.3f} {bar}")
    emit(
        "Figure 2: DGEMM/DGEFMM(1 level) vs square order, RS/6000",
        "\n".join(
            [
                f"first win {d['first_win']} (paper 176), always "
                f"{d['always_win']} (paper 214), recommended "
                f"{d['recommended']} (paper chose 199)",
            ]
            + lines
        ),
    )
    assert abs(d["recommended"] - 199) <= 5
    assert d["first_win"] < 199 < d["always_win"]
