"""Recursive vs panel-blocked LU under a Strassen GEMM (extension).

Quantifies the GEMM-shape lesson inside a real factorization: under the
same cutoff, Toledo's recursive LU feeds Strassen half-width updates
(inner dimension n/2) where panel LU feeds rank-nb slivers, so the
recursive form removes substantially more multiply work.
"""

from functools import partial

import numpy as np

from benchmarks.conftest import emit
from repro.context import ExecutionContext
from repro.core.cutoff import SimpleCutoff
from repro.core.dgefmm import dgefmm
from repro.linalg import getrf
from repro.linalg.lu_recursive import getrf_recursive
from repro.utils.matrixgen import random_matrix


def run(n=512, cut=64):
    a = random_matrix(n, n, seed=1) + n * np.eye(n)
    out = {}
    for name, factor in (
        ("panel LU (nb=64)", partial(getrf, block=64)),
        ("recursive LU", partial(getrf_recursive, base=64)),
    ):
        ctx = ExecutionContext()
        crit = SimpleCutoff(cut)

        def gemm(aa, bb, cc, al=1.0, be=0.0):
            dgefmm(aa, bb, cc, al, be, cutoff=crit, ctx=ctx)

        factor(a, gemm)
        out[name] = ctx.mul_flops
    return out


def test_lu_shapes(benchmark):
    d = benchmark.pedantic(run, rounds=1, iterations=1)
    panel = d["panel LU (nb=64)"]
    rec = d["recursive LU"]
    emit(
        "LU update shapes under Strassen (n=512, cutoff 64)",
        f"  panel LU updates:     {panel / 1e6:.1f} M multiplies\n"
        f"  recursive LU updates: {rec / 1e6:.1f} M multiplies "
        f"(ratio {rec / panel:.3f})",
    )
    assert rec < 0.85 * panel
