"""Table 4: comparison of cutoff criteria on random problems."""

from benchmarks.conftest import emit
from repro.harness import experiments as E
from repro.machines.presets import MACHINES
from repro.utils.tables import format_table

#: paper Table 4 averages for reference in the output
PAPER_AVG = {
    ("RS6000", "(15)/(11)"): 0.9529,
    ("RS6000", "(15)/(12)"): 1.0017,
    ("RS6000", "(15)/(12) two large"): 0.9888,
    ("C90", "(15)/(11)"): 0.9375,
    ("C90", "(15)/(12)"): 0.9428,
    ("C90", "(15)/(12) two large"): 0.9098,
    ("T3D", "(15)/(11)"): 0.9518,
    ("T3D", "(15)/(12)"): 0.9777,
    ("T3D", "(15)/(12) two large"): 0.9340,
}


def run_all():
    rows = []
    for mach in MACHINES.values():
        rows.extend(
            E.table4_criteria(mach, sample=100, sample_higham=300,
                              sample_two_large=60)
        )
    return rows


def test_table4_criteria(benchmark):
    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit(
        "Table 4: cutoff-criteria comparison (DGEFMM time ratios)",
        format_table(
            ["machine", "comparison", "n", "range", "quartiles",
             "average", "paper avg"],
            [
                (r["machine"], r["comparison"], r["n"],
                 f"{r['min']:.4f}-{r['max']:.4f}",
                 f"{r['q1']:.4f};{r['median']:.4f};{r['q3']:.4f}",
                 f"{r['mean']:.4f}",
                 f"{PAPER_AVG[(r['machine'], r['comparison'])]:.4f}")
                for r in rows
            ],
        ),
    )
    by = {(r["machine"], r["comparison"]): r for r in rows}
    # the new criterion wins or ties everywhere (the paper's conclusion)
    for mach in MACHINES:
        assert by[(mach, "(15)/(11)")]["mean"] < 0.99
        assert by[(mach, "(15)/(12) two large")]["mean"] < 1.01
        assert by[(mach, "(15)/(12)")]["mean"] < 1.05
    # RS/6000 averages land within ~0.03 of the paper's
    assert abs(by[("RS6000", "(15)/(11)")]["mean"] - 0.9529) < 0.03
    assert abs(by[("RS6000", "(15)/(12)")]["mean"] - 1.0017) < 0.03
