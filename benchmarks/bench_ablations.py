"""Ablation benches for the design choices DESIGN.md calls out.

Not exhibits from the paper — these quantify the *reasons* behind the
paper's choices using the same simulated machinery:

1. peeling vs dynamic padding vs static padding on odd sizes;
2. STRASSEN1-general child-scheme ablation (the paper's "same algorithm"
   recursion costs 2m^2; switching beta=0 children to the two-temporary
   scheme would reach 5m^2/3);
3. cutoff-criterion ablation at a fixed size (theoretical 12 vs tuned);
4. STRASSEN2 vs STRASSEN1 in the beta=0 case (the paper found STRASSEN2
   competitive despite extra accumulate work — Figure 5's discussion).
"""

import pytest

from benchmarks.conftest import emit
from repro.context import ExecutionContext
from repro.core.cutoff import SimpleCutoff, TheoreticalCutoff
from repro.core.dgefmm import dgefmm
from repro.core.workspace import Workspace
from repro.harness.simtime import (
    paper_hybrid_cutoff,
    sim_dgefmm,
    sim_dgemmw,
    sim_essl,
)
from repro.machines.presets import RS6000
from repro.phantom import Phantom
from repro.utils.tables import format_table


def test_ablation_odd_dimension_strategies(benchmark):
    """Peeling (DGEFMM) vs dynamic padding (DGEMMW) vs static padding
    (ESSL-style) on a sweep of odd orders: the paper's [14] analysis
    says peeling wins; measure it."""

    def run():
        rows = []
        crit = paper_hybrid_cutoff("RS6000")
        for m in [401, 403, 501, 801, 1001, 1601]:
            t_peel = sim_dgefmm(RS6000, m, m, m, cutoff=crit)
            t_dyn = sim_dgemmw(RS6000, m, m, m)
            t_stat = sim_essl(RS6000, m, m, m)
            rows.append((m, t_peel, t_dyn, t_stat))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Ablation: odd-dimension strategies (simulated RS/6000 seconds)",
        format_table(
            ["m (odd)", "peeling", "dynamic pad", "static pad"],
            [(m, f"{a:.4f}", f"{b:.4f}", f"{c:.4f}")
             for m, a, b, c in rows],
        ),
    )
    # peeling never loses to either padding strategy on odd sizes
    for _m, t_peel, t_dyn, t_stat in rows:
        assert t_peel <= t_dyn * 1.005
        assert t_peel <= t_stat * 1.005


def test_ablation_strassen1_child_scheme(benchmark):
    """Table 1 gives STRASSEN1-general 2m^2 under same-algorithm
    recursion; the beta=0 children could drop to the two-temporary
    scheme, reaching 5m^2/3 — the ablation the paper's bound implies."""

    def peak(scheme):
        ctx = ExecutionContext(dry=True)
        ws = Workspace(dry=True)
        m = 2048
        dgefmm(Phantom(m, m), Phantom(m, m), Phantom(m, m), 1.0, 1.0,
               scheme=scheme, cutoff=SimpleCutoff(16), ctx=ctx,
               workspace=ws)
        return ws.peak_elements / m**2

    same_alg = benchmark.pedantic(
        lambda: peak("strassen1"), rounds=1, iterations=1)
    # "auto" with beta != 0 dispatches STRASSEN2 (m^2); the hypothetical
    # beta0-children variant sits between: verify the ordering bound
    s2 = peak("strassen2")
    emit(
        "Ablation: STRASSEN1 child-scheme memory",
        f"same-algorithm children: {same_alg:.3f} m^2 (paper 2 m^2)\n"
        f"STRASSEN2 instead:       {s2:.3f} m^2 (paper 1 m^2)",
    )
    assert same_alg == pytest.approx(2.0, abs=0.02)
    assert s2 == pytest.approx(1.0, abs=0.02)


def test_ablation_cutoff_choice(benchmark):
    """Theoretical cutoff 12 over-recurses badly on a real cost model;
    the tuned hybrid criterion is what makes Strassen practical."""

    def run():
        m = 1024
        t_theory = sim_dgefmm(RS6000, m, m, m, cutoff=TheoreticalCutoff())
        t_tuned = sim_dgefmm(RS6000, m, m, m,
                             cutoff=paper_hybrid_cutoff("RS6000"))
        t_none = sim_dgefmm(RS6000, m, m, m, cutoff=SimpleCutoff(10**9))
        return t_theory, t_tuned, t_none

    t_theory, t_tuned, t_none = benchmark.pedantic(
        run, rounds=1, iterations=1)
    emit(
        "Ablation: cutoff criterion at m=1024 (simulated RS/6000)",
        f"theoretical (tau=12): {t_theory:.4f}s\n"
        f"tuned hybrid:         {t_tuned:.4f}s\n"
        f"no recursion:         {t_none:.4f}s",
    )
    assert t_tuned < t_theory        # tuning beats operation counts
    assert t_tuned < t_none          # and beats plain DGEMM


def test_ablation_schemes_beta0(benchmark):
    """STRASSEN2's extra accumulates cost little even where STRASSEN1's
    beta=0 specialization is available (paper: 'no time penalty')."""

    def run():
        m = 1024
        crit = paper_hybrid_cutoff("RS6000")
        t1 = sim_dgefmm(RS6000, m, m, m, 1.0, 0.0, cutoff=crit)
        ctx = ExecutionContext(RS6000, dry=True)
        dgefmm(Phantom(m, m), Phantom(m, m), Phantom(m, m), 1.0, 0.0,
               scheme="strassen2", cutoff=crit, ctx=ctx)
        return t1, ctx.elapsed

    t_s1, t_s2 = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Ablation: STRASSEN1(beta=0) vs STRASSEN2 at m=1024",
        f"STRASSEN1 path: {t_s1:.4f}s   STRASSEN2 path: {t_s2:.4f}s "
        f"(penalty {100 * (t_s2 / t_s1 - 1):.2f}%)",
    )
    assert t_s2 / t_s1 < 1.03  # within 3%: "no time penalty" holds
