"""API bench: routed multi-process serving vs one in-process service.

The network front-end exists to scale past the GIL: the router shards
requests across worker *processes*, so compute parallelism is real
even though each worker's ``GemmService`` is thread-based.  The honest
comparison is therefore the same saturating open-loop mix driven (a)
through one in-process single-worker ``GemmService`` and (b) over the
wire through a 2-shard router — identical shapes, seed, and
verification, with ``canonical_operands`` on both sides so the
reference and the server provably compute on the same bytes.

Acceptance (ISSUE 7): routed throughput >= 1.3x in-process and every
shard's plan-cache hit rate > 0.8.  The throughput assertion only
holds where process parallelism is possible, so it is gated on >= 2
usable CPUs; the measured ratio and the CPU count are recorded in
``BENCH_api.json`` either way, so a single-CPU CI box still produces
an auditable document without asserting an impossibility.
"""

import os

from benchmarks.conftest import emit, emit_json
from repro.api import ApiServerThread, GemmClient
from repro.serve import run_load

DURATION = 2.0
RATE = 400.0          # saturating: completion count measures capacity
N_SHAPES = 8
SEED = 0
MAX_DIM = 32
MIN_SPEEDUP = 1.3
MIN_HIT_RATE = 0.8


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _row(mode, report):
    return {
        "mode": mode,
        "attempts": report["attempts"],
        "completed": report["completed"],
        "errors": report["errors"],
        "divergent": report["divergent"],
        "throughput_rps": report["completed"] / DURATION,
    }


def test_routed_vs_inprocess(benchmark):
    """Saturating mixed-shape load, in-process vs over-the-wire."""
    inproc = run_load(
        duration=DURATION, rate=RATE, workers=1, n_shapes=N_SHAPES,
        seed=SEED, max_dim=MAX_DIM, capacity=1024, policy="block",
        canonical_operands=True,
    )

    srv = ApiServerThread(workers=2, threads=1, capacity=1024,
                          policy="block", max_batch=32)
    srv.start()
    try:
        with GemmClient("127.0.0.1", srv.port) as client:
            routed = benchmark.pedantic(
                lambda: run_load(
                    duration=DURATION, rate=RATE, n_shapes=N_SHAPES,
                    seed=SEED, max_dim=MAX_DIM, service=client,
                    canonical_operands=True,
                ),
                rounds=1, iterations=1,
            )
        final = srv.drain()
    except BaseException:
        srv.kill()
        raise

    # Hit rate is only meaningful for shards the hash ring actually
    # sent traffic to; an idle shard reports 0/0.
    hit_rates = [s["service"]["plan_cache"]["hit_rate"]
                 for s in final["shards"]
                 if s.get("service") and s.get("routed", 0) > 0]
    cpus = _usable_cpus()
    speedup = (routed["completed"] / max(1, inproc["completed"]))

    rows = [_row("in_process", inproc), _row("routed_2_shards", routed)]
    emit(
        "API: routed 2-shard serving vs in-process service",
        "\n".join(
            f"{r['mode']:<16} completed {r['completed']:>4}/"
            f"{r['attempts']} ({r['throughput_rps']:6.0f} req/s), "
            f"errors {r['errors']}, divergent {r['divergent']}"
            for r in rows
        )
        + f"\nrouted vs in-process {speedup:.2f}x on {cpus} cpu(s); "
        f"shard hit rates {['%.2f' % h for h in hit_rates]}",
    )
    emit_json(
        "api",
        {"duration": DURATION, "rate": RATE, "n_shapes": N_SHAPES,
         "seed": SEED, "max_dim": MAX_DIM, "workers_routed": 2,
         "workers_inprocess": 1},
        rows,
        speedup_routed_vs_inprocess=speedup,
        shard_hit_rates=hit_rates,
        cpus=cpus,
        speedup_asserted=cpus >= 2,
    )

    # correctness is unconditional: every completed request verified
    for r in rows:
        assert r["errors"] == 0 and r["divergent"] == 0, r
    assert inproc["completed"] > 0 and routed["completed"] > 0

    # sharding must pay for itself in plan-cache locality
    assert hit_rates and all(h > MIN_HIT_RATE for h in hit_rates), (
        f"per-shard plan-cache hit rates {hit_rates} "
        f"(need all > {MIN_HIT_RATE})"
    )

    # throughput: only assertable where process parallelism exists
    if cpus >= 2:
        assert speedup >= MIN_SPEEDUP, (
            f"routed throughput only {speedup:.2f}x in-process "
            f"(need >= {MIN_SPEEDUP}x on {cpus} cpus)"
        )
