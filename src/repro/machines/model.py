"""Analytic per-machine cost model for the instrumented BLAS kernels.

The model needs exactly enough structure to reproduce the paper's
observations, no more:

- **DGEMM time** has the leading ``2mkn`` flop term plus per-operand
  overhead terms ``a_m*kn + a_k*mn + a_n*mk`` (pipeline startup, panel
  traversal — one per element of each operand face) **asymmetric in the
  three dimensions**, because Table 3 shows the measured crossovers are
  strongly asymmetric, plus a thin-shape term ``h*mkn/min(m,k,n)``
  capturing that long-thin products run at different efficiency than
  square ones (the paper: "the performance of DGEMM on long thin
  matrices can be very different from its performance on square
  matrices"; note Table 3's tau_m + tau_k + tau_n differs from tau by
  ~100 on the RS/6000 — the ``h`` term is what makes both calibration
  targets satisfiable at once, and its sign flips on the T3D where the
  sum is *below* the square cutoff).
- **matrix add/copy time** is bandwidth-bound: ``g`` model flops per
  element, ``g`` > 1 relative to multiply flops.
- **Level 2 fix-up kernels** (DGER/DGEMV) run at a fraction of DGEMM's
  rate (factor ``g2``) — this is what produces the saw-tooth of Figure 2
  on odd sizes.
- ``tuned_gain`` scales DGEMM time only; vendor Strassen codes (ESSL,
  CRAY SGEMMS) get a gain < 1 reflecting their machine-tuned kernels,
  the paper's explanation for Figures 3/4 averaging above 1.

All times are returned in seconds; ``rate`` anchors the absolute scale
(calibrated against Table 5's measured DGEMM seconds).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["MachineModel"]


@dataclass(frozen=True)
class MachineModel:
    """Cost model; see module docstring for the role of each parameter."""

    name: str
    #: flop rate anchoring absolute seconds (model-flops per second)
    rate: float
    #: per-element overhead on the k-by-n operand face (paired with m)
    a_m: float
    #: per-element overhead on the m-by-n face (paired with k)
    a_k: float
    #: per-element overhead on the m-by-k face (paired with n)
    a_n: float
    #: thin-shape coefficient of the mkn/min(m,k,n) term
    h: float
    #: add/copy cost per element, in model flops (bandwidth-bound)
    g: float = 5.0
    #: DGER/DGEMV slowdown factor relative to DGEMM flops
    g2: float = 2.0
    #: fixed per-call overhead, in model flops
    c0: float = 0.0
    #: DGEMM slowdown fraction per odd dimension (loop-cleanup cost of
    #: real vendor kernels; the source of Figure 2's early odd-size wins)
    odd_penalty: float = 0.0
    #: DGEMM-time multiplier (< 1 for vendor-tuned kernels)
    tuned_gain: float = 1.0

    # ------------------------------------------------------------------ #
    def t_gemm(self, m: int, k: int, n: int) -> float:
        """Seconds for a standard-algorithm DGEMM of op shape (m, k, n)."""
        small = min(m, k, n)
        if small == 0 or m == 0 or n == 0:
            return 0.0
        work = (
            2.0 * m * k * n
            + self.a_m * k * n
            + self.a_k * m * n
            + self.a_n * m * k
            + self.h * (m * k * n) / small
            + self.c0
        )
        if self.odd_penalty:
            # only integral dimensions can be odd; the calibration's
            # continuous root-finding probes fractional sizes, which are
            # "even" in the sense that no cleanup code runs
            n_odd = sum(
                1 for d in (m, k, n)
                if float(d).is_integer() and int(d) & 1
            )
            if n_odd:
                work *= 1.0 + self.odd_penalty * n_odd
        return self.tuned_gain * work / self.rate

    def t_add(self, m: int, n: int) -> float:
        """Seconds for a matrix add/subtract/axpby of shape (m, n)."""
        return self.g * m * n / self.rate

    def t_copy(self, m: int, n: int) -> float:
        """Seconds for a matrix copy/zero of shape (m, n)."""
        return self.g * m * n / self.rate

    def t_ger(self, m: int, n: int) -> float:
        """Seconds for a rank-one update of shape (m, n)."""
        return self.g2 * 2.0 * m * n / self.rate

    def t_gemv(self, m: int, n: int) -> float:
        """Seconds for a matrix-vector product with an (m, n) matrix."""
        return self.g2 * 2.0 * m * n / self.rate

    def t_vec(self, n: int) -> float:
        """Seconds for a length-n Level 1 operation."""
        return self.g * n / self.rate

    # ------------------------------------------------------------------ #
    def tuned(self, gain: float) -> "MachineModel":
        """A copy of this machine whose DGEMM runs ``gain`` times as long.

        ``gain < 1`` models a vendor library's hand-tuned multiply kernel
        on the same hardware (used for the ESSL / CRAY SGEMMS figures).
        """
        return replace(
            self,
            name=f"{self.name}(gain={gain:g})",
            tuned_gain=self.tuned_gain * gain,
        )
