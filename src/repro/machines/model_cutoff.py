"""A cutoff criterion computed directly from a machine model.

The paper's future work proposes using its performance models "to
further refine our criteria for stopping recursions".  This module is
that refinement: instead of a parameterized surface fit through four
measured crossovers (eq. 15), :class:`ModelCutoff` asks the machine's
cost model directly, for the exact (m, k, n) at hand, whether one more
Strassen level is predicted to pay — the pointwise-optimal one-step
lookahead decision under the model.

Because the decision is exact under the model where eq. (15) is an
approximation, ModelCutoff never loses to the hybrid criterion in
simulated time (a property the test suite asserts), at the cost of
needing a full cost model rather than four numbers.  On real hardware it
is only as good as the model — which is the trade-off the paper's
parameterized criterion was designed around.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.cutoff import CutoffCriterion
from repro.machines.calibrate import one_level_time
from repro.machines.model import MachineModel

__all__ = ["ModelCutoff"]


@dataclass(frozen=True)
class ModelCutoff(CutoffCriterion):
    """Stop iff the machine model predicts DGEMM beats one more level.

    ``margin`` biases the decision: stop unless recursion is predicted
    to win by more than ``margin`` (fraction of the DGEMM time) — a
    hedge against model error near the boundary, default 0.
    """

    machine: MachineModel
    margin: float = 0.0
    #: memoized decisions — the same block sizes recur thousands of
    #: times inside one product's recursion tree
    _cache: dict = field(default_factory=dict, hash=False, compare=False,
                         repr=False)

    def stop(self, m: int, k: int, n: int, depth: int = 0) -> bool:
        key = (m, k, n)
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        t_std = self.machine.t_gemm(m, k, n)
        # predicted cost of one level exactly as the driver executes it:
        # peel the odd dims, run the level on the even core, fix up
        mp, kp, np_ = m & ~1, k & ~1, n & ~1
        t_one = one_level_time(self.machine, mp, kp, np_)
        if kp < k and mp and np_:
            t_one += self.machine.t_ger(mp, np_)
        if np_ < n and mp:
            t_one += self.machine.t_gemv(mp, k)
        if mp < m:
            t_one += self.machine.t_gemv(n, k)
        decision = t_one >= t_std * (1.0 - self.margin)
        self._cache[key] = decision
        return decision
