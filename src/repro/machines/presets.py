"""Calibrated machine models for the paper's three testbeds.

Constants produced by :func:`repro.machines.calibrate.fit_overheads` with
the paper's Table 2/3 crossovers as targets and the rate anchored so the
square DGEMM at the smallest one-recursion order matches Table 5's
measured seconds:

==========  ====  =====================  =============  ==============
machine     tau   (tau_m, tau_k, tau_n)  fixed dims     anchor
==========  ====  =====================  =============  ==============
RS/6000     199   (75, 125, 95)          2000           DGEMM(200) = 0.150 s
CRAY C90    129   (80, 45, 20)           2000           DGEMM(130) = 0.0060 s
CRAY T3D    325   (125, 75, 109)         1500           DGEMM(326) = 0.694 s
==========  ====  =====================  =============  ==============

The add-cost factor ``g`` reflects each machine's character (the C90's
vector pipes make additions nearly multiply-speed, hence the small g;
the scalar RS/6000 and T3D pay more per bandwidth-bound element), chosen
inside the feasibility region of the fit.  ``VENDOR_GAIN`` is the tuned-
kernel advantage attributed to the vendor Strassen libraries, set so the
Figure 3/4 average ratios land near the paper's 1.05-1.07.

Tests re-run the fit and assert these constants still reproduce the
Table 2/3 crossovers via the real (dry-run) DGEFMM recursion.
"""

from __future__ import annotations

from repro.machines.model import MachineModel

__all__ = [
    "RS6000",
    "C90",
    "T3D",
    "MACHINES",
    "FIXED_DIM",
    "PAPER_SQUARE_CUTOFF",
    "PAPER_RECT_PARAMS",
    "VENDOR_GAIN",
]

RS6000 = MachineModel(
    name="RS6000",
    rate=1.163556e8,
    a_m=3.214753,
    a_k=9.847365,
    a_n=9.763025,
    h=13.508191,
    g=5.0,
    g2=0.6,
    odd_penalty=0.006,
)

C90 = MachineModel(
    name="C90",
    rate=8.281000e8,
    a_m=22.165475,
    a_k=7.534862,
    a_n=2.479027,
    h=1.820637,
    g=1.5,
    g2=0.6,
    odd_penalty=0.006,
)

T3D = MachineModel(
    name="T3D",
    rate=1.118399e8,
    a_m=39.650338,
    a_k=14.658313,
    a_n=34.735627,
    h=-10.710944,
    g=5.0,
    g2=0.6,
    odd_penalty=0.006,
)

MACHINES = {"RS6000": RS6000, "C90": C90, "T3D": T3D}

#: large fixed dimension used in each machine's Table 3 experiments
FIXED_DIM = {"RS6000": 2000, "C90": 2000, "T3D": 1500}

#: paper Table 2
PAPER_SQUARE_CUTOFF = {"RS6000": 199, "C90": 129, "T3D": 325}

#: paper Table 3
PAPER_RECT_PARAMS = {
    "RS6000": (75, 125, 95),
    "C90": (80, 45, 20),
    "T3D": (125, 75, 109),
}

#: tuned-kernel advantage of the vendor Strassen routines (Figures 3/4),
#: set so the beta = 0 sweep averages land on the paper's 1.052 / 1.066
VENDOR_GAIN = {"RS6000": 0.93, "C90": 0.92}
