"""Paged (virtual-memory) machine model — the paper's future-work item.

The paper limits itself "to sizes of matrices where the entire problem
fits into the machine's memory without using virtual memory" and lists
extending the implementation/models to virtual memory as future work.
This model supplies the missing piece at the modeling level: a machine
whose kernels slow down once their *working set* exceeds physical
memory, with the slowdown proportional to the overflow fraction (a
first-order paging model: every overflowing word is a page-fault-rate
liability).

The qualitatively interesting consequence, which the tests pin down: the
working set of a Strassen level is the operands *plus temporaries*, so
near the memory boundary Strassen starts paging before plain DGEMM does
— recursion can lose exactly where the problem stops fitting, and a
memory-lean schedule (DGEFMM's 2m²/3) keeps recursion profitable longer
than a memory-hungry one would.  This is the paper's memory frugality
argument, extended across the RAM boundary.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machines.model import MachineModel

__all__ = ["PagedMachineModel"]


@dataclass(frozen=True)
class PagedMachineModel(MachineModel):
    """Machine model with a physical-memory working-set penalty.

    Parameters (beyond :class:`MachineModel`):

    memory_words:
        Physical memory capacity in matrix elements.
    fault_cost:
        Extra model-flops charged per word by which a kernel's working
        set overflows memory (page-fault amortization).
    workspace_words:
        Temporary storage co-resident with the kernels (set by the
        caller to the Strassen workspace size; 0 for plain DGEMM runs).
        Included in every kernel's working set, because the recursion's
        temporaries stay live across the base-case calls.
    """

    memory_words: float = float("inf")
    fault_cost: float = 16.0
    workspace_words: float = 0.0

    # ------------------------------------------------------------------ #
    def _overflow(self, working_set: float) -> float:
        return max(0.0, working_set + self.workspace_words
                   - self.memory_words)

    def t_gemm(self, m: int, k: int, n: int) -> float:
        base = MachineModel.t_gemm(self, m, k, n)
        over = self._overflow(float(m) * k + float(k) * n + float(m) * n)
        return base + self.fault_cost * over / self.rate

    def t_add(self, m: int, n: int) -> float:
        base = MachineModel.t_add(self, m, n)
        over = self._overflow(3.0 * m * n)
        return base + self.fault_cost * over / self.rate

    def with_workspace(self, words: float) -> "PagedMachineModel":
        """Copy of this machine with ``words`` of co-resident workspace."""
        from dataclasses import replace

        return replace(self, workspace_words=float(words))
