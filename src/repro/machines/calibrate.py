"""Calibration: fit machine-model parameters to the paper's cutoffs.

Section 3.4 determines cutoff parameters *empirically*: find the square
order tau where one level of Strassen beats DGEMM (eq. 10 / Table 2), and
the three long-thin crossovers tau_m, tau_k, tau_n with the other two
dimensions held large (eq. 13 / Table 3).  We invert that procedure: given
the paper's published crossovers as *targets*, solve for the machine-model
parameters (a_m, a_k, a_n, h) that make the same experiments, run against
the model, land on those targets.

The one-level Strassen cost used here mirrors exactly what the DGEFMM
code charges on even inputs with beta = 0 (the experimental setting of
Section 4.2): seven half-size DGEMMs plus the STRASSEN1 beta = 0
schedule's 18 block additions (4 A-shaped, 4 B-shaped, 10 C-shaped).
Tests verify that dry-running the *actual* DGEFMM recursion against the
fitted models reproduces the paper's crossovers.
"""

from __future__ import annotations

from dataclasses import fields, replace
from typing import Any, Dict, Tuple

import numpy as np
from scipy.optimize import brentq, fsolve

from repro.errors import ArgumentError
from repro.machines.model import MachineModel

__all__ = [
    "one_level_time",
    "model_square_crossover",
    "model_rect_crossover",
    "fit_overheads",
    "anchor_rate",
    "measured_square_crossover",
    "measured_rect_crossover",
    "host_timers",
    "calibrate_host",
    "machine_to_json",
    "machine_from_json",
    "MACHINE_SCHEMA",
]

#: on-disk schema version of a serialized MachineModel
MACHINE_SCHEMA = 1


def machine_to_json(mach: MachineModel) -> Dict[str, Any]:
    """Serialize a fitted model as a plain-JSON document.

    Structural over ``fields(MachineModel)`` — a new model parameter
    joins the document automatically, the same guarantee PlanSignature
    gives the plan cache.  Round-trips bit-exactly via
    :func:`machine_from_json` (floats pass through ``json`` unscathed).
    """
    doc: Dict[str, Any] = {"schema": MACHINE_SCHEMA}
    for f in fields(MachineModel):
        doc[f.name] = getattr(mach, f.name)
    return doc


def machine_from_json(doc: Dict[str, Any]) -> MachineModel:
    """Rebuild a :class:`MachineModel` from :func:`machine_to_json`."""
    schema = doc.get("schema")
    if schema != MACHINE_SCHEMA:
        raise ArgumentError(
            "machine_from_json", "schema",
            f"expected {MACHINE_SCHEMA}, got {schema!r}",
        )
    kwargs = {}
    for f in fields(MachineModel):
        if f.name in doc:
            kwargs[f.name] = doc[f.name]
    return MachineModel(**kwargs)


def one_level_time(mach: MachineModel, m: float, k: float, n: float) -> float:
    """Model seconds for one Strassen level + standard base multiplies.

    Continuous in (m, k, n) so root-finding is smooth; matches the charges
    of ``dgefmm(..., cutoff=DepthCutoff(1))`` on even inputs exactly.
    """
    hm, hk, hn = m / 2.0, k / 2.0, n / 2.0
    t = 7.0 * mach.t_gemm(hm, hk, hn)  # type: ignore[arg-type]
    t += 4.0 * mach.t_add(hm, hk)      # type: ignore[arg-type]
    t += 4.0 * mach.t_add(hk, hn)      # type: ignore[arg-type]
    t += 10.0 * mach.t_add(hm, hn)     # type: ignore[arg-type]
    return t


def _crossover(mach: MachineModel, dims) -> float:
    """Continuous root of t_gemm - one_level_time along a 1-D family.

    ``dims(x)`` maps the search variable to (m, k, n).  Returns the x
    where the two strategies tie; above it, recursion wins.
    """

    def f(x: float) -> float:
        m, k, n = dims(x)
        return mach.t_gemm(m, k, n) - one_level_time(mach, m, k, n)

    lo, hi = 4.0, 8192.0
    if f(lo) > 0:
        return lo  # recursion already wins at the smallest size
    if f(hi) < 0:
        return np.inf  # DGEMM always wins in range (degenerate params)
    return float(brentq(f, lo, hi, xtol=1e-6))


def model_square_crossover(mach: MachineModel) -> float:
    """Continuous square crossover tau of the model (eq. 10 experiment)."""
    return _crossover(mach, lambda x: (x, x, x))


def model_rect_crossover(
    mach: MachineModel, which: str, fixed: float
) -> float:
    """Continuous long-thin crossover (Table 3 experiment).

    ``which`` in {"m", "k", "n"} is the varying dimension; the other two
    are held at ``fixed`` (2000 on the RS/6000 and C90, 1500 on the T3D).
    """
    maps = {
        "m": lambda x: (x, fixed, fixed),
        "k": lambda x: (fixed, x, fixed),
        "n": lambda x: (fixed, fixed, x),
    }
    return _crossover(mach, maps[which])


def fit_overheads(
    name: str,
    tau: float,
    tau_m: float,
    tau_k: float,
    tau_n: float,
    *,
    fixed: float = 2000.0,
    g: float = 5.0,
    g2: float = 2.0,
    rate: float = 1e8,
) -> MachineModel:
    """Solve (a_m, a_k, a_n, h) so the four model crossovers hit targets.

    Four equations (square tau + three long-thin crossovers) in four
    unknowns, solved with a damped Newton (scipy fsolve).  Raises if the
    solver fails to reproduce the targets to 0.5 units.
    """

    targets = np.array([tau, tau_m, tau_k, tau_n], dtype=float)

    def residual(p: np.ndarray) -> np.ndarray:
        mach = MachineModel(
            name=name, rate=rate,
            a_m=p[0], a_k=p[1], a_n=p[2], h=p[3], g=g, g2=g2,
        )
        got = np.array(
            [
                model_square_crossover(mach),
                model_rect_crossover(mach, "m", fixed),
                model_rect_crossover(mach, "k", fixed),
                model_rect_crossover(mach, "n", fixed),
            ]
        )
        return got - targets

    # Closed-form seed from the asymptotic analysis (see DESIGN.md):
    # tau ~ 3(a_m+a_k+a_n) + 18 g + 3 h;  tau_m ~ 3 a_m + 4 g + 3 h; ...
    h0 = (tau_m + tau_k + tau_n - tau) / 6.0
    p0 = np.array(
        [
            max((tau_m - 4 * g - 3 * h0) / 3.0, 0.1),
            max((tau_k - 7 * g - 3 * h0) / 3.0, 0.1),
            max((tau_n - 4 * g - 3 * h0) / 3.0, 0.1),
            h0,
        ]
    )
    sol, info, ier, msg = fsolve(residual, p0, full_output=True)
    res = residual(sol)
    if ier != 1 or np.max(np.abs(res)) > 0.5:
        raise RuntimeError(
            f"calibration for {name} failed: residual {res}, {msg}"
        )
    return MachineModel(
        name=name, rate=rate,
        a_m=float(sol[0]), a_k=float(sol[1]), a_n=float(sol[2]),
        h=float(sol[3]), g=g, g2=g2,
    )


def anchor_rate(
    mach: MachineModel, m: int, seconds: float
) -> MachineModel:
    """Rescale ``rate`` so a square DGEMM of order m takes ``seconds``.

    Used to anchor each machine against Table 5's measured DGEMM times
    (the crossovers are rate-invariant, so this does not disturb the
    fit).
    """
    t = mach.t_gemm(m, m, m)
    return replace(mach, rate=mach.rate * t / seconds)


# --------------------------------------------------------------------- #
# The Section 3.4 measurement procedure itself (used by the Table 2/3
# experiments and by users calibrating real hosts): find crossovers by
# running the actual code.
# --------------------------------------------------------------------- #

def measured_square_crossover(
    time_dgemm, time_one_level, lo: int, hi: int, step: int = 1
) -> Tuple[int, int, int]:
    """Empirical square-cutoff search (the paper's Figure 2 procedure).

    ``time_dgemm(m)`` and ``time_one_level(m)`` are timing callables.
    Returns ``(first, always, recommended)``: the first order where one
    Strassen level wins, the order from which it always wins within the
    scan range, and a recommended tau between them (the paper scanned
    120..260 on the RS/6000, found wins from 176, always-wins from 214,
    and chose tau = 199).
    """
    wins = []
    orders = list(range(lo, hi + 1, step))
    for m in orders:
        wins.append(time_dgemm(m) > time_one_level(m))
    if not any(wins):
        raise ValueError("no crossover in scan range")
    first = orders[wins.index(True)]
    always = orders[-1]
    for m, w in zip(reversed(orders), reversed(wins)):
        if not w:
            break
        always = m
    recommended = (first + always) // 2
    return first, always, recommended


def measured_rect_crossover(
    time_dgemm, time_one_level, lo: int, hi: int
) -> int:
    """Empirical long-thin crossover by bisection on even sizes.

    ``time_*`` take the single varying dimension.  Returns the smallest
    even size at which one Strassen level wins.
    """
    lo += lo % 2
    hi += hi % 2

    def wins(x: int) -> bool:
        return time_dgemm(x) > time_one_level(x)

    if wins(lo):
        return lo
    if not wins(hi):
        raise ValueError("no crossover in range")
    while hi - lo > 2:
        mid = (lo + hi) // 2
        mid += mid % 2
        if mid == hi:
            mid -= 2
        if wins(mid):
            hi = mid
        else:
            lo = mid
    return hi


def host_timers(repeats: int = 3):
    """Wall-clock ``(time_gemm, time_one_level)`` for *this* host.

    Both callables take ``(m, k, n)``, generate deterministic operands,
    and return the median of ``repeats`` timed runs of the real kernels:
    the standard-algorithm DGEMM and one level of the actual DGEFMM
    recursion (``DepthCutoff(1)``).  These are the paper's Section 3.4
    probes; :func:`calibrate_host` scans them for crossovers and the
    tune subsystem (:mod:`repro.tune.measure`) reuses them so the
    autotuner measures with the same instruments as offline
    calibration.
    """
    import numpy as _np

    from repro.blas.level3 import dgemm as _dgemm
    from repro.core.cutoff import DepthCutoff as _DepthCutoff
    from repro.core.dgefmm import dgefmm as _dgefmm
    from repro.utils.timing import time_call as _time_call

    def _mats(m, k, n):
        rng = _np.random.default_rng(m * 1000003 + k * 1009 + n)
        return (
            _np.asfortranarray(rng.standard_normal((m, k))),
            _np.asfortranarray(rng.standard_normal((k, n))),
            _np.zeros((m, n), order="F"),
        )

    def time_gemm(m, k, n):
        a, b, c = _mats(m, k, n)
        med, _ = _time_call(lambda: _dgemm(a, b, c), repeats=repeats)
        return med

    def time_one_level(m, k, n):
        a, b, c = _mats(m, k, n)
        med, _ = _time_call(
            lambda: _dgefmm(a, b, c, cutoff=_DepthCutoff(1)),
            repeats=repeats,
        )
        return med

    return time_gemm, time_one_level


def calibrate_host(
    *,
    scan_lo: int = 32,
    scan_hi: int = 512,
    fixed: int = 768,
    g: float = 5.0,
    g2: float = 1.0,
    name: str = "host",
    time_gemm=None,
    time_one_level=None,
) -> MachineModel:
    """Build a MachineModel for *this* host by the Section 3.4 procedure.

    Measures the square crossover (scan) and the three long-thin
    crossovers (bisection, other dims held at ``fixed``), fits the
    overhead parameters to them, and anchors the rate at the smallest
    always-winning square order.

    ``time_gemm(m, k, n)`` / ``time_one_level(m, k, n)`` default to the
    :func:`host_timers` wall-clock probes (median of 3); injectable for
    testing and for calibrating against recorded measurements.

    Wall-clock calibration takes a minute or two at the default bounds;
    it is an explicit user action (see examples/cutoff_tuning.py), never
    run implicitly.
    """
    if time_gemm is None or time_one_level is None:
        time_gemm, time_one_level = host_timers()

    step = max(2, (scan_hi - scan_lo) // 64)
    step += step % 2  # even steps avoid peel noise in the scan
    first, always, tau = measured_square_crossover(
        lambda m: time_gemm(m, m, m),
        lambda m: time_one_level(m, m, m),
        scan_lo, scan_hi, step,
    )
    tau_m = measured_rect_crossover(
        lambda x: time_gemm(x, fixed, fixed),
        lambda x: time_one_level(x, fixed, fixed),
        4, scan_hi,
    )
    tau_k = measured_rect_crossover(
        lambda x: time_gemm(fixed, x, fixed),
        lambda x: time_one_level(fixed, x, fixed),
        4, scan_hi,
    )
    tau_n = measured_rect_crossover(
        lambda x: time_gemm(fixed, fixed, x),
        lambda x: time_one_level(fixed, fixed, x),
        4, scan_hi,
    )
    mach = fit_overheads(
        name, tau, tau_m, tau_k, tau_n, fixed=float(fixed), g=g,
    )
    mach = replace(mach, g2=g2)
    anchor = always + (always % 2)
    return anchor_rate(mach, anchor, time_gemm(anchor, anchor, anchor))
