"""Machine cost models: the paper's three testbeds, simulated.

The paper's timing-shaped results (cutoff crossovers, criteria
comparisons, recursion tables, code-vs-code ratios) were measured on an
IBM RS/6000, a CRAY YMP C90 and a CRAY T3D processor.  This subpackage
replaces that hardware with per-machine analytic cost models
(:class:`~repro.machines.model.MachineModel`) whose parameters are
*calibrated* (:mod:`repro.machines.calibrate`) so that the empirical
crossover experiments of Section 4.2, run through the real DGEFMM code in
dry-run mode, land on the paper's Table 2/3 cutoffs.  The calibrated
presets live in :mod:`repro.machines.presets`.
"""

from repro.machines.model import MachineModel
from repro.machines.presets import C90, RS6000, T3D, MACHINES

__all__ = ["MachineModel", "RS6000", "C90", "T3D", "MACHINES"]
