"""Bounded admission queue with signature-keyed micro-batch formation.

The queue is the service's pressure point: submissions race workers for
a bounded buffer, and what happens at capacity is an explicit,
configurable *policy* rather than an accident of buffering:

``"reject"``
    Fail fast: :class:`~repro.errors.ServiceOverloaded` to the
    submitter.  The classic load-shedding front door — callers retry
    against a replica or degrade gracefully.
``"block"``
    Backpressure: the submitting thread waits for space (optionally
    bounded by a timeout, after which ``ServiceOverloaded`` is raised).
    Converts overload into submitter-side latency — the closed-loop
    batch-workload choice.
``"shed-oldest"``
    Admit the newcomer by failing the *oldest* queued request with
    ``ServiceOverloaded``.  Freshness-first: under sustained overload
    the queue holds the newest work, and the shed request's future
    fails immediately instead of waiting out a doomed deadline.

Requests are bucketed by plan signature as they arrive, so batch
formation is O(distinct signatures), not O(queue): a worker takes the
bucket whose *head is globally oldest* (no signature can starve) and
drains up to ``max_batch`` requests from it — all replayable through
one compiled plan from one workspace arena.  Unbatchable requests
(degenerate problems, ``signature is None``) get a private bucket each
and ride through as singleton batches.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import OrderedDict, deque
from typing import Deque, Dict, Hashable, List, Optional

from repro.errors import ArgumentError, ServiceClosed, ServiceOverloaded
from repro.serve.request import GemmRequest

__all__ = ["AdmissionQueue", "POLICIES"]

#: recognised admission-control policies
POLICIES = ("reject", "block", "shed-oldest")


class AdmissionQueue:
    """Bounded, signature-bucketed FIFO with pluggable overflow policy.

    FIFO is global across buckets in the sense that matters for
    fairness: admission order assigns a monotone sequence number, batch
    formation always serves the bucket holding the oldest outstanding
    request, and ``shed-oldest`` evicts the globally oldest request.
    """

    def __init__(self, capacity: int = 256, policy: str = "reject") -> None:
        if capacity < 1:
            raise ArgumentError(
                "AdmissionQueue", "capacity",
                f"must be >= 1, got {capacity}",
            )
        if policy not in POLICIES:
            raise ArgumentError(
                "AdmissionQueue", "policy",
                f"must be one of {POLICIES}, got {policy!r}",
            )
        self.capacity = int(capacity)
        self.policy = policy
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._buckets: "OrderedDict[Hashable, Deque[GemmRequest]]" = (
            OrderedDict()
        )
        self._count = 0
        self._closed = False
        self._seq = itertools.count()

    # ------------------------------------------------------------------ #
    @property
    def depth(self) -> int:
        """Requests currently queued."""
        with self._lock:
            return self._count

    def _key(self, req: GemmRequest) -> Hashable:
        # degenerate requests are unbatchable: a unique key each
        if req.signature is None:
            return ("solo", req.seq)
        return req.signature

    def _insert(self, req: GemmRequest) -> None:
        # caller holds the lock; seq must already be assigned
        bucket = self._buckets.get(self._key(req))
        if bucket is None:
            self._buckets[self._key(req)] = deque((req,))
        else:
            bucket.append(req)
        self._count += 1
        self._not_empty.notify()

    def _pop_oldest(self) -> GemmRequest:
        # caller holds the lock; queue must be non-empty
        oldest_key = min(self._buckets, key=lambda k: self._buckets[k][0].seq)
        bucket = self._buckets[oldest_key]
        req = bucket.popleft()
        if not bucket:
            del self._buckets[oldest_key]
        self._count -= 1
        return req

    # ------------------------------------------------------------------ #
    def put(
        self, req: GemmRequest, timeout: Optional[float] = None
    ) -> Optional[GemmRequest]:
        """Admit ``req``; returns the request *shed* to make room, if any.

        Raises :class:`~repro.errors.ServiceOverloaded` when the queue
        is full under ``"reject"``, or when a ``"block"`` wait exceeds
        ``timeout``; raises :class:`~repro.errors.ServiceClosed` after
        :meth:`close`.  The caller (the service) fails a shed request's
        future — the queue itself never touches futures.
        """
        with self._lock:
            if self._closed:
                raise ServiceClosed("queue is closed to submissions")
            shed: Optional[GemmRequest] = None
            if self._count >= self.capacity:
                if self.policy == "reject":
                    raise ServiceOverloaded(
                        f"queue full ({self._count}/{self.capacity})"
                    )
                if self.policy == "block":
                    deadline = (
                        None if timeout is None
                        else time.monotonic() + timeout
                    )
                    while self._count >= self.capacity:
                        if self._closed:
                            raise ServiceClosed(
                                "queue closed while waiting for space"
                            )
                        if deadline is None:
                            self._not_full.wait()
                        else:
                            remaining = deadline - time.monotonic()
                            if remaining <= 0 or not self._not_full.wait(
                                remaining
                            ):
                                raise ServiceOverloaded(
                                    f"no queue space within {timeout} s "
                                    f"({self._count}/{self.capacity})"
                                )
                else:  # shed-oldest
                    shed = self._pop_oldest()
            req.seq = next(self._seq)
            self._insert(req)
            return shed

    def take_batch(
        self, max_batch: int, timeout: Optional[float] = None
    ) -> Optional[List[GemmRequest]]:
        """Oldest-first batch of same-signature requests; None on close.

        Blocks until work arrives (or ``timeout`` elapses — then an
        empty list is returned so pollers can heartbeat).  After
        :meth:`close`, remaining requests are still handed out so
        shutdown can drain; None signals drained-and-closed.
        """
        if max_batch < 1:
            raise ArgumentError(
                "AdmissionQueue", "max_batch",
                f"must be >= 1, got {max_batch}",
            )
        with self._lock:
            while self._count == 0:
                if self._closed:
                    return None
                if not self._not_empty.wait(timeout):
                    return []
            first = self._pop_oldest()
            batch = [first]
            key = self._key(first)
            bucket = self._buckets.get(key)
            if bucket is not None and first.signature is not None:
                while bucket and len(batch) < max_batch:
                    batch.append(bucket.popleft())
                    self._count -= 1
                if not bucket:
                    del self._buckets[key]
            self._not_full.notify(len(batch))
            return batch

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Stop admissions; queued work remains drainable."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()

    def drain(self) -> List[GemmRequest]:
        """Remove and return everything queued (for failing at shutdown)."""
        with self._lock:
            out: List[GemmRequest] = []
            while self._count:
                out.append(self._pop_oldest())
            self._not_full.notify_all()
            return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        with self._lock:
            return (
                f"AdmissionQueue(depth={self._count}/{self.capacity}, "
                f"buckets={len(self._buckets)}, policy={self.policy!r}, "
                f"closed={self._closed})"
            )
