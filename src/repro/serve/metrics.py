"""Live serving metrics: thread-safe counters and latency histograms.

The serving engine (:mod:`repro.serve.service`) is judged the way a
production GEMM tier would be — queue depth, batch sizes, wait versus
compute time, rejection and timeout counts, tail latency — so the
metrics layer is a first-class part of the subsystem, not an
afterthought.  A :class:`MetricsRegistry` holds named :class:`Counter`
and :class:`Histogram` instruments; :meth:`MetricsRegistry.snapshot`
returns one plain-JSON-serializable dict (the schema documented in
``docs/api.md`` and emitted by ``python -m repro serve --json``).

Every instrument takes its own lock per update: contention is one
uncontended CPython lock acquire on the request path, and the snapshot
is consistent per-instrument.  Histograms record exact ``count``,
``sum``, ``min`` and ``max``, and estimate quantiles from a bounded
sample ring (deterministic overwrite, oldest-first) so a long-running
service cannot grow memory without bound.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Optional

__all__ = ["Counter", "Histogram", "HistogramFamily", "MetricsRegistry"]


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name}={self.value})"


class Histogram:
    """Observations with exact moments and ring-sampled quantiles.

    ``max_samples`` bounds memory: once more observations than that have
    arrived, new values overwrite the ring deterministically
    (``count % max_samples``), keeping a uniform-in-time window without
    randomness.  Quantiles are computed from the ring at snapshot time
    (nearest-rank on the sorted sample); count/sum/min/max stay exact
    over the full history.
    """

    __slots__ = ("name", "_lock", "_count", "_sum", "_min", "_max",
                 "_ring", "_max_samples")

    def __init__(self, name: str, max_samples: int = 65536) -> None:
        if max_samples < 1:
            raise ValueError(f"max_samples must be >= 1, got {max_samples}")
        self.name = name
        self._lock = threading.Lock()
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._ring: List[float] = []
        self._max_samples = int(max_samples)

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            if len(self._ring) < self._max_samples:
                self._ring.append(value)
            else:
                self._ring[self._count % self._max_samples] = value
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def quantile(self, q: float) -> Optional[float]:
        """Nearest-rank quantile estimate from the sample ring.

        ``None`` on an empty histogram.  The rank is ``ceil(q * n)``
        clamped to ``[1, n]``, so tiny samples behave sanely: the p99 of
        a one- or two-sample histogram is the sample maximum (the old
        ``int(q * n)`` truncation indexed *below* the nearest rank —
        p99 of two samples returned the smaller one).
        """
        with self._lock:
            return self._quantiles([q])[0]

    def _quantiles(self, qs) -> List[Optional[float]]:
        # caller holds the lock
        if not self._ring:
            return [None for _ in qs]
        ordered = sorted(self._ring)
        n = len(ordered)
        return [
            ordered[min(n, max(1, math.ceil(q * n))) - 1] for q in qs
        ]

    def snapshot(self) -> Dict[str, Optional[float]]:
        """One consistent view of the histogram under a single lock hold.

        ``count``/``sum``/``min``/``max``/``mean`` are exact over the
        full observation history; the quantiles are nearest-rank over
        the sample ring, which after wrap covers only the most recent
        window — ``samples`` reports that window size so a consumer can
        tell the two apart (``samples < count`` means the ring has
        wrapped and quantiles are windowed estimates).
        """
        with self._lock:
            p50, p95, p99 = self._quantiles((0.50, 0.95, 0.99))
            return {
                "count": self._count,
                "sum": self._sum,
                "min": self._min,
                "max": self._max,
                "mean": self._sum / self._count if self._count else None,
                "samples": len(self._ring),
                "p50": p50,
                "p95": p95,
                "p99": p99,
            }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        s = self.snapshot()
        return f"Histogram({self.name}: n={s['count']}, p50={s['p50']})"


class HistogramFamily:
    """Labeled histograms: one :class:`Histogram` per label value.

    The per-signature latency breakdown needs one histogram per plan
    signature observed in traffic — an *open-ended* label set, unlike
    the fixed instrument names.  Unbounded label cardinality is the
    classic way a metrics layer eats a service's memory, so the family
    holds at most ``max_labels`` distinct traffic labels; observations
    for any label beyond that fold into the ``"__overflow__"`` label
    (one extra histogram at most), so memory stays bounded no matter
    what traffic does.  Labels use smaller sample rings than the global
    histograms — there can be many of them.
    """

    OVERFLOW = "__overflow__"

    __slots__ = ("name", "_lock", "_labels", "_max_labels", "_max_samples")

    def __init__(
        self,
        name: str,
        max_labels: int = 256,
        max_samples: int = 2048,
    ) -> None:
        if max_labels < 1:
            raise ValueError(f"max_labels must be >= 1, got {max_labels}")
        self.name = name
        self._lock = threading.Lock()
        self._labels: Dict[str, Histogram] = {}
        self._max_labels = int(max_labels)
        self._max_samples = int(max_samples)

    def observe(self, label: str, value: float) -> None:
        with self._lock:
            hist = self._labels.get(label)
            if hist is None:
                if len(self._labels) >= self._max_labels:
                    label = self.OVERFLOW
                    hist = self._labels.get(label)
                if hist is None:
                    hist = Histogram(
                        f"{self.name}{{{label}}}", self._max_samples
                    )
                    self._labels[label] = hist
        hist.observe(value)

    def labels(self) -> List[str]:
        with self._lock:
            return sorted(self._labels)

    def get(self, label: str) -> Optional[Histogram]:
        with self._lock:
            return self._labels.get(label)

    def snapshot(self) -> Dict[str, Dict]:
        with self._lock:
            labels = dict(self._labels)
        return {
            label: labels[label].snapshot() for label in sorted(labels)
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"HistogramFamily({self.name}: {len(self.labels())} labels)"


class MetricsRegistry:
    """Named instruments with get-or-create semantics.

    One registry per :class:`~repro.serve.service.GemmService` (or share
    one across services to aggregate).  ``counter``/``histogram``/
    ``histogram_family`` are idempotent by name, so independent call
    sites can reference the same instrument without coordination; asking
    for a name already registered as another kind raises ``ValueError``.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._families: Dict[str, HistogramFamily] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            if name in self._histograms or name in self._families:
                raise ValueError(f"{name!r} is already another instrument")
            inst = self._counters.get(name)
            if inst is None:
                inst = self._counters[name] = Counter(name)
            return inst

    def histogram(self, name: str, max_samples: int = 65536) -> Histogram:
        with self._lock:
            if name in self._counters or name in self._families:
                raise ValueError(f"{name!r} is already another instrument")
            inst = self._histograms.get(name)
            if inst is None:
                inst = self._histograms[name] = Histogram(name, max_samples)
            return inst

    def histogram_family(
        self,
        name: str,
        max_labels: int = 256,
        max_samples: int = 2048,
    ) -> HistogramFamily:
        with self._lock:
            if name in self._counters or name in self._histograms:
                raise ValueError(f"{name!r} is already another instrument")
            inst = self._families.get(name)
            if inst is None:
                inst = self._families[name] = HistogramFamily(
                    name, max_labels, max_samples
                )
            return inst

    def snapshot(self) -> Dict[str, Dict]:
        """One JSON-serializable document of every instrument's state."""
        with self._lock:
            counters = dict(self._counters)
            histograms = dict(self._histograms)
            families = dict(self._families)
        return {
            "counters": {
                name: counters[name].value for name in sorted(counters)
            },
            "histograms": {
                name: histograms[name].snapshot()
                for name in sorted(histograms)
            },
            "families": {
                name: families[name].snapshot()
                for name in sorted(families)
            },
        }
