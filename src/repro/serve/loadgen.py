"""Self-contained load generator and correctness monitor for GemmService.

``python -m repro serve`` runs this: an **open-loop** arrival process
(requests land at a fixed rate whether or not earlier ones finished —
the honest way to probe a service's saturation behaviour, unlike
closed-loop clients whose back-pressure hides overload) over a
repeating mix of shapes drawn from the fuzz case distribution
(:mod:`repro.fuzz.cases`), so the traffic exercises the same transpose/
scalar/dtype/layout classes the differential oracle does.

Every completed response is verified **bit-identical** against a direct
:func:`~repro.core.dgefmm.dgefmm` call on the same operands (computed
once per mix entry — requests repeat the mix, so one reference serves
all its repeats).  A nonzero ``divergent`` count in the report is a
correctness failure, not a statistic.

The mix repeats deliberately: production GEMM traffic is dominated by
recurring shapes, and the repeat is what the plan cache and workspace
pool amortize against — the report's ``plan_cache.hit_rate`` shows it.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.cutoff import SimpleCutoff
from repro.core.dgefmm import dgefmm
from repro.errors import ServiceOverloaded, ServiceTimeout
from repro.fuzz.cases import FuzzCase, draw_case, materialize
from repro.plan.cache import PlanCache
from repro.serve.service import GemmService

__all__ = ["build_mix", "run_load"]


def build_mix(
    n_shapes: int = 8,
    seed: int = 0,
    max_dim: int = 48,
    scheme: Optional[str] = None,
    fast_only: bool = False,
    dtypes: Optional[Sequence[str]] = None,
) -> List[FuzzCase]:
    """A deterministic mix of ``n_shapes`` serveable fuzz cases.

    Draws from the edge-heavy fuzz distribution, skipping aliased
    cases (the service snapshots C, so aliasing degenerates to the
    plain case) — everything else, including degenerate dimensions,
    zero scalars, mixed dtypes and hostile layouts, stays in the mix.
    ``scheme`` pins every case to one scheme (all other knobs keep
    their drawn values), mirroring ``repro fuzz --scheme``.
    ``fast_only`` additionally drops cases whose accuracy SLO is not
    ``"fast"`` — the fused plan path compiles against the fast kernels
    only, so a fused run must serve a fast-only mix.  ``dtypes``
    restricts the mix to an allowlist — the network path passes
    :data:`~repro.api.protocol.WIRE_DTYPES`, since exact dtypes don't
    travel over the wire.
    """
    rng = np.random.default_rng(seed)
    mix: List[FuzzCase] = []
    while len(mix) < n_shapes:
        case = draw_case(rng, max_dim=max_dim)
        if case.alias != "none":
            continue
        if fast_only and case.accuracy != "fast":
            continue
        if dtypes is not None and case.dtype not in dtypes:
            continue
        mix.append(case)
    if scheme is not None:
        mix = [dataclasses.replace(case, scheme=scheme) for case in mix]
    return mix


def _reference(case: FuzzCase, a, b, c, *,
               fuse: bool = False,
               plan_cache: Optional[PlanCache] = None) -> np.ndarray:
    """Direct dgefmm on operands materialized exactly like the service.

    The service starts ``beta == 0`` outputs from Fortran-ordered zeros
    and ``beta != 0`` outputs from a plain copy of the caller's C; the
    reference does the same, so bit-identity is the plan-replay
    guarantee and nothing else.  Under ``fuse`` the reference runs
    through the fused plan path too (fused replay is deterministic but
    not bit-identical to the recursive driver — the batched kernel's
    accumulation order differs), so the monitor keeps asserting exact
    equality rather than a tolerance.
    """
    alpha, beta = case.scalars()
    if beta != 0.0:
        out = np.array(c, copy=True)
    else:
        dt = np.result_type(a, b)
        out = np.zeros((case.m, case.n), dtype=dt, order="F")
    kwargs = {"plan_cache": plan_cache, "fuse": True} if fuse else {}
    dgefmm(a, b, out, alpha, beta, case.transa, case.transb,
           cutoff=SimpleCutoff(case.tau), scheme=case.scheme,
           peel=case.peel, accuracy=case.accuracy, **kwargs)
    return out


def run_load(
    duration: float = 3.0,
    rate: float = 200.0,
    *,
    workers: int = 2,
    policy: str = "reject",
    capacity: int = 256,
    max_batch: int = 32,
    n_shapes: int = 8,
    seed: int = 0,
    max_dim: int = 48,
    scheme: Optional[str] = None,
    fuse: bool = False,
    request_timeout: Optional[float] = None,
    verify: bool = True,
    service: Optional[GemmService] = None,
    canonical_operands: bool = False,
    dtypes: Optional[Sequence[str]] = None,
) -> Dict[str, Any]:
    """Drive a GemmService at ``rate`` req/s for ``duration`` seconds.

    Returns a JSON-serializable report: attempt/outcome counts, the
    divergence tally (when ``verify``), achieved rate, and the
    service's full metrics snapshot.  ``service`` lets callers inject a
    preconfigured instance — anything with the ``submit``/``stats``
    surface works, including the network
    :class:`~repro.api.client.GemmClient`; otherwise one is built from
    the knobs and closed before returning.  ``scheme`` pins the whole
    mix to one scheme.  ``fuse`` serves (and verifies) the mix through
    the fused plan path; it applies to the locally-built service —
    configure an injected ``service`` directly.

    ``canonical_operands`` converts every operand to Fortran order
    before anything touches it.  Network serving needs this: the wire
    canonicalizes layout during serialization, and BLAS accumulation
    order (hence the result's low bits) is layout-dependent — with the
    flag set, reference and server provably compute on the same bytes
    and bit-identity stays assertable end to end.
    """
    mix = build_mix(n_shapes=n_shapes, seed=seed, max_dim=max_dim,
                    scheme=scheme, fast_only=fuse, dtypes=dtypes)
    operands: List[Tuple[Any, Any, Any]] = []
    expected: List[Optional[np.ndarray]] = []
    ref_cache = PlanCache() if (verify and fuse) else None
    for case in mix:
        a, b, c, c0 = materialize(case)
        if canonical_operands:
            a = np.asarray(a, order="F")
            b = np.asarray(b, order="F")
            c = np.asarray(c, order="F")
        operands.append((a, b, c))
        expected.append(
            _reference(case, a, b, c, fuse=fuse, plan_cache=ref_cache)
            if verify else None
        )

    own_service = service is None
    svc = service if service is not None else GemmService(
        workers=workers, capacity=capacity, policy=policy,
        max_batch=max_batch, fuse=fuse,
    )
    inflight: List[Tuple[int, Any]] = []   # (mix index, future)
    attempts = rejected = 0
    interval = 1.0 / rate if rate > 0 else 0.0
    t_start = time.monotonic()
    t_end = t_start + duration
    try:
        i = 0
        while True:
            next_arrival = t_start + i * interval
            now = time.monotonic()
            if next_arrival >= t_end:
                break
            if next_arrival > now:
                time.sleep(next_arrival - now)
                if time.monotonic() >= t_end:
                    break
            idx = i % len(mix)
            case = mix[idx]
            a, b, c = operands[idx]
            alpha, beta = case.scalars()
            attempts += 1
            try:
                fut = svc.submit(
                    a, b, c if beta != 0.0 else None, alpha, beta,
                    case.transa, case.transb,
                    timeout=request_timeout,
                    block_timeout=request_timeout,
                    cutoff=SimpleCutoff(case.tau),
                    scheme=case.scheme, peel=case.peel,
                    accuracy=case.accuracy,
                )
                inflight.append((idx, fut))
            except ServiceOverloaded:
                rejected += 1
            i += 1

        # drain: wait for every accepted request to resolve
        completed = shed = timeouts = errors = divergent = 0
        failures: List[str] = []
        for idx, fut in inflight:
            try:
                got = fut.result(timeout=60.0)
            except ServiceOverloaded:
                shed += 1
                continue
            except ServiceTimeout:
                timeouts += 1
                continue
            except Exception as exc:  # noqa: BLE001 — report, don't mask
                errors += 1
                if len(failures) < 10:
                    failures.append(f"{type(exc).__name__}: {exc}")
                continue
            completed += 1
            if verify and not np.array_equal(got, expected[idx]):
                divergent += 1
                if len(failures) < 10:
                    case = mix[idx]
                    failures.append(
                        f"divergence on {case.m}x{case.k}x{case.n} "
                        f"dtype={case.dtype}"
                    )
        elapsed = time.monotonic() - t_start
    finally:
        if own_service:
            svc.close()

    stats = svc.stats()
    return {
        "duration_s": elapsed,
        "offered_rate": rate,
        "achieved_rate": completed / elapsed if elapsed > 0 else 0.0,
        "attempts": attempts,
        "completed": completed,
        "rejected": rejected,
        "shed": shed,
        "timeouts": timeouts,
        "errors": errors,
        "divergent": divergent,
        "verified": bool(verify),
        "fuse": bool(fuse),
        "failures": failures,
        "mix": [
            {"m": c.m, "k": c.k, "n": c.n, "dtype": c.dtype,
             "accuracy": c.accuracy,
             "scheme": c.scheme, "tau": c.tau,
             "beta_zero": c.scalars()[1] == 0.0}
            for c in mix
        ],
        "service": stats,
    }
