"""In-process batched GEMM serving: queueing, micro-batching, metrics.

The subsystem turns the library's compiled-plan machinery into a
long-lived service: :class:`~repro.serve.service.GemmService` accepts
``C <- alpha*op(A)*op(B) + beta*C`` requests into a bounded
admission-controlled queue, groups them by plan signature so one
compiled :class:`~repro.plan.compiler.ExecutionPlan` replays across a
whole micro-batch from one workspace arena, executes on a worker pool,
and reports live metrics (queue depth, batch sizes, wait/compute split,
tail latency, cache hit rate).

Entry points:

- :class:`GemmService` — the engine (``submit``/``call``/``stats``).
- :func:`run_load` — open-loop load generator with bit-identity
  verification against direct ``dgefmm`` (``python -m repro serve``).
"""

from repro.serve.loadgen import build_mix, run_load
from repro.serve.metrics import Counter, Histogram, MetricsRegistry
from repro.serve.queue import POLICIES, AdmissionQueue
from repro.serve.request import GemmFuture, GemmRequest
from repro.serve.service import GemmService

__all__ = [
    "AdmissionQueue",
    "Counter",
    "GemmFuture",
    "GemmRequest",
    "GemmService",
    "Histogram",
    "MetricsRegistry",
    "POLICIES",
    "build_mix",
    "run_load",
]
