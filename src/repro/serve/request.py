"""Requests and futures: the unit of work the serving engine moves.

A :class:`GemmRequest` is one validated ``C <- alpha*op(A)*op(B) +
beta*C`` problem plus the knobs that shape its execution plan; its
:attr:`~GemmRequest.signature` is the :class:`~repro.plan.compiler.
PlanSignature` the micro-batcher groups by — requests that share a
signature replay one compiled plan back-to-back from one workspace
arena.  Degenerate problems (empty output, ``k == 0``, ``alpha == 0``)
carry no signature: they never reach the plan machinery (matching the
drivers' early-outs) and are served solo through ``dgefmm``.

A :class:`GemmFuture` is the caller's handle: ``result(timeout)`` blocks
until the worker publishes the output array or the failure
(:class:`~repro.errors.ServiceOverloaded` when shed,
:class:`~repro.errors.ServiceTimeout` on deadline expiry, or whatever
the execution raised).  Completed futures also expose the per-request
latency split — ``wait_s`` in queue versus ``compute_s`` on a worker —
and the size of the batch they rode in.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Optional

import numpy as np

from repro.blas.level3 import DEFAULT_TILE
from repro.blas.validate import opshape, require_matrix
from repro.core.config import GemmConfig
from repro.core.cutoff import CutoffCriterion
from repro.errors import ArgumentError, DimensionError, ServiceTimeout
from repro.plan.compiler import signature_for

__all__ = ["GemmFuture", "GemmRequest"]


class GemmFuture:
    """Write-once result handle for one submitted request."""

    __slots__ = ("_event", "_result", "_exception",
                 "wait_s", "compute_s", "batch_size")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._result: Optional[np.ndarray] = None
        self._exception: Optional[BaseException] = None
        #: seconds spent queued before a worker picked the request up
        self.wait_s: Optional[float] = None
        #: seconds of worker execution for this request alone
        self.compute_s: Optional[float] = None
        #: how many requests shared the batch (1 = unbatched)
        self.batch_size: Optional[int] = None

    # ------------------------------------------------------------------ #
    def done(self) -> bool:
        """True once a result or failure has been published."""
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> np.ndarray:
        """The output array C; blocks until published.

        Raises the request's failure if it was rejected, shed, timed
        out, or crashed; raises :class:`~repro.errors.ServiceTimeout`
        if ``timeout`` seconds elapse first (the request itself stays
        in flight — a later ``result()`` can still succeed).
        """
        if not self._event.wait(timeout):
            raise ServiceTimeout(
                f"result not available within {timeout} s"
            )
        if self._exception is not None:
            raise self._exception
        return self._result

    def exception(
        self, timeout: Optional[float] = None
    ) -> Optional[BaseException]:
        """The failure, or None for success; blocks like :meth:`result`."""
        if not self._event.wait(timeout):
            raise ServiceTimeout(
                f"result not available within {timeout} s"
            )
        return self._exception

    # ------------------------------------------------------------------ #
    def _set_result(self, value: np.ndarray) -> None:
        self._result = value
        self._event.set()

    def _set_exception(self, exc: BaseException) -> None:
        self._exception = exc
        self._event.set()


class GemmRequest:
    """One validated GEMM problem queued for service.

    Built by :meth:`~repro.serve.service.GemmService.submit`; not
    normally constructed directly.  Operands are held by reference —
    the caller must not mutate ``a``/``b`` until the future resolves.
    ``c0`` is the service's private snapshot of the initial C content
    (None when ``beta == 0``: conformant GEMM never reads C then), so
    the caller's C operand is never written and repeated submissions of
    one logical request stay independent.
    """

    __slots__ = ("a", "b", "c0", "alpha", "beta", "transa", "transb",
                 "m", "k", "n", "dtype", "cutoff", "scheme", "peel",
                 "nb", "backend", "fuse", "accuracy", "signature",
                 "future", "deadline", "seq", "t_submit")

    def __init__(
        self,
        a: Any,
        b: Any,
        c: Optional[Any] = None,
        alpha: float = 1.0,
        beta: float = 0.0,
        transa: bool = False,
        transb: bool = False,
        *,
        cutoff: CutoffCriterion,
        scheme: str = "auto",
        peel: str = "tail",
        nb: int = DEFAULT_TILE,
        backend: str = "substrate",
        fuse: bool = False,
        accuracy: str = "fast",
        deadline: Optional[float] = None,
    ) -> None:
        require_matrix("GemmService.submit", "a", a)
        require_matrix("GemmService.submit", "b", b)
        m, k = opshape(a, transa)
        kb, n = opshape(b, transb)
        if kb != k:
            raise DimensionError(
                f"GemmService.submit: op(A) is {m}x{k} but op(B) is "
                f"{kb}x{n}"
            )
        if beta != 0.0:
            if c is None:
                raise ArgumentError(
                    "GemmService.submit", "c",
                    f"is required when beta != 0 (got beta={beta})",
                )
            require_matrix("GemmService.submit", "c", c)
            if tuple(c.shape) != (m, n):
                raise DimensionError(
                    f"GemmService.submit: C has shape {tuple(c.shape)}, "
                    f"expected {(m, n)}"
                )
            # private snapshot: the caller's C is read once, here, and
            # never written — the response is a fresh array
            self.c0 = np.array(c, copy=True)
        else:
            self.c0 = None

        self.a, self.b = a, b
        self.alpha, self.beta = alpha, beta
        self.transa, self.transb = bool(transa), bool(transb)
        self.m, self.k, self.n = m, k, n
        dt = np.result_type(a, b) if c is None else np.asarray(c).dtype
        self.dtype = np.dtype(dt)
        # one validation point for all behaviour knobs, the observed
        # operand dtype included — illegal (dtype, accuracy, scheme)
        # combinations are rejected here, before the request queues
        cfg = GemmConfig(scheme=scheme, peel=peel, cutoff=cutoff,
                         nb=nb, backend=backend, fuse=fuse,
                         dtype=self.dtype.name, accuracy=accuracy)
        self.cutoff = cutoff
        self.scheme, self.peel = scheme, peel
        self.nb, self.backend = nb, backend
        self.fuse = bool(fuse)
        self.accuracy = accuracy
        self.deadline = deadline
        self.future = GemmFuture()
        self.seq = -1            # assigned at admission
        self.t_submit = time.monotonic()

        # Degenerate problems (the drivers' pre-plan early-outs) are
        # unbatchable: signature None routes them solo through dgefmm.
        if m == 0 or n == 0 or k == 0 or alpha == 0.0:
            self.signature = None
        else:
            self.signature = signature_for(
                "serial", m, k, n, self.transa, self.transb,
                False, beta == 0.0, str(self.dtype), cfg,
            )

    def expired(self, now: Optional[float] = None) -> bool:
        """True when the request's deadline has passed."""
        if self.deadline is None:
            return False
        return (time.monotonic() if now is None else now) > self.deadline

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"GemmRequest({self.m}x{self.k}x{self.n}, "
            f"dtype={self.dtype}, alpha={self.alpha}, beta={self.beta}, "
            f"batchable={self.signature is not None})"
        )
