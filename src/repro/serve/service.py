"""GemmService: the in-process batched GEMM serving engine.

This is where PRs 1–3's machinery starts earning its keep across
*streams* of requests, the regime the ROADMAP's heavy-traffic north
star describes: a :class:`~repro.plan.cache.PlanCache` amortizes plan
compilation across every request that shares a signature, a
:class:`~repro.core.pool.WorkspacePool` amortizes workspace to zero
fresh allocation, and the micro-batching scheduler amortizes *per-call*
overhead — signature construction, cache lookup, arena checkout,
worker wakeup — across whole batches of same-signature requests
(cf. the BLIS Strassen work's point that practical Strassen speedups
live in amortizing packing and workspace across invocations).

Life of a request::

    submit() -> validate -> AdmissionQueue (policy: reject/block/shed)
             -> worker takes an oldest-first same-signature batch
             -> one PlanCache fetch + one pooled arena for the batch
             -> execute_plan per request (bit-identical to dgefmm)
             -> future resolves; metrics record wait/compute/latency

Results are **bit-identical** to a direct :func:`~repro.core.dgefmm.
dgefmm` call on the same operands: the service executes through the
compiled-plan path, whose bit-identity to the recursive driver is
pinned by the plan test suite and re-checked continuously by the fuzz
oracle — and end-to-end by ``tests/test_serve.py`` across every
admission policy.

Instrumentation uses per-worker accumulation + merge (each worker
charges a private :class:`~repro.context.ExecutionContext`; totals are
merged under a lock into a ``threadsafe=True`` aggregate on demand), so
the hot path stays lock-free while shared tallies stay exact.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional

import numpy as np

from repro.blas.level3 import DEFAULT_TILE
from repro.context import ExecutionContext
from repro.core.cutoff import CutoffCriterion
from repro.core.dgefmm import DEFAULT_CUTOFF, dgefmm
from repro.core.pool import WorkspacePool
from repro.errors import (
    ArgumentError,
    ServiceClosed,
    ServiceOverloaded,
    ServiceTimeout,
)
from repro.plan.cache import PlanCache
from repro.plan.executor import execute_plan
from repro.serve.metrics import MetricsRegistry
from repro.serve.queue import POLICIES, AdmissionQueue
from repro.serve.request import GemmFuture, GemmRequest

__all__ = ["GemmService"]


class GemmService:
    """Asynchronous, micro-batching, in-process GEMM server.

    Parameters
    ----------
    workers:
        Worker threads draining the queue.  Each executes whole batches;
        within a request execution is serial (the service parallelizes
        *across* requests, respecting one global thread budget instead
        of oversubscribing per-call parallelism on top of it).
    capacity, policy:
        Admission queue bound and overflow policy (see
        :mod:`repro.serve.queue`): ``"reject"``, ``"block"``, or
        ``"shed-oldest"``.
    max_batch:
        Most requests replayed per plan fetch/arena reservation.
    cutoff:
        Default cutoff criterion for submitted requests (must be a
        frozen, hashable criterion — it is part of the plan signature).
    fuse:
        Default for the per-request ``fuse`` knob: serve batches
        through the fused replay loop (:mod:`repro.plan.fuse`) instead
        of the interpreted op stream.  Part of the plan signature, so
        fused and interpreted traffic batch separately.
    plan_cache, pool, metrics:
        Bring-your-own shared instances (e.g. one cache across several
        services), or None for private ones.
    profiles:
        Optional tuned-profile resolver consulted at admission — any
        object exposing ``resolve(m, k, n, dtype=..., beta_zero=...)
        -> profile-or-None`` where a profile carries the GemmConfig
        knob attributes (``scheme``/``peel``/``cutoff``/``nb``/
        ``backend``/``fuse``), plus ``stats()``.  In practice a
        :class:`repro.tune.store.ProfileStore`; the parameter is
        duck-typed because the serve layer sits *below* tune in the
        layering lint and must not import it.  Resolution order per
        knob: explicit per-request argument > profile > service
        default.  Hot-swapping = mutating the store's contents;
        in-flight requests carry their already-resolved knobs, so a
        swap never disturbs them.

    Use as a context manager, or call :meth:`close` — workers are
    daemonic, but an orderly close drains or fails queued work and
    makes final metrics deterministic.
    """

    def __init__(
        self,
        *,
        workers: int = 2,
        capacity: int = 256,
        policy: str = "reject",
        max_batch: int = 32,
        cutoff: Optional[CutoffCriterion] = None,
        fuse: bool = False,
        plan_cache: Optional[PlanCache] = None,
        pool: Optional[WorkspacePool] = None,
        metrics: Optional[MetricsRegistry] = None,
        profiles: Optional[Any] = None,
    ) -> None:
        if workers < 1:
            raise ArgumentError(
                "GemmService", "workers", f"must be >= 1, got {workers}"
            )
        if max_batch < 1:
            raise ArgumentError(
                "GemmService", "max_batch",
                f"must be >= 1, got {max_batch}",
            )
        self.cutoff = cutoff if cutoff is not None else DEFAULT_CUTOFF
        self.fuse = bool(fuse)
        self.plan_cache = plan_cache if plan_cache is not None else PlanCache()
        self.pool = pool if pool is not None else WorkspacePool()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.profiles = profiles
        self.max_batch = int(max_batch)
        self._queue = AdmissionQueue(capacity, policy)
        self._closed = False
        self._close_lock = threading.Lock()

        m = self.metrics
        self._m_submitted = m.counter("requests_submitted")
        self._m_completed = m.counter("requests_completed")
        self._m_rejected = m.counter("requests_rejected")
        self._m_shed = m.counter("requests_shed")
        self._m_timeout = m.counter("requests_timeout")
        self._m_failed = m.counter("requests_failed")
        self._m_batches = m.counter("batches")
        self._m_profile = m.counter("profile_resolved")
        self._h_queue_depth = m.histogram("queue_depth")
        self._h_batch = m.histogram("batch_size")
        self._h_wait = m.histogram("wait_ms")
        self._h_compute = m.histogram("compute_ms")
        self._h_latency = m.histogram("latency_ms")
        self._f_sig_latency = m.histogram_family("latency_by_signature")

        # per-signature traffic accounting: label -> structured meta
        # (dims, dtype, beta class, knobs, count) for stats() and the
        # tuner's feed; the latency distribution itself lives in the
        # histogram family above under the same label
        self._sig_lock = threading.Lock()
        self._sig_meta: Dict[str, Dict[str, Any]] = {}

        # per-worker accumulation + merge: private contexts on the hot
        # path, merged into a fresh aggregate whenever a reader asks
        self._worker_ctxs: List[ExecutionContext] = []
        self._threads: List[threading.Thread] = []
        for i in range(workers):
            wctx = ExecutionContext()
            self._worker_ctxs.append(wctx)
            t = threading.Thread(
                target=self._worker_loop, args=(wctx,),
                name=f"gemm-serve-{i}", daemon=True,
            )
            self._threads.append(t)
            t.start()

    # ------------------------------------------------------------------ #
    # submission
    # ------------------------------------------------------------------ #
    def submit(
        self,
        a: Any,
        b: Any,
        c: Optional[Any] = None,
        alpha: float = 1.0,
        beta: float = 0.0,
        transa: bool = False,
        transb: bool = False,
        *,
        timeout: Optional[float] = None,
        block_timeout: Optional[float] = None,
        cutoff: Optional[CutoffCriterion] = None,
        scheme: Optional[str] = None,
        peel: Optional[str] = None,
        nb: Optional[int] = None,
        fuse: Optional[bool] = None,
        accuracy: Optional[str] = None,
    ) -> GemmFuture:
        """Queue ``C <- alpha*op(A)*op(B) + beta*C``; returns a future.

        ``c`` supplies the initial C content when ``beta != 0`` (it is
        snapshotted, never written — the future resolves to a *new*
        array).  ``timeout`` is the request's service deadline in
        seconds: if it has not finished executing by then it fails with
        :class:`~repro.errors.ServiceTimeout`.  ``block_timeout`` bounds
        the submitter's wait under the ``"block"`` policy.  Operands
        ``a``/``b`` are held by reference and must not be mutated until
        the future resolves.

        The knob arguments (``cutoff``/``scheme``/``peel``/``nb``/
        ``fuse``/``accuracy``) default to None, meaning *no per-request
        override*: the effective value then comes from the tuned
        profile resolved for this problem's signature class (when the
        service has a ``profiles`` store and it holds a matching
        profile), else from the service defaults.  Passing an explicit
        value — including ``scheme="auto"`` or ``peel="tail"`` —
        always wins over both.  Resolution happens here, at admission:
        requests already queued keep their knobs across a profile
        hot-swap.

        ``accuracy`` is the request's accuracy SLO (one of
        :data:`repro.core.config.ACCURACIES`); unset, it defaults to
        the profile's, else to the dtype's natural discipline
        (``"exact"`` for integer/object operands, ``"fast"``
        otherwise).  A non-``"fast"`` resolution silently drops a
        *defaulted* fuse knob (fused programs are compiled for the fast
        kernels only) — an *explicit* ``fuse=True`` conflict is
        rejected at validation instead.

        Raises :class:`~repro.errors.ServiceOverloaded` (full queue,
        ``"reject"`` policy or ``"block"`` timeout),
        :class:`~repro.errors.ServiceClosed`, or a validation error
        for malformed operands — admission failures are synchronous,
        execution failures arrive through the future.
        """
        if self._closed:
            raise ServiceClosed("service is closed")
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        prof = self._resolve_profile(a, b, c, transa, transb, beta)
        if prof is not None:
            self._m_profile.inc()
        # accuracy SLO: explicit > tuned profile > dtype default
        resolved_accuracy = accuracy
        if resolved_accuracy is None and prof is not None:
            resolved_accuracy = getattr(prof, "accuracy", None)
        if resolved_accuracy is None:
            try:
                from repro.blas.dtypes import (
                    canonical_dtype,
                    default_accuracy,
                )

                dt = (np.asarray(c).dtype if c is not None and beta != 0.0
                      else np.result_type(a, b))
                resolved_accuracy = default_accuracy(canonical_dtype(dt))
            except Exception:  # noqa: BLE001 — let GemmRequest diagnose
                resolved_accuracy = "fast"
        resolved_fuse = fuse if fuse is not None else (
            prof.fuse if prof is not None else self.fuse
        )
        if fuse is None and resolved_accuracy != "fast":
            # fused programs exist for the fast kernels only; a
            # defaulted fuse yields to the accuracy SLO (an explicit
            # fuse=True conflict is a validation error downstream)
            resolved_fuse = False
        req = GemmRequest(
            a, b, c, alpha, beta, transa, transb,
            cutoff=cutoff if cutoff is not None else (
                prof.cutoff if prof is not None else self.cutoff
            ),
            scheme=scheme if scheme is not None else (
                prof.scheme if prof is not None else "auto"
            ),
            peel=peel if peel is not None else (
                prof.peel if prof is not None else "tail"
            ),
            nb=nb if nb is not None else (
                prof.nb if prof is not None else DEFAULT_TILE
            ),
            backend=prof.backend if prof is not None else "substrate",
            fuse=resolved_fuse,
            accuracy=resolved_accuracy,
            deadline=deadline,
        )
        self._h_queue_depth.observe(self._queue.depth)
        try:
            shed = self._queue.put(req, timeout=block_timeout)
        except ServiceOverloaded:
            self._m_rejected.inc()
            raise
        self._m_submitted.inc()
        if shed is not None:
            self._m_shed.inc()
            shed.future._set_exception(ServiceOverloaded(
                "shed by a newer request (shed-oldest policy)"
            ))
        return req.future

    def _resolve_profile(
        self,
        a: Any,
        b: Any,
        c: Optional[Any],
        transa: bool,
        transb: bool,
        beta: float,
    ) -> Optional[Any]:
        """The tuned profile governing this admission, or None.

        Best-effort by design: the problem dimensions are peeked from
        the operand shapes *before* full validation (which happens in
        ``GemmRequest``), so anything malformed simply resolves to no
        profile and fails with the same validation error as before.
        """
        if self.profiles is None:
            return None
        try:
            sa = a.shape
            sb = b.shape
            m, k = (sa[1], sa[0]) if transa else (sa[0], sa[1])
            n = sb[0] if transb else sb[1]
            if c is not None and beta != 0.0:
                dtype = str(np.asarray(c).dtype)
            else:
                dtype = str(np.result_type(a, b))
            return self.profiles.resolve(
                m, k, n, dtype=dtype, beta_zero=(beta == 0.0)
            )
        except Exception:  # noqa: BLE001 — resolution must never admit-fail
            return None

    def call(
        self,
        a: Any,
        b: Any,
        c: Optional[Any] = None,
        alpha: float = 1.0,
        beta: float = 0.0,
        transa: bool = False,
        transb: bool = False,
        **kwargs: Any,
    ) -> np.ndarray:
        """Synchronous convenience: submit and wait for the result."""
        timeout = kwargs.get("timeout")
        fut = self.submit(a, b, c, alpha, beta, transa, transb, **kwargs)
        return fut.result(timeout)

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def _worker_loop(self, wctx: ExecutionContext) -> None:
        while True:
            batch = self._queue.take_batch(self.max_batch)
            if batch is None:
                return
            if not batch:
                continue
            self._execute_batch(batch, wctx)

    def _execute_batch(
        self, batch: List[GemmRequest], wctx: ExecutionContext
    ) -> None:
        t_start = time.monotonic()
        live: List[GemmRequest] = []
        for req in batch:
            if req.expired(t_start):
                self._m_timeout.inc()
                req.future._set_exception(ServiceTimeout(
                    "deadline expired before execution"
                ))
            else:
                live.append(req)
        if not live:
            return
        self._m_batches.inc()
        self._h_batch.observe(len(live))

        plan = None
        arena = None
        pooled = False
        sig = live[0].signature
        try:
            if sig is not None:
                # the whole point of batching: ONE cache fetch and ONE
                # arena reservation cover every request in the batch
                plan = self.plan_cache.get_or_compile(sig)
                arena = self.pool.checkout()
                pooled = True
                # fused replay binds pack scratch past the interpreted
                # arena top, so pre-warm with the larger requirement
                need = (plan.fused.arena_bytes if plan.fused is not None
                        else plan.arena_bytes)
                if need:
                    arena.reserve(need)
        except BaseException as exc:  # compile/reserve failed: fail batch
            if pooled:
                self.pool.release(arena)
            for req in live:
                self._m_failed.inc()
                req.future._set_exception(exc)
            return

        try:
            for req in live:
                t0 = time.monotonic()
                try:
                    out = self._execute_one(req, plan, arena, wctx)
                except BaseException as exc:  # noqa: BLE001 — per-request
                    self._m_failed.inc()
                    req.future._set_exception(exc)
                    continue
                t1 = time.monotonic()
                fut = req.future
                fut.wait_s = t_start - req.t_submit
                fut.compute_s = t1 - t0
                fut.batch_size = len(live)
                self._h_wait.observe(fut.wait_s * 1e3)
                self._h_compute.observe(fut.compute_s * 1e3)
                latency_ms = (t1 - req.t_submit) * 1e3
                self._h_latency.observe(latency_ms)
                self._record_signature(req, latency_ms)
                self._m_completed.inc()
                fut._set_result(out)
        finally:
            if pooled:
                self.pool.release(arena)

    @staticmethod
    def _sig_label(req: GemmRequest) -> str:
        """Compact stable label for one plan signature's traffic."""
        if req.signature is None:
            return "degenerate"
        b = "b0" if req.beta == 0.0 else "bg"
        f = "fused" if req.fuse else "interp"
        return (
            f"{req.m}x{req.k}x{req.n}:{req.dtype}:{b}:{req.scheme}:{f}"
            f":{req.accuracy}"
        )

    def _record_signature(self, req: GemmRequest, latency_ms: float) -> None:
        """Charge one completion to its signature's traffic breakdown.

        The histogram family bounds label cardinality itself; the meta
        map mirrors that bound so both stay in step.
        """
        label = self._sig_label(req)
        with self._sig_lock:
            meta = self._sig_meta.get(label)
            if meta is None:
                if len(self._sig_meta) >= 256:
                    label = "__overflow__"
                    meta = self._sig_meta.get(label)
                if meta is None:
                    meta = self._sig_meta[label] = {
                        "m": req.m, "k": req.k, "n": req.n,
                        "dtype": str(req.dtype),
                        "beta_zero": req.beta == 0.0,
                        "scheme": req.scheme,
                        "fuse": req.fuse,
                        "accuracy": req.accuracy,
                        "count": 0,
                    }
            meta["count"] += 1
        self._f_sig_latency.observe(label, latency_ms)

    def _execute_one(
        self,
        req: GemmRequest,
        plan: Optional[Any],
        arena: Optional[Any],
        wctx: ExecutionContext,
    ) -> np.ndarray:
        if req.beta != 0.0:
            out = np.array(req.c0, copy=True)
        else:
            out = np.zeros((req.m, req.n), dtype=req.dtype, order="F")
        if plan is None:
            # degenerate problem: the driver's conformant early-outs
            dgefmm(req.a, req.b, out, req.alpha, req.beta,
                   req.transa, req.transb, cutoff=req.cutoff,
                   scheme=req.scheme, peel=req.peel,
                   accuracy=req.accuracy, ctx=wctx)
        else:
            opa = req.a.T if req.transa else req.a
            opb = req.b.T if req.transb else req.b
            execute_plan(plan, opa, opb, out, req.alpha, req.beta,
                         ctx=wctx, workspace=arena)
        return out

    # ------------------------------------------------------------------ #
    # lifecycle & introspection
    # ------------------------------------------------------------------ #
    def close(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Shut down: stop admissions, then drain or fail queued work.

        ``drain=True`` lets workers finish everything queued;
        ``drain=False`` fails queued requests with
        :class:`~repro.errors.ServiceClosed` immediately.  Either way
        every accepted future resolves: whatever is still queued after
        the workers are joined (drain budget exhausted, or a worker
        died) fails with :class:`~repro.errors.ServiceClosed` rather
        than hanging its caller forever.  Idempotent.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        if not drain:
            for req in self._queue.drain():
                req.future._set_exception(
                    ServiceClosed("service closed before execution")
                )
        self._queue.close()
        deadline = time.monotonic() + timeout
        for t in self._threads:
            t.join(max(0.0, deadline - time.monotonic()))
        # Nothing may be left dangling: a timed-out drain (or a dead
        # worker) can strand accepted requests in the queue with their
        # futures unresolved.
        for req in self._queue.drain():
            req.future._set_exception(
                ServiceClosed("service closed before execution")
            )

    def __enter__(self) -> "GemmService":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    @property
    def queue_depth(self) -> int:
        """Requests currently queued (not yet picked up by a worker)."""
        return self._queue.depth

    def context(self) -> ExecutionContext:
        """Aggregate instrumentation: per-worker counters, merged.

        The per-worker-accumulation-plus-merge pattern: worker hot
        paths charge private contexts with no locking, and a *fresh*
        threadsafe aggregate is built on the reader's clock each call
        (so repeated reads never double-count).  While traffic is in
        flight the aggregate can lag by the charges of the instant it
        was taken; after :meth:`close` it is exact.
        """
        agg = ExecutionContext(threadsafe=True)
        for wctx in self._worker_ctxs:
            agg.merge_child(wctx)
        return agg

    def stats(self) -> Dict[str, Any]:
        """One JSON-serializable snapshot of the whole serving stack."""
        snap = self.metrics.snapshot()
        snap["plan_cache"] = self.plan_cache.stats()
        snap["pool"] = self.pool.stats()
        snap["queue"] = {
            "depth": self._queue.depth,
            "capacity": self._queue.capacity,
            "policy": self._queue.policy,
        }
        ctx = self.context()
        snap["work"] = {
            "flops": ctx.flops,
            "mul_flops": ctx.mul_flops,
            "add_flops": ctx.add_flops,
            "kernel_calls": dict(ctx.kernel_calls),
        }
        # per-signature traffic breakdown: structured meta + the latency
        # distribution recorded under the same label — what the tuner's
        # feed (repro.tune.feed) and capacity planners read
        lat = self._f_sig_latency.snapshot()
        with self._sig_lock:
            metas = {k: dict(v) for k, v in self._sig_meta.items()}
        snap["signatures"] = {
            label: {**meta, "latency_ms": lat.get(label)}
            for label, meta in sorted(metas.items())
        }
        if self.profiles is not None:
            try:
                snap["profiles"] = self.profiles.stats()
            except Exception:  # noqa: BLE001 — stats must never fail
                snap["profiles"] = None
        return snap

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"GemmService(workers={len(self._threads)}, "
            f"policy={self._queue.policy!r}, depth={self._queue.depth}, "
            f"max_batch={self.max_batch}, closed={self._closed})"
        )
