"""Level 2 BLAS: matrix-vector operations.

These two routines are exactly the ones the paper's dynamic-peeling fix-up
uses (Section 3.3): the stripped odd row/column contributions are applied
with one rank-one update (DGER) and two matrix-vector products (DGEMV).
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.context import ExecutionContext, ensure_context
from repro.blas.validate import (
    require_matrix,
    require_vector,
    require_writable,
)
from repro.errors import DimensionError

__all__ = ["dgemv", "dger"]


def dgemv(
    a: Any,
    x: Any,
    y: Any,
    alpha: float = 1.0,
    beta: float = 0.0,
    trans: bool = False,
    *,
    ctx: Optional[ExecutionContext] = None,
) -> Any:
    """``y <- alpha*op(A)*x + beta*y`` (in place); returns ``y``.

    ``op(A)`` is ``A`` or ``A.T`` according to ``trans``.  ``A`` is m-by-n;
    ``x`` has length n (m if ``trans``), ``y`` length m (n if ``trans``).
    """
    ctx = ensure_context(ctx)
    m, n = require_matrix("dgemv", "a", a)
    require_vector("dgemv", "x", x)
    require_vector("dgemv", "y", y)
    require_writable("dgemv", "y", y)
    rows, cols = (n, m) if trans else (m, n)
    if x.shape[0] != cols:
        raise DimensionError(
            f"dgemv: x has length {x.shape[0]}, expected {cols}"
        )
    if y.shape[0] != rows:
        raise DimensionError(
            f"dgemv: y has length {y.shape[0]}, expected {rows}"
        )
    # Operation count: M(rows, cols, 1) = 2*rows*cols - rows.
    ctx.charge(
        "dgemv",
        muls=rows * cols,
        adds=max(0, rows * cols - rows),
        seconds=ctx.model_time("t_gemv", rows, cols),
    )
    if ctx.dry:
        return y
    if rows == 0:
        return y
    if beta == 0.0:
        y[...] = 0.0
    elif beta != 1.0:
        y *= beta
    if cols == 0 or alpha == 0.0:
        return y
    opa = a.T if trans else a
    # Standard algorithm via einsum (compiled loops, no vendor GEMV).
    prod = np.einsum("ij,j->i", opa, x)
    if alpha != 1.0:
        prod *= alpha
    y += prod
    return y


def dger(
    x: Any,
    y: Any,
    a: Any,
    alpha: float = 1.0,
    *,
    ctx: Optional[ExecutionContext] = None,
) -> Any:
    """Rank-one update ``A <- A + alpha * x * y^T`` (in place); returns ``A``.

    ``x`` has length m, ``y`` length n, ``A`` is m-by-n.
    """
    ctx = ensure_context(ctx)
    m, n = require_matrix("dger", "a", a)
    require_vector("dger", "x", x)
    require_vector("dger", "y", y)
    require_writable("dger", "a", a)
    if x.shape[0] != m:
        raise DimensionError(f"dger: x has length {x.shape[0]}, expected {m}")
    if y.shape[0] != n:
        raise DimensionError(f"dger: y has length {y.shape[0]}, expected {n}")
    ctx.charge(
        "dger",
        muls=m * n,
        adds=m * n,
        seconds=ctx.model_time("t_ger", m, n),
    )
    if ctx.dry or m == 0 or n == 0 or alpha == 0.0:
        return a
    outer = np.multiply.outer(x, y)
    if alpha != 1.0:
        outer *= alpha
    a += outer
    return a
