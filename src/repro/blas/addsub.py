"""Matrix addition/subtraction kernels — the paper's ``G(m, n)`` cost unit.

Strassen's construction trades one block multiply for a fixed number of
block additions, so these kernels are the second currency of every cost
analysis in the paper (eq. 2).  Each charges ``G(m,n) = mn`` additions and
the machine model's ``t_add(m, n)``.

The four entry points cover every combination the two STRASSEN schedules
need (Section 3.2 / Figure 1):

- ``madd(x, y, out, alpha)`` — ``out <- alpha*(x + y)``
- ``msub(x, y, out, alpha)`` — ``out <- alpha*(x - y)``
- ``accum(x, out)``          — ``out <- out + x``
- ``axpby(alpha, x, beta, y)`` — ``y <- alpha*x + beta*y``

plus the data-movement kernels the padding comparators need
(:func:`mcopy`, :func:`mzero`), charged at copy bandwidth.

All outputs are mutated in place; full aliasing of an input with the
output is permitted wherever numpy ufunc semantics make it safe (the
schedules rely on ``msub(x, y, out=y)`` style in-place chains), but
``accum(x, out=x)`` is rejected as it is always a bug.
"""

from __future__ import annotations

from typing import Any, Callable, NamedTuple, Optional

import numpy as np

from repro.context import ExecutionContext, ensure_context
from repro.blas.dtypes import WIDE, require_integral_scalar
from repro.blas.validate import require_matrix, require_shape, require_writable
from repro.errors import ArgumentError

__all__ = [
    "madd",
    "msub",
    "accum",
    "axpby",
    "mcopy",
    "mzero",
    "BlockKernels",
    "NUMERIC_KERNELS",
    "COMPENSATED_KERNELS",
    "EXACT_KERNELS",
    "KERNEL_TABLES",
    "kernels_for",
]


def _charge_add(ctx: ExecutionContext, name: str, m: int, n: int) -> None:
    ctx.charge(
        name, adds=float(m) * n, seconds=ctx.model_time("t_add", m, n)
    )


def madd(
    x: Any,
    y: Any,
    out: Any,
    alpha: float = 1.0,
    *,
    ctx: Optional[ExecutionContext] = None,
) -> Any:
    """``out <- alpha*(x + y)``; returns ``out``."""
    ctx = ensure_context(ctx)
    m, n = require_matrix("madd", "x", x)
    require_shape("madd", "y", y, (m, n))
    require_shape("madd", "out", out, (m, n))
    require_writable("madd", "out", out)
    _charge_add(ctx, "madd", m, n)
    if not ctx.dry and m and n:
        np.add(x, y, out=out)
        if alpha != 1.0:
            out *= alpha
    return out


def msub(
    x: Any,
    y: Any,
    out: Any,
    alpha: float = 1.0,
    *,
    ctx: Optional[ExecutionContext] = None,
) -> Any:
    """``out <- alpha*(x - y)``; returns ``out``."""
    ctx = ensure_context(ctx)
    m, n = require_matrix("msub", "x", x)
    require_shape("msub", "y", y, (m, n))
    require_shape("msub", "out", out, (m, n))
    require_writable("msub", "out", out)
    _charge_add(ctx, "msub", m, n)
    if not ctx.dry and m and n:
        np.subtract(x, y, out=out)
        if alpha != 1.0:
            out *= alpha
    return out


def accum(
    x: Any,
    out: Any,
    *,
    ctx: Optional[ExecutionContext] = None,
) -> Any:
    """``out <- out + x``; returns ``out``."""
    ctx = ensure_context(ctx)
    m, n = require_matrix("accum", "x", x)
    require_shape("accum", "out", out, (m, n))
    require_writable("accum", "out", out)
    if out is x:
        raise ArgumentError("accum", "out", "must not alias x")
    _charge_add(ctx, "accum", m, n)
    if not ctx.dry and m and n:
        out += x
    return out


def axpby(
    alpha: float,
    x: Any,
    beta: float,
    y: Any,
    *,
    ctx: Optional[ExecutionContext] = None,
) -> Any:
    """``y <- alpha*x + beta*y`` (matrix AXPBY); returns ``y``.

    With ``beta=0`` this is a scaled copy (``y <- alpha*x``), used by
    STRASSEN2's scaling steps; with ``alpha=1, beta=beta`` it realizes the
    ``C <- beta*C + P`` updates.

    BLAS conformance: ``beta == 0`` means ``y``'s prior content is
    *ignored*, not multiplied — the output is overwritten, so NaN/Inf
    garbage already in ``y`` never propagates.  In particular
    ``alpha == 0, beta == 0`` writes exact zeros rather than computing
    ``0*y`` (whose ``0*NaN = NaN`` would leak the garbage through the
    degenerate ``C <- beta*C`` paths of the drivers).
    """
    ctx = ensure_context(ctx)
    m, n = require_matrix("axpby", "x", x)
    require_shape("axpby", "y", y, (m, n))
    require_writable("axpby", "y", y)
    _charge_add(ctx, "axpby", m, n)
    if ctx.dry or not (m and n):
        return y
    if beta == 0.0:
        if alpha == 0.0:
            y[...] = 0.0
        elif alpha == 1.0:
            y[...] = x
        else:
            np.multiply(x, alpha, out=y)
    else:
        if beta != 1.0:
            y *= beta
        if alpha == 1.0:
            y += x
        elif alpha != 0.0:
            y += alpha * x
    return y


class BlockKernels(NamedTuple):
    """The four block-addition entry points as an injectable namespace.

    The Strassen schedules (:mod:`repro.core.strassen1`,
    :mod:`repro.core.strassen2`, :mod:`repro.core.textbook`, and the
    parallel level's stage helpers) take a ``kernels`` argument of this
    shape.  The default, :data:`NUMERIC_KERNELS`, performs the numerics;
    the plan compiler (:mod:`repro.plan.compiler`) substitutes a
    *recording* set that emits typed plan ops instead, so one schedule
    definition serves both live execution and plan compilation without
    the two ever drifting apart.
    """

    madd: Callable[..., Any]
    msub: Callable[..., Any]
    accum: Callable[..., Any]
    axpby: Callable[..., Any]


#: the real (numeric) kernel set — the default everywhere
NUMERIC_KERNELS = BlockKernels(madd, msub, accum, axpby)


# -- compensated kernel set -------------------------------------------- #
# Charges and kernel-call names are IDENTICAL to the fast set — the cost
# model and the exactness cross-checks see the same tallies at every
# accuracy; only the rounding error changes.  A single IEEE add or
# multiply is already correctly rounded, so ``accum`` and the one-op
# branches of the other kernels are reused verbatim: the compensated win
# is in multi-op expressions on the narrow dtypes, which evaluate in the
# WIDE counterpart and round once at the output write.  Double-precision
# dtypes have no wider hardware type; their compensation lives in the
# base GEMM's Kahan tile accumulation (:func:`repro.blas.level3.dgemm`
# with ``accuracy="compensated"``).


def _wide_of(out: Any) -> Optional[str]:
    dt = getattr(out, "dtype", None)
    return None if dt is None else WIDE.get(np.dtype(dt).name)


def madd_compensated(
    x: Any,
    y: Any,
    out: Any,
    alpha: float = 1.0,
    *,
    ctx: Optional[ExecutionContext] = None,
) -> Any:
    """``out <- alpha*(x + y)`` with one rounding on narrow dtypes."""
    ctx = ensure_context(ctx)
    m, n = require_matrix("madd", "x", x)
    require_shape("madd", "y", y, (m, n))
    require_shape("madd", "out", out, (m, n))
    require_writable("madd", "out", out)
    _charge_add(ctx, "madd", m, n)
    if not ctx.dry and m and n:
        wide = _wide_of(out)
        if wide is None or alpha == 1.0:
            np.add(x, y, out=out)
            if alpha != 1.0:
                out *= alpha
        else:
            out[...] = (np.add(x, y, dtype=wide) * alpha).astype(out.dtype)
    return out


def msub_compensated(
    x: Any,
    y: Any,
    out: Any,
    alpha: float = 1.0,
    *,
    ctx: Optional[ExecutionContext] = None,
) -> Any:
    """``out <- alpha*(x - y)`` with one rounding on narrow dtypes."""
    ctx = ensure_context(ctx)
    m, n = require_matrix("msub", "x", x)
    require_shape("msub", "y", y, (m, n))
    require_shape("msub", "out", out, (m, n))
    require_writable("msub", "out", out)
    _charge_add(ctx, "msub", m, n)
    if not ctx.dry and m and n:
        wide = _wide_of(out)
        if wide is None or alpha == 1.0:
            np.subtract(x, y, out=out)
            if alpha != 1.0:
                out *= alpha
        else:
            out[...] = (
                np.subtract(x, y, dtype=wide) * alpha
            ).astype(out.dtype)
    return out


def axpby_compensated(
    alpha: float,
    x: Any,
    beta: float,
    y: Any,
    *,
    ctx: Optional[ExecutionContext] = None,
) -> Any:
    """``y <- alpha*x + beta*y`` evaluated wide on narrow dtypes.

    The fast kernel's generic branch takes three roundings in ``y``'s
    precision; on float32/complex64 this one takes its roundings in the
    WIDE dtype and a single final rounding back down — which is what
    rescues the classic cancellation case ``alpha*x ≈ -beta*y`` (see
    ``tests/test_precision.py``).  Degenerate scalar classes and the
    double-precision dtypes match the fast kernel bit for bit.
    """
    ctx = ensure_context(ctx)
    m, n = require_matrix("axpby", "x", x)
    require_shape("axpby", "y", y, (m, n))
    require_writable("axpby", "y", y)
    _charge_add(ctx, "axpby", m, n)
    if ctx.dry or not (m and n):
        return y
    wide = _wide_of(y)
    if beta == 0.0:
        if alpha == 0.0:
            y[...] = 0.0
        elif alpha == 1.0:
            y[...] = x
        elif wide is None:
            np.multiply(x, alpha, out=y)
        else:
            y[...] = np.multiply(x, alpha, dtype=wide).astype(y.dtype)
    elif wide is None or alpha == 0.0:
        if beta != 1.0:
            y *= beta
        if alpha == 1.0:
            y += x
        elif alpha != 0.0:
            y += alpha * x
    else:
        y[...] = (
            np.multiply(y, beta, dtype=wide)
            + np.multiply(x, alpha, dtype=wide)
        ).astype(y.dtype)
    return y


#: compensated kernel set (``accuracy="compensated"``)
COMPENSATED_KERNELS = BlockKernels(
    madd_compensated, msub_compensated, accum, axpby_compensated
)


# -- exact kernel set -------------------------------------------------- #
# Integer/object arithmetic, no float intermediates: scalars must be
# integral (coerced to Python int, so ``int64 *= beta`` never trips
# numpy's unsafe-cast refusal and object arrays stay arbitrary
# precision), and outputs must carry an exact dtype — a float output
# would mean some upstream step already rounded.


def _require_exact_operand(where: str, name: str, out: Any) -> None:
    dt = getattr(out, "dtype", None)
    if dt is not None and np.dtype(dt).kind not in "iuO":
        raise ArgumentError(
            where, name,
            f"exact kernels require integer/object operands, "
            f"got dtype {np.dtype(dt).name}",
        )


def madd_exact(
    x: Any,
    y: Any,
    out: Any,
    alpha: float = 1.0,
    *,
    ctx: Optional[ExecutionContext] = None,
) -> Any:
    """``out <- alpha*(x + y)`` in exact integer/object arithmetic."""
    ctx = ensure_context(ctx)
    m, n = require_matrix("madd", "x", x)
    require_shape("madd", "y", y, (m, n))
    require_shape("madd", "out", out, (m, n))
    require_writable("madd", "out", out)
    ai = require_integral_scalar("madd", "alpha", alpha)
    _charge_add(ctx, "madd", m, n)
    if not ctx.dry and m and n:
        _require_exact_operand("madd", "out", out)
        np.add(x, y, out=out)
        if ai != 1:
            out *= ai
    return out


def msub_exact(
    x: Any,
    y: Any,
    out: Any,
    alpha: float = 1.0,
    *,
    ctx: Optional[ExecutionContext] = None,
) -> Any:
    """``out <- alpha*(x - y)`` in exact integer/object arithmetic."""
    ctx = ensure_context(ctx)
    m, n = require_matrix("msub", "x", x)
    require_shape("msub", "y", y, (m, n))
    require_shape("msub", "out", out, (m, n))
    require_writable("msub", "out", out)
    ai = require_integral_scalar("msub", "alpha", alpha)
    _charge_add(ctx, "msub", m, n)
    if not ctx.dry and m and n:
        _require_exact_operand("msub", "out", out)
        np.subtract(x, y, out=out)
        if ai != 1:
            out *= ai
    return out


def axpby_exact(
    alpha: float,
    x: Any,
    beta: float,
    y: Any,
    *,
    ctx: Optional[ExecutionContext] = None,
) -> Any:
    """``y <- alpha*x + beta*y`` in exact integer/object arithmetic."""
    ctx = ensure_context(ctx)
    m, n = require_matrix("axpby", "x", x)
    require_shape("axpby", "y", y, (m, n))
    require_writable("axpby", "y", y)
    ai = require_integral_scalar("axpby", "alpha", alpha)
    bi = require_integral_scalar("axpby", "beta", beta)
    _charge_add(ctx, "axpby", m, n)
    if ctx.dry or not (m and n):
        return y
    _require_exact_operand("axpby", "y", y)
    if bi == 0:
        if ai == 0:
            y[...] = 0
        elif ai == 1:
            y[...] = x
        else:
            np.multiply(x, ai, out=y)
    else:
        if bi != 1:
            y *= bi
        if ai == 1:
            y += x
        elif ai != 0:
            y += ai * x
    return y


#: exact kernel set (``accuracy="exact"``, int64/object dtypes)
EXACT_KERNELS = BlockKernels(madd_exact, msub_exact, accum, axpby_exact)


#: accuracy mode -> the BlockKernels set realizing it
KERNEL_TABLES = {
    "fast": NUMERIC_KERNELS,
    "compensated": COMPENSATED_KERNELS,
    "exact": EXACT_KERNELS,
}


def kernels_for(accuracy: str) -> BlockKernels:
    """The numeric kernel set for an accuracy mode."""
    try:
        return KERNEL_TABLES[accuracy]
    except KeyError:
        raise ArgumentError(
            "kernels_for", "accuracy",
            f"must be one of {tuple(KERNEL_TABLES)}, got {accuracy!r}",
        ) from None


def mcopy(
    x: Any,
    out: Any,
    *,
    ctx: Optional[ExecutionContext] = None,
) -> Any:
    """``out <- x`` (matrix copy, charged at copy bandwidth)."""
    ctx = ensure_context(ctx)
    m, n = require_matrix("mcopy", "x", x)
    require_shape("mcopy", "out", out, (m, n))
    require_writable("mcopy", "out", out)
    ctx.charge("mcopy", seconds=ctx.model_time("t_copy", m, n))
    if not ctx.dry and m and n:
        out[...] = x
    return out


def mzero(
    out: Any,
    *,
    ctx: Optional[ExecutionContext] = None,
) -> Any:
    """``out <- 0`` (charged at copy bandwidth)."""
    ctx = ensure_context(ctx)
    m, n = require_matrix("mzero", "out", out)
    require_writable("mzero", "out", out)
    ctx.charge("mzero", seconds=ctx.model_time("t_copy", m, n))
    if not ctx.dry and m and n:
        out[...] = 0.0
    return out
