"""Level 3 BLAS: DGEMM, the standard O(mkn) matrix multiply.

This is the substrate's "vendor DGEMM": the base-case multiplier every
Strassen variant in this package calls when its cutoff criterion says to
stop recursing.  It computes

    ``C <- alpha * op(A) * op(B) + beta * C``

with the conventional (non-Strassen) algorithm, cache-blocked into square
tiles and contracted with ``np.einsum`` so the inner loops run in compiled
code without delegating to a vendor BLAS (numpy's ``einsum`` performs the
literal sum-of-products loop nest).  The tile size trades Python-loop
overhead against cache residency; the default suits L2 caches of a few
hundred KiB (three 160x160 float64 tiles ~= 600 KiB).

Operation counts follow the paper's Section 2 model:
``M(m,k,n) = 2mkn - mn`` (``mkn`` multiplies, ``mkn - mn`` adds).
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.context import ExecutionContext, ensure_context
from repro.blas.dtypes import WIDE, require_integral_scalar
from repro.blas.validate import opshape, require_matrix, require_writable
from repro.errors import ArgumentError, DimensionError

__all__ = ["dgemm", "gemm_flops", "DEFAULT_TILE", "BACKENDS"]

#: default cache-blocking tile edge for the standard-algorithm kernel
DEFAULT_TILE = 160

#: base-case kernel backends: "substrate" is this module's own blocked
#: standard algorithm (the default everywhere — the reproduction's
#: "vendor DGEMM" stand-in); "vendor" delegates the inner product to
#: numpy's BLAS matmul, for honest *modern-host* experiments asking
#: whether Strassen still beats a tuned vendor kernel today
BACKENDS = ("substrate", "vendor")


def gemm_flops(m: int, k: int, n: int) -> tuple[float, float]:
    """(multiplies, additions) of the standard algorithm, paper eq. M(m,k,n)."""
    muls = float(m) * k * n
    adds = max(0.0, float(m) * k * n - float(m) * n)
    return muls, adds


def _standard_product(a: np.ndarray, b: np.ndarray, nb: int) -> np.ndarray:
    """``a @ b`` by the standard algorithm, blocked into nb-by-nb tiles.

    ``a`` is m-by-k, ``b`` is k-by-n, both arbitrary-strided views.  The
    result is a fresh Fortran-ordered array (column-major, matching the
    package's BLAS-style storage convention).
    """
    m, k = a.shape
    _, n = b.shape
    out = np.zeros((m, n), dtype=np.result_type(a, b), order="F")
    if m == 0 or n == 0 or k == 0:
        return out
    if m <= nb and n <= nb and k <= nb:
        np.einsum("ik,kj->ij", a, b, out=out)
        return out
    for j0 in range(0, n, nb):
        j1 = min(j0 + nb, n)
        for i0 in range(0, m, nb):
            i1 = min(i0 + nb, m)
            acc = out[i0:i1, j0:j1]
            first = True
            for l0 in range(0, k, nb):
                l1 = min(l0 + nb, k)
                tile = np.einsum(
                    "ik,kj->ij", a[i0:i1, l0:l1], b[l0:l1, j0:j1]
                )
                if first:
                    acc[...] = tile
                    first = False
                else:
                    acc += tile
    return out


def _standard_product_kahan(
    a: np.ndarray, b: np.ndarray, nb: int
) -> np.ndarray:
    """Blocked standard product with Kahan (two-sum) tile accumulation.

    The compensated path for the double-precision dtypes: each output
    block carries a running compensation array across the k-tile loop,
    so the accumulated rounding error of ``ceil(k/nb)`` tile adds drops
    from O(k/nb)·u to O(1)·u.  Within a tile, ``einsum`` performs the
    contraction the same way the fast path does — the compensation is
    split-free: products are rounded once, only the cross-tile summation
    is error-corrected.
    """
    m, k = a.shape
    _, n = b.shape
    out = np.zeros((m, n), dtype=np.result_type(a, b), order="F")
    if m == 0 or n == 0 or k == 0:
        return out
    if m <= nb and n <= nb and k <= nb:
        np.einsum("ik,kj->ij", a, b, out=out)
        return out
    for j0 in range(0, n, nb):
        j1 = min(j0 + nb, n)
        for i0 in range(0, m, nb):
            i1 = min(i0 + nb, m)
            acc = out[i0:i1, j0:j1]
            comp = None
            first = True
            for l0 in range(0, k, nb):
                l1 = min(l0 + nb, k)
                tile = np.einsum(
                    "ik,kj->ij", a[i0:i1, l0:l1], b[l0:l1, j0:j1]
                )
                if first:
                    acc[...] = tile
                    first = False
                    continue
                if comp is None:
                    comp = np.zeros_like(tile)
                # Kahan step: y = tile - comp; t = acc + y;
                # comp = (t - acc) - y; acc = t
                y = tile - comp
                t = acc + y
                comp = (t - acc) - y
                acc[...] = t
    return out


def dgemm(
    a: Any,
    b: Any,
    c: Any,
    alpha: float = 1.0,
    beta: float = 0.0,
    transa: bool = False,
    transb: bool = False,
    *,
    ctx: Optional[ExecutionContext] = None,
    nb: int = DEFAULT_TILE,
    backend: str = "substrate",
    accuracy: str = "fast",
) -> Any:
    """Standard-algorithm GEMM: ``C <- alpha*op(A)*op(B) + beta*C`` in place.

    Parameters mirror the Level 3 BLAS DGEMM: ``op(A)`` is m-by-k,
    ``op(B)`` is k-by-n, ``C`` is m-by-n and is mutated (and returned).
    ``nb`` is the cache-blocking tile edge of the inner kernel;
    ``backend`` selects the inner product implementation (see
    :data:`BACKENDS`).

    ``accuracy`` selects the rounding discipline
    (:data:`repro.blas.dtypes.ACCURACIES`) at identical flop charges and
    kernel-call tallies:

    - ``"fast"``: native-precision evaluation (the default);
    - ``"compensated"``: float32/complex64 operands evaluate in their
      WIDE dtype and round once at the ``C`` write; double-precision
      operands use Kahan tile accumulation on the substrate backend
      (the vendor matmul's accumulation cannot be instrumented — it
      stays native there);
    - ``"exact"``: integer/object arithmetic, integral scalars enforced
      and **no** float intermediates — the product dtype is checked to
      still be exact before ``C`` is touched.

    This routine never recurses and never applies Strassen's construction;
    it is the baseline DGEMM of all experiments and the base case of every
    Strassen variant in :mod:`repro.core` and :mod:`repro.comparators`.

    Conformance (the reference DGEMM contract):

    - ``m == 0`` or ``n == 0``: no-op (C is empty);
    - ``k == 0`` or ``alpha == 0``: no product is formed — ``C`` is
      scaled by ``beta``, and ``beta == 0`` *overwrites* with zeros (it
      never computes ``0*C``, so NaN/Inf garbage in ``C`` is discarded);
    - ``beta == 0`` in the general path assigns the product into ``C``
      without reading ``C``'s prior content;
    - operands may be non-contiguous or negative-stride views; and the
      product is materialized before ``C`` is written, so this base-case
      kernel is overlap-safe by construction (the recursive drivers
      guard overlap themselves — see
      :func:`repro.blas.validate.copy_on_overlap`).
    """
    ctx = ensure_context(ctx)
    if backend not in BACKENDS:
        raise ArgumentError(
            "dgemm", "backend", f"must be one of {BACKENDS}, got {backend!r}"
        )
    if accuracy not in ("fast", "compensated", "exact"):
        raise ArgumentError(
            "dgemm", "accuracy",
            f"must be 'fast', 'compensated' or 'exact', got {accuracy!r}",
        )
    require_matrix("dgemm", "a", a)
    require_matrix("dgemm", "b", b)
    require_matrix("dgemm", "c", c)
    require_writable("dgemm", "c", c)
    m, k = opshape(a, transa)
    kb, n = opshape(b, transb)
    if kb != k:
        raise DimensionError(
            f"dgemm: op(A) is {m}x{k} but op(B) is {kb}x{n}"
        )
    if tuple(c.shape) != (m, n):
        raise DimensionError(
            f"dgemm: C has shape {tuple(c.shape)}, expected {(m, n)}"
        )
    if nb <= 0:
        raise DimensionError(f"dgemm: tile size nb={nb} must be positive")
    muls, adds = gemm_flops(m, k, n)
    ctx.charge(
        "dgemm", muls=muls, adds=adds, seconds=ctx.model_time("t_gemm", m, k, n)
    )
    if accuracy == "exact":
        alpha = require_integral_scalar("dgemm", "alpha", alpha)
        beta = require_integral_scalar("dgemm", "beta", beta)
    if ctx.dry:
        return c
    if m == 0 or n == 0:
        return c
    if k == 0 or alpha == 0.0:
        # C <- beta*C only.
        if beta == 0.0:
            c[...] = 0
        elif beta != 1.0:
            c *= beta
        return c
    opa = a.T if transa else a
    opb = b.T if transb else b
    wide = (
        WIDE.get(np.dtype(c.dtype).name)
        if accuracy == "compensated" else None
    )
    if wide is not None:
        # Narrow compensated path: evaluate the whole update in the
        # wide dtype, round once at the C write.
        opa = opa.astype(wide)
        opb = opb.astype(wide)
    if backend == "vendor":
        prod = np.asfortranarray(opa @ opb)
    elif accuracy == "compensated" and wide is None:
        prod = _standard_product_kahan(opa, opb, nb)
    else:
        prod = _standard_product(opa, opb, nb)
    if accuracy == "exact" and np.dtype(prod.dtype).kind not in "iuO":
        raise ArgumentError(
            "dgemm", "accuracy",
            f"exact accuracy requires integer/object operands, "
            f"product dtype is {prod.dtype}",
        )
    if alpha != 1.0:
        prod *= alpha
    if wide is not None:
        if beta == 0.0:
            c[...] = prod.astype(c.dtype)
        else:
            c[...] = (
                prod + np.multiply(c, beta, dtype=wide)
            ).astype(c.dtype)
        return c
    if beta == 0.0:
        c[...] = prod
    else:
        if beta != 1.0:
            c *= beta
        c += prod
    return c
