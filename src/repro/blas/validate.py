"""Argument validation shared by the BLAS kernels (xerbla-style).

Checks are written to be cheap (tuple comparisons) because they sit on the
hot path of the Strassen recursion; failure messages name the routine and
argument the way the reference BLAS ``xerbla`` does, which makes shape bugs
in schedule code immediately legible.

Besides the shape checks, this module hosts the *operand-overlap guard*:
the reference BLAS leaves GEMM's behaviour undefined when the output
matrix shares storage with an input, but a Strassen schedule writes into
C's quadrants mid-computation while A/B are still being read, so an
overlapping call would be *silently* wrong rather than merely
unspecified.  :func:`overlaps` detects (conservatively, via
:func:`numpy.may_share_memory` — bounds overlap, never false negatives)
whether two operands may alias, and :func:`copy_on_overlap` implements
the documented fallback every driver uses: any input that may share
memory with the output is replaced by a private copy before the
recursion starts, making ``dgefmm(A, B, C=A_view)`` produce exactly the
result of the non-overlapping call at the cost of one operand copy
(charged to the context at copy bandwidth).  Phantoms carry no storage
and therefore never overlap.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

import numpy as np

from repro.errors import ArgumentError, DimensionError
from repro.phantom import is_phantom

__all__ = [
    "require_matrix",
    "require_vector",
    "require_shape",
    "require_writable",
    "opshape",
    "overlaps",
    "copy_on_overlap",
]


def require_matrix(routine: str, name: str, x: Any) -> Tuple[int, int]:
    """Check ``x`` is a 2-D array/Phantom; return its shape."""
    shape = getattr(x, "shape", None)
    if shape is None or len(shape) != 2:
        raise ArgumentError(routine, name, f"must be a 2-D matrix, got {x!r}")
    return shape[0], shape[1]


def require_vector(routine: str, name: str, x: Any) -> int:
    """Check ``x`` is a 1-D array/Phantom; return its length."""
    shape = getattr(x, "shape", None)
    if shape is None or len(shape) != 1:
        raise ArgumentError(routine, name, f"must be a 1-D vector, got {x!r}")
    return shape[0]


def require_shape(routine: str, name: str, x: Any, shape: Tuple[int, ...]) -> None:
    """Check ``x.shape == shape``."""
    actual = tuple(getattr(x, "shape", ()))
    if actual != tuple(shape):
        raise DimensionError(
            f"{routine}: operand '{name}' has shape {actual}, expected {shape}"
        )


def require_writable(routine: str, name: str, x: Any) -> None:
    """Check a numpy output operand is writable (Phantoms trivially are)."""
    if is_phantom(x):
        return
    flags = getattr(x, "flags", None)
    if flags is not None and not flags.writeable:
        raise ArgumentError(routine, name, "must be a writable array")


def opshape(x: Any, trans: bool) -> Tuple[int, int]:
    """Shape of ``op(x)`` — ``x`` transposed when ``trans`` is set."""
    m, n = x.shape
    return (n, m) if trans else (m, n)


def overlaps(x: Any, y: Any) -> bool:
    """Conservative test: may ``x`` and ``y`` share any memory?

    Phantom-aware (phantoms have no storage) and cheap: uses numpy's
    bounds-overlap test, which can report a false positive for disjoint
    views of one backing array but never a false negative.  A false
    positive only costs an unnecessary operand copy in
    :func:`copy_on_overlap`; a false negative would cost correctness.
    Empty operands never overlap.
    """
    if is_phantom(x) or is_phantom(y):
        return False
    if not isinstance(x, np.ndarray) or not isinstance(y, np.ndarray):
        return False
    if x.size == 0 or y.size == 0:
        return False
    return bool(np.may_share_memory(x, y))


def copy_on_overlap(
    out: Any,
    *operands: Any,
    ctx: Optional[Any] = None,
) -> Tuple[Any, ...]:
    """Replace any operand that may alias ``out`` with a private copy.

    The documented copy-on-overlap fallback of every DGEFMM driver:
    inputs are returned unchanged when they are disjoint from the output
    (the common case costs one bounds comparison per operand); an input
    that may share memory with ``out`` is copied (``order="K"``, so the
    view's element order is preserved) before the schedule runs.  Each
    copy is charged to ``ctx`` as an ``mcopy`` at copy bandwidth, making
    the fallback's cost visible in the instrumentation like every other
    data movement.
    """
    resolved = []
    for x in operands:
        if overlaps(out, x):
            x = x.copy(order="K")
            if ctx is not None:
                m, n = (x.shape if x.ndim == 2 else (1, x.size))
                ctx.charge("mcopy", seconds=ctx.model_time("t_copy", m, n))
        resolved.append(x)
    return tuple(resolved)
