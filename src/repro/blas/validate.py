"""Argument validation shared by the BLAS kernels (xerbla-style).

Checks are written to be cheap (tuple comparisons) because they sit on the
hot path of the Strassen recursion; failure messages name the routine and
argument the way the reference BLAS ``xerbla`` does, which makes shape bugs
in schedule code immediately legible.
"""

from __future__ import annotations

from typing import Any, Tuple

from repro.errors import ArgumentError, DimensionError
from repro.phantom import is_phantom

__all__ = [
    "require_matrix",
    "require_vector",
    "require_shape",
    "require_writable",
    "opshape",
]


def require_matrix(routine: str, name: str, x: Any) -> Tuple[int, int]:
    """Check ``x`` is a 2-D array/Phantom; return its shape."""
    shape = getattr(x, "shape", None)
    if shape is None or len(shape) != 2:
        raise ArgumentError(routine, name, f"must be a 2-D matrix, got {x!r}")
    return shape[0], shape[1]


def require_vector(routine: str, name: str, x: Any) -> int:
    """Check ``x`` is a 1-D array/Phantom; return its length."""
    shape = getattr(x, "shape", None)
    if shape is None or len(shape) != 1:
        raise ArgumentError(routine, name, f"must be a 1-D vector, got {x!r}")
    return shape[0]


def require_shape(routine: str, name: str, x: Any, shape: Tuple[int, ...]) -> None:
    """Check ``x.shape == shape``."""
    actual = tuple(getattr(x, "shape", ()))
    if actual != tuple(shape):
        raise DimensionError(
            f"{routine}: operand '{name}' has shape {actual}, expected {shape}"
        )


def require_writable(routine: str, name: str, x: Any) -> None:
    """Check a numpy output operand is writable (Phantoms trivially are)."""
    if is_phantom(x):
        return
    flags = getattr(x, "flags", None)
    if flags is not None and not flags.writeable:
        raise ArgumentError(routine, name, "must be a writable array")


def opshape(x: Any, trans: bool) -> Tuple[int, int]:
    """Shape of ``op(x)`` — ``x`` transposed when ``trans`` is set."""
    m, n = x.shape
    return (n, m) if trans else (m, n)
