"""Level 3 BLAS routines accelerated by fast multiplication (Higham [11]).

The paper cites Higham, *Exploiting fast matrix multiplication within the
level 3 BLAS* [11], for the idea that one fast GEMM upgrades the whole
Level 3 family.  This module implements the flagship case:

``dsyrk_fast``: the symmetric rank-k update ``C <- alpha*A*A^T + beta*C``
(or ``A^T*A``), computed by Higham's recursive partition

    C11 <- alpha*A1*A1^T + beta*C11        (recursive SYRK, half size)
    C22 <- alpha*A2*A2^T + beta*C22        (recursive SYRK, half size)
    C21 <- alpha*A2*A1^T + beta*C21        (general product -> DGEFMM)

so the off-diagonal half of the work — asymptotically all of it — flows
through Strassen, while symmetry still saves the upper triangle.  Only
the lower triangle of C is referenced and written, as in BLAS DSYRK.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.blas.level3 import dgemm
from repro.blas.validate import require_matrix, require_writable
from repro.context import ExecutionContext, ensure_context
from repro.core.cutoff import CutoffCriterion
from repro.core.dgefmm import DEFAULT_CUTOFF, dgefmm
from repro.core.workspace import Workspace
from repro.errors import DimensionError

__all__ = ["dsyrk_fast", "dsyr2k_fast", "dtrmm_fast"]


def dsyrk_fast(
    a: Any,
    c: Any,
    alpha: float = 1.0,
    beta: float = 0.0,
    trans: bool = False,
    *,
    cutoff: Optional[CutoffCriterion] = None,
    block: int = 64,
    ctx: Optional[ExecutionContext] = None,
    workspace: Optional[Workspace] = None,
) -> Any:
    """Symmetric rank-k update with Strassen off-diagonal blocks.

    ``C <- alpha * A A^T + beta * C`` (``trans=False``, A is n-by-k) or
    ``C <- alpha * A^T A + beta * C`` (``trans=True``, A is k-by-n).
    Only C's lower triangle (including the diagonal) is read or written;
    the strict upper triangle is left untouched, exactly like BLAS DSYRK.

    ``block`` is the order below which the diagonal blocks fall back to
    a plain (standard-algorithm) update.
    """
    ctx = ensure_context(ctx)
    require_matrix("dsyrk_fast", "a", a)
    require_matrix("dsyrk_fast", "c", c)
    require_writable("dsyrk_fast", "c", c)
    n = a.shape[1] if trans else a.shape[0]
    k = a.shape[0] if trans else a.shape[1]
    if tuple(c.shape) != (n, n):
        raise DimensionError(
            f"dsyrk_fast: C has shape {tuple(c.shape)}, expected {(n, n)}"
        )
    if block < 1:
        raise DimensionError(f"dsyrk_fast: block={block} must be >= 1")
    crit = cutoff if cutoff is not None else DEFAULT_CUTOFF
    ws = workspace if workspace is not None else Workspace(dry=ctx.dry)
    opa = a.T if trans else a  # n-by-k view
    _syrk_rec(opa, c, alpha, beta, crit, block, ctx, ws)
    return c


def _syrk_base(
    a: Any, c: Any, alpha: float, beta: float, ctx: ExecutionContext
) -> None:
    """Unblocked lower-triangle update via the standard algorithm.

    Computes the full small product and merges its lower triangle; the
    upper triangle of C is preserved (BLAS contract).
    """
    n = c.shape[0]
    if n == 0:
        return
    if ctx.dry:
        dgemm(a, a.T, c, alpha, beta, ctx=ctx)
        return
    tmp = np.zeros((n, n), dtype=np.result_type(a, c), order="F")
    dgemm(a, a.T, tmp, 1.0, 0.0, ctx=ctx)
    il = np.tril_indices(n)
    if beta == 0.0:
        c[il] = alpha * tmp[il]
    else:
        c[il] = alpha * tmp[il] + beta * c[il]


def _syrk_rec(
    a: Any,
    c: Any,
    alpha: float,
    beta: float,
    crit: CutoffCriterion,
    block: int,
    ctx: ExecutionContext,
    ws: Workspace,
) -> None:
    n, k = a.shape
    if n <= block or n < 2:
        _syrk_base(a, c, alpha, beta, ctx)
        return
    h = n // 2
    a1, a2 = a[:h, :], a[h:, :]
    # off-diagonal block: a full general product -> Strassen
    dgefmm(a2, a1, c[h:, :h], alpha, beta, transb=True,
           cutoff=crit, ctx=ctx, workspace=ws)
    _syrk_rec(a1, c[:h, :h], alpha, beta, crit, block, ctx, ws)
    _syrk_rec(a2, c[h:, h:], alpha, beta, crit, block, ctx, ws)


def dsyr2k_fast(
    a: Any,
    b: Any,
    c: Any,
    alpha: float = 1.0,
    beta: float = 0.0,
    *,
    cutoff: Optional[CutoffCriterion] = None,
    block: int = 64,
    ctx: Optional[ExecutionContext] = None,
    workspace: Optional[Workspace] = None,
) -> Any:
    """Symmetric rank-2k update: ``C <- alpha*(A B^T + B A^T) + beta*C``.

    Same recursive partition as :func:`dsyrk_fast`; the off-diagonal
    block needs two general (Strassen) products per level, the diagonal
    blocks recurse.  Lower triangle only, like BLAS DSYR2K.
    """
    ctx = ensure_context(ctx)
    require_matrix("dsyr2k_fast", "a", a)
    require_matrix("dsyr2k_fast", "b", b)
    require_matrix("dsyr2k_fast", "c", c)
    require_writable("dsyr2k_fast", "c", c)
    if a.shape != b.shape:
        raise DimensionError(
            f"dsyr2k_fast: A {a.shape} and B {b.shape} must match"
        )
    n = a.shape[0]
    if tuple(c.shape) != (n, n):
        raise DimensionError(
            f"dsyr2k_fast: C has shape {tuple(c.shape)}, expected {(n, n)}"
        )
    if block < 1:
        raise DimensionError(f"dsyr2k_fast: block={block} must be >= 1")
    crit = cutoff if cutoff is not None else DEFAULT_CUTOFF
    ws = workspace if workspace is not None else Workspace(dry=ctx.dry)
    _syr2k_rec(a, b, c, alpha, beta, crit, block, ctx, ws)
    return c


def _syr2k_base(a, b, c, alpha, beta, ctx):
    n = c.shape[0]
    if n == 0:
        return
    if ctx.dry:
        dgemm(a, b.T if hasattr(b, "T") else b, c, alpha, beta, ctx=ctx)
        dgemm(b, a.T if hasattr(a, "T") else a, c, alpha, 1.0, ctx=ctx)
        return
    tmp = np.zeros((n, n), dtype=np.result_type(a, b, c), order="F")
    dgemm(a, b, tmp, 1.0, 0.0, transb=True, ctx=ctx)
    dgemm(b, a, tmp, 1.0, 1.0, transb=True, ctx=ctx)
    il = np.tril_indices(n)
    if beta == 0.0:
        c[il] = alpha * tmp[il]
    else:
        c[il] = alpha * tmp[il] + beta * c[il]


def _syr2k_rec(a, b, c, alpha, beta, crit, block, ctx, ws):
    n = a.shape[0]
    if n <= block or n < 2:
        _syr2k_base(a, b, c, alpha, beta, ctx)
        return
    h = n // 2
    a1, a2 = a[:h, :], a[h:, :]
    b1, b2 = b[:h, :], b[h:, :]
    # off-diagonal: C21 <- alpha*(A2 B1^T + B2 A1^T) + beta*C21
    dgefmm(a2, b1, c[h:, :h], alpha, beta, transb=True,
           cutoff=crit, ctx=ctx, workspace=ws)
    dgefmm(b2, a1, c[h:, :h], alpha, 1.0, transb=True,
           cutoff=crit, ctx=ctx, workspace=ws)
    _syr2k_rec(a1, b1, c[:h, :h], alpha, beta, crit, block, ctx, ws)
    _syr2k_rec(a2, b2, c[h:, h:], alpha, beta, crit, block, ctx, ws)


def dtrmm_fast(
    t: Any,
    b: Any,
    alpha: float = 1.0,
    *,
    cutoff: Optional[CutoffCriterion] = None,
    block: int = 64,
    ctx: Optional[ExecutionContext] = None,
    workspace: Optional[Workspace] = None,
) -> Any:
    """Triangular multiply ``B <- alpha * T * B`` (T lower triangular).

    Higham's recursive partition: with T = [[T11, 0], [T21, T22]] and
    B = [B1; B2],

        B2 <- alpha*T21*B1 + (alpha*T22)*B2    (general product + rec.)
        B1 <- alpha*T11*B1                     (recursive trmm)

    computed bottom-up so B1 is still unscaled when T21 consumes it.
    The strict upper triangle of T is never referenced (BLAS contract).
    """
    ctx = ensure_context(ctx)
    require_matrix("dtrmm_fast", "t", t)
    require_matrix("dtrmm_fast", "b", b)
    require_writable("dtrmm_fast", "b", b)
    n = t.shape[0]
    if t.shape[1] != n:
        raise DimensionError(
            f"dtrmm_fast: T must be square, got {tuple(t.shape)}"
        )
    if b.shape[0] != n:
        raise DimensionError(
            f"dtrmm_fast: B has {b.shape[0]} rows, expected {n}"
        )
    if block < 1:
        raise DimensionError(f"dtrmm_fast: block={block} must be >= 1")
    crit = cutoff if cutoff is not None else DEFAULT_CUTOFF
    ws = workspace if workspace is not None else Workspace(dry=ctx.dry)
    _trmm_rec(t, b, alpha, crit, block, ctx, ws)
    return b


def _trmm_rec(t, b, alpha, crit, block, ctx, ws):
    n = t.shape[0]
    if n == 0 or b.shape[1] == 0:
        return
    if n <= block or n < 2:
        if not ctx.dry:
            tl = np.tril(np.asarray(t, dtype=np.float64))
            prod = np.zeros_like(np.asarray(b, dtype=np.float64), order="F")
            dgemm(tl, b, prod, alpha, 0.0, ctx=ctx)
            b[...] = prod
        else:
            dgemm(t, b, b, alpha, 0.0, ctx=ctx)
        return
    h = n // 2
    t11, t21, t22 = t[:h, :h], t[h:, :h], t[h:, h:]
    b1, b2 = b[:h, :], b[h:, :]
    # bottom half first: consumes the unscaled B1
    _trmm_rec(t22, b2, alpha, crit, block, ctx, ws)       # B2 <- aT22 B2
    dgefmm(t21, b1, b2, alpha, 1.0, cutoff=crit, ctx=ctx,
           workspace=ws)                                  # B2 += aT21 B1
    _trmm_rec(t11, b1, alpha, crit, block, ctx, ws)       # B1 <- aT11 B1
