"""Level 1 BLAS: vector-vector operations.

Used by the eigensolver's Householder QR and by tests; all routines follow
the in-place conventions of the reference BLAS and charge their operation
counts to the :class:`~repro.context.ExecutionContext`.
"""

from __future__ import annotations

import math
from typing import Any, Optional

import numpy as np

from repro.context import ExecutionContext, ensure_context
from repro.blas.validate import require_vector, require_writable

__all__ = ["daxpy", "dscal", "dcopy", "ddot", "dnrm2", "dswap"]


def daxpy(
    alpha: float,
    x: Any,
    y: Any,
    *,
    ctx: Optional[ExecutionContext] = None,
) -> Any:
    """``y <- alpha*x + y`` (in place); returns ``y``."""
    ctx = ensure_context(ctx)
    n = require_vector("daxpy", "x", x)
    require_vector("daxpy", "y", y)
    require_writable("daxpy", "y", y)
    if x.shape != y.shape:
        from repro.errors import DimensionError

        raise DimensionError(f"daxpy: x has length {n}, y has length {y.shape[0]}")
    ctx.charge(
        "daxpy", muls=n, adds=n, seconds=ctx.model_time("t_vec", n)
    )
    if not ctx.dry and n:
        if alpha == 1.0:
            np.add(y, x, out=y)
        elif alpha != 0.0:
            y += alpha * x
    return y


def dscal(
    alpha: float,
    x: Any,
    *,
    ctx: Optional[ExecutionContext] = None,
) -> Any:
    """``x <- alpha*x`` (in place); returns ``x``."""
    ctx = ensure_context(ctx)
    n = require_vector("dscal", "x", x)
    require_writable("dscal", "x", x)
    ctx.charge("dscal", muls=n, seconds=ctx.model_time("t_vec", n))
    if not ctx.dry and n:
        if alpha == 0.0:
            x[...] = 0.0
        elif alpha != 1.0:
            x *= alpha
    return x


def dcopy(
    x: Any,
    y: Any,
    *,
    ctx: Optional[ExecutionContext] = None,
) -> Any:
    """``y <- x``; returns ``y``."""
    ctx = ensure_context(ctx)
    n = require_vector("dcopy", "x", x)
    require_vector("dcopy", "y", y)
    require_writable("dcopy", "y", y)
    if x.shape != y.shape:
        from repro.errors import DimensionError

        raise DimensionError(f"dcopy: x has length {n}, y has length {y.shape[0]}")
    ctx.charge("dcopy", seconds=ctx.model_time("t_vec", n))
    if not ctx.dry and n:
        y[...] = x
    return y


def dswap(
    x: Any,
    y: Any,
    *,
    ctx: Optional[ExecutionContext] = None,
) -> None:
    """Exchange the contents of ``x`` and ``y``."""
    ctx = ensure_context(ctx)
    n = require_vector("dswap", "x", x)
    require_vector("dswap", "y", y)
    require_writable("dswap", "x", x)
    require_writable("dswap", "y", y)
    if x.shape != y.shape:
        from repro.errors import DimensionError

        raise DimensionError(f"dswap: x has length {n}, y has length {y.shape[0]}")
    ctx.charge("dswap", seconds=ctx.model_time("t_vec", n))
    if not ctx.dry and n:
        tmp = x.copy()
        x[...] = y
        y[...] = tmp


def ddot(
    x: Any,
    y: Any,
    *,
    ctx: Optional[ExecutionContext] = None,
) -> float:
    """Inner product ``x . y`` (returns 0.0 in dry mode)."""
    ctx = ensure_context(ctx)
    n = require_vector("ddot", "x", x)
    require_vector("ddot", "y", y)
    if x.shape != y.shape:
        from repro.errors import DimensionError

        raise DimensionError(f"ddot: x has length {n}, y has length {y.shape[0]}")
    ctx.charge(
        "ddot", muls=n, adds=max(0, n - 1), seconds=ctx.model_time("t_vec", n)
    )
    if ctx.dry or n == 0:
        return 0.0
    # einsum keeps this in the "standard algorithm" family (no BLAS dot).
    out = np.einsum("i,i->", x, y)
    # complex inputs keep their complex inner product — coercing through
    # float() would raise (or silently drop the imaginary part)
    if np.iscomplexobj(out):
        return complex(out)
    return float(out)


def dnrm2(
    x: Any,
    *,
    ctx: Optional[ExecutionContext] = None,
) -> float:
    """Euclidean norm of ``x`` (returns 0.0 in dry mode).

    Uses the scaled-sum-of-squares formulation so that vectors with large
    entries do not overflow, matching the reference BLAS behaviour.
    """
    ctx = ensure_context(ctx)
    n = require_vector("dnrm2", "x", x)
    ctx.charge(
        "dnrm2", muls=n, adds=max(0, n - 1), seconds=ctx.model_time("t_vec", n)
    )
    if ctx.dry or n == 0:
        return 0.0
    amax = float(np.max(np.abs(x)))
    if amax == 0.0 or not math.isfinite(amax):
        return amax
    scaled = x / amax
    # conjugated square for complex vectors: |x|^2 = conj(x).x — the
    # unconjugated einsum would return a complex (and wrong) "norm"
    sq = np.einsum("i,i->", np.conj(scaled), scaled)
    return amax * math.sqrt(float(sq.real))
