"""Instrumented BLAS substrate.

The paper's DGEFMM is written *on top of* the vendor BLAS: base-case
multiplies go to DGEMM, matrix additions to vectorized add kernels, and the
dynamic-peeling fix-up to DGER / DGEMV (Section 3.3).  This subpackage is
our vendor BLAS: a small Level 1/2/3 library implemented on numpy
primitives using the **standard O(mkn) algorithm only** (blocked tile
contractions — never ``np.matmul``, never anything Strassen-like), with
every routine instrumented for operation counts and machine-model time.

Routines follow BLAS in-place semantics (the output operand is mutated)
but take numpy arrays/views instead of pointer+lda pairs; numpy strides
subsume the leading-dimension bookkeeping of column-major BLAS.
"""

from repro.blas.level1 import daxpy, dcopy, ddot, dnrm2, dscal, dswap
from repro.blas.level2 import dgemv, dger
from repro.blas.level3 import dgemm, gemm_flops
from repro.blas.addsub import accum, axpby, madd, mcopy, msub, mzero

__all__ = [
    "mcopy",
    "mzero",
    "daxpy",
    "dcopy",
    "ddot",
    "dnrm2",
    "dscal",
    "dswap",
    "dgemv",
    "dger",
    "dgemm",
    "gemm_flops",
    "madd",
    "msub",
    "accum",
    "axpby",
]
