"""Per-dtype numeric traits: the one table the whole stack reads.

Precision used to be ambient convention — every layer assumed float64
unless an operand happened to say otherwise, and the assumption was
smeared across kernels, workspace sizing, tolerances and the wire.
This module makes it structural: the supported dtype universe, the
accuracy modes each dtype admits, the wide type a narrow dtype promotes
to under compensated arithmetic, and the unit roundoff driving error
bounds all live here, imported by everything from ``blas.addsub`` up to
the serving stack.

Three accuracy modes (:data:`ACCURACIES`):

``"fast"``
    The default: native-precision kernels, one rounding per scalar
    operation.  Legal for every inexact dtype.
``"compensated"``
    Higher-accuracy floating point.  Narrow dtypes (float32/complex64)
    evaluate in their :data:`WIDE` counterpart and round **once** at the
    output write; double-precision dtypes use Kahan (two-sum) carry
    accumulation across the base-kernel tile loop.  Same kernel names,
    same call counts, same flop charges — only the rounding error
    changes.
``"exact"``
    Integer/object arithmetic with **no** float intermediates — the
    Boyer-Dumas-Pernet-Zhou setting where the add/sub schedules we ship
    were analysed.  Required (and only legal) for the exact dtypes;
    scalars must be integral.

The exact ⟺ exact-dtype equivalence is deliberate: an ``int64``
multiplication through float kernels would silently round large
products, and "exact float64" would over-promise.  Validation lives in
:class:`~repro.core.config.GemmConfig`, which calls these predicates.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ArgumentError

__all__ = [
    "DTYPES",
    "ACCURACIES",
    "EXACT_DTYPES",
    "WIDE",
    "UNIT_ROUNDOFF",
    "canonical_dtype",
    "default_accuracy",
    "is_exact_dtype",
    "require_integral_scalar",
    "unit_roundoff",
    "wide_dtype",
]

#: The supported dtype universe, canonical numpy names.  ``object``
#: arrays carry Python ints (arbitrary precision) — exact, in-process
#: only, never on the wire.
DTYPES = ("float64", "float32", "complex128", "complex64", "int64",
          "object")

#: Accuracy modes — see the module docstring.
ACCURACIES = ("fast", "compensated", "exact")

#: Dtypes whose arithmetic is exact (no rounding): these require, and
#: are required by, ``accuracy="exact"``.
EXACT_DTYPES = ("int64", "object")

#: Compensated promotion map: narrow dtype -> the wide dtype it
#: evaluates in.  Double-precision dtypes have no wider hardware type;
#: they compensate via Kahan accumulation instead.
WIDE = {"float32": "float64", "complex64": "complex128"}

#: Unit roundoff u = 2^-(p) per inexact dtype (complex components round
#: in their real precision).  Exact dtypes have u = 0.
UNIT_ROUNDOFF = {
    "float64": 2.0 ** -53,
    "float32": 2.0 ** -24,
    "complex128": 2.0 ** -53,
    "complex64": 2.0 ** -24,
    "int64": 0.0,
    "object": 0.0,
}


def canonical_dtype(dtype) -> str:
    """The canonical name of ``dtype`` (``np.dtype`` accepted spellings:
    ``"float64"``, ``np.float32``, a dtype instance, ``"O"``, ...).

    Raises :class:`~repro.errors.ArgumentError` for anything outside
    :data:`DTYPES` — the compute stack supports exactly this universe,
    and an early loud failure beats a kernel-level ``UFuncTypeError``
    three recursion levels down.
    """
    try:
        name = np.dtype(dtype).name
    except TypeError:
        raise ArgumentError(
            "dtype", "dtype", f"not a numpy dtype: {dtype!r}"
        ) from None
    if name not in DTYPES:
        raise ArgumentError(
            "dtype", "dtype", f"must be one of {DTYPES}, got {name!r}"
        )
    return name


def is_exact_dtype(dtype) -> bool:
    """True for the exact (integer/object) dtypes."""
    return canonical_dtype(dtype) in EXACT_DTYPES


def default_accuracy(dtype) -> str:
    """The accuracy mode a dtype gets when the caller expressed no
    preference: ``"exact"`` for the exact dtypes, ``"fast"`` otherwise.
    This is the sentinel resolution every driver applies to
    ``accuracy=None``."""
    return "exact" if is_exact_dtype(dtype) else "fast"


def unit_roundoff(dtype) -> float:
    """Unit roundoff of ``dtype`` (0.0 for the exact dtypes)."""
    return UNIT_ROUNDOFF[canonical_dtype(dtype)]


def wide_dtype(dtype) -> Optional[str]:
    """The compensated evaluation dtype for a narrow dtype, or None if
    the dtype is already as wide as the hardware goes."""
    return WIDE.get(canonical_dtype(dtype))


def require_integral_scalar(where: str, name: str, value) -> int:
    """Coerce a scalar to a Python int for the exact kernels.

    Exact arithmetic admits only integral scalars: ``alpha=1.5`` on an
    int64 multiplication has no representable result.  Accepts Python
    ints, integral floats (``2.0``) and integral complex with zero
    imaginary part (the generic drivers default ``alpha``/``beta`` to
    floats); anything else raises :class:`ArgumentError`.
    """
    if isinstance(value, complex):
        if value.imag != 0.0:
            raise ArgumentError(
                where, name,
                f"exact accuracy requires a real integral scalar, "
                f"got {value!r}",
            )
        value = value.real
    if isinstance(value, float) and not value.is_integer():
        raise ArgumentError(
            where, name,
            f"exact accuracy requires an integral scalar, got {value!r}",
        )
    return int(value)
