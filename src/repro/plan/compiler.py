"""PlanCompiler: walk the DGEFMM recursion once, emit a flat plan.

The compiler runs the *real* driver logic — the shared traversal core's
recurse-vs-base decision at every level (:func:`repro.core.traversal.
decide`: paper eq. 15 by default, dynamic peeling, scheme dispatch) and
the actual STRASSEN1/STRASSEN2/textbook schedule functions — exactly
once per problem signature, recording what the recursion *would do* as a
flat tuple of typed ops (:mod:`repro.plan.ops`).

Three substitutions make one execution of the control flow double as
compilation, with zero duplicated schedule code:

- **recording kernels** — a :class:`~repro.blas.addsub.BlockKernels` set
  whose members append MADD/MSUB/ACCUM/AXPBY ops instead of computing;
- **regions** — :class:`~repro.plan.ops.Region` operands that track the
  windowing the schedules perform on the call operands and temporaries;
- **a recording workspace** — mirrors the pooled arena's bump-allocator
  arithmetic (:class:`~repro.core.pool.PooledWorkspace`: 64-byte-aligned
  cursor, frame rewind) so every temporary gets the byte offset the live
  pooled execution would give it, and mirrors the plain workspace's
  live/peak accounting so the plan can report the same
  ``workspace_peak_bytes`` figure the recursive driver measures.

Scalars are compiled per *class*: the signature records whether alpha
and beta are zero; nonzero scalars flow through compilation as
:class:`~repro.plan.ops.SymScalar` placeholders resolved per call, so
one plan serves every nonzero value bit-identically.

Parallel plans mirror :func:`repro.core.parallel.pdgefmm`: a node's
stage-(1)/(2) sums are its prologue, the seven independent products
become *branches* (each a self-contained sub-plan over the branch's
operand windows), and the stage-(4) U-tree plus any peeling fix-up form
the epilogue.  The worker *budget* is an execution-time knob — exactly
as in the live driver, where the recursion's structure depends only on
``max_parallel_depth`` and the config.
"""

from __future__ import annotations

from collections import Counter
from contextlib import contextmanager
from dataclasses import field, fields, make_dataclass, replace
from typing import Any, Iterator, List, Optional, Tuple

import numpy as np

from repro.blas.addsub import BlockKernels
from repro.blas.dtypes import canonical_dtype
from repro.blas.level3 import gemm_flops
from repro.context import RecursionEvent
from repro.core.config import GemmConfig
from repro.core.dgefmm import LEVEL_FNS
from repro.core.parallel import (
    PARALLEL_LEVELS,
    _job_operands,
    _stage_combine,
    _stage_sums,
)
from repro.core.pool import _align_up
from repro.core.traversal import Base, decide
from repro.errors import ArgumentError
from repro.plan.fuse import fuse_plan
from repro.plan.ops import (
    OP_ACCUM,
    OP_AXPBY,
    OP_EVENT,
    OP_FIXUP,
    OP_GEMM,
    OP_MADD,
    OP_MSUB,
    ROOT_A,
    ROOT_B,
    ROOT_C,
    ROOT_TEMP,
    Region,
    SymScalar,
    encode_scalar,
    scalar_repr,
)

__all__ = ["PlanSignature", "ExecutionPlan", "compile_plan", "signature_for"]


def _signature_config(self) -> GemmConfig:
    """Rebuild the validated :class:`GemmConfig` these fields came from."""
    return GemmConfig(
        **{f.name: getattr(self, f.name) for f in fields(GemmConfig)}
    )


#: The plan-cache key, derived *structurally* from ``GemmConfig``: the
#: problem fields come first, then every ``GemmConfig`` field in
#: declaration order, then ``max_parallel_depth``.  Adding a knob to
#: ``GemmConfig`` automatically adds it to the cache key — signature
#: completeness is a property of the type, not an audit.
PlanSignature = make_dataclass(
    "PlanSignature",
    [
        ("kind", str),
        ("m", int),
        ("k", int),
        ("n", int),
        ("transa", bool),
        ("transb", bool),
        ("alpha_zero", bool),
        ("beta_zero", bool),
    ]
    + [(f.name, f.type, field(default=f.default)) for f in fields(GemmConfig)]
    + [("max_parallel_depth", int, field(default=0))],
    frozen=True,
    namespace={"config": _signature_config},
)
PlanSignature.__module__ = __name__
PlanSignature.__doc__ = """The cache key: everything the plan's structure depends on.

    ``kind`` is ``"serial"`` (the :func:`~repro.core.dgefmm.dgefmm`
    path) or ``"parallel"`` (:func:`~repro.core.parallel.pdgefmm`;
    ``max_parallel_depth`` then matters, the worker budget never does —
    it only sets how many threads replay the branches).  Scalars enter
    as zero/nonzero *classes*; cutoff criteria are the (hashable frozen
    dataclass) objects themselves.

    The behaviour-knob fields (``scheme``, ``peel``, ``cutoff``, ``nb``,
    ``backend``, ``fuse``, ``dtype``, ``accuracy``) are not hand-listed:
    they are generated from ``dataclasses.fields(GemmConfig)`` at
    class-creation time, in declaration order, between the problem
    fields and ``max_parallel_depth``.  A knob added to ``GemmConfig``
    therefore cannot be forgotten here — the type system keeps the
    plan-cache key complete.  The operand ``dtype`` and the ``accuracy``
    mode are config fields (not problem fields): :func:`signature_for`
    folds the observed operand dtype into the config, so mutating either
    is structurally a cache miss.  :meth:`config` rebuilds (and
    re-validates) the ``GemmConfig`` the knob fields encode.

    Deliberately excluded because they cannot change the result or the
    plan's structure: ``workers`` (execution-time thread budget),
    ``pool``/``workspace`` (where temporaries live, not what is
    computed), ``ctx`` (instrumentation sink), and operand memory
    layout/strides (plans bind root windows per call; the kernels accept
    any strides).  ``tests/test_plan.py`` pins this: mutating any knob
    field must miss the cache.
    """


def signature_for(
    kind: str,
    m: int,
    k: int,
    n: int,
    transa: bool,
    transb: bool,
    alpha_zero: bool,
    beta_zero: bool,
    dtype: str,
    config: GemmConfig,
    max_parallel_depth: int = 0,
) -> "PlanSignature":
    """Build a :class:`PlanSignature` from a problem and a ``GemmConfig``.

    The drivers construct their cache keys through this helper so the
    knob fields are copied from the frozen config structurally — never
    hand-listed at a call site.  ``dtype`` is the *observed* operand
    dtype: it is folded into the config (re-running the config's
    dtype/accuracy validation) so the signature's ``dtype`` field always
    reflects what the kernels will actually see, even when the caller's
    config still carries the float64 default.
    """
    if canonical_dtype(dtype) != config.dtype:
        config = replace(config, dtype=canonical_dtype(dtype))
    return PlanSignature(
        kind, m, k, n, transa, transb, alpha_zero, beta_zero,
        *(getattr(config, f.name) for f in fields(GemmConfig)),
        max_parallel_depth,
    )


class ExecutionPlan:
    """An immutable, flat, replayable DGEFMM program.

    ``ops`` is the serial body (a parallel node's prologue); ``branches``
    holds the node's independent products as ``(a_idx, b_idx, c_idx,
    child_plan)`` with indices into this plan's region table;
    ``epilogue`` combines the products and applies peeling fix-ups.  A
    serial plan has empty branches/epilogue.  ``ops_quiet`` /
    ``epilogue_quiet`` are the same programs with trace-replay EVENT ops
    stripped, chosen when the executing context is not tracing.
    """

    __slots__ = (
        "signature", "m", "k", "n", "dtype", "nb", "backend", "accuracy",
        "regions", "ops", "ops_quiet", "branches", "epilogue",
        "epilogue_quiet", "arena_bytes", "peak_bytes", "charge_bytes",
        "counts", "nbytes", "fused", "_temp_cache",
    )

    def __init__(
        self,
        signature: Optional["PlanSignature"],
        m: int,
        k: int,
        n: int,
        dtype: Any,
        nb: int,
        backend: str,
        regions: Tuple[tuple, ...],
        ops: Tuple[tuple, ...],
        branches: Tuple[tuple, ...],
        epilogue: Tuple[tuple, ...],
        arena_bytes: int,
        peak_bytes: int,
        charge_bytes: int,
        counts: dict,
        accuracy: str = "fast",
    ) -> None:
        self.signature = signature
        self.m, self.k, self.n = m, k, n
        self.dtype = np.dtype(dtype)
        self.nb = nb
        self.backend = backend
        #: accuracy mode baked in from the signature's config: the
        #: executor replays the op stream through the matching kernel
        #: table, so plan replay stays bit-identical to the recursive
        #: driver at every accuracy
        self.accuracy = accuracy
        self.regions = regions
        self.ops = ops
        self.ops_quiet = tuple(op for op in ops if op[0] != OP_EVENT)
        self.branches = branches
        self.epilogue = epilogue
        self.epilogue_quiet = tuple(
            op for op in epilogue if op[0] != OP_EVENT
        )
        self.arena_bytes = int(arena_bytes)
        self.peak_bytes = int(peak_bytes)
        self.charge_bytes = int(charge_bytes)
        self.counts = counts
        #: optional :class:`~repro.plan.fuse.FusedProgram` attached by
        #: the compiler when the signature's config has ``fuse=True``;
        #: the executor replays it for plain numeric contexts and falls
        #: back to the interpreted op stream otherwise
        self.fused = None
        self.nbytes = (
            256
            + 64 * len(regions)
            + 96 * (len(ops) + len(epilogue))
            + sum(child.nbytes for *_ids, child in branches)
        )
        #: per-arena-buffer cache of bound temporary views (warm calls
        #: skip re-carving the arena); keyed by the buffer's id with the
        #: buffer itself stored so entries can never alias a new buffer
        self._temp_cache: dict = {}

    # ------------------------------------------------------------------ #
    @property
    def n_ops(self) -> int:
        """Total executable ops (events excluded), branches included."""
        return (
            len(self.ops_quiet)
            + len(self.epilogue_quiet)
            + sum(child.n_ops for *_ids, child in self.branches)
        )

    def total_counts(self) -> dict:
        """Aggregate op/flop tallies over this plan and all branches."""
        total = {
            "recurse": self.counts["recurse"],
            "base": self.counts["base"],
            "peel": self.counts["peel"],
            "max_depth": self.counts["max_depth"],
            "mul_flops": self.counts["mul_flops"],
            "mul_flops_total": self.counts["mul_flops_total"],
            "add_flops_total": self.counts["add_flops_total"],
            "base_shapes": dict(self.counts["base_shapes"]),
            "kernel_calls": Counter(self.counts["kernel_calls"]),
        }
        for *_ids, child in self.branches:
            sub = child.total_counts()
            for key in ("recurse", "base", "peel", "mul_flops",
                        "mul_flops_total", "add_flops_total"):
                total[key] += sub[key]
            total["max_depth"] = max(total["max_depth"], sub["max_depth"])
            for shape, cnt in sub["base_shapes"].items():
                total["base_shapes"][shape] = (
                    total["base_shapes"].get(shape, 0) + cnt
                )
            total["kernel_calls"].update(sub["kernel_calls"])
        return total

    def describe(self, max_ops: Optional[int] = None) -> List[str]:
        """Human-readable op listing for ``python -m repro plan explain``."""

        def reg(idx: int) -> str:
            kind, off, fr, fc, r0, c0, rows, cols = self.regions[idx]
            root = ("A", "B", "C", f"T@{off}")[kind]
            return f"{root}[{r0}:{r0 + rows},{c0}:{c0 + cols}]"

        lines: List[str] = []
        for op in self.ops + (("--branches--",) if self.branches else ()):
            if op == ("--branches--",):
                for i, (ai, bi, ci, child) in enumerate(self.branches):
                    lines.append(
                        f"branch {i}: {reg(ai)} x {reg(bi)} -> {reg(ci)} "
                        f"({child.n_ops} ops, "
                        f"{'parallel' if child.branches else 'serial'})"
                    )
                continue
            lines.append(_op_repr(op, reg))
        for op in self.epilogue:
            lines.append(_op_repr(op, reg))
        if max_ops is not None and len(lines) > max_ops:
            lines = lines[:max_ops] + [
                f"... ({len(lines) - max_ops} more ops)"
            ]
        return lines

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "parallel" if self.branches else "serial"
        return (
            f"ExecutionPlan({kind}, {self.m}x{self.k}x{self.n}, "
            f"{self.n_ops} ops, arena={self.arena_bytes}B)"
        )


def _op_repr(op: tuple, reg) -> str:
    code = op[0]
    if code == OP_MADD:
        return (f"madd  {reg(op[3])} <- {scalar_repr(op[4])}*"
                f"({reg(op[1])} + {reg(op[2])})")
    if code == OP_MSUB:
        return (f"msub  {reg(op[3])} <- {scalar_repr(op[4])}*"
                f"({reg(op[1])} - {reg(op[2])})")
    if code == OP_ACCUM:
        return f"accum {reg(op[2])} += {reg(op[1])}"
    if code == OP_AXPBY:
        return (f"axpby {reg(op[4])} <- {scalar_repr(op[1])}*{reg(op[2])} "
                f"+ {scalar_repr(op[3])}*{reg(op[4])}")
    if code == OP_GEMM:
        return (f"gemm  {reg(op[3])} <- {scalar_repr(op[4])}*"
                f"{reg(op[1])}@{reg(op[2])} + {scalar_repr(op[5])}*"
                f"{reg(op[3])}")
    if code == OP_FIXUP:
        return (f"fixup {reg(op[3])} ({op[6]} peel mod {op[7]}, alpha="
                f"{scalar_repr(op[4])}, beta={scalar_repr(op[5])})")
    ev = op[1]
    return f"event {ev.action} ({ev.m},{ev.k},{ev.n}) depth={ev.depth}"


# ---------------------------------------------------------------------- #
class _RecordingWorkspace:
    """Mirror of the pooled arena's bump arithmetic + raw accounting.

    ``alloc`` hands back temporary :class:`Region` objects carrying the
    byte offset a :class:`~repro.core.pool.PooledWorkspace` would assign
    (aligned cursor, frame rewind), while tracking the plain
    :class:`~repro.core.workspace.Workspace` live/peak byte figures so
    the plan reports the same ``workspace_peak_bytes`` as the recursive
    driver.
    """

    def __init__(self) -> None:
        self._cursor = 0
        self._cursor_stack: List[int] = []
        self._frames: List[int] = []
        self._live = 0
        self.peak = 0
        self.required = 0

    @contextmanager
    def frame(self) -> Iterator["_RecordingWorkspace"]:
        self._cursor_stack.append(self._cursor)
        self._frames.append(0)
        try:
            yield self
        finally:
            freed = self._frames.pop()
            self._live -= freed
            self._cursor = self._cursor_stack.pop()

    def alloc(self, m: int, n: int, dtype: Any = np.float64) -> Region:
        dt = np.dtype(dtype)
        nbytes = m * n * dt.itemsize
        self._frames[-1] += nbytes
        self._live += nbytes
        if self._live > self.peak:
            self.peak = self._live
        start = _align_up(self._cursor)
        end = start + nbytes
        self._cursor = end
        if end > self.required:
            self.required = end
        return Region(ROOT_TEMP, start, m, n, 0, 0, m, n, dt)


class _Recorder:
    """Op sink: interning region table, op lists, and predicted tallies."""

    def __init__(self, dtype: Any) -> None:
        self.dtype = np.dtype(dtype)
        self.ws = _RecordingWorkspace()
        self.ops: List[tuple] = []
        self.epilogue: List[tuple] = []
        self._sink = self.ops
        self._intern: dict = {}
        self.region_descs: List[tuple] = []
        self.kernel_calls: Counter = Counter()
        self.mul_flops_total = 0.0
        self.add_flops_total = 0.0
        self.counts = {
            "recurse": 0, "base": 0, "peel": 0, "max_depth": 0,
            "mul_flops": 0.0, "base_shapes": {},
        }
        self.kernels = BlockKernels(
            self._madd, self._msub, self._accum, self._axpby
        )

    def begin_epilogue(self) -> None:
        self._sink = self.epilogue

    def reg(self, r: Region) -> int:
        desc = r.descriptor()
        idx = self._intern.get(desc)
        if idx is None:
            idx = len(self.region_descs)
            self._intern[desc] = idx
            self.region_descs.append(desc)
        return idx

    # -- recording BlockKernels --------------------------------------- #
    def _charge_add(self, name: str, r: Region) -> None:
        self.kernel_calls[name] += 1
        self.add_flops_total += float(r.shape[0]) * r.shape[1]

    def _madd(self, x, y, out, alpha=1.0, *, ctx=None):
        self._charge_add("madd", out)
        self._sink.append(
            (OP_MADD, self.reg(x), self.reg(y), self.reg(out),
             encode_scalar(alpha))
        )
        return out

    def _msub(self, x, y, out, alpha=1.0, *, ctx=None):
        self._charge_add("msub", out)
        self._sink.append(
            (OP_MSUB, self.reg(x), self.reg(y), self.reg(out),
             encode_scalar(alpha))
        )
        return out

    def _accum(self, x, out, *, ctx=None):
        self._charge_add("accum", out)
        self._sink.append((OP_ACCUM, self.reg(x), self.reg(out)))
        return out

    def _axpby(self, alpha, x, beta, y, *, ctx=None):
        self._charge_add("axpby", y)
        self._sink.append(
            (OP_AXPBY, encode_scalar(alpha), self.reg(x),
             encode_scalar(beta), self.reg(y))
        )
        return y

    # -- driver-level ops --------------------------------------------- #
    def emit_event(self, action, m, k, n, depth, scheme="") -> None:
        self._sink.append(
            (OP_EVENT, RecursionEvent(action, m, k, n, depth, scheme))
        )

    def emit_gemm(self, a: Region, b: Region, c: Region,
                  alpha, beta) -> None:
        m, k = a.shape
        n = b.shape[1]
        muls, adds = gemm_flops(m, k, n)
        self.kernel_calls["dgemm"] += 1
        self.mul_flops_total += muls
        self.add_flops_total += adds
        self.counts["mul_flops"] += float(m) * k * n
        key = (m, k, n)
        shapes = self.counts["base_shapes"]
        shapes[key] = shapes.get(key, 0) + 1
        self._sink.append(
            (OP_GEMM, self.reg(a), self.reg(b), self.reg(c),
             encode_scalar(alpha), encode_scalar(beta))
        )

    def emit_fixup(self, a: Region, b: Region, c: Region,
                   alpha, beta, side: str,
                   divisors: Tuple[int, int, int] = (2, 2, 2)) -> None:
        m, k = a.shape
        n = b.shape[1]
        # predicted kernel tallies follow apply_fixups/apply_fixups_head
        # exactly: one BLAS-2 call per peeled index, and which dimensions
        # peel depends only on the remainders modulo the scheme divisors
        dm, dk, dn = divisors
        mo, ko, no = m % dm, k % dk, n % dn
        mp, kp, np_ = m - mo, k - ko, n - no
        if ko and mp and np_:
            self.kernel_calls["dger"] += ko
            self.mul_flops_total += ko * float(mp) * np_
            self.add_flops_total += ko * float(mp) * np_
        if no and mp:
            self.kernel_calls["dgemv"] += no
            self.mul_flops_total += no * float(mp) * k
            self.add_flops_total += no * max(0.0, float(mp) * k - mp)
        if mo:
            self.kernel_calls["dgemv"] += mo
            self.mul_flops_total += mo * float(n) * k
            self.add_flops_total += mo * max(0.0, float(n) * k - n)
        self._sink.append(
            (OP_FIXUP, self.reg(a), self.reg(b), self.reg(c),
             encode_scalar(alpha), encode_scalar(beta), side, divisors)
        )

    # ------------------------------------------------------------------ #
    def build(
        self,
        signature: Optional["PlanSignature"],
        m: int,
        k: int,
        n: int,
        nb: int,
        backend: str,
        branches: Tuple[tuple, ...] = (),
        accuracy: str = "fast",
    ) -> ExecutionPlan:
        charge = self.ws.peak + sum(
            child.charge_bytes for *_ids, child in branches
        )
        counts = dict(self.counts)
        counts["kernel_calls"] = Counter(self.kernel_calls)
        counts["mul_flops_total"] = self.mul_flops_total
        counts["add_flops_total"] = self.add_flops_total
        return ExecutionPlan(
            signature, m, k, n, self.dtype, nb, backend,
            tuple(self.region_descs), tuple(self.ops), branches,
            tuple(self.epilogue), self.ws.required, self.ws.peak,
            charge, counts, accuracy,
        )


# ---------------------------------------------------------------------- #
def _roots(m: int, k: int, n: int, dtype: Any) -> tuple:
    return (
        Region(ROOT_A, 0, m, k, 0, 0, m, k, dtype),
        Region(ROOT_B, 0, k, n, 0, 0, k, n, dtype),
        Region(ROOT_C, 0, m, n, 0, 0, m, n, dtype),
    )


def _core_regions(
    a: Region, b: Region, c: Region, side: str,
    divisors: Tuple[int, int, int] = (2, 2, 2),
) -> tuple:
    """Divisor-exact core windows — same arithmetic as peeling.core_views."""
    m, k = a.shape
    n = b.shape[1]
    dm, dk, dn = divisors
    mo, ko, no = m % dm, k % dk, n % dn
    if side == "tail":
        return (
            a[: m - mo, : k - ko], b[: k - ko, : n - no],
            c[: m - mo, : n - no],
        )
    return a[mo:, ko:], b[ko:, no:], c[mo:, no:]


class _SerialCompiler:
    """Replays :func:`repro.core.dgefmm._rec` into a recorder.

    The per-node decisions come from the same
    :func:`repro.core.traversal.decide` the live driver consumes; this
    class only binds the returned nodes to recording kernels instead of
    numeric ones.
    """

    def __init__(self, cfg: GemmConfig, dtype: Any) -> None:
        self.cfg = cfg
        self.rec = _Recorder(dtype)

    def run(self, a: Region, b: Region, c: Region,
            alpha: Any, beta: Any, depth: int, scheme: str) -> None:
        rec, cfg = self.rec, self.cfg
        m, k = a.shape
        n = b.shape[1]
        if m == 0 or n == 0:
            return
        if k == 0 or alpha == 0.0:
            if c.shape[0] and c.shape[1]:
                rec.kernels.axpby(0.0, c, beta, c)
            return
        rec.counts["max_depth"] = max(rec.counts["max_depth"], depth)
        node = decide(m, k, n, depth, scheme, beta == 0.0, cfg.cutoff)
        if isinstance(node, Base):
            rec.counts["base"] += 1
            rec.emit_event("base", m, k, n, depth)
            rec.emit_gemm(a, b, c, alpha, beta)
            return

        if node.peeled:
            rec.counts["peel"] += 1
            rec.emit_event("peel", m, k, n, depth)
        rec.counts["recurse"] += 1
        rec.emit_event(
            "recurse", node.mp, node.kp, node.np_, depth, scheme=node.level
        )

        if node.peeled:
            core_a, core_b, core_c = _core_regions(
                a, b, c, cfg.peel, node.divisors
            )
        else:
            core_a, core_b, core_c = a, b, c

        def recurse(aa, bb, cc, al, be):
            self.run(aa, bb, cc, al, be, depth + 1, node.child_scheme)

        fn = LEVEL_FNS[node.level]
        if node.level == "s1b0":
            fn(core_a, core_b, core_c, alpha, ctx=None, ws=rec.ws,
               recurse=recurse, kernels=rec.kernels)
        else:
            fn(core_a, core_b, core_c, alpha, beta, ctx=None,
               ws=rec.ws, recurse=recurse, kernels=rec.kernels)

        if node.peeled:
            rec.emit_fixup(a, b, c, alpha, beta, cfg.peel, node.divisors)


def _compile_serial(
    m: int,
    k: int,
    n: int,
    alpha: Any,
    beta: Any,
    cfg: GemmConfig,
    scheme: str,
    dtype: Any,
    signature: Optional["PlanSignature"] = None,
    depth: int = 0,
) -> ExecutionPlan:
    """Compile a serial subtree rooted at ``depth`` with node ``scheme``.

    ``depth`` is 0 for whole serial plans; parallel plans compile their
    below-the-region serial children at the subtree's true depth, so
    depth-sensitive criteria see the same recursion as the live driver.
    """
    sc = _SerialCompiler(cfg, dtype)
    a, b, c = _roots(m, k, n, dtype)
    sc.run(a, b, c, alpha, beta, depth, scheme)
    plan = sc.rec.build(signature, m, k, n, cfg.nb, cfg.backend,
                        accuracy=cfg.accuracy)
    if cfg.fuse:
        plan.fused = fuse_plan(plan)
    return plan


# ---------------------------------------------------------------------- #
def _compile_pnode(
    m: int,
    k: int,
    n: int,
    alpha: Any,
    beta: Any,
    level: int,
    depth: int,
    node: Any,
    cfg: GemmConfig,
    max_depth: int,
    dtype: Any,
    signature: Optional["PlanSignature"] = None,
) -> ExecutionPlan:
    """Mirror of parallel._prun for a node the traversal lets recurse."""
    rec = _Recorder(dtype)
    a, b, c = _roots(m, k, n, dtype)
    if node.peeled:
        core_a, core_b, core_c = _core_regions(
            a, b, c, cfg.peel, node.divisors
        )
    else:
        core_a, core_b, core_c = a, b, c

    branches: List[tuple] = []
    with rec.ws.frame():
        s, t, ps = _stage_sums(
            core_a, core_b, rec.ws, np.dtype(dtype), None, rec.kernels
        )
        jobs = _job_operands(core_a, core_b, s, t, ps)
        for aa, bb, cc in jobs:
            jm, jk = aa.shape
            jn = bb.shape[1]
            if level < max_depth:
                child = _prun_mirror(
                    jm, jk, jn, 1.0, 0.0, level + 1, depth + 1, cfg,
                    node.child_scheme, max_depth, dtype,
                )
            else:
                child = _compile_serial(
                    jm, jk, jn, 1.0, 0.0, cfg, node.child_scheme, dtype,
                    depth=depth + 1,
                )
            branches.append((rec.reg(aa), rec.reg(bb), rec.reg(cc), child))
        rec.begin_epilogue()
        _stage_combine(ps, core_c, alpha, beta, None, rec.kernels)
        if node.peeled:
            rec.emit_fixup(a, b, c, alpha, beta, cfg.peel, node.divisors)

    return rec.build(signature, m, k, n, cfg.nb, cfg.backend,
                     tuple(branches), accuracy=cfg.accuracy)


def _prun_mirror(
    m: int,
    k: int,
    n: int,
    alpha: Any,
    beta: Any,
    level: int,
    depth: int,
    cfg: GemmConfig,
    scheme: str,
    max_depth: int,
    dtype: Any,
    signature: Optional["PlanSignature"] = None,
) -> ExecutionPlan:
    """Mirror of parallel._prun's dispatch: parallel level or serial."""
    if m == 0 or n == 0 or k == 0 or alpha == 0.0:
        return _compile_serial(
            m, k, n, alpha, beta, cfg, scheme, dtype, signature, depth,
        )
    node = decide(m, k, n, depth, scheme, beta == 0.0, cfg.cutoff)
    if isinstance(node, Base) or node.level not in PARALLEL_LEVELS:
        return _compile_serial(
            m, k, n, alpha, beta, cfg, scheme, dtype, signature, depth,
        )
    return _compile_pnode(
        m, k, n, alpha, beta, level, depth, node, cfg, max_depth, dtype,
        signature,
    )


# ---------------------------------------------------------------------- #
def compile_plan(signature: "PlanSignature") -> ExecutionPlan:
    """Compile one :class:`PlanSignature` into an :class:`ExecutionPlan`."""
    if signature.kind not in ("serial", "parallel"):
        raise ArgumentError(
            "compile_plan", "kind",
            f"must be 'serial' or 'parallel', got {signature.kind!r}",
        )
    cfg = signature.config()
    if cfg.dtype == "object":
        raise ArgumentError(
            "compile_plan", "dtype",
            "object-dtype problems cannot be planned (plan temporaries "
            "are typed views over a byte arena); use the recursive "
            "driver",
        )
    alpha: Any = 0.0 if signature.alpha_zero else SymScalar("a")
    beta: Any = 0.0 if signature.beta_zero else SymScalar("b")
    if signature.kind == "serial":
        return _compile_serial(
            signature.m, signature.k, signature.n, alpha, beta,
            cfg, cfg.scheme, signature.dtype, signature,
        )
    return _prun_mirror(
        signature.m, signature.k, signature.n, alpha, beta, 1, 0,
        cfg, cfg.scheme, signature.max_parallel_depth, signature.dtype,
        signature,
    )
