"""PlanCache: thread-safe LRU cache of compiled execution plans.

Production traffic (the ROADMAP's north star) is dominated by repeated
problem shapes, so the cost of compiling a plan — one walk of the
recursion — is paid once per distinct :class:`~repro.plan.compiler.
PlanSignature` and amortized to a dictionary lookup thereafter.  The
cache is bounded two ways, by plan count and by estimated plan bytes,
evicting least-recently-used entries; hit/miss/eviction counters are
surfaced through ``ExecutionContext.stats["plan_cache"]`` by the
drivers so experiments can report cache behaviour alongside op counts.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional

from repro.errors import ArgumentError
from repro.plan.compiler import ExecutionPlan, PlanSignature, compile_plan

__all__ = ["PlanCache"]


class PlanCache:
    """LRU cache mapping :class:`PlanSignature` to :class:`ExecutionPlan`.

    Parameters
    ----------
    max_plans:
        Most plans retained at once (least-recently-used evicted first).
    max_bytes:
        Bound on the summed size estimate of retained plans.  A single
        plan larger than the bound is still cached alone — the bound
        sheds history, it never refuses service.

    All operations take the cache lock, so one instance can safely serve
    ``dgefmm``/``pdgefmm`` calls from many threads; compilation happens
    under the lock, so concurrent callers of the same signature compile
    it exactly once.
    """

    def __init__(self, max_plans: int = 64,
                 max_bytes: int = 64 * 1024 * 1024) -> None:
        if max_plans < 1:
            raise ArgumentError(
                "PlanCache", "max_plans", f"must be >= 1, got {max_plans}"
            )
        if max_bytes < 1:
            raise ArgumentError(
                "PlanCache", "max_bytes", f"must be >= 1, got {max_bytes}"
            )
        self.max_plans = int(max_plans)
        self.max_bytes = int(max_bytes)
        self._lock = threading.Lock()
        self._plans: "OrderedDict[PlanSignature, ExecutionPlan]" = (
            OrderedDict()
        )
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.cleared = 0

    # ------------------------------------------------------------------ #
    def get_or_compile(self, signature: PlanSignature) -> ExecutionPlan:
        """The cached plan for ``signature``, compiling on first use."""
        with self._lock:
            plan = self._plans.get(signature)
            if plan is not None:
                self.hits += 1
                self._plans.move_to_end(signature)
                return plan
            self.misses += 1
            plan = compile_plan(signature)
            self._plans[signature] = plan
            self._bytes += plan.nbytes
            self._evict()
            return plan

    def get(self, signature: PlanSignature) -> Optional[ExecutionPlan]:
        """Peek without compiling (still counts a hit/miss)."""
        with self._lock:
            plan = self._plans.get(signature)
            if plan is None:
                self.misses += 1
                return None
            self.hits += 1
            self._plans.move_to_end(signature)
            return plan

    def peek(self, signature: PlanSignature) -> Optional[ExecutionPlan]:
        """Look up without compiling, counting, or LRU-touching.

        For introspection (the serving engine's batch former, tests)
        that must not skew the hit/miss accounting or the eviction
        order.
        """
        with self._lock:
            return self._plans.get(signature)

    def hit_rate(self) -> float:
        """``hits / (hits + misses)`` so far (0.0 before any lookup).

        Shares :meth:`_hit_rate_locked` with :meth:`stats`, so the two
        can never disagree on the denominator: every lookup — hit or
        miss, including lookups whose entries were later evicted or
        dropped by :meth:`clear` — counts exactly once in both.
        """
        with self._lock:
            return self._hit_rate_locked()

    def _hit_rate_locked(self) -> float:
        # caller holds self._lock (which is not reentrant)
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def _evict(self) -> None:
        # over-count: drop LRU entries; over-bytes: likewise, but never
        # evict the entry just inserted (len > 1 guard)
        while len(self._plans) > self.max_plans or (
            self._bytes > self.max_bytes and len(self._plans) > 1
        ):
            _sig, plan = self._plans.popitem(last=False)
            self._bytes -= plan.nbytes
            self.evictions += 1

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def clear(self) -> None:
        """Drop every cached plan (counters are retained)."""
        with self._lock:
            self.cleared += len(self._plans)
            self._plans.clear()
            self._bytes = 0

    def stats(self) -> dict:
        """Counters snapshot, suitable for ``ctx.stats["plan_cache"]``.

        Taken under the cache lock, so the snapshot is *consistent*:
        ``misses - evictions - plans`` equals the number of entries
        dropped by :meth:`clear` (zero when clear was never called), no
        matter how many threads are churning the cache concurrently.
        """
        with self._lock:
            return {
                "plans": len(self._plans),
                "bytes": self._bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "cleared": self.cleared,
                "hit_rate": self._hit_rate_locked(),
                "max_plans": self.max_plans,
                "max_bytes": self.max_bytes,
            }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        s = self.stats()
        return (
            f"PlanCache(plans={s['plans']}, bytes={s['bytes']}, "
            f"hits={s['hits']}, misses={s['misses']}, "
            f"evictions={s['evictions']})"
        )
