"""Execution-plan compilation, caching, and replay for DGEFMM.

The recursion that :func:`repro.core.dgefmm.dgefmm` walks — cutoff
tests (paper eq. 15), dynamic peeling, scheme dispatch, workspace
frames — is a pure function of the problem *signature* (dimensions,
scalar zero-classes, dtype, scheme, cutoff).  This package compiles
that walk once per signature into a flat, immutable
:class:`~repro.plan.compiler.ExecutionPlan`, caches plans in a
thread-safe LRU :class:`~repro.plan.cache.PlanCache`, and replays them
with :func:`~repro.plan.executor.execute_plan` at zero per-call
planning or allocation cost (pool-backed arenas, precomputed byte
offsets).  ``dgefmm(..., plan_cache=...)`` and ``pdgefmm(...,
plan_cache=...)`` wire the path in transparently; results are
bit-identical to the recursive drivers.

With ``fuse=True`` on :class:`~repro.core.config.GemmConfig`, compiled
plans additionally carry a :class:`~repro.plan.fuse.FusedProgram` —
the op stream re-expressed as elementwise runs, packed batched-product
groups, and direct base-case products (:func:`~repro.plan.fuse.
fuse_plan`) — which the executor replays in place of the interpreted
loop.  Fused replay is deterministic and charge-identical, but not
bit-identical to the interpreted stream (different base-case kernel);
``fuse`` therefore keys the plan signature.
"""

from repro.plan.cache import PlanCache
from repro.plan.compiler import (
    ExecutionPlan,
    PlanSignature,
    compile_plan,
    signature_for,
)
from repro.plan.executor import execute_plan
from repro.plan.fuse import FusedProgram, fuse_plan

__all__ = [
    "PlanCache",
    "PlanSignature",
    "ExecutionPlan",
    "compile_plan",
    "signature_for",
    "execute_plan",
    "FusedProgram",
    "fuse_plan",
]
