"""PlanExecutor: replay compiled plans with zero per-call planning.

Executing a plan is a flat loop over op tuples: resolve each operand
region to a live numpy view (roots are sliced from the call's operands;
temporaries are carved from one arena buffer at the plan's precomputed
byte offsets), resolve each scalar code against the call's
``alpha``/``beta``, and invoke the *same* instrumented kernels the
recursive driver uses — :func:`~repro.blas.addsub.madd` and friends,
:func:`~repro.blas.level3.dgemm`, and the peeling fix-up executors.
Because the kernels, operand layouts, and scalar arithmetic are
identical, planned execution is bit-identical to the recursive path and
charges the context identically; what a plan *removes* is everything
around the kernels — per-node cutoff evaluation, peeling decisions,
scheme dispatch, workspace frames and allocation accounting, closure
construction, and recursion bookkeeping.

Arenas come from a :class:`~repro.core.pool.WorkspacePool` when one is
supplied: the executor reserves the plan's precomputed requirement once
(:meth:`~repro.core.pool.PooledWorkspace.reserve`) and binds temporary
views against the arena buffer — warm repeated calls perform **zero**
new allocations and reuse the bound views via a per-buffer cache.
Without a pool, a private aligned buffer per call keeps the path
correct, just not amortized.

Parallel plans replay under the live driver's worker-budget model:
``workers`` splits level-by-level exactly like
:func:`repro.core.parallel.pdgefmm` (structure fixed by the plan,
thread count by the budget), with private worker contexts merged in
job order so instrumentation is thread-schedule-independent.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Any, List, Optional

from repro.blas.addsub import NUMERIC_KERNELS, kernels_for
from repro.blas.level3 import dgemm
from repro.blas.validate import copy_on_overlap
from repro.context import ExecutionContext
from repro.core.parallel import _split_budget
from repro.core.peeling import apply_fixups, apply_fixups_head
from repro.core.pool import WorkspacePool, _aligned_buffer
from repro.errors import ArgumentError
from repro.plan.fuse import run_fused
from repro.plan.ops import (
    OP_ACCUM,
    OP_AXPBY,
    OP_EVENT,
    OP_FIXUP,
    OP_GEMM,
    OP_MADD,
    OP_MSUB,
    ROOT_TEMP,
)

__all__ = ["execute_plan"]


def _bind_temps(plan, buf) -> dict:
    """Views for every temp region of ``plan`` carved out of ``buf``."""
    itemsize = plan.dtype.itemsize
    dtype = plan.dtype
    bases: dict = {}
    views: dict = {}
    for idx, desc in enumerate(plan.regions):
        kind, off, fr, fc, r0, c0, rows, cols = desc
        if kind != ROOT_TEMP:
            continue
        base_key = (off, fr, fc)
        base = bases.get(base_key)
        if base is None:
            nbytes = fr * fc * itemsize
            base = buf[off:off + nbytes].view(dtype).reshape(
                (fr, fc), order="F"
            )
            bases[base_key] = base
        if (r0, c0, rows, cols) == (0, 0, fr, fc):
            views[idx] = base
        else:
            views[idx] = base[r0:r0 + rows, c0:c0 + cols]
    return views


def _resolve(plan, va, vb, vc, buf) -> List[Any]:
    """Per-call region table: root windows sliced fresh, temps cached.

    The temp-view cache is keyed by the arena buffer's id; the buffer is
    stored alongside, so an entry both stays valid (views pin the buffer
    alive, making id reuse impossible while the entry exists) and is
    verified by identity before use (a regrown arena gets fresh views).
    """
    cache = plan._temp_cache
    key = id(buf)
    entry = cache.get(key)
    if entry is None or entry[0] is not buf:
        if len(cache) >= 64:
            cache.clear()
        entry = (buf, _bind_temps(plan, buf))
        cache[key] = entry
    temps = entry[1]
    roots = (va, vb, vc)
    views: List[Any] = []
    for idx, desc in enumerate(plan.regions):
        kind, off, fr, fc, r0, c0, rows, cols = desc
        if kind == ROOT_TEMP:
            views.append(temps[idx])
        else:
            views.append(roots[kind][r0:r0 + rows, c0:c0 + cols])
    return views


def _run_ops(ops, v, st, ctx, nb, backend,
             em=NUMERIC_KERNELS, accuracy="fast") -> None:
    """The flat replay loop.  ``v`` is the resolved region table; ``st``
    the scalar table ``(alpha, -alpha, beta, -beta)`` — int-coded op
    scalars index it, float literals pass through.  ``em`` is the
    accuracy-selected block-kernel table and ``accuracy`` the matching
    base-case discipline, so plan replay dispatches the *same* kernels
    the recursive driver would for that config (bit-identity per
    accuracy, not just for "fast")."""
    madd, msub, accum, axpby = em
    for op in ops:
        code = op[0]
        if code == OP_MADD:
            _, xi, yi, oi, al = op
            madd(v[xi], v[yi], v[oi],
                 st[al] if al.__class__ is int else al, ctx=ctx)
        elif code == OP_MSUB:
            _, xi, yi, oi, al = op
            msub(v[xi], v[yi], v[oi],
                 st[al] if al.__class__ is int else al, ctx=ctx)
        elif code == OP_ACCUM:
            accum(v[op[1]], v[op[2]], ctx=ctx)
        elif code == OP_AXPBY:
            _, al, xi, be, yi = op
            axpby(st[al] if al.__class__ is int else al, v[xi],
                  st[be] if be.__class__ is int else be, v[yi], ctx=ctx)
        elif code == OP_GEMM:
            _, ai, bi, ci, al, be = op
            dgemm(v[ai], v[bi], v[ci],
                  st[al] if al.__class__ is int else al,
                  st[be] if be.__class__ is int else be,
                  ctx=ctx, nb=nb, backend=backend, accuracy=accuracy)
        elif code == OP_FIXUP:
            _, ai, bi, ci, al, be, side, divisors = op
            fix = apply_fixups if side == "tail" else apply_fixups_head
            fix(v[ai], v[bi], v[ci],
                st[al] if al.__class__ is int else al,
                st[be] if be.__class__ is int else be, ctx=ctx,
                divisors=divisors)
        else:  # OP_EVENT
            ctx.record(op[1])


def _exec(plan, va, vb, vc, st, ctx, pool, workers, arena=None) -> None:
    """Execute one plan node (serial body or parallel level).

    ``arena`` is a caller-held :class:`~repro.core.pool.PooledWorkspace`
    to draw this node's buffer from instead of checking one out of the
    pool — the micro-batching hook: the serving engine reserves one
    arena per *batch* and replays the plan across every request in it.
    Only the top node uses it; parallel branches still draw from
    ``pool``.
    """
    # Fused replay needs per-op hooks absent: tracing replays EVENT ops,
    # dry runs skip numerics per kernel, and machine models charge
    # modeled seconds per call — all three fall back to the interpreted
    # stream (same plan, bit-identical numerics on the fallback).
    fused = plan.fused
    if fused is not None and (
        ctx.trace or ctx.dry or ctx.machine is not None
    ):
        fused = None
    need = fused.arena_bytes if fused is not None else plan.arena_bytes

    pooled = False
    ws = None
    if need or plan.branches:
        if arena is not None:
            buf = arena.reserve(need)
        elif pool is not None:
            ws = pool.checkout()
            buf = ws.reserve(need)
            pooled = True
        else:
            buf = _aligned_buffer(need)
    else:
        buf = None

    try:
        v = _resolve(plan, va, vb, vc, buf) if plan.regions else []
        em = kernels_for(plan.accuracy)
        if fused is not None:
            run_fused(fused, v, st, ctx, buf)
        else:
            _run_ops(plan.ops if ctx.trace else plan.ops_quiet,
                     v, st, ctx, plan.nb, plan.backend,
                     em, plan.accuracy)

        if plan.branches:
            branches = plan.branches
            threads, sub_budget = _split_budget(workers, len(branches))
            worker_ctxs = [
                ExecutionContext(ctx.machine, trace=ctx.trace)
                for _ in branches
            ]

            def run(idx: int) -> None:
                ai, bi, ci, child = branches[idx]
                _exec(child, v[ai], v[bi], v[ci], st,
                      worker_ctxs[idx], pool, sub_budget)

            if threads == 1:
                for i in range(len(branches)):
                    run(i)
            else:
                with ThreadPoolExecutor(max_workers=threads) as tpool:
                    list(tpool.map(run, range(len(branches))))
            for wctx in worker_ctxs:
                ctx.merge_child(wctx)

            _run_ops(
                plan.epilogue if ctx.trace else plan.epilogue_quiet,
                v, st, ctx, plan.nb, plan.backend,
                em, plan.accuracy,
            )
    except BaseException:
        if pooled:
            pool.release(ws)
        raise
    if pooled:
        pool.checkin(ws)


def execute_plan(
    plan,
    a: Any,
    b: Any,
    c: Any,
    alpha: Any = 1.0,
    beta: Any = 0.0,
    *,
    ctx: ExecutionContext,
    pool: Optional[WorkspacePool] = None,
    workers: int = 1,
    workspace: Optional[Any] = None,
) -> Any:
    """Replay ``plan`` against op-resolved operands; returns ``c``.

    ``a``/``b`` must already be transpose-resolved views of shape
    ``(m, k)`` / ``(k, n)`` matching the plan (the driver wrappers do
    this).  ``alpha``/``beta`` must belong to the zero/nonzero classes
    the plan was compiled for.  ``workers`` is the parallel replay
    budget (ignored by serial plans), split level-by-level exactly like
    the live parallel driver.  ``workspace`` (a quiescent
    :class:`~repro.core.pool.PooledWorkspace` the caller holds checked
    out) supplies the top node's arena directly, bypassing pool
    checkout — the serving engine's micro-batching hook: one arena is
    reserved per batch of same-signature requests and every replay
    binds against its buffer (the temp-view cache hits on all but the
    first).  Parallel branches still draw per-worker arenas from
    ``pool``.

    Like the drivers, the executor applies the copy-on-overlap fallback
    when ``c`` may share memory with ``a`` or ``b`` — replayed ops write
    into C's windows mid-plan, exactly like the recursion they mirror
    (the driver wrappers have usually resolved overlap already, in which
    case this re-check is one cheap bounds comparison per operand).
    """
    a, b = copy_on_overlap(c, a, b, ctx=ctx)
    sig = plan.signature
    if sig is not None:
        if tuple(a.shape) != (sig.m, sig.k) or b.shape[1] != sig.n:
            raise ArgumentError(
                "execute_plan", "a/b",
                f"operands {tuple(a.shape)}x{b.shape[1]} do not match "
                f"plan {(sig.m, sig.k, sig.n)}",
            )
        if tuple(c.shape) != (sig.m, sig.n):
            raise ArgumentError(
                "execute_plan", "c",
                f"output {tuple(c.shape)} does not match plan "
                f"{(sig.m, sig.n)}",
            )
        if sig.alpha_zero != (alpha == 0.0) or sig.beta_zero != (beta == 0.0):
            raise ArgumentError(
                "execute_plan", "alpha/beta",
                "scalar zero-class differs from the plan signature",
            )
    st = (alpha, -alpha, beta, -beta)
    _exec(plan, a, b, c, st, ctx, pool, workers, arena=workspace)
    ctx.stats_max("workspace_peak_bytes", plan.charge_bytes)
    return c
