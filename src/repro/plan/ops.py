"""Typed plan ops, regions, and symbolic scalars — the plan vocabulary.

A compiled :class:`~repro.plan.compiler.ExecutionPlan` is a flat tuple of
small op tuples.  Each op names its operands by *region index*: an index
into the plan's interned region table, where every region is either a
rectangular window of one of the three call operands (op(A), op(B), C)
or a window of a temporary living at a precomputed byte offset inside
the plan's workspace arena (the bump-allocator layout the pooled
workspace would produce — see :class:`~repro.core.pool.PooledWorkspace`).

Scalars inside ops are either Python floats (the literal 1.0 / -1.0 /
0.0 coefficients the schedules hard-code) or one of four small integer
codes standing for the call's ``alpha``/``beta``: the schedules only
ever propagate ``±alpha`` and ``±beta``, so four codes cover every
symbolic scalar a plan can contain.  The executor resolves a code ``s``
as ``(alpha, -alpha, beta, -beta)[s]`` — computing ``-alpha`` exactly
like the live schedules do, so planned and recursive execution are
bit-identical.
"""

from __future__ import annotations

from typing import Any, Tuple

import numpy as np

__all__ = [
    "OP_MADD",
    "OP_MSUB",
    "OP_ACCUM",
    "OP_AXPBY",
    "OP_GEMM",
    "OP_FIXUP",
    "OP_EVENT",
    "OP_NAMES",
    "SC_ALPHA",
    "SC_NEG_ALPHA",
    "SC_BETA",
    "SC_NEG_BETA",
    "ROOT_A",
    "ROOT_B",
    "ROOT_C",
    "ROOT_TEMP",
    "Region",
    "SymScalar",
    "encode_scalar",
    "scalar_repr",
]

# ---------------------------------------------------------------------- #
# opcodes (first element of every op tuple)
OP_MADD = 0    # (OP_MADD, x, y, out, alpha)        out <- alpha*(x + y)
OP_MSUB = 1    # (OP_MSUB, x, y, out, alpha)        out <- alpha*(x - y)
OP_ACCUM = 2   # (OP_ACCUM, x, out)                 out <- out + x
OP_AXPBY = 3   # (OP_AXPBY, alpha, x, beta, y)      y <- alpha*x + beta*y
OP_GEMM = 4    # (OP_GEMM, a, b, c, alpha, beta)    base-case standard GEMM
OP_FIXUP = 5   # (OP_FIXUP, a, b, c, alpha, beta, side, divisors)  peel fixup
OP_EVENT = 6   # (OP_EVENT, RecursionEvent)         trace replay (trace only)

OP_NAMES = ("madd", "msub", "accum", "axpby", "gemm", "fixup", "event")

# symbolic-scalar codes (ints; literals stay floats, so the executor can
# distinguish them by type)
SC_ALPHA = 0
SC_NEG_ALPHA = 1
SC_BETA = 2
SC_NEG_BETA = 3

_SC_NAMES = ("alpha", "-alpha", "beta", "-beta")

# region roots
ROOT_A = 0
ROOT_B = 1
ROOT_C = 2
ROOT_TEMP = 3

_ROOT_NAMES = ("A", "B", "C", "T")


class SymScalar:
    """``±alpha`` / ``±beta`` placeholder flowing through compilation.

    The compiler feeds these to the *real* schedule functions in place of
    the numeric scalars.  The schedules only ever negate them (``-alpha``)
    or compare them against literals (``beta == 0.0`` in the scheme
    dispatch), so the class implements exactly that surface: ``__neg__``
    flips the sign, and equality against anything that is not a
    :class:`SymScalar` is False — the correct answer for the nonzero
    scalar class a symbolic plan is compiled for (the zero classes are
    compiled with literal ``0.0`` and take the live dispatch's other arm).
    """

    __slots__ = ("kind", "coef")

    def __init__(self, kind: str, coef: int = 1) -> None:
        self.kind = kind      # 'a' or 'b'
        self.coef = coef      # +1 or -1

    def __neg__(self) -> "SymScalar":
        return SymScalar(self.kind, -self.coef)

    def __eq__(self, other: Any) -> Any:
        if isinstance(other, SymScalar):
            return self.kind == other.kind and self.coef == other.coef
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.kind, self.coef))

    @property
    def code(self) -> int:
        if self.kind == "a":
            return SC_ALPHA if self.coef > 0 else SC_NEG_ALPHA
        return SC_BETA if self.coef > 0 else SC_NEG_BETA

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return _SC_NAMES[self.code]


def encode_scalar(s: Any) -> Any:
    """Plan encoding of a schedule scalar: int code for symbols, float
    (or complex, for literal complex coefficients) otherwise."""
    if isinstance(s, SymScalar):
        return s.code
    return s


def scalar_repr(s: Any) -> str:
    """Human-readable scalar for ``plan explain`` output."""
    if s.__class__ is int:
        return _SC_NAMES[s]
    return repr(s)


class Region:
    """A rectangular window of a root operand or an arena temporary.

    Compile-time stand-in for a matrix view: carries shape and dtype,
    supports the 2-D slicing the schedules and the peeling helpers
    perform, and knows how to describe itself as an interning key.  For
    temporaries, ``offset`` is the byte offset of the *full* temporary
    inside the plan's arena (the bump-allocator address), and
    ``full_rows``/``full_cols`` its allocated shape; ``r0``/``c0`` locate
    this window inside it.  For roots, ``r0``/``c0`` are absolute in the
    op-resolved operand, so one slice binds the window at execution.
    """

    __slots__ = (
        "kind", "offset", "full_rows", "full_cols", "r0", "c0",
        "shape", "dtype",
    )

    def __init__(
        self,
        kind: int,
        offset: int,
        full_rows: int,
        full_cols: int,
        r0: int,
        c0: int,
        rows: int,
        cols: int,
        dtype: Any,
    ) -> None:
        self.kind = kind
        self.offset = offset
        self.full_rows = full_rows
        self.full_cols = full_cols
        self.r0 = r0
        self.c0 = c0
        self.shape: Tuple[int, int] = (rows, cols)
        self.dtype = np.dtype(dtype)

    # -- the surface the schedules use ------------------------------- #
    @property
    def ndim(self) -> int:
        return 2

    def __getitem__(self, key: Any) -> "Region":
        if not isinstance(key, tuple):
            key = (key,)
        if len(key) > 2:
            raise IndexError("Region supports at most 2-D slicing")
        key = key + (slice(None),) * (2 - len(key))
        rows, cols = self.shape
        rk, ck = key
        if not (isinstance(rk, slice) and isinstance(ck, slice)):
            raise IndexError(
                "Region slicing supports slices only (plan compilation "
                "never takes scalar indices)"
            )
        r0, r1, rs = rk.indices(rows)
        c0, c1, cs = ck.indices(cols)
        if rs != 1 or cs != 1:
            raise IndexError("Region slicing requires unit steps")
        return Region(
            self.kind, self.offset, self.full_rows, self.full_cols,
            self.r0 + r0, self.c0 + c0,
            max(0, r1 - r0), max(0, c1 - c0), self.dtype,
        )

    def descriptor(self) -> tuple:
        """Hashable identity for interning into the plan's region table."""
        return (
            self.kind, self.offset, self.full_rows, self.full_cols,
            self.r0, self.c0, self.shape[0], self.shape[1],
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        root = _ROOT_NAMES[self.kind]
        loc = f"@{self.offset}" if self.kind == ROOT_TEMP else ""
        return (
            f"{root}{loc}[{self.r0}:{self.r0 + self.shape[0]},"
            f"{self.c0}:{self.c0 + self.shape[1]}]"
        )
