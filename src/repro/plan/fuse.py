"""Plan fusion: coalesce op chains and batch base-case products.

The interpreted executor (:mod:`repro.plan.executor`) pays Python
dispatch per typed op — one function call, operand validation, and a
context charge for every madd/msub/axpby and every leaf ``dgemm``.  At
serving scale that dispatch *is* the dominant cost (ROADMAP item 1).
This module compiles an :class:`~repro.plan.compiler.ExecutionPlan`
into a :class:`FusedProgram` of three coarse step kinds:

- **Elementwise runs** (``FS_EW``): maximal consecutive stretches of
  ``OP_MADD``/``OP_MSUB``/``OP_ACCUM``/``OP_AXPBY`` executed as one
  tight inline loop — same numpy calls, same order, no per-op function
  call, validation, or charge (the context is charged once per run with
  the exact aggregate tallies).  Elementwise fusion is **bit-identical**
  to interpreted replay by construction.  Runs also carry two pseudo-op
  kinds: ``OP_PACK`` (operand capture for a deferred batch, below) and
  ``OP_DIRECT`` — a base-case product executed in place via one strided
  ``np.matmul``, used for every product the hazard analysis cannot pair
  with a batch partner (packing a lone product costs more than the one
  call it saves).
- **Batched GEMM groups** (``FS_BATCH``): same-shape, same-scalar
  base-case products stacked into contiguous ``(d, m, k)`` / ``(d, k,
  n)`` pack buffers and executed as one 3-D ``np.matmul`` — the
  packing-friendly formulation of Huang et al.'s BLIS Strassen, with
  the pack buffers carved from the same arena the plan's temporaries
  live in (appended after ``plan.arena_bytes`` at 64-byte-aligned
  offsets).  Operands are packed *eagerly*, at the producing op's
  position in the stream (``OP_PACK`` pseudo-ops inside the elementwise
  runs), so the schedules' buffer reuse (an S-sum overwritten right
  after the product that consumed it is queued) never stales a read.
- **Fix-ups** (``FS_FIXUP``): dynamic-peeling boundary updates pass
  through to the interpreted executors unchanged.

Deferring a product is only legal until some later op reads or writes
its output; the pass tracks the pending outputs of every open group and
flushes *selectively* — only the conflicting groups execute at a
hazard, disjoint ones keep accumulating partners.  Because operands are
packed eagerly, writes to a pending product's *inputs* are not hazards
— exactly the case the Strassen schedules hit constantly.  The paper's
schedules are deliberately memory-frugal (products land in C quadrants
that the very next combination reads), which caps the legal batch depth
at the scheme's independent-product prefix; the two-pass structure —
discover groups first, then demote the singletons to ``OP_DIRECT`` at
their original stream position — keeps the batched path for every
product that genuinely has partners and the zero-copy path for the
rest.

Numerics: both the batched and the direct ``np.matmul`` apply the BLAS
kernel, which differs from the tiled-``einsum`` substrate kernel (and
may differ from a strided vendor call) in accumulation order only.
Fused execution is therefore *deterministic* (same plan, same operands,
same bits every replay) but is checked against the reference with the
oracle's standard dtype tolerance rather than bit-compared against the
interpreted path; the compensated elementwise chains stay bit-identical.
That is why ``fuse`` is a :class:`~repro.core.config.GemmConfig` field:
it keys :class:`~repro.plan.compiler.PlanSignature`, so fused and
interpreted plans can never collide in one cache.

The fused path runs only for plain numeric replay — no tracing, no dry
run, no attached machine model (those need per-op hooks); the executor
falls back to interpreted replay otherwise, from the same plan.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

import numpy as np

from repro.blas.level3 import gemm_flops
from repro.core.peeling import apply_fixups, apply_fixups_head
from repro.core.pool import _align_up
from repro.plan.ops import (
    OP_ACCUM,
    OP_AXPBY,
    OP_FIXUP,
    OP_GEMM,
    OP_MADD,
    OP_MSUB,
    ROOT_TEMP,
)

__all__ = ["FusedProgram", "fuse_plan", "run_fused",
           "FS_EW", "FS_BATCH", "FS_FIXUP", "OP_PACK", "OP_DIRECT"]

# fused step kinds (first element of every step tuple)
FS_EW = 0      # (FS_EW, ops, charges)       inline elementwise run
FS_BATCH = 1   # (FS_BATCH, group_indices)   execute + scatter batches
FS_FIXUP = 2   # (FS_FIXUP, fixup_op)        interpreted peel fix-up

#: pseudo-op inside an FS_EW run: copy a queued product's operands into
#: its group's pack buffers at the op's original stream position
#: (OP_PACK, gidx, slot, a_idx, b_idx)
OP_PACK = 7

#: pseudo-op inside an FS_EW run: a base-case product executed in place
#: by one strided ``np.matmul`` — (OP_DIRECT, ai, bi, ci, al, be, safe)
#: where ``safe`` means the output region provably aliases neither
#: input, so ``beta == 0`` may write straight into the output view
OP_DIRECT = 8

_EW_NAMES = {OP_MADD: "madd", OP_MSUB: "msub",
             OP_ACCUM: "accum", OP_AXPBY: "axpby"}


class FusedProgram:
    """A compiled fused replay program for one branch-free plan.

    ``steps`` is the flat step tuple described in the module docstring;
    ``groups[g]`` is ``(d, m, k, n, alpha, beta, c_indices, a_off,
    b_off, p_off, muls, adds)`` — ``d`` stacked ``m x k x n`` products
    sharing one scalar pair, their output region indices, the pack
    buffer byte offsets inside the (extended) arena (``None`` offsets
    for ``d == 1`` groups, which execute as ``OP_DIRECT`` instead), and
    the aggregate flop charge.  ``arena_bytes`` covers the base plan's
    temporaries *plus* the direct-product scratch (at ``direct_off``)
    and the pack scratch, laid out by a first-fit allocator over the
    groups' live ranges; the executor sizes the arena from it when
    replaying fused.
    """

    __slots__ = ("steps", "groups", "dtype", "arena_bytes", "pack_base",
                 "pack_bytes", "direct_off", "n_groups", "n_batched",
                 "n_direct", "max_batch", "_bind_cache")

    def __init__(self, steps, groups, dtype, arena_bytes, pack_base,
                 pack_bytes, direct_off) -> None:
        self.steps: Tuple[tuple, ...] = steps
        self.groups: Tuple[tuple, ...] = groups
        self.dtype = np.dtype(dtype)
        self.arena_bytes = int(arena_bytes)
        self.pack_base = int(pack_base)
        self.pack_bytes = int(pack_bytes)
        self.direct_off = direct_off
        self.n_groups = len(groups)
        self.n_batched = sum(1 for g in groups if g[0] > 1)
        self.n_direct = sum(1 for g in groups if g[0] == 1)
        self.max_batch = max((g[0] for g in groups), default=0)
        #: per-arena-buffer cache of bound pack-buffer triples and
        #: direct-scratch views, keyed by the buffer's id with the
        #: buffer stored for identity checks (same discipline as
        #: ExecutionPlan._temp_cache)
        self._bind_cache: dict = {}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FusedProgram({len(self.steps)} steps, "
            f"{self.n_batched} batched groups (max depth "
            f"{self.max_batch}), {self.n_direct} direct products, "
            f"pack {self.pack_bytes}B)"
        )


# ---------------------------------------------------------------------- #
# the fusion pass
# ---------------------------------------------------------------------- #
class _RegInfo:
    """Precomputed overlap geometry for one plan region."""

    __slots__ = ("kind", "base", "lo", "hi", "r0", "r1", "c0", "c1",
                 "empty")

    def __init__(self, desc: tuple, itemsize: int) -> None:
        kind, off, fr, fc, r0, c0, rows, cols = desc
        self.kind = kind
        self.base = (off, fr, fc)
        self.lo = off
        self.hi = off + fr * fc * itemsize
        self.r0, self.r1 = r0, r0 + rows
        self.c0, self.c1 = c0, c0 + cols
        self.empty = rows == 0 or cols == 0


def _overlaps(p: _RegInfo, q: _RegInfo) -> bool:
    """May the two regions share memory at execution time?

    Distinct roots never alias when replay starts (``copy_on_overlap``
    guarantees C is disjoint from A/B, and the arena is private), so
    only same-kind pairs can conflict: root windows by rectangle
    intersection; temporaries by rectangle when they window the same
    allocation, else conservatively by arena byte interval (sibling
    frames legitimately reuse offsets).
    """
    if p.empty or q.empty or p.kind != q.kind:
        return False
    if p.kind == ROOT_TEMP and p.base != q.base:
        return p.lo < q.hi and q.lo < p.hi
    return (p.r0 < q.r1 and q.r0 < p.r1
            and p.c0 < q.c1 and q.c0 < p.c1)


def _touched(op: tuple) -> tuple:
    """Region indices an op reads or writes (hazard set vs pending)."""
    code = op[0]
    if code == OP_ACCUM:
        return (op[1], op[2])
    if code == OP_AXPBY:
        return (op[2], op[4])
    # OP_MADD / OP_MSUB / OP_GEMM all carry three region operands
    return (op[1], op[2], op[3])


class _ScratchAlloc:
    """Compile-time first-fit allocator for pack scratch.

    Selective flushing lets pack-buffer lifetimes overlap arbitrarily
    (a group is live from its first pack to its batch step), so the
    layout pass replays the step stream through this allocator instead
    of assuming window-at-a-time reuse.  Offsets are 64-byte aligned;
    ``peak`` is the high-water requirement.
    """

    __slots__ = ("top", "peak", "free")

    def __init__(self, base: int) -> None:
        self.top = base
        self.peak = base
        self.free: List[list] = []   # sorted disjoint [start, end)

    def alloc(self, nbytes: int) -> int:
        nbytes = _align_up(nbytes)
        for i, blk in enumerate(self.free):
            start, end = blk
            if end - start >= nbytes:
                if end - start == nbytes:
                    self.free.pop(i)
                else:
                    blk[0] = start + nbytes
                return start
        start = self.top
        self.top += nbytes
        if self.top > self.peak:
            self.peak = self.top
        return start

    def release(self, off: int, nbytes: int) -> None:
        nbytes = _align_up(nbytes)
        end = off + nbytes
        free = self.free
        lo, hi = 0, len(free)
        while lo < hi:
            mid = (lo + hi) // 2
            if free[mid][0] < off:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(free) and free[lo][0] == end:
            free[lo][0] = off
        elif lo > 0 and free[lo - 1][1] == off:
            free[lo - 1][1] = end
            if lo < len(free) and free[lo][0] == end:
                free[lo - 1][1] = free[lo][1]
                free.pop(lo)
        else:
            free.insert(lo, [off, end])


def fuse_plan(plan) -> FusedProgram:
    """Compile a branch-free :class:`ExecutionPlan` into fused steps."""
    if plan.branches:
        raise ValueError("fuse_plan: parallel plans fuse per branch")
    itemsize = plan.dtype.itemsize
    info = [_RegInfo(d, itemsize) for d in plan.regions]
    regions = plan.regions

    steps: List[tuple] = []
    ew: List[tuple] = []           # current elementwise (+pack) run
    ew_charge: dict = {}           # kernel -> [calls, adds]
    groups: List[list] = []        # [d, m, k, n, al, be, c_idx_list]
    open_groups: dict = {}         # scalar/shape key -> open group idx
    group_key: dict = {}           # open group idx -> its key
    window: List[int] = []         # open group indices, oldest first
    group_outs: dict = {}          # open group idx -> [_RegInfo, ...]

    def close_ew() -> None:
        if not ew:
            return
        charges = tuple(
            (name, calls, adds) for name, (calls, adds)
            in ew_charge.items()
        )
        steps.append((FS_EW, tuple(ew), charges))
        ew.clear()
        ew_charge.clear()

    def flush(gidxs) -> None:
        """Execute the given open groups now (packs must precede)."""
        if not gidxs:
            return
        close_ew()
        batch = tuple(g for g in window if g in gidxs)
        steps.append((FS_BATCH, batch))
        for g in batch:
            window.remove(g)
            del group_outs[g]
            del open_groups[group_key.pop(g)]

    def conflicts(region_idxs, own: Optional[int] = None) -> set:
        """Open groups whose pending outputs overlap the given regions.

        ``own`` exempts one group — a gemm's *output* may stack onto
        its own group even when it overlaps that group's pending
        outputs, because the scatter loop replays slices in stream
        order (RAW/WAR between a gemm and its own group's *inputs* gets
        no exemption: eager packing would capture stale bytes).
        """
        hit = set()
        for idx in region_idxs:
            p = info[idx]
            for g, outs in group_outs.items():
                if g in hit or g == own:
                    continue
                for q in outs:
                    if _overlaps(p, q):
                        hit.add(g)
                        break
        return hit

    for op in plan.ops_quiet:
        code = op[0]
        if code == OP_GEMM:
            _, ai, bi, ci, al, be = op
            m, k = regions[ai][6], regions[ai][7]
            n = regions[bi][7]
            # scalars key by class too: the int code 0 (SC_ALPHA) and
            # the literal 0.0 hash equal but mean different things
            key = (m, k, n, al.__class__ is int, al,
                   be.__class__ is int, be)
            own = open_groups.get(key)
            # inputs must see every earlier product: no exemption
            flush(conflicts((ai, bi), None)
                  | conflicts((ci,), own))
            gidx = open_groups.get(key)   # own may have been flushed
            if gidx is None:
                gidx = len(groups)
                groups.append([0, m, k, n, al, be, []])
                open_groups[key] = gidx
                group_key[gidx] = key
                window.append(gidx)
                group_outs[gidx] = []
            g = groups[gidx]
            slot = g[0]
            g[0] = slot + 1
            g[6].append(ci)
            ew.append((OP_PACK, gidx, slot, ai, bi))
            group_outs[gidx].append(info[ci])
        elif code == OP_FIXUP:
            # fix-ups read and write full root windows: barrier
            flush(set(window))
            close_ew()
            steps.append((FS_FIXUP, op))
        else:
            flush(conflicts(_touched(op)))
            out_idx = op[4] if code == OP_AXPBY else (
                op[2] if code == OP_ACCUM else op[3]
            )
            rows, cols = regions[out_idx][6], regions[out_idx][7]
            entry = ew_charge.setdefault(_EW_NAMES[code], [0, 0.0])
            entry[0] += 1
            entry[1] += float(rows) * cols
            ew.append(op)
    flush(set(window))
    close_ew()

    # -- pass 2: demote singleton groups to in-place direct products --- #
    # A group that never found a partner gains nothing from packing (two
    # slice copies + a scatter to save zero calls), so its one product
    # executes inline at its *original* stream position — always legal,
    # since that is exactly the interpreted order.  Empty FS_BATCH steps
    # disappear and the neighbouring elementwise runs merge.
    steps2: List[tuple] = []
    ew2: List[tuple] = []
    charge2: dict = {}   # kernel -> [calls, muls, adds]
    direct_max = 0

    def close_ew2() -> None:
        if not ew2:
            return
        charges = tuple(
            (name, calls, muls, adds)
            for name, (calls, muls, adds) in charge2.items()
        )
        steps2.append((FS_EW, tuple(ew2), charges))
        ew2.clear()
        charge2.clear()

    for step in steps:
        if step[0] == FS_EW:
            for name, calls, adds in step[2]:
                entry = charge2.setdefault(name, [0, 0.0, 0.0])
                entry[0] += calls
                entry[2] += adds
            for op in step[1]:
                if op[0] != OP_PACK:
                    ew2.append(op)
                    continue
                gidx = op[1]
                g = groups[gidx]
                if g[0] > 1:
                    ew2.append(op)
                    continue
                ai, bi = op[3], op[4]
                ci = g[6][0]
                safe = (not _overlaps(info[ci], info[ai])
                        and not _overlaps(info[ci], info[bi]))
                ew2.append((OP_DIRECT, ai, bi, ci, g[4], g[5], safe))
                m, k, n = g[1], g[2], g[3]
                muls, adds = gemm_flops(m, k, n)
                entry = charge2.setdefault("dgemm", [0, 0.0, 0.0])
                entry[0] += 1
                entry[1] += muls
                entry[2] += adds
                if m * n * itemsize > direct_max:
                    direct_max = m * n * itemsize
        elif step[0] == FS_BATCH:
            kept = tuple(g for g in step[1] if groups[g][0] > 1)
            if kept:
                close_ew2()
                steps2.append((FS_BATCH, kept))
        else:
            close_ew2()
            steps2.append(step)
    close_ew2()

    # -- layout: direct scratch first, then pack buffers by liveness --- #
    # A batched group's scratch is live from its first pack to its
    # batch, and selective flushing makes those intervals overlap, so
    # offsets come from a first-fit allocator replaying the steps.  The
    # direct-product scratch is transient within a single OP_DIRECT and
    # gets one permanent slot sized for the largest product.
    pack_base = _align_up(plan.arena_bytes)
    direct_off = pack_base if direct_max else None
    alloc = _ScratchAlloc(pack_base + _align_up(direct_max))
    offsets: dict = {}
    final_groups: List[Optional[tuple]] = [None] * len(groups)
    for step in steps2:
        if step[0] == FS_EW:
            for op in step[1]:
                if op[0] == OP_PACK and op[2] == 0:
                    gidx = op[1]
                    d, m, k, n = groups[gidx][:4]
                    offsets[gidx] = (
                        alloc.alloc(d * m * k * itemsize),
                        alloc.alloc(d * k * n * itemsize),
                        alloc.alloc(d * m * n * itemsize),
                    )
        elif step[0] == FS_BATCH:
            for gidx in step[1]:
                d, m, k, n, al, be, c_idx = groups[gidx]
                a_off, b_off, p_off = offsets.pop(gidx)
                muls, adds = gemm_flops(m, k, n)
                final_groups[gidx] = (
                    d, m, k, n, al, be, tuple(c_idx),
                    a_off, b_off, p_off, muls * d, adds * d,
                )
                alloc.release(a_off, d * m * k * itemsize)
                alloc.release(b_off, d * k * n * itemsize)
                alloc.release(p_off, d * m * n * itemsize)
    for gidx, g in enumerate(groups):
        if g[0] == 1:
            d, m, k, n, al, be, c_idx = g
            muls, adds = gemm_flops(m, k, n)
            final_groups[gidx] = (
                d, m, k, n, al, be, tuple(c_idx),
                None, None, None, muls, adds,
            )

    pack_bytes = alloc.peak - pack_base
    return FusedProgram(
        tuple(steps2), tuple(final_groups), plan.dtype,
        pack_base + pack_bytes, pack_base, pack_bytes, direct_off,
    )


# ---------------------------------------------------------------------- #
# fused replay
# ---------------------------------------------------------------------- #
def _bind_group(g: tuple, buf, dtype) -> tuple:
    """C-ordered (d, m, k)/(d, k, n)/(d, m, n) stacks over the arena."""
    d, m, k, n = g[0], g[1], g[2], g[3]
    a_off, b_off, p_off = g[7], g[8], g[9]
    item = dtype.itemsize
    pa = buf[a_off:a_off + d * m * k * item].view(dtype).reshape(
        (d, m, k))
    pb = buf[b_off:b_off + d * k * n * item].view(dtype).reshape(
        (d, k, n))
    pp = buf[p_off:p_off + d * m * n * item].view(dtype).reshape(
        (d, m, n))
    return pa, pb, pp


def run_fused(fp: FusedProgram, v: List[Any], st: tuple, ctx,
              buf) -> None:
    """Replay a fused program over the resolved region table ``v``.

    ``st`` is the executor's scalar table ``(alpha, -alpha, beta,
    -beta)``; ``buf`` the arena buffer (sized to ``fp.arena_bytes`` so
    the pack scratch exists past the base plan's temporaries).  Only
    called for plain numeric contexts (no trace/dry/machine) — the
    aggregate charges below then equal the interpreted path's exactly.
    """
    groups = fp.groups
    dtype = fp.dtype
    cache = fp._bind_cache
    entry = cache.get(id(buf))
    if entry is None or entry[0] is not buf:
        if len(cache) >= 64:
            cache.clear()
        entry = (buf, {})
        cache[id(buf)] = entry
    bound = entry[1]

    for step in fp.steps:
        code = step[0]
        if code == FS_EW:
            for op in step[1]:
                oc = op[0]
                if oc == OP_MADD:
                    _, xi, yi, oi, al = op
                    out = v[oi]
                    np.add(v[xi], v[yi], out=out)
                    al = st[al] if al.__class__ is int else al
                    if al != 1.0:
                        out *= al
                elif oc == OP_MSUB:
                    _, xi, yi, oi, al = op
                    out = v[oi]
                    np.subtract(v[xi], v[yi], out=out)
                    al = st[al] if al.__class__ is int else al
                    if al != 1.0:
                        out *= al
                elif oc == OP_ACCUM:
                    v[op[2]] += v[op[1]]
                elif oc == OP_AXPBY:
                    _, al, xi, be, yi = op
                    al = st[al] if al.__class__ is int else al
                    be = st[be] if be.__class__ is int else be
                    y = v[yi]
                    if be == 0.0:
                        if al == 0.0:
                            y[...] = 0.0
                        elif al == 1.0:
                            y[...] = v[xi]
                        else:
                            np.multiply(v[xi], al, out=y)
                    else:
                        if be != 1.0:
                            y *= be
                        if al == 1.0:
                            y += v[xi]
                        elif al != 0.0:
                            y += al * v[xi]
                elif oc == OP_PACK:
                    _, gidx, slot, ai, bi = op
                    trip = bound.get(gidx)
                    if trip is None:
                        trip = bound[gidx] = _bind_group(
                            groups[gidx], buf, dtype
                        )
                    trip[0][slot] = v[ai]
                    trip[1][slot] = v[bi]
                else:  # OP_DIRECT
                    _, ai, bi, ci, al, be, safe = op
                    al = st[al] if al.__class__ is int else al
                    be = st[be] if be.__class__ is int else be
                    cv = v[ci]
                    if be == 0.0 and safe:
                        np.matmul(v[ai], v[bi], out=cv)
                        if al != 1.0:
                            cv *= al
                    else:
                        key = cv.shape
                        s = bound.get(key)
                        if s is None:
                            sm, sn = key
                            nb_ = sm * sn * dtype.itemsize
                            off = fp.direct_off
                            s = bound[key] = (
                                buf[off:off + nb_].view(dtype)
                                .reshape(key)
                            )
                        np.matmul(v[ai], v[bi], out=s)
                        if al != 1.0:
                            s *= al
                        if be == 0.0:
                            cv[...] = s
                        else:
                            if be != 1.0:
                                cv *= be
                            cv += s
            for name, calls, muls, adds in step[2]:
                ctx.charge_many(name, calls, muls=muls, adds=adds)
        elif code == FS_BATCH:
            for gidx in step[1]:
                g = groups[gidx]
                d = g[0]
                al, be = g[4], g[5]
                c_idx = g[6]
                pa, pb, pp = bound[gidx]
                np.matmul(pa, pb, out=pp)
                al = st[al] if al.__class__ is int else al
                be = st[be] if be.__class__ is int else be
                # scatter with dgemm's scalar arithmetic order
                if al != 1.0:
                    pp *= al
                if be == 0.0:
                    for i in range(d):
                        v[c_idx[i]][...] = pp[i]
                elif be == 1.0:
                    for i in range(d):
                        v[c_idx[i]] += pp[i]
                else:
                    for i in range(d):
                        cv = v[c_idx[i]]
                        cv *= be
                        cv += pp[i]
                ctx.charge_many("dgemm", d, muls=g[10], adds=g[11])
        else:  # FS_FIXUP
            op = step[1]
            _, ai, bi, ci, al, be, side, divisors = op
            fix = apply_fixups if side == "tail" else apply_fixups_head
            fix(v[ai], v[bi], v[ci],
                st[al] if al.__class__ is int else al,
                st[be] if be.__class__ is int else be,
                ctx=ctx, divisors=divisors)
