"""Blocked LU factorization with partial pivoting, GEMM-pluggable.

Right-looking blocked algorithm (the LAPACK ``getrf`` shape):

1. factor the current panel ``A[j:, j:j+nb]`` unblocked with partial
   pivoting;
2. apply the panel's row swaps across the whole matrix;
3. triangular-solve the block row: ``U12 <- L11^-1 A12``;
4. rank-``nb`` trailing update ``A22 <- A22 - L21 @ U12`` — **the GEMM**,
   here a multiply-accumulate call (``alpha = -1, beta = 1``) through the
   injected callable, which is precisely the operation DGEFMM's
   STRASSEN2 schedule was designed to support recursively.

For a square order-n matrix the trailing updates account for
``~ 2n^3/3`` of the ``2n^3/3 + O(n^2 nb)`` total flops, so the GEMM swap
dominates end-to-end time for large n.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from repro.blas.level3 import dgemm as _blas_dgemm
from repro.errors import DimensionError

__all__ = ["getrf", "lu_solve", "solve", "lu_reconstruct"]

GemmFn = Callable[[np.ndarray, np.ndarray, np.ndarray, float, float], None]


def _default_gemm(a, b, c, alpha=1.0, beta=0.0) -> None:
    _blas_dgemm(a, b, c, alpha, beta)


def _getrf_unblocked(a: np.ndarray, piv: np.ndarray, offset: int) -> None:
    """Unblocked partial-pivoting LU of the panel ``a`` (in place).

    ``piv[offset + j]`` records the absolute row swapped into position
    ``offset + j``.  Raises on exact singularity.
    """
    m, n = a.shape
    for j in range(min(m, n)):
        p = j + int(np.argmax(np.abs(a[j:, j])))
        piv[offset + j] = offset + p
        if a[p, j] == 0.0:
            raise DimensionError(
                f"getrf: matrix is singular at column {offset + j}"
            )
        if p != j:
            a[[j, p], :] = a[[p, j], :]
        a[j + 1:, j] /= a[j, j]
        if j + 1 < n:
            a[j + 1:, j + 1:] -= np.outer(a[j + 1:, j], a[j, j + 1:])


def _trsm_lower_unit(l11: np.ndarray, b: np.ndarray) -> None:
    """``B <- L11^-1 B`` for unit lower-triangular L11 (in place).

    Forward substitution, vectorized across B's columns; the loop runs
    only over the panel width (<= the block size).
    """
    nb = l11.shape[0]
    for i in range(1, nb):
        b[i, :] -= l11[i, :i] @ b[:i, :]


def getrf(
    a: np.ndarray,
    gemm: Optional[GemmFn] = None,
    *,
    block: int = 64,
) -> Tuple[np.ndarray, np.ndarray]:
    """LU factorization with partial pivoting: ``P A = L U``.

    Parameters
    ----------
    a:
        m-by-n matrix (not modified; the factorization works on a
        Fortran-ordered copy).
    gemm:
        Multiply-accumulate callable for the trailing updates (default:
        the substrate DGEMM).  Pass a DGEFMM wrapper to Strassen-ize the
        factorization, as Bailey et al. [3] did.
    block:
        Panel width nb.

    Returns
    -------
    (lu, piv):
        ``lu`` holds L's strict lower triangle (unit diagonal implicit)
        and U's upper triangle; ``piv[j]`` is the row swapped into j
        (LAPACK ipiv convention, 0-based).
    """
    gemm = gemm if gemm is not None else _default_gemm
    lu = np.array(a, dtype=np.float64, order="F", copy=True)
    m, n = lu.shape
    if block < 1:
        raise DimensionError(f"getrf: block={block} must be >= 1")
    piv = np.arange(min(m, n))

    for j in range(0, min(m, n), block):
        nb = min(block, min(m, n) - j)
        # 1. panel factorization
        _getrf_unblocked(lu[j:, j:j + nb], piv, j)
        # 2. apply the panel's swaps to the rest of the matrix
        for jj in range(j, j + nb):
            p = piv[jj]
            if p != jj:
                lu[[jj, p], :j] = lu[[p, jj], :j]
                lu[[jj, p], j + nb:] = lu[[p, jj], j + nb:]
        if j + nb < n:
            # 3. block row of U
            _trsm_lower_unit(lu[j:j + nb, j:j + nb], lu[j:j + nb, j + nb:])
            # 4. trailing update: A22 <- A22 - L21 @ U12  (THE gemm)
            if j + nb < m:
                gemm(
                    lu[j + nb:, j:j + nb],
                    lu[j:j + nb, j + nb:],
                    lu[j + nb:, j + nb:],
                    -1.0,
                    1.0,
                )
    return lu, piv


def lu_solve(
    lu: np.ndarray, piv: np.ndarray, b: np.ndarray
) -> np.ndarray:
    """Solve ``A x = b`` from a :func:`getrf` factorization.

    ``b`` may be a vector or a matrix of right-hand sides; a new array
    is returned.
    """
    n = lu.shape[0]
    if lu.shape[0] != lu.shape[1]:
        raise DimensionError("lu_solve: factorization must be square")
    x = np.array(b, dtype=np.float64, copy=True)
    vec = x.ndim == 1
    if vec:
        x = x[:, None]
    if x.shape[0] != n:
        raise DimensionError(
            f"lu_solve: b has {x.shape[0]} rows, expected {n}"
        )
    # apply row swaps in factorization order
    for j in range(n):
        p = piv[j]
        if p != j:
            x[[j, p], :] = x[[p, j], :]
    # forward substitution (unit lower)
    for i in range(1, n):
        x[i, :] -= lu[i, :i] @ x[:i, :]
    # back substitution
    for i in range(n - 1, -1, -1):
        if i + 1 < n:
            x[i, :] -= lu[i, i + 1:] @ x[i + 1:, :]
        x[i, :] /= lu[i, i]
    return x[:, 0] if vec else x


def solve(
    a: np.ndarray,
    b: np.ndarray,
    gemm: Optional[GemmFn] = None,
    *,
    block: int = 64,
) -> np.ndarray:
    """Solve ``A x = b`` by blocked LU (convenience wrapper)."""
    lu, piv = getrf(a, gemm, block=block)
    return lu_solve(lu, piv, b)


def lu_reconstruct(
    lu: np.ndarray, piv: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(P, L, U) as dense matrices, for testing: ``P @ A = L @ U``."""
    n = lu.shape[0]
    l = np.tril(lu, -1) + np.eye(n)
    u = np.triu(lu)
    p = np.eye(n)
    for j in range(n):
        pj = piv[j]
        if pj != j:
            p[[j, pj], :] = p[[pj, j], :]
    return p, l, u
