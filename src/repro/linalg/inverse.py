"""Recursive matrix inversion by fast multiplication (Strassen 1969).

Strassen's paper [19] is titled *Gaussian elimination is not optimal*:
its point was that O(m^lg7) multiplication yields O(m^lg7) inversion via
the 2x2 block formula.  With

    A = [[A11, A12],     S = A22 - A21 A11^-1 A12   (Schur complement)
         [A21, A22]]

the inverse is

    A^-1 = [[A11^-1 + W S^-1 V,  -W S^-1],
            [-S^-1 V,             S^-1  ]],
    where V = A21 A11^-1 and W = A11^-1 A12,

requiring two recursive half-size inversions and six multiplications —
all routed through DGEFMM here, so the whole inversion inherits the
Strassen exponent.

No pivoting is performed: the recursion requires every leading principal
block to be well-conditioned, which holds for symmetric positive
definite and diagonally dominant matrices (the classical setting; use
:mod:`repro.linalg.lu` for general systems).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.blas.level3 import dgemm as _blas_dgemm
from repro.errors import DimensionError

__all__ = ["strassen_inverse"]

GemmFn = Callable[[np.ndarray, np.ndarray, np.ndarray, float, float], None]


def _default_gemm(a, b, c, alpha=1.0, beta=0.0) -> None:
    _blas_dgemm(a, b, c, alpha, beta)


def strassen_inverse(
    a: np.ndarray,
    gemm: Optional[GemmFn] = None,
    *,
    base: int = 32,
) -> np.ndarray:
    """Invert ``a`` by Strassen's recursive block formula.

    ``gemm(A, B, C, alpha, beta)`` performs the six block products per
    level (default: the substrate DGEMM; pass a DGEFMM wrapper for the
    fast exponent).  ``base`` is the order at which recursion bottoms
    out into a direct (LU-based, pivoted) inverse.

    Raises :class:`~repro.errors.DimensionError` for non-square input
    and ``numpy.linalg.LinAlgError`` if a leading block is singular.
    """
    a = np.asarray(a, dtype=np.float64)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise DimensionError(
            f"strassen_inverse: need a square matrix, got {a.shape}"
        )
    if base < 1:
        raise DimensionError(f"strassen_inverse: base={base} must be >= 1")
    g = gemm if gemm is not None else _default_gemm
    return _inv(np.asfortranarray(a), g, base)


def _inv(a: np.ndarray, gemm: GemmFn, base: int) -> np.ndarray:
    n = a.shape[0]
    if n <= base or n < 2:
        # small dense base case (pivoted, stable)
        return np.asfortranarray(np.linalg.inv(a))
    h = n // 2
    a11, a12 = a[:h, :h], a[:h, h:]
    a21, a22 = a[h:, :h], a[h:, h:]

    r1 = _inv(a11, gemm, base)                       # A11^-1
    v = np.empty((n - h, h), order="F")
    gemm(a21, r1, v, 1.0, 0.0)                       # V = A21 A11^-1
    w = np.empty((h, n - h), order="F")
    gemm(r1, a12, w, 1.0, 0.0)                       # W = A11^-1 A12
    s = np.array(a22, order="F", copy=True)
    gemm(v, a12, s, -1.0, 1.0)                       # S = A22 - V A12
    r2 = _inv(s, gemm, base)                         # S^-1

    out = np.empty((n, n), order="F")
    # lower-right and the coupled blocks
    out[h:, h:] = r2
    gemm(r2, v, out[h:, :h], -1.0, 0.0)              # -S^-1 V
    gemm(w, r2, out[:h, h:], -1.0, 0.0)              # -W S^-1
    out[:h, :h] = r1
    gemm(w, out[h:, :h], out[:h, :h], -1.0, 1.0)     # A11^-1 + W S^-1 V
    return out
