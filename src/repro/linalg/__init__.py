"""Dense linear algebra built on the pluggable GEMM.

The paper's motivation chain — BLAS 3 underlies LAPACK, so a faster GEMM
accelerates "a wide variety of numerical algorithms" — and its reference
[3] (Bailey, Lee & Simon, *Using Strassen's Algorithm to Accelerate the
Solution of Linear Systems*) both point at one canonical consumer: dense
LU factorization, whose blocked form spends almost all its time in the
trailing-matrix GEMM update.

:mod:`repro.linalg.lu` implements right-looking blocked LU with partial
pivoting where the update is an injected multiply-accumulate callable,
so DGEMM and DGEFMM swap exactly as in the eigensolver study.
"""

from repro.linalg.inverse import strassen_inverse
from repro.linalg.lu import getrf, lu_reconstruct, lu_solve, solve
from repro.linalg.lu_recursive import getrf_recursive

__all__ = [
    "getrf",
    "getrf_recursive",
    "lu_solve",
    "solve",
    "lu_reconstruct",
    "strassen_inverse",
]
