"""Recursive (divide-and-conquer) LU — the Strassen-friendly shape.

Panel-blocked LU (:mod:`repro.linalg.lu`) issues rank-``nb`` updates:
GEMMs with inner dimension k = nb, too thin for Strassen to bite (the
criterion-(11) lesson of Section 2, live in an application).  Toledo's
recursive formulation fixes the shape: split the columns in half,

1. factor the left half recursively,
2. apply its row swaps to the right half,
3. ``U12 <- L11^-1 A12``  (unit-lower triangular solve),
4. ``A22 <- A22 - L21 @ U12``  — a GEMM with inner dimension n/2,
5. factor the updated bottom-right recursively and apply its swaps back
   to the left half.

The update products are now large and square-ish, exactly where DGEFMM
recurses — the tests verify the recursive form both matches the blocked
factorization bit-for-bit (same pivots, same factors) and routes
measurably more multiply work through Strassen under the same cutoff.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import DimensionError
from repro.linalg.lu import (
    GemmFn,
    _default_gemm,
    _getrf_unblocked,
    _trsm_lower_unit,
)

__all__ = ["getrf_recursive"]


def getrf_recursive(
    a: np.ndarray,
    gemm: Optional[GemmFn] = None,
    *,
    base: int = 32,
) -> Tuple[np.ndarray, np.ndarray]:
    """Recursive LU with partial pivoting: ``P A = L U``.

    Same contract as :func:`repro.linalg.lu.getrf` (and produces the
    same factors and pivots); ``base`` is the column count at which the
    recursion bottoms out into the unblocked panel code.
    """
    g = gemm if gemm is not None else _default_gemm
    lu = np.array(a, dtype=np.float64, order="F", copy=True)
    m, n = lu.shape
    if base < 1:
        raise DimensionError(f"getrf_recursive: base={base} must be >= 1")
    piv = np.arange(min(m, n))
    _rec(lu, piv, 0, g, base)
    return lu, piv


def _swap_rows(block: np.ndarray, piv: np.ndarray, lo: int, hi: int,
               offset: int) -> None:
    """Apply pivots piv[lo:hi] (absolute row indices, relative to the
    submatrix that starts at absolute row ``offset``) to ``block``."""
    for j in range(lo, hi):
        p = piv[j] - offset
        jj = j - offset
        if p != jj:
            block[[jj, p], :] = block[[p, jj], :]


def _rec(a: np.ndarray, piv: np.ndarray, offset: int, gemm: GemmFn,
         base: int) -> None:
    """Factor ``a`` in place; pivot rows recorded at piv[offset:...]
    as absolute indices (offset + local)."""
    m, n = a.shape
    r = min(m, n)
    if r == 0:
        return
    if n <= base:
        _getrf_unblocked(a, piv, offset)
        return
    n1 = min(r, n) // 2
    a1 = a[:, :n1]
    a2 = a[:, n1:]

    # 1. left half
    _rec(a1, piv, offset, gemm, base)
    # 2. its swaps onto the right half
    _swap_rows(a2, piv, offset, offset + n1, offset)
    # 3. block row of U
    _trsm_lower_unit(a[:n1, :n1], a2[:n1, :])
    # 4. the big update (inner dimension n1)
    if m > n1:
        gemm(a[n1:, :n1], a2[:n1, :], a2[n1:, :], -1.0, 1.0)
        # 5. bottom-right recursively; then its swaps back onto the left
        _rec(a[n1:, n1:], piv, offset + n1, gemm, base)
        _swap_rows(a[n1:, :n1], piv, offset + n1, offset + min(m, n),
                   offset + n1)
