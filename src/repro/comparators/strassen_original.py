"""Strassen's original 1969 recursion (7 multiplies, 18 additions).

This is the algorithm the CRAY SGEMMS comparator and the eq.(4)-vs-eq.(5)
op-count comparison are about.  The level schedule is deliberately
*straightforward* (paper: "a straightforward scheme"): two operand
temporaries hold the block sums and all seven products M1..M7 are
materialized before the output stage — nine quadrant temporaries per
level, substantially more memory than the Winograd schedules of
:mod:`repro.core`, which is exactly the memory story Table 1 tells.

Even dimensions are required at every level; callers wrap the recursion
with static padding (:func:`repro.core.padding.run_statically_padded`) as
Strassen's paper originally suggested.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.blas.addsub import accum, axpby, madd, msub
from repro.blas.level3 import dgemm
from repro.context import ExecutionContext, RecursionEvent, ensure_context
from repro.core.cutoff import CutoffCriterion, TheoreticalCutoff
from repro.core.workspace import Workspace
from repro.errors import DimensionError

__all__ = ["strassen_original", "strassen_original_level"]


def strassen_original(
    a: Any,
    b: Any,
    c: Any,
    alpha: float = 1.0,
    *,
    cutoff: Optional[CutoffCriterion] = None,
    ctx: Optional[ExecutionContext] = None,
    workspace: Optional[Workspace] = None,
    depth: int = 0,
) -> Any:
    """``C <- alpha * A * B`` by Strassen's original recursion (beta = 0).

    Every dimension met during recursion must be even (recursion stops
    before a split would create odd halves only if the cutoff says so —
    callers are responsible for padding, as the original algorithm
    assumes).  Raises :class:`~repro.errors.DimensionError` on an odd
    dimension at a recursion point.
    """
    ctx = ensure_context(ctx)
    ws = workspace if workspace is not None else Workspace(dry=ctx.dry)
    crit = cutoff if cutoff is not None else TheoreticalCutoff()

    m, k = a.shape
    n = b.shape[1]
    if m == 0 or n == 0:
        return c
    if crit.stop(m, k, n) or min(m, k, n) < 2:
        ctx.record(RecursionEvent("base", m, k, n, depth))
        dgemm(a, b, c, alpha, 0.0, ctx=ctx)
        return c
    if m % 2 or k % 2 or n % 2:
        raise DimensionError(
            f"strassen_original: odd dimension at recursion point "
            f"({m}, {k}, {n}); pad the inputs (static padding)"
        )
    ctx.record(RecursionEvent("recurse", m, k, n, depth, scheme="original"))
    strassen_original_level(
        a, b, c, alpha, ctx=ctx, ws=ws, crit=crit, depth=depth
    )
    return c


def strassen_original_level(
    a: Any,
    b: Any,
    c: Any,
    alpha: float,
    *,
    ctx: ExecutionContext,
    ws: Workspace,
    crit: CutoffCriterion,
    depth: int,
) -> None:
    """One level of the original recursion (see module docstring)."""
    m, k = a.shape
    n = b.shape[1]
    hm, hk, hn = m // 2, k // 2, n // 2

    a11, a12, a21, a22 = a[:hm, :hk], a[:hm, hk:], a[hm:, :hk], a[hm:, hk:]
    b11, b12, b21, b22 = b[:hk, :hn], b[:hk, hn:], b[hk:, :hn], b[hk:, hn:]
    c11, c12, c21, c22 = c[:hm, :hn], c[:hm, hn:], c[hm:, :hn], c[hm:, hn:]

    def rec(aa: Any, bb: Any, cc: Any) -> None:
        strassen_original(
            aa, bb, cc, 1.0,
            cutoff=crit, ctx=ctx, workspace=ws, depth=depth + 1,
        )

    dt = getattr(c, "dtype", None) or "float64"
    with ws.frame():
        ta = ws.alloc(hm, hk, dt)
        tb = ws.alloc(hk, hn, dt)
        ms = [ws.alloc(hm, hn, dt) for _ in range(7)]
        m1, m2, m3, m4, m5, m6, m7 = ms

        madd(a11, a22, ta, ctx=ctx)       # M1 = (A11+A22)(B11+B22)
        madd(b11, b22, tb, ctx=ctx)
        rec(ta, tb, m1)
        madd(a21, a22, ta, ctx=ctx)       # M2 = (A21+A22) B11
        rec(ta, b11, m2)
        msub(b12, b22, tb, ctx=ctx)       # M3 = A11 (B12-B22)
        rec(a11, tb, m3)
        msub(b21, b11, tb, ctx=ctx)       # M4 = A22 (B21-B11)
        rec(a22, tb, m4)
        madd(a11, a12, ta, ctx=ctx)       # M5 = (A11+A12) B22
        rec(ta, b22, m5)
        msub(a21, a11, ta, ctx=ctx)       # M6 = (A21-A11)(B11+B12)
        madd(b11, b12, tb, ctx=ctx)
        rec(ta, tb, m6)
        msub(a12, a22, ta, ctx=ctx)       # M7 = (A12-A22)(B21+B22)
        madd(b21, b22, tb, ctx=ctx)
        rec(ta, tb, m7)

        madd(m1, m4, c11, ctx=ctx)        # C11 = M1+M4-M5+M7
        axpby(-1.0, m5, 1.0, c11, ctx=ctx)
        accum(m7, c11, ctx=ctx)
        madd(m3, m5, c12, ctx=ctx)        # C12 = M3+M5
        madd(m2, m4, c21, ctx=ctx)        # C21 = M2+M4
        msub(m1, m2, c22, ctx=ctx)        # C22 = M1-M2+M3+M6
        accum(m3, c22, ctx=ctx)
        accum(m6, c22, ctx=ctx)

    if alpha != 1.0:
        # fold alpha once at this level's exit (the original algorithm
        # has no alpha; SGEMMS-style callers scale the product)
        axpby(0.0, c, alpha, c, ctx=ctx)
