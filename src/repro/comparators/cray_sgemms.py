"""CRAY-style SGEMMS — scilib's Strassen routine, as the paper uses it.

The observable properties the paper's Figure 4 and Table 1 rest on:

- it implements **Strassen's original** 1969 recursion (not the Winograd
  variant) following Bailey's CRAY-2 work [2, 3];
- it uses a straightforward temporary scheme with a large footprint —
  the documented ``7 m^2 / 3`` of Table 1, versus DGEFMM's ``2m^2/3``/
  ``m^2`` (a 57+ percent reduction);
- it handles the general alpha/beta case (Figure 4 reports both).

Our realization: the original-Strassen recursion of
:mod:`repro.comparators.strassen_original` (two operand temporaries plus
all seven products per level) under static padding, with the general case
handled through a product buffer and an update pass.  The measured peak
of this straightforward scheme is about ``3 m^2`` — the same "several
times DGEFMM" memory story as the documented 7/3 coefficient; the Table 1
benchmark reports our measured value side by side with the paper's
documented one.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.blas.addsub import axpby
from repro.blas.validate import opshape, require_matrix, require_writable
from repro.comparators.strassen_original import strassen_original
from repro.context import ExecutionContext, ensure_context
from repro.core.cutoff import CutoffCriterion, SimpleCutoff
from repro.core.padding import run_statically_padded
from repro.core.workspace import Workspace
from repro.errors import DimensionError

__all__ = ["cray_sgemms", "CRAY_DEFAULT_CUTOFF"]

CRAY_DEFAULT_CUTOFF = SimpleCutoff(tau=128)


def _planned_depth(m: int, k: int, n: int, crit: CutoffCriterion) -> int:
    depth = 0
    while not crit.stop(m, k, n) and min(m, k, n) >= 2 and depth < 48:
        m, k, n = (m + 1) // 2, (k + 1) // 2, (n + 1) // 2
        depth += 1
    return depth


def cray_sgemms(
    a: Any,
    b: Any,
    c: Any,
    alpha: float = 1.0,
    beta: float = 0.0,
    transa: bool = False,
    transb: bool = False,
    *,
    cutoff: Optional[CutoffCriterion] = None,
    ctx: Optional[ExecutionContext] = None,
    workspace: Optional[Workspace] = None,
) -> Any:
    """SGEMMS-style ``C <- alpha*op(A)*op(B) + beta*C`` (in place)."""
    ctx = ensure_context(ctx)
    require_matrix("cray_sgemms", "a", a)
    require_matrix("cray_sgemms", "b", b)
    require_matrix("cray_sgemms", "c", c)
    require_writable("cray_sgemms", "c", c)
    m, k = opshape(a, transa)
    kb, n = opshape(b, transb)
    if kb != k:
        raise DimensionError(
            f"cray_sgemms: op(A) is {m}x{k} but op(B) is {kb}x{n}"
        )
    if tuple(c.shape) != (m, n):
        raise DimensionError(
            f"cray_sgemms: C has shape {tuple(c.shape)}, expected {(m, n)}"
        )
    crit = cutoff if cutoff is not None else CRAY_DEFAULT_CUTOFF
    ws = workspace if workspace is not None else Workspace(dry=ctx.dry)
    opa = a.T if transa else a
    opb = b.T if transb else b

    if m == 0 or n == 0:
        return c
    if k == 0 or alpha == 0.0:
        axpby(0.0, c, beta, c, ctx=ctx)
        return c

    depth = _planned_depth(m, k, n, crit)

    def multiply_even(aa: Any, bb: Any, cc: Any, al: float, be: float) -> None:
        strassen_original(aa, bb, cc, al, cutoff=crit, ctx=ctx, workspace=ws)

    if beta == 0.0:
        run_statically_padded(
            opa, opb, c, alpha, 0.0, depth, multiply_even, ws, ctx=ctx
        )
    else:
        with ws.frame():
            t = ws.alloc(m, n, getattr(c, "dtype", None) or "float64")
            run_statically_padded(
                opa, opb, t, alpha, 0.0, depth, multiply_even, ws, ctx=ctx
            )
            axpby(1.0, t, beta, c, ctx=ctx)

    ctx.stats_max("workspace_peak_bytes", ws.peak_bytes)
    return c
