"""ESSL-style DGEMMS — IBM's Strassen routine, as the paper describes it.

The paper's Section 4.1 records the externally observable contract of
IBM ESSL's DGEMMS (Version 2.2), which is what Figures 1 (memory) and 3
(performance ratio) rely on:

- it performs **only the multiplication** ``C = op(A) * op(B)``; "the
  update of C and scaling by alpha and beta must be done separately by
  the calling routine whenever alpha != 1.0 or beta != 0.0";
- it implements the Winograd variant with an early cutoff;
- its documented workspace requirement is about ``1.40 m^2`` (Table 1),
  between DGEFMM's ``2m^2/3`` and CRAY SGEMMS' ``7m^2/3``.

Internals are closed-source; we realize the same contract with the
Winograd C-reuse schedule under **static padding** (pad once so the whole
planned recursion sees even dimensions — a plausible vendor strategy and
usefully different from both DGEFMM's peeling and DGEMMW's dynamic
padding).  :func:`essl_dgemms_general` reproduces the paper's timing
wrapper: the extra caller loop for alpha/beta around the multiply-only
routine, which is exactly how the paper timed the general case on ESSL.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.blas.addsub import axpby
from repro.blas.level3 import dgemm
from repro.blas.validate import opshape, require_matrix, require_writable
from repro.context import ExecutionContext, RecursionEvent, ensure_context
from repro.core.cutoff import CutoffCriterion, SimpleCutoff
from repro.core.padding import run_statically_padded
from repro.core.strassen1 import strassen1_beta0_level
from repro.core.workspace import Workspace
from repro.errors import DimensionError

__all__ = ["essl_dgemms", "essl_dgemms_general", "ESSL_DEFAULT_CUTOFF"]

ESSL_DEFAULT_CUTOFF = SimpleCutoff(tau=128)


def _planned_depth(m: int, k: int, n: int, crit: CutoffCriterion) -> int:
    """Recursion depth static padding must provision for.

    Halve (rounding up, as padding would) until the criterion stops.
    """
    depth = 0
    while (
        not crit.stop(m, k, n)
        and min(m, k, n) >= 2
        and depth < 48
    ):
        m, k, n = (m + 1) // 2, (k + 1) // 2, (n + 1) // 2
        depth += 1
    return depth


def essl_dgemms(
    a: Any,
    b: Any,
    c: Any,
    transa: bool = False,
    transb: bool = False,
    *,
    cutoff: Optional[CutoffCriterion] = None,
    ctx: Optional[ExecutionContext] = None,
    workspace: Optional[Workspace] = None,
) -> Any:
    """Multiply-only Strassen: ``C <- op(A) * op(B)`` (no alpha, no beta)."""
    ctx = ensure_context(ctx)
    require_matrix("essl_dgemms", "a", a)
    require_matrix("essl_dgemms", "b", b)
    require_matrix("essl_dgemms", "c", c)
    require_writable("essl_dgemms", "c", c)
    m, k = opshape(a, transa)
    kb, n = opshape(b, transb)
    if kb != k:
        raise DimensionError(
            f"essl_dgemms: op(A) is {m}x{k} but op(B) is {kb}x{n}"
        )
    if tuple(c.shape) != (m, n):
        raise DimensionError(
            f"essl_dgemms: C has shape {tuple(c.shape)}, expected {(m, n)}"
        )
    crit = cutoff if cutoff is not None else ESSL_DEFAULT_CUTOFF
    ws = workspace if workspace is not None else Workspace(dry=ctx.dry)
    opa = a.T if transa else a
    opb = b.T if transb else b

    if m == 0 or n == 0:
        return c
    if k == 0:
        axpby(0.0, c, 0.0, c, ctx=ctx)
        return c

    def multiply_even(aa: Any, bb: Any, cc: Any, al: float, be: float) -> None:
        # operands here have dims divisible by 2^depth: pure even recursion
        _rec_even(aa, bb, cc, al, 0, crit, ctx, ws)

    depth = _planned_depth(m, k, n, crit)
    run_statically_padded(
        opa, opb, c, 1.0, 0.0, depth, multiply_even, ws, ctx=ctx
    )
    ctx.stats_max("workspace_peak_bytes", ws.peak_bytes)
    return c


def _rec_even(
    a: Any,
    b: Any,
    c: Any,
    alpha: float,
    depth: int,
    crit: CutoffCriterion,
    ctx: ExecutionContext,
    ws: Workspace,
) -> None:
    """Winograd recursion on statically padded (all-even) operands."""
    m, k = a.shape
    n = b.shape[1]
    if crit.stop(m, k, n) or min(m, k, n) < 2 or m % 2 or k % 2 or n % 2:
        ctx.record(RecursionEvent("base", m, k, n, depth))
        dgemm(a, b, c, alpha, 0.0, ctx=ctx)
        return
    ctx.record(RecursionEvent("recurse", m, k, n, depth, scheme="s1b0"))

    def recurse(aa: Any, bb: Any, cc: Any, al: float, be: float) -> None:
        _rec_even(aa, bb, cc, al, depth + 1, crit, ctx, ws)

    strassen1_beta0_level(a, b, c, alpha, ctx=ctx, ws=ws, recurse=recurse)


def essl_dgemms_general(
    a: Any,
    b: Any,
    c: Any,
    alpha: float = 1.0,
    beta: float = 0.0,
    transa: bool = False,
    transb: bool = False,
    *,
    cutoff: Optional[CutoffCriterion] = None,
    ctx: Optional[ExecutionContext] = None,
    workspace: Optional[Workspace] = None,
) -> Any:
    """The paper's ESSL timing wrapper: DGEMMS plus a caller update loop.

    ``C <- alpha * (op(A) op(B)) + beta * C`` computed as the multiply-only
    call into an m-by-n buffer followed by an explicit scale-and-update —
    the extra work (and the extra m*n workspace) that makes ESSL's general
    case relatively slower, as Figure 3's discussion notes.
    """
    ctx = ensure_context(ctx)
    ws = workspace if workspace is not None else Workspace(dry=ctx.dry)
    if alpha == 1.0 and beta == 0.0:
        return essl_dgemms(
            a, b, c, transa, transb, cutoff=cutoff, ctx=ctx, workspace=ws
        )
    m, k = opshape(a, transa)
    _, n = opshape(b, transb)
    with ws.frame():
        t = ws.alloc(m, n, getattr(c, "dtype", None) or "float64")
        essl_dgemms(a, b, t, transa, transb, cutoff=cutoff, ctx=ctx, workspace=ws)
        axpby(alpha, t, beta, c, ctx=ctx)
    ctx.stats_max("workspace_peak_bytes", ws.peak_bytes)
    return c
