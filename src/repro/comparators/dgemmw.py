"""DGEMMW — re-implementation of Douglas et al.'s GEMMW [8].

GEMMW is the portable public-domain Winograd-variant Strassen code the
paper benchmarks against in Figures 5 and 6.  Its published design points,
all reproduced here:

- Winograd variant with the C-quadrant-reuse schedule (the paper notes
  our STRASSEN1 "is similar to the one used in the implementation ...
  DGEMMW"), so the product path shares
  :func:`repro.core.strassen1.strassen1_beta0_level`;
- **dynamic padding** for odd dimensions: each recursion level that meets
  an odd dimension pads the operands by one zero row/column, computes the
  even product into a padded buffer, and crops — no peeling, no fix-ups;
- the **simple cutoff criterion** (paper eq. 11): stop when any dimension
  is at most tau — which forgoes the beneficial extra recursion on
  long-thin problems that DGEFMM's hybrid criterion captures;
- the general ``beta != 0`` case via an m-by-n product buffer followed by
  one update pass: extra memory approximately ``mn + (mk + kn)/3``
  (Section 3.2's comparison), versus DGEFMM's ``(mk + kn + mn)/3``.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.blas.addsub import axpby, mcopy
from repro.blas.level3 import dgemm
from repro.blas.validate import opshape, require_matrix, require_writable
from repro.context import ExecutionContext, RecursionEvent, ensure_context
from repro.core.cutoff import CutoffCriterion, SimpleCutoff
from repro.core.padding import dynamic_pad_operands
from repro.core.strassen1 import strassen1_beta0_level
from repro.core.workspace import Workspace
from repro.errors import DimensionError

__all__ = ["dgemmw", "DGEMMW_DEFAULT_CUTOFF"]

#: Douglas et al. used the simple per-dimension criterion; tau is a
#: machine parameter — benches set it to the machine's square crossover.
DGEMMW_DEFAULT_CUTOFF = SimpleCutoff(tau=128)


def dgemmw(
    a: Any,
    b: Any,
    c: Any,
    alpha: float = 1.0,
    beta: float = 0.0,
    transa: bool = False,
    transb: bool = False,
    *,
    cutoff: Optional[CutoffCriterion] = None,
    ctx: Optional[ExecutionContext] = None,
    workspace: Optional[Workspace] = None,
) -> Any:
    """GEMMW-style ``C <- alpha*op(A)*op(B) + beta*C`` (in place).

    See the module docstring for how this differs from
    :func:`repro.core.dgefmm.dgefmm`.
    """
    ctx = ensure_context(ctx)
    require_matrix("dgemmw", "a", a)
    require_matrix("dgemmw", "b", b)
    require_matrix("dgemmw", "c", c)
    require_writable("dgemmw", "c", c)
    m, k = opshape(a, transa)
    kb, n = opshape(b, transb)
    if kb != k:
        raise DimensionError(f"dgemmw: op(A) is {m}x{k} but op(B) is {kb}x{n}")
    if tuple(c.shape) != (m, n):
        raise DimensionError(
            f"dgemmw: C has shape {tuple(c.shape)}, expected {(m, n)}"
        )
    crit = cutoff if cutoff is not None else DGEMMW_DEFAULT_CUTOFF
    ws = workspace if workspace is not None else Workspace(dry=ctx.dry)
    opa = a.T if transa else a
    opb = b.T if transb else b

    if m == 0 or n == 0:
        return c
    if k == 0 or alpha == 0.0:
        axpby(0.0, c, beta, c, ctx=ctx)
        ctx.stats_max("workspace_peak_bytes", ws.peak_bytes)
        return c

    if beta == 0.0:
        _rec(opa, opb, c, alpha, 0, crit, ctx, ws)
    else:
        # general case: product buffer + one update pass (GEMMW's design)
        with ws.frame():
            t = ws.alloc(m, n, getattr(c, "dtype", None) or "float64")
            _rec(opa, opb, t, alpha, 0, crit, ctx, ws)
            axpby(1.0, t, beta, c, ctx=ctx)

    ctx.stats_max("workspace_peak_bytes", ws.peak_bytes)
    return c


def _rec(
    a: Any,
    b: Any,
    c: Any,
    alpha: float,
    depth: int,
    crit: CutoffCriterion,
    ctx: ExecutionContext,
    ws: Workspace,
) -> None:
    """``C <- alpha * A * B`` (overwrite) with dynamic padding."""
    m, k = a.shape
    n = b.shape[1]
    if m == 0 or n == 0:
        return
    if k == 0:
        axpby(0.0, c, 0.0, c, ctx=ctx)
        return
    if crit.stop(m, k, n) or min(m, k, n) < 2:
        ctx.record(RecursionEvent("base", m, k, n, depth))
        dgemm(a, b, c, alpha, 0.0, ctx=ctx)
        return

    def recurse(aa: Any, bb: Any, cc: Any, al: float, be: float) -> None:
        # strassen1_beta0_level only issues beta = 0 sub-products
        _rec(aa, bb, cc, al, depth + 1, crit, ctx, ws)

    if m % 2 or k % 2 or n % 2:
        ctx.record(RecursionEvent("pad", m, k, n, depth))
        with ws.frame():
            pa, pb, (pm, pk, pn) = dynamic_pad_operands(a, b, ws, ctx=ctx)
            pc = ws.alloc(pm, pn, getattr(c, "dtype", None) or "float64")
            ctx.record(
                RecursionEvent("recurse", pm, pk, pn, depth, scheme="s1b0")
            )
            strassen1_beta0_level(
                pa, pb, pc, alpha, ctx=ctx, ws=ws, recurse=recurse
            )
            mcopy(pc[:m, :n], c, ctx=ctx)
    else:
        ctx.record(RecursionEvent("recurse", m, k, n, depth, scheme="s1b0"))
        strassen1_beta0_level(a, b, c, alpha, ctx=ctx, ws=ws, recurse=recurse)
