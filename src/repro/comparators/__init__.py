"""Re-implementations of the codes the paper compares DGEFMM against.

The originals are closed-source (IBM ESSL, CRAY scilib) or unavailable
1990s distributions (GEMMW), but every property the paper's evaluation
rests on is pinned down by their published descriptions:

- :mod:`repro.comparators.dgemmw` — Douglas, Heroux, Slishman & Smith's
  GEMMW [8]: Winograd variant, **dynamic padding**, the simple cutoff
  criterion (paper eq. 11), and an m-by-n buffer for the general
  alpha/beta case.
- :mod:`repro.comparators.essl_dgemms` — IBM ESSL's DGEMMS: Winograd
  variant, **multiplication only** (``C = op(A) op(B)``; the caller must
  scale and update, as the paper's Section 4.1 timing loop does).
- :mod:`repro.comparators.cray_sgemms` — CRAY scilib's SGEMMS: Strassen's
  **original** 18-addition recursion with straightforward temporaries and
  static padding.
- :mod:`repro.comparators.strassen_original` — the shared original-1969
  recursion used by the CRAY comparator and by op-count ablations.
"""

from repro.comparators.bailey import bailey_strassen
from repro.comparators.cray_sgemms import cray_sgemms
from repro.comparators.dgemmw import dgemmw
from repro.comparators.essl_dgemms import essl_dgemms, essl_dgemms_general
from repro.comparators.strassen_original import strassen_original

__all__ = [
    "bailey_strassen",
    "dgemmw",
    "essl_dgemms",
    "essl_dgemms_general",
    "cray_sgemms",
    "strassen_original",
]
