"""Bailey's memory-lean schedule for Strassen's original algorithm.

Paper Section 3.2: "Using Strassen's original algorithm, Bailey, et al.
[3] devised a straightforward scheme that reduces the total memory
requirements to (mk + kn + mn)/3" — the benchmark DGEFMM's Winograd
schedules are measured against (the open question the paper answers is
whether *Winograd's* nested stage (4) admits a similar reduction).

This module implements that scheme: per level one A-shaped temporary TA,
one B-shaped TB and one product-shaped TP, with C's quadrants (beta = 0)
hosting the running combinations

    C11 = M1 + M4 - M5 + M7      C12 = M3 + M5
    C21 = M2 + M4                C22 = M1 - M2 + M3 + M6

as the seven products are produced in an order that lets every M be
consumed immediately.  Peak memory: (mk + kn + mn)/4 per level,
(mk + kn + mn)/3 over the recursion — m^2 for square operands, measured
exactly by the tests.  The general alpha/beta case uses a product buffer
plus an update pass, matching how [3] used the routine inside linear
solvers.

Odd dimensions are handled by static padding (Strassen's original
suggestion, consistent with the CRAY-2 lineage of [2, 3]).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.blas.addsub import accum, axpby, madd, mcopy, msub
from repro.blas.level3 import dgemm
from repro.blas.validate import opshape, require_matrix, require_writable
from repro.context import ExecutionContext, RecursionEvent, ensure_context
from repro.core.cutoff import CutoffCriterion, SimpleCutoff
from repro.core.padding import run_statically_padded
from repro.core.workspace import Workspace
from repro.errors import DimensionError

__all__ = ["bailey_strassen", "BAILEY_DEFAULT_CUTOFF"]

BAILEY_DEFAULT_CUTOFF = SimpleCutoff(tau=128)


def _planned_depth(m: int, k: int, n: int, crit: CutoffCriterion) -> int:
    depth = 0
    while not crit.stop(m, k, n) and min(m, k, n) >= 2 and depth < 48:
        m, k, n = (m + 1) // 2, (k + 1) // 2, (n + 1) // 2
        depth += 1
    return depth


def bailey_strassen(
    a: Any,
    b: Any,
    c: Any,
    alpha: float = 1.0,
    beta: float = 0.0,
    transa: bool = False,
    transb: bool = False,
    *,
    cutoff: Optional[CutoffCriterion] = None,
    ctx: Optional[ExecutionContext] = None,
    workspace: Optional[Workspace] = None,
) -> Any:
    """Bailey-scheme Strassen: ``C <- alpha*op(A)*op(B) + beta*C``."""
    ctx = ensure_context(ctx)
    require_matrix("bailey_strassen", "a", a)
    require_matrix("bailey_strassen", "b", b)
    require_matrix("bailey_strassen", "c", c)
    require_writable("bailey_strassen", "c", c)
    m, k = opshape(a, transa)
    kb, n = opshape(b, transb)
    if kb != k:
        raise DimensionError(
            f"bailey_strassen: op(A) is {m}x{k} but op(B) is {kb}x{n}"
        )
    if tuple(c.shape) != (m, n):
        raise DimensionError(
            f"bailey_strassen: C has shape {tuple(c.shape)}, "
            f"expected {(m, n)}"
        )
    crit = cutoff if cutoff is not None else BAILEY_DEFAULT_CUTOFF
    ws = workspace if workspace is not None else Workspace(dry=ctx.dry)
    opa = a.T if transa else a
    opb = b.T if transb else b

    if m == 0 or n == 0:
        return c
    if k == 0 or alpha == 0.0:
        axpby(0.0, c, beta, c, ctx=ctx)
        return c

    depth = _planned_depth(m, k, n, crit)

    def multiply_even(aa: Any, bb: Any, cc: Any, al: float, be: float) -> None:
        _rec(aa, bb, cc, al, 0, crit, ctx, ws)

    if beta == 0.0:
        run_statically_padded(
            opa, opb, c, alpha, 0.0, depth, multiply_even, ws, ctx=ctx
        )
    else:
        with ws.frame():
            t = ws.alloc(m, n, getattr(c, "dtype", None) or "float64")
            run_statically_padded(
                opa, opb, t, alpha, 0.0, depth, multiply_even, ws, ctx=ctx
            )
            axpby(1.0, t, beta, c, ctx=ctx)

    ctx.stats_max("workspace_peak_bytes", ws.peak_bytes)
    return c


def _rec(
    a: Any,
    b: Any,
    c: Any,
    alpha: float,
    depth: int,
    crit: CutoffCriterion,
    ctx: ExecutionContext,
    ws: Workspace,
) -> None:
    """``C <- alpha*A*B`` (overwrite), Bailey's three-temporary level."""
    m, k = a.shape
    n = b.shape[1]
    if crit.stop(m, k, n) or min(m, k, n) < 2 or m % 2 or k % 2 or n % 2:
        ctx.record(RecursionEvent("base", m, k, n, depth))
        dgemm(a, b, c, alpha, 0.0, ctx=ctx)
        return
    ctx.record(RecursionEvent("recurse", m, k, n, depth, scheme="bailey"))

    hm, hk, hn = m // 2, k // 2, n // 2
    dt = getattr(c, "dtype", None) or "float64"
    a11, a12, a21, a22 = a[:hm, :hk], a[:hm, hk:], a[hm:, :hk], a[hm:, hk:]
    b11, b12, b21, b22 = b[:hk, :hn], b[:hk, hn:], b[hk:, :hn], b[hk:, hn:]
    c11, c12, c21, c22 = c[:hm, :hn], c[:hm, hn:], c[hm:, :hn], c[hm:, hn:]

    def rec(aa: Any, bb: Any, cc: Any) -> None:
        _rec(aa, bb, cc, 1.0, depth + 1, crit, ctx, ws)

    with ws.frame():
        ta = ws.alloc(hm, hk, dt)
        tb = ws.alloc(hk, hn, dt)
        tp = ws.alloc(hm, hn, dt)

        madd(a11, a22, ta, ctx=ctx)          # M1 = (A11+A22)(B11+B22)
        madd(b11, b22, tb, ctx=ctx)
        rec(ta, tb, tp)
        mcopy(tp, c11, ctx=ctx)              # C11 = M1
        mcopy(tp, c22, ctx=ctx)              # C22 = M1
        madd(a21, a22, ta, ctx=ctx)          # M2 = (A21+A22) B11
        rec(ta, b11, c21)                    # C21 = M2
        axpby(-1.0, c21, 1.0, c22, ctx=ctx)  # C22 = M1 - M2
        msub(b12, b22, tb, ctx=ctx)          # M3 = A11 (B12-B22)
        rec(a11, tb, c12)                    # C12 = M3
        accum(c12, c22, ctx=ctx)             # C22 = M1 - M2 + M3
        msub(b21, b11, tb, ctx=ctx)          # M4 = A22 (B21-B11)
        rec(a22, tb, tp)
        accum(tp, c11, ctx=ctx)              # C11 = M1 + M4
        accum(tp, c21, ctx=ctx)              # C21 = M2 + M4   (done)
        madd(a11, a12, ta, ctx=ctx)          # M5 = (A11+A12) B22
        rec(ta, b22, tp)
        axpby(-1.0, tp, 1.0, c11, ctx=ctx)   # C11 = M1 + M4 - M5
        accum(tp, c12, ctx=ctx)              # C12 = M3 + M5   (done)
        msub(a21, a11, ta, ctx=ctx)          # M6 = (A21-A11)(B11+B12)
        madd(b11, b12, tb, ctx=ctx)
        rec(ta, tb, tp)
        accum(tp, c22, ctx=ctx)              # C22 done
        msub(a12, a22, ta, ctx=ctx)          # M7 = (A12-A22)(B21+B22)
        madd(b21, b22, tb, ctx=ctx)
        rec(ta, tb, tp)
        accum(tp, c11, ctx=ctx)              # C11 done

    if alpha != 1.0:
        axpby(0.0, c, alpha, c, ctx=ctx)
