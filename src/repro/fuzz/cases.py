"""The fuzz case space: drawing, materialization, and replay encoding.

A :class:`FuzzCase` is a *complete, reproducible* description of one
differential check — every knob that can change what DGEFMM computes,
plus the RNG seed for operand contents.  Cases serialize to plain JSON
dicts (``case_to_dict``/``case_from_dict``) so a failing draw can be
written to a replay file and re-run exactly with
``python -m repro fuzz --replay <file>``.

The drawing distribution is deliberately edge-heavy: zero and one
dimensions appear with fixed probability (the degenerate-GEMM contract),
``alpha``/``beta`` draw 0 often (the short-circuit classes), layouts
include non-contiguous and negative-stride views, C may alias A or B
(the overlap guard), and a ``beta == 0`` output may be pre-poisoned with
NaN (the overwrite-never-read contract).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict, Tuple

import numpy as np

from repro.core.schemes import SCHEME_NAMES

__all__ = [
    "FuzzCase",
    "draw_case",
    "materialize",
    "case_to_dict",
    "case_from_dict",
    "LAYOUTS",
    "SCHEMES",
    "DTYPES",
    "ACCURACIES",
]

#: operand memory layouts the materializer can produce
LAYOUTS = ("F", "C", "strided", "revrows", "revcols")

#: forceable scheme knob values (``dgefmm(scheme=...)``) — "auto" first,
#: then every scheme-registry entry, so newly registered schemes enter
#: the fuzz case space automatically
SCHEMES = SCHEME_NAMES

#: element types under test (the full precision matrix; ``object`` is
#: exercised by the dedicated precision tests, not the fuzz loop — its
#: Python-int arithmetic is orders of magnitude slower per case)
DTYPES = ("float64", "float32", "complex128", "complex64", "int64")

#: accuracy disciplines drawn for inexact dtypes; int64 always fuzzes
#: under "exact" (its only legal discipline)
ACCURACIES = ("fast", "compensated")

#: scalar pool: the zero class appears often, plus ±1 (the fast paths)
#: and generic values
_SCALARS = (0.0, 0.0, 1.0, 1.0, -1.0, 0.5, 2.0, -1.5, 3.25)

#: scalar pool for the exact (integer) cases: integral values only
_INT_SCALARS = (0.0, 0.0, 1.0, 1.0, -1.0, 2.0, 3.0, -2.0)

#: imaginary parts mixed into scalars for complex cases
_IMAGS = (0.0, 0.0, 0.5, -1.0, 0.25)


@dataclass(frozen=True)
class FuzzCase:
    """One differential check: problem, knobs, and operand seed."""

    m: int
    k: int
    n: int
    transa: bool
    transb: bool
    alpha: complex
    beta: complex
    dtype: str
    layout_a: str
    layout_b: str
    layout_c: str
    scheme: str
    peel: str
    tau: int
    workers: int
    depth: int
    alias: str      # "none" | "a" (C is A) | "b" (C is B)
    nan_c: bool     # pre-fill C with NaN (only drawn when beta == 0)
    pool: bool      # route parallel paths through a WorkspacePool
    seed: int       # operand-content RNG seed
    accuracy: str = "fast"   # rounding discipline (exact for int64)

    # ------------------------------------------------------------------ #
    def scalars(self) -> Tuple[Any, Any]:
        """``(alpha, beta)`` in the case's dtype scalar domain."""
        if self.dtype in ("complex128", "complex64"):
            return complex(self.alpha), complex(self.beta)
        if self.dtype == "int64":
            return int(self.alpha.real), int(self.beta.real)
        return float(self.alpha.real), float(self.beta.real)

    @property
    def parallel_applicable(self) -> bool:
        """Every case exercises pdgefmm: the parallel driver accepts the
        full scheme/peel knob set (schemes outside its parallel level
        vocabulary — textbook, laderman — fall back to serial inside
        the driver, which is itself worth differential coverage).
        """
        return True


def _draw_dim(rng: np.random.Generator, max_dim: int) -> int:
    """Edge-heavy dimension draw: 0 and 1 with fixed probability."""
    r = rng.random()
    if r < 0.06:
        return 0
    if r < 0.14:
        return 1
    return int(rng.integers(2, max_dim + 1))


def _draw_scalar(rng: np.random.Generator, dtype: str) -> complex:
    if dtype == "int64":
        return complex(_INT_SCALARS[rng.integers(0, len(_INT_SCALARS))], 0.0)
    re = float(_SCALARS[rng.integers(0, len(_SCALARS))])
    if dtype in ("complex128", "complex64"):
        im = float(_IMAGS[rng.integers(0, len(_IMAGS))])
        return complex(re, im)
    return complex(re, 0.0)


def draw_case(rng: np.random.Generator, max_dim: int = 32) -> FuzzCase:
    """Draw one :class:`FuzzCase` from the edge-heavy distribution."""
    m = _draw_dim(rng, max_dim)
    k = _draw_dim(rng, max_dim)
    n = _draw_dim(rng, max_dim)
    transa = bool(rng.random() < 0.5)
    transb = bool(rng.random() < 0.5)
    dtype = DTYPES[rng.choice(len(DTYPES), p=[0.4, 0.15, 0.15, 0.15, 0.15])]
    if dtype == "int64":
        accuracy = "exact"
    else:
        accuracy = "compensated" if rng.random() < 0.3 else "fast"
    alpha = _draw_scalar(rng, dtype)
    beta = _draw_scalar(rng, dtype)
    scheme = (
        "auto" if rng.random() < 0.55
        else SCHEMES[1 + rng.integers(0, len(SCHEMES) - 1)]
    )
    peel = "tail" if rng.random() < 0.7 else "head"
    layout_a = LAYOUTS[rng.integers(0, len(LAYOUTS))]
    layout_b = LAYOUTS[rng.integers(0, len(LAYOUTS))]
    layout_c = LAYOUTS[rng.integers(0, len(LAYOUTS))]

    # aliasing is only well-defined when op(.) leaves C's shape equal to
    # the input's ("a": C = A needs k == n and no transpose; "b": C = B
    # needs m == k and no transpose) — force the dims to coincide so the
    # overlap guard is exercised at a useful rate, not by coincidence
    alias = "none"
    r = rng.random()
    if r < 0.06 and m > 0 and k > 0:
        alias, transa, n = "a", False, k
    elif r < 0.12 and n > 0 and k > 0:
        alias, transb, m = "b", False, k

    # integer outputs cannot hold NaN — the poison check is float-only
    nan_c = bool(beta == 0 and alias == "none" and dtype != "int64"
                 and rng.random() < 0.4)
    return FuzzCase(
        m=m, k=k, n=n, transa=transa, transb=transb,
        alpha=alpha, beta=beta, dtype=dtype,
        layout_a=layout_a, layout_b=layout_b, layout_c=layout_c,
        scheme=scheme, peel=peel,
        tau=int((4, 8, 16)[rng.integers(0, 3)]),
        workers=int(rng.integers(1, 9)),
        depth=int(rng.integers(1, 3)),
        alias=alias, nan_c=nan_c,
        pool=bool(rng.random() < 0.5),
        seed=int(rng.integers(0, 2**31)),
        accuracy=accuracy,
    )


# ---------------------------------------------------------------------- #
def _random_matrix(
    rng: np.random.Generator, rows: int, cols: int, layout: str, dtype: str
) -> np.ndarray:
    """A rows-by-cols random matrix in the requested layout and dtype."""
    dt = np.dtype(dtype)

    def vals(r: int, c: int) -> np.ndarray:
        if dt.kind in "iu":
            # small integers: exact through any schedule, no overflow
            return rng.integers(-4, 5, (r, c)).astype(dt)
        x = rng.standard_normal((r, c))
        if dt.kind == "c":
            x = x + 1j * rng.standard_normal((r, c))
        return x.astype(dt)

    if layout == "F":
        return np.asfortranarray(vals(rows, cols))
    if layout == "C":
        return np.ascontiguousarray(vals(rows, cols))
    if layout == "strided":
        # every second row/column of a larger backing array
        return vals(2 * rows, 2 * cols)[::2, ::2]
    if layout == "revrows":
        return np.asfortranarray(vals(rows, cols))[::-1, :]
    if layout == "revcols":
        return np.ascontiguousarray(vals(rows, cols))[:, ::-1]
    raise ValueError(f"unknown layout {layout!r}")


def materialize(
    case: FuzzCase,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """``(a, b, c, c0)`` for one run of ``case``.

    ``c`` is the live output operand (it *is* ``a`` or ``b`` when the
    case aliases); ``c0`` is a private snapshot of C's initial content
    for the reference computation.  Deterministic in ``case.seed``, so
    every execution path can call this independently and receive
    identical operands.
    """
    rng = np.random.default_rng(case.seed)
    a = _random_matrix(
        rng,
        case.k if case.transa else case.m,
        case.m if case.transa else case.k,
        case.layout_a, case.dtype,
    )
    b = _random_matrix(
        rng,
        case.n if case.transb else case.k,
        case.k if case.transb else case.n,
        case.layout_b, case.dtype,
    )
    if case.alias == "a":
        c = a
    elif case.alias == "b":
        c = b
    else:
        c = _random_matrix(rng, case.m, case.n, case.layout_c, case.dtype)
        if case.nan_c:
            c[...] = np.nan
    return a, b, c, c.copy(order="K")


# ---------------------------------------------------------------------- #
def case_to_dict(case: FuzzCase) -> Dict[str, Any]:
    """JSON-safe dict encoding (complex scalars as [re, im] pairs)."""
    d: Dict[str, Any] = {}
    for f in fields(FuzzCase):
        v = getattr(case, f.name)
        if isinstance(v, complex):
            v = [v.real, v.imag]
        d[f.name] = v
    return d


def case_from_dict(d: Dict[str, Any]) -> FuzzCase:
    """Inverse of :func:`case_to_dict` (tolerates scalar floats too).

    Replay files written before the precision dimension carry no
    ``accuracy`` key; they decode to the dtype's natural discipline.
    """
    kw = dict(d)
    kw.setdefault(
        "accuracy", "exact" if kw.get("dtype") == "int64" else "fast"
    )
    for key in ("alpha", "beta"):
        v = kw[key]
        kw[key] = complex(v[0], v[1]) if isinstance(v, (list, tuple)) \
            else complex(v)
    for key in ("m", "k", "n", "tau", "workers", "depth", "seed"):
        kw[key] = int(kw[key])
    for key in ("transa", "transb", "nan_c", "pool"):
        kw[key] = bool(kw[key])
    return FuzzCase(**kw)
