"""Differential fuzzing: the standing DGEMM-conformance harness.

Three execution paths now produce every DGEFMM result — the recursive
driver, the multi-level parallel driver, and compiled-plan replay — and
all three must agree with the reference GEMM *and* (where the schedule
is shared) with each other bit-for-bit.  This package draws randomized
cases over the full knob space (shapes including degenerate zero/one
dims, strides and memory orders including negative-stride views,
dtypes, alpha/beta classes, transposes, schemes, peeling sides, worker
budgets, plan-cache and pool toggles, operand aliasing, NaN-poisoned
outputs) and cross-checks every path per case:

- :mod:`repro.fuzz.cases` — the case space: drawing, materialization,
  JSON (de)serialization for failing-case replay;
- :mod:`repro.fuzz.oracle` — run one case through every applicable
  path, check against a numpy float64/complex128 reference and between
  paths, and report divergences;
- :mod:`repro.fuzz.runner` — the campaign loop behind
  ``python -m repro fuzz`` (``--cases``, ``--seed``, ``--replay``),
  serializing failures to a JSON-lines replay file.

The tests drive the same oracle under hypothesis
(``tests/test_fuzz.py``), so shrinking is available during development
while CI runs the deterministic seeded campaign.
"""

from repro.fuzz.cases import FuzzCase, case_from_dict, case_to_dict, draw_case
from repro.fuzz.oracle import run_case
from repro.fuzz.runner import FuzzReport, run_fuzz

__all__ = [
    "FuzzCase",
    "FuzzReport",
    "case_from_dict",
    "case_to_dict",
    "draw_case",
    "run_case",
    "run_fuzz",
]
