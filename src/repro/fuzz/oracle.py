"""The differential oracle: one case, every execution path, cross-checked.

For a :class:`~repro.fuzz.cases.FuzzCase` the oracle runs up to four
result-producing paths:

- ``serial``   — the recursive driver (:func:`repro.core.dgefmm.dgefmm`);
- ``plan``     — the same call through a :class:`~repro.plan.cache.PlanCache`
  (compiled-plan replay);
- ``parallel`` — :func:`repro.core.parallel.pdgefmm` under the case's
  worker budget, parallel depth, and the full scheme/peel knob set
  (the parallel driver has scheme/peel/backend parity with the serial
  one);
- ``parallel-plan`` — pdgefmm through a plan cache.

With ``fuse=True`` three more paths join: ``fused`` and
``fused-replay`` (dgefmm through a plan cache with the fusion pass on
— the replay re-runs the same warm plan), and ``parallel-fused`` when
the case is parallel-applicable.

Checks, in decreasing strictness:

1. ``serial`` vs ``plan`` and ``parallel`` vs ``parallel-plan`` must be
   **bit-identical** (a plan replays the same kernels on the same views
   in the same order — any drift is a bug, not roundoff); ``fused`` vs
   ``fused-replay`` must be bit-identical too — fused execution is
   deterministic, it just isn't bit-identical to the *interpreted*
   stream (the batched/direct ``np.matmul`` kernel accumulates in a
   different order than the tiled substrate kernel), so the fused
   paths are checked against the reference and against their own
   replay, never bit-compared to the interpreted paths;
2. every path must match the numpy reference
   ``alpha*op(A)@op(B) + beta*C`` — computed in float64/complex128 with
   the BLAS overwrite semantics (``beta == 0`` never reads C) — within a
   dtype-scaled tolerance;
3. any exception a path raises is itself a divergence (degenerate and
   aliased cases must execute, not crash).

Each path materializes its own operands from the case seed, so aliased
and NaN-poisoned outputs replay identically per path.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from repro.core.cutoff import SimpleCutoff
from repro.core.dgefmm import dgefmm
from repro.core.parallel import pdgefmm
from repro.fuzz.cases import FuzzCase, materialize

__all__ = ["run_case", "reference_result", "tolerance_for"]

#: absolute tolerance per element dtype, as a multiple of the result
#: scale.  Strassen's construction loses a few digits versus the
#: standard algorithm (the paper's Section 4.3 stability discussion);
#: genuine schedule bugs produce O(1) relative errors, far above these.
#: The exact dtypes tolerate **nothing**: integer arithmetic through
#: any schedule must reproduce the reference bit for bit.
_TOLS = {
    "float64": 1e-9,
    "float32": 1e-3,
    "complex128": 1e-9,
    "complex64": 2e-3,
    "int64": 0.0,
    "object": 0.0,
}


def tolerance_for(case: FuzzCase, expect: np.ndarray) -> float:
    """Scaled absolute tolerance for comparisons against the reference."""
    tol = _TOLS[case.dtype]
    if tol == 0.0:
        return 0.0
    scale = 1.0
    if expect.size:
        scale = max(scale, float(np.max(np.abs(expect))))
    return tol * scale


def reference_result(case: FuzzCase, a, b, c0) -> np.ndarray:
    """``alpha*op(A)@op(B) + beta*C`` with the conformant overwrite
    semantics: ``beta == 0`` never reads ``c0`` (so a NaN-poisoned C
    yields a finite reference), and ``alpha == 0`` (or ``k == 0``)
    skips the product.  Inexact dtypes are referenced in
    float64/complex128; int64 is referenced in int64 — numpy's ``@``
    is exact there, so the reference *is* the true product."""
    if case.dtype in ("complex128", "complex64"):
        ref_dt = np.complex128
    elif case.dtype == "int64":
        ref_dt = np.int64
    else:
        ref_dt = np.float64
    alpha, beta = case.scalars()
    opa = (a.T if case.transa else a).astype(ref_dt)
    opb = (b.T if case.transb else b).astype(ref_dt)
    expect = np.zeros((case.m, case.n), dtype=ref_dt)
    if alpha != 0 and case.k > 0:
        expect += alpha * (opa @ opb)
    if beta != 0:
        expect += beta * c0.astype(ref_dt)
    return expect


def _run_path(case: FuzzCase, path: str, plan_cache, pool):
    """Execute one path on freshly materialized operands; returns C."""
    a, b, c, _c0 = materialize(case)
    alpha, beta = case.scalars()
    crit = SimpleCutoff(case.tau)
    if path in ("serial", "plan", "fused", "fused-replay"):
        fused = path in ("fused", "fused-replay")
        dgefmm(
            a, b, c, alpha, beta, case.transa, case.transb,
            cutoff=crit, scheme=case.scheme, peel=case.peel,
            plan_cache=plan_cache if path != "serial" else None,
            fuse=fused, accuracy=case.accuracy,
        )
    else:
        pdgefmm(
            a, b, c, alpha, beta, case.transa, case.transb,
            cutoff=crit, scheme=case.scheme, peel=case.peel,
            workers=case.workers, max_parallel_depth=case.depth,
            pool=pool if case.pool else None,
            plan_cache=(plan_cache
                        if path in ("parallel-plan", "parallel-fused")
                        else None),
            fuse=path == "parallel-fused", accuracy=case.accuracy,
        )
    return c


def run_case(
    case: FuzzCase,
    plan_cache: Optional[Any] = None,
    pool: Optional[Any] = None,
    fuse: bool = False,
) -> List[Dict[str, Any]]:
    """Run every applicable path for ``case``; return divergence records.

    An empty list means the case conforms.  Each record carries the
    ``path``, a ``kind`` (``"exception"``, ``"reference-mismatch"``, or
    ``"bit-divergence"``), and a human-readable ``detail``.  ``fuse``
    adds the fused-execution paths (module docstring) — checked
    against the reference tolerance and for replay determinism, not
    bit-compared to the interpreted paths.
    """
    if plan_cache is None:
        from repro.plan import PlanCache

        plan_cache = PlanCache()
    if pool is None and case.pool:
        from repro.core.pool import WorkspacePool

        pool = WorkspacePool()

    a, b, _c, c0 = materialize(case)
    expect = reference_result(case, a, b, c0)
    atol = tolerance_for(case, expect)

    paths = ["serial", "plan"]
    if case.parallel_applicable:
        paths += ["parallel", "parallel-plan"]
    # fused programs are compiled for the fast kernels only (GemmConfig
    # rejects fuse with any other accuracy), so the fused paths join the
    # cross-check only for fast-discipline cases
    if fuse and case.accuracy == "fast":
        paths += ["fused", "fused-replay"]
        if case.parallel_applicable:
            paths.append("parallel-fused")

    failures: List[Dict[str, Any]] = []
    results: Dict[str, np.ndarray] = {}
    for path in paths:
        try:
            results[path] = _run_path(case, path, plan_cache, pool)
        except Exception as exc:  # noqa: BLE001 — every crash is a finding
            failures.append({
                "path": path, "kind": "exception",
                "dtype": case.dtype, "accuracy": case.accuracy,
                "detail": f"{type(exc).__name__}: {exc}",
            })

    for path, got in results.items():
        if got.shape != expect.shape:
            failures.append({
                "path": path, "kind": "reference-mismatch",
                "dtype": case.dtype, "accuracy": case.accuracy,
                "detail": f"shape {got.shape} != {expect.shape}",
            })
            continue
        exact = np.dtype(expect.dtype).kind in "iuO"
        err = np.abs(got.astype(expect.dtype) - expect)
        max_err = float(np.max(err)) if err.size else 0.0
        finite = True if exact else bool(np.isfinite(got).all())
        if not finite or max_err > atol:
            failures.append({
                "path": path, "kind": "reference-mismatch",
                "dtype": case.dtype, "accuracy": case.accuracy,
                "detail": f"max |err| {max_err:.3e} > atol {atol:.3e}"
                          + ("" if finite else " (non-finite entries)"),
            })

    for lhs, rhs in (("serial", "plan"), ("parallel", "parallel-plan"),
                     ("fused", "fused-replay")):
        if lhs in results and rhs in results and not np.array_equal(
            results[lhs], results[rhs]
        ):
            diff = np.abs(results[lhs] - results[rhs])
            failures.append({
                "path": rhs, "kind": "bit-divergence",
                "dtype": case.dtype, "accuracy": case.accuracy,
                "detail": f"{rhs} differs from {lhs}, max |diff| "
                          f"{float(np.max(diff)):.3e}",
            })
    return failures
