"""The fuzz campaign loop behind ``python -m repro fuzz``.

A campaign is deterministic in its ``seed``: the same seed and case
count draw the same :class:`~repro.fuzz.cases.FuzzCase` sequence on any
machine, so a CI divergence reproduces locally with the same flags.
Failing cases are appended to a JSON-lines replay file (one
``{"case": ..., "failures": [...]}`` object per line); a later run with
``--replay <file>`` re-executes exactly those cases — the triage loop is
fuzz, fix, replay, then re-fuzz.

One :class:`~repro.plan.cache.PlanCache` and one
:class:`~repro.core.pool.WorkspacePool` are shared across the whole
campaign, deliberately: cross-case cache reuse is itself under test
(a stale or under-keyed plan signature shows up as a divergence on the
*second* case that hits it, which per-case caches would never catch).
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.blas.dtypes import is_exact_dtype
from repro.core.pool import WorkspacePool
from repro.fuzz.cases import FuzzCase, case_from_dict, case_to_dict, draw_case
from repro.fuzz.oracle import run_case
from repro.plan import PlanCache

__all__ = ["FuzzReport", "run_fuzz", "load_replay", "save_failures"]


@dataclass
class FuzzReport:
    """Outcome of one campaign: counts plus the surviving evidence."""

    cases: int = 0
    divergent: int = 0
    failures: List[Dict[str, Any]] = field(default_factory=list)
    #: how often each knob class was exercised (coverage sanity check)
    coverage: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.divergent == 0

    def _cover(self, case: FuzzCase) -> None:
        cov = self.coverage
        for key in (
            f"dtype:{case.dtype}",
            f"accuracy:{case.accuracy}",
            f"scheme:{case.scheme}",
            f"peel:{case.peel}",
            f"alias:{case.alias}",
        ):
            cov[key] = cov.get(key, 0) + 1
        if 0 in (case.m, case.k, case.n):
            cov["zero-dim"] = cov.get("zero-dim", 0) + 1
        if case.nan_c:
            cov["nan-c"] = cov.get("nan-c", 0) + 1
        alpha, beta = case.scalars()
        if alpha == 0:
            cov["alpha-zero"] = cov.get("alpha-zero", 0) + 1
        if beta == 0:
            cov["beta-zero"] = cov.get("beta-zero", 0) + 1
        if case.transa or case.transb:
            cov["transposed"] = cov.get("transposed", 0) + 1

    def to_dict(self) -> Dict[str, Any]:
        return {
            "cases": self.cases,
            "divergent": self.divergent,
            "ok": self.ok,
            "coverage": dict(sorted(self.coverage.items())),
            "failures": self.failures,
        }


def load_replay(path: str) -> List[FuzzCase]:
    """Cases from a JSON-lines replay file written by a previous run."""
    cases: List[FuzzCase] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            cases.append(case_from_dict(rec["case"] if "case" in rec else rec))
    return cases


def save_failures(path: str, failures: Sequence[Dict[str, Any]]) -> None:
    """Append failure records (``{"case", "failures"}``) as JSON lines."""
    with open(path, "a", encoding="utf-8") as fh:
        for rec in failures:
            fh.write(json.dumps(rec) + "\n")


def run_fuzz(
    cases: int = 200,
    seed: int = 0,
    max_dim: int = 32,
    replay: Optional[Sequence[FuzzCase]] = None,
    failures_path: Optional[str] = None,
    progress: Optional[Any] = None,
    scheme: Optional[str] = None,
    fuse: bool = False,
    dtype: Optional[str] = None,
    accuracy: Optional[str] = None,
) -> FuzzReport:
    """Run a differential campaign; returns a :class:`FuzzReport`.

    ``replay`` (a sequence of cases, e.g. from :func:`load_replay`)
    short-circuits drawing and runs exactly those cases; otherwise
    ``cases`` draws from the seeded edge-heavy distribution.
    ``failures_path`` appends divergent cases as JSON lines for later
    ``--replay``.  ``progress`` is an optional callable
    ``(index, total, divergent)`` invoked after each case.  ``scheme``
    pins every case (drawn or replayed) to one scheme — the per-scheme
    CI smoke lanes; all other knobs keep their drawn values.  ``fuse``
    adds the fused-execution paths to every case (see
    :mod:`repro.fuzz.oracle`).

    ``dtype``/``accuracy`` pin the precision dimension — the CI
    precision-matrix lanes.  Dtype compatibility wins over an accuracy
    pin: exact dtypes always run the exact discipline, and a case whose
    drawn ``"exact"`` accuracy becomes illegal under an inexact dtype
    pin falls back to ``"fast"``.  NaN poisoning is cleared for exact
    dtypes (they cannot hold a NaN).
    """
    rng = np.random.default_rng(seed)
    plan_cache = PlanCache()
    pool = WorkspacePool()
    report = FuzzReport()

    todo: Sequence[FuzzCase]
    if replay is not None:
        todo = list(replay)
    else:
        todo = [draw_case(rng, max_dim=max_dim) for _ in range(cases)]
    if scheme is not None:
        todo = [dataclasses.replace(case, scheme=scheme) for case in todo]
    if dtype is not None or accuracy is not None:
        pinned: List[FuzzCase] = []
        for case in todo:
            dt = dtype if dtype is not None else case.dtype
            acc = accuracy if accuracy is not None else case.accuracy
            if is_exact_dtype(dt):
                acc = "exact"
            elif acc == "exact":
                acc = "fast"
            pinned.append(dataclasses.replace(
                case, dtype=dt, accuracy=acc,
                nan_c=case.nan_c and not is_exact_dtype(dt),
            ))
        todo = pinned

    for idx, case in enumerate(todo):
        report.cases += 1
        report._cover(case)
        failures = run_case(case, plan_cache=plan_cache, pool=pool,
                            fuse=fuse)
        if failures:
            report.divergent += 1
            report.failures.append(
                {"case": case_to_dict(case), "failures": failures}
            )
        if progress is not None:
            progress(idx + 1, len(todo), report.divergent)

    if failures_path and report.failures:
        save_failures(failures_path, report.failures)
    return report
