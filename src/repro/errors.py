"""Exception types used across the :mod:`repro` package.

The error taxonomy mirrors the failure modes of a Level 3 BLAS
implementation: argument validation (``xerbla``-style), dimension
mismatches between operands, and workspace-allocator misuse.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ArgumentError",
    "DimensionError",
    "WorkspaceError",
    "ConvergenceError",
    "ServiceError",
    "ServiceOverloaded",
    "ServiceTimeout",
    "ServiceClosed",
    "RateLimited",
    "RemoteError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ArgumentError(ReproError, ValueError):
    """An argument has an invalid value (bad transpose flag, negative dim...).

    Plays the role of the reference BLAS ``xerbla`` error handler: the
    offending routine and argument are named in the message.
    """

    def __init__(self, routine: str, argument: str, message: str) -> None:
        self.routine = routine
        self.argument = argument
        super().__init__(f"{routine}: parameter '{argument}' {message}")


class DimensionError(ReproError, ValueError):
    """Operand shapes are mutually inconsistent for the requested operation."""


class WorkspaceError(ReproError, RuntimeError):
    """Workspace allocator misuse (pop without push, leak at frame exit...)."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative kernel (eigensolver polynomial iteration) failed to converge."""


class ServiceError(ReproError, RuntimeError):
    """Base class for GEMM serving-engine failures (:mod:`repro.serve`)."""


class ServiceOverloaded(ServiceError):
    """Admission control refused a request: the queue is at capacity and
    the policy is ``"reject"``, a ``"block"`` submitter timed out waiting
    for space, or the request was shed to make room for a newer one."""


class ServiceTimeout(ServiceError):
    """A request's deadline expired before (or while) it was served, or a
    caller's ``result(timeout=...)`` wait elapsed."""


class ServiceClosed(ServiceError):
    """The service is shut down and no longer accepts submissions."""


class RateLimited(ServiceOverloaded):
    """A network client exceeded its per-client token-bucket budget
    (:mod:`repro.api`); the request was refused before admission."""


class RemoteError(ServiceError):
    """A network response reported a failure class the client cannot map
    to a more specific local exception; carries the server-side error
    name and detail verbatim."""

    def __init__(self, error: str, detail: str) -> None:
        self.error = error
        self.detail = detail
        super().__init__(f"{error}: {detail}")
