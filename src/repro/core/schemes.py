"""Declarative registry of bilinear matrix-multiplication schemes.

A fast matrix-multiplication *scheme* is a bilinear algorithm
⟨mbar, kbar, nbar; R⟩: partition A into an mbar x kbar grid of blocks,
B into kbar x nbar, C into mbar x nbar, and compute the mbar*kbar*nbar
block products of the standard algorithm with only ``R`` recursive
multiplies.  Three coefficient matrices define the algorithm::

    S_r = sum_j U[r][j] * A_j          (R linear combinations of A blocks)
    T_r = sum_l V[r][l] * B_l          (R linear combinations of B blocks)
    C_i = sum_r W[i][r] * S_r * T_r    (block products recombined into C)

with blocks flattened row-major (``A_(i,j) -> i*kbar + j`` and so on).
Strassen/Winograd is ⟨2,2,2;7⟩; Laderman's construction is ⟨3,3,3;23⟩.

This module is *pure data* — no numpy, no BLAS — so the traversal core,
the op-count models, and the workspace-bound arithmetic can all consume
it without dragging in execution machinery.  Each entry is validated at
registration by the exact integer bilinear identity

    sum_r W[c(i,p)][r] * U[r][a(i',j')] * V[r][b(j'',p')]
        == 1  iff  i' == i and p' == p and j' == j''   (else 0)

over every index combination — a scheme that multiplies *any* matrix
wrong cannot enter the registry, and the conformance harness
(``tests/test_scheme_conformance.py``) exercises every entry end to end
with zero per-scheme test code.

Three derived vocabularies are built from the registry:

- ``LEVELS`` / ``LEVEL_DIVISORS`` — per *level code* (the schedule the
  drivers execute): recursive product count and partition divisors.
  One scheme may own several level codes (the beta = 0 and general
  schedules of STRASSEN1 differ), and several schemes may share one
  UVW (all four 2x2 schedules compute the same seven Winograd
  products).
- ``LEVEL_PROFILE`` — the block-addition counts and per-child beta
  classes of each level's *executed schedule*, the currency of
  ``opcount.scheme_ops`` and ``models.predict``.  Hand schedules carry
  hand-audited profiles; levels executed by the generic interpreter
  (:mod:`repro.core.uvw`) derive theirs from the coefficients via
  :func:`uvw_profile`, so the two can never drift.
- ``SCHEME_DISPATCH`` — scheme name -> per-beta-class (level code,
  child scheme), consumed by ``traversal.pick_level``.  ``"auto"`` is a
  dispatch alias (the paper's DGEFMM scheme selection), not a registry
  entry.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

__all__ = [
    "Scheme",
    "LevelProfile",
    "REGISTRY",
    "SCHEME_NAMES",
    "LEVELS",
    "LEVEL_DIVISORS",
    "LEVEL_PROFILE",
    "LEVEL_SCHEME",
    "SCHEME_DISPATCH",
    "get_scheme",
    "register",
    "validate_scheme",
    "uvw_profile",
    "bound_elements",
]

Matrix = Tuple[Tuple[int, ...], ...]


@dataclass(frozen=True)
class Scheme:
    """One bilinear ⟨mbar, kbar, nbar; R⟩ algorithm plus its dispatch.

    ``u`` is R x (mbar*kbar), ``v`` is R x (kbar*nbar), ``w`` is
    (mbar*nbar) x R, all entries in {-1, 0, +1}.  ``levels`` names the
    schedule executed for the (beta = 0, general) scalar classes;
    ``children`` the scheme the recursive products of each class carry.
    """

    name: str
    mbar: int
    kbar: int
    nbar: int
    r: int
    u: Matrix
    v: Matrix
    w: Matrix
    levels: Tuple[str, str]
    children: Tuple[str, str]


@dataclass(frozen=True)
class LevelProfile:
    """Block-addition counts of one level's executed schedule.

    ``a_adds``/``b_adds`` count (mp/mbar x kp/kbar)- and (kp/kbar x
    np/nbar)-shaped additions; ``c_adds_*`` the (mp/mbar x np/nbar)-
    shaped ones, which may differ between the beta = 0 and general
    schedules.  ``child_classes`` gives each recursive product's beta
    class in schedule order: True = beta 0, False = general, None =
    inherits the caller's class.
    """

    a_adds: int
    b_adds: int
    c_adds_beta0: int
    c_adds_general: int
    child_classes: Tuple[Optional[bool], ...]

    def c_adds(self, beta_zero: bool) -> int:
        return self.c_adds_beta0 if beta_zero else self.c_adds_general


# ---------------------------------------------------------------------- #
# coefficient parsing: "-a11+a21+a22" style expressions keep the tables
# reviewable against the literature; a typo fails the identity check.
_TERM = re.compile(r"([+-])([abm])(\d+)")


def _parse_row(expr: str, kind: str, rows: int, cols: int) -> Tuple[int, ...]:
    terms = _TERM.findall(expr)
    if "".join(s + k + d for s, k, d in terms) != expr:
        raise ValueError(f"unparseable coefficient expression {expr!r}")
    out = [0] * (rows * cols)
    for sign, k, digits in terms:
        if k != kind:
            raise ValueError(f"expected {kind!r} terms in {expr!r}")
        i, j = int(digits[0]) - 1, int(digits[1]) - 1
        out[i * cols + j] += 1 if sign == "+" else -1
    return tuple(out)


def _parse_products(spec, mbar: int, kbar: int, nbar: int):
    u, v = [], []
    for a_expr, b_expr in spec:
        u.append(_parse_row(a_expr, "a", mbar, kbar))
        v.append(_parse_row(b_expr, "b", kbar, nbar))
    return tuple(u), tuple(v)


def _parse_combos(spec, r: int, mbar: int, nbar: int) -> Matrix:
    w = []
    for expr in spec:
        terms = _TERM.findall(expr)
        if "".join(s + k + d for s, k, d in terms) != expr:
            raise ValueError(f"unparseable combination {expr!r}")
        row = [0] * r
        for sign, k, digits in terms:
            if k != "m":
                raise ValueError(f"expected m-terms in {expr!r}")
            row[int(digits) - 1] += 1 if sign == "+" else -1
        w.append(tuple(row))
    if len(w) != mbar * nbar:
        raise ValueError("wrong number of C combinations")
    return tuple(w)


# ---------------------------------------------------------------------- #
def validate_scheme(s: Scheme) -> None:
    """Exact integer proof that ``s`` multiplies matrices correctly.

    Checks shapes, the {-1, 0, +1} coefficient range, that no product
    or C block is vacuous, and the full bilinear identity.  Raises
    ``ValueError`` naming the first offending index set.
    """
    mb, kb, nb, r = s.mbar, s.kbar, s.nbar, s.r
    if mb < 1 or kb < 1 or nb < 1 or r < 1:
        raise ValueError(f"{s.name}: degenerate partition/product count")
    for label, mat, rows, cols in (
        ("u", s.u, r, mb * kb),
        ("v", s.v, r, kb * nb),
        ("w", s.w, mb * nb, r),
    ):
        if len(mat) != rows or any(len(row) != cols for row in mat):
            raise ValueError(f"{s.name}: {label} is not {rows}x{cols}")
        for row in mat:
            if any(x not in (-1, 0, 1) for x in row):
                raise ValueError(
                    f"{s.name}: {label} has coefficients outside "
                    "{-1, 0, +1}"
                )
    for rr in range(r):
        if not any(s.u[rr]) or not any(s.v[rr]):
            raise ValueError(f"{s.name}: product {rr + 1} is vacuous")
        if not any(s.w[ci][rr] for ci in range(mb * nb)):
            raise ValueError(f"{s.name}: product {rr + 1} is unused")
    for ci in range(mb * nb):
        if not any(s.w[ci]):
            raise ValueError(f"{s.name}: C block {ci} is never written")
    for i in range(mb):
        for p in range(nb):
            wrow = s.w[i * nb + p]
            for ia in range(mb):
                for ja in range(kb):
                    ua = ia * kb + ja
                    for jb in range(kb):
                        for pb in range(nb):
                            vb = jb * nb + pb
                            tot = sum(
                                wrow[rr] * s.u[rr][ua] * s.v[rr][vb]
                                for rr in range(r)
                            )
                            want = int(ia == i and pb == p and ja == jb)
                            if tot != want:
                                raise ValueError(
                                    f"{s.name}: bilinear identity fails "
                                    f"at C[{i},{p}] term "
                                    f"A[{ia},{ja}]*B[{jb},{pb}]: got "
                                    f"{tot}, want {want}"
                                )


def uvw_profile(u: Matrix, v: Matrix, w: Matrix) -> LevelProfile:
    """The addition/beta-class profile of the generic UVW interpreter.

    Mirrors :func:`repro.core.uvw.make_uvw_level` operation for
    operation: a singleton +1 row is a free block view; a singleton -1
    row is one scaling copy; an n-term row is n AXPBYs.  A product with
    one destination recurses straight into that C block (first touch
    carries the caller's beta, later touches accumulate); a product
    with several destinations goes to a temporary (beta = 0 child) and
    is merged with one AXPBY per destination.
    """
    def side_adds(mat: Matrix) -> int:
        adds = 0
        for row in mat:
            nnz = [x for x in row if x]
            if len(nnz) == 1:
                adds += 0 if nnz[0] > 0 else 1
            else:
                adds += len(nnz)
        return adds

    r = len(u)
    blocks = len(w)
    touched = [False] * blocks
    c_adds = 0
    classes = []
    for rr in range(r):
        dests = [ci for ci in range(blocks) if w[ci][rr]]
        if len(dests) == 1:
            ci = dests[0]
            classes.append(None if not touched[ci] else False)
            touched[ci] = True
        else:
            classes.append(True)
            c_adds += len(dests)
            for ci in dests:
                touched[ci] = True
    return LevelProfile(
        side_adds(u), side_adds(v), c_adds, c_adds, tuple(classes)
    )


# ---------------------------------------------------------------------- #
# the registry and its derived tables
REGISTRY: Dict[str, Scheme] = {}

#: level code -> number of recursive products the schedule spawns
LEVELS: Dict[str, int] = {}
#: level code -> (mbar, kbar, nbar) partition divisors
LEVEL_DIVISORS: Dict[str, Tuple[int, int, int]] = {}
#: level code -> executed-schedule addition/beta-class profile
LEVEL_PROFILE: Dict[str, LevelProfile] = {}
#: level code -> a scheme name whose UVW defines it (generic-executor
#: dispatch for levels without a hand-written schedule)
LEVEL_SCHEME: Dict[str, str] = {}
#: scheme name -> ((level, child scheme) for beta = 0, same for general);
#: includes the "auto" dispatch alias
SCHEME_DISPATCH: Dict[str, Tuple[Tuple[str, str], Tuple[str, str]]] = {}


def get_scheme(name: str) -> Scheme:
    """Registry lookup; raises ``KeyError`` for unknown names."""
    return REGISTRY[name]


def register(
    scheme: Scheme,
    profiles: Optional[Dict[str, LevelProfile]] = None,
) -> Scheme:
    """Validate ``scheme`` exactly and publish it plus its level tables.

    ``profiles`` carries the hand-audited :class:`LevelProfile` of each
    hand-written schedule; when omitted, every level of the scheme is
    assumed to run on the generic UVW interpreter and its profile is
    derived from the coefficients.
    """
    validate_scheme(scheme)
    if scheme.name in REGISTRY:
        raise ValueError(f"scheme {scheme.name!r} already registered")
    REGISTRY[scheme.name] = scheme
    derived = uvw_profile(scheme.u, scheme.v, scheme.w)
    for level in scheme.levels:
        LEVELS[level] = scheme.r
        LEVEL_DIVISORS[level] = (scheme.mbar, scheme.kbar, scheme.nbar)
        LEVEL_SCHEME.setdefault(level, scheme.name)
        if profiles is not None and level in profiles:
            LEVEL_PROFILE[level] = profiles[level]
        else:
            LEVEL_PROFILE.setdefault(level, derived)
    SCHEME_DISPATCH[scheme.name] = (
        (scheme.levels[0], scheme.children[0]),
        (scheme.levels[1], scheme.children[1]),
    )
    return scheme


# ---------------------------------------------------------------------- #
# ⟨2,2,2;7⟩ — the seven Winograd products (paper Section 3.1).  All four
# 2x2 schedules (STRASSEN1 beta0/general, STRASSEN2, textbook) compute
# exactly these products and differ only in scheduling and memory.
_WINOGRAD_PRODUCTS = (
    ("+a11", "+b11"),                      # P1
    ("+a12", "+b21"),                      # P2
    ("+a11+a12-a21-a22", "+b22"),          # P3 = S4 * B22
    ("+a22", "+b11-b12-b21+b22"),          # P4 = A22 * T4
    ("+a21+a22", "-b11+b12"),              # P5 = S1 * T1
    ("-a11+a21+a22", "+b11-b12+b22"),      # P6 = S2 * T2
    ("+a11-a21", "-b12+b22"),              # P7 = S3 * T3
)
_WINOGRAD_COMBOS = (
    "+m1+m2",          # C11
    "+m1+m3+m5+m6",    # C12
    "+m1-m4+m6+m7",    # C21
    "+m1+m5+m6+m7",    # C22
)
_WU, _WV = _parse_products(_WINOGRAD_PRODUCTS, 2, 2, 2)
_WW = _parse_combos(_WINOGRAD_COMBOS, 7, 2, 2)


def _winograd(name: str, levels, children) -> Scheme:
    return Scheme(name, 2, 2, 2, 7, _WU, _WV, _WW, levels, children)


# hand-audited profiles of the executed 2x2 schedules (child classes in
# schedule order; see the respective core modules)
_P_S1B0 = LevelProfile(4, 4, 10, 10, (True,) * 7)
_P_S1G = LevelProfile(4, 4, 11, 11, (True,) * 7)
_P_S2 = LevelProfile(
    4, 4, 6, 6, (True, True, False, False, False, None, False)
)
_P_TB = LevelProfile(4, 4, 11, 11, (True,) * 7)
_P_BDPZ = LevelProfile(6, 6, 9, 12, (None,) + (False,) * 6)

register(
    _winograd("strassen1", ("s1b0", "s1g"),
              ("strassen1", "strassen1_general")),
    profiles={"s1b0": _P_S1B0, "s1g": _P_S1G},
)
register(
    _winograd("strassen1_general", ("s1g", "s1g"),
              ("strassen1_general", "strassen1_general")),
    profiles={"s1g": _P_S1G},
)
register(
    _winograd("strassen2", ("s2", "s2"), ("strassen2", "strassen2")),
    profiles={"s2": _P_S2},
)
register(
    _winograd("textbook", ("tb", "tb"), ("textbook", "textbook")),
    profiles={"tb": _P_TB},
)
# Boyer–Dumas–Pernet–Zhou accumulating Winograd (arXiv:0707.2347): the
# same seven products, scheduled so two temporaries (X: m/2 x k/2 and
# Y: k/2 x n/2) suffice even for general beta — no m/2 x n/2 temporary
# at all.  See repro.core.bdpz.
register(
    _winograd("bdpz", ("bdpz", "bdpz"), ("bdpz", "bdpz")),
    profiles={"bdpz": _P_BDPZ},
)

# ---------------------------------------------------------------------- #
# ⟨3,3,3;23⟩ — a Laderman-type 23-multiplication scheme.  Solved to
# exact integer coefficients against the bilinear identity (which
# re-verifies it on every import); executed by the generic UVW
# interpreter under level code "l23".
_LADERMAN_PRODUCTS = (
    ("+a11+a12+a13-a21-a22-a32-a33", "+b22"),              # m1
    ("+a11-a21", "-b12+b22"),                              # m2
    ("+a22", "-b11+b12+b21-b22-b23-b31+b33"),              # m3
    ("-a11+a21+a22", "+b11-b12+b22"),                      # m4
    ("+a21+a22", "-b11+b12"),                              # m5
    ("+a11", "+b11"),                                      # m6
    ("-a11+a31+a32", "+b11-b13+b23"),                      # m7
    ("-a11+a31", "+b13-b23"),                              # m8
    ("+a31+a32", "-b11+b13"),                              # m9
    ("+a11+a12+a13-a22-a23-a31-a32", "+b23"),              # m10
    ("+a32", "-b11+b13+b21-b22-b23-b31+b32"),              # m11
    ("-a13+a32+a33", "+b22+b31-b32"),                      # m12
    ("+a13-a33", "+b22-b32"),                              # m13
    ("+a13", "+b31"),                                      # m14
    ("+a32+a33", "-b31+b32"),                              # m15
    ("-a13+a22+a23", "+b23+b31-b33"),                      # m16
    ("+a13-a23", "+b23-b33"),                              # m17
    ("+a22+a23", "-b31+b33"),                              # m18
    ("+a12", "+b21"),                                      # m19
    ("+a23", "+b32"),                                      # m20
    ("+a21", "+b13"),                                      # m21
    ("+a31", "+b12"),                                      # m22
    ("+a33", "+b33"),                                      # m23
)
_LADERMAN_COMBOS = (
    "+m6+m14+m19",                      # C11
    "+m1+m4+m5+m6+m12+m14+m15",         # C12
    "+m6+m7+m9+m10+m14+m16+m18",        # C13
    "+m2+m3+m4+m6+m14+m16+m17",         # C21
    "+m2+m4+m5+m6+m20",                 # C22
    "+m14+m16+m17+m18+m21",             # C23
    "+m6+m7+m8+m11+m12+m13+m14",        # C31
    "+m12+m13+m14+m15+m22",             # C32
    "+m6+m7+m8+m9+m23",                 # C33
)
_LU, _LV = _parse_products(_LADERMAN_PRODUCTS, 3, 3, 3)
_LW = _parse_combos(_LADERMAN_COMBOS, 23, 3, 3)

register(
    Scheme("laderman", 3, 3, 3, 23, _LU, _LV, _LW,
           ("l23", "l23"), ("laderman", "laderman")),
)

# the paper's DGEFMM scheme selection: beta = 0 runs STRASSEN1's
# two-temporary schedule, general beta runs STRASSEN2
SCHEME_DISPATCH["auto"] = (("s1b0", "auto"), ("s2", "auto"))

#: every scheme name GemmConfig accepts, "auto" first (the default)
SCHEME_NAMES: Tuple[str, ...] = ("auto",) + tuple(REGISTRY)


# ---------------------------------------------------------------------- #
def bound_elements(scheme: str, m: int, k: int, n: int) -> float:
    """Workspace peak bound, in elements, for one serial scheme.

    The closed forms are the per-level temporary footprints summed over
    the recursion (geometric series); Table 1 expresses them as
    coefficients of m^2 for square problems.  Raises ``KeyError`` for
    names without a bound.
    """
    mk, kn, mn = float(m) * k, float(k) * n, float(m) * n
    if scheme == "strassen2":
        # R1 + R2 + R3 per level: (mk + kn + mn)/4 * sum (1/4)^i
        return (mk + kn + mn) / 3.0
    if scheme == "strassen1":
        # beta = 0 schedule: R1 (m/2 x max(k,n)/2) + R2 (k/2 x n/2)
        return (float(m) * max(k, n) + kn) / 3.0
    if scheme == "strassen1_general":
        # six temporaries: R1 + R2 + four m/2 x n/2 products
        return (4.0 * mn + float(m) * max(k, n) + kn) / 3.0
    if scheme == "textbook":
        # 3 S-temps + 3 T-temps + 7 products per level
        return mk + kn + 7.0 * mn / 3.0
    if scheme == "bdpz":
        # two temporaries only: (mk + kn)/4 per level
        return (mk + kn) / 3.0
    if scheme == "laderman":
        # one block each of S/T/P shape: (mk + kn + mn)/9 per level,
        # recursion sum 9/8
        return (mk + kn + mn) / 8.0
    if scheme == "auto":
        # dispatches s1b0 (beta = 0) or s2 (general); cover both
        return max(
            bound_elements("strassen1", m, k, n),
            bound_elements("strassen2", m, k, n),
        )
    raise KeyError(scheme)
