"""The traversal core: DGEFMM's one recurse-vs-base decision kernel.

The paper's DGEFMM is a single algorithm — cutoff test (eq. 15),
dynamic peeling of odd dimensions (Section 3.3), and
STRASSEN1/STRASSEN2 scheme dispatch (Section 3.2) — but the repository
grew five walkers of that recursion: the eager serial driver, the
task-parallel driver, the plan compiler (serial and parallel mirrors),
the closed-form recursion analytics, and the cost-model predictor.
This module is the *only* place the per-node decision lives; every
walker consumes :func:`decide` and interprets the returned node in its
own way (execute kernels, record plan ops, tally counts, or sum model
costs).

Schemes are no longer hard-wired 2x2: the level vocabulary comes from
the declarative registry (:mod:`repro.core.schemes`), each level
carrying its own ⟨mbar, kbar, nbar⟩ partition divisors.  The returned
nodes embed those divisors, so peeling (strip ``dim % divisor`` trailing
indices, not just one) and child dimensions (``core // divisor``) fall
out of the node without any walker knowing which family it is walking.

:func:`decide` is stateless: given ``(m, k, n, depth)``, the scheme,
the beta scalar class, and a cutoff criterion it returns one typed node

- :class:`Base` — multiply with the standard algorithm;
- :class:`Recurse` — apply one scheme level on the (already
  divisor-exact) dimensions, carrying the level code and the
  children's scheme;
- :class:`Peel` — a :class:`Recurse` whose node has non-divisible
  dimensions: strip the remainder rows/columns, run the level on the
  divisible ``(mp, kp, np_)`` core, then apply the DGER/DGEMV fix-ups.

Callers handle the degenerate GEMM cases (empty output, ``k == 0``,
``alpha == 0``) *before* consulting the kernel — those are BLAS
conformance semantics (scale or no-op), not traversal decisions, and
each walker treats them differently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

from repro.core.cutoff import CutoffCriterion
from repro.core.schemes import LEVEL_DIVISORS, LEVELS, SCHEME_DISPATCH

__all__ = [
    "Base",
    "Recurse",
    "Peel",
    "DecisionNode",
    "peel_split",
    "pick_level",
    "decide",
    "LEVELS",
]


def peel_split(
    m: int, k: int, n: int, divisors: Tuple[int, int, int] = (2, 2, 2)
) -> Tuple[int, int, int]:
    """Divisor-exact core dimensions: each dimension loses its remainder
    modulo the scheme's partition divisor (one index per odd dimension
    in the classic 2x2 case)."""
    dm, dk, dn = divisors
    return m - m % dm, k - k % dk, n - n % dn


def pick_level(scheme: str, beta_zero: bool) -> Tuple[str, str]:
    """Resolve ``(level code, child scheme)`` for one recursion node.

    The dispatch table lives in the scheme registry
    (:data:`repro.core.schemes.SCHEME_DISPATCH`).  The child scheme
    matters for ``"strassen1"``: the paper's Table 1 figure for the
    general case assumes the seven (beta = 0) products are "computed
    recursively using the same algorithm", i.e. the general
    six-temporary schedule — so the general variant pins its children
    to ``"strassen1_general"`` rather than letting them drop back to
    the cheaper beta = 0 variant.
    """
    try:
        entry = SCHEME_DISPATCH[scheme]
    except KeyError:
        raise ValueError(f"unknown scheme {scheme!r}") from None
    return entry[0] if beta_zero else entry[1]


@dataclass(frozen=True)
class Base:
    """Stop here: one standard-algorithm multiply of (m, k, n)."""

    m: int
    k: int
    n: int
    depth: int


@dataclass(frozen=True)
class Recurse:
    """Apply one scheme level; dimensions are already divisor-exact.

    ``mp``/``kp``/``np_`` are the divisor-exact core dimensions the
    level runs on (equal to ``m``/``k``/``n`` unless this is a
    :class:`Peel`); ``level`` is the schedule code (``"s1b0"``,
    ``"s1g"``, ``"s2"``, ``"tb"``, ``"bdpz"``, ``"l23"``, ...);
    ``child_scheme`` is the scheme the recursive products carry;
    ``mbar``/``kbar``/``nbar`` the level's partition divisors;
    ``children`` how many products the level spawns, each of dimensions
    ``(mp//mbar, kp//kbar, np_//nbar)``.
    """

    m: int
    k: int
    n: int
    depth: int
    mp: int
    kp: int
    np_: int
    level: str
    child_scheme: str
    mbar: int = 2
    kbar: int = 2
    nbar: int = 2

    @property
    def peeled(self) -> bool:
        """True when remainder indices were stripped (a :class:`Peel`)."""
        return (self.mp, self.kp, self.np_) != (self.m, self.k, self.n)

    @property
    def divisors(self) -> Tuple[int, int, int]:
        """The level's partition divisors as one tuple."""
        return self.mbar, self.kbar, self.nbar

    @property
    def children(self) -> int:
        """Recursive products this level spawns (R of the scheme)."""
        return LEVELS[self.level]

    @property
    def child_dims(self) -> Tuple[int, int, int]:
        """Dimensions of each recursive product."""
        return (
            self.mp // self.mbar,
            self.kp // self.kbar,
            self.np_ // self.nbar,
        )


@dataclass(frozen=True)
class Peel(Recurse):
    """A :class:`Recurse` with stripped dimensions: core + DGER/DGEMV
    fix-ups."""


DecisionNode = Union[Base, Recurse]


def decide(
    m: int,
    k: int,
    n: int,
    depth: int,
    scheme: str,
    beta_zero: bool,
    crit: CutoffCriterion,
) -> DecisionNode:
    """The per-node decision every DGEFMM walker consumes.

    Dimensions must be >= 1 (callers resolve the degenerate GEMM
    classes first).  Recursion stops — :class:`Base` — when the cutoff
    criterion says so at this depth or when any dimension is below the
    resolved level's partition divisor (a 1-wide dimension cannot host
    a 2x2 split, nor a 2-wide one a 3x3 split); otherwise the node is a
    :class:`Recurse` (or :class:`Peel` when a dimension has a
    remainder) carrying the resolved level, child scheme, and
    divisors.
    """
    if crit.stop(m, k, n, depth):
        return Base(m, k, n, depth)
    level, child_scheme = pick_level(scheme, beta_zero)
    mbar, kbar, nbar = LEVEL_DIVISORS[level]
    if m < mbar or k < kbar or n < nbar:
        return Base(m, k, n, depth)
    mp, kp, np_ = peel_split(m, k, n, (mbar, kbar, nbar))
    cls = Peel if (mp, kp, np_) != (m, k, n) else Recurse
    return cls(
        m, k, n, depth, mp, kp, np_, level, child_scheme,
        mbar, kbar, nbar,
    )
