"""The traversal core: DGEFMM's one recurse-vs-base decision kernel.

The paper's DGEFMM is a single algorithm — cutoff test (eq. 15),
dynamic peeling of odd dimensions (Section 3.3), and
STRASSEN1/STRASSEN2 scheme dispatch (Section 3.2) — but the repository
grew five walkers of that recursion: the eager serial driver, the
task-parallel driver, the plan compiler (serial and parallel mirrors),
the closed-form recursion analytics, and the cost-model predictor.
This module is the *only* place the per-node decision lives; every
walker consumes :func:`decide` and interprets the returned node in its
own way (execute kernels, record plan ops, tally counts, or sum model
costs).

:func:`decide` is stateless: given ``(m, k, n, depth)``, the scheme,
the beta scalar class, and a cutoff criterion it returns one typed node

- :class:`Base` — multiply with the standard algorithm;
- :class:`Recurse` — apply one scheme level on the (already even)
  dimensions, carrying the level code and the children's scheme;
- :class:`Peel` — a :class:`Recurse` whose node has odd dimensions:
  strip one row/column per odd dimension, run the level on the even
  ``(mp, kp, np_)`` core, then apply the DGER/DGEMV fix-ups.

Callers handle the degenerate GEMM cases (empty output, ``k == 0``,
``alpha == 0``) *before* consulting the kernel — those are BLAS
conformance semantics (scale or no-op), not traversal decisions, and
each walker treats them differently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

from repro.core.cutoff import CutoffCriterion

__all__ = [
    "Base",
    "Recurse",
    "Peel",
    "DecisionNode",
    "peel_split",
    "pick_level",
    "decide",
    "LEVELS",
]

#: level codes -> number of recursive half-size products the schedule
#: spawns; every schedule here is a 7-product Winograd variant (the
#: "textbook" 15-add schedule trades memory, not products)
LEVELS = {"s1b0": 7, "s1g": 7, "s2": 7, "tb": 7}


def peel_split(m: int, k: int, n: int) -> Tuple[int, int, int]:
    """Even-core dimensions: each odd dimension loses one index."""
    return m - (m & 1), k - (k & 1), n - (n & 1)


def pick_level(scheme: str, beta_zero: bool) -> Tuple[str, str]:
    """Resolve ``(level code, child scheme)`` for one recursion node.

    The child scheme matters for ``"strassen1"``: the paper's Table 1
    figure for the general case assumes the seven (beta = 0) products
    are "computed recursively using the same algorithm", i.e. the
    general six-temporary schedule — so the general variant pins its
    children to ``"strassen1_general"`` rather than letting them drop
    back to the cheaper beta = 0 variant.
    """
    if scheme == "auto":
        return ("s1b0" if beta_zero else "s2"), "auto"
    if scheme == "strassen2":
        return "s2", "strassen2"
    if scheme == "strassen1":
        if beta_zero:
            return "s1b0", "strassen1"
        return "s1g", "strassen1_general"
    if scheme == "textbook":
        return "tb", "textbook"
    if scheme == "strassen1_general":
        return "s1g", "strassen1_general"
    raise ValueError(f"unknown scheme {scheme!r}")


@dataclass(frozen=True)
class Base:
    """Stop here: one standard-algorithm multiply of (m, k, n)."""

    m: int
    k: int
    n: int
    depth: int


@dataclass(frozen=True)
class Recurse:
    """Apply one scheme level; dimensions are already even.

    ``mp``/``kp``/``np_`` are the even core dimensions the level runs
    on (equal to ``m``/``k``/``n`` unless this is a :class:`Peel`);
    ``level`` is the schedule code (``"s1b0"``, ``"s1g"``, ``"s2"``,
    ``"tb"``); ``child_scheme`` is the scheme the recursive products
    carry; ``children`` is how many half-size products the level
    spawns, each of dimensions ``(mp//2, kp//2, np_//2)``.
    """

    m: int
    k: int
    n: int
    depth: int
    mp: int
    kp: int
    np_: int
    level: str
    child_scheme: str

    @property
    def peeled(self) -> bool:
        """True when odd dimensions were stripped (i.e. a :class:`Peel`)."""
        return (self.mp, self.kp, self.np_) != (self.m, self.k, self.n)

    @property
    def children(self) -> int:
        """Recursive products this level spawns (7, or 8 for textbook)."""
        return LEVELS[self.level]

    @property
    def child_dims(self) -> Tuple[int, int, int]:
        """Dimensions of each recursive product."""
        return self.mp // 2, self.kp // 2, self.np_ // 2


@dataclass(frozen=True)
class Peel(Recurse):
    """A :class:`Recurse` with odd dimensions: core + DGER/DGEMV fix-ups."""


DecisionNode = Union[Base, Recurse]


def decide(
    m: int,
    k: int,
    n: int,
    depth: int,
    scheme: str,
    beta_zero: bool,
    crit: CutoffCriterion,
) -> DecisionNode:
    """The per-node decision every DGEFMM walker consumes.

    Dimensions must be >= 1 (callers resolve the degenerate GEMM
    classes first).  Recursion stops — :class:`Base` — when the cutoff
    criterion says so at this depth or when any dimension is below 2;
    otherwise the node is a :class:`Recurse` (or :class:`Peel` when a
    dimension is odd) carrying the resolved level and child scheme.
    """
    if crit.stop(m, k, n, depth) or min(m, k, n) < 2:
        return Base(m, k, n, depth)
    mp, kp, np_ = peel_split(m, k, n)
    level, child_scheme = pick_level(scheme, beta_zero)
    cls = Peel if (mp, kp, np_) != (m, k, n) else Recurse
    return cls(m, k, n, depth, mp, kp, np_, level, child_scheme)
