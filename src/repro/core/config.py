"""GemmConfig: the frozen knob bundle every DGEFMM entry point shares.

One multiplication's behaviour is shaped by its knobs — cutoff
criterion, scheme, peeling side, base-case tile edge, base-case
kernel backend, plan fusion, numeric dtype and accuracy mode.  Before
this module each entry point (``dgefmm``,
``pdgefmm``, ``GemmService.submit``, the fuzz oracle, the CLI) validated
its own copies of those knobs and hand-listed them into
:class:`~repro.plan.compiler.PlanSignature`; drift between the copies
was guarded only by convention (and a test).  :class:`GemmConfig` is the
single validation point: construct it once per call, and every layer —
drivers, traversal, plan compiler, serving engine — reads the same
frozen object.

The field order is load-bearing: :class:`~repro.plan.compiler.
PlanSignature` is *derived structurally* from ``fields(GemmConfig)``
(problem fields first, then the config fields in declaration order), so
adding a knob here automatically adds it to the plan-cache key.
Signature completeness is a property of the type, not an audit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.blas.dtypes import ACCURACIES, DTYPES, is_exact_dtype
from repro.blas.level3 import BACKENDS, DEFAULT_TILE
from repro.core.cutoff import CutoffCriterion, HybridCutoff
from repro.core.schemes import SCHEME_NAMES
from repro.errors import ArgumentError

__all__ = ["GemmConfig", "DEFAULT_CUTOFF", "SCHEMES", "PEELS",
           "DTYPES", "ACCURACIES"]

#: Default cutoff for hosts where no calibration has been run.  The tau
#: values are deliberately conservative for a numpy-kernel substrate; the
#: calibration example (examples/cutoff_tuning.py) shows how to measure
#: machine-specific parameters the way Section 4.2 does.
DEFAULT_CUTOFF = HybridCutoff(tau=128, tau_m=96, tau_k=96, tau_n=96)

#: Recognised values of the ``scheme`` argument — "auto" plus every
#: entry of the scheme registry (:mod:`repro.core.schemes`).
SCHEMES = SCHEME_NAMES

#: Recognised values of the ``peel`` argument.
PEELS = ("tail", "head")


@dataclass(frozen=True)
class GemmConfig:
    """Validated, hashable bundle of the DGEFMM behaviour knobs.

    ``scheme``
        ``"auto"`` (the paper's DGEFMM dispatch: STRASSEN1 when beta = 0,
        STRASSEN2 otherwise), or a forced schedule for study.
    ``peel``
        Odd-dimension peeling side, ``"tail"`` (the paper's) or
        ``"head"``.
    ``cutoff``
        A :class:`~repro.core.cutoff.CutoffCriterion` deciding
        recurse-vs-base at every level.
    ``nb``
        Tile edge for the base-case standard-algorithm kernel.
    ``backend``
        Base-case kernel backend (:data:`repro.blas.level3.BACKENDS`).
    ``fuse``
        Opt-in plan fusion (:mod:`repro.plan.fuse`): compiled plans
        additionally carry a fused program — elementwise chains replayed
        without per-op dispatch and same-shape base-case products packed
        into one batched ``np.matmul`` call.  Only the plan path reads
        it (``plan_cache=``); the recursive drivers ignore it.  Because
        the batched kernel's accumulation order differs from the tiled
        substrate kernel, ``fuse`` keys the plan signature — fused and
        interpreted plans never collide in a cache.
    ``dtype``
        Canonical operand dtype (:data:`repro.blas.dtypes.DTYPES`).
        Drives kernel selection, workspace/arena element sizes and the
        plan-cache key; drivers fold the observed operand dtype in via
        :func:`~repro.plan.compiler.signature_for`.
    ``accuracy``
        Accuracy mode (:data:`repro.blas.dtypes.ACCURACIES`):
        ``"fast"`` native rounding, ``"compensated"`` wide-promoted /
        Kahan-accumulated floating point, ``"exact"`` integer/object
        arithmetic with no float intermediates.  Legal combinations:
        exact ⟺ exact dtype (int64/object); compensated requires an
        inexact dtype; ``fuse`` requires ``"fast"`` (the batched matmul
        program has no compensated or exact replay).

    Declaration order matters — see the module docstring.
    """

    scheme: str = "auto"
    peel: str = "tail"
    cutoff: CutoffCriterion = DEFAULT_CUTOFF
    nb: int = DEFAULT_TILE
    backend: str = "substrate"
    fuse: bool = False
    dtype: str = "float64"
    accuracy: str = "fast"

    def __post_init__(self) -> None:
        if self.scheme not in SCHEMES:
            raise ArgumentError(
                "GemmConfig", "scheme",
                f"must be one of {SCHEMES}, got {self.scheme!r}",
            )
        if self.peel not in PEELS:
            raise ArgumentError(
                "GemmConfig", "peel",
                f"must be one of {PEELS}, got {self.peel!r}",
            )
        if not isinstance(self.cutoff, CutoffCriterion):
            raise ArgumentError(
                "GemmConfig", "cutoff",
                f"must be a CutoffCriterion, got {type(self.cutoff).__name__}",
            )
        if self.nb < 1:
            raise ArgumentError(
                "GemmConfig", "nb", f"must be >= 1, got {self.nb}"
            )
        if self.backend not in BACKENDS:
            raise ArgumentError(
                "GemmConfig", "backend",
                f"must be one of {BACKENDS}, got {self.backend!r}",
            )
        if not isinstance(self.fuse, bool):
            raise ArgumentError(
                "GemmConfig", "fuse",
                f"must be a bool, got {type(self.fuse).__name__}",
            )
        if self.dtype not in DTYPES:
            raise ArgumentError(
                "GemmConfig", "dtype",
                f"must be one of {DTYPES}, got {self.dtype!r}",
            )
        if self.accuracy not in ACCURACIES:
            raise ArgumentError(
                "GemmConfig", "accuracy",
                f"must be one of {ACCURACIES}, got {self.accuracy!r}",
            )
        # Legal (dtype, accuracy) combinations: exact arithmetic and the
        # exact dtypes imply each other; compensated rounding is a
        # floating-point notion; fusion replays only the fast program.
        if is_exact_dtype(self.dtype) and self.accuracy != "exact":
            raise ArgumentError(
                "GemmConfig", "accuracy",
                f"dtype {self.dtype!r} is exact: accuracy must be "
                f"'exact', got {self.accuracy!r}",
            )
        if self.accuracy == "exact" and not is_exact_dtype(self.dtype):
            raise ArgumentError(
                "GemmConfig", "accuracy",
                f"accuracy 'exact' requires an exact dtype "
                f"(int64/object), got dtype {self.dtype!r}",
            )
        if self.fuse and self.accuracy != "fast":
            raise ArgumentError(
                "GemmConfig", "fuse",
                f"plan fusion requires accuracy 'fast', "
                f"got {self.accuracy!r}",
            )
