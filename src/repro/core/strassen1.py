"""STRASSEN1 — the straightforward schedule of paper Section 3.2.

STRASSEN1 computes each of the seven Winograd products into its own
destination and combines them with matrix additions.  Two variants, as in
the paper:

**beta = 0 variant** (:func:`strassen1_beta0_level`) — the computation
order is designed so the four quadrants of C serve as four of the product
temporaries; only two real temporaries remain:

    R1 (m/2 x max(k,n)/2)  — holds the S-chain, then spare products,
    R2 (k/2 x n/2)         — holds the T-chain,

for a recursion-wide bound of ``(m*max(k,n) + kn)/3`` (``2m^2/3`` square).

**general variant** (:func:`strassen1_general_level`) — ``beta != 0``
means C's initial content is live, so products cannot be written into C;
six temporaries are used:

    R1 (m/2 x max(k,n)/2), R2 (k/2 x n/2), R3..R6 (m/2 x n/2 each),

total ``m*max(k,n)/4 + kn/4 + mn`` per level — the paper's bound
``(4mn + m*max(k,n) + kn)/3`` (``2m^2`` square) when all recursive calls
use this same schedule.

Scheduling note: keeping the strict two-temporary/six-temporary memory
bound forces a *flattened* accumulation of the U-tree (each product is
added into every quadrant that needs it), costing 18 block additions per
level instead of the algorithm's minimal 15.  The paper's own schedule
(in the unavailable tech report [14]) makes the same memory claim; the
three extra O(m^2/4) additions are negligible against the O(m^3) product
work and are visible only in the op-count instrumentation, where tests
pin them down explicitly.

Both variants draw every temporary from the workspace passed in, never
from the heap directly — so when the driver hands them a pooled arena
(:class:`~repro.core.pool.PooledWorkspace`), the frame discipline below
replays the same bump-allocator layout on every call and repeated GEMMs
allocate nothing new.  The schedules are agnostic to which workspace
implementation they run on.

All products recurse through the driver callback, so cutoffs and dynamic
peeling apply below this level.  In the beta = 0 variant the products are
themselves beta = 0 multiplies; the paper's Table 1 figure for the
general variant assumes general-schedule children ("computed recursively
using the same algorithm"), which the driver honours when this scheme is
forced (see :mod:`repro.core.dgefmm`).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.blas.addsub import NUMERIC_KERNELS, BlockKernels
from repro.context import ExecutionContext
from repro.core.workspace import Workspace

__all__ = ["strassen1_beta0_level", "strassen1_general_level"]

RecurseFn = Callable[[Any, Any, Any, float, float], None]


def strassen1_beta0_level(
    a: Any,
    b: Any,
    c: Any,
    alpha: float,
    *,
    ctx: ExecutionContext,
    ws: Workspace,
    recurse: RecurseFn,
    kernels: Optional[BlockKernels] = None,
) -> None:
    """One STRASSEN1 level for ``C <- alpha*A*B`` (beta = 0), even dims.

    C's quadrants are written freely (their prior content is dead), so
    they host four of the seven products; R1/R2 host the S/T chains and
    the two products that cannot live in C.
    """
    em = kernels if kernels is not None else NUMERIC_KERNELS
    m, k = a.shape
    n = b.shape[1]
    hm, hk, hn = m // 2, k // 2, n // 2

    a11, a12, a21, a22 = a[:hm, :hk], a[:hm, hk:], a[hm:, :hk], a[hm:, hk:]
    b11, b12, b21, b22 = b[:hk, :hn], b[:hk, hn:], b[hk:, :hn], b[hk:, hn:]
    c11, c12, c21, c22 = c[:hm, :hn], c[:hm, hn:], c[hm:, :hn], c[hm:, hn:]

    dt = getattr(c, "dtype", None) or "float64"
    with ws.frame():
        r1 = ws.alloc(hm, max(hk, hn), dt)
        r2 = ws.alloc(hk, hn, dt)
        rs = r1[:, :hk]   # S-chain view (m/2 x k/2)
        rp = r1[:, :hn]   # product view (m/2 x n/2), live only when S dead

        em.madd(a21, a22, rs, alpha, ctx=ctx)        # rs = alpha*S1
        em.msub(b12, b11, r2, ctx=ctx)               # r2 = T1
        recurse(rs, r2, c22, 1.0, 0.0)            # C22 = alpha*P5
        em.axpby(-alpha, a11, 1.0, rs, ctx=ctx)      # rs = alpha*S2
        em.msub(b22, r2, r2, ctx=ctx)                # r2 = T2
        recurse(rs, r2, c21, 1.0, 0.0)            # C21 = alpha*P6
        em.axpby(alpha, a12, -1.0, rs, ctx=ctx)      # rs = alpha*S4
        em.msub(r2, b21, r2, ctx=ctx)                # r2 = T4
        recurse(rs, b22, c12, 1.0, 0.0)           # C12 = alpha*P3
        em.accum(c22, c12, ctx=ctx)                  # C12 = a*(P3+P5)
        em.accum(c21, c12, ctx=ctx)                  # C12 = a*(P3+P5+P6)
        em.accum(c21, c22, ctx=ctx)                  # C22 = a*(P5+P6)
        recurse(a22, r2, rp, alpha, 0.0)          # rp = alpha*P4
        em.axpby(-1.0, rp, 1.0, c21, ctx=ctx)        # C21 = a*(P6-P4)
        em.msub(a11, a21, rs, alpha, ctx=ctx)        # rs = alpha*S3
        em.msub(b22, b12, r2, ctx=ctx)               # r2 = T3
        recurse(rs, r2, c11, 1.0, 0.0)            # C11 = alpha*P7 (temp use)
        em.accum(c11, c21, ctx=ctx)                  # C21 = a*(P6+P7-P4)
        em.accum(c11, c22, ctx=ctx)                  # C22 = a*(P5+P6+P7)
        recurse(a11, b11, c11, alpha, 0.0)        # C11 = alpha*P1
        em.accum(c11, c12, ctx=ctx)                  # C12 = a*U5  (done)
        em.accum(c11, c21, ctx=ctx)                  # C21 = a*U6  (done)
        em.accum(c11, c22, ctx=ctx)                  # C22 = a*U7  (done)
        recurse(a12, b21, rp, alpha, 0.0)         # rp = alpha*P2
        em.accum(rp, c11, ctx=ctx)                   # C11 = a*U1  (done)


def strassen1_general_level(
    a: Any,
    b: Any,
    c: Any,
    alpha: float,
    beta: float,
    *,
    ctx: ExecutionContext,
    ws: Workspace,
    recurse: RecurseFn,
    kernels: Optional[BlockKernels] = None,
) -> None:
    """One STRASSEN1 level for general ``C <- alpha*A*B + beta*C``.

    C's prior content must survive until its single beta-scaled merge, so
    all seven products go to temporaries (six allocations: R1 doubles as
    the S-chain and the P1 slot once the S-chain is dead).
    """
    em = kernels if kernels is not None else NUMERIC_KERNELS
    m, k = a.shape
    n = b.shape[1]
    hm, hk, hn = m // 2, k // 2, n // 2

    a11, a12, a21, a22 = a[:hm, :hk], a[:hm, hk:], a[hm:, :hk], a[hm:, hk:]
    b11, b12, b21, b22 = b[:hk, :hn], b[:hk, hn:], b[hk:, :hn], b[hk:, hn:]
    c11, c12, c21, c22 = c[:hm, :hn], c[:hm, hn:], c[hm:, :hn], c[hm:, hn:]

    dt = getattr(c, "dtype", None) or "float64"
    with ws.frame():
        r1 = ws.alloc(hm, max(hk, hn), dt)
        r2 = ws.alloc(hk, hn, dt)
        r3 = ws.alloc(hm, hn, dt)
        r4 = ws.alloc(hm, hn, dt)
        r5 = ws.alloc(hm, hn, dt)
        r6 = ws.alloc(hm, hn, dt)
        rs = r1[:, :hk]   # S-chain view
        rp = r1[:, :hn]   # P1 slot, once the S-chain is dead

        em.madd(a21, a22, rs, ctx=ctx)               # rs = S1
        em.msub(b12, b11, r2, ctx=ctx)               # r2 = T1
        recurse(rs, r2, r3, 1.0, 0.0)             # r3 = P5
        em.axpby(-1.0, a11, 1.0, rs, ctx=ctx)        # rs = S2
        em.msub(b22, r2, r2, ctx=ctx)                # r2 = T2
        recurse(rs, r2, r4, 1.0, 0.0)             # r4 = P6
        em.axpby(1.0, a12, -1.0, rs, ctx=ctx)        # rs = S4
        em.msub(r2, b21, r2, ctx=ctx)                # r2 = T4
        recurse(rs, b22, r5, 1.0, 0.0)            # r5 = P3
        recurse(a22, r2, r6, 1.0, 0.0)            # r6 = P4
        em.axpby(-alpha, r6, beta, c21, ctx=ctx)     # C21 = b*C21 - a*P4
        em.msub(a11, a21, rs, ctx=ctx)               # rs = S3
        em.msub(b22, b12, r2, ctx=ctx)               # r2 = T3
        recurse(rs, r2, r6, 1.0, 0.0)             # r6 = P7
        recurse(a11, b11, rp, 1.0, 0.0)           # rp = P1 (S-chain dead)
        em.accum(rp, r4, ctx=ctx)                    # r4 = U2 = P1 + P6
        em.accum(r4, r6, ctx=ctx)                    # r6 = U3 = U2 + P7
        em.axpby(alpha, r6, 1.0, c21, ctx=ctx)       # C21 += a*U3   (done)
        em.axpby(alpha, r6, beta, c22, ctx=ctx)      # C22 = b*C22 + a*U3
        em.axpby(alpha, r3, 1.0, c22, ctx=ctx)       # C22 += a*P5   (done)
        em.accum(r3, r5, ctx=ctx)                    # r5 = P3 + P5
        em.accum(r4, r5, ctx=ctx)                    # r5 = U5 = U2 + P5 + P3
        em.axpby(alpha, r5, beta, c12, ctx=ctx)      # C12 = b*C12 + a*U5 (done)
        recurse(a12, b21, r3, 1.0, 0.0)           # r3 = P2 (P5 dead)
        em.accum(r3, rp, ctx=ctx)                    # rp = U1 = P1 + P2
        em.axpby(alpha, rp, beta, c11, ctx=ctx)      # C11 = b*C11 + a*U1 (done)
