"""The paper's primary contribution: DGEFMM and its building blocks.

- :mod:`repro.core.traversal` — the one recurse-vs-base decision kernel
  every walker (drivers, plan compiler, analytics) consumes,
- :mod:`repro.core.config` — the frozen :class:`GemmConfig` knob bundle,
- :mod:`repro.core.dgefmm` — the public DGEMM-compatible driver,
- :mod:`repro.core.strassen1` / :mod:`repro.core.strassen2` — the two
  computation schedules of Section 3.2,
- :mod:`repro.core.peeling` — dynamic peeling for odd dimensions (3.3),
- :mod:`repro.core.padding` — static/dynamic padding (for comparison),
- :mod:`repro.core.cutoff` — every cutoff criterion of Sections 2/3.4,
- :mod:`repro.core.workspace` — temporary storage with peak tracking (3.2),
- :mod:`repro.core.pool` — reusable workspace arenas for repeated calls,
- :mod:`repro.core.parallel` — the multi-level task-parallel driver,
- :mod:`repro.core.opcount` — the operation-count model of Section 2,
- :mod:`repro.core.winograd` — the Winograd stage equations, as an oracle.
"""

from repro.core.config import GemmConfig
from repro.core.cutoff import (
    CutoffCriterion,
    HighamCutoff,
    HybridCutoff,
    PlaneCutoff,
    SimpleCutoff,
    TheoreticalCutoff,
)
from repro.core.dgefmm import dgefmm
from repro.core.pool import PooledWorkspace, WorkspacePool
from repro.core.workspace import Workspace

__all__ = [
    "dgefmm",
    "GemmConfig",
    "Workspace",
    "PooledWorkspace",
    "WorkspacePool",
    "CutoffCriterion",
    "TheoreticalCutoff",
    "SimpleCutoff",
    "HighamCutoff",
    "PlaneCutoff",
    "HybridCutoff",
]
