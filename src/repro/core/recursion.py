"""Closed-form recursion analytics, cross-checked against execution.

For planning and for testing, it is useful to predict — without running
anything — what a cutoff criterion will make the DGEFMM recursion do:
how deep it goes, how many base-case multiplies it issues, how much
multiply work remains.  These helpers walk the same
:func:`repro.core.traversal.decide` kernel the drivers and the plan
compiler consume, so the test suite can assert they match the
instrumented counts of real executions exactly — node for node.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.config import DEFAULT_CUTOFF
from repro.core.cutoff import CutoffCriterion
from repro.core.traversal import Base, decide

__all__ = [
    "recursion_profile",
    "base_multiplies",
    "multiply_fraction",
]


def recursion_profile(
    m: int,
    k: int,
    n: int,
    criterion: Optional[CutoffCriterion] = None,
    scheme: str = "auto",
) -> Dict:
    """Predicted recursion structure for one DGEFMM call.

    Returns ``{"recurse": #internal nodes, "base": #base multiplies,
    "peel": #peeled nodes, "max_depth": deepest base level,
    "mul_flops": scalar multiplies of all base cases (the Strassen
    currency; fix-up multiplies excluded), "base_shapes": {shape:
    count}}``.  ``scheme`` selects the registry family: each node fans
    out into its level's product count (7 for the Winograd schedules,
    8 for textbook, 23 for ⟨3,3,3;23⟩ Laderman) over that level's
    partition shape.  (The structure is beta-independent, so the
    profile holds for every scalar class.)
    """
    crit = criterion if criterion is not None else DEFAULT_CUTOFF
    prof = {
        "recurse": 0,
        "base": 0,
        "peel": 0,
        "max_depth": 0,
        "mul_flops": 0.0,
        "base_shapes": {},
    }

    def walk(m_: int, k_: int, n_: int, depth: int, sch: str) -> None:
        if m_ == 0 or n_ == 0 or k_ == 0:
            return
        prof["max_depth"] = max(prof["max_depth"], depth)
        node = decide(m_, k_, n_, depth, sch, True, crit)
        if isinstance(node, Base):
            prof["base"] += 1
            prof["mul_flops"] += float(m_) * k_ * n_
            key = (m_, k_, n_)
            prof["base_shapes"][key] = prof["base_shapes"].get(key, 0) + 1
            return
        if node.peeled:
            prof["peel"] += 1
        prof["recurse"] += 1
        hm, hk, hn = node.child_dims
        for _ in range(node.children):
            walk(hm, hk, hn, depth + 1, node.child_scheme)

    walk(m, k, n, 0, scheme)
    return prof


def base_multiplies(
    m: int,
    k: int,
    n: int,
    criterion: Optional[CutoffCriterion] = None,
) -> int:
    """Number of base-case standard multiplies (7^depth on even sizes)."""
    return recursion_profile(m, k, n, criterion)["base"]


def multiply_fraction(
    m: int,
    k: int,
    n: int,
    criterion: Optional[CutoffCriterion] = None,
) -> float:
    """Strassen's multiply saving: base multiplies / standard multiplies.

    (7/8)^d for d even recursion levels — e.g. 0.669 for three levels —
    excluding the O(n^2) peeling fix-ups.
    """
    if m == 0 or k == 0 or n == 0:
        return 1.0
    prof = recursion_profile(m, k, n, criterion)
    return prof["mul_flops"] / (float(m) * k * n)
