"""The 3M method: complex GEMM from three real Strassen products.

A complex product naively costs four real products (Cr = ArBr - AiBi,
Ci = ArBi + AiBr).  The "3M" identity (the matrix Karatsuba; used by the
GEMMW package for its complex routines and analyzed by Higham) needs
three:

    T1 = Ar * Br
    T2 = Ai * Bi
    T3 = (Ar + Ai) * (Br + Bi)
    Cr = T1 - T2
    Ci = T3 - T1 - T2

Each of the three real products goes through DGEFMM here, compounding
the 25 % saving of 3M with Strassen's per-product saving.  The price,
as in all Strassen-family tricks, is weaker *componentwise* accuracy:
the imaginary part's error bound involves ||A|| ||B|| rather than
|A| |B| (Higham, Sec. 23.2.4) — norm-wise stability is retained, which
the tests verify empirically.

:func:`zgefmm_3m` is an alternative to :func:`repro.core.dgefmm.zgefmm`
(which runs the schedules natively on complex128 and performs 4-real-
multiply-equivalent work inside each complex scalar multiply).
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.blas.validate import opshape, require_matrix, require_writable
from repro.context import ExecutionContext, ensure_context
from repro.core.cutoff import CutoffCriterion
from repro.core.dgefmm import dgefmm
from repro.core.workspace import Workspace
from repro.errors import DimensionError

__all__ = ["zgefmm_3m"]


def zgefmm_3m(
    a: Any,
    b: Any,
    c: Any,
    alpha: complex = 1.0,
    beta: complex = 0.0,
    transa: bool = False,
    transb: bool = False,
    *,
    cutoff: Optional[CutoffCriterion] = None,
    ctx: Optional[ExecutionContext] = None,
    workspace: Optional[Workspace] = None,
) -> Any:
    """Complex GEMM via three real DGEFMM products (the 3M method).

    ``C <- alpha*op(A)*op(B) + beta*C`` for complex128 operands.  The
    alpha/beta scaling is applied on the assembled complex product (one
    O(mn) pass), keeping the three real multiplies pure.
    """
    ctx = ensure_context(ctx)
    require_matrix("zgefmm_3m", "a", a)
    require_matrix("zgefmm_3m", "b", b)
    require_matrix("zgefmm_3m", "c", c)
    require_writable("zgefmm_3m", "c", c)
    m, k = opshape(a, transa)
    kb, n = opshape(b, transb)
    if kb != k:
        raise DimensionError(
            f"zgefmm_3m: op(A) is {m}x{k} but op(B) is {kb}x{n}"
        )
    if tuple(c.shape) != (m, n):
        raise DimensionError(
            f"zgefmm_3m: C has shape {tuple(c.shape)}, expected {(m, n)}"
        )
    ws = workspace if workspace is not None else Workspace(dry=ctx.dry)

    opa = a.T if transa else a
    opb = b.T if transb else b

    if ctx.dry:
        # three real products (charged through dgefmm's dry path)
        for _ in range(3):
            dgefmm(opa, opb, c, 1.0, 0.0, cutoff=cutoff, ctx=ctx,
                   workspace=ws)
        return c

    # the real halves inherit C's precision: complex64 products run the
    # three real multiplies in float32, complex128 in float64
    rdt = np.empty(0, dtype=c.dtype).real.dtype
    ar = np.asfortranarray(np.ascontiguousarray(opa.real).astype(rdt))
    ai = np.asfortranarray(np.ascontiguousarray(opa.imag).astype(rdt))
    br = np.asfortranarray(np.ascontiguousarray(opb.real).astype(rdt))
    bi = np.asfortranarray(np.ascontiguousarray(opb.imag).astype(rdt))

    t1 = np.zeros((m, n), dtype=rdt, order="F")
    t2 = np.zeros((m, n), dtype=rdt, order="F")
    t3 = np.zeros((m, n), dtype=rdt, order="F")
    dgefmm(ar, br, t1, cutoff=cutoff, ctx=ctx, workspace=ws)
    dgefmm(ai, bi, t2, cutoff=cutoff, ctx=ctx, workspace=ws)
    dgefmm(
        np.asfortranarray(ar + ai), np.asfortranarray(br + bi), t3,
        cutoff=cutoff, ctx=ctx, workspace=ws,
    )
    prod = (t1 - t2) + 1j * (t3 - t1 - t2)
    if alpha != 1.0:
        prod *= alpha
    if beta == 0.0:
        c[...] = prod
    else:
        if beta != 1.0:
            c *= beta
        c += prod
    return c
