"""STRASSEN2 — the paper's Figure 1 schedule (three temporaries).

STRASSEN2 is the paper's key memory innovation: by making the *recursive*
operation a full multiply-accumulate ``C <- alpha*A*B + beta*C`` (which
DGEFMM itself supports), the Winograd variant can be scheduled so that C's
own storage holds the evolving partial sums, leaving only the three
minimal temporaries

    R1 (m/2 x k/2),  R2 (k/2 x n/2),  R3 (m/2 x n/2)

— total extra memory bounded by ``(mk + kn + mn)/3`` over the whole
recursion (``m^2`` for square operands), even in the general ``beta != 0``
case.  The paper cites [14] for the proof that three is the minimum.

The 21-step schedule below is the paper's Figure 1.  Step numbering,
destinations (R1/R2/R3/C quadrants) and the algorithmic variable each step
realizes are kept as comments in the paper's own notation.  The sign
convention for T4/P4 follows the figure: ``R2 <- alpha*(B21 - T2)`` is
``-alpha*T4`` (with T4 = T2 - B21 as in :mod:`repro.core.winograd`), so
C21 accumulates ``-alpha*P4`` via its first touch and ``+alpha*U3`` later.

Recursive multiplications (7 of them: steps 3, 8, 10, 11, 14, 16, 19) go
back through the driver callback, so cutoff testing and dynamic peeling
apply at every level.

The three temporaries come from the workspace object, never the heap:
under a pooled arena (:mod:`repro.core.pool`) the R1/R2/R3 slots of
every recursion level land at identical bump-allocator offsets call
after call, which is what lets repeated same-shape multiplies run with
zero fresh allocations.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.blas.addsub import NUMERIC_KERNELS, BlockKernels
from repro.context import ExecutionContext
from repro.core.workspace import Workspace

__all__ = ["strassen2_level"]

#: recursive multiply-accumulate: recurse(a, b, c, alpha, beta)
RecurseFn = Callable[[Any, Any, Any, float, float], None]


def strassen2_level(
    a: Any,
    b: Any,
    c: Any,
    alpha: float,
    beta: float,
    *,
    ctx: ExecutionContext,
    ws: Workspace,
    recurse: RecurseFn,
    kernels: Optional[BlockKernels] = None,
) -> None:
    """One level of the STRASSEN2 schedule: ``C <- alpha*A*B + beta*C``.

    All of m, k, n must be even (the driver peels odd dimensions first).
    ``kernels`` selects the block-addition kernel set (default: the
    numeric kernels; the plan compiler passes a recording set).
    """
    em = kernels if kernels is not None else NUMERIC_KERNELS
    m, k = a.shape
    n = b.shape[1]
    hm, hk, hn = m // 2, k // 2, n // 2

    a11, a12, a21, a22 = a[:hm, :hk], a[:hm, hk:], a[hm:, :hk], a[hm:, hk:]
    b11, b12, b21, b22 = b[:hk, :hn], b[:hk, hn:], b[hk:, :hn], b[hk:, hn:]
    c11, c12, c21, c22 = c[:hm, :hn], c[:hm, hn:], c[hm:, :hn], c[hm:, hn:]

    dt = getattr(c, "dtype", None) or "float64"
    with ws.frame():
        r1 = ws.alloc(hm, hk, dt)
        r2 = ws.alloc(hk, hn, dt)
        r3 = ws.alloc(hm, hn, dt)

        # -- paper Figure 1, steps 1-21 --------------------------------- #
        em.madd(a21, a22, r1, alpha, ctx=ctx)     # 1  R1 = alpha*S1
        em.msub(b12, b11, r2, ctx=ctx)            # 2  R2 = T1
        recurse(r1, r2, r3, 1.0, 0.0)             # 3  R3 = alpha*P5
        em.axpby(1.0, r3, beta, c22, ctx=ctx)     # 4  C22 = beta*C22 + a*P5
        em.axpby(1.0, r3, beta, c12, ctx=ctx)     # 5  C12 = beta*C12 + a*P5
        em.axpby(-alpha, a11, 1.0, r1, ctx=ctx)   # 6  R1 = alpha*S2
        em.msub(b22, r2, r2, ctx=ctx)             # 7  R2 = T2
        recurse(a11, b11, r3, alpha, 0.0)         # 8  R3 = alpha*P1
        em.axpby(1.0, r3, beta, c11, ctx=ctx)     # 9  C11 = beta*C11 + a*P1
        recurse(r1, r2, r3, 1.0, 1.0)             # 10 R3 += a*P6 (= a*U2)
        recurse(a12, b21, c11, alpha, 1.0)        # 11 C11 += alpha*P2
        em.axpby(alpha, a12, -1.0, r1, ctx=ctx)   # 12 R1 = alpha*S4
        em.axpby(alpha, b21, -alpha, r2, ctx=ctx)  # 13 R2 = -alpha*T4
        recurse(r1, b22, c12, 1.0, 1.0)           # 14 C12 += alpha*P3
        em.accum(r3, c12, ctx=ctx)                # 15 C12 += alpha*U2
        recurse(a22, r2, c21, 1.0, beta)          # 16 C21 = b*C21 - a*P4
        em.msub(a11, a21, r1, alpha, ctx=ctx)     # 17 R1 = alpha*S3
        em.msub(b22, b12, r2, ctx=ctx)            # 18 R2 = T3
        recurse(r1, r2, r3, 1.0, 1.0)             # 19 R3 += a*P7 (= a*U3)
        em.accum(r3, c21, ctx=ctx)                # 20 C21 += alpha*U3
        em.accum(r3, c22, ctx=ctx)                # 21 C22 += alpha*U3
