"""The textbook Winograd schedule: minimal additions, maximal memory.

The Winograd variant needs only 15 block additions when every S, T and P
may live in its own temporary (Section 2's stage-(4) U-tree reuses the
partial sums U2 and U3).  The paper's STRASSEN1/STRASSEN2 schedules trade
a few extra additions for drastically less memory; this module implements
the other end of that trade as a reference point:

- temporaries per level: S1, S2, S4 (m/2 x k/2) + T1, T2, T4 (k/2 x n/2)
  + P1..P7 (m/2 x n/2) — S3/T3 reuse the S1/T1 slots once those are dead
  — about ``3(mk + kn)/4 + 7mn/4`` per level (vs STRASSEN2's
  ``(mk + kn + mn)/4``);
- block additions per level: exactly 15 (8 in stages 1-2, 7 in stage 4).

The ablation benchmark measures both sides of the trade; DGEFMM exposes
the schedule as ``scheme="textbook"`` so the comparison runs through the
identical driver (cutoffs, peeling, instrumentation).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.blas.addsub import NUMERIC_KERNELS, BlockKernels
from repro.context import ExecutionContext
from repro.core.workspace import Workspace

__all__ = ["textbook_level"]

RecurseFn = Callable[[Any, Any, Any, float, float], None]


def textbook_level(
    a: Any,
    b: Any,
    c: Any,
    alpha: float,
    beta: float,
    *,
    ctx: ExecutionContext,
    ws: Workspace,
    recurse: RecurseFn,
    kernels: Optional[BlockKernels] = None,
) -> None:
    """One Winograd level with the minimal-addition (15-add) schedule.

    All of m, k, n must be even.  ``C <- alpha*A*B + beta*C``.
    """
    em = kernels if kernels is not None else NUMERIC_KERNELS
    m, k = a.shape
    n = b.shape[1]
    hm, hk, hn = m // 2, k // 2, n // 2
    dt = getattr(c, "dtype", None) or "float64"

    a11, a12, a21, a22 = a[:hm, :hk], a[:hm, hk:], a[hm:, :hk], a[hm:, hk:]
    b11, b12, b21, b22 = b[:hk, :hn], b[:hk, hn:], b[hk:, :hn], b[hk:, hn:]
    c11, c12, c21, c22 = c[:hm, :hn], c[:hm, hn:], c[hm:, :hn], c[hm:, hn:]

    with ws.frame():
        s1 = ws.alloc(hm, hk, dt)
        s2 = ws.alloc(hm, hk, dt)
        s4 = ws.alloc(hm, hk, dt)
        t1 = ws.alloc(hk, hn, dt)
        t2 = ws.alloc(hk, hn, dt)
        t4 = ws.alloc(hk, hn, dt)
        ps = [ws.alloc(hm, hn, dt) for _ in range(7)]
        p1, p2, p3, p4, p5, p6, p7 = ps

        # stages (1)/(2): 8 additions (S3/T3 reuse the S1/T1 buffers
        # after P5 is computed)
        em.madd(a21, a22, s1, ctx=ctx)            # S1
        em.msub(s1, a11, s2, ctx=ctx)             # S2
        em.msub(a12, s2, s4, ctx=ctx)             # S4
        em.msub(b12, b11, t1, ctx=ctx)            # T1
        em.msub(b22, t1, t2, ctx=ctx)             # T2
        em.msub(t2, b21, t4, ctx=ctx)             # T4

        # stage (3): 7 recursive products
        recurse(a11, b11, p1, 1.0, 0.0)
        recurse(a12, b21, p2, 1.0, 0.0)
        recurse(s4, b22, p3, 1.0, 0.0)
        recurse(a22, t4, p4, 1.0, 0.0)
        recurse(s1, t1, p5, 1.0, 0.0)
        recurse(s2, t2, p6, 1.0, 0.0)
        em.msub(a11, a21, s1, ctx=ctx)            # S3 (reuses S1's buffer)
        em.msub(b22, b12, t1, ctx=ctx)            # T3 (reuses T1's buffer)
        recurse(s1, t1, p7, 1.0, 0.0)

        # stage (4): the U-tree (its 7 additions are the steps marked U;
        # the four axpby merges are the beta-scaled writes into C, which
        # the C-reuse schedules get for free by computing products in
        # place — the measured reason "15 adds" does not mean fastest)
        em.accum(p1, p6, ctx=ctx)                 # U2 = P1 + P6
        em.accum(p1, p2, ctx=ctx)                 # U1 = P1 + P2
        em.accum(p6, p7, ctx=ctx)                 # U3 = U2 + P7
        em.axpby(alpha, p2, beta, c11, ctx=ctx)   # C11 <- b C11 + a U1
        em.axpby(alpha, p7, beta, c21, ctx=ctx)
        em.axpby(-alpha, p4, 1.0, c21, ctx=ctx)   # U6 fold: C21 gets U3 - P4
        em.axpby(alpha, p7, beta, c22, ctx=ctx)
        em.axpby(alpha, p5, 1.0, c22, ctx=ctx)    # U7 fold: C22 gets U3 + P5
        em.accum(p6, p5, ctx=ctx)                 # U4 = U2 + P5
        em.accum(p5, p3, ctx=ctx)                 # U5 = U4 + P3
        em.axpby(alpha, p3, beta, c12, ctx=ctx)   # C12 <- b C12 + a U5
