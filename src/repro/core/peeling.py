"""Dynamic peeling for odd dimensions (paper Sections 2 and 3.3).

When any of (m, k, n) is odd, DGEFMM strips the trailing row/column,
applies Strassen's construction to the even core, and applies the peeled
contributions as *fix-up* work.  Partitioning (paper eq. 9, all dims odd)::

    A = [[A11, a12],      B = [[B11, b12],
         [a21, a22]]           [b21, b22]]

    C11 <- alpha*(A11 B11 + a12 b21) + beta*C11     (core + rank-one DGER)
    c12 <- alpha*[A11 a12][b12; b22] + beta*c12     (one DGEMV, full k)
    [c21 c22] <- alpha*[a21 a22] B + beta*[c21 c22] (one DGEMV^T, full k,n)

The three steps are exactly the paper's combined fix-up: one BLAS rank-one
update plus two matrix-vector products — no special cases inside the
Strassen schedules and no extra temporary memory.

This module provides the fix-up executors and the even-core operand
views; the *decision* that a node peels (and the even-core dimension
arithmetic) lives in :mod:`repro.core.traversal`, whose nodes the
drivers consume.  Peeling is *dynamic*: it happens at each level where
it is needed, not once up front.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.blas.level2 import dgemv, dger
from repro.context import ExecutionContext

__all__ = [
    "apply_fixups",
    "apply_fixups_head",
    "core_views",
    "fixup_ops",
]


def core_views(a: Any, b: Any, c: Any, side: str = "tail"):
    """Even-core operand views for the chosen peeling side.

    ``side="tail"`` (the paper's choice) strips the *last* row/column of
    each odd dimension; ``side="head"`` strips the *first* — one of the
    "alternate peeling techniques" the paper's future work proposes
    investigating.  Head peeling produces non-contiguous-leading cores
    (offset views), which on real column-major BLAS would shift panel
    alignment; numpy strides make it free here, and the op/time costs
    are identical by symmetry — which the ablation test verifies.
    """
    m, k = a.shape
    n = b.shape[1]
    mo, ko, no = m & 1, k & 1, n & 1
    if side == "tail":
        return a[: m - mo, : k - ko], b[: k - ko, : n - no], c[: m - mo, : n - no]
    if side == "head":
        return a[mo:, ko:], b[ko:, no:], c[mo:, no:]
    raise ValueError(f"unknown peeling side {side!r}")


def apply_fixups(
    a: Any,
    b: Any,
    c: Any,
    alpha: float,
    beta: float,
    *,
    ctx: Optional[ExecutionContext] = None,
) -> None:
    """Apply the peeling fix-up contributions to ``C`` in place.

    ``a``, ``b``, ``c`` are the full (possibly odd-dimensioned) operands,
    *after* transposition has been resolved to plain views; the even core
    ``C[:mp,:np] += alpha*A[:mp,:kp] B[:kp,:np]`` must already have been
    computed (with its ``beta`` scaling).  The fix-ups are:

    - ``k`` odd:  DGER rank-one update of the core block with the peeled
      column of A times the peeled row of B;
    - ``n`` odd:  DGEMV for the last column of C (uses the **full** k,
      covering both the core and peeled-k contributions);
    - ``m`` odd:  transposed DGEMV for the last row of C (full k and n,
      including the bottom-right corner element).
    """
    m, k = a.shape
    n = b.shape[1]
    mp, kp, np_ = m - (m & 1), k - (k & 1), n - (n & 1)
    if kp < k and mp and np_:
        # C11 += alpha * a12 * b21^T   (rank-one, paper's first fix-up)
        dger(a[:mp, kp], b[kp, :np_], c[:mp, :np_], alpha=alpha, ctx=ctx)
    if np_ < n and mp:
        # c12 <- alpha * A[:mp, :] * B[:, n-1] + beta * c12   (full k)
        dgemv(
            a[:mp, :], b[:, np_], c[:mp, np_],
            alpha=alpha, beta=beta, ctx=ctx,
        )
    if mp < m:
        # [c21 c22] <- alpha * B^T * A[m-1, :]^T + beta * row   (full k, n)
        dgemv(
            b, a[mp, :], c[mp, :],
            alpha=alpha, beta=beta, trans=True, ctx=ctx,
        )


def apply_fixups_head(
    a: Any,
    b: Any,
    c: Any,
    alpha: float,
    beta: float,
    *,
    ctx: Optional[ExecutionContext] = None,
) -> None:
    """Head-side fix-ups: mirror image of :func:`apply_fixups`.

    The stripped *first* row/column contributions: a rank-one update of
    the core with A's first column times B's first row (k odd), a DGEMV
    for C's first column (n odd, full k), and a transposed DGEMV for C's
    first row (m odd, full k and n).
    """
    m, k = a.shape
    n = b.shape[1]
    mo, ko, no = m & 1, k & 1, n & 1
    if ko and m - mo and n - no:
        dger(a[mo:, 0], b[0, no:], c[mo:, no:], alpha=alpha, ctx=ctx)
    if no and m - mo:
        dgemv(a[mo:, :], b[:, 0], c[mo:, 0], alpha=alpha, beta=beta, ctx=ctx)
    if mo:
        dgemv(b, a[0, :], c[0, :], alpha=alpha, beta=beta, trans=True,
              ctx=ctx)


def fixup_ops(m: int, k: int, n: int) -> float:
    """Operation count of the fix-up work for one peeled level.

    DGER on (mp x np): 2*mp*np; DGEMV column: 2*mp*k; DGEMV row: 2*n*k —
    only the terms for the dimensions that are actually odd.  Used by the
    op-count model extension and tests.
    """
    mp, kp, np_ = m - (m & 1), k - (k & 1), n - (n & 1)
    ops = 0.0
    if kp < k:
        ops += 2.0 * mp * np_
    if np_ < n:
        ops += 2.0 * mp * k
    if mp < m:
        ops += 2.0 * n * k
    return ops
