"""Dynamic peeling for non-divisible dimensions (paper Sections 2, 3.3).

When a dimension is not divisible by the scheme's partition divisor,
DGEFMM strips the remainder rows/columns, applies the fast construction
to the divisor-exact core, and applies the peeled contributions as
*fix-up* work.  Partitioning for the classic 2x2 case (paper eq. 9, all
dims odd)::

    A = [[A11, a12],      B = [[B11, b12],
         [a21, a22]]           [b21, b22]]

    C11 <- alpha*(A11 B11 + a12 b21) + beta*C11     (core + rank-one DGER)
    c12 <- alpha*[A11 a12][b12; b22] + beta*c12     (one DGEMV, full k)
    [c21 c22] <- alpha*[a21 a22] B + beta*[c21 c22] (one DGEMV^T, full k,n)

The three steps are exactly the paper's combined fix-up: one BLAS
rank-one update plus two matrix-vector products — no special cases
inside the Strassen schedules and no extra temporary memory.  For a
⟨3,3,3⟩ scheme a dimension can peel *two* indices; the construction
generalises index-wise (one DGER per peeled k column, one DGEMV per
peeled n column, one transposed DGEMV per peeled m row) — the
``divisors`` argument carries the scheme's partition shape.

This module provides the fix-up executors and the divisor-exact-core
operand views; the *decision* that a node peels (and the core dimension
arithmetic) lives in :mod:`repro.core.traversal`, whose nodes the
drivers consume.  Peeling is *dynamic*: it happens at each level where
it is needed, not once up front.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

from repro.blas.level2 import dgemv, dger
from repro.context import ExecutionContext

__all__ = [
    "apply_fixups",
    "apply_fixups_head",
    "core_views",
    "fixup_ops",
]


def core_views(
    a: Any,
    b: Any,
    c: Any,
    side: str = "tail",
    divisors: Tuple[int, int, int] = (2, 2, 2),
):
    """Divisor-exact core operand views for the chosen peeling side.

    ``side="tail"`` (the paper's choice) strips the *last* rows/columns
    of each non-divisible dimension; ``side="head"`` strips the *first*
    — one of the "alternate peeling techniques" the paper's future work
    proposes investigating.  Head peeling produces non-contiguous-
    leading cores (offset views), which on real column-major BLAS would
    shift panel alignment; numpy strides make it free here, and the
    op/time costs are identical by symmetry — which the ablation test
    verifies.
    """
    m, k = a.shape
    n = b.shape[1]
    dm, dk, dn = divisors
    mo, ko, no = m % dm, k % dk, n % dn
    if side == "tail":
        return a[: m - mo, : k - ko], b[: k - ko, : n - no], c[: m - mo, : n - no]
    if side == "head":
        return a[mo:, ko:], b[ko:, no:], c[mo:, no:]
    raise ValueError(f"unknown peeling side {side!r}")


def apply_fixups(
    a: Any,
    b: Any,
    c: Any,
    alpha: float,
    beta: float,
    *,
    ctx: Optional[ExecutionContext] = None,
    divisors: Tuple[int, int, int] = (2, 2, 2),
) -> None:
    """Apply the peeling fix-up contributions to ``C`` in place.

    ``a``, ``b``, ``c`` are the full (possibly non-divisible) operands,
    *after* transposition has been resolved to plain views; the core
    ``C[:mp,:np] += alpha*A[:mp,:kp] B[:kp,:np]`` must already have been
    computed (with its ``beta`` scaling).  The fix-ups, one BLAS call
    per peeled index:

    - each peeled ``k`` column: DGER rank-one update of the core block
      with that column of A times the matching row of B;
    - each peeled ``n`` column: DGEMV for that column of C (uses the
      **full** k, covering both the core and peeled-k contributions);
    - each peeled ``m`` row: transposed DGEMV for that row of C (full k
      and n, including the bottom-right corner block).
    """
    m, k = a.shape
    n = b.shape[1]
    dm, dk, dn = divisors
    mp, kp, np_ = m - m % dm, k - k % dk, n - n % dn
    if kp < k and mp and np_:
        # C11 += alpha * a1j * bj1^T   (rank-one per peeled column)
        for j in range(kp, k):
            dger(a[:mp, j], b[j, :np_], c[:mp, :np_], alpha=alpha, ctx=ctx)
    if np_ < n and mp:
        # c1j <- alpha * A[:mp, :] * B[:, j] + beta * c1j   (full k)
        for j in range(np_, n):
            dgemv(
                a[:mp, :], b[:, j], c[:mp, j],
                alpha=alpha, beta=beta, ctx=ctx,
            )
    if mp < m:
        # row i <- alpha * B^T * A[i, :]^T + beta * row   (full k, n)
        for i in range(mp, m):
            dgemv(
                b, a[i, :], c[i, :],
                alpha=alpha, beta=beta, trans=True, ctx=ctx,
            )


def apply_fixups_head(
    a: Any,
    b: Any,
    c: Any,
    alpha: float,
    beta: float,
    *,
    ctx: Optional[ExecutionContext] = None,
    divisors: Tuple[int, int, int] = (2, 2, 2),
) -> None:
    """Head-side fix-ups: mirror image of :func:`apply_fixups`.

    The stripped *first* rows/columns contributions: a rank-one update
    of the core with A's leading columns times B's leading rows (per
    peeled k index), a DGEMV per peeled leading column of C (full k),
    and a transposed DGEMV per peeled leading row of C (full k and n).
    """
    m, k = a.shape
    n = b.shape[1]
    dm, dk, dn = divisors
    mo, ko, no = m % dm, k % dk, n % dn
    if ko and m - mo and n - no:
        for j in range(ko):
            dger(a[mo:, j], b[j, no:], c[mo:, no:], alpha=alpha, ctx=ctx)
    if no and m - mo:
        for j in range(no):
            dgemv(a[mo:, :], b[:, j], c[mo:, j], alpha=alpha, beta=beta,
                  ctx=ctx)
    if mo:
        for i in range(mo):
            dgemv(b, a[i, :], c[i, :], alpha=alpha, beta=beta, trans=True,
                  ctx=ctx)


def fixup_ops(
    m: int, k: int, n: int, divisors: Tuple[int, int, int] = (2, 2, 2)
) -> float:
    """Operation count of the fix-up work for one peeled level.

    Per peeled k column: DGER on (mp x np), 2*mp*np; per peeled n
    column: DGEMV, 2*mp*k; per peeled m row: DGEMV, 2*n*k — only for
    the dimensions that actually carry a remainder.  Used by the
    op-count model extension and tests.
    """
    dm, dk, dn = divisors
    mo, ko, no = m % dm, k % dk, n % dn
    mp, np_ = m - mo, n - no
    ops = 0.0
    if ko:
        ops += ko * 2.0 * mp * np_
    if no:
        ops += no * 2.0 * mp * k
    if mo:
        ops += mo * 2.0 * n * k
    return ops
