"""The Winograd variant's stage equations (paper Section 2), as an oracle.

Winograd's variant of Strassen's algorithm (credited to M. Paterson) uses
7 block multiplications and 15 block additions/subtractions.  With inputs
partitioned into 2x2 blocks

    A = [[A11, A12],    B = [[B11, B12],
         [A21, A22]]         [B21, B22]]

the four stages are:

Stage (1) — four S sums on A's blocks::

    S1 = A21 + A22        S2 = S1 - A11
    S3 = A11 - A21        S4 = A12 - S2

Stage (2) — four T sums on B's blocks::

    T1 = B12 - B11        T2 = B22 - T1
    T3 = B22 - B12        T4 = T2 - B21

Stage (3) — seven products::

    P1 = A11 * B11        P2 = A12 * B21       P3 = S4 * B22
    P4 = A22 * T4         P5 = S1 * T1         P6 = S2 * T2
    P7 = S3 * T3

Stage (4) — seven sums::

    U1 = P1 + P2          U2 = P1 + P6         U3 = U2 + P7
    U4 = U2 + P5          U5 = U4 + P3         U6 = U3 - P4
    U7 = U3 + P5

with ``C11 = U1, C12 = U5, C21 = U6, C22 = U7``.

(The sign convention ``T4 = T2 - B21`` with ``C21 = U3 - P4`` is the one
used by Douglas et al.; the paper's Figure 1 schedule folds the opposite
sign into its accumulation order — both are verified equivalent by the
test suite.)

This module implements the stages directly with plain numpy on explicit
blocks.  It exists as an *oracle*: the optimized STRASSEN1/STRASSEN2
schedules and every comparator are tested against it block-for-block.  It
is also the clearest executable statement of the algorithm for readers.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

__all__ = [
    "split_blocks",
    "join_blocks",
    "winograd_stages",
    "winograd_multiply",
    "strassen_original_stages",
    "strassen_original_multiply",
    "WINOGRAD_MULTIPLIES",
    "WINOGRAD_ADDS",
    "STRASSEN_MULTIPLIES",
    "STRASSEN_ADDS",
]

#: block-operation counts quoted throughout the paper's Section 2
WINOGRAD_MULTIPLIES = 7
WINOGRAD_ADDS = 15
STRASSEN_MULTIPLIES = 7
STRASSEN_ADDS = 18


def split_blocks(x: np.ndarray) -> Tuple[np.ndarray, ...]:
    """Split an even-dimensioned matrix into its four half blocks.

    Returns views ``(X11, X12, X21, X22)``.
    """
    m, n = x.shape
    if m % 2 or n % 2:
        raise ValueError(f"split_blocks requires even dims, got {(m, n)}")
    h, w = m // 2, n // 2
    return x[:h, :w], x[:h, w:], x[h:, :w], x[h:, w:]


def join_blocks(
    c11: np.ndarray, c12: np.ndarray, c21: np.ndarray, c22: np.ndarray
) -> np.ndarray:
    """Assemble four blocks into one matrix (inverse of split_blocks)."""
    return np.block([[c11, c12], [c21, c22]])


def winograd_stages(
    a: np.ndarray, b: np.ndarray
) -> Dict[str, np.ndarray]:
    """All intermediate quantities of the Winograd variant, by name.

    One level only; the seven products use the standard algorithm.
    Returns a dict with keys S1..S4, T1..T4, P1..P7, U1..U7, C11..C22.
    Used by tests to pin down every stage, not just the final product.
    """
    a11, a12, a21, a22 = split_blocks(np.asarray(a, dtype=np.float64))
    b11, b12, b21, b22 = split_blocks(np.asarray(b, dtype=np.float64))

    s1 = a21 + a22
    s2 = s1 - a11
    s3 = a11 - a21
    s4 = a12 - s2

    t1 = b12 - b11
    t2 = b22 - t1
    t3 = b22 - b12
    t4 = t2 - b21

    p1 = a11 @ b11
    p2 = a12 @ b21
    p3 = s4 @ b22
    p4 = a22 @ t4
    p5 = s1 @ t1
    p6 = s2 @ t2
    p7 = s3 @ t3

    u1 = p1 + p2
    u2 = p1 + p6
    u3 = u2 + p7
    u4 = u2 + p5
    u5 = u4 + p3
    u6 = u3 - p4
    u7 = u3 + p5

    return {
        "S1": s1, "S2": s2, "S3": s3, "S4": s4,
        "T1": t1, "T2": t2, "T3": t3, "T4": t4,
        "P1": p1, "P2": p2, "P3": p3, "P4": p4, "P5": p5, "P6": p6, "P7": p7,
        "U1": u1, "U2": u2, "U3": u3, "U4": u4, "U5": u5, "U6": u6, "U7": u7,
        "C11": u1, "C12": u5, "C21": u6, "C22": u7,
    }


def winograd_multiply(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """One level of the Winograd variant (oracle); requires even dims."""
    st = winograd_stages(a, b)
    return join_blocks(st["C11"], st["C12"], st["C21"], st["C22"])


def strassen_original_stages(
    a: np.ndarray, b: np.ndarray
) -> Dict[str, np.ndarray]:
    """Strassen's original 1969 construction: 7 multiplies, 18 add/subs.

    Using the customary naming (M1..M7)::

        M1 = (A11 + A22)(B11 + B22)
        M2 = (A21 + A22) B11
        M3 = A11 (B12 - B22)
        M4 = A22 (B21 - B11)
        M5 = (A11 + A12) B22
        M6 = (A21 - A11)(B11 + B12)
        M7 = (A12 - A22)(B21 + B22)

        C11 = M1 + M4 - M5 + M7      C12 = M3 + M5
        C21 = M2 + M4                C22 = M1 - M2 + M3 + M6

    (10 pre-addition + 8 post-addition block operations = 18.)
    """
    a11, a12, a21, a22 = split_blocks(np.asarray(a, dtype=np.float64))
    b11, b12, b21, b22 = split_blocks(np.asarray(b, dtype=np.float64))

    m1 = (a11 + a22) @ (b11 + b22)
    m2 = (a21 + a22) @ b11
    m3 = a11 @ (b12 - b22)
    m4 = a22 @ (b21 - b11)
    m5 = (a11 + a12) @ b22
    m6 = (a21 - a11) @ (b11 + b12)
    m7 = (a12 - a22) @ (b21 + b22)

    c11 = m1 + m4 - m5 + m7
    c12 = m3 + m5
    c21 = m2 + m4
    c22 = m1 - m2 + m3 + m6

    return {
        "M1": m1, "M2": m2, "M3": m3, "M4": m4, "M5": m5, "M6": m6, "M7": m7,
        "C11": c11, "C12": c12, "C21": c21, "C22": c22,
    }


def strassen_original_multiply(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """One level of Strassen's original algorithm (oracle); even dims."""
    st = strassen_original_stages(a, b)
    return join_blocks(st["C11"], st["C12"], st["C21"], st["C22"])
