"""Numerical stability of Strassen-type multiplication (paper Section 1).

The paper's opening rests on Brent's and Higham's analyses: Strassen's
algorithm "is stable enough to be studied further and considered
seriously".  The results, for computing C = A*B with d recursion levels
above base blocks of order m0 (Higham, *Accuracy and Stability of
Numerical Algorithms*; originally Brent 1970):

- standard algorithm (componentwise):
  ``|C - C_hat| <= k u |A| |B| + O(u^2)``
- Strassen/Winograd variants (normwise only):
  ``||C - C_hat||_M <= f(d, m0) u ||A||_M ||B||_M + O(u^2)``
  with ``||X||_M = max |x_ij|`` and a growth factor

      f_strassen(d, m0)  = (m0^2 + 5 m0) 12^d - 5 * 4^d    (original)
      f_winograd(d, m0)  = (m0^2 + 6 m0) 18^d - 6 * 4^d    (Winograd)

  (constants per Higham's Theorem 23.3 and its Winograd analogue) —
  polynomial in the problem size since d <= lg(m/m0), far milder than
  the early folklore "Strassen is unstable" suggested, and strongly
  dependent on the cutoff: a larger m0 (earlier cutoff) means a smaller
  growth factor, one more quiet advantage of stopping recursion early.

This module provides the bounds and an empirical error probe; the test
suite verifies that measured errors respect the bounds and that error
grows with recursion depth in the predicted gentle fashion.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from repro.blas.dtypes import unit_roundoff

__all__ = [
    "UNIT_ROUNDOFF",
    "standard_growth",
    "strassen_growth",
    "winograd_growth",
    "normwise_bound",
    "measure_error",
]

#: IEEE double unit roundoff (the default precision; per-dtype values
#: come from :func:`repro.blas.dtypes.unit_roundoff`)
UNIT_ROUNDOFF = 2.0**-53


def standard_growth(k: int) -> float:
    """Growth factor of the standard algorithm's componentwise bound.

    ``|C - C_hat| <= k u |A||B|`` for an inner dimension k.
    """
    return float(k)


def strassen_growth(d: int, m0: int) -> float:
    """Normwise growth factor of Strassen's original algorithm.

    ``f(d, m0) = (m0^2 + 5 m0) 12^d - 5 * 4^d`` (Higham Thm. 23.3).
    """
    if d < 0 or m0 < 1:
        raise ValueError(f"invalid (d, m0) = ({d}, {m0})")
    return (m0**2 + 5.0 * m0) * 12.0**d - 5.0 * 4.0**d


def winograd_growth(d: int, m0: int) -> float:
    """Normwise growth factor of the Winograd variant.

    Same shape with base 18 (the variant's longer accumulation chains):
    ``f(d, m0) = (m0^2 + 6 m0) 18^d - 6 * 4^d``.
    """
    if d < 0 or m0 < 1:
        raise ValueError(f"invalid (d, m0) = ({d}, {m0})")
    return (m0**2 + 6.0 * m0) * 18.0**d - 6.0 * 4.0**d


def normwise_bound(
    a: np.ndarray,
    b: np.ndarray,
    d: int,
    m0: int,
    *,
    variant: str = "winograd",
    dtype: str = "float64",
) -> float:
    """Right-hand side of the normwise error bound for C = A*B.

    ``f(d, m0) * u * ||A||_M * ||B||_M`` with max-norms, where ``u`` is
    the unit roundoff of ``dtype`` (``2^-53`` for the double precisions,
    ``2^-24`` for the singles, ``0`` for the exact dtypes — for which
    the bound correctly degenerates to "no error is tolerated").
    """
    f = {"winograd": winograd_growth, "strassen": strassen_growth}[variant]
    na = float(np.max(np.abs(a))) if a.size else 0.0
    nb = float(np.max(np.abs(b))) if b.size else 0.0
    return f(d, m0) * unit_roundoff(dtype) * na * nb


def measure_error(
    multiply: Callable[[np.ndarray, np.ndarray, np.ndarray], None],
    m: int,
    *,
    seed: int = 0,
    reference: Optional[Callable] = None,
    dtype: str = "float64",
) -> Tuple[float, float]:
    """(max abs error, max-norm bound denominator) of one multiply.

    ``multiply(a, b, c)`` computes ``c <- a*b``; the error is measured
    against a higher-accuracy reference — for the narrow dtypes the
    operands are lifted to their wide counterpart before the ``@``
    (so the reference's own rounding does not pollute the measurement),
    for the doubles numpy's dot is used directly (backward error ~k*u,
    negligible against Strassen's).  Returns
    (max |C - C_ref|, ||A||_M * ||B||_M) so callers can express the
    error in units of ``u * ||A|| * ||B||``.
    """
    from repro.blas.dtypes import WIDE, canonical_dtype

    dt = canonical_dtype(dtype)
    rng = np.random.default_rng(seed)
    a = rng.uniform(-1.0, 1.0, (m, m))
    b = rng.uniform(-1.0, 1.0, (m, m))
    if np.dtype(dt).kind == "c":
        a = a + 1j * rng.uniform(-1.0, 1.0, (m, m))
        b = b + 1j * rng.uniform(-1.0, 1.0, (m, m))
    a = np.asfortranarray(a.astype(dt))
    b = np.asfortranarray(b.astype(dt))
    c = np.zeros((m, m), dtype=dt, order="F")
    multiply(a, b, c)
    wide = WIDE.get(dt)
    if wide is not None:
        ref = a.astype(wide) @ b.astype(wide)
    else:
        ref = a @ b
    err = float(np.max(np.abs(c.astype(ref.dtype) - ref)))
    denom = float(np.max(np.abs(a)) * np.max(np.abs(b)))
    return err, denom
