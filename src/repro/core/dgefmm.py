"""DGEFMM — the paper's drop-in replacement for Level 3 BLAS DGEMM.

``dgefmm`` computes ``C <- alpha * op(A) * op(B) + beta * C`` exactly like
DGEMM (Section 3.1), but multiplies by the Winograd variant of Strassen's
algorithm whenever the cutoff criterion says a recursion level pays off:

1. **Cutoff test** (Section 3.4): the criterion (default: the paper's
   hybrid condition, eq. 15) decides recurse-vs-base at *every* level; the
   base case calls the standard-algorithm :func:`repro.blas.dgemm`.
2. **Dynamic peeling** (Section 3.3): odd dimensions are stripped at each
   level, the Strassen schedule runs on the even core, and the peeled
   row/column contributions are applied with DGER/DGEMV fix-ups.
3. **Scheme dispatch** (Section 3.2): ``beta == 0`` uses STRASSEN1's
   two-temporary variant (extra memory ``(m*max(k,n) + kn)/3``); general
   ``beta`` uses STRASSEN2's three-temporary multiply-accumulate schedule
   (``(mk + kn + mn)/3``) — the Table 1 "DGEFMM" row.

All three choices are made per node by the shared traversal core
(:func:`repro.core.traversal.decide`); this driver is one of its
consumers — it binds the returned nodes to real kernels and workspace.

Example
-------
>>> import numpy as np
>>> from repro import dgefmm
>>> rng = np.random.default_rng(7)
>>> A = rng.standard_normal((300, 300))
>>> B = rng.standard_normal((300, 300))
>>> C = np.zeros((300, 300), order="F")
>>> dgefmm(A, B, C)                                   # doctest: +ELLIPSIS
array(...)
>>> bool(np.allclose(C, A @ B))
True
"""

from __future__ import annotations

from typing import Any, Optional

from repro.blas.addsub import kernels_for
from repro.blas.dtypes import (
    canonical_dtype,
    default_accuracy,
    require_integral_scalar,
)
from repro.blas.level3 import DEFAULT_TILE, dgemm
from repro.blas.validate import (
    copy_on_overlap,
    opshape,
    require_matrix,
    require_writable,
)
from repro.context import (
    ExecutionContext,
    RecursionEvent,
    ensure_context,
)
from repro.core.config import DEFAULT_CUTOFF, SCHEMES, GemmConfig
from repro.core.cutoff import CutoffCriterion
from repro.core.peeling import (
    apply_fixups,
    apply_fixups_head,
    core_views,
)
from repro.core.bdpz import bdpz_level
from repro.core.schemes import LEVEL_SCHEME
from repro.core.strassen1 import (
    strassen1_beta0_level,
    strassen1_general_level,
)
from repro.core.strassen2 import strassen2_level
from repro.core.textbook import textbook_level
from repro.core.traversal import Base, decide
from repro.core.uvw import make_uvw_level
from repro.core.workspace import Workspace
from repro.errors import DimensionError

__all__ = ["dgefmm", "zgefmm", "DEFAULT_CUTOFF", "SCHEMES", "LEVEL_FNS"]

#: Schedule functions by traversal level code.  The plan compiler
#: replays these same functions with recording kernels, so the mapping
#: is defined once, here, next to the driver that executes them live.
#: Hand-written schedules first; every registry level without one
#: (e.g. "l23") gets the generic UVW interpreter built from its
#: coefficients — a new registry scheme is executable with no driver
#: change at all.
LEVEL_FNS = {
    "s1b0": strassen1_beta0_level,
    "s1g": strassen1_general_level,
    "s2": strassen2_level,
    "tb": textbook_level,
    "bdpz": bdpz_level,
}
for _level, _scheme_name in LEVEL_SCHEME.items():
    if _level not in LEVEL_FNS:
        LEVEL_FNS[_level] = make_uvw_level(_scheme_name)
del _level, _scheme_name


def dgefmm(
    a: Any,
    b: Any,
    c: Any,
    alpha: float = 1.0,
    beta: float = 0.0,
    transa: bool = False,
    transb: bool = False,
    *,
    cutoff: Optional[CutoffCriterion] = None,
    scheme: str = "auto",
    peel: str = "tail",
    ctx: Optional[ExecutionContext] = None,
    workspace: Optional[Workspace] = None,
    pool: Optional["WorkspacePool"] = None,
    nb: int = DEFAULT_TILE,
    backend: str = "substrate",
    plan_cache: Optional["PlanCache"] = None,
    fuse: bool = False,
    accuracy: Optional[str] = None,
) -> Any:
    """Strassen-based GEMM: ``C <- alpha*op(A)*op(B) + beta*C`` in place.

    Parameters
    ----------
    a, b, c:
        numpy arrays (any strides — C/Fortran order, non-contiguous and
        negative-stride views all accepted; Fortran order is fastest) or
        Phantoms in dry mode.  ``op(A)`` is m-by-k, ``op(B)`` k-by-n,
        ``C`` m-by-n; ``C`` is mutated and returned.  ``C`` *may* share
        memory with ``A`` or ``B`` (e.g. ``dgefmm(A, B, C=A)``): the
        overlap guard detects this and falls back to a private copy of
        the overlapping input, so the result equals the non-overlapping
        call's exactly (see :func:`repro.blas.validate.copy_on_overlap`).
    alpha, beta:
        DGEMM scalars.  ``beta == 0`` means C's input content is ignored
        — C is *overwritten*, never read, so pre-existing NaN/Inf in C
        does not propagate.  ``alpha == 0`` (or ``k == 0``) skips the
        product entirely and only scales C by beta; an empty C
        (``m == 0`` or ``n == 0``) returns immediately.  None of the
        degenerate cases recurse or touch workspace.
    transa, transb:
        Apply the operation to ``A^T`` / ``B^T`` (views; nothing copied).
    cutoff:
        A :class:`~repro.core.cutoff.CutoffCriterion`; default
        :data:`DEFAULT_CUTOFF`.  Recursion also stops whenever a dimension
        drops below 2.
    scheme:
        ``"auto"`` (the paper's DGEFMM dispatch: STRASSEN1 when beta = 0,
        STRASSEN2 otherwise), or force any registry scheme
        (:data:`repro.core.schemes.SCHEME_NAMES`): ``"strassen1"``,
        ``"strassen2"``, ``"strassen1_general"`` (the general schedule
        at every level, reproducing Table 1's 2m^2 figure),
        ``"textbook"``, ``"bdpz"`` (the Boyer–Dumas–Pernet–Zhou
        two-temporary accumulating Winograd schedule), or
        ``"laderman"`` (the ⟨3,3,3;23⟩ family member) for study.
    peel:
        Odd-dimension peeling side, ``"tail"`` (the paper's: strip the
        last row/column) or ``"head"`` (strip the first) — an alternate
        peeling technique from the paper's future-work list; costs are
        identical by symmetry.
    ctx:
        Instrumentation/simulation context (op counts, model time, trace).
    workspace:
        Workspace to draw temporaries from (default: a fresh one).  The
        peak is reported in ``ctx.stats["workspace_peak_bytes"]``.
    pool:
        A :class:`~repro.core.pool.WorkspacePool` to check a reusable
        arena out of for this call (ignored when ``workspace`` is given,
        and in dry mode, where phantom temporaries cost nothing).
        Repeated same-shape calls through a pool amortize temporary
        allocation to zero after the first, warm-up call.
    nb:
        Tile edge for the base-case standard-algorithm kernel.
    backend:
        Base-case kernel backend (see :data:`repro.blas.level3.BACKENDS`):
        ``"substrate"`` (default, the package's own standard-algorithm
        kernel) or ``"vendor"`` (numpy's BLAS matmul) for modern-host
        practicality experiments.
    plan_cache:
        A :class:`~repro.plan.cache.PlanCache`.  When given (and not in
        dry mode, and no explicit ``workspace`` is supplied), the call
        compiles — or fetches — an execution plan for this problem
        signature and replays it instead of walking the recursion:
        repeated shapes skip all per-call planning, and with ``pool``
        also all allocation.  Results are bit-identical to the
        recursive path; cache counters land in
        ``ctx.stats["plan_cache"]``.
    accuracy:
        Accuracy mode (:data:`repro.blas.dtypes.ACCURACIES`): ``"fast"``
        (native rounding), ``"compensated"`` (wide-promoted / Kahan
        floating point) or ``"exact"`` (integer/object arithmetic,
        integral scalars enforced, no float intermediates).  ``None``
        (the default) resolves per dtype: ``"exact"`` for int64/object
        operands, ``"fast"`` otherwise — so existing float callers and
        integer callers both keep working unannotated.

    The scheme/peel/cutoff/nb/backend/dtype/accuracy knobs are validated
    once, as a :class:`~repro.core.config.GemmConfig`; the same frozen
    config drives the traversal, the plan signature, and the serving
    engine.
    """
    ctx = ensure_context(ctx)
    require_matrix("dgefmm", "a", a)
    require_matrix("dgefmm", "b", b)
    require_matrix("dgefmm", "c", c)
    require_writable("dgefmm", "c", c)
    dt = canonical_dtype(getattr(c, "dtype", None) or "float64")
    if accuracy is None:
        accuracy = default_accuracy(dt)
    cfg = GemmConfig(
        scheme=scheme, peel=peel,
        cutoff=cutoff if cutoff is not None else DEFAULT_CUTOFF,
        nb=nb, backend=backend, fuse=fuse,
        dtype=dt, accuracy=accuracy,
    )
    if cfg.accuracy == "exact":
        # Integral scalars ride through every layer as Python ints, so
        # in-place integer scaling (``y *= beta``) never trips numpy's
        # unsafe-cast refusal and object arrays stay arbitrary-precision.
        alpha = require_integral_scalar("dgefmm", "alpha", alpha)
        beta = require_integral_scalar("dgefmm", "beta", beta)
    m, k = opshape(a, transa)
    kb, n = opshape(b, transb)
    if kb != k:
        raise DimensionError(f"dgefmm: op(A) is {m}x{k} but op(B) is {kb}x{n}")
    if tuple(c.shape) != (m, n):
        raise DimensionError(
            f"dgefmm: C has shape {tuple(c.shape)}, expected {(m, n)}"
        )

    # BLAS degenerate semantics, decided before any workspace or plan
    # machinery spins up: an empty C is a no-op; k == 0 or alpha == 0
    # forms no product and only scales C by beta (overwriting when
    # beta == 0, so NaN/Inf garbage in C never propagates).
    if m == 0 or n == 0:
        ctx.stats_max("workspace_peak_bytes", 0)
        return c
    if k == 0 or alpha == 0.0:
        _scale_only(c, beta, ctx, cfg.accuracy)
        ctx.stats_max("workspace_peak_bytes", 0)
        return c

    # Overlap guard: the schedules write C's quadrants mid-recursion
    # while A/B are still live, so an output that shares memory with an
    # input would be silently corrupted.  Any (conservatively detected)
    # overlapping input is replaced by a private copy first — the
    # documented copy-on-overlap fallback.
    a, b = copy_on_overlap(c, a, b, ctx=ctx)

    if (plan_cache is not None and not ctx.dry and workspace is None
            and cfg.dtype != "object"):
        # plan path: compile once per signature, replay bit-identically.
        # Imported lazily — repro.plan imports this module for the
        # scheme dispatch it compiles through.  Object-dtype problems
        # never plan: plan temporaries are typed views over a byte
        # arena, which object arrays cannot be.
        from repro.plan.compiler import signature_for
        from repro.plan.executor import execute_plan

        sig = signature_for(
            "serial", m, k, n, bool(transa), bool(transb),
            alpha == 0.0, beta == 0.0, dt, cfg,
        )
        plan = plan_cache.get_or_compile(sig)
        execute_plan(
            plan, a.T if transa else a, b.T if transb else b, c,
            alpha, beta, ctx=ctx, pool=pool,
        )
        ctx.stats_set("plan_cache", plan_cache.stats())
        return c

    pooled = False
    if workspace is not None:
        ws = workspace
    elif pool is not None and not ctx.dry and cfg.dtype != "object":
        # pooled arenas carve typed views out of a byte buffer — fine
        # for every fixed-width dtype, impossible for object arrays,
        # which fall back to a plain per-call workspace
        ws = pool.checkout()
        pooled = True
    else:
        ws = Workspace(dry=ctx.dry)
    opa = a.T if transa else a
    opb = b.T if transb else b

    try:
        _rec(opa, opb, c, alpha, beta, 0, cfg, cfg.scheme, ctx, ws)
    except BaseException:
        if pooled:
            pool.release(ws)
        raise

    ctx.stats_max("workspace_peak_bytes", ws.peak_bytes)
    if pooled:
        pool.checkin(ws)
    return c


def zgefmm(
    a: Any,
    b: Any,
    c: Any,
    alpha: complex = 1.0,
    beta: complex = 0.0,
    transa: bool = False,
    transb: bool = False,
    **kwargs: Any,
) -> Any:
    """Complex GEMM by the same Strassen machinery (ZGEMM counterpart).

    The paper notes DGEMMW "also provides routines for multiplying
    complex matrices, a feature not contained in our package"; this
    extension closes that gap.  Strassen's construction is field-
    agnostic, so the schedules run unchanged over complex128 operands
    (temporaries are allocated in the output's dtype); each "multiply"
    in the operation-count model then stands for one complex multiply.

    ``transa``/``transb`` request the **transpose**, not the conjugate
    transpose (matching ``op(X) = X^T`` in the real interface); apply
    ``numpy.conj`` to an operand view for the conjugated case.
    """
    return dgefmm(a, b, c, alpha, beta, transa, transb, **kwargs)


def _scale_only(
    c: Any, beta: float, ctx: ExecutionContext, accuracy: str = "fast"
) -> None:
    """``C <- beta*C`` — the k == 0 / alpha == 0 degenerate GEMM."""
    if c.shape[0] and c.shape[1]:
        kernels_for(accuracy).axpby(0, c, beta, c, ctx=ctx)


def _rec(
    a: Any,
    b: Any,
    c: Any,
    alpha: float,
    beta: float,
    depth: int,
    cfg: GemmConfig,
    scheme: str,
    ctx: ExecutionContext,
    ws: Workspace,
) -> None:
    """Recursive body: bind one traversal node to kernels and workspace.

    ``scheme`` is the node's scheme (it changes down the tree per the
    traversal's ``child_scheme``); everything else rides in ``cfg``.
    ``depth`` may start above 0 — the parallel driver continues serial
    subtrees below its parallel region at the subtree's true depth.
    """
    m, k = a.shape
    n = b.shape[1]
    if m == 0 or n == 0:
        return
    if k == 0 or alpha == 0.0:
        _scale_only(c, beta, ctx, cfg.accuracy)
        return
    node = decide(m, k, n, depth, scheme, beta == 0.0, cfg.cutoff)
    if isinstance(node, Base):
        ctx.record(RecursionEvent("base", m, k, n, depth))
        dgemm(a, b, c, alpha, beta, ctx=ctx, nb=cfg.nb,
              backend=cfg.backend, accuracy=cfg.accuracy)
        return

    if node.peeled:
        ctx.record(RecursionEvent("peel", m, k, n, depth))
    ctx.record(RecursionEvent(
        "recurse", node.mp, node.kp, node.np_, depth, scheme=node.level
    ))

    if node.peeled:
        core_a, core_b, core_c = core_views(
            a, b, c, cfg.peel, node.divisors
        )
    else:
        core_a, core_b, core_c = a, b, c

    def recurse(aa: Any, bb: Any, cc: Any, al: float, be: float) -> None:
        _rec(aa, bb, cc, al, be, depth + 1, cfg, node.child_scheme, ctx, ws)

    em = kernels_for(cfg.accuracy)
    if node.level == "s1b0":
        strassen1_beta0_level(
            core_a, core_b, core_c, alpha, ctx=ctx, ws=ws,
            recurse=recurse, kernels=em,
        )
    else:
        LEVEL_FNS[node.level](
            core_a, core_b, core_c, alpha, beta,
            ctx=ctx, ws=ws, recurse=recurse, kernels=em,
        )

    if node.peeled:
        if cfg.peel == "tail":
            apply_fixups(a, b, c, alpha, beta, ctx=ctx,
                         divisors=node.divisors)
        else:
            apply_fixups_head(a, b, c, alpha, beta, ctx=ctx,
                              divisors=node.divisors)
