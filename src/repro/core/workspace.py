"""Temporary-variable storage with live/peak accounting (paper Section 3.2).

The paper's central memory claims (Table 1) are stated as coefficients of
m² extra storage.  Rather than asserting those coefficients, this package
*measures* them: every temporary used by every Strassen variant is drawn
from a :class:`Workspace`, a stack-discipline allocator that tracks live
bytes and the high-water mark.  The Table 1 benchmark divides the measured
peak by m² and compares against the paper's column.

Stack discipline mirrors the call structure of the recursion: a schedule
opens a frame, allocates its temporaries, recurses (children open nested
frames), and the frame context manager releases everything on exit.  A
frame that is exited while a *deeper* frame is still open raises
:class:`~repro.errors.WorkspaceError` — that invariant catches schedule
bugs where a temporary would outlive its scope.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator, List

import numpy as np

from repro.errors import WorkspaceError
from repro.phantom import Phantom

__all__ = ["Workspace"]

_F64_BYTES = 8


class Workspace:
    """Stack allocator for matrix temporaries.

    Parameters
    ----------
    dry:
        When True, :meth:`alloc` returns :class:`~repro.phantom.Phantom`
        shapes instead of real arrays (byte accounting is identical), so
        dry-run timing sweeps also produce exact memory measurements.
    """

    def __init__(self, *, dry: bool = False) -> None:
        self.dry = bool(dry)
        self._live_bytes = 0
        self._peak_bytes = 0
        # each frame is the number of bytes it holds; index = depth
        self._frames: List[int] = []
        # fresh-buffer accounting: bytes/count of *new* numpy buffers this
        # workspace has requested from the allocator.  For a plain
        # Workspace every alloc() is a new buffer; a pooled arena
        # (repro.core.pool) reuses one backing buffer, so these counters
        # are how the amortization claim is *measured*.
        self.new_buffer_bytes = 0
        self.new_buffer_count = 0

    # ------------------------------------------------------------------ #
    @property
    def live_bytes(self) -> int:
        """Bytes currently allocated across all open frames."""
        return self._live_bytes

    @property
    def peak_bytes(self) -> int:
        """High-water mark of :attr:`live_bytes` over the workspace's life."""
        return self._peak_bytes

    @property
    def peak_elements(self) -> float:
        """Peak expressed in float64 elements (the paper's unit)."""
        return self._peak_bytes / _F64_BYTES

    @property
    def depth(self) -> int:
        """Number of open frames."""
        return len(self._frames)

    # ------------------------------------------------------------------ #
    @contextmanager
    def frame(self) -> Iterator["Workspace"]:
        """Open an allocation frame; everything allocated inside is
        released (accounting-wise) when the frame exits."""
        self._frames.append(0)
        my_depth = len(self._frames)
        try:
            yield self
        finally:
            if len(self._frames) != my_depth:
                raise WorkspaceError(
                    f"frame imbalance: expected depth {my_depth}, "
                    f"found {len(self._frames)} at frame exit"
                )
            freed = self._frames.pop()
            self._live_bytes -= freed

    def alloc(self, m: int, n: int, dtype=np.float64) -> Any:
        """Allocate an m-by-n temporary in the innermost frame.

        Returns a Fortran-ordered array (or a Phantom in dry mode).  The
        array contents are uninitialised, as with BLAS work arrays.
        ``dtype`` defaults to float64 (the DGEFMM case); the complex
        extension allocates complex128 temporaries, charged at their
        true byte size.  Dry-mode phantoms carry the requested dtype
        too, so dry complex sweeps account 16-byte elements exactly
        like the numeric path.
        """
        if not self._frames:
            raise WorkspaceError("alloc outside any workspace frame")
        if m < 0 or n < 0:
            raise WorkspaceError(f"invalid temporary shape ({m}, {n})")
        nbytes = m * n * np.dtype(dtype).itemsize
        self._frames[-1] += nbytes
        self._live_bytes += nbytes
        if self._live_bytes > self._peak_bytes:
            self._peak_bytes = self._live_bytes
        if self.dry:
            return Phantom(m, n, dtype=dtype)
        return self._make(m, n, dtype, nbytes)

    def _make(self, m: int, n: int, dtype, nbytes: int) -> Any:
        """Produce the backing array for one :meth:`alloc` request.

        Subclasses (the pooled arena) override this to carve the request
        out of a reusable buffer instead of asking numpy for fresh pages.
        """
        self.new_buffer_bytes += nbytes
        self.new_buffer_count += 1
        return np.empty((m, n), dtype=dtype, order="F")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Workspace(live={self._live_bytes}B, peak={self._peak_bytes}B, "
            f"depth={self.depth}, dry={self.dry})"
        )
