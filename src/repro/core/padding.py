"""Padding strategies for odd dimensions (paper Section 2).

The paper contrasts three ways of dealing with odd matrix dimensions:

- **static padding** — Strassen's original suggestion: pad the inputs up
  front with zero rows/columns so that *every* dimension met during the
  planned ``d`` recursion levels is even (i.e. round each dimension up to
  a multiple of ``2^d``); strip the padding from the product at the end.
- **dynamic padding** — pad by a single zero row/column at each recursion
  level where an odd dimension appears (used by DGEMMW [8]).
- **dynamic peeling** — the paper's choice (see
  :mod:`repro.core.peeling`): strip instead of pad, and fix up.

This module implements both padding strategies.  They serve two purposes:
(1) the comparator codes (:mod:`repro.comparators`) are built on them, and
(2) the padding-vs-peeling ablation benchmark quantifies the trade-off the
paper's operation-count analysis [14] predicted in peeling's favour.
"""

from __future__ import annotations

from typing import Any, Callable, Tuple

from repro.blas.addsub import mcopy, mzero
from repro.context import ExecutionContext
from repro.core.workspace import Workspace

__all__ = [
    "round_up_multiple",
    "static_pad_shape",
    "pad_into",
    "dynamic_pad_operands",
    "run_statically_padded",
]


def round_up_multiple(x: int, q: int) -> int:
    """Smallest multiple of ``q`` that is >= ``x``."""
    if q <= 0:
        raise ValueError(f"q must be positive, got {q}")
    return -(-x // q) * q


def static_pad_shape(m: int, k: int, n: int, depth: int) -> Tuple[int, int, int]:
    """Dims rounded up so ``depth`` halvings keep everything even.

    With ``depth`` planned recursion levels, every dimension must be a
    multiple of ``2^depth``.
    """
    q = 1 << depth
    return (
        round_up_multiple(m, q),
        round_up_multiple(k, q),
        round_up_multiple(n, q),
    )


def pad_into(
    x: Any,
    padded: Any,
    *,
    ctx: ExecutionContext,
) -> Any:
    """Copy ``x`` into the top-left corner of ``padded``, zero elsewhere.

    ``padded`` must be at least as large as ``x`` in both dimensions.
    Charged as one zero-fill plus one copy (what an implementation that
    pads would actually pay in memory traffic).
    """
    m, n = x.shape
    pm, pn = padded.shape
    if pm < m or pn < n:
        from repro.errors import DimensionError

        raise DimensionError(
            f"pad_into: target {padded.shape} smaller than source {x.shape}"
        )
    # Zero only the margin (the copy overwrites the corner anyway); the
    # margin is charged as a zero of the two border strips.
    if pn > n:
        mzero(padded[:, n:], ctx=ctx)
    if pm > m:
        mzero(padded[m:, :n], ctx=ctx)
    mcopy(x, padded[:m, :n], ctx=ctx)
    return padded


def dynamic_pad_operands(
    a: Any,
    b: Any,
    ws: Workspace,
    *,
    ctx: ExecutionContext,
) -> Tuple[Any, Any, Tuple[int, int, int]]:
    """One level of dynamic padding: round odd dims of A/B up by one.

    Returns even-dimensioned operands (padded workspace copies where
    needed, the originals otherwise) and the padded (m, k, n).  The caller
    is responsible for computing into a padded C and cropping — see
    :func:`repro.comparators.dgemmw.dgemmw`.

    Must be called inside an open workspace frame; the padded buffers are
    drawn from it and released with the frame.
    """
    m, k = a.shape
    n = b.shape[1]
    dt = getattr(a, "dtype", None) or "float64"
    pm, pk, pn = m + (m & 1), k + (k & 1), n + (n & 1)
    pa, pb = a, b
    if (pm, pk) != (m, k):
        pa = pad_into(a, ws.alloc(pm, pk, dt), ctx=ctx)
    if (pk, pn) != (k, n):
        pb = pad_into(b, ws.alloc(pk, pn, dt), ctx=ctx)
    return pa, pb, (pm, pk, pn)


def run_statically_padded(
    a: Any,
    b: Any,
    c: Any,
    alpha: float,
    beta: float,
    depth: int,
    multiply_even: Callable[[Any, Any, Any, float, float], None],
    ws: Workspace,
    *,
    ctx: ExecutionContext,
) -> None:
    """Static padding driver: pad, multiply with ``multiply_even``, crop.

    ``multiply_even`` receives operands whose dimensions are multiples of
    ``2^depth`` and computes ``Cp <- alpha*Ap*Bp`` (beta = 0 on the padded
    product); the caller's ``beta`` is applied during the crop-accumulate.
    When no padding is needed the product is computed directly into ``c``
    with the caller's ``beta``.
    """
    from repro.blas.addsub import axpby

    m, k = a.shape
    n = b.shape[1]
    pm, pk, pn = static_pad_shape(m, k, n, depth)
    if (pm, pk, pn) == (m, k, n):
        multiply_even(a, b, c, alpha, beta)
        return
    dt = getattr(c, "dtype", None) or "float64"
    with ws.frame():
        pa = pad_into(a, ws.alloc(pm, pk, dt), ctx=ctx) if (pm, pk) != (m, k) else a
        pb = pad_into(b, ws.alloc(pk, pn, dt), ctx=ctx) if (pk, pn) != (k, n) else b
        pc = ws.alloc(pm, pn, dt)
        multiply_even(pa, pb, pc, alpha, 0.0)
        axpby(1.0, pc[:m, :n], beta, c, ctx=ctx)
