"""Generic executor for registry schemes: one level from (U, V, W).

The hand-written 2x2 schedules (:mod:`repro.core.strassen1`,
:mod:`repro.core.strassen2`, :mod:`repro.core.textbook`,
:mod:`repro.core.bdpz`) are carefully ordered to minimise temporaries;
non-2x2 schemes enter the repository as pure coefficient data
(:mod:`repro.core.schemes`) and are executed by the interpreter built
here.  :func:`make_uvw_level` compiles one registry entry into a level
function with the same signature as the hand schedules — same
``kernels`` injection point, so the plan compiler records it with the
identical machinery, and live and compiled execution stay bit-equal.

Execution strategy per product ``r`` (mirrored exactly by
:func:`repro.core.schemes.uvw_profile`, which the op-count model
consumes — any drift between the two is caught by the conformance
harness):

- the A-side operand is the block itself when ``U``'s row is a single
  +1, one scaling AXPBY into the S temporary when a single -1, and a
  chain of AXPBYs when it mixes blocks (first one overwrites);
  likewise the B side;
- a product with a single destination block recurses *straight into
  that block of C*: the first product to touch a block carries the
  caller's beta, later ones accumulate (beta = 1);
- a product feeding several blocks recurses into the P temporary
  (beta = 0 child) and is merged with one AXPBY per destination,
  again folding the caller's beta into each block's first touch.

Only three temporaries exist per level — one S, one T, one P block —
so an ⟨mbar,kbar,nbar;R⟩ level costs ``mk/(mbar*kbar) + kn/(kbar*nbar)
+ mn/(mbar*nbar)`` extra elements regardless of R.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.blas.addsub import NUMERIC_KERNELS, BlockKernels
from repro.context import ExecutionContext
from repro.core.schemes import get_scheme
from repro.core.workspace import Workspace

__all__ = ["make_uvw_level"]

RecurseFn = Callable[[Any, Any, Any, float, float], None]


def make_uvw_level(scheme_name: str):
    """Build a level function executing one registry scheme's UVW."""
    sch = get_scheme(scheme_name)
    mb, kb, nb = sch.mbar, sch.kbar, sch.nbar
    urows = tuple(
        tuple((j, c) for j, c in enumerate(row) if c) for row in sch.u
    )
    vrows = tuple(
        tuple((j, c) for j, c in enumerate(row) if c) for row in sch.v
    )
    dests = tuple(
        tuple((ci, sch.w[ci][r]) for ci in range(mb * nb) if sch.w[ci][r])
        for r in range(sch.r)
    )

    def uvw_level(
        a: Any,
        b: Any,
        c: Any,
        alpha: float,
        beta: float,
        *,
        ctx: ExecutionContext,
        ws: Workspace,
        recurse: RecurseFn,
        kernels: Optional[BlockKernels] = None,
    ) -> None:
        em = kernels if kernels is not None else NUMERIC_KERNELS
        m, k = a.shape
        n = b.shape[1]
        cm, ck, cn = m // mb, k // kb, n // nb
        ablk = tuple(
            a[i * cm:(i + 1) * cm, j * ck:(j + 1) * ck]
            for i in range(mb) for j in range(kb)
        )
        bblk = tuple(
            b[i * ck:(i + 1) * ck, j * cn:(j + 1) * cn]
            for i in range(kb) for j in range(nb)
        )
        cblk = tuple(
            c[i * cm:(i + 1) * cm, j * cn:(j + 1) * cn]
            for i in range(mb) for j in range(nb)
        )
        dt = getattr(c, "dtype", None) or "float64"
        neg_alpha = -alpha
        with ws.frame():
            s = ws.alloc(cm, ck, dt)
            t = ws.alloc(ck, cn, dt)
            p = ws.alloc(cm, cn, dt)
            touched = [False] * (mb * nb)
            for r in range(sch.r):
                sa = _operand(urows[r], ablk, s, em, ctx)
                tb = _operand(vrows[r], bblk, t, em, ctx)
                ds = dests[r]
                if len(ds) == 1:
                    ci, wc = ds[0]
                    recurse(
                        sa, tb, cblk[ci],
                        alpha if wc > 0 else neg_alpha,
                        1.0 if touched[ci] else beta,
                    )
                    touched[ci] = True
                else:
                    recurse(sa, tb, p, 1.0, 0.0)
                    for ci, wc in ds:
                        em.axpby(
                            alpha if wc > 0 else neg_alpha, p,
                            1.0 if touched[ci] else beta, cblk[ci],
                            ctx=ctx,
                        )
                        touched[ci] = True

    uvw_level.__name__ = f"uvw_{scheme_name}_level"
    uvw_level.__qualname__ = uvw_level.__name__
    return uvw_level


def _operand(terms, blocks, tmp, em, ctx):
    """Materialise one S/T linear combination (or return the block)."""
    if len(terms) == 1 and terms[0][1] > 0:
        return blocks[terms[0][0]]
    first = True
    for j, coef in terms:
        em.axpby(float(coef), blocks[j], 0.0 if first else 1.0, tmp,
                 ctx=ctx)
        first = False
    return tmp
