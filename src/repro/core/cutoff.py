"""Cutoff criteria: when to stop the Strassen recursion (Sections 2, 3.4).

A *cutoff criterion* decides, for a product of dimensions (m, k, n) at a
given recursion depth, whether another level of Strassen's construction
pays off.  Each criterion here implements ``stop(m, k, n, depth=0) ->
bool``: True means "use the standard algorithm for this product"; False
means "apply one more Strassen level".  ``depth`` is the number of
recursion levels already taken above this node — the traversal core
passes it at every call, so criteria that depend on it (like
:class:`DepthCutoff`) need no mutable state.

The paper's progression of criteria, all implemented:

- **eq. (7)** :class:`TheoreticalCutoff` — the operation-count condition
  ``mkn <= 4(mk + kn + mn)``; gives the famous cutoff 12 for square
  matrices, far below practical crossovers.
- **eq. (10)** square criterion ``m <= tau`` with an empirically measured
  crossover ``tau`` (Table 2: RS/6000 199, C90 129, T3D 325).
- **eq. (11)** :class:`SimpleCutoff` — ``m <= tau or k <= tau or
  n <= tau`` (used by Douglas et al.'s DGEMMW); misses beneficial
  recursions on long-thin problems.
- **eq. (12)** :class:`HighamCutoff` — Higham's scaling of (7):
  ``mkn <= tau * (nk + mn + mk) / 3``; assumes DGEMM performance is
  symmetric in the dimensions, which Table 3 refutes.
- **eq. (13)/(14)** :class:`PlaneCutoff` — the paper's asymmetric
  three-parameter condition ``mkn <= tau_m*nk + tau_k*mn + tau_n*mk``,
  with parameters from three long-thin crossover experiments.
- **eq. (15)** :class:`HybridCutoff` — the paper's final criterion: the
  plane condition governs mixed regimes, but recursion is always allowed
  when all dims exceed tau and always stopped when all dims are <= tau.

Every criterion is a frozen dataclass — hashable, printable, cheap to
evaluate inside the recursion, and safe to share across concurrent
multiplications.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

__all__ = [
    "CutoffCriterion",
    "TheoreticalCutoff",
    "SquareCutoff",
    "SimpleCutoff",
    "HighamCutoff",
    "PlaneCutoff",
    "HybridCutoff",
    "AlwaysRecurse",
    "NeverRecurse",
    "DepthCutoff",
]


@dataclass(frozen=True)
class CutoffCriterion:
    """Base class: subclasses decide when to stop recursing."""

    def stop(self, m: int, k: int, n: int, depth: int = 0) -> bool:
        """True = multiply (m,k,n) with the standard algorithm.

        ``depth`` is the number of recursion levels already applied
        above this product (0 at the driver's entry).  Dimension-based
        criteria ignore it.
        """
        raise NotImplementedError

    def recurse(self, m: int, k: int, n: int, depth: int = 0) -> bool:
        """Convenience negation of :meth:`stop`."""
        return not self.stop(m, k, n, depth)


@dataclass(frozen=True)
class TheoreticalCutoff(CutoffCriterion):
    """Paper eq. (7): stop iff ``mkn <= 4(mk + kn + mn)``.

    Derived from the operation-count model (stop when one Strassen level
    followed by the standard algorithm costs no less than the standard
    algorithm alone).  Square solution: stop iff m <= 12.
    """

    def stop(self, m: int, k: int, n: int, depth: int = 0) -> bool:
        return m * k * n <= 4 * (m * k + k * n + m * n)


@dataclass(frozen=True)
class SquareCutoff(CutoffCriterion):
    """Paper eq. (10): stop iff ``m <= tau`` — meaningful for square inputs.

    For non-square inputs it examines only ``m``; prefer
    :class:`SimpleCutoff` or :class:`HybridCutoff` for general shapes.
    """

    tau: int

    def stop(self, m: int, k: int, n: int, depth: int = 0) -> bool:
        return m <= self.tau


@dataclass(frozen=True)
class SimpleCutoff(CutoffCriterion):
    """Paper eq. (11): stop iff any dimension is <= tau (DGEMMW's rule)."""

    tau: int

    def stop(self, m: int, k: int, n: int, depth: int = 0) -> bool:
        return m <= self.tau or k <= self.tau or n <= self.tau


@dataclass(frozen=True)
class HighamCutoff(CutoffCriterion):
    """Paper eq. (12): stop iff ``mkn <= tau*(nk + mn + mk)/3``.

    Scales the theoretical condition (7) by tau*(4/3)/4 so it reduces to
    ``m <= tau`` when m = k = n.
    """

    tau: int

    def stop(self, m: int, k: int, n: int, depth: int = 0) -> bool:
        return 3 * m * k * n <= self.tau * (n * k + m * n + m * k)


@dataclass(frozen=True)
class PlaneCutoff(CutoffCriterion):
    """Paper eq. (13): stop iff ``mkn <= tau_m*nk + tau_k*mn + tau_n*mk``.

    Equivalently (eq. 14) ``1 <= tau_m/m + tau_k/k + tau_n/n``.  The three
    parameters come from long-thin crossover experiments (Table 3) and
    capture the measured asymmetry of DGEMM in its three dimensions.
    """

    tau_m: int
    tau_k: int
    tau_n: int

    def stop(self, m: int, k: int, n: int, depth: int = 0) -> bool:
        return (
            m * k * n
            <= self.tau_m * n * k + self.tau_k * m * n + self.tau_n * m * k
        )


@dataclass(frozen=True)
class HybridCutoff(CutoffCriterion):
    """Paper eq. (15): the paper's production criterion.

    stop iff::

        ( plane(m,k,n) and (m <= tau or k <= tau or n <= tau) )
        or ( m <= tau and k <= tau and n <= tau )

    so recursion is always applied when every dimension exceeds tau
    (matching the square criterion), always stopped when every dimension
    is at most tau, and in mixed regimes the asymmetric plane condition
    (13) decides — allowing the extra beneficial recursion level on
    long-thin problems that criterion (11) forbids.
    """

    tau: int
    tau_m: int
    tau_k: int
    tau_n: int

    def plane(self) -> PlaneCutoff:
        """The embedded eq. (13) condition."""
        return PlaneCutoff(self.tau_m, self.tau_k, self.tau_n)

    def stop(self, m: int, k: int, n: int, depth: int = 0) -> bool:
        small_m = m <= self.tau
        small_k = k <= self.tau
        small_n = n <= self.tau
        if small_m and small_k and small_n:
            return True
        if not (small_m or small_k or small_n):
            return False
        return self.plane().stop(m, k, n)


@dataclass(frozen=True)
class AlwaysRecurse(CutoffCriterion):
    """Recurse whenever the dimensions permit (full recursion).

    Used by the operation-count analyses (eq. 4 with m0 = 1) and by tests;
    the driver still stops when a dimension drops below 2.
    """

    def stop(self, m: int, k: int, n: int, depth: int = 0) -> bool:
        return False


@dataclass(frozen=True)
class NeverRecurse(CutoffCriterion):
    """Always use the standard algorithm — turns DGEFMM into DGEMM."""

    def stop(self, m: int, k: int, n: int, depth: int = 0) -> bool:
        return True


@dataclass(frozen=True)
class DepthCutoff(CutoffCriterion):
    """Stop after exactly ``depth`` recursion levels.

    The Table 5 experiment ("smallest matrix order that does a given
    number of recursions") and the closed-form op-count checks both need
    depth-controlled recursion.  Since the traversal passes the current
    depth to :meth:`stop`, this criterion is as frozen and shareable as
    every other — including across the concurrent recursions of
    :func:`~repro.core.parallel.pdgefmm`.  (It was once stateful, with
    the driver calling ``descend``/``ascend`` around each level; those
    methods remain as deprecated no-ops for one release.)
    """

    depth: int

    def __post_init__(self) -> None:
        if self.depth < 0:
            raise ValueError(f"depth must be >= 0, got {self.depth}")

    def stop(self, m: int, k: int, n: int, depth: int = 0) -> bool:
        return depth >= self.depth

    def descend(self) -> None:
        """Deprecated no-op (depth is now an argument of :meth:`stop`)."""
        warnings.warn(
            "DepthCutoff.descend() is deprecated and does nothing; "
            "depth is passed to stop() directly",
            DeprecationWarning, stacklevel=2,
        )

    def ascend(self) -> None:
        """Deprecated no-op (depth is now an argument of :meth:`stop`)."""
        warnings.warn(
            "DepthCutoff.ascend() is deprecated and does nothing; "
            "depth is passed to stop() directly",
            DeprecationWarning, stacklevel=2,
        )
