"""The operation-count model of paper Section 2.

All costs are arithmetic operation counts (multiplies + adds), following
the paper's conventions::

    M(m, k, n) = 2mkn - mn      standard multiply of (m x k) by (k x n)
    G(m, n)    = mn             matrix addition/subtraction

Strassen/Winograd cost obeys the recurrence (paper eq. 2)::

    W(m,k,n) = M(m,k,n)                                  if cutoff stops
             = 7 W(m/2,k/2,n/2) + 4 G(m/2,k/2)
                 + 4 G(k/2,n/2) + 7 G(m/2,n/2)           otherwise

with closed forms for fixed recursion depth d (eqs. 3-5).  The module also
exposes the paper's headline analysis numbers — the theoretical square
cutoff of 12 (eqs. 7/8), the 7/8 asymptotic ratio (eq. 1), the 38.2 %
improvement of cutoff-12 over full recursion at order 256, and the
Winograd-vs-original comparison — all of which the test suite asserts.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.cutoff import CutoffCriterion, TheoreticalCutoff

__all__ = [
    "standard_ops",
    "add_ops",
    "one_level_ratio",
    "winograd_depth_ops",
    "winograd_square_ops",
    "strassen_square_ops",
    "strassen_ops",
    "scheme_ops",
    "theoretical_square_cutoff",
    "winograd_vs_strassen_limit",
    "cutoff_improvement_square",
]


def standard_ops(m: int, k: int, n: int) -> float:
    """``M(m,k,n) = 2mkn - mn``: ops of the standard algorithm."""
    return 2.0 * m * k * n - float(m) * n


def add_ops(m: int, n: int) -> float:
    """``G(m,n) = mn``: ops of one matrix addition/subtraction."""
    return float(m) * n


def one_level_ratio(m: int) -> float:
    """Paper eq. (1): ratio of one-level-Strassen ops to standard ops.

    ``(7m^3 + 11m^2) / (8m^3 - 4m^2)`` — approaches 7/8 for large m.
    (Stated for Strassen's original 18-add version on square matrices,
    as in the paper's Section 2 derivation.)
    """
    if m <= 0 or m % 2:
        raise ValueError(f"one_level_ratio requires positive even m, got {m}")
    num = 7.0 * m**3 + 11.0 * m**2
    den = 8.0 * m**3 - 4.0 * m**2
    return num / den


def winograd_depth_ops(d: int, m0: int, k0: int, n0: int) -> float:
    """Paper eq. (3): Winograd cost with exactly d recursion levels.

    Input sizes are ``2^d m0 x 2^d k0`` and ``2^d k0 x 2^d n0``; the d-th
    level's products (size m0 x k0 x n0) use the standard algorithm.
    """
    if d < 0:
        raise ValueError(f"depth must be >= 0, got {d}")
    mul_term = 7.0**d * (2.0 * m0 * k0 * n0 - float(m0) * n0)
    add_term = (
        (7.0**d - 4.0**d)
        * (4.0 * m0 * k0 + 4.0 * k0 * n0 + 7.0 * m0 * n0)
        / 3.0
    )
    return mul_term + add_term


def winograd_square_ops(d: int, m0: int) -> float:
    """Paper eq. (4): square specialization of eq. (3).

    ``W(2^d m0) = 7^d (2 m0^3 - m0^2) + 5 m0^2 (7^d - 4^d)``.
    """
    if d < 0:
        raise ValueError(f"depth must be >= 0, got {d}")
    return 7.0**d * (2.0 * m0**3 - float(m0) ** 2) + 5.0 * m0**2 * (
        7.0**d - 4.0**d
    )


def strassen_square_ops(d: int, m0: int) -> float:
    """Paper eq. (5): as eq. (4) but for Strassen's original (18 adds).

    ``S(2^d m0) = 7^d (2 m0^3 - m0^2) + 6 m0^2 (7^d - 4^d)``.
    """
    if d < 0:
        raise ValueError(f"depth must be >= 0, got {d}")
    return 7.0**d * (2.0 * m0**3 - float(m0) ** 2) + 6.0 * m0**2 * (
        7.0**d - 4.0**d
    )


def strassen_ops(
    m: int,
    k: int,
    n: int,
    criterion: Optional[CutoffCriterion] = None,
    *,
    adds_per_level: int = 15,
) -> float:
    """Paper eq. (2): Winograd op count under an arbitrary cutoff criterion.

    Requires even dimensions along the whole recursion when recursion is
    taken (the model of Section 2 assumes even splits; peeled execution is
    measured, not modeled — the paper does the same).  ``adds_per_level``
    may be set to 18 to model Strassen's original variant; the split of
    additions among the three block shapes is then 5 A-shaped, 5 B-shaped
    and 8 C-shaped, versus Winograd's 4 + 4 + 7.
    """
    crit = criterion if criterion is not None else TheoreticalCutoff()
    if adds_per_level == 15:
        a_adds, b_adds, c_adds = 4, 4, 7
    elif adds_per_level == 18:
        a_adds, b_adds, c_adds = 5, 5, 8
    else:
        raise ValueError(
            f"adds_per_level must be 15 (Winograd) or 18 (Strassen), "
            f"got {adds_per_level}"
        )

    def w(m_: int, k_: int, n_: int, depth: int) -> float:
        if (
            crit.stop(m_, k_, n_, depth)
            or m_ % 2
            or k_ % 2
            or n_ % 2
            or min(m_, k_, n_) < 2
        ):
            return standard_ops(m_, k_, n_)
        h_m, h_k, h_n = m_ // 2, k_ // 2, n_ // 2
        return (
            7.0 * w(h_m, h_k, h_n, depth + 1)
            + a_adds * add_ops(h_m, h_k)
            + b_adds * add_ops(h_k, h_n)
            + c_adds * add_ops(h_m, h_n)
        )

    return w(m, k, n, 0)


def scheme_ops(
    m: int,
    k: int,
    n: int,
    scheme: str = "auto",
    criterion: Optional[CutoffCriterion] = None,
    *,
    beta_zero: bool = True,
) -> float:
    """Exact op count of the schedule DGEFMM *executes* for ``scheme``.

    Unlike :func:`strassen_ops` (the paper's eq. 2, which models the
    textbook 15-add Winograd recombination), this walks the shared
    traversal kernel (:func:`repro.core.traversal.decide`) and charges
    each node with its level's *executed* block-addition profile
    (:data:`repro.core.schemes.LEVEL_PROFILE`) — so the figure equals,
    exactly, the ``mul + add`` flop tallies of a compiled plan or a live
    instrumented run on divisor-exact dimensions.  Works for every
    registry scheme (including non-2x2 families such as ⟨3,3,3;23⟩)
    with zero per-scheme code.

    ``beta_zero`` selects the scalar class of the *top* call; children's
    classes follow each level's schedule (a profile entry of ``None``
    inherits the caller's class).  Like :func:`strassen_ops`, peeled
    execution is measured, not modeled: a node with non-divisible
    dimensions is charged at the standard-algorithm cost.
    """
    crit = criterion if criterion is not None else TheoreticalCutoff()
    from repro.core.schemes import LEVEL_PROFILE
    from repro.core.traversal import Base, decide

    def w(m_: int, k_: int, n_: int, depth: int,
          sch: str, b0: bool) -> float:
        node = decide(m_, k_, n_, depth, sch, b0, crit)
        if isinstance(node, Base) or node.peeled:
            return standard_ops(m_, k_, n_)
        prof = LEVEL_PROFILE[node.level]
        hm, hk, hn = node.child_dims
        cost = (
            prof.a_adds * add_ops(hm, hk)
            + prof.b_adds * add_ops(hk, hn)
            + prof.c_adds(b0) * add_ops(hm, hn)
        )
        for cls in prof.child_classes:
            cost += w(hm, hk, hn, depth + 1, node.child_scheme,
                      b0 if cls is None else cls)
        return cost

    return w(m, k, n, 0, scheme, beta_zero)


def theoretical_square_cutoff() -> int:
    """Largest square order at which eq. (7) says to stop: 12.

    (Stop iff ``m^3 <= 12 m^2``, i.e. m <= 12.)
    """
    crit = TheoreticalCutoff()
    m = 1
    while crit.stop(m + 1, m + 1, m + 1):
        m += 1
    return m


def winograd_vs_strassen_limit(m0: int) -> float:
    """Limit as d -> infinity of eq.(5)/eq.(4): ``(5 + 2 m0)/(4 + 2 m0)``.

    14.3 % improvement at full recursion (m0 = 1); 5.26 %-3.45 % for
    m0 in 7..12 (the bottom sizes that occur with the optimal cutoff 12).
    """
    if m0 < 1:
        raise ValueError(f"m0 must be >= 1, got {m0}")
    return (5.0 + 2.0 * m0) / (4.0 + 2.0 * m0)


def cutoff_improvement_square(
    order: int,
    full_m0: int = 1,
    cut_depth: Optional[int] = None,
    cut_m0: Optional[int] = None,
) -> float:
    """Ratio of Winograd ops without cutoff to with cutoff, square case.

    The paper's example: order 256 = 2^8*1 (full recursion) versus
    2^5*8 (cutoff 12 leaves bottom blocks of order 8), ratio ~= 1.382,
    i.e. a 38.2 % improvement from using cutoffs.

    When ``cut_depth``/``cut_m0`` are omitted they are derived from the
    optimal theoretical cutoff: halve while the order exceeds 12.
    """
    d_full = 0
    m0 = order
    while m0 % 2 == 0 and m0 // 2 >= full_m0:
        m0 //= 2
        d_full += 1
    if cut_depth is None or cut_m0 is None:
        tau = theoretical_square_cutoff()
        cut_m0 = order
        cut_depth = 0
        while cut_m0 % 2 == 0 and cut_m0 > tau:
            cut_m0 //= 2
            cut_depth += 1
    return winograd_square_ops(d_full, m0) / winograd_square_ops(
        cut_depth, cut_m0
    )
