"""Task-parallel DGEFMM — the paper's "extend ... to use parallelism".

Strassen's construction is naturally task-parallel: after stages (1) and
(2) produce the S/T block sums, the seven products of stage (3) touch
disjoint outputs and read-only inputs.  :func:`pdgefmm` runs one such
level with the products dispatched to a thread pool (each product is a
full serial :func:`~repro.core.dgefmm.dgefmm` recursion; numpy's einsum
kernels release the GIL, so threads genuinely overlap), then combines
stage (4) serially.

The parallel level deliberately abandons the memory frugality of the
serial schedules: all four S, all four T and all seven P blocks are live
at once (mk + kn + 7mn/4 extra in the general case), the classical
memory-for-parallelism trade the paper's serial design avoided.  The
workspace accounting makes that cost visible, as everywhere else.

Instrumentation: worker threads charge private contexts which are merged
into the caller's context afterwards, so op counts remain exact;
``elapsed`` (model time) accumulates *summed* worker time, i.e. it stays
a work measure, not a wall-clock prediction.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Any, Optional

from repro.blas.addsub import accum, axpby, madd, msub
from repro.blas.level3 import DEFAULT_TILE, dgemm
from repro.blas.validate import opshape, require_matrix, require_writable
from repro.context import ExecutionContext, ensure_context
from repro.core.cutoff import CutoffCriterion
from repro.core.dgefmm import DEFAULT_CUTOFF, dgefmm
from repro.core.peeling import apply_fixups, peel_split
from repro.core.workspace import Workspace
from repro.errors import DimensionError

__all__ = ["pdgefmm"]


def pdgefmm(
    a: Any,
    b: Any,
    c: Any,
    alpha: float = 1.0,
    beta: float = 0.0,
    transa: bool = False,
    transb: bool = False,
    *,
    workers: int = 7,
    cutoff: Optional[CutoffCriterion] = None,
    ctx: Optional[ExecutionContext] = None,
    workspace: Optional[Workspace] = None,
    nb: int = DEFAULT_TILE,
) -> Any:
    """Parallel Strassen GEMM: ``C <- alpha*op(A)*op(B) + beta*C``.

    One Winograd level with its seven products run on up to ``workers``
    threads; below that level each product is an ordinary serial DGEFMM
    (with the given cutoff).  Falls back to serial DGEFMM whenever the
    cutoff declines the top-level recursion.  Not supported in dry mode
    (simulated time has no thread model).
    """
    ctx = ensure_context(ctx)
    if ctx.dry:
        raise DimensionError("pdgefmm does not support dry-run contexts")
    require_matrix("pdgefmm", "a", a)
    require_matrix("pdgefmm", "b", b)
    require_matrix("pdgefmm", "c", c)
    require_writable("pdgefmm", "c", c)
    if workers < 1:
        raise DimensionError(f"pdgefmm: workers={workers} must be >= 1")
    m, k = opshape(a, transa)
    kb, n = opshape(b, transb)
    if kb != k:
        raise DimensionError(f"pdgefmm: op(A) is {m}x{k} but op(B) is {kb}x{n}")
    if tuple(c.shape) != (m, n):
        raise DimensionError(
            f"pdgefmm: C has shape {tuple(c.shape)}, expected {(m, n)}"
        )
    crit = cutoff if cutoff is not None else DEFAULT_CUTOFF
    ws = workspace if workspace is not None else Workspace()
    opa = a.T if transa else a
    opb = b.T if transb else b

    if m == 0 or n == 0:
        return c
    if (
        k == 0
        or alpha == 0.0
        or crit.stop(m, k, n)
        or min(m, k, n) < 2
    ):
        return dgefmm(a, b, c, alpha, beta, transa, transb,
                      cutoff=crit, ctx=ctx, workspace=ws, nb=nb)

    mp, kp, np_ = peel_split(m, k, n)
    _parallel_level(
        opa[:mp, :kp], opb[:kp, :np_], c[:mp, :np_], alpha, beta,
        workers, crit, ctx, ws, nb,
    )
    if (mp, kp, np_) != (m, k, n):
        apply_fixups(opa, opb, c, alpha, beta, ctx=ctx)
    ctx.stats["workspace_peak_bytes"] = max(
        ctx.stats.get("workspace_peak_bytes", 0), ws.peak_bytes
    )
    return c


def _parallel_level(
    a: Any,
    b: Any,
    c: Any,
    alpha: float,
    beta: float,
    workers: int,
    crit: CutoffCriterion,
    ctx: ExecutionContext,
    ws: Workspace,
    nb: int,
) -> None:
    m, k = a.shape
    n = b.shape[1]
    hm, hk, hn = m // 2, k // 2, n // 2
    dt = getattr(c, "dtype", None) or "float64"

    a11, a12, a21, a22 = a[:hm, :hk], a[:hm, hk:], a[hm:, :hk], a[hm:, hk:]
    b11, b12, b21, b22 = b[:hk, :hn], b[:hk, hn:], b[hk:, :hn], b[hk:, hn:]
    c11, c12, c21, c22 = c[:hm, :hn], c[:hm, hn:], c[hm:, :hn], c[hm:, hn:]

    with ws.frame():
        # stages (1)/(2): all eight sums materialized (read-only inputs
        # for the concurrent products)
        s1 = madd(a21, a22, ws.alloc(hm, hk, dt), ctx=ctx)
        s2 = msub(s1, a11, ws.alloc(hm, hk, dt), ctx=ctx)
        s3 = msub(a11, a21, ws.alloc(hm, hk, dt), ctx=ctx)
        s4 = msub(a12, s2, ws.alloc(hm, hk, dt), ctx=ctx)
        t1 = msub(b12, b11, ws.alloc(hk, hn, dt), ctx=ctx)
        t2 = msub(b22, t1, ws.alloc(hk, hn, dt), ctx=ctx)
        t3 = msub(b22, b12, ws.alloc(hk, hn, dt), ctx=ctx)
        t4 = msub(t2, b21, ws.alloc(hk, hn, dt), ctx=ctx)

        ps = [ws.alloc(hm, hn, dt) for _ in range(7)]
        p1, p2, p3, p4, p5, p6, p7 = ps
        jobs = [
            (a11, b11, p1), (a12, b21, p2), (s4, b22, p3), (a22, t4, p4),
            (s1, t1, p5), (s2, t2, p6), (s3, t3, p7),
        ]

        worker_ctxs = [ExecutionContext() for _ in jobs]

        def run(idx: int) -> None:
            aa, bb, cc = jobs[idx]
            # each worker gets a private workspace and context; the
            # serial recursion below is the ordinary DGEFMM
            dgefmm(aa, bb, cc, 1.0, 0.0, cutoff=crit,
                   ctx=worker_ctxs[idx], workspace=Workspace(), nb=nb)

        if workers == 1:
            for i in range(len(jobs)):
                run(i)
        else:
            with ThreadPoolExecutor(max_workers=min(workers, 7)) as pool:
                list(pool.map(run, range(len(jobs))))

        # merge worker instrumentation (work, not wall time)
        for wctx in worker_ctxs:
            ctx.mul_flops += wctx.mul_flops
            ctx.add_flops += wctx.add_flops
            ctx.flops += wctx.flops
            ctx.elapsed += wctx.elapsed
            ctx.kernel_calls.update(wctx.kernel_calls)

        # stage (4), serial: U-tree over the materialized products
        accum(p1, p6, ctx=ctx)                 # p6 = U2
        accum(p1, p2, ctx=ctx)                 # p2 = U1
        axpby(alpha, p2, beta, c11, ctx=ctx)   # C11 done
        accum(p6, p7, ctx=ctx)                 # p7 = U3
        axpby(alpha, p7, beta, c21, ctx=ctx)
        axpby(-alpha, p4, 1.0, c21, ctx=ctx)   # C21 done
        axpby(alpha, p7, beta, c22, ctx=ctx)
        axpby(alpha, p5, 1.0, c22, ctx=ctx)    # C22 done
        accum(p6, p5, ctx=ctx)                 # p5 = U4
        accum(p3, p5, ctx=ctx)                 # p5 = U5
        axpby(alpha, p5, beta, c12, ctx=ctx)   # C12 done
