"""Task-parallel DGEFMM — the paper's "extend ... to use parallelism".

Strassen's construction is naturally task-parallel: after stages (1) and
(2) produce the S/T block sums, the seven products of stage (3) touch
disjoint outputs and read-only inputs.  :func:`pdgefmm` dispatches those
products to a thread pool (each product recurses; numpy's einsum kernels
release the GIL, so threads genuinely overlap), then combines stage (4)
serially.

Recurse-vs-base (and peel) decisions come from the shared traversal core
(:func:`repro.core.traversal.decide`) — the same kernel the serial
driver, the plan compiler and the analytics consume — so the parallel
recursion's *structure* is identical to the serial driver's for the same
:class:`~repro.core.config.GemmConfig`.  The parallel level always
materializes the seven Winograd products (one fixed schedule regardless
of which serial schedule — two-temporary, six-temporary,
multiply-accumulate, or BDPZ — would have run the node); levels whose
bilinear form is *not* the seven Winograd products
(:data:`PARALLEL_LEVELS` is the allow-list — ``textbook`` and the
⟨3,3,3;23⟩ Laderman level are outside it) run serially so their
results match the serial driver exactly.

**Multi-level parallelism.**  The engine recurses parallel levels under a
bounded *worker budget* instead of hard-stopping at one level: a call
with ``workers=w`` runs its seven products on ``t = min(w, 7)`` threads
and hands each product the remaining budget ``max(1, w // t)``.  Down to
``max_parallel_depth`` every product is itself a parallel level, run on
as many threads as its inherited budget affords (a sub-budget of 1 runs
it sequentially); below the parallel region each product is an ordinary
serial DGEFMM recursion *continuing at its true depth* — so
depth-sensitive criteria like :class:`~repro.core.cutoff.DepthCutoff`
see one consistent depth whether a level ran parallel or serial.  So
``workers=7`` gives the classic one-level fan-out, ``workers=14,
max_parallel_depth=2`` runs 7 x 2 threads across two levels, and
``workers=49`` saturates two full levels.  Because the recursion's
*structure* depends only on the depth knob and the cutoff — never on
the budget — op counts and workspace accounting are identical for every
``workers`` value at a fixed depth.

**Workspace pooling.**  Every parallel level and every worker needs its
own arena (concurrent recursions cannot share one stack allocator).
Without a pool each is a fresh :class:`~repro.core.workspace.Workspace`
(allocating every temporary anew); with a
:class:`~repro.core.pool.WorkspacePool` the arenas are checked out,
reused buffer-for-buffer, and checked back in — repeated same-shape
calls amortize temporary allocation to zero
(:func:`~repro.core.pool.workspace_bound_bytes` sizes the arenas from
the paper's Table 1 bounds; :func:`parallel_arena_count` bounds how many
a given budget can hold at once).

The parallel level deliberately abandons the memory frugality of the
serial schedules: all four S, all four T and all seven P blocks are live
at once (mk + kn + 7mn/4 extra in the general case), the classical
memory-for-parallelism trade the paper's serial design avoided.  The
workspace accounting makes that cost visible, as everywhere else:
``ctx.stats["workspace_peak_bytes"]`` charges the *deterministic upper
bound* — the level's own peak plus the sum of all its products' peaks,
as if all workers hit their peaks simultaneously — so the figure is
exact and thread-schedule-independent.

Instrumentation: worker threads charge private contexts which are merged
into the caller's context afterwards
(:meth:`~repro.context.ExecutionContext.merge_child`), so op counts
remain exact at every depth; ``elapsed`` (model time) accumulates
*summed* worker time, i.e. it stays a work measure, not a wall-clock
prediction.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from typing import Any, Iterator, List, Optional

from repro.blas.addsub import NUMERIC_KERNELS, BlockKernels, kernels_for
from repro.blas.dtypes import (
    canonical_dtype,
    default_accuracy,
    require_integral_scalar,
)
from repro.blas.level3 import DEFAULT_TILE
from repro.blas.validate import (
    copy_on_overlap,
    opshape,
    require_matrix,
    require_writable,
)
from repro.context import ExecutionContext, ensure_context
from repro.core.config import DEFAULT_CUTOFF, GemmConfig
from repro.core.cutoff import CutoffCriterion
from repro.core.dgefmm import _rec, _scale_only, dgefmm
from repro.core.peeling import apply_fixups, apply_fixups_head, core_views
from repro.core.pool import WorkspacePool, _checkout_or_local
from repro.core.traversal import Base, decide
from repro.core.workspace import Workspace
from repro.errors import DimensionError

__all__ = ["pdgefmm", "parallel_arena_count", "PARALLEL_LEVELS"]

#: Level codes the fixed parallel schedule can host: every schedule whose
#: bilinear form is the seven Winograd products.  Other levels (textbook's
#: eight-product combine, Laderman's 23-product ⟨3,3,3⟩) fall back to the
#: serial driver — the plan compiler's parallel mirror consults the same
#: set so compiled replay keeps the identical structure.
PARALLEL_LEVELS = frozenset({"s1b0", "s1g", "s2", "bdpz"})


def _split_budget(budget: int, r: int = 7) -> tuple:
    """(threads at this level, budget inherited by each product)."""
    t = min(budget, r)
    return t, max(1, budget // t)


def parallel_arena_count(workers: int, max_parallel_depth: int = 1) -> int:
    """Most arenas a ``pdgefmm`` call can hold checked out at once.

    Use as the ``prewarm`` count of a :class:`~repro.core.pool.WorkspacePool`
    so even the first fully-parallel call constructs no arenas mid-flight.
    """
    if workers < 1:
        raise DimensionError(
            f"parallel_arena_count: workers={workers} must be >= 1"
        )
    if max_parallel_depth < 1:
        raise DimensionError(
            f"parallel_arena_count: max_parallel_depth={max_parallel_depth}"
            " must be >= 1"
        )

    def held(budget: int, level: int) -> int:
        t, sub = _split_budget(budget)
        if level < max_parallel_depth:
            per_job = held(sub, level + 1)
        else:
            per_job = 1
        return 1 + t * per_job

    return held(workers, 1)


def _quadrants(x: Any) -> tuple:
    """The four half-size blocks of an even-dimensioned matrix."""
    m, n = x.shape
    hm, hn = m // 2, n // 2
    return x[:hm, :hn], x[:hm, hn:], x[hm:, :hn], x[hm:, hn:]


def _stage_sums(
    a: Any,
    b: Any,
    ws: Workspace,
    dt: Any,
    ctx: Optional[ExecutionContext],
    em: BlockKernels = NUMERIC_KERNELS,
) -> tuple:
    """Stages (1)/(2) of the parallel level: materialize all four S and
    four T block sums plus the seven product blocks.

    Returns ``((s1..s4), (t1..t4), (p1..p7))`` — every block drawn from
    ``ws`` in a fixed order so pooled (and plan-compiled) layouts replay
    identically.  Shared by the live parallel driver and the plan
    compiler (which passes recording ``em`` kernels and a recording
    workspace).
    """
    a11, a12, a21, a22 = _quadrants(a)
    b11, b12, b21, b22 = _quadrants(b)
    hm, hk = a11.shape
    hn = b11.shape[1]
    s1 = em.madd(a21, a22, ws.alloc(hm, hk, dt), ctx=ctx)
    s2 = em.msub(s1, a11, ws.alloc(hm, hk, dt), ctx=ctx)
    s3 = em.msub(a11, a21, ws.alloc(hm, hk, dt), ctx=ctx)
    s4 = em.msub(a12, s2, ws.alloc(hm, hk, dt), ctx=ctx)
    t1 = em.msub(b12, b11, ws.alloc(hk, hn, dt), ctx=ctx)
    t2 = em.msub(b22, t1, ws.alloc(hk, hn, dt), ctx=ctx)
    t3 = em.msub(b22, b12, ws.alloc(hk, hn, dt), ctx=ctx)
    t4 = em.msub(t2, b21, ws.alloc(hk, hn, dt), ctx=ctx)
    ps = tuple(ws.alloc(hm, hn, dt) for _ in range(7))
    return (s1, s2, s3, s4), (t1, t2, t3, t4), ps


def _job_operands(a: Any, b: Any, s: tuple, t: tuple, ps: tuple) -> tuple:
    """The seven independent products of stage (3) as (a, b, out) triples."""
    a11, a12, a21, a22 = _quadrants(a)
    b11, b12, b21, b22 = _quadrants(b)
    s1, s2, s3, s4 = s
    t1, t2, t3, t4 = t
    p1, p2, p3, p4, p5, p6, p7 = ps
    return (
        (a11, b11, p1), (a12, b21, p2), (s4, b22, p3), (a22, t4, p4),
        (s1, t1, p5), (s2, t2, p6), (s3, t3, p7),
    )


def _stage_combine(
    ps: tuple,
    c: Any,
    alpha: Any,
    beta: Any,
    ctx: Optional[ExecutionContext],
    em: BlockKernels = NUMERIC_KERNELS,
) -> None:
    """Stage (4), serial: the U-tree over the materialized products."""
    c11, c12, c21, c22 = _quadrants(c)
    p1, p2, p3, p4, p5, p6, p7 = ps
    em.accum(p1, p6, ctx=ctx)                 # p6 = U2
    em.accum(p1, p2, ctx=ctx)                 # p2 = U1
    em.axpby(alpha, p2, beta, c11, ctx=ctx)   # C11 done
    em.accum(p6, p7, ctx=ctx)                 # p7 = U3
    em.axpby(alpha, p7, beta, c21, ctx=ctx)
    em.axpby(-alpha, p4, 1.0, c21, ctx=ctx)   # C21 done
    em.axpby(alpha, p7, beta, c22, ctx=ctx)
    em.axpby(alpha, p5, 1.0, c22, ctx=ctx)    # C22 done
    em.accum(p6, p5, ctx=ctx)                 # p5 = U4
    em.accum(p3, p5, ctx=ctx)                 # p5 = U5
    em.axpby(alpha, p5, beta, c12, ctx=ctx)   # C12 done


@contextmanager
def _job_arena(pool: Optional[WorkspacePool]) -> Iterator[Workspace]:
    """A private arena for one worker: pooled if possible, else fresh."""
    if pool is None:
        yield Workspace()
    else:
        with pool.arena() as ws:
            yield ws


def pdgefmm(
    a: Any,
    b: Any,
    c: Any,
    alpha: float = 1.0,
    beta: float = 0.0,
    transa: bool = False,
    transb: bool = False,
    *,
    workers: int = 7,
    max_parallel_depth: int = 1,
    cutoff: Optional[CutoffCriterion] = None,
    scheme: str = "auto",
    peel: str = "tail",
    ctx: Optional[ExecutionContext] = None,
    workspace: Optional[Workspace] = None,
    pool: Optional[WorkspacePool] = None,
    nb: int = DEFAULT_TILE,
    backend: str = "substrate",
    plan_cache: Optional["PlanCache"] = None,
    fuse: bool = False,
    accuracy: Optional[str] = None,
) -> Any:
    """Parallel Strassen GEMM: ``C <- alpha*op(A)*op(B) + beta*C``.

    Up to ``max_parallel_depth`` Winograd levels run their seven products
    concurrently under a total budget of ``workers`` threads (split
    level-by-level, see the module docstring); below the parallel region
    each product is an ordinary serial DGEFMM recursion continuing at
    its true depth with the same frozen
    :class:`~repro.core.config.GemmConfig`.  The driver accepts the full
    serial knob set — ``cutoff``, ``scheme``, ``peel``, ``nb``,
    ``backend`` — and produces bit-identical results to
    :func:`~repro.core.dgefmm.dgefmm` with the same knobs.  Schemes
    whose level is outside :data:`PARALLEL_LEVELS` (``textbook``'s
    15-add combine tree, ``laderman``'s 23-product ⟨3,3,3⟩ partition)
    and any call whose top-level decision is a base case fall back to
    the serial driver.  Depth-sensitive cutoff
    criteria (e.g. :class:`~repro.core.cutoff.DepthCutoff`) are fully
    supported: the traversal passes the current depth to ``stop`` at
    every node, so the criterion stays frozen and shareable across the
    concurrent recursions.

    ``pool`` supplies reusable per-worker workspace arenas; ``workspace``
    (if given) is used for the top level's S/T/P blocks exactly as
    before.  ``plan_cache`` (a :class:`~repro.plan.cache.PlanCache`)
    switches to compiled-plan replay: the parallel structure — which
    depends only on ``max_parallel_depth`` and the config, never on
    ``workers`` — is compiled once per signature and replayed under the
    same worker-budget model, bit-identically.  Not supported in dry
    mode (simulated time has no thread model).

    DGEMM conformance matches the serial driver: empty C returns
    immediately; ``k == 0`` or ``alpha == 0`` only scales C by beta
    (overwriting when ``beta == 0``, so NaN/Inf garbage in C is
    discarded); non-contiguous and negative-stride operand views are
    accepted; and an output overlapping an input triggers the
    copy-on-overlap fallback
    (:func:`repro.blas.validate.copy_on_overlap`).
    """
    ctx = ensure_context(ctx)
    if ctx.dry:
        raise DimensionError("pdgefmm does not support dry-run contexts")
    require_matrix("pdgefmm", "a", a)
    require_matrix("pdgefmm", "b", b)
    require_matrix("pdgefmm", "c", c)
    require_writable("pdgefmm", "c", c)
    if workers < 1:
        raise DimensionError(f"pdgefmm: workers={workers} must be >= 1")
    if max_parallel_depth < 1:
        raise DimensionError(
            f"pdgefmm: max_parallel_depth={max_parallel_depth} must be >= 1"
        )
    dt = canonical_dtype(getattr(c, "dtype", None) or "float64")
    if accuracy is None:
        accuracy = default_accuracy(dt)
    cfg = GemmConfig(
        scheme=scheme, peel=peel,
        cutoff=cutoff if cutoff is not None else DEFAULT_CUTOFF,
        nb=nb, backend=backend, fuse=fuse,
        dtype=dt, accuracy=accuracy,
    )
    if cfg.accuracy == "exact":
        # integral scalars travel as Python ints — see dgefmm
        alpha = require_integral_scalar("pdgefmm", "alpha", alpha)
        beta = require_integral_scalar("pdgefmm", "beta", beta)
    if cfg.dtype == "object":
        # pooled byte arenas and compiled plans carve typed views out of
        # raw buffers — impossible for object arrays
        pool = None
        plan_cache = None
    m, k = opshape(a, transa)
    kb, n = opshape(b, transb)
    if kb != k:
        raise DimensionError(f"pdgefmm: op(A) is {m}x{k} but op(B) is {kb}x{n}")
    if tuple(c.shape) != (m, n):
        raise DimensionError(
            f"pdgefmm: C has shape {tuple(c.shape)}, expected {(m, n)}"
        )

    # BLAS degenerate semantics before any plan/pool machinery: empty C
    # is a no-op; k == 0 or alpha == 0 forms no product, only scales C
    # by beta (overwriting when beta == 0 — NaN-safe).
    if m == 0 or n == 0:
        ctx.stats_max("workspace_peak_bytes", 0)
        return c
    if k == 0 or alpha == 0.0:
        _scale_only(c, beta, ctx, cfg.accuracy)
        ctx.stats_max("workspace_peak_bytes", 0)
        return c

    # Overlap guard: identical to the serial driver's (the parallel
    # level additionally shares its operand views across worker threads,
    # so an aliased output would corrupt concurrently).
    a, b = copy_on_overlap(c, a, b, ctx=ctx)
    opa = a.T if transa else a
    opb = b.T if transb else b

    if plan_cache is not None and workspace is None:
        # compiled-plan replay (lazy import: repro.plan compiles through
        # this module's stage helpers)
        from repro.plan.compiler import signature_for
        from repro.plan.executor import execute_plan

        sig = signature_for(
            "parallel", m, k, n, bool(transa), bool(transb),
            alpha == 0.0, beta == 0.0, dt, cfg, max_parallel_depth,
        )
        plan = plan_cache.get_or_compile(sig)
        execute_plan(plan, opa, opb, c, alpha, beta, ctx=ctx, pool=pool,
                     workers=workers)
        ctx.stats_set("plan_cache", plan_cache.stats())
        return c

    node = decide(m, k, n, 0, cfg.scheme, beta == 0.0, cfg.cutoff)
    if isinstance(node, Base) or node.level not in PARALLEL_LEVELS:
        # Serial fallback: the cutoff declined the top-level recursion,
        # or the scheme's level computes products the fixed
        # seven-product parallel schedule cannot mirror.
        # Pool-aware workspace acquisition
        # happens inside dgefmm.
        if workspace is not None:
            return dgefmm(a, b, c, alpha, beta, transa, transb,
                          cutoff=cfg.cutoff, scheme=cfg.scheme,
                          peel=cfg.peel, ctx=ctx, workspace=workspace,
                          nb=cfg.nb, backend=cfg.backend,
                          accuracy=cfg.accuracy)
        return dgefmm(a, b, c, alpha, beta, transa, transb,
                      cutoff=cfg.cutoff, scheme=cfg.scheme, peel=cfg.peel,
                      ctx=ctx, pool=pool, nb=cfg.nb, backend=cfg.backend,
                      accuracy=cfg.accuracy)

    charge = _prun(opa, opb, c, alpha, beta, workers, 1, max_parallel_depth,
                   0, cfg, cfg.scheme, ctx, pool, workspace=workspace)
    ctx.stats_max("workspace_peak_bytes", charge)
    return c


def _prun(
    a: Any,
    b: Any,
    c: Any,
    alpha: float,
    beta: float,
    budget: int,
    level: int,
    max_depth: int,
    depth: int,
    cfg: GemmConfig,
    scheme: str,
    ctx: ExecutionContext,
    pool: Optional[WorkspacePool],
    workspace: Optional[Workspace] = None,
) -> int:
    """One node of the parallel recursion; returns its peak-bytes charge.

    ``a``/``b`` are transpose-resolved views; ``depth`` is the node's
    recursion depth (parallel levels consume depth exactly like serial
    levels).  The node either runs a parallel level (peeling odd
    dimensions around it per the traversal's decision) or — when the
    traversal stops, or resolves a level the parallel schedule cannot
    host — a serial recursion in a private arena.
    """
    m, k = a.shape
    n = b.shape[1]
    if m == 0 or n == 0:
        return 0
    if k == 0 or alpha == 0.0:
        _scale_only(c, beta, ctx, cfg.accuracy)
        return 0
    node = decide(m, k, n, depth, scheme, beta == 0.0, cfg.cutoff)
    if isinstance(node, Base) or node.level not in PARALLEL_LEVELS:
        with _job_arena(pool) as ws:
            _rec(a, b, c, alpha, beta, depth, cfg, scheme, ctx, ws)
            return ws.peak_bytes

    ws = workspace
    pooled = False
    if ws is None:
        ws, pooled = _checkout_or_local(pool)
    try:
        core_a, core_b, core_c = (
            core_views(a, b, c, cfg.peel, node.divisors)
            if node.peeled else (a, b, c)
        )
        charge = _parallel_level(
            core_a, core_b, core_c, alpha, beta, budget, level, max_depth,
            depth, cfg, node.child_scheme, ctx, ws, pool,
        )
        if node.peeled:
            if cfg.peel == "tail":
                apply_fixups(a, b, c, alpha, beta, ctx=ctx,
                             divisors=node.divisors)
            else:
                apply_fixups_head(a, b, c, alpha, beta, ctx=ctx,
                                  divisors=node.divisors)
    except BaseException:
        if pooled:
            pool.release(ws)
        raise
    if pooled:
        pool.checkin(ws)
    return charge


def _parallel_level(
    a: Any,
    b: Any,
    c: Any,
    alpha: float,
    beta: float,
    budget: int,
    level: int,
    max_depth: int,
    depth: int,
    cfg: GemmConfig,
    child_scheme: str,
    ctx: ExecutionContext,
    ws: Workspace,
    pool: Optional[WorkspacePool],
) -> int:
    """One parallel Winograd level (even dims); returns the peak charge:
    this level's own arena peak plus the sum of its products' charges."""
    dt = getattr(c, "dtype", None) or "float64"
    em = kernels_for(cfg.accuracy)
    threads, sub_budget = _split_budget(budget)
    # the *structure* of the recursion depends only on max_parallel_depth
    # (and the config); the budget governs execution — how many threads
    # each level gets.  A sub-budget of 1 runs the deeper parallel level
    # sequentially, so instrumentation and workspace accounting are
    # identical for every workers value at a fixed depth.
    go_deeper = level < max_depth

    with ws.frame():
        # stages (1)/(2): all eight sums materialized (read-only inputs
        # for the concurrent products)
        s, t, ps = _stage_sums(a, b, ws, dt, ctx, em)
        jobs = _job_operands(a, b, s, t, ps)

        worker_ctxs = [
            ExecutionContext(ctx.machine, trace=ctx.trace) for _ in jobs
        ]
        peaks: List[int] = [0] * len(jobs)

        def run(idx: int) -> None:
            aa, bb, cc = jobs[idx]
            wctx = worker_ctxs[idx]
            if go_deeper:
                # another parallel level with the split budget
                peaks[idx] = _prun(aa, bb, cc, 1.0, 0.0, sub_budget,
                                   level + 1, max_depth, depth + 1, cfg,
                                   child_scheme, wctx, pool)
            else:
                # serial recursion in a private (pooled) arena,
                # continuing at this subtree's true depth
                with _job_arena(pool) as wws:
                    _rec(aa, bb, cc, 1.0, 0.0, depth + 1, cfg,
                         child_scheme, wctx, wws)
                    peaks[idx] = wws.peak_bytes

        if threads == 1:
            for i in range(len(jobs)):
                run(i)
        else:
            with ThreadPoolExecutor(max_workers=threads) as tpool:
                list(tpool.map(run, range(len(jobs))))

        # merge worker instrumentation (work, not wall time); job order,
        # so the merged counters are thread-schedule-independent
        for wctx in worker_ctxs:
            ctx.merge_child(wctx)

        _stage_combine(ps, c, alpha, beta, ctx, em)

    return ws.peak_bytes + sum(peaks)
