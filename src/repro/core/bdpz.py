"""BDPZ — the two-temporary accumulating Winograd schedule.

Boyer, Dumas, Pernet and Zhou ("Memory efficient scheduling of
Strassen-Winograd's matrix multiplication algorithm", arXiv:0707.2347)
show that the accumulating product ``C <- alpha*A*B + beta*C`` admits a
Winograd schedule using only two temporaries — one m/2 x k/2 block (X)
and one k/2 x n/2 block (Y) — with *no* m/2 x n/2 product temporary.
Per level that is ``(mk + kn)/4`` extra elements, so the recursion-wide
bound is ``(mk + kn)/3`` — ``2m^2/3`` for square operands, strictly
below STRASSEN2's ``m^2`` (paper Table 1) even though, unlike
STRASSEN1's two-temporary variant, the schedule handles *general* beta.
The trick: the four quadrants of C absorb the seven products in place.

With ``f_ij := beta*C_ij + alpha*P1`` the recombination is rearranged
around P1 (which every quadrant consumes): the schedule first forms
``C_ij - C11`` differences, computes P1 into C11, broadcasts
``f_ij``, then drips P6, P7, P4, P5, P3 and P2 into the quadrants in an
order whose partial sums never need a scratch block.  All seven
recursive products accumulate into live destinations (beta = 1 children
except P1, which inherits the caller's scalar class) — the
beta-accumulating form is exactly what BDPZ optimise for.

When ``beta == 0`` the three initial difference AXPBYs vanish (C's
prior content is dead) and the ``f_ij`` broadcasts become overwriting
copies: 21 block additions instead of 24.  Both counts are pinned in
:data:`repro.core.schemes.LEVEL_PROFILE` and cross-checked against
compiled-plan traces by the conformance harness.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.blas.addsub import NUMERIC_KERNELS, BlockKernels
from repro.context import ExecutionContext
from repro.core.workspace import Workspace

__all__ = ["bdpz_level"]

RecurseFn = Callable[[Any, Any, Any, float, float], None]


def bdpz_level(
    a: Any,
    b: Any,
    c: Any,
    alpha: float,
    beta: float,
    *,
    ctx: ExecutionContext,
    ws: Workspace,
    recurse: RecurseFn,
    kernels: Optional[BlockKernels] = None,
) -> None:
    """One BDPZ level of ``C <- alpha*A*B + beta*C``; even dims."""
    em = kernels if kernels is not None else NUMERIC_KERNELS
    m, k = a.shape
    n = b.shape[1]
    hm, hk, hn = m // 2, k // 2, n // 2

    a11, a12, a21, a22 = a[:hm, :hk], a[:hm, hk:], a[hm:, :hk], a[hm:, hk:]
    b11, b12, b21, b22 = b[:hk, :hn], b[:hk, hn:], b[hk:, :hn], b[hk:, hn:]
    c11, c12, c21, c22 = c[:hm, :hn], c[:hm, hn:], c[hm:, :hn], c[hm:, hn:]

    dt = getattr(c, "dtype", None) or "float64"
    with ws.frame():
        x = ws.alloc(hm, hk, dt)
        y = ws.alloc(hk, hn, dt)

        if beta != 0.0:
            # pre-difference against C11 so the f_ij broadcasts below
            # can reuse beta uniformly (C11 is about to be clobbered)
            em.axpby(-1.0, c11, 1.0, c12, ctx=ctx)   # C12 - C11
            em.axpby(-1.0, c11, 1.0, c21, ctx=ctx)   # C21 - C11
            em.axpby(-1.0, c11, 1.0, c22, ctx=ctx)   # C22 - C11
        recurse(a11, b11, c11, alpha, beta)       # c11 = f11 := bC11+aP1
        em.axpby(1.0, c11, beta, c12, ctx=ctx)       # c12 = f12
        em.axpby(1.0, c11, beta, c21, ctx=ctx)       # c21 = f21
        em.axpby(1.0, c11, beta, c22, ctx=ctx)       # c22 = f22
        recurse(a12, b21, c11, alpha, 1.0)        # C11 done (f11 + aP2)
        em.madd(a21, a22, x, ctx=ctx)                # x = S1
        em.axpby(-1.0, a11, 1.0, x, ctx=ctx)         # x = S2
        em.msub(b12, b11, y, ctx=ctx)                # y = T1
        em.msub(b22, y, y, ctx=ctx)                  # y = T2
        em.axpby(-1.0, c21, 1.0, c12, ctx=ctx)       # c12 = f12 - f21
        em.axpby(-1.0, c21, 1.0, c22, ctx=ctx)       # c22 = f22 - f21
        recurse(x, y, c21, alpha, 1.0)            # c21 = f21 + aP6
        em.accum(c21, c12, ctx=ctx)                  # c12 = f12 + aP6
        em.msub(a11, a21, x, ctx=ctx)                # x = S3
        em.msub(b22, b12, y, ctx=ctx)                # y = T3
        recurse(x, y, c21, alpha, 1.0)            # c21 = f21 + a(P6+P7)
        em.accum(c21, c22, ctx=ctx)                  # c22 = f22 + a(P6+P7)
        em.accum(b11, y, ctx=ctx)                    # y = T2 (= B22-B12+B11)
        em.msub(y, b21, y, ctx=ctx)                  # y = T4
        recurse(a22, y, c21, -alpha, 1.0)         # C21 done (.. - aP4)
        em.madd(a21, a22, x, ctx=ctx)                # x = S1
        em.msub(b12, b11, y, ctx=ctx)                # y = T1
        em.axpby(-1.0, c12, 1.0, c22, ctx=ctx)       # c22 = f22-f12 + aP7
        recurse(x, y, c12, alpha, 1.0)            # c12 = f12 + a(P6+P5)
        em.accum(c12, c22, ctx=ctx)                  # C22 done
        em.msub(a11, x, x, ctx=ctx)                  # x = -S2
        em.accum(a12, x, ctx=ctx)                    # x = S4
        recurse(x, b22, c12, alpha, 1.0)          # C12 done (.. + aP3)
