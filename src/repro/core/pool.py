"""Reusable workspace arenas: amortizing temporary allocation to zero.

The serial driver allocates every temporary with ``np.empty`` inside a
:class:`~repro.core.workspace.Workspace` frame.  That is fine for one
multiply, but a service that runs the *same* GEMM shape thousands of
times (the ROADMAP's heavy-traffic regime) pays the allocator — and the
page-faulting of fresh memory — on every call.  Huang et al.'s BLIS
Strassen (PAPERS.md) locate much of their practical speedup in exactly
this: pre-provisioned, reused workspace.

Two classes implement the fix:

:class:`PooledWorkspace`
    A :class:`~repro.core.workspace.Workspace` whose allocations are
    carved out of one contiguous backing buffer with a bump pointer.
    Stack discipline makes this exact: frames rewind the pointer on
    exit, so the buffer layout replays identically on every call.  The
    buffer can only be *grown* while no frames are open (live views
    would otherwise dangle), so an under-sized arena falls back to
    ``np.empty`` for the overflowing request, records the true
    requirement, and regrows at check-in.  After one warm-up call at a
    given problem size, repeated calls perform **zero** new allocations.

:class:`WorkspacePool`
    A thread-safe check-out/check-in pool of such arenas.  Every worker
    thread of the parallel driver checks out its own arena, so arenas
    are never shared between concurrent multiplications; check-in makes
    the (grown) buffer available to the next call.

Sizing comes from the paper's Table 1 bounds
(:func:`workspace_bound_bytes`): e.g. STRASSEN2 needs at most
``(mk + kn + mn)/3`` extra elements over the whole recursion, so an
arena hinted with that figure never grows at all.

The stack-discipline :class:`~repro.errors.WorkspaceError` invariants
are inherited unchanged — a leaked frame is detected inside a pooled
arena exactly as in a plain workspace, and a leaked arena is *dropped*
(never re-pooled) because live views may still reference its buffer.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Iterator, List, Optional

import numpy as np

from repro.core.workspace import Workspace
from repro.errors import WorkspaceError

__all__ = ["PooledWorkspace", "WorkspacePool", "workspace_bound_bytes"]

#: bump-pointer alignment: one cache line, a multiple of every dtype the
#: schedules allocate (float64, complex128)
_ALIGN = 64


def _align_up(nbytes: int) -> int:
    return (nbytes + _ALIGN - 1) & ~(_ALIGN - 1)


def _aligned_buffer(nbytes: int) -> np.ndarray:
    """A uint8 buffer whose base address is 64-byte aligned.

    numpy only guarantees 16-byte alignment; over-allocate and offset so
    the bump allocator's relative offsets are absolute alignments too
    (and the layout replays identically after a regrow moves the base).
    """
    raw = np.empty(int(nbytes) + _ALIGN, dtype=np.uint8)
    off = (-raw.ctypes.data) % _ALIGN
    return raw[off:off + int(nbytes)]


def workspace_bound_bytes(
    m: int,
    k: int,
    n: int,
    scheme: str = "strassen2",
    dtype=np.float64,
) -> int:
    """Recursion-wide workspace bound, in bytes, for one m x k x n GEMM.

    ``scheme`` is any registry scheme name — the per-scheme element
    bounds (the paper's Table 1 figures, plus the registered non-2x2
    families) live in :func:`repro.core.schemes.bound_elements` — or
    ``"parallel"``: one task-parallel level (all four S, four T and
    seven quarter-size P blocks live at once) on top of a STRASSEN2
    recursion inside each product.  The figure includes alignment slack
    for the bump allocator, so an arena hinted with it never regrows.
    """
    if scheme == "parallel":
        mk, kn, mn = max(m * k, 1), max(k * n, 1), max(m * n, 1)
        # one level: S blocks (4 * mk/4) + T blocks (4 * kn/4) + seven
        # P blocks (7 * mn/4); each product then runs STRASSEN2 at
        # half size inside its own arena, which is sized separately.
        elems = mk + kn + 7 * mn / 4.0
    else:
        from repro.core.schemes import bound_elements

        try:
            elems = bound_elements(scheme, m, k, n)
        except KeyError:
            raise WorkspaceError(
                f"unknown workspace bound scheme {scheme!r}"
            ) from None
    itemsize = np.dtype(dtype).itemsize
    # the recursion allocates O(log) temporaries per level; 64 B of
    # alignment slack each is covered comfortably by one extra KiB plus
    # a 2 % margin for the odd-dimension peeling remainders
    return int(elems * itemsize * 1.02) + 1024


class PooledWorkspace(Workspace):
    """A workspace whose temporaries live in one reusable backing buffer.

    Parameters
    ----------
    nbytes:
        Initial capacity of the backing buffer.  Zero is valid: the
        arena then learns its requirement on the first call (every
        request overflows to ``np.empty``) and provisions the buffer at
        the first quiescent point (:meth:`regrow`).
    """

    def __init__(self, nbytes: int = 0) -> None:
        super().__init__()
        self._buffer = _aligned_buffer(nbytes)
        if nbytes:
            self.new_buffer_bytes += int(nbytes)
            self.new_buffer_count += 1
        self._cursor = 0
        self._cursor_stack: List[int] = []
        self._required = 0
        #: allocations that did not fit the buffer and fell back to
        #: ``np.empty`` (they regrow the buffer at the next check-in)
        self.overflow_count = 0

    @property
    def capacity_bytes(self) -> int:
        """Current size of the reusable backing buffer."""
        return int(self._buffer.nbytes)

    @contextmanager
    def frame(self) -> Iterator["PooledWorkspace"]:
        self._cursor_stack.append(self._cursor)
        try:
            with super().frame():
                yield self
        finally:
            self._cursor = self._cursor_stack.pop()

    def _make(self, m: int, n: int, dtype, nbytes: int) -> Any:
        start = _align_up(self._cursor)
        end = start + nbytes
        if end > self._required:
            self._required = end
        if end > self._buffer.nbytes:
            # cannot regrow mid-call: earlier views alias the buffer.
            # Serve this request from the heap, but keep advancing the
            # cursor virtually so ``_required`` records the true layout
            # requirement and one regrow at check-in suffices.
            self._cursor = end
            self.overflow_count += 1
            return super()._make(m, n, dtype, nbytes)
        self._cursor = end
        flat = self._buffer[start:end].view(dtype)
        return flat.reshape((m, n), order="F")

    def begin_call(self) -> None:
        """Reset per-call accounting (peak watermark) at check-out.

        The buffer and its lifetime counters (``new_buffer_*``) are
        deliberately *not* reset — they are the amortization record.
        """
        if self._frames:
            raise WorkspaceError(
                f"begin_call with {len(self._frames)} frame(s) still open"
            )
        self._peak_bytes = self._live_bytes  # == 0 at depth 0

    def reserve(self, nbytes: int) -> np.ndarray:
        """Ensure the backing buffer holds at least ``nbytes``; return it.

        The plan executor (:mod:`repro.plan.executor`) sizes an arena
        once from a compiled plan's precomputed layout, then binds all
        temporary views against the returned buffer.  Only legal while
        no frames are open (a regrow moves the base and would dangle
        any live frame views).  The request is recorded in ``_required``
        so a later :meth:`regrow` never shrinks below it.
        """
        if self._frames:
            raise WorkspaceError(
                f"reserve with {len(self._frames)} frame(s) still open"
            )
        if nbytes < 0:
            raise WorkspaceError(f"invalid reserve request {nbytes}")
        if nbytes > self._required:
            self._required = int(nbytes)
        if self._required > self._buffer.nbytes:
            self._buffer = _aligned_buffer(self._required)
            self.new_buffer_bytes += int(self._buffer.nbytes)
            self.new_buffer_count += 1
        return self._buffer

    def regrow(self) -> None:
        """Provision the buffer for the largest requirement seen so far.

        Only legal while no frames are open (no live views).  Called by
        the pool at check-in, so the *next* call at the same problem
        size is served entirely from the buffer.
        """
        if self._frames:
            raise WorkspaceError(
                f"regrow with {len(self._frames)} frame(s) still open"
            )
        if self._required > self._buffer.nbytes:
            self._buffer = _aligned_buffer(self._required)
            self.new_buffer_bytes += int(self._buffer.nbytes)
            self.new_buffer_count += 1


class WorkspacePool:
    """Thread-safe pool of :class:`PooledWorkspace` arenas.

    Parameters
    ----------
    size_hint_bytes:
        Capacity every newly created arena starts with.  Use
        :func:`workspace_bound_bytes` for the paper's Table 1 figure of
        the shapes you will run; a zero hint merely costs one warm-up
        call per arena.
    prewarm:
        Create this many arenas eagerly, so a fully parallel first call
        performs no arena construction either.

    Check-out hands each caller a *private* arena (arenas are never
    shared between outstanding check-outs), so pooled execution needs no
    locking on the allocation hot path — the lock guards only the free
    list.  :meth:`checkin` enforces the quiescence invariant (all frames
    closed) with :class:`~repro.errors.WorkspaceError`; :meth:`release`
    is the exception-path variant that never raises and silently drops a
    non-quiescent arena instead of re-pooling it.
    """

    def __init__(self, size_hint_bytes: int = 0, *, prewarm: int = 0) -> None:
        if size_hint_bytes < 0:
            raise WorkspaceError(
                f"invalid pool size hint {size_hint_bytes}"
            )
        self.size_hint_bytes = int(size_hint_bytes)
        self._lock = threading.Lock()
        self._free: List[PooledWorkspace] = []
        self._all: List[PooledWorkspace] = []
        self._created = 0
        self._outstanding = 0
        for _ in range(prewarm):
            self._free.append(self._new_arena())

    # ------------------------------------------------------------------ #
    def _new_arena(self) -> PooledWorkspace:
        ws = PooledWorkspace(self.size_hint_bytes)
        self._all.append(ws)
        self._created += 1
        return ws

    @property
    def arenas_created(self) -> int:
        """Total arenas ever constructed by this pool (survives shrink)."""
        return self._created

    @property
    def outstanding(self) -> int:
        """Arenas currently checked out."""
        return self._outstanding

    @property
    def idle(self) -> int:
        """Arenas currently in the free list."""
        return len(self._free)

    @property
    def new_buffer_bytes(self) -> int:
        """Fresh heap bytes requested across all arenas, ever.

        Flat across calls == the amortization claim holds (warm pool,
        zero new allocations).
        """
        with self._lock:
            return sum(ws.new_buffer_bytes for ws in self._all)

    @property
    def new_buffer_count(self) -> int:
        """Fresh buffer requests across all arenas, ever."""
        with self._lock:
            return sum(ws.new_buffer_count for ws in self._all)

    def stats(self) -> dict:
        """Consistent counters snapshot (one lock acquisition).

        The long-running-service view of the pool: arena population,
        how many are in flight, resident buffer bytes, and the lifetime
        allocation record that backs the amortization claim.
        """
        with self._lock:
            return {
                "arenas": len(self._all),
                "created": self._created,
                "idle": len(self._free),
                "outstanding": self._outstanding,
                "capacity_bytes": sum(
                    ws.capacity_bytes for ws in self._all
                ),
                "new_buffer_bytes": sum(
                    ws.new_buffer_bytes for ws in self._all
                ),
                "new_buffer_count": sum(
                    ws.new_buffer_count for ws in self._all
                ),
            }

    def shrink(self, keep_idle: int = 0) -> int:
        """Drop idle arenas beyond ``keep_idle``; returns bytes released.

        Memory-pressure hook for long-running services: a traffic burst
        can grow the free list well past steady-state needs, and the
        arenas (with their grown buffers) would otherwise stay resident
        forever.  Outstanding arenas are untouched.  Dropped arenas
        leave the stats population, so their ``new_buffer_*`` history
        leaves with them — callers tracking the amortization claim
        should snapshot :meth:`stats` before shrinking.
        """
        if keep_idle < 0:
            raise WorkspaceError(f"invalid keep_idle {keep_idle}")
        with self._lock:
            released = 0
            while len(self._free) > keep_idle:
                ws = self._free.pop(0)
                self._all.remove(ws)
                released += ws.capacity_bytes
            return released

    # ------------------------------------------------------------------ #
    def checkout(self) -> PooledWorkspace:
        """Acquire a private arena (reused if one is idle)."""
        with self._lock:
            ws = self._free.pop() if self._free else self._new_arena()
            self._outstanding += 1
        ws.begin_call()
        return ws

    def checkin(self, ws: PooledWorkspace) -> None:
        """Return a quiescent arena to the pool.

        Raises :class:`~repro.errors.WorkspaceError` if the arena still
        has open frames — returning it would let the next caller scribble
        over live views (the pool-level stack-discipline invariant).
        """
        if ws.depth != 0:
            with self._lock:
                self._outstanding -= 1
            raise WorkspaceError(
                f"checkin of arena with {ws.depth} open frame(s)"
            )
        ws.regrow()
        with self._lock:
            self._outstanding -= 1
            self._free.append(ws)

    def release(self, ws: PooledWorkspace) -> None:
        """Exception-safe check-in: never raises.

        A cleanly unwound arena is re-pooled (after regrowing); a leaked
        one is dropped so its buffer can never be handed to another
        caller while views survive.
        """
        if ws.depth == 0:
            self.checkin(ws)
        else:
            # quarantined: stays in the stats (`_all`) but never in the
            # free list, so its live views can never be scribbled over
            with self._lock:
                self._outstanding -= 1

    @contextmanager
    def arena(self) -> Iterator[PooledWorkspace]:
        """``with pool.arena() as ws:`` — checkout/checkin guard.

        On an exception the arena goes through :meth:`release`, so a
        frame leaked by the failing call is quarantined rather than
        masking the original error with a pool error.
        """
        ws = self.checkout()
        try:
            yield ws
        except BaseException:
            self.release(ws)
            raise
        self.checkin(ws)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"WorkspacePool(arenas={self.arenas_created}, "
            f"idle={self.idle}, outstanding={self.outstanding}, "
            f"hint={self.size_hint_bytes}B)"
        )


def _checkout_or_local(
    pool: Optional[WorkspacePool], *, dry: bool = False
) -> tuple:
    """(workspace, pooled?) — helper for drivers with an optional pool.

    Dry-run contexts never draw from a pool: phantom allocations cost
    nothing and must not reset a real arena's watermark.
    """
    if pool is not None and not dry:
        return pool.checkout(), True
    return Workspace(dry=dry), False
