"""Execution context: instrumentation, simulated time, dry-run switch.

Every kernel in :mod:`repro.blas` and every Strassen driver accepts an
optional :class:`ExecutionContext`.  The context serves three roles:

1. **Instrumentation** — counts kernel invocations and floating-point
   operations using the paper's operation-count conventions
   (Section 2: ``M(m,k,n) = 2mkn - mn`` for a standard multiply,
   ``G(m,n) = mn`` for a matrix add/subtract).

2. **Simulated clock** — when a :class:`~repro.machines.model.MachineModel`
   is attached, each kernel also charges its *modeled* execution time for
   that machine, enabling deterministic reproduction of the paper's
   timing-shaped experiments (cutoff crossovers, criteria comparisons,
   code-vs-code ratios) without 1996 hardware.

3. **Dry-run switch** — with ``dry=True`` the kernels skip all numerics
   (operands are :class:`~repro.phantom.Phantom` shapes), so parameter
   sweeps over thousands of large problems are instant while exercising
   the identical control flow.

The context is deliberately cheap: plain attribute bumps, no locking —
one context per top-level call or experiment.  When one context *must*
be shared by concurrent top-level calls (the serving engine's shared
instrumentation, or user code hammering ``pdgefmm`` from threads),
construct it with ``threadsafe=True``: every counter update —
:meth:`~ExecutionContext.charge`, :meth:`~ExecutionContext.merge_child`,
:meth:`~ExecutionContext.record` and the :meth:`~ExecutionContext.
stats_max`/:meth:`~ExecutionContext.stats_set` helpers — then runs under
one reentrant lock, so tallies stay exact instead of losing
read-modify-write races.  The default stays lock-free.
"""

from __future__ import annotations

import threading
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["ExecutionContext", "ensure_context", "RecursionEvent"]


@dataclass
class RecursionEvent:
    """One node of the Strassen recursion tree, recorded when tracing.

    ``action`` is one of ``"recurse"``, ``"base"``, ``"peel"``; dims are
    the (m, k, n) of the product at this node; ``depth`` is the recursion
    depth (0 = top-level call).
    """

    action: str
    m: int
    k: int
    n: int
    depth: int
    scheme: str = ""


class ExecutionContext:
    """Mutable per-call instrumentation and simulation state.

    Parameters
    ----------
    machine:
        Optional machine cost model (see :mod:`repro.machines`).  When
        present, kernels advance :attr:`elapsed` by the model's predicted
        time for each operation.
    dry:
        When True, kernels validate shapes and charge costs but perform no
        floating-point work; operands must then be Phantoms (or are simply
        not touched).
    trace:
        When True, Strassen drivers append :class:`RecursionEvent` records
        to :attr:`events` — used by tests and by the recursion-depth
        experiments (Table 5).
    threadsafe:
        When True, all counter mutations take a private reentrant lock,
        so the context can be shared by concurrent top-level calls with
        exact tallies.  Leave False (the default) for the usual
        one-context-per-call pattern — the hot path then pays no lock.
    """

    def __init__(
        self,
        machine: Optional[Any] = None,
        *,
        dry: bool = False,
        trace: bool = False,
        threadsafe: bool = False,
    ) -> None:
        if dry and machine is None:
            # Dry runs are allowed without a machine (pure op counting),
            # but most callers want timing; nothing to validate here.
            pass
        self.machine = machine
        self.dry = bool(dry)
        self.trace = bool(trace)
        self._lock = threading.RLock() if threadsafe else None
        self.reset()

    @property
    def threadsafe(self) -> bool:
        """True when counter updates are serialized through a lock."""
        return self._lock is not None

    # ------------------------------------------------------------------ #
    def reset(self) -> None:
        """Zero all counters and the simulated clock."""
        #: total floating-point operations charged (multiplies + adds)
        self.flops: float = 0.0
        #: scalar multiplications charged (the "7 multiplies" currency)
        self.mul_flops: float = 0.0
        #: scalar additions/subtractions charged
        self.add_flops: float = 0.0
        #: simulated seconds elapsed (0 unless a machine model is attached)
        self.elapsed: float = 0.0
        #: kernel name -> number of invocations
        self.kernel_calls: Counter = Counter()
        #: recursion trace (populated when ``trace=True``)
        self.events: List[RecursionEvent] = []
        #: scratch area for drivers (workspace peak, decisions, ...)
        self.stats: Dict[str, Any] = {}

    # ------------------------------------------------------------------ #
    def charge(
        self,
        kernel: str,
        *,
        muls: float = 0.0,
        adds: float = 0.0,
        seconds: Optional[float] = None,
    ) -> None:
        """Record one kernel invocation.

        ``muls``/``adds`` follow the paper's operation-count model;
        ``seconds`` is the machine-model time (ignored when no machine is
        attached — callers pass it unconditionally for simplicity).
        """
        if self._lock is not None:
            with self._lock:
                self._charge(kernel, muls, adds, seconds)
        else:
            self._charge(kernel, muls, adds, seconds)

    def _charge(
        self,
        kernel: str,
        muls: float,
        adds: float,
        seconds: Optional[float],
    ) -> None:
        self.kernel_calls[kernel] += 1
        self.mul_flops += muls
        self.add_flops += adds
        self.flops += muls + adds
        if self.machine is not None and seconds is not None:
            self.elapsed += seconds

    def charge_many(
        self,
        kernel: str,
        calls: int,
        *,
        muls: float = 0.0,
        adds: float = 0.0,
    ) -> None:
        """Record ``calls`` invocations of ``kernel`` in one update.

        ``muls``/``adds`` are the *aggregate* tallies across all the
        calls.  The fused plan replay loop (:mod:`repro.plan.fuse`)
        charges each elementwise run and each batched product group
        once through here; because every tally is an integer-valued
        float well below 2**53, the aggregate sums equal the per-call
        sums bit-for-bit.  No model time is charged — fused replay is
        gated off when a machine model is attached.
        """
        if self._lock is not None:
            with self._lock:
                self._charge_many(kernel, calls, muls, adds)
        else:
            self._charge_many(kernel, calls, muls, adds)

    def _charge_many(
        self, kernel: str, calls: int, muls: float, adds: float
    ) -> None:
        self.kernel_calls[kernel] += calls
        self.mul_flops += muls
        self.add_flops += adds
        self.flops += muls + adds

    def record(self, event: RecursionEvent) -> None:
        """Append a recursion-trace event (no-op unless tracing)."""
        if self.trace:
            if self._lock is not None:
                with self._lock:
                    self.events.append(event)
            else:
                self.events.append(event)

    def merge_child(self, child: "ExecutionContext") -> None:
        """Fold a worker's counters into this context — exactly.

        The parallel driver gives every worker thread a *private* child
        context (no locking on the hot path) and merges them back in job
        order once the workers have joined, so the merged op counts,
        kernel tallies and trace are identical to a serial execution of
        the same schedule, independent of thread interleaving.
        ``elapsed`` accumulates *summed* worker time: a work measure,
        not a wall-clock prediction.  ``stats`` entries are driver-owned
        (e.g. the parallel driver aggregates workspace peaks itself) and
        are deliberately not merged here.
        """
        if self._lock is not None:
            with self._lock:
                self._merge_child(child)
        else:
            self._merge_child(child)

    def _merge_child(self, child: "ExecutionContext") -> None:
        self.flops += child.flops
        self.mul_flops += child.mul_flops
        self.add_flops += child.add_flops
        self.elapsed += child.elapsed
        self.kernel_calls.update(child.kernel_calls)
        self.events.extend(child.events)

    # ------------------------------------------------------------------ #
    def stats_max(self, key: str, value: Any) -> None:
        """``stats[key] = max(stats.get(key, value), value)`` — atomically.

        Drivers report high-water marks (workspace peaks) through this
        helper instead of open-coded read-modify-write, so a context
        shared by concurrent top-level calls (``threadsafe=True``) never
        loses an update.
        """
        if self._lock is not None:
            with self._lock:
                self.stats[key] = max(self.stats.get(key, value), value)
        else:
            self.stats[key] = max(self.stats.get(key, value), value)

    def stats_set(self, key: str, value: Any) -> None:
        """``stats[key] = value`` under the context lock (when present).

        For last-writer-wins snapshot entries (e.g. plan-cache counter
        snapshots), where the value itself is computed atomically by its
        owner and only the dictionary store needs serializing.
        """
        if self._lock is not None:
            with self._lock:
                self.stats[key] = value
        else:
            self.stats[key] = value

    # ------------------------------------------------------------------ #
    def model_time(self, method: str, *dims: int) -> Optional[float]:
        """Predicted seconds for a kernel on the attached machine.

        ``method`` names a timing method of the machine model
        (``"t_gemm"``, ``"t_add"``, ``"t_ger"``, ``"t_gemv"``,
        ``"t_copy"``, ``"t_scal"``).  Returns None when no machine model
        is attached (wall-clock mode).
        """
        if self.machine is None:
            return None
        return getattr(self.machine, method)(*dims)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        mach = type(self.machine).__name__ if self.machine else None
        return (
            f"ExecutionContext(machine={mach}, dry={self.dry}, "
            f"flops={self.flops:.3g}, elapsed={self.elapsed:.3g}s)"
        )


def ensure_context(ctx: Optional[ExecutionContext]) -> ExecutionContext:
    """Return ``ctx`` or a fresh default context.

    Public entry points call this once and pass the result down the whole
    recursion, so a user who does not care about instrumentation pays only
    one small allocation per top-level call.
    """
    return ctx if ctx is not None else ExecutionContext()
