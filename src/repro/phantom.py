"""Shape-only stand-ins for matrices, used by the dry-run execution mode.

The paper's timing experiments (Figures 2-6, Tables 2-5) sweep hundreds of
problems with dimensions up to 2050.  The quantities being studied —
crossover points, cutoff-criterion decisions, recursion depth, workspace
high-water marks, modeled execution time — depend only on the *dimensions*
flowing through the algorithm, never on matrix element values.

A :class:`Phantom` is an array-like object carrying only a shape.  When the
:class:`~repro.context.ExecutionContext` is in dry mode, every algorithm in
this package (DGEFMM, both STRASSEN schedules, peeling, padding, all
comparators) runs its *real* control flow over Phantoms: the same slices are
taken, the same temporaries are drawn from the workspace, the same kernels
are invoked and charge the same modeled costs — only the floating-point
work is skipped.  This keeps the simulated experiments and the numerical
code on literally the same code path, so they cannot drift apart.

Phantoms deliberately implement only the operations the algorithms need
(shape inspection, 2-D slicing, transpose); anything else raises, which
catches accidental numeric work on a phantom during development.
"""

from __future__ import annotations

from typing import Any, Tuple, Union

import numpy as np

__all__ = ["Phantom", "is_phantom", "shape_of", "like"]


def _slice_extent(s: Union[slice, int], n: int) -> Union[int, None]:
    """Extent of dim of size ``n`` under index ``s``; None = dim dropped.

    Integer indices drop the dimension (as numpy does), which is how the
    peeling fix-up obtains row/column vectors from phantom matrices.
    """
    if isinstance(s, slice):
        start, stop, step = s.indices(n)
        if step <= 0:
            raise IndexError("Phantom slicing requires a positive step")
        return max(0, (stop - start + step - 1) // step)
    if isinstance(s, (int, np.integer)):
        idx = int(s)
        if idx < -n or idx >= n:
            raise IndexError(f"phantom index {idx} out of range for dim {n}")
        return None
    raise IndexError(f"unsupported phantom index {s!r}")


class Phantom:
    """An array of a given shape with no data.

    Supports ``.shape``, ``.ndim``, ``.size``, ``.dtype``, ``.T``, and
    basic 1-D/2-D slicing — the exact surface the Strassen drivers use on
    their operands.
    """

    __slots__ = ("shape", "dtype")

    def __init__(self, *shape: int, dtype: Any = np.float64) -> None:
        if len(shape) == 1 and isinstance(shape[0], tuple):
            shape = shape[0]
        if not all(isinstance(d, (int, np.integer)) and d >= 0 for d in shape):
            raise ValueError(f"invalid phantom shape {shape!r}")
        self.shape: Tuple[int, ...] = tuple(int(d) for d in shape)
        #: dtype the phantom reports.  Defaults to float64 (the paper's
        #: DGEFMM case); complex dry runs construct complex128 phantoms so
        #: workspace accounting charges the true 16-byte element width —
        #: the dtype propagates through slicing/transpose/reshape and into
        #: every temporary the schedules draw from a dry workspace.
        self.dtype = np.dtype(dtype)

    # ------------------------------------------------------------------ #
    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def size(self) -> int:
        n = 1
        for d in self.shape:
            n *= d
        return n

    @property
    def T(self) -> "Phantom":
        return Phantom(*self.shape[::-1], dtype=self.dtype)

    # ------------------------------------------------------------------ #
    def __getitem__(self, key: Any) -> "Phantom":
        if not isinstance(key, tuple):
            key = (key,)
        if len(key) > self.ndim:
            raise IndexError(
                f"too many indices for phantom of ndim {self.ndim}"
            )
        extents = [_slice_extent(k, n) for k, n in zip(key, self.shape)]
        new_shape = [e for e in extents if e is not None] + list(
            self.shape[len(key):]
        )
        return Phantom(*new_shape, dtype=self.dtype)

    def reshape(self, *shape: int) -> "Phantom":
        if len(shape) == 1 and isinstance(shape[0], tuple):
            shape = shape[0]
        shape = tuple(int(d) for d in shape)
        n = 1
        for d in shape:
            n *= d
        if n != self.size:
            raise ValueError(
                f"cannot reshape phantom of size {self.size} into {shape}"
            )
        return Phantom(*shape, dtype=self.dtype)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Phantom{self.shape}"

    # Any arithmetic on a phantom is a bug in dry-run discipline: all
    # numeric work must flow through the instrumented BLAS kernels.
    def _refuse(self, *_a: Any, **_k: Any):  # pragma: no cover - guard
        raise TypeError(
            "numeric operation attempted on a Phantom; dry-run code must "
            "route all arithmetic through repro.blas kernels"
        )

    __add__ = __radd__ = __sub__ = __rsub__ = _refuse
    __mul__ = __rmul__ = __matmul__ = __rmatmul__ = _refuse
    __truediv__ = __rtruediv__ = __neg__ = _refuse


def is_phantom(x: Any) -> bool:
    """True if ``x`` is a :class:`Phantom` (dry-run stand-in)."""
    return isinstance(x, Phantom)


def shape_of(x: Any) -> Tuple[int, ...]:
    """Shape of a numpy array or Phantom."""
    return tuple(x.shape)


def like(x: Any, *shape: int) -> Any:
    """Allocate an uninitialised array 'in the same world' as ``x``.

    Returns a Phantom when ``x`` is a Phantom, otherwise an empty
    Fortran-ordered array.  Either way the result inherits ``x``'s dtype.
    Used by code that needs a scratch value outside the workspace
    allocator (rare; prefer the workspace).
    """
    if is_phantom(x):
        return Phantom(*shape, dtype=x.dtype)
    return np.empty(shape, dtype=x.dtype, order="F")
