"""Command-line interface: ``python -m repro <command>``.

Commands
--------
report    regenerate the paper's tables/figures (see harness.report)
figures   export figure series as CSV files
memory    print the Table 1 memory coefficients for a given order
parallel  repeated-call throughput: serial vs pooled parallel DGEFMM
plan      compile/explain/replay execution plans (``--selftest`` verifies)
fuzz      differential fuzzing campaign over every execution path
serve     batched GEMM service under open-loop load, verified live
api       network front-end over multi-process sharded serving
          (actions: serve, fuzz, load)
calibrate fit a MachineModel: paper presets, or this host (--host)
tune      online autotuning loop (actions: measure, search, show, apply)
selftest  quick end-to-end verification of the installation

Every command accepts ``--json`` and then prints a single JSON document
with the benchmark schema ``{"bench", "schema", "params", "rows"}`` —
the same shape ``benchmarks/conftest.py`` writes as ``BENCH_*.json`` —
so CLI runs can be captured as bench trajectories.  Commands exit 0 on
success, 1 when their own checks fail (fuzz divergence, selftest
failure, serve divergence/error), and 70 (EX_SOFTWARE) when an
unexpected internal error escapes a command.
"""

from __future__ import annotations

import argparse
import sys


def _print_bench_json(bench: str, params: dict, rows: list, **extra) -> None:
    """Emit one benchmark-schema JSON document on stdout."""
    import json

    doc = {"bench": bench, "schema": 1, "params": params, "rows": rows}
    doc.update(extra)
    print(json.dumps(doc, indent=2, sort_keys=True))


def _cmd_report(args) -> int:
    from repro.harness.report import render

    text = render(args.only, args.full)
    if args.json:
        _print_bench_json(
            "report", {"only": args.only or None, "full": args.full},
            [], lines=text.splitlines(),
        )
        return 0
    sys.stdout.write(text)
    return 0


def _cmd_figures(args) -> int:
    from repro.harness.figdata import export_all_figures

    paths = export_all_figures(args.outdir, fast=not args.full)
    if args.json:
        _print_bench_json(
            "figures", {"outdir": args.outdir, "full": args.full},
            [{"path": str(p)} for p in paths],
        )
        return 0
    for p in paths:
        print(p)
    return 0


def _cmd_memory(args) -> int:
    from repro.harness.experiments import table1_memory
    from repro.utils.tables import format_table

    rows = table1_memory(m=args.order)
    if args.json:
        _print_bench_json("memory", {"order": args.order}, rows)
        return 0
    print(
        format_table(
            ["implementation", "beta=0 (m^2)", "general (m^2)"],
            [
                (r["implementation"], f"{r['beta0']:.3f}",
                 f"{r['general']:.3f}")
                for r in rows
            ],
            title=f"measured workspace coefficients, order {args.order}",
        )
    )
    return 0


def _cmd_parallel(args) -> int:
    """Throughput of repeated GEMMs: serial vs multi-level parallel/pooled."""
    import time

    import numpy as np

    from repro.core.cutoff import SimpleCutoff
    from repro.core.dgefmm import dgefmm
    from repro.core.parallel import parallel_arena_count, pdgefmm
    from repro.core.pool import WorkspacePool, workspace_bound_bytes
    from repro.core.workspace import Workspace

    m = args.order
    rng = np.random.default_rng(0)
    a = np.asfortranarray(rng.standard_normal((m, m)))
    b = np.asfortranarray(rng.standard_normal((m, m)))
    c = np.zeros((m, m), order="F")
    crit = SimpleCutoff(args.cutoff)

    pool = None
    if args.pool:
        pool = WorkspacePool(
            workspace_bound_bytes(m, m, m, "parallel"),
            prewarm=parallel_arena_count(args.workers, args.depth),
        )

    rows = []

    def measure(fn, label, new_bytes=None):
        fn()  # warm-up call (grows pooled arenas, faults pages)
        base = new_bytes() if new_bytes is not None else 0
        times = []
        for _ in range(args.repeat):
            t0 = time.perf_counter()
            fn()
            times.append(time.perf_counter() - t0)
        per_call = None
        if new_bytes is not None:
            per_call = (new_bytes() - base) / max(args.repeat, 1)
            alloc = f"{per_call:,.0f} fresh B/call after warm-up"
        else:
            alloc = "fresh B/call untracked (no pool)"
        best = min(times)
        rows.append({
            "label": label,
            "best_s": best,
            "gflops_eq": 2.0 * m**3 / best / 1e9,
            "fresh_bytes_per_call": per_call,
        })
        if not args.json:
            print(
                f"{label:<28} best {best:.4f} s "
                f"({2.0 * m**3 / best / 1e9:.2f} GFLOP/s eq), {alloc}"
            )
        return best

    serial_alloc = [0]

    def serial():
        ws = Workspace()
        dgefmm(a, b, c, cutoff=crit, workspace=ws)
        serial_alloc[0] += ws.new_buffer_bytes

    def parallel():
        pdgefmm(a, b, c, cutoff=crit, workers=args.workers,
                max_parallel_depth=args.depth, pool=pool)

    if not args.json:
        print(
            f"order {m}, cutoff {args.cutoff}, workers {args.workers}, "
            f"max_parallel_depth {args.depth}, pool "
            f"{'on' if pool is not None else 'off'}, {args.repeat} calls"
        )
    t_s = measure(serial, "serial dgefmm", lambda: serial_alloc[0])
    t_p = measure(parallel, "pdgefmm",
                  (lambda: pool.new_buffer_bytes) if pool is not None
                  else None)
    if args.json:
        _print_bench_json(
            "parallel",
            {"order": m, "cutoff": args.cutoff, "workers": args.workers,
             "depth": args.depth, "repeat": args.repeat,
             "pool": pool is not None},
            rows,
            summary={
                "speedup": t_s / t_p,
                "pool_arenas": (pool.arenas_created
                                if pool is not None else None),
                "pool_new_buffer_bytes": (pool.new_buffer_bytes
                                          if pool is not None else None),
            },
        )
        return 0
    print(f"speedup {t_s / t_p:.2f}x")
    if pool is not None:
        print(f"pool: {pool.arenas_created} arenas, "
              f"{pool.new_buffer_bytes:,} B total fresh allocation")
    return 0


def _plan_signature(args):
    from repro.core.config import GemmConfig
    from repro.core.cutoff import SimpleCutoff
    from repro.plan.compiler import signature_for

    m = args.m if args.m is not None else args.order
    k = args.k if args.k is not None else args.order
    n = args.n if args.n is not None else args.order
    cfg = GemmConfig(scheme=args.scheme, peel=args.peel,
                     cutoff=SimpleCutoff(args.cutoff))
    if args.parallel:
        # parallel signatures carry the full knob set too; depth is
        # part of the signature, the worker budget never is
        return signature_for(
            "parallel", m, k, n, False, False, False, args.beta == 0.0,
            args.dtype, cfg, args.depth,
        )
    return signature_for(
        "serial", m, k, n, False, False, False, args.beta == 0.0,
        args.dtype, cfg,
    )


def _sig_params(sig) -> dict:
    d = {f: getattr(sig, f) for f in sig.__dataclass_fields__}
    d["cutoff"] = repr(sig.cutoff)
    return d


def _counts_json(counts: dict) -> dict:
    out = dict(counts)
    out["kernel_calls"] = dict(counts["kernel_calls"])
    out["base_shapes"] = {
        "x".join(map(str, shape)): count
        for shape, count in counts["base_shapes"].items()
    }
    return out


def _plan_cache_stats(args) -> int:
    import numpy as np

    from repro.core.cutoff import SimpleCutoff
    from repro.core.dgefmm import dgefmm
    from repro.plan import PlanCache

    m = args.m if args.m is not None else args.order
    k = args.k if args.k is not None else args.order
    n = args.n if args.n is not None else args.order
    shapes = sorted({
        (m, k, n),
        (max(1, m // 2 + 1), max(1, k // 2 + 1), max(1, n // 2 + 1)),
        (m, max(1, k // 2), n),
    })
    cache = PlanCache(max_plans=args.max_plans)
    crit = SimpleCutoff(args.cutoff)
    rng = np.random.default_rng(0)
    for _ in range(max(args.repeat, 1)):
        for mm, kk, nn in shapes:
            a = np.asfortranarray(rng.standard_normal((mm, kk)))
            b = np.asfortranarray(rng.standard_normal((kk, nn)))
            c = np.zeros((mm, nn), order="F")
            dgefmm(a, b, c, cutoff=crit, scheme=args.scheme,
                   peel=args.peel, plan_cache=cache)
    stats = cache.stats()
    if args.json:
        _print_bench_json(
            "plan_cache",
            {"shapes": ["x".join(map(str, s)) for s in shapes],
             "repeat": args.repeat, "cutoff": args.cutoff,
             "scheme": args.scheme, "peel": args.peel,
             "max_plans": args.max_plans},
            [stats],
        )
        return 0
    print(f"workload: {len(shapes)} shapes x {max(args.repeat, 1)} repeats,"
          f" cutoff {args.cutoff}")
    print(f"plan cache: {stats['plans']} plans, {stats['bytes']:,} B, "
          f"{stats['hits']} hits, {stats['misses']} misses, "
          f"{stats['evictions']} evictions")
    return 0


def _plan_selftest(json_out: bool = False) -> int:
    """Compile + execute + cache-stats on a small grid (CI quick lane)."""
    import numpy as np

    from repro.context import ExecutionContext
    from repro.core.config import GemmConfig
    from repro.core.cutoff import SimpleCutoff
    from repro.core.dgefmm import dgefmm
    from repro.core.recursion import recursion_profile
    from repro.plan import PlanCache
    from repro.plan.compiler import signature_for

    crit = SimpleCutoff(8)
    cache = PlanCache()
    rng = np.random.default_rng(0)
    cases = [(16, 16, 16), (17, 13, 19), (24, 10, 31), (29, 29, 29)]
    rows = []
    ok = True
    for mm, kk, nn in cases:
        a = np.asfortranarray(rng.standard_normal((mm, kk)))
        b = np.asfortranarray(rng.standard_normal((kk, nn)))
        c0 = np.asfortranarray(rng.standard_normal((mm, nn)))
        for alpha, beta in ((1.0, 0.0), (1.5, 0.5)):
            c_rec, c_pln = c0.copy(order="F"), c0.copy(order="F")
            ctx_r, ctx_p = ExecutionContext(), ExecutionContext()
            dgefmm(a, b, c_rec, alpha, beta, cutoff=crit, ctx=ctx_r)
            dgefmm(a, b, c_pln, alpha, beta, cutoff=crit, ctx=ctx_p,
                   plan_cache=cache)
            sig = signature_for("serial", mm, kk, nn, False, False,
                                False, beta == 0.0, "float64",
                                GemmConfig(cutoff=crit))
            plan = cache.get(sig)
            prof = recursion_profile(mm, kk, nn, crit)
            bit = bool(np.array_equal(c_rec, c_pln))
            kc = ctx_r.kernel_calls == ctx_p.kernel_calls
            pr = plan is not None and all(
                plan.counts[key] == prof[key]
                for key in ("recurse", "base", "peel", "max_depth",
                            "mul_flops", "base_shapes")
            )
            ok = ok and bit and kc and pr
            rows.append({"m": mm, "k": kk, "n": nn, "alpha": alpha,
                         "beta": beta, "bit_identical": bit,
                         "kernel_counts_match": kc, "profile_match": pr})
            if not json_out:
                print(f"plan {mm}x{kk}x{nn} alpha={alpha} beta={beta}: "
                      f"bit-identical {'ok' if bit else 'FAILED'}, "
                      f"kernel counts {'ok' if kc else 'FAILED'}, "
                      f"profile {'ok' if pr else 'FAILED'}")
    # warm replay: every signature is cached now, so only hits accrue
    before = cache.stats()
    for mm, kk, nn in cases:
        a = np.asfortranarray(rng.standard_normal((mm, kk)))
        b = np.asfortranarray(rng.standard_normal((kk, nn)))
        c = np.zeros((mm, nn), order="F")
        dgefmm(a, b, c, cutoff=crit, plan_cache=cache)
    after = cache.stats()
    warm = (after["misses"] == before["misses"]
            and after["hits"] == before["hits"] + len(cases))
    ok = ok and warm
    if json_out:
        _print_bench_json("plan_selftest", {"cutoff": 8}, rows,
                          cache=after, warm_replay_all_hits=warm, ok=ok)
    else:
        print(f"warm replay: {'all hits' if warm else 'UNEXPECTED MISSES'}"
              f" ({after['hits']} hits, {after['misses']} misses, "
              f"{after['plans']} plans)")
        print(f"plan selftest: {'ok' if ok else 'FAILED'}")
    return 0 if ok else 1


def _cmd_plan(args) -> int:
    if args.selftest:
        return _plan_selftest(json_out=args.json)
    if args.action == "cache-stats":
        return _plan_cache_stats(args)

    from repro.plan import compile_plan

    sig = _plan_signature(args)
    plan = compile_plan(sig)
    if args.action == "explain":
        lines = plan.describe(max_ops=args.max_ops)
        if args.json:
            _print_bench_json("plan_explain", _sig_params(sig), [],
                              lines=lines)
        else:
            print("\n".join(lines))
        return 0
    counts = _counts_json(plan.total_counts())
    row = {
        "n_ops": plan.n_ops,
        "regions": len(plan.regions),
        "branches": len(plan.branches),
        "arena_bytes": plan.arena_bytes,
        "peak_bytes": plan.peak_bytes,
        "charge_bytes": plan.charge_bytes,
        "plan_nbytes": plan.nbytes,
        "counts": counts,
    }
    if args.json:
        _print_bench_json("plan_compile", _sig_params(sig), [row])
        return 0
    print(f"signature: {sig}")
    print(f"ops {plan.n_ops}, regions {len(plan.regions)}, "
          f"branches {len(plan.branches)}")
    print(f"arena {plan.arena_bytes:,} B, workspace peak "
          f"{plan.peak_bytes:,} B, pool charge {plan.charge_bytes:,} B, "
          f"plan size ~{plan.nbytes:,} B")
    print(f"recursion: {counts['recurse']} recurse, {counts['base']} base, "
          f"{counts['peel']} peel, max depth {counts['max_depth']}")
    print(f"mul flops {int(counts['mul_flops']):,}; kernel calls: "
          + ", ".join(f"{name} {num}" for name, num
                      in sorted(counts["kernel_calls"].items())))
    return 0


def _cmd_fuzz(args) -> int:
    """Differential fuzzing campaign (see :mod:`repro.fuzz`)."""
    from repro.fuzz.runner import load_replay, run_fuzz

    replay = load_replay(args.replay) if args.replay else None

    def progress(done: int, total: int, divergent: int) -> None:
        if not args.json and done % 100 == 0:
            print(f"  {done}/{total} cases, {divergent} divergent")

    report = run_fuzz(
        cases=args.cases,
        seed=args.seed,
        max_dim=args.max_dim,
        replay=replay,
        failures_path=args.failures,
        progress=progress,
        scheme=args.scheme or None,
        fuse=args.fuse,
        dtype=args.dtype or None,
        accuracy=args.accuracy or None,
    )
    if args.json:
        _print_bench_json(
            "fuzz",
            {"cases": args.cases, "seed": args.seed,
             "max_dim": args.max_dim, "replay": args.replay or None,
             "scheme": args.scheme or None, "fuse": args.fuse,
             "dtype": args.dtype or None,
             "accuracy": args.accuracy or None},
            [report.to_dict()],
        )
        return 0 if report.ok else 1
    src = f"replay file {args.replay}" if args.replay else f"seed {args.seed}"
    print(f"fuzz: {report.cases} cases ({src}), "
          f"{report.divergent} divergent")
    for key, num in sorted(report.coverage.items()):
        print(f"  coverage {key:<24} {num}")
    for rec in report.failures:
        print(f"  FAIL case={rec['case']}")
        for f in rec["failures"]:
            print(f"    [{f['path']}] {f['kind']}: {f['detail']}")
    if report.failures and args.failures:
        print(f"failing cases appended to {args.failures} "
              f"(re-run with --replay {args.failures})")
    print(f"fuzz: {'ok' if report.ok else 'FAILED'}")
    return 0 if report.ok else 1


def _cmd_serve(args) -> int:
    """Run the GEMM service under open-loop load with live verification."""
    from repro.serve import run_load

    report = run_load(
        duration=args.duration,
        rate=args.rate,
        workers=args.workers,
        policy=args.policy,
        capacity=args.capacity,
        max_batch=args.max_batch,
        n_shapes=args.shapes,
        seed=args.seed,
        max_dim=args.max_dim,
        scheme=args.scheme or None,
        fuse=args.fuse,
        request_timeout=args.timeout,
        verify=not args.no_verify,
    )
    ok = report["errors"] == 0 and report["divergent"] == 0
    if args.json:
        _print_bench_json(
            "serve",
            {"duration": args.duration, "rate": args.rate,
             "workers": args.workers, "policy": args.policy,
             "capacity": args.capacity, "max_batch": args.max_batch,
             "shapes": args.shapes, "seed": args.seed,
             "max_dim": args.max_dim, "scheme": args.scheme or None,
             "fuse": args.fuse, "verify": not args.no_verify},
            [report], ok=ok,
        )
        return 0 if ok else 1
    svc = report["service"]
    print(f"serve: {args.duration:.1f} s at {args.rate:.0f} req/s offered, "
          f"{args.workers} workers, policy {args.policy!r}, "
          f"max_batch {args.max_batch}")
    print(f"  attempts {report['attempts']}, "
          f"completed {report['completed']} "
          f"({report['achieved_rate']:.0f}/s), "
          f"rejected {report['rejected']}, shed {report['shed']}, "
          f"timeouts {report['timeouts']}, errors {report['errors']}")
    lat = svc["histograms"]["latency_ms"]
    bat = svc["histograms"]["batch_size"]
    if lat["count"]:
        print(f"  latency ms: p50 {lat['p50']:.2f}, p95 {lat['p95']:.2f}, "
              f"p99 {lat['p99']:.2f}, max {lat['max']:.2f}")
    if bat["count"]:
        print(f"  batches {svc['counters']['batches']}, "
              f"mean size {bat['mean']:.2f}, max size {bat['max']:.0f}")
    pc = svc["plan_cache"]
    print(f"  plan cache: {pc['plans']} plans, hit rate "
          f"{pc['hit_rate']:.2f}; pool arenas {svc['pool']['created']}")
    if not args.no_verify:
        print(f"  verified: {report['divergent']} divergences "
              f"across {report['completed']} responses")
        for line in report["failures"]:
            print(f"  FAIL {line}")
    print(f"serve: {'ok' if ok else 'FAILED'}")
    return 0 if ok else 1


def _api_pool_flags(p) -> None:
    """Worker-pool knobs shared by every ``api`` action."""
    p.add_argument("--workers", type=int, default=2,
                   help="worker processes / shards (default 2)")
    p.add_argument("--threads", type=int, default=1,
                   help="service threads per worker (default 1)")
    p.add_argument("--capacity", type=int, default=256,
                   help="admission bound per shard (default 256)")
    p.add_argument("--policy", default="reject",
                   choices=["reject", "block", "shed-oldest"],
                   help="overload policy (gate and worker queue)")
    p.add_argument("--max-batch", dest="max_batch", type=int, default=32,
                   help="micro-batch ceiling per worker (default 32)")
    p.add_argument("--arena-mb", dest="arena_mb", type=int, default=64,
                   help="shared-memory transport per worker, MiB")
    p.add_argument("--profiles", default=None,
                   help="tuned-profile directory loaded by every worker "
                        "(hot-swappable via POST /v1/reload)")


def _api_pool_cfg(args) -> dict:
    return {
        "workers": args.workers,
        "threads": args.threads,
        "capacity": args.capacity,
        "policy": args.policy,
        "max_batch": args.max_batch,
        "arena_bytes": args.arena_mb * 1024 * 1024,
        "profile_dir": args.profiles,
    }


def _cmd_api_serve(args) -> int:
    """Run the network front-end until interrupted, then drain."""
    import time as _time

    from repro.api.server import ApiServerThread

    srv = ApiServerThread(
        host=args.host, port=args.port, rate=args.rate_limit,
        burst=args.burst, **_api_pool_cfg(args),
    ).start()
    print(f"api: listening on http://{args.host}:{srv.port} "
          f"({args.workers} workers x {args.threads} threads, "
          f"policy {args.policy!r}, "
          f"rate limit {args.rate_limit:g}/s)")
    print("api: POST /v1/gemm | GET /v1/ws | /healthz | /metrics "
          "(Ctrl-C drains)")
    try:
        while True:
            _time.sleep(1.0)
    except KeyboardInterrupt:
        pass
    final = srv.drain(timeout=30.0)
    fe = final["frontend"]
    print(f"api: drained; {fe['requests_total']} requests "
          f"({fe['ok_total']} ok), "
          f"{sum(fe['errors'].values())} errors")
    return 0


def _cmd_api_fuzz(args) -> int:
    """Differential fuzz through client, transport, router, and workers."""
    from repro.api.wirefuzz import run_wire_fuzz

    def progress(done: int, total: int, divergent: int) -> None:
        if not args.json and done % 100 == 0:
            print(f"  {done}/{total} cases, {divergent} divergent")

    report, stats = run_wire_fuzz(
        cases=args.cases, seed=args.seed, max_dim=args.max_dim,
        scheme=args.scheme or None,
        host=args.host or None, port=args.port,
        workers=args.workers, threads=args.threads,
        capacity=args.capacity, policy=args.policy,
        max_batch=args.max_batch, progress=progress,
    )
    shards = [
        {"shard": s.get("shard"), "routed": s.get("routed"),
         "hit_rate": (s.get("service", {})
                      .get("plan_cache", {}).get("hit_rate")),
         "leases_outstanding": (s.get("arena") or {})
         .get("leases_outstanding")}
        for s in stats.get("shards", [])
    ]
    if args.json:
        _print_bench_json(
            "api_fuzz",
            {"cases": args.cases, "seed": args.seed,
             "max_dim": args.max_dim, "scheme": args.scheme or None,
             "workers": args.workers, "threads": args.threads,
             "policy": args.policy},
            [report.to_dict()], shards=shards,
        )
        return 0 if report.ok else 1
    print(f"api fuzz: {report.cases} cases over the wire "
          f"(seed {args.seed}), {report.divergent} divergent")
    for key, num in sorted(report.coverage.items()):
        print(f"  coverage {key:<24} {num}")
    for s in shards:
        print(f"  shard {s['shard']}: routed {s['routed']}, "
              f"leases outstanding {s['leases_outstanding']}")
    for rec in report.failures:
        print(f"  FAIL case={rec['case']}")
        for f in rec["failures"]:
            print(f"    {f}")
    print(f"api fuzz: {'ok' if report.ok else 'FAILED'}")
    return 0 if report.ok else 1


def _cmd_api_load(args) -> int:
    """Open-loop load through the network stack, verified bit-exact."""
    from repro.api.client import GemmClient
    from repro.api.protocol import WIRE_DTYPES
    from repro.serve.loadgen import run_load

    own = None
    host = args.host or "127.0.0.1"
    port = args.port
    if not args.host:
        from repro.api.server import ApiServerThread

        own = ApiServerThread(**_api_pool_cfg(args)).start()
        port = own.port
    client = GemmClient(host, port, client_id="api-load")
    try:
        report = run_load(
            duration=args.duration, rate=args.rate,
            n_shapes=args.shapes, seed=args.seed, max_dim=args.max_dim,
            scheme=args.scheme or None,
            request_timeout=args.timeout, verify=not args.no_verify,
            service=client, canonical_operands=True,
            dtypes=WIRE_DTYPES,
        )
    finally:
        client.close()
        if own is not None:
            final = own.drain(timeout=30.0)
            report["server_final"] = final
    ok = report["errors"] == 0 and report["divergent"] == 0
    shards = report.get("server_final", report["service"]).get("shards", [])
    if args.json:
        _print_bench_json(
            "api_load",
            {"duration": args.duration, "rate": args.rate,
             "shapes": args.shapes, "seed": args.seed,
             "max_dim": args.max_dim, "scheme": args.scheme or None,
             "workers": args.workers, "threads": args.threads,
             "policy": args.policy, "verify": not args.no_verify},
            [report], ok=ok,
        )
        return 0 if ok else 1
    print(f"api load: {args.duration:.1f} s at {args.rate:.0f} req/s "
          f"offered over the wire, {args.workers} workers, "
          f"policy {args.policy!r}")
    print(f"  attempts {report['attempts']}, "
          f"completed {report['completed']} "
          f"({report['achieved_rate']:.0f}/s), "
          f"rejected {report['rejected']}, shed {report['shed']}, "
          f"timeouts {report['timeouts']}, errors {report['errors']}")
    for s in shards:
        svc = s.get("service", {})
        pc = svc.get("plan_cache", {})
        arena = s.get("arena") or {}
        print(f"  shard {s.get('shard')}: routed {s.get('routed')}, "
              f"hit rate {pc.get('hit_rate', 0.0):.2f}, "
              f"leases outstanding "
              f"{arena.get('leases_outstanding')}")
    if not args.no_verify:
        print(f"  verified: {report['divergent']} divergences "
              f"across {report['completed']} responses")
        for line in report["failures"]:
            print(f"  FAIL {line}")
    print(f"api load: {'ok' if ok else 'FAILED'}")
    return 0 if ok else 1


def _cmd_calibrate(args) -> int:
    """Fit (or recall) a MachineModel; JSON-serializable either way."""
    from repro.machines.calibrate import (
        calibrate_host,
        machine_to_json,
        model_rect_crossover,
        model_square_crossover,
    )
    from repro.machines.presets import MACHINES

    if args.host:
        mach = calibrate_host(
            scan_lo=args.scan_lo, scan_hi=args.scan_hi, fixed=args.fixed,
        )
        source = "host"
    else:
        mach = MACHINES[args.preset]
        source = f"preset:{args.preset}"
    doc = machine_to_json(mach)
    rows = [{
        "name": mach.name,
        "square_tau": model_square_crossover(mach),
        "tau_m": model_rect_crossover(mach, "m", float(args.fixed)),
        "tau_k": model_rect_crossover(mach, "k", float(args.fixed)),
        "tau_n": model_rect_crossover(mach, "n", float(args.fixed)),
    }]
    if args.out:
        import json as _json

        with open(args.out, "w", encoding="utf-8") as fh:
            _json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
    if args.json:
        _print_bench_json(
            "calibrate",
            {"source": source, "fixed": args.fixed,
             "scan_lo": args.scan_lo, "scan_hi": args.scan_hi},
            rows, model=doc,
        )
        return 0
    print(f"machine: {mach.name} ({source})")
    r = rows[0]
    print(f"  square crossover tau = {r['square_tau']:.1f}")
    print(f"  long-thin tau_m/tau_k/tau_n = {r['tau_m']:.1f} / "
          f"{r['tau_k']:.1f} / {r['tau_n']:.1f}  (fixed={args.fixed})")
    if args.out:
        print(f"  model written to {args.out}")
    return 0


def _cmd_tune_measure(args) -> int:
    from repro.tune.measure import measure_crossover

    rep = measure_crossover(
        lo=args.lo, hi=args.hi, step=args.step, repeats=args.repeats,
    )
    if args.json:
        _print_bench_json(
            "tune_measure", dict(rep["scan"]),
            [rep],
        )
        return 0
    if rep["measured"] is not None:
        m = rep["measured"]
        print(f"measured square crossover: first win {m['first']}, "
              f"always from {m['always']}, recommended tau {m['recommended']}")
    else:
        print(f"measured square crossover: none ({rep['reason']})")
    for name, tau in rep["predicted"].items():
        err = (rep["error"] or {}).get(name)
        tail = (f"  (error {err['abs']} / {err['rel']:.0%})"
                if err else "")
        print(f"predicted ({name}): {tau}{tail}")
    return 0


def _cmd_tune_search(args) -> int:
    from repro.tune.search import tune_class
    from repro.tune.store import ProfileStore

    m = args.m if args.m else args.order
    k = args.k if args.k else args.order
    n = args.n if args.n else args.order
    prof = tune_class(
        m, k, n,
        beta_zero=not args.beta,
        budget_s=args.budget,
        version=args.version,
    )
    saved = []
    if args.out:
        store = ProfileStore(args.out)
        store.put(prof, force=True)
        saved = store.save()
    meas = prof.measured
    if args.json:
        _print_bench_json(
            "tune_search",
            {"m": m, "k": k, "n": n, "beta_zero": not args.beta,
             "budget_s": args.budget},
            [prof.to_json()], saved=saved,
        )
        return 0
    print(f"class {prof.key}: winner "
          f"{prof.scheme}/{prof.peel}, {prof.cutoff!r}, nb={prof.nb}, "
          f"fuse={prof.fuse}")
    print(f"  tuned {meas['tuned_s'] * 1e3:.2f} ms vs default "
          f"{meas['default_s'] * 1e3:.2f} ms "
          f"(speedup {meas['speedup']:.2f}x) in {meas['spent_s']:.1f} s "
          f"of {meas['budget_s']:.0f} s budget")
    for path in saved:
        print(f"  profile written to {path}")
    return 0


def _cmd_tune_show(args) -> int:
    from repro.tune.store import ProfileStore, host_fingerprint

    store = ProfileStore(args.dir)
    report = store.load(strict=False)
    here = host_fingerprint()["digest"]
    rows = []
    for prof in store.profiles():
        rows.append(dict(
            prof.to_json(),
            stale=(prof.host_digest() is not None
                   and prof.host_digest() != here),
        ))
    if args.json:
        _print_bench_json(
            "tune_show", {"dir": args.dir, "host_digest": here},
            rows, load=report,
        )
        return 0
    if not rows:
        print(f"no profiles under {args.dir}")
        return 0
    for r in rows:
        mark = " [STALE: other host]" if r["stale"] else ""
        meas = r.get("measured", {})
        speed = meas.get("speedup")
        extra = f", speedup {speed:.2f}x" if speed else ""
        print(f"{r['key']} v{r['version']}: {r['scheme']}/{r['peel']}, "
              f"{r['cutoff']['kind']}, nb={r['nb']}, "
              f"fuse={r['fuse']}{extra}{mark}")
    return 0


def _cmd_tune_apply(args) -> int:
    from repro.tune.apply import hot_swap_check

    m = args.m if args.m else args.order
    k = args.k if args.k else args.order
    n = args.n if args.n else args.order
    rep = hot_swap_check(
        args.dir, m=m, k=k, n=n,
        requests=args.requests, workers=args.workers,
    )
    if args.json:
        _print_bench_json(
            "tune_apply",
            {"dir": args.dir, "m": m, "k": k, "n": n,
             "requests": args.requests},
            rep["phases"], ok=rep["ok"], load=rep["load"],
            resolved_key=rep["resolved_key"], swapped=rep["swapped"],
        )
        return 0 if rep["ok"] else 1
    print(f"loaded {rep['load']['loaded']} profile(s) "
          f"({rep['load']['skipped_stale']} stale, "
          f"{rep['load']['skipped_invalid']} invalid)")
    for ph in rep["phases"]:
        print(f"  {ph['phase']}: {ph['exact']}/{ph['requests']} "
              f"bit-identical to direct dgefmm")
    print(f"profile for this class: {rep['resolved_key'] or 'none'}"
          + (" (hot-swapped)" if rep["swapped"] else ""))
    print(f"tune apply: {'ok' if rep['ok'] else 'FAILED'}")
    return 0 if rep["ok"] else 1


def _cmd_selftest(args) -> int:
    import numpy as np

    from repro import SimpleCutoff, dgefmm, isda_eigh
    from repro.utils.matrixgen import random_symmetric

    rng = np.random.default_rng(0)
    a = np.asfortranarray(rng.standard_normal((150, 130)))
    b = np.asfortranarray(rng.standard_normal((130, 170)))
    c = np.zeros((150, 170), order="F")
    dgefmm(a, b, c, cutoff=SimpleCutoff(32))
    ok_mm = bool(np.allclose(c, a @ b, atol=1e-9))
    s = random_symmetric(48, seed=1)
    w, v, _ = isda_eigh(s)
    ok_eig = bool(np.allclose(w, np.linalg.eigvalsh(s), atol=1e-8))
    if args.json:
        _print_bench_json(
            "selftest", {},
            [{"check": "dgefmm", "ok": ok_mm},
             {"check": "isda_eigh", "ok": ok_eig}],
            ok=ok_mm and ok_eig,
        )
        return 0 if (ok_mm and ok_eig) else 1
    print(f"dgefmm: {'ok' if ok_mm else 'FAILED'}")
    print(f"isda_eigh: {'ok' if ok_eig else 'FAILED'}")
    return 0 if (ok_mm and ok_eig) else 1


def main(argv=None) -> int:
    from repro.core.schemes import SCHEME_NAMES
    from repro.fuzz.cases import DTYPES as FUZZ_DTYPES

    ap = argparse.ArgumentParser(prog="python -m repro", description=__doc__)
    sub = ap.add_subparsers(dest="command", required=True)

    p = sub.add_parser("report", help="regenerate paper exhibits")
    p.add_argument("--only", default="", help="one exhibit, e.g. table4")
    p.add_argument("--full", action="store_true")
    p.add_argument("--json", action="store_true",
                   help="emit the benchmark-schema JSON document")
    p.set_defaults(fn=_cmd_report)

    p = sub.add_parser("figures", help="export figure CSVs")
    p.add_argument("--outdir", default="figures")
    p.add_argument("--full", action="store_true")
    p.add_argument("--json", action="store_true",
                   help="emit the benchmark-schema JSON document")
    p.set_defaults(fn=_cmd_figures)

    p = sub.add_parser("memory", help="Table 1 coefficients")
    p.add_argument("--order", type=int, default=2048)
    p.add_argument("--json", action="store_true",
                   help="emit the benchmark-schema JSON document")
    p.set_defaults(fn=_cmd_memory)

    p = sub.add_parser(
        "parallel",
        help="repeated-call throughput: serial vs pooled parallel DGEFMM",
    )
    p.add_argument("--order", type=int, default=1024,
                   help="square problem size m (default 1024)")
    p.add_argument("--workers", type=int, default=7,
                   help="total thread budget across parallel levels")
    p.add_argument("--depth", type=int, default=1,
                   help="max_parallel_depth: parallel recursion levels")
    p.add_argument("--repeat", type=int, default=3,
                   help="timed calls after the warm-up call")
    p.add_argument("--cutoff", type=int, default=128,
                   help="SimpleCutoff tau for both codes")
    p.add_argument("--no-pool", dest="pool", action="store_false",
                   help="disable the workspace pool (fresh arenas)")
    p.add_argument("--json", action="store_true",
                   help="emit the benchmark-schema JSON document")
    p.set_defaults(fn=_cmd_parallel, pool=True)

    p = sub.add_parser(
        "plan",
        help="compile, explain, or exercise cached execution plans",
    )
    p.add_argument("action", nargs="?", default="compile",
                   choices=["compile", "explain", "cache-stats"],
                   help="what to do with the plan (default: compile)")
    p.add_argument("--order", type=int, default=96,
                   help="square problem size when --m/--k/--n not given")
    p.add_argument("--m", type=int, default=None)
    p.add_argument("--k", type=int, default=None)
    p.add_argument("--n", type=int, default=None)
    p.add_argument("--scheme", default="auto", choices=list(SCHEME_NAMES))
    p.add_argument("--peel", default="tail", choices=["tail", "head"])
    p.add_argument("--cutoff", type=int, default=32,
                   help="SimpleCutoff tau for the compiled signature")
    p.add_argument("--dtype", default="float64",
                   choices=["float64", "float32", "complex128"])
    p.add_argument("--beta", type=float, default=0.0,
                   help="beta scalar class for the signature (0 or not)")
    p.add_argument("--parallel", action="store_true",
                   help="compile a pdgefmm-style parallel plan")
    p.add_argument("--depth", type=int, default=1,
                   help="max_parallel_depth for --parallel plans")
    p.add_argument("--max-ops", dest="max_ops", type=int, default=60,
                   help="op lines shown by the explain action")
    p.add_argument("--max-plans", dest="max_plans", type=int, default=64,
                   help="PlanCache bound for the cache-stats action")
    p.add_argument("--repeat", type=int, default=3,
                   help="workload repeats for the cache-stats action")
    p.add_argument("--selftest", action="store_true",
                   help="compile + execute + cache-stats on a small grid")
    p.add_argument("--json", action="store_true",
                   help="emit the benchmark-schema JSON document")
    p.set_defaults(fn=_cmd_plan)

    p = sub.add_parser(
        "fuzz",
        help="differential fuzzing across serial/parallel/plan paths",
    )
    p.add_argument("--cases", type=int, default=200,
                   help="number of randomized cases to draw (default 200)")
    p.add_argument("--seed", type=int, default=0,
                   help="campaign RNG seed (same seed -> same cases)")
    p.add_argument("--max-dim", dest="max_dim", type=int, default=32,
                   help="upper bound for each of m/k/n (default 32)")
    p.add_argument("--replay", default="",
                   help="JSON-lines file of cases to re-run instead of "
                        "drawing (as written by --failures)")
    p.add_argument("--failures", default="",
                   help="append divergent cases to this JSON-lines file")
    p.add_argument("--scheme", default="",
                   choices=[""] + list(SCHEME_NAMES),
                   help="pin every case to one scheme (per-scheme CI "
                        "smoke lanes); default: draw schemes per case")
    p.add_argument("--fuse", action="store_true",
                   help="also run the fused-execution paths per case")
    p.add_argument("--dtype", default="",
                   choices=[""] + list(FUZZ_DTYPES),
                   help="pin every case to one operand dtype (the CI "
                        "precision-matrix lanes); default: draw per case")
    p.add_argument("--accuracy", default="",
                   choices=["", "fast", "compensated", "exact"],
                   help="pin the accuracy discipline (exact dtypes "
                        "always run exact regardless)")
    p.add_argument("--json", action="store_true",
                   help="emit the benchmark-schema JSON document")
    p.set_defaults(fn=_cmd_fuzz)

    p = sub.add_parser(
        "serve",
        help="batched GEMM service under open-loop load, verified live",
    )
    p.add_argument("--duration", type=float, default=3.0,
                   help="seconds of open-loop load (default 3)")
    p.add_argument("--rate", type=float, default=200.0,
                   help="offered arrival rate, requests/s (default 200)")
    p.add_argument("--workers", type=int, default=2,
                   help="service worker threads (default 2)")
    p.add_argument("--policy", default="reject",
                   choices=["reject", "block", "shed-oldest"],
                   help="admission policy at queue capacity")
    p.add_argument("--capacity", type=int, default=256,
                   help="admission queue bound (default 256)")
    p.add_argument("--max-batch", dest="max_batch", type=int, default=32,
                   help="micro-batch size ceiling (default 32)")
    p.add_argument("--shapes", type=int, default=8,
                   help="distinct shapes in the repeating mix (default 8)")
    p.add_argument("--seed", type=int, default=0,
                   help="shape-mix RNG seed (same seed -> same mix)")
    p.add_argument("--max-dim", dest="max_dim", type=int, default=48,
                   help="upper bound for each of m/k/n (default 48)")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-request deadline in seconds (default: none)")
    p.add_argument("--scheme", default="",
                   choices=[""] + list(SCHEME_NAMES),
                   help="pin the whole shape mix to one scheme "
                        "(mirrors 'repro fuzz --scheme')")
    p.add_argument("--fuse", action="store_true",
                   help="serve (and verify) through the fused plan path")
    p.add_argument("--no-verify", dest="no_verify", action="store_true",
                   help="skip bit-identity verification against dgefmm")
    p.add_argument("--json", action="store_true",
                   help="emit the benchmark-schema JSON document")
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser(
        "api",
        help="network front-end over multi-process sharded serving",
    )
    api_sub = p.add_subparsers(dest="action", required=True)

    q = api_sub.add_parser("serve", help="run the HTTP+WebSocket server")
    _api_pool_flags(q)
    q.add_argument("--host", default="127.0.0.1")
    q.add_argument("--port", type=int, default=8771)
    q.add_argument("--rate-limit", dest="rate_limit", type=float,
                   default=0.0,
                   help="per-client token-bucket rate, req/s "
                        "(0 disables; default 0)")
    q.add_argument("--burst", type=float, default=None,
                   help="token-bucket burst (default 2x rate)")
    q.set_defaults(fn=_cmd_api_serve)

    q = api_sub.add_parser(
        "fuzz", help="differential fuzz through the full network stack"
    )
    _api_pool_flags(q)
    q.add_argument("--cases", type=int, default=200,
                   help="number of randomized cases (default 200)")
    q.add_argument("--seed", type=int, default=0,
                   help="campaign RNG seed (same seed -> same cases)")
    q.add_argument("--max-dim", dest="max_dim", type=int, default=32,
                   help="upper bound for each of m/k/n (default 32)")
    q.add_argument("--scheme", default="",
                   choices=[""] + list(SCHEME_NAMES),
                   help="pin every case to one scheme")
    q.add_argument("--host", default="",
                   help="target a live server instead of an embedded one")
    q.add_argument("--port", type=int, default=8771)
    q.add_argument("--json", action="store_true",
                   help="emit the benchmark-schema JSON document")
    q.set_defaults(fn=_cmd_api_fuzz)

    q = api_sub.add_parser(
        "load", help="open-loop load through the network front-end"
    )
    _api_pool_flags(q)
    q.add_argument("--duration", type=float, default=3.0,
                   help="seconds of open-loop load (default 3)")
    q.add_argument("--rate", type=float, default=100.0,
                   help="offered arrival rate, requests/s (default 100)")
    q.add_argument("--shapes", type=int, default=8,
                   help="distinct shapes in the repeating mix (default 8)")
    q.add_argument("--seed", type=int, default=0,
                   help="shape-mix RNG seed")
    q.add_argument("--max-dim", dest="max_dim", type=int, default=48,
                   help="upper bound for each of m/k/n (default 48)")
    q.add_argument("--scheme", default="",
                   choices=[""] + list(SCHEME_NAMES),
                   help="pin the whole mix to one scheme")
    q.add_argument("--timeout", type=float, default=None,
                   help="per-request deadline in seconds (default: none)")
    q.add_argument("--no-verify", dest="no_verify", action="store_true",
                   help="skip bit-identity verification")
    q.add_argument("--host", default="",
                   help="target a live server instead of an embedded one")
    q.add_argument("--port", type=int, default=8771)
    q.add_argument("--json", action="store_true",
                   help="emit the benchmark-schema JSON document")
    q.set_defaults(fn=_cmd_api_load)

    p = sub.add_parser(
        "calibrate",
        help="fit a MachineModel (paper preset, or this host)",
    )
    p.add_argument("--preset", default="RS6000",
                   choices=["RS6000", "C90", "T3D"],
                   help="paper machine to recall (default RS6000)")
    p.add_argument("--host", action="store_true",
                   help="wall-clock calibrate THIS host "
                        "(minutes, not seconds)")
    p.add_argument("--scan-lo", dest="scan_lo", type=int, default=32)
    p.add_argument("--scan-hi", dest="scan_hi", type=int, default=512)
    p.add_argument("--fixed", type=int, default=768,
                   help="held dimension of the long-thin experiments")
    p.add_argument("--out", default=None,
                   help="write the model JSON to this path")
    p.add_argument("--json", action="store_true",
                   help="emit the benchmark-schema JSON document")
    p.set_defaults(fn=_cmd_calibrate)

    p = sub.add_parser(
        "tune",
        help="online autotuning: measure, search, show, apply",
    )
    tune_sub = p.add_subparsers(dest="action", required=True)

    q = tune_sub.add_parser(
        "measure", help="measured vs predicted crossover on this host"
    )
    q.add_argument("--lo", type=int, default=64)
    q.add_argument("--hi", type=int, default=384)
    q.add_argument("--step", type=int, default=32)
    q.add_argument("--repeats", type=int, default=3)
    q.add_argument("--json", action="store_true",
                   help="emit the benchmark-schema JSON document")
    q.set_defaults(fn=_cmd_tune_measure)

    q = tune_sub.add_parser(
        "search", help="budgeted knob search for one signature class"
    )
    q.add_argument("--order", type=int, default=256,
                   help="square problem order (default 256)")
    q.add_argument("--m", type=int, default=0)
    q.add_argument("--k", type=int, default=0)
    q.add_argument("--n", type=int, default=0)
    q.add_argument("--beta", action="store_true",
                   help="tune the beta != 0 class (default beta == 0)")
    q.add_argument("--budget", type=float, default=30.0,
                   help="wall-clock search budget, seconds (default 30)")
    q.add_argument("--version", type=int, default=1,
                   help="profile version to stamp (default 1)")
    q.add_argument("--out", default=None,
                   help="profiles directory to persist the winner into")
    q.add_argument("--json", action="store_true",
                   help="emit the benchmark-schema JSON document")
    q.set_defaults(fn=_cmd_tune_search)

    q = tune_sub.add_parser(
        "show", help="list the profiles in a directory"
    )
    q.add_argument("--dir", required=True, help="profiles directory")
    q.add_argument("--json", action="store_true",
                   help="emit the benchmark-schema JSON document")
    q.set_defaults(fn=_cmd_tune_show)

    q = tune_sub.add_parser(
        "apply",
        help="hot-swap profiles into a live service and verify "
             "bit-exactness",
    )
    q.add_argument("--dir", required=True, help="profiles directory")
    q.add_argument("--order", type=int, default=200)
    q.add_argument("--m", type=int, default=0)
    q.add_argument("--k", type=int, default=0)
    q.add_argument("--n", type=int, default=0)
    q.add_argument("--requests", type=int, default=6,
                   help="requests per phase (default 6)")
    q.add_argument("--workers", type=int, default=2)
    q.add_argument("--json", action="store_true",
                   help="emit the benchmark-schema JSON document")
    q.set_defaults(fn=_cmd_tune_apply)

    p = sub.add_parser("selftest", help="quick installation check")
    p.add_argument("--json", action="store_true",
                   help="emit the benchmark-schema JSON document")
    p.set_defaults(fn=_cmd_selftest)

    args = ap.parse_args(argv)
    try:
        return args.fn(args)
    except Exception as exc:  # noqa: BLE001 — CLI boundary
        # Internal failure (bug, bad environment): distinct exit code so
        # CI lanes and scripts can tell it from a failed check (exit 1).
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 70


if __name__ == "__main__":
    raise SystemExit(main())
