"""Command-line interface: ``python -m repro <command>``.

Commands
--------
report    regenerate the paper's tables/figures (see harness.report)
figures   export figure series as CSV files
memory    print the Table 1 memory coefficients for a given order
parallel  repeated-call throughput: serial vs pooled parallel DGEFMM
selftest  quick end-to-end verification of the installation
"""

from __future__ import annotations

import argparse
import sys


def _cmd_report(args) -> int:
    from repro.harness.report import render

    sys.stdout.write(render(args.only, args.full))
    return 0


def _cmd_figures(args) -> int:
    from repro.harness.figdata import export_all_figures

    paths = export_all_figures(args.outdir, fast=not args.full)
    for p in paths:
        print(p)
    return 0


def _cmd_memory(args) -> int:
    from repro.harness.experiments import table1_memory
    from repro.utils.tables import format_table

    rows = table1_memory(m=args.order)
    print(
        format_table(
            ["implementation", "beta=0 (m^2)", "general (m^2)"],
            [
                (r["implementation"], f"{r['beta0']:.3f}",
                 f"{r['general']:.3f}")
                for r in rows
            ],
            title=f"measured workspace coefficients, order {args.order}",
        )
    )
    return 0


def _cmd_parallel(args) -> int:
    """Throughput of repeated GEMMs: serial vs multi-level parallel/pooled."""
    import time

    import numpy as np

    from repro.core.cutoff import SimpleCutoff
    from repro.core.dgefmm import dgefmm
    from repro.core.parallel import parallel_arena_count, pdgefmm
    from repro.core.pool import WorkspacePool, workspace_bound_bytes
    from repro.core.workspace import Workspace

    m = args.order
    rng = np.random.default_rng(0)
    a = np.asfortranarray(rng.standard_normal((m, m)))
    b = np.asfortranarray(rng.standard_normal((m, m)))
    c = np.zeros((m, m), order="F")
    crit = SimpleCutoff(args.cutoff)

    pool = None
    if args.pool:
        pool = WorkspacePool(
            workspace_bound_bytes(m, m, m, "parallel"),
            prewarm=parallel_arena_count(args.workers, args.depth),
        )

    def measure(fn, label, new_bytes=None):
        fn()  # warm-up call (grows pooled arenas, faults pages)
        base = new_bytes() if new_bytes is not None else 0
        times = []
        for _ in range(args.repeat):
            t0 = time.perf_counter()
            fn()
            times.append(time.perf_counter() - t0)
        if new_bytes is not None:
            per_call = (new_bytes() - base) / max(args.repeat, 1)
            alloc = f"{per_call:,.0f} fresh B/call after warm-up"
        else:
            alloc = "fresh B/call untracked (no pool)"
        best = min(times)
        print(
            f"{label:<28} best {best:.4f} s "
            f"({2.0 * m**3 / best / 1e9:.2f} GFLOP/s eq), {alloc}"
        )
        return best

    serial_alloc = [0]

    def serial():
        ws = Workspace()
        dgefmm(a, b, c, cutoff=crit, workspace=ws)
        serial_alloc[0] += ws.new_buffer_bytes

    def parallel():
        pdgefmm(a, b, c, cutoff=crit, workers=args.workers,
                max_parallel_depth=args.depth, pool=pool)

    print(
        f"order {m}, cutoff {args.cutoff}, workers {args.workers}, "
        f"max_parallel_depth {args.depth}, pool "
        f"{'on' if pool is not None else 'off'}, {args.repeat} calls"
    )
    t_s = measure(serial, "serial dgefmm", lambda: serial_alloc[0])
    t_p = measure(parallel, "pdgefmm",
                  (lambda: pool.new_buffer_bytes) if pool is not None
                  else None)
    print(f"speedup {t_s / t_p:.2f}x")
    if pool is not None:
        print(f"pool: {pool.arenas_created} arenas, "
              f"{pool.new_buffer_bytes:,} B total fresh allocation")
    return 0


def _cmd_selftest(args) -> int:
    import numpy as np

    from repro import SimpleCutoff, dgefmm, isda_eigh
    from repro.utils.matrixgen import random_symmetric

    rng = np.random.default_rng(0)
    a = np.asfortranarray(rng.standard_normal((150, 130)))
    b = np.asfortranarray(rng.standard_normal((130, 170)))
    c = np.zeros((150, 170), order="F")
    dgefmm(a, b, c, cutoff=SimpleCutoff(32))
    ok_mm = bool(np.allclose(c, a @ b, atol=1e-9))
    s = random_symmetric(48, seed=1)
    w, v, _ = isda_eigh(s)
    ok_eig = bool(np.allclose(w, np.linalg.eigvalsh(s), atol=1e-8))
    print(f"dgefmm: {'ok' if ok_mm else 'FAILED'}")
    print(f"isda_eigh: {'ok' if ok_eig else 'FAILED'}")
    return 0 if (ok_mm and ok_eig) else 1


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(prog="python -m repro", description=__doc__)
    sub = ap.add_subparsers(dest="command", required=True)

    p = sub.add_parser("report", help="regenerate paper exhibits")
    p.add_argument("--only", default="", help="one exhibit, e.g. table4")
    p.add_argument("--full", action="store_true")
    p.set_defaults(fn=_cmd_report)

    p = sub.add_parser("figures", help="export figure CSVs")
    p.add_argument("--outdir", default="figures")
    p.add_argument("--full", action="store_true")
    p.set_defaults(fn=_cmd_figures)

    p = sub.add_parser("memory", help="Table 1 coefficients")
    p.add_argument("--order", type=int, default=2048)
    p.set_defaults(fn=_cmd_memory)

    p = sub.add_parser(
        "parallel",
        help="repeated-call throughput: serial vs pooled parallel DGEFMM",
    )
    p.add_argument("--order", type=int, default=1024,
                   help="square problem size m (default 1024)")
    p.add_argument("--workers", type=int, default=7,
                   help="total thread budget across parallel levels")
    p.add_argument("--depth", type=int, default=1,
                   help="max_parallel_depth: parallel recursion levels")
    p.add_argument("--repeat", type=int, default=3,
                   help="timed calls after the warm-up call")
    p.add_argument("--cutoff", type=int, default=128,
                   help="SimpleCutoff tau for both codes")
    p.add_argument("--no-pool", dest="pool", action="store_false",
                   help="disable the workspace pool (fresh arenas)")
    p.set_defaults(fn=_cmd_parallel, pool=True)

    p = sub.add_parser("selftest", help="quick installation check")
    p.set_defaults(fn=_cmd_selftest)

    args = ap.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
