"""Command-line interface: ``python -m repro <command>``.

Commands
--------
report    regenerate the paper's tables/figures (see harness.report)
figures   export figure series as CSV files
memory    print the Table 1 memory coefficients for a given order
selftest  quick end-to-end verification of the installation
"""

from __future__ import annotations

import argparse
import sys


def _cmd_report(args) -> int:
    from repro.harness.report import render

    sys.stdout.write(render(args.only, args.full))
    return 0


def _cmd_figures(args) -> int:
    from repro.harness.figdata import export_all_figures

    paths = export_all_figures(args.outdir, fast=not args.full)
    for p in paths:
        print(p)
    return 0


def _cmd_memory(args) -> int:
    from repro.harness.experiments import table1_memory
    from repro.utils.tables import format_table

    rows = table1_memory(m=args.order)
    print(
        format_table(
            ["implementation", "beta=0 (m^2)", "general (m^2)"],
            [
                (r["implementation"], f"{r['beta0']:.3f}",
                 f"{r['general']:.3f}")
                for r in rows
            ],
            title=f"measured workspace coefficients, order {args.order}",
        )
    )
    return 0


def _cmd_selftest(args) -> int:
    import numpy as np

    from repro import SimpleCutoff, dgefmm, isda_eigh
    from repro.utils.matrixgen import random_symmetric

    rng = np.random.default_rng(0)
    a = np.asfortranarray(rng.standard_normal((150, 130)))
    b = np.asfortranarray(rng.standard_normal((130, 170)))
    c = np.zeros((150, 170), order="F")
    dgefmm(a, b, c, cutoff=SimpleCutoff(32))
    ok_mm = bool(np.allclose(c, a @ b, atol=1e-9))
    s = random_symmetric(48, seed=1)
    w, v, _ = isda_eigh(s)
    ok_eig = bool(np.allclose(w, np.linalg.eigvalsh(s), atol=1e-8))
    print(f"dgefmm: {'ok' if ok_mm else 'FAILED'}")
    print(f"isda_eigh: {'ok' if ok_eig else 'FAILED'}")
    return 0 if (ok_mm and ok_eig) else 1


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(prog="python -m repro", description=__doc__)
    sub = ap.add_subparsers(dest="command", required=True)

    p = sub.add_parser("report", help="regenerate paper exhibits")
    p.add_argument("--only", default="", help="one exhibit, e.g. table4")
    p.add_argument("--full", action="store_true")
    p.set_defaults(fn=_cmd_report)

    p = sub.add_parser("figures", help="export figure CSVs")
    p.add_argument("--outdir", default="figures")
    p.add_argument("--full", action="store_true")
    p.set_defaults(fn=_cmd_figures)

    p = sub.add_parser("memory", help="Table 1 coefficients")
    p.add_argument("--order", type=int, default=2048)
    p.set_defaults(fn=_cmd_memory)

    p = sub.add_parser("selftest", help="quick installation check")
    p.set_defaults(fn=_cmd_selftest)

    args = ap.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
