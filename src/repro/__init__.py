"""repro — reproduction of Huss-Lederman et al., SC 1996.

*Implementation of Strassen's Algorithm for Matrix Multiplication.*

The package provides:

- :func:`repro.dgefmm` — the paper's DGEMM-compatible Winograd-variant
  Strassen multiply (dynamic peeling, tunable cutoffs, minimal
  temporary memory);
- :mod:`repro.blas` — the instrumented standard-algorithm BLAS substrate
  (DGEMM, DGER, DGEMV, add/sub kernels) everything is built on;
- :mod:`repro.core` — schedules, cutoffs, workspace, op-count model;
- :mod:`repro.comparators` — DGEMMW / ESSL DGEMMS / CRAY SGEMMS
  reconstructions;
- :mod:`repro.machines` — calibrated RS/6000, C90, T3D cost models and
  the dry-run simulation machinery;
- :mod:`repro.serve` — in-process batched GEMM serving (admission
  control, signature-keyed micro-batching, live metrics);
- :mod:`repro.eigensolver` — the ISDA application of Section 4.4;
- :mod:`repro.harness` — one function per paper table/figure
  (``python -m repro.harness.report`` regenerates them all).

Quick start::

    import numpy as np
    from repro import dgefmm

    A = np.random.default_rng(0).standard_normal((600, 600))
    B = np.random.default_rng(1).standard_normal((600, 600))
    C = np.zeros((600, 600), order="F")
    dgefmm(A, B, C)           # C <- A @ B, via Strassen below the cutoff
"""

from repro.blas.level3 import dgemm
from repro.context import ExecutionContext
from repro.core.cutoff import (
    HighamCutoff,
    HybridCutoff,
    PlaneCutoff,
    SimpleCutoff,
    TheoreticalCutoff,
)
from repro.core.complex3m import zgefmm_3m
from repro.core.dgefmm import dgefmm, zgefmm
from repro.core.parallel import parallel_arena_count, pdgefmm
from repro.core.pool import (
    PooledWorkspace,
    WorkspacePool,
    workspace_bound_bytes,
)
from repro.core.workspace import Workspace
from repro.eigensolver import isda_eigh
from repro.linalg import getrf, lu_solve, solve
from repro.plan import (
    ExecutionPlan,
    PlanCache,
    PlanSignature,
    compile_plan,
    execute_plan,
)
from repro.serve import GemmService

__version__ = "1.0.0"

__all__ = [
    "dgefmm",
    "zgefmm",
    "zgefmm_3m",
    "pdgefmm",
    "dgemm",
    "isda_eigh",
    "getrf",
    "lu_solve",
    "solve",
    "ExecutionContext",
    "Workspace",
    "PooledWorkspace",
    "WorkspacePool",
    "workspace_bound_bytes",
    "parallel_arena_count",
    "PlanCache",
    "PlanSignature",
    "ExecutionPlan",
    "compile_plan",
    "execute_plan",
    "GemmService",
    "TheoreticalCutoff",
    "SimpleCutoff",
    "HighamCutoff",
    "PlaneCutoff",
    "HybridCutoff",
    "__version__",
]
