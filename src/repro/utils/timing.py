"""Wall-clock timing helpers for host benchmarks."""

from __future__ import annotations

import time
from typing import Callable, Tuple

__all__ = ["time_call"]


def time_call(
    fn: Callable[[], object],
    *,
    repeats: int = 3,
    warmup: int = 1,
) -> Tuple[float, float]:
    """Median and minimum wall seconds of ``fn()`` over ``repeats`` runs.

    A small fixed warmup amortizes allocator and cache effects, as the
    optimization guides prescribe (measure, don't guess).
    """
    for _ in range(warmup):
        fn()
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    times.sort()
    return times[len(times) // 2], times[0]
