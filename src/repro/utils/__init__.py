"""Shared utilities: matrix generation, timing, table formatting."""

from repro.utils.matrixgen import random_matrix, random_spectrum, random_symmetric
from repro.utils.tables import format_table
from repro.utils.timing import time_call

__all__ = [
    "random_matrix",
    "random_symmetric",
    "random_spectrum",
    "format_table",
    "time_call",
]
