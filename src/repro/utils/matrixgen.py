"""Deterministic random matrix generators.

All generators take an explicit seed so every test and benchmark is
reproducible; matrices come back Fortran-ordered (the package's BLAS
convention, paper Section 3.1).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

__all__ = ["random_matrix", "random_symmetric", "random_spectrum"]


def random_matrix(m: int, n: int, seed: int = 0) -> np.ndarray:
    """Uniform(-1, 1) m-by-n matrix, Fortran order, seeded."""
    rng = np.random.default_rng(seed)
    return np.asfortranarray(rng.uniform(-1.0, 1.0, size=(m, n)))


def random_symmetric(n: int, seed: int = 0) -> np.ndarray:
    """Symmetric n-by-n matrix with Uniform(-1, 1) entries, seeded."""
    rng = np.random.default_rng(seed)
    a = rng.uniform(-1.0, 1.0, size=(n, n))
    return np.asfortranarray((a + a.T) / 2.0)


def random_spectrum(
    eigenvalues: Sequence[float],
    seed: int = 0,
    *,
    jitter: Optional[float] = None,
) -> np.ndarray:
    """Symmetric matrix with a prescribed spectrum (random eigenbasis).

    Builds ``Q diag(w) Q^T`` for a Haar-ish random orthogonal Q; useful
    for eigensolver tests that need clusters, gaps, or exact-degenerate
    spectra.  ``jitter`` optionally perturbs each eigenvalue uniformly in
    ``[-jitter, jitter]``.
    """
    w = np.array(list(eigenvalues), dtype=np.float64)
    n = w.size
    rng = np.random.default_rng(seed)
    if jitter:
        w = w + rng.uniform(-jitter, jitter, size=n)
    q, _ = np.linalg.qr(rng.standard_normal((n, n)))
    a = (q * w) @ q.T
    return np.asfortranarray((a + a.T) / 2.0)
