"""Recursion-trace rendering: see what the cutoff criterion decided.

A traced :class:`~repro.context.ExecutionContext` records one
:class:`~repro.context.RecursionEvent` per node of the Strassen
recursion.  This module turns that flat event list into a readable tree
and summary statistics — the tool you want when a cutoff behaves
unexpectedly on some shape.

Example output for a 200 x 200 x 200 multiply with a tau = 96 cutoff::

    recurse 200x200x200 [s1b0]
      base 100x100x100  x7

(sibling base cases are coalesced with a multiplicity suffix).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Sequence

from repro.context import RecursionEvent

__all__ = ["render_trace", "trace_summary"]


def render_trace(events: Sequence[RecursionEvent]) -> str:
    """Render a recursion event list as an indented tree.

    Consecutive identical siblings (same action, dims, depth) are
    coalesced into one line with an ``xN`` multiplicity.
    """
    lines: List[str] = []
    pending = None  # (key, count)

    def flush() -> None:
        nonlocal pending
        if pending is None:
            return
        (action, m, k, n, depth, scheme), count = pending
        indent = "  " * depth
        tag = f" [{scheme}]" if scheme else ""
        mult = f"  x{count}" if count > 1 else ""
        lines.append(f"{indent}{action} {m}x{k}x{n}{tag}{mult}")
        pending = None

    for e in events:
        key = (e.action, e.m, e.k, e.n, e.depth, e.scheme)
        if pending is not None and pending[0] == key:
            pending = (key, pending[1] + 1)
        else:
            flush()
            pending = (key, 1)
    flush()
    return "\n".join(lines)


def trace_summary(events: Sequence[RecursionEvent]) -> Dict:
    """Aggregate statistics of a recursion trace.

    Returns recursion-node/base-case/peel/pad counts, the maximum depth,
    and the multiset of base-case shapes (as a Counter) — the quantities
    one checks against the cutoff's intent.
    """
    actions = Counter(e.action for e in events)
    depths = [e.depth for e in events] or [0]
    base_shapes = Counter(
        (e.m, e.k, e.n) for e in events if e.action == "base"
    )
    return {
        "recurse": actions.get("recurse", 0),
        "base": actions.get("base", 0),
        "peel": actions.get("peel", 0),
        "pad": actions.get("pad", 0),
        "max_depth": max(depths),
        "base_shapes": base_shapes,
    }
