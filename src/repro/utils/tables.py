"""Minimal ASCII table formatting for paper-style experiment output."""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["format_table"]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str = "",
    floatfmt: str = "{:.4g}",
) -> str:
    """Render a fixed-width table with a header rule.

    Floats are formatted with ``floatfmt``; everything else with str().
    """
    def cell(x: object) -> str:
        if isinstance(x, float):
            return floatfmt.format(x)
        return str(x)

    srows: List[List[str]] = [[cell(x) for x in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in srows:
        for i, c in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(c))
            else:
                widths.append(len(c))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append("  ".join("-" * w for w in widths))
    for row in srows:
        out.append(line(row))
    return "\n".join(out)
