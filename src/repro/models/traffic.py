"""Memory-traffic cost model: arithmetic plus cache-aware data movement.

The second refinement in [14]'s ladder: account for the words moved
between memory and a cache of capacity ``Z`` words, at ``word_cost``
units per word, on top of the arithmetic.

Traffic estimates (classical blocked-kernel I/O analysis, Hong-Kung
style constants dropped in favour of the standard tiling bound):

- blocked DGEMM with square tiles of edge ``b = sqrt(Z/3)`` touches
  ``2mkn / b`` words for the streamed operand panels plus one pass over
  each operand: ``traffic = 2mkn/sqrt(Z/3) + (mk + kn + 2mn)``;
- a matrix addition streams both inputs and the output:
  ``traffic = 3mn`` (it does arithmetic at memory speed — this is *why*
  the weighted model's g exceeds 1);
- DGER/DGEMV stream the matrix once: ``traffic ~= mn + m + 2n``.

The model's qualitative prediction is the paper's Section 3.4 message:
because DGEMM's traffic grows like ``mkn/sqrt(Z)`` while Strassen's
extra additions cost ``3mn`` traffic *each*, the crossover scales like
``~ 45/2 * sqrt(Z/3)`` — hundreds for practical caches, not 12.
"""

from __future__ import annotations

import math

from repro.core.opcount import add_ops, standard_ops
from repro.models.base import CostModel

__all__ = ["MemoryTrafficModel"]


class MemoryTrafficModel(CostModel):
    """Arithmetic + word-traffic cost.

    Parameters
    ----------
    cache_words:
        Cache capacity Z in matrix elements (e.g. a 256 KiB cache holds
        32768 float64 words).
    word_cost:
        Cost of moving one word, in flop units (memory latency/bandwidth
        relative to arithmetic throughput).
    flop_cost:
        Cost of one arithmetic operation (default 1).
    """

    name = "traffic"

    def __init__(
        self,
        cache_words: float = 32768.0,
        word_cost: float = 4.0,
        flop_cost: float = 1.0,
    ) -> None:
        if cache_words < 3:
            raise ValueError(f"cache_words={cache_words} too small")
        if word_cost < 0 or flop_cost < 0:
            raise ValueError("costs must be non-negative")
        self.cache_words = float(cache_words)
        self.word_cost = float(word_cost)
        self.flop_cost = float(flop_cost)
        self._tile = math.sqrt(self.cache_words / 3.0)

    # ------------------------------------------------------------------ #
    def mult_traffic(self, m: int, k: int, n: int) -> float:
        """Words moved by a blocked standard multiply."""
        if min(m, k, n) == 0:
            return 0.0
        streamed = 2.0 * m * k * n / min(self._tile, m, k, n)
        return streamed + (m * k + k * n + 2.0 * m * n)

    def add_traffic(self, m: int, n: int) -> float:
        """Words moved by one matrix addition (read, read, write)."""
        return 3.0 * m * n

    # ------------------------------------------------------------------ #
    def mult_cost(self, m: int, k: int, n: int) -> float:
        return (
            self.flop_cost * standard_ops(m, k, n)
            + self.word_cost * self.mult_traffic(m, k, n)
        )

    def add_cost(self, m: int, n: int) -> float:
        return (
            self.flop_cost * add_ops(m, n)
            + self.word_cost * self.add_traffic(m, n)
        )

    def ger_cost(self, m: int, n: int) -> float:
        return (
            self.flop_cost * 2.0 * m * n
            + self.word_cost * (m * n + m + 2.0 * n)
        )

    def gemv_cost(self, m: int, n: int) -> float:
        return self.ger_cost(m, n)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"MemoryTrafficModel(Z={self.cache_words:g}, "
            f"word={self.word_cost:g}, flop={self.flop_cost:g})"
        )
