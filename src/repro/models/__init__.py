"""Performance-model hierarchy (the paper's companion report [14]).

The paper leans on its companion technical report (Huss-Lederman et al.,
CCS-TR-96-147) for "other models, some of which also take into account
memory access patterns, possible data reuse, and differences in speed
between different arithmetic operations", and uses their central lesson
in Section 3.4: *operation count is not an accurate enough predictor of
performance to be used to tune actual code*.

This subpackage rebuilds that model ladder:

- :class:`~repro.models.opcount_model.OperationCountModel` — pure
  operation counts (Section 2's model; predicts the famous cutoff 12);
- :class:`~repro.models.weighted.WeightedOpsModel` — distinguishes the
  speed of multiply-accumulate flops inside DGEMM from bandwidth-bound
  addition flops (first correction; pushes the predicted cutoff up);
- :class:`~repro.models.traffic.MemoryTrafficModel` — counts memory
  traffic of the blocked kernels under a finite cache, added to the
  arithmetic (second correction; predicts cutoffs of the observed
  hundred-ish magnitude).

:mod:`repro.models.predict` evaluates Strassen-vs-DGEMM under any model
and locates the predicted crossover, so the ladder's predictions can be
compared against the calibrated machines' empirical cutoffs — the
quantitative form of the paper's Section 3.4 argument.
"""

from repro.models.base import CostModel
from repro.models.opcount_model import OperationCountModel
from repro.models.predict import (
    predicted_square_crossover,
    strassen_cost,
)
from repro.models.traffic import MemoryTrafficModel
from repro.models.weighted import WeightedOpsModel

__all__ = [
    "CostModel",
    "OperationCountModel",
    "WeightedOpsModel",
    "MemoryTrafficModel",
    "strassen_cost",
    "predicted_square_crossover",
]
