"""Prediction machinery generic over the cost-model ladder.

Evaluates the cost of DGEFMM's actual execution structure (Winograd
schedule shapes, dynamic peeling fix-ups) under any
:class:`~repro.models.base.CostModel`, and locates predicted crossovers.
These predictions are what Section 3.4 compares against measurements to
argue for empirically tuned cutoffs.
"""

from __future__ import annotations

from typing import Optional

from repro.core.cutoff import CutoffCriterion, DepthCutoff
from repro.core.schemes import LEVEL_PROFILE
from repro.core.traversal import Base, decide
from repro.models.base import CostModel

__all__ = [
    "dgemm_cost",
    "strassen_cost",
    "one_level_cost",
    "config_cost",
    "predicted_square_crossover",
    "predicted_rect_crossover",
]


def dgemm_cost(model: CostModel, m: int, k: int, n: int) -> float:
    """Model cost of the standard algorithm."""
    return model.mult_cost(m, k, n)


def strassen_cost(
    model: CostModel,
    m: int,
    k: int,
    n: int,
    criterion: Optional[CutoffCriterion] = None,
    scheme: str = "auto",
    beta_zero: bool = True,
) -> float:
    """Model cost of DGEFMM's recursion (peeling included).

    Consumes the shared traversal kernel (:func:`repro.core.traversal.
    decide`) like every driver: cutoff test, peel non-divisible dims,
    one scheme level, DGER/DGEMV fix-ups — the structure whose real
    charges the machine simulations accumulate, evaluated under an
    abstract model instead.  Each node is charged its level's executed
    block-addition profile (:data:`repro.core.schemes.LEVEL_PROFILE`),
    so any registry scheme — including non-2x2 families — can be
    costed; the defaults reproduce the historical behaviour (the
    ``auto``/beta = 0 two-temporary Winograd schedule).
    """
    crit = criterion if criterion is not None else DepthCutoff(64)

    def w(m_: int, k_: int, n_: int, depth: int,
          sch: str, b0: bool) -> float:
        if m_ == 0 or n_ == 0:
            return 0.0
        if k_ == 0:
            return model.add_cost(m_, n_)
        node = decide(m_, k_, n_, depth, sch, b0, crit)
        if isinstance(node, Base):
            return model.mult_cost(m_, k_, n_)
        prof = LEVEL_PROFILE[node.level]
        hm, hk, hn = node.child_dims
        cost = prof.a_adds * model.add_cost(hm, hk)
        cost += prof.b_adds * model.add_cost(hk, hn)
        cost += prof.c_adds(b0) * model.add_cost(hm, hn)
        for cls in prof.child_classes:
            cost += w(hm, hk, hn, depth + 1, node.child_scheme,
                      b0 if cls is None else cls)
        ko, no, mo = k_ - node.kp, n_ - node.np_, m_ - node.mp
        if ko and node.mp and node.np_:
            cost += ko * model.ger_cost(node.mp, node.np_)
        if no and node.mp:
            cost += no * model.gemv_cost(node.mp, k_)
        if mo:
            cost += mo * model.gemv_cost(n_, k_)
        return cost

    return w(m, k, n, 0, scheme, beta_zero)


def one_level_cost(model: CostModel, m: int, k: int, n: int) -> float:
    """Model cost of exactly one Strassen level (the crossover probe)."""
    return strassen_cost(model, m, k, n, DepthCutoff(1))


def config_cost(
    model: CostModel,
    m: int,
    k: int,
    n: int,
    config,
    beta_zero: bool = True,
) -> float:
    """Model cost of the recursion a :class:`~repro.core.config.
    GemmConfig` would execute on ``(m, k, n)``.

    The bridge between the cost-model ladder and the tuner's knob
    space: the autotuner (:mod:`repro.tune.search`) ranks candidate
    configs by predicted cost to order its measurement schedule, and
    ``BENCH_tune.json`` tracks how far these predictions drift from
    measured wall time — the quantitative form of the paper's Section
    3.4 warning that op counts alone mistune real code.  Only the
    traversal-shaping knobs (``cutoff``, ``scheme``) affect the model;
    ``nb``/``backend``/``fuse`` change constants the ladder does not
    see, which is precisely the error the benchmark measures.
    """
    return strassen_cost(
        model, m, k, n,
        criterion=config.cutoff,
        scheme=config.scheme,
        beta_zero=beta_zero,
    )


def predicted_square_crossover(
    model: CostModel, lo: int = 4, hi: int = 4096
) -> int:
    """Smallest even square order where one level beats DGEMM.

    Returns ``hi`` if no crossover is found in range (a model that never
    favours recursion).
    """
    lo += lo % 2
    for m in range(lo, hi + 1, 2):
        if one_level_cost(model, m, m, m) < dgemm_cost(model, m, m, m):
            return m
    return hi


def predicted_rect_crossover(
    model: CostModel,
    which: str,
    fixed: int = 2000,
    lo: int = 4,
    hi: int = 2000,
) -> int:
    """Smallest even size of one dimension (others fixed) where one
    Strassen level wins — the Table 3 experiment under a model."""
    maps = {
        "m": lambda x: (x, fixed, fixed),
        "k": lambda x: (fixed, x, fixed),
        "n": lambda x: (fixed, fixed, x),
    }
    dims = maps[which]
    lo += lo % 2
    for x in range(lo, hi + 1, 2):
        d = dims(x)
        if one_level_cost(model, *d) < dgemm_cost(model, *d):
            return x
    return hi
