"""Weighted-operations cost model: multiply flops are not add flops.

The first refinement in [14]'s ladder: on real machines the fused
multiply-add streams inside a tuned DGEMM run near peak, while the
isolated additions of Strassen's stages (1), (2) and (4) are limited by
memory bandwidth.  This model keeps operation counting but weights the
two classes differently.

With DGEMM flops at weight 1 and additions at weight ``g``, one level of
Winograd's construction on a square of order m ties with DGEMM at
roughly ``m ~= 12 + 15 g`` (eq. 7's derivation with the weighted G),
so already a modest bandwidth penalty (g in 4..12) moves the predicted
cutoff from 12 into the 70-200 range the machines actually show.
"""

from __future__ import annotations

from repro.core.opcount import add_ops, standard_ops
from repro.models.base import CostModel

__all__ = ["WeightedOpsModel"]


class WeightedOpsModel(CostModel):
    """Operation counts with per-class weights.

    Parameters
    ----------
    add_weight:
        Cost of one addition-kernel flop relative to a DGEMM flop
        (bandwidth-bound; > 1 on every machine in the paper).
    mult_weight:
        Cost scale of DGEMM flops (default 1; kept as a parameter so a
        vendor-tuned kernel can be modeled as < 1).
    level2_weight:
        Cost of DGER/DGEMV flops relative to DGEMM flops (the fix-up
        kernels; typically between the other two).
    """

    name = "weighted"

    def __init__(
        self,
        add_weight: float = 5.0,
        mult_weight: float = 1.0,
        level2_weight: float = 2.0,
    ) -> None:
        if add_weight <= 0 or mult_weight <= 0 or level2_weight <= 0:
            raise ValueError("weights must be positive")
        self.add_weight = float(add_weight)
        self.mult_weight = float(mult_weight)
        self.level2_weight = float(level2_weight)

    def mult_cost(self, m: int, k: int, n: int) -> float:
        return self.mult_weight * standard_ops(m, k, n)

    def add_cost(self, m: int, n: int) -> float:
        return self.add_weight * add_ops(m, n)

    def ger_cost(self, m: int, n: int) -> float:
        return self.level2_weight * 2.0 * m * n

    def gemv_cost(self, m: int, n: int) -> float:
        return self.level2_weight * 2.0 * m * n

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"WeightedOpsModel(add={self.add_weight}, "
            f"mult={self.mult_weight}, level2={self.level2_weight})"
        )
