"""Cost-model interface shared by the [14]-style model ladder.

A :class:`CostModel` assigns abstract cost (any consistent unit) to the
primitive operations Strassen's recursion is built from.  The prediction
machinery (:mod:`repro.models.predict`) is generic over this interface,
so adding a model means implementing four methods.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

__all__ = ["CostModel"]


class CostModel(ABC):
    """Abstract cost of the four primitive operations.

    Units are arbitrary but must be consistent across methods; only cost
    *comparisons* (crossovers, ratios) are ever interpreted.
    """

    #: short name used in reports
    name: str = "abstract"

    @abstractmethod
    def mult_cost(self, m: int, k: int, n: int) -> float:
        """Cost of one standard-algorithm multiply, (m x k) by (k x n)."""

    @abstractmethod
    def add_cost(self, m: int, n: int) -> float:
        """Cost of one (m x n) matrix addition/subtraction."""

    def ger_cost(self, m: int, n: int) -> float:
        """Cost of a rank-one update (default: 2mn arithmetic units)."""
        return 2.0 * m * n

    def gemv_cost(self, m: int, n: int) -> float:
        """Cost of a matrix-vector product (default: 2mn units)."""
        return 2.0 * m * n

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}()"
