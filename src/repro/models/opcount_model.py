"""Operation-count cost model (the paper's Section 2 baseline)."""

from __future__ import annotations

from repro.core.opcount import add_ops, standard_ops
from repro.models.base import CostModel

__all__ = ["OperationCountModel"]


class OperationCountModel(CostModel):
    """Every arithmetic operation costs 1: ``M(m,k,n) = 2mkn - mn``,
    ``G(m,n) = mn``.

    Under this model the square crossover solves eq. (7) — stop at 12 —
    which Section 3.4 shows is an order of magnitude below real machine
    crossovers: the baseline rung of the model ladder.
    """

    name = "opcount"

    def mult_cost(self, m: int, k: int, n: int) -> float:
        return standard_ops(m, k, n)

    def add_cost(self, m: int, n: int) -> float:
        return add_ops(m, n)
