"""Experiment harness: one function per paper table/figure.

:mod:`repro.harness.simtime` provides the simulated-timing primitives
(dry-run a multiplication routine against a machine model and read the
modeled seconds); :mod:`repro.harness.problems` generates the random
problem sets of Section 4.2; :mod:`repro.harness.experiments` implements
every table and figure of the evaluation; :mod:`repro.harness.report`
renders them in the paper's layout.
"""

from repro.harness.experiments import (
    fig2_square_cutoff,
    fig3_vs_essl,
    fig4_vs_cray,
    fig5_vs_dgemmw,
    fig6_rect_vs_dgemmw,
    table1_memory,
    table2_square_cutoffs,
    table3_rect_params,
    table4_criteria,
    table5_recursions,
    table6_eigensolver,
)

__all__ = [
    "fig2_square_cutoff",
    "table2_square_cutoffs",
    "table3_rect_params",
    "table4_criteria",
    "table5_recursions",
    "fig3_vs_essl",
    "fig4_vs_cray",
    "fig5_vs_dgemmw",
    "fig6_rect_vs_dgemmw",
    "table1_memory",
    "table6_eigensolver",
]
