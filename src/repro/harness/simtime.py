"""Simulated-timing primitives: dry-run a routine on a machine model.

Each helper builds phantom operands of the requested shape, dry-runs the
*actual* multiplication code against the given
:class:`~repro.machines.model.MachineModel`, and returns the modeled
seconds from the context clock.  Because the dry run walks the real
recursion (cutoff decisions, peeling/padding, schedule dispatch), the
returned time reflects every structural property of the code — only the
floating-point work is skipped.
"""

from __future__ import annotations

from typing import Optional

from repro.blas.level3 import dgemm
from repro.comparators.cray_sgemms import cray_sgemms
from repro.comparators.dgemmw import dgemmw
from repro.comparators.essl_dgemms import essl_dgemms_general
from repro.context import ExecutionContext
from repro.core.cutoff import CutoffCriterion, HybridCutoff, SimpleCutoff
from repro.core.dgefmm import dgefmm
from repro.machines.model import MachineModel
from repro.machines.presets import PAPER_RECT_PARAMS, PAPER_SQUARE_CUTOFF
from repro.phantom import Phantom

__all__ = [
    "sim_dgemm",
    "sim_dgefmm",
    "sim_dgemmw",
    "sim_essl",
    "sim_cray",
    "paper_hybrid_cutoff",
    "paper_simple_cutoff",
]


def paper_hybrid_cutoff(machine_name: str) -> HybridCutoff:
    """DGEFMM's production criterion (eq. 15) with the paper's parameters."""
    tau = PAPER_SQUARE_CUTOFF[machine_name]
    tm, tk, tn = PAPER_RECT_PARAMS[machine_name]
    return HybridCutoff(tau=tau, tau_m=tm, tau_k=tk, tau_n=tn)


def paper_simple_cutoff(machine_name: str) -> SimpleCutoff:
    """The eq. (11) criterion with the machine's square cutoff."""
    return SimpleCutoff(tau=PAPER_SQUARE_CUTOFF[machine_name])


def _phantoms(m: int, k: int, n: int):
    return Phantom(m, k), Phantom(k, n), Phantom(m, n)


def sim_dgemm(mach: MachineModel, m: int, k: int, n: int) -> float:
    """Modeled seconds of one standard-algorithm DGEMM."""
    ctx = ExecutionContext(mach, dry=True)
    a, b, c = _phantoms(m, k, n)
    dgemm(a, b, c, ctx=ctx)
    return ctx.elapsed


def sim_dgefmm(
    mach: MachineModel,
    m: int,
    k: int,
    n: int,
    alpha: float = 1.0,
    beta: float = 0.0,
    cutoff: Optional[CutoffCriterion] = None,
) -> float:
    """Modeled seconds of one DGEFMM call."""
    ctx = ExecutionContext(mach, dry=True)
    a, b, c = _phantoms(m, k, n)
    crit = cutoff if cutoff is not None else paper_hybrid_cutoff(mach.name)
    dgefmm(a, b, c, alpha, beta, cutoff=crit, ctx=ctx)
    return ctx.elapsed


def sim_dgemmw(
    mach: MachineModel,
    m: int,
    k: int,
    n: int,
    alpha: float = 1.0,
    beta: float = 0.0,
    cutoff: Optional[CutoffCriterion] = None,
) -> float:
    """Modeled seconds of one DGEMMW (Douglas et al.) call."""
    ctx = ExecutionContext(mach, dry=True)
    a, b, c = _phantoms(m, k, n)
    crit = cutoff if cutoff is not None else paper_simple_cutoff(mach.name)
    dgemmw(a, b, c, alpha, beta, cutoff=crit, ctx=ctx)
    return ctx.elapsed


def sim_essl(
    mach: MachineModel,
    m: int,
    k: int,
    n: int,
    alpha: float = 1.0,
    beta: float = 0.0,
    cutoff: Optional[CutoffCriterion] = None,
) -> float:
    """Modeled seconds of ESSL DGEMMS plus its caller update loop.

    Pass a machine already wrapped with ``.tuned(gain)`` to model the
    vendor kernel advantage.
    """
    ctx = ExecutionContext(mach, dry=True)
    a, b, c = _phantoms(m, k, n)
    crit = cutoff if cutoff is not None else paper_simple_cutoff(
        mach.name.split("(")[0]
    )
    essl_dgemms_general(a, b, c, alpha, beta, cutoff=crit, ctx=ctx)
    return ctx.elapsed


def sim_cray(
    mach: MachineModel,
    m: int,
    k: int,
    n: int,
    alpha: float = 1.0,
    beta: float = 0.0,
    cutoff: Optional[CutoffCriterion] = None,
) -> float:
    """Modeled seconds of a CRAY SGEMMS-style call."""
    ctx = ExecutionContext(mach, dry=True)
    a, b, c = _phantoms(m, k, n)
    crit = cutoff if cutoff is not None else paper_simple_cutoff(
        mach.name.split("(")[0]
    )
    cray_sgemms(a, b, c, alpha, beta, cutoff=crit, ctx=ctx)
    return ctx.elapsed
