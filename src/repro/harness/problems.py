"""Random problem generators for the Section 4.2 experiments.

The paper's Table 4 compares cutoff criteria on randomly generated
problems *on which the criteria disagree at the top level* (identical
decisions imply identical timing, so disagreement sets are sufficient);
Figure 6 uses unconstrained random rectangular problems.  Dimension
ranges follow the paper exactly:

- lower bounds: min(tau/3, tau_m) for m, min(tau/3, tau_k) for k,
  min(tau/3, tau_n) for n;
- upper bound 2050 (RS/6000, C90) or 1550 (T3D);
- "two dims large" means at least 1800 (RS/6000, C90) or 1350 (T3D).
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

import numpy as np

from repro.core.cutoff import CutoffCriterion

__all__ = [
    "dimension_bounds",
    "sample_problems",
    "disagreement_problems",
    "two_dims_large_problems",
]

Problem = Tuple[int, int, int]


def dimension_bounds(
    tau: int, rect: Tuple[int, int, int], machine_name: str
) -> Tuple[Tuple[int, int, int], int]:
    """(per-dimension lower bounds, upper bound) per the paper's recipe."""
    tm, tk, tn = rect
    lo = (min(tau // 3, tm), min(tau // 3, tk), min(tau // 3, tn))
    hi = 1550 if machine_name == "T3D" else 2050
    return lo, hi


def sample_problems(
    lo: Tuple[int, int, int],
    hi: int,
    count: int,
    seed: int,
) -> List[Problem]:
    """``count`` problems with dims uniform in [lo_d, hi]."""
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(count):
        m = int(rng.integers(lo[0], hi + 1))
        k = int(rng.integers(lo[1], hi + 1))
        n = int(rng.integers(lo[2], hi + 1))
        out.append((m, k, n))
    return out


def _disagree(
    a: CutoffCriterion, b: CutoffCriterion, p: Problem
) -> bool:
    m, k, n = p
    return a.stop(m, k, n) != b.stop(m, k, n)


def disagreement_problems(
    crit_a: CutoffCriterion,
    crit_b: CutoffCriterion,
    lo: Tuple[int, int, int],
    hi: int,
    count: int,
    seed: int,
    *,
    min_dims: Tuple[int, int, int] = (0, 0, 0),
    max_tries: int = 2_000_000,
) -> List[Problem]:
    """``count`` random problems where the two criteria decide opposite
    ways at the top level (the paper's Table 4 sampling procedure)."""
    rng = np.random.default_rng(seed)
    out: List[Problem] = []
    tries = 0
    while len(out) < count and tries < max_tries:
        tries += 1
        m = int(rng.integers(max(lo[0], min_dims[0]), hi + 1))
        k = int(rng.integers(max(lo[1], min_dims[1]), hi + 1))
        n = int(rng.integers(max(lo[2], min_dims[2]), hi + 1))
        if _disagree(crit_a, crit_b, (m, k, n)):
            out.append((m, k, n))
    if len(out) < count:
        raise RuntimeError(
            f"found only {len(out)}/{count} disagreement problems "
            f"in {max_tries} tries"
        )
    return out


def two_dims_large_problems(
    crit_a: CutoffCriterion,
    crit_b: CutoffCriterion,
    lo: Tuple[int, int, int],
    hi: int,
    large: int,
    count: int,
    seed: int,
    *,
    max_tries: int = 2_000_000,
) -> List[Problem]:
    """Disagreement problems with at least two dimensions >= ``large``."""
    rng = np.random.default_rng(seed)
    out: List[Problem] = []
    tries = 0
    while len(out) < count and tries < max_tries:
        tries += 1
        dims = [
            int(rng.integers(lo[0], hi + 1)),
            int(rng.integers(lo[1], hi + 1)),
            int(rng.integers(lo[2], hi + 1)),
        ]
        # force two randomly chosen dims into the large range
        which = rng.permutation(3)[:2]
        for w in which:
            dims[w] = int(rng.integers(large, hi + 1))
        p = (dims[0], dims[1], dims[2])
        if _disagree(crit_a, crit_b, p):
            out.append(p)
    if len(out) < count:
        raise RuntimeError(
            f"found only {len(out)}/{count} two-large disagreement problems"
        )
    return out
