"""Every table and figure of the paper's evaluation, as functions.

Each function regenerates one exhibit and returns plain data structures
(lists/dicts) that :mod:`repro.harness.report` renders in the paper's
layout and that the benchmark suite asserts shape properties on.

Simulated experiments (Tables 2-5, Figures 2-6) dry-run the real code
against the calibrated machine models; Table 1 measures workspace peaks;
Table 6 runs the eigensolver for real (wall clock) at a configurable
order.  Sample counts default to smaller values than the paper's
100/1000 so the full suite stays interactive; every function accepts the
paper's counts for a faithful (slower) run.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.comparators.bailey import bailey_strassen
from repro.comparators.cray_sgemms import cray_sgemms
from repro.comparators.dgemmw import dgemmw
from repro.comparators.essl_dgemms import essl_dgemms_general
from repro.context import ExecutionContext
from repro.core.cutoff import (
    DepthCutoff,
    HighamCutoff,
    HybridCutoff,
    SimpleCutoff,
)
from repro.core.dgefmm import dgefmm
from repro.core.workspace import Workspace
from repro.eigensolver import GemmCounter, isda_eigh, make_gemm
from repro.harness.problems import (
    dimension_bounds,
    disagreement_problems,
    sample_problems,
    two_dims_large_problems,
)
from repro.harness.simtime import (
    paper_hybrid_cutoff,
    paper_simple_cutoff,
    sim_cray,
    sim_dgefmm,
    sim_dgemm,
    sim_dgemmw,
    sim_essl,
)
from repro.machines.model import MachineModel
from repro.machines.presets import (
    C90,
    FIXED_DIM,
    MACHINES,
    PAPER_RECT_PARAMS,
    PAPER_SQUARE_CUTOFF,
    RS6000,
    VENDOR_GAIN,
)
from repro.phantom import Phantom
from repro.utils.matrixgen import random_symmetric

__all__ = [
    "fig2_square_cutoff",
    "table2_square_cutoffs",
    "table3_rect_params",
    "table4_criteria",
    "table5_recursions",
    "fig3_vs_essl",
    "fig4_vs_cray",
    "fig5_vs_dgemmw",
    "fig6_rect_vs_dgemmw",
    "table1_memory",
    "table6_eigensolver",
    "section2_opcounts",
    "SCAN_RANGES",
]

#: square-cutoff scan windows per machine (paper's Fig. 2 used 120-260)
SCAN_RANGES = {"RS6000": (120, 300), "C90": (80, 220), "T3D": (250, 460)}


def _one_level_time(mach: MachineModel, m: int, k: int, n: int) -> float:
    return sim_dgefmm(mach, m, k, n, 1.0, 0.0, cutoff=DepthCutoff(1))


# --------------------------------------------------------------------- #
# Figure 2 / Table 2: square cutoff
# --------------------------------------------------------------------- #

def fig2_square_cutoff(
    mach: MachineModel = RS6000,
    lo: Optional[int] = None,
    hi: Optional[int] = None,
) -> Dict:
    """Figure 2: ratio DGEMM/DGEFMM(1 level) vs square order.

    Returns the scan points plus the (first win, always wins,
    recommended) summary — the paper's 176 / 214 / 199 on the RS/6000.
    """
    base = mach.name.split("(")[0]
    sl, sh = SCAN_RANGES.get(base, (120, 300))
    lo = lo if lo is not None else sl
    hi = hi if hi is not None else sh
    points: List[Tuple[int, float]] = []
    for m in range(lo, hi + 1):
        points.append((m, sim_dgemm(mach, m, m, m) / _one_level_time(mach, m, m, m)))
    wins = [r > 1.0 for _, r in points]
    first = points[wins.index(True)][0] if any(wins) else None
    always = None
    for (m, _r), w in zip(reversed(points), reversed(wins)):
        if not w:
            break
        always = m
    recommended = (first + always) // 2 if first and always else None
    return {
        "machine": mach.name,
        "points": points,
        "first_win": first,
        "always_win": always,
        "recommended": recommended,
        "paper": {"first_win": 176, "always_win": 214, "chosen": 199},
    }


def table2_square_cutoffs(
    machines: Optional[Sequence[MachineModel]] = None,
) -> List[Dict]:
    """Table 2: empirical square cutoffs on all machines."""
    machines = list(machines) if machines is not None else list(MACHINES.values())
    rows = []
    for mach in machines:
        d = fig2_square_cutoff(mach)
        rows.append(
            {
                "machine": mach.name,
                "measured_tau": d["recommended"],
                "first_win": d["first_win"],
                "always_win": d["always_win"],
                "paper_tau": PAPER_SQUARE_CUTOFF[mach.name.split("(")[0]],
            }
        )
    return rows


# --------------------------------------------------------------------- #
# Table 3: rectangular cutoff parameters
# --------------------------------------------------------------------- #

def table3_rect_params(
    machines: Optional[Sequence[MachineModel]] = None,
) -> List[Dict]:
    """Table 3: long-thin crossovers tau_m, tau_k, tau_n per machine.

    Runs the Section 3.4 procedure: vary one dimension with the other two
    fixed large (2000, or 1500 on the T3D); bisect (even sizes) for the
    point where one Strassen level beats DGEMM.
    """
    machines = list(machines) if machines is not None else list(MACHINES.values())
    rows = []
    for mach in machines:
        base = mach.name.split("(")[0]
        fixed = FIXED_DIM[base]

        def cross(which: str) -> int:
            # linear scan over even sizes: the win predicate is jittery
            # near the boundary (halved dims alternate even/odd, paying
            # peel fix-ups on odd halves), so bisection is unsafe — the
            # paper's empirical procedure scans as well
            def wins(x: int) -> bool:
                dims = {
                    "m": (x, fixed, fixed),
                    "k": (fixed, x, fixed),
                    "n": (fixed, fixed, x),
                }[which]
                return sim_dgemm(mach, *dims) > _one_level_time(mach, *dims)

            for x in range(4, 802, 2):
                if wins(x):
                    return x
            raise RuntimeError(f"no {which} crossover found below 800")

        tm, tk, tn = cross("m"), cross("k"), cross("n")
        pm, pk, pn = PAPER_RECT_PARAMS[base]
        rows.append(
            {
                "machine": mach.name,
                "tau_m": tm, "tau_k": tk, "tau_n": tn,
                "sum": tm + tk + tn,
                "paper": (pm, pk, pn),
                "paper_sum": pm + pk + pn,
            }
        )
    return rows


# --------------------------------------------------------------------- #
# Table 4: cutoff criteria comparison
# --------------------------------------------------------------------- #

def _ratio_stats(ratios: Sequence[float]) -> Dict:
    r = np.sort(np.asarray(ratios, dtype=float))
    return {
        "n": len(r),
        "min": float(r[0]),
        "max": float(r[-1]),
        "q1": float(np.percentile(r, 25)),
        "median": float(np.percentile(r, 50)),
        "q3": float(np.percentile(r, 75)),
        "mean": float(np.mean(r)),
    }


def table4_criteria(
    mach: MachineModel = RS6000,
    *,
    sample: int = 100,
    sample_higham: int = 200,
    sample_two_large: int = 50,
    seed: int = 1996,
) -> List[Dict]:
    """Table 4: DGEFMM time with criterion (15) over other criteria.

    Three comparisons per machine, on problems where the two criteria
    disagree at the top level (alpha = 1, beta = 0 as in the paper):
    (15)/(11), (15)/(12), and (15)/(12) with two dimensions large.
    The paper used samples of 100 / 1000 / 100; defaults here are smaller
    for interactivity — pass the paper's numbers for the faithful run.
    """
    base = mach.name.split("(")[0]
    tau = PAPER_SQUARE_CUTOFF[base]
    hybrid = paper_hybrid_cutoff(base)
    simple = SimpleCutoff(tau)
    higham = HighamCutoff(tau)
    lo, hi = dimension_bounds(tau, PAPER_RECT_PARAMS[base], base)
    large = 1350 if base == "T3D" else 1800

    def ratios_for(crit_other, probs) -> List[float]:
        out = []
        for (m, k, n) in probs:
            t15 = sim_dgefmm(mach, m, k, n, cutoff=hybrid)
            t_o = sim_dgefmm(mach, m, k, n, cutoff=crit_other)
            out.append(t15 / t_o)
        return out

    rows = []
    probs = disagreement_problems(hybrid, simple, lo, hi, sample, seed)
    rows.append(
        {"machine": mach.name, "comparison": "(15)/(11)",
         **_ratio_stats(ratios_for(simple, probs))}
    )
    probs = disagreement_problems(hybrid, higham, lo, hi, sample_higham, seed + 1)
    rows.append(
        {"machine": mach.name, "comparison": "(15)/(12)",
         **_ratio_stats(ratios_for(higham, probs))}
    )
    probs = two_dims_large_problems(
        hybrid, higham, lo, hi, large, sample_two_large, seed + 2
    )
    rows.append(
        {"machine": mach.name, "comparison": "(15)/(12) two large",
         **_ratio_stats(ratios_for(higham, probs))}
    )
    return rows


# --------------------------------------------------------------------- #
# Table 5: recursion-depth scaling
# --------------------------------------------------------------------- #

#: paper Table 5 measurements (machine -> [(m, dgemm_s, dgefmm_s), ...])
PAPER_TABLE5 = {
    "RS6000": [(200, 0.150, 0.150), (400, 1.14, 1.05),
               (800, 9.06, 7.59), (1600, 72.2, 54.1)],
    "C90": [(130, 0.0060, 0.0055), (260, 0.0431, 0.0410),
            (520, 0.332, 0.312), (1040, 2.54, 2.10), (2080, 20.1, 13.3)],
    "T3D": [(326, 0.694, 0.669), (652, 5.40, 4.91), (1304, 42.6, 33.3)],
}


def table5_recursions(
    machines: Optional[Sequence[MachineModel]] = None,
    alpha: float = 1.0 / 3.0,
    beta: float = 1.0 / 4.0,
) -> List[Dict]:
    """Table 5: DGEMM vs DGEFMM at m = tau+1, 2(tau+1), 4(tau+1), ...

    alpha = 1/3, beta = 1/4 as in the paper (exercising the general-case
    STRASSEN2 path).  Rows include the paper's measured seconds.
    """
    machines = list(machines) if machines is not None else list(MACHINES.values())
    rows = []
    for mach in machines:
        base = mach.name.split("(")[0]
        hybrid = paper_hybrid_cutoff(base)
        for depth_i, (m, paper_g, paper_f) in enumerate(PAPER_TABLE5[base], 1):
            tg = sim_dgemm(mach, m, m, m)
            tf = sim_dgefmm(mach, m, m, m, alpha, beta, cutoff=hybrid)
            rows.append(
                {
                    "machine": mach.name, "recursions": depth_i, "m": m,
                    "dgemm_s": tg, "dgefmm_s": tf, "ratio": tf / tg,
                    "paper_dgemm_s": paper_g, "paper_dgefmm_s": paper_f,
                    "paper_ratio": paper_f / paper_g,
                }
            )
    return rows


# --------------------------------------------------------------------- #
# Figures 3-5: square-sweep ratios against the other codes
# --------------------------------------------------------------------- #

def _square_sweep_ratio(
    mach_ours: MachineModel,
    mach_theirs: MachineModel,
    time_theirs,
    lo: int,
    hi: int,
    step: int,
    alpha: float,
    beta: float,
    cutoff_ours=None,
) -> Dict:
    pts = []
    for m in range(lo, hi + 1, step):
        t_ours = sim_dgefmm(mach_ours, m, m, m, alpha, beta, cutoff=cutoff_ours)
        t_them = time_theirs(mach_theirs, m, m, m, alpha, beta)
        pts.append((m, t_ours / t_them))
    return {"points": pts, "average": float(np.mean([r for _, r in pts]))}


def fig3_vs_essl(
    mach: MachineModel = RS6000,
    lo: int = 200,
    hi: int = 2200,
    step: int = 25,
    gain: Optional[float] = None,
) -> Dict:
    """Figure 3: DGEFMM / IBM ESSL DGEMMS on the RS/6000.

    The vendor routine runs on the tuned machine (kernel advantage);
    reports both the beta = 0 sweep (the figure; paper average 1.052)
    and the general-case average (paper 1.028).
    """
    g = gain if gain is not None else VENDOR_GAIN["RS6000"]
    tuned = mach.tuned(g)
    hybrid = paper_hybrid_cutoff(mach.name)
    b0 = _square_sweep_ratio(mach, tuned, sim_essl, lo, hi, step, 1.0, 0.0,
                             cutoff_ours=hybrid)
    gen = _square_sweep_ratio(mach, tuned, sim_essl, lo, hi, step * 4,
                              0.5, 0.25, cutoff_ours=hybrid)
    return {
        "machine": mach.name, "gain": g,
        "beta0": b0, "general": gen,
        "paper": {"beta0_avg": 1.052, "general_avg": 1.028},
    }


def fig4_vs_cray(
    mach: MachineModel = C90,
    lo: int = 50,
    hi: int = 2000,
    step: int = 25,
    gain: Optional[float] = None,
) -> Dict:
    """Figure 4: DGEFMM / CRAY SGEMMS on the C90 (paper avg 1.066/1.052)."""
    g = gain if gain is not None else VENDOR_GAIN["C90"]
    tuned = mach.tuned(g)
    hybrid = paper_hybrid_cutoff(mach.name)
    b0 = _square_sweep_ratio(mach, tuned, sim_cray, lo, hi, step, 1.0, 0.0,
                             cutoff_ours=hybrid)
    gen = _square_sweep_ratio(mach, tuned, sim_cray, lo, hi, step * 4,
                              0.5, 0.25, cutoff_ours=hybrid)
    return {
        "machine": mach.name, "gain": g,
        "beta0": b0, "general": gen,
        "paper": {"beta0_avg": 1.066, "general_avg": 1.052},
    }


def fig5_vs_dgemmw(
    mach: MachineModel = RS6000,
    lo: int = 200,
    hi: int = 2200,
    step: int = 25,
) -> Dict:
    """Figure 5: DGEFMM / DGEMMW, square sweep on the RS/6000.

    DGEMMW runs on the *same* (untuned) machine — it is portable C like
    DGEFMM; the differences are structural (padding vs peeling, cutoff
    criterion, general-case buffer).  Paper averages: 0.991 general,
    1.0089 at beta = 0.
    """
    hybrid = paper_hybrid_cutoff(mach.name)
    gen = _square_sweep_ratio(mach, mach, sim_dgemmw, lo, hi, step,
                              0.5, 0.25, cutoff_ours=hybrid)
    b0 = _square_sweep_ratio(mach, mach, sim_dgemmw, lo, hi, step * 4,
                             1.0, 0.0, cutoff_ours=hybrid)
    return {
        "machine": mach.name, "general": gen, "beta0": b0,
        "paper": {"general_avg": 0.991, "beta0_avg": 1.0089},
    }


def fig6_rect_vs_dgemmw(
    mach: MachineModel = RS6000,
    *,
    count: int = 100,
    seed: int = 1996,
) -> Dict:
    """Figure 6: DGEFMM / DGEMMW on random rectangular problems.

    Dimensions uniform in [tau_d, 2050] per dimension (the paper's
    ranges); x-axis log10(2mnk).  Paper averages: 0.974 general, 0.999
    at beta = 0.
    """
    base = mach.name.split("(")[0]
    tm, tk, tn = PAPER_RECT_PARAMS[base]
    probs = sample_problems((tm, tk, tn), 2050, count, seed)
    hybrid = paper_hybrid_cutoff(base)

    def series(alpha: float, beta: float):
        pts = []
        for (m, k, n) in probs:
            t_ours = sim_dgefmm(mach, m, k, n, alpha, beta, cutoff=hybrid)
            t_them = sim_dgemmw(mach, m, k, n, alpha, beta)
            pts.append((math.log10(2.0 * m * n * k), t_ours / t_them))
        return {"points": pts,
                "average": float(np.mean([r for _, r in pts]))}

    return {
        "machine": mach.name,
        "general": series(0.5, 0.25),
        "beta0": series(1.0, 0.0),
        "paper": {"general_avg": 0.974, "beta0_avg": 0.999},
    }


# --------------------------------------------------------------------- #
# Table 1: memory requirements
# --------------------------------------------------------------------- #

#: paper Table 1 (coefficients of m^2), by implementation and case;
#: the Bailey row is the paper Section 3.2's quoted (mk+kn+mn)/3 for
#: reference [3]'s scheme (not a Table 1 row in the paper itself)
PAPER_TABLE1 = {
    "Bailey [3]": (1.0, None),
    "CRAY SGEMMS": (7 / 3, 7 / 3),
    "IBM ESSL DGEMMS": (1.40, None),
    "DGEMMW": (2 / 3, 5 / 3),
    "STRASSEN1": (2 / 3, 2.0),
    "STRASSEN2": (1.0, 1.0),
    "DGEFMM": (2 / 3, 1.0),
    # not a paper row: the memory-efficient Winograd schedule of
    # Boyer-Dumas-Pernet-Zhou (arXiv:0707.2347), whose two-temporary
    # bound (mk + kn)/3 holds for *both* scalar classes — tighter than
    # every Table 1 general-case entry
    "BDPZ": (2 / 3, 2 / 3),
}


def table1_memory(m: int = 1024, tau: int = 64) -> List[Dict]:
    """Table 1: measured peak workspace / m^2 for every implementation.

    Every code is dry-run on an order-m problem with a common cutoff and
    its workspace high-water mark measured — the coefficients are
    *observed*, not asserted.  Paper (documented) values included for
    comparison; the vendor codes' internals are reconstructions, so their
    measured coefficients legitimately differ (see DESIGN.md).
    """
    crit = SimpleCutoff(tau)

    def peak(fn, beta: float) -> float:
        ctx = ExecutionContext(dry=True)
        ws = Workspace(dry=True)
        a, b, c = Phantom(m, m), Phantom(m, m), Phantom(m, m)
        fn(a, b, c, 1.0, beta, ctx=ctx, workspace=ws)
        return ws.peak_elements / m**2

    def dgefmm_scheme(scheme):
        def fn(a, b, c, al, be, ctx, workspace):
            dgefmm(a, b, c, al, be, scheme=scheme, cutoff=crit,
                   ctx=ctx, workspace=workspace)
        return fn

    def f_dgemmw(a, b, c, al, be, ctx, workspace):
        dgemmw(a, b, c, al, be, cutoff=crit, ctx=ctx, workspace=workspace)

    def f_essl(a, b, c, al, be, ctx, workspace):
        essl_dgemms_general(a, b, c, al, be, cutoff=crit,
                            ctx=ctx, workspace=workspace)

    def f_cray(a, b, c, al, be, ctx, workspace):
        cray_sgemms(a, b, c, al, be, cutoff=crit, ctx=ctx,
                    workspace=workspace)

    def f_bailey(a, b, c, al, be, ctx, workspace):
        bailey_strassen(a, b, c, al, be, cutoff=crit, ctx=ctx,
                        workspace=workspace)

    impls = [
        ("Bailey [3]", f_bailey),
        ("CRAY SGEMMS", f_cray),
        ("IBM ESSL DGEMMS", f_essl),
        ("DGEMMW", f_dgemmw),
        ("STRASSEN1", dgefmm_scheme("strassen1")),
        ("STRASSEN2", dgefmm_scheme("strassen2")),
        ("DGEFMM", dgefmm_scheme("auto")),
        ("BDPZ", dgefmm_scheme("bdpz")),
    ]
    rows = []
    for name, fn in impls:
        pb0, pbn = PAPER_TABLE1[name]
        rows.append(
            {
                "implementation": name,
                "m": m,
                "beta0": peak(fn, 0.0),
                "general": peak(fn, 1.0),
                "paper_beta0": pb0,
                "paper_general": pbn,
            }
        )
    return rows


# --------------------------------------------------------------------- #
# Table 6: eigensolver application (wall clock)
# --------------------------------------------------------------------- #

def table6_eigensolver(
    n: int = 256,
    *,
    seed: int = 1996,
    cutoff=None,
    base_size: int = 32,
) -> Dict:
    """Table 6: ISDA eigensolver with DGEMM vs DGEFMM (wall clock).

    The paper ran a 1000x1000 random symmetric matrix on the RS/6000 and
    saw total time 1168 -> 974 s and MM time 1030 -> 812 s (~20 % MM
    saving).  Here the order is configurable (the substrate kernels are
    numpy-based, so the paper's order is expensive but possible); the
    reproduction claim is the *structure*: swapping the gemm callable
    alone yields a measurable MM-time saving, with "other" time
    unchanged.
    """
    a = random_symmetric(n, seed)
    results = {}
    for kind in ("dgemm", "dgefmm"):
        kernel_ctx = ExecutionContext()
        gemm = GemmCounter(make_gemm(kind, cutoff=cutoff, ctx=kernel_ctx))
        w, v, stats = isda_eigh(a, gemm, base_size=base_size)
        resid = float(np.linalg.norm(a @ v - v * w))
        results[kind] = {
            "total_s": stats.total_seconds,
            "mm_s": stats.gemm_seconds,
            "mm_calls": stats.gemm_calls,
            "mul_flops": kernel_ctx.mul_flops,
            "residual": resid,
            "splits": stats.splits,
        }
    results["n"] = n
    results["mm_ratio"] = results["dgefmm"]["mm_s"] / results["dgemm"]["mm_s"]
    results["mul_flop_ratio"] = (
        results["dgefmm"]["mul_flops"] / results["dgemm"]["mul_flops"]
    )
    results["paper"] = {
        "n": 1000,
        "dgemm": {"total_s": 1168.0, "mm_s": 1030.0},
        "dgefmm": {"total_s": 974.0, "mm_s": 812.0},
        "mm_ratio": 812.0 / 1030.0,
    }
    return results


# --------------------------------------------------------------------- #
# Section 2: operation-count analysis headline numbers
# --------------------------------------------------------------------- #

def section2_opcounts() -> Dict:
    """The Section 2 analysis numbers the paper derives in closed form."""
    from repro.core import opcount

    # The paper quotes "improvement of (4) over (5)" as 1 - W/S, i.e. the
    # fraction of Strassen-original ops that Winograd saves.
    def improvement(m0: int) -> float:
        return 1.0 - 1.0 / opcount.winograd_vs_strassen_limit(m0)

    return {
        "one_level_ratio_limit": 7.0 / 8.0,
        "one_level_ratio_at_512": opcount.one_level_ratio(512),
        "theoretical_square_cutoff": opcount.theoretical_square_cutoff(),
        # paper: "obtaining a 38.2% improvement using cutoffs" = 1 - 1/ratio
        "cutoff_ratio_256": opcount.cutoff_improvement_square(256),
        "cutoff_improvement_256": 1.0
        - 1.0 / opcount.cutoff_improvement_square(256),
        "winograd_improvement_full": improvement(1),
        "winograd_improvement_m7": improvement(7),
        "winograd_improvement_m12": improvement(12),
        "paper": {
            "theoretical_square_cutoff": 12,
            "cutoff_improvement_256": 0.382,
            "winograd_improvement_full": 0.143,
            "winograd_improvement_m7": 0.0526,
            "winograd_improvement_m12": 0.0345,
        },
    }
