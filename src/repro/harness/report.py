"""Paper-style rendering of every experiment, and a CLI to run them all.

``python -m repro.harness.report`` regenerates each table and figure
(figures as data series summaries) and prints paper-vs-measured.  Use
``--fast`` (default) or ``--full`` for the paper's sample sizes, and
``--only tableN|figN`` to select one exhibit.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List

from repro.harness import experiments as E
from repro.utils.tables import format_table

__all__ = ["render", "main", "EXHIBITS"]


def _r_fig2(full: bool) -> str:
    d = E.fig2_square_cutoff()
    p = d["paper"]
    lines = [
        "Figure 2: experimentally determined square cutoff, RS/6000 "
        "(alpha=1, beta=0)",
        f"  first win m={d['first_win']} (paper {p['first_win']}), "
        f"always wins m>={d['always_win']} (paper {p['always_win']}), "
        f"recommended tau={d['recommended']} (paper chose {p['chosen']})",
        "  ratio DGEMM/DGEFMM(1 level), every 10th point:",
    ]
    pts = d["points"][::10]
    lines.append(
        "  " + "  ".join(f"{m}:{r:.3f}" for m, r in pts)
    )
    return "\n".join(lines)


def _r_table2(full: bool) -> str:
    rows = E.table2_square_cutoffs()
    return format_table(
        ["machine", "measured tau", "first win", "always win", "paper tau"],
        [
            (r["machine"], r["measured_tau"], r["first_win"],
             r["always_win"], r["paper_tau"])
            for r in rows
        ],
        title="Table 2: empirical square cutoffs",
    )


def _r_table3(full: bool) -> str:
    rows = E.table3_rect_params()
    return format_table(
        ["machine", "tau_m", "tau_k", "tau_n", "sum", "paper", "paper sum"],
        [
            (r["machine"], r["tau_m"], r["tau_k"], r["tau_n"], r["sum"],
             str(r["paper"]), r["paper_sum"])
            for r in rows
        ],
        title="Table 3: rectangular cutoff parameters (alpha=1, beta=0)",
    )


def _r_table4(full: bool) -> str:
    out: List[str] = ["Table 4: comparison of cutoff criteria "
                      "(ratios of DGEFMM time, (15) vs others)"]
    kw = (
        dict(sample=100, sample_higham=1000, sample_two_large=100)
        if full
        else dict(sample=60, sample_higham=120, sample_two_large=40)
    )
    from repro.machines.presets import MACHINES

    rows = []
    for mach in MACHINES.values():
        rows.extend(E.table4_criteria(mach, **kw))
    out.append(
        format_table(
            ["machine", "comparison", "n", "range", "quartiles", "average"],
            [
                (
                    r["machine"], r["comparison"], r["n"],
                    f"{r['min']:.4f}-{r['max']:.4f}",
                    f"{r['q1']:.4f};{r['median']:.4f};{r['q3']:.4f}",
                    f"{r['mean']:.4f}",
                )
                for r in rows
            ],
        )
    )
    out.append(
        "  paper RS/6000: (15)/(11) avg 0.9529, (15)/(12) avg 1.0017, "
        "two-large avg 0.9888"
    )
    return "\n".join(out)


def _r_table5(full: bool) -> str:
    rows = E.table5_recursions()
    return format_table(
        ["machine", "recs", "m", "DGEMM s", "DGEFMM s", "ratio",
         "paper DGEMM", "paper DGEFMM", "paper ratio"],
        [
            (r["machine"], r["recursions"], r["m"],
             f"{r['dgemm_s']:.4g}", f"{r['dgefmm_s']:.4g}",
             f"{r['ratio']:.3f}",
             f"{r['paper_dgemm_s']:.4g}", f"{r['paper_dgefmm_s']:.4g}",
             f"{r['paper_ratio']:.3f}")
            for r in rows
        ],
        title="Table 5: times for different recursion counts "
              "(alpha=1/3, beta=1/4)",
    )


def _series(d: Dict, label: str, paper_key: str) -> str:
    return (
        f"  {label}: average {d['average']:.4f} "
        f"(paper {paper_key})"
    )


def _r_fig3(full: bool) -> str:
    step = 25 if full else 50
    d = E.fig3_vs_essl(step=step)
    return "\n".join(
        [
            "Figure 3: DGEFMM / IBM ESSL DGEMMS, RS/6000 "
            f"(vendor gain {d['gain']})",
            _series(d["beta0"], "beta=0 sweep",
                    f"{d['paper']['beta0_avg']}"),
            _series(d["general"], "general alpha,beta",
                    f"{d['paper']['general_avg']}"),
        ]
    )


def _r_fig4(full: bool) -> str:
    step = 25 if full else 50
    d = E.fig4_vs_cray(step=step)
    return "\n".join(
        [
            "Figure 4: DGEFMM / CRAY SGEMMS, C90 "
            f"(vendor gain {d['gain']})",
            _series(d["beta0"], "beta=0 sweep", f"{d['paper']['beta0_avg']}"),
            _series(d["general"], "general alpha,beta",
                    f"{d['paper']['general_avg']}"),
        ]
    )


def _r_fig5(full: bool) -> str:
    step = 25 if full else 50
    d = E.fig5_vs_dgemmw(step=step)
    return "\n".join(
        [
            "Figure 5: DGEFMM / DGEMMW, square, RS/6000",
            _series(d["general"], "general alpha,beta",
                    f"{d['paper']['general_avg']}"),
            _series(d["beta0"], "beta=0", f"{d['paper']['beta0_avg']}"),
        ]
    )


def _r_fig6(full: bool) -> str:
    count = 200 if full else 60
    d = E.fig6_rect_vs_dgemmw(count=count)
    return "\n".join(
        [
            "Figure 6: DGEFMM / DGEMMW, random rectangular, RS/6000",
            _series(d["general"], "general alpha,beta",
                    f"{d['paper']['general_avg']}"),
            _series(d["beta0"], "beta=0", f"{d['paper']['beta0_avg']}"),
        ]
    )


def _r_table1(full: bool) -> str:
    rows = E.table1_memory(m=2048 if full else 1024)

    def fmt(x):
        return "n/a" if x is None else f"{x:.3f}"

    return format_table(
        ["implementation", "beta=0 (m^2)", "general (m^2)",
         "paper beta=0", "paper general"],
        [
            (r["implementation"], f"{r['beta0']:.3f}", f"{r['general']:.3f}",
             fmt(r["paper_beta0"]), fmt(r["paper_general"]))
            for r in rows
        ],
        title=f"Table 1: measured temporary memory, order {rows[0]['m']} "
              "(vendor rows are reconstructions; see DESIGN.md)",
    )


def _r_table6(full: bool) -> str:
    n = 384 if full else 192
    d = E.table6_eigensolver(n=n)
    rows = [
        ("Total time (s)", f"{d['dgemm']['total_s']:.2f}",
         f"{d['dgefmm']['total_s']:.2f}"),
        ("MM time (s)", f"{d['dgemm']['mm_s']:.2f}",
         f"{d['dgefmm']['mm_s']:.2f}"),
        ("MM calls", d["dgemm"]["mm_calls"], d["dgefmm"]["mm_calls"]),
        ("residual", f"{d['dgemm']['residual']:.2e}",
         f"{d['dgefmm']['residual']:.2e}"),
    ]
    p = d["paper"]
    return "\n".join(
        [
            format_table(
                [f"eigensolver n={d['n']}", "using DGEMM", "using DGEFMM"],
                rows,
                title="Table 6: ISDA eigensolver timings (wall clock, "
                      "this host)",
            ),
            f"  MM-time ratio {d['mm_ratio']:.3f} "
            f"(paper, n=1000 RS/6000: {p['mm_ratio']:.3f})",
        ]
    )


def _r_section2(full: bool) -> str:
    d = E.section2_opcounts()
    p = d["paper"]
    return "\n".join(
        [
            "Section 2 operation-count analysis:",
            f"  theoretical square cutoff: {d['theoretical_square_cutoff']} "
            f"(paper {p['theoretical_square_cutoff']})",
            f"  cutoff improvement at order 256: "
            f"{d['cutoff_improvement_256']:.3f} "
            f"(paper {p['cutoff_improvement_256']})",
            f"  Winograd vs Strassen improvement (full recursion): "
            f"{d['winograd_improvement_full']:.3f} "
            f"(paper {p['winograd_improvement_full']})",
            f"  ... at m0=7: {d['winograd_improvement_m7']:.4f} "
            f"(paper {p['winograd_improvement_m7']}), "
            f"m0=12: {d['winograd_improvement_m12']:.4f} "
            f"(paper {p['winograd_improvement_m12']})",
        ]
    )


def _r_extensions(full: bool) -> str:
    """Extension exhibits: model ladder and stability, summarized."""
    from repro.core.cutoff import DepthCutoff
    from repro.core.dgefmm import dgefmm as _dgefmm
    from repro.core.stability import (
        UNIT_ROUNDOFF,
        measure_error,
        winograd_growth,
    )
    from repro.models import (
        MemoryTrafficModel,
        OperationCountModel,
        WeightedOpsModel,
        predicted_square_crossover,
    )

    lines = ["Extensions: the [14] model ladder "
             "(empirical taus: 199 / 129 / 325)"]
    for name, model in [
        ("operation count", OperationCountModel()),
        ("weighted ops (g=5)", WeightedOpsModel(add_weight=5.0)),
        ("traffic (Z=32Kw)", MemoryTrafficModel(cache_words=32768,
                                                word_cost=4.0)),
    ]:
        lines.append(
            f"  {name:22s} predicted tau = "
            f"{predicted_square_crossover(model)}"
        )
    lines.append("Stability (order 256): measured error vs Higham bound")
    for d in (0, 2, 4):
        def mult(a, b, c, _d=d):
            _dgefmm(a, b, c, cutoff=DepthCutoff(_d))
        err, denom = measure_error(mult, 256, seed=d)
        bound = winograd_growth(d, 256 >> d) * UNIT_ROUNDOFF * denom
        lines.append(
            f"  depth {d}: error {err:.2e}  bound {bound:.2e}  "
            f"(ratio {err / bound:.1e})"
        )
    return "\n".join(lines)


EXHIBITS: Dict[str, Callable[[bool], str]] = {
    "section2": _r_section2,
    "table1": _r_table1,
    "fig2": _r_fig2,
    "table2": _r_table2,
    "table3": _r_table3,
    "table4": _r_table4,
    "table5": _r_table5,
    "fig3": _r_fig3,
    "fig4": _r_fig4,
    "fig5": _r_fig5,
    "fig6": _r_fig6,
    "table6": _r_table6,
    "extensions": _r_extensions,
}


def render(only: str = "", full: bool = False) -> str:
    """Render the selected exhibit (or all of them) to a string."""
    keys = [only] if only else list(EXHIBITS)
    chunks = []
    for k in keys:
        if k not in EXHIBITS:
            raise KeyError(f"unknown exhibit {k!r}; choose from {list(EXHIBITS)}")
        t0 = time.perf_counter()
        body = EXHIBITS[k](full)
        dt = time.perf_counter() - t0
        chunks.append(f"{body}\n  [{k}: {dt:.1f}s]\n")
    return "\n".join(chunks)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--only", default="", help="one exhibit, e.g. table4")
    ap.add_argument("--full", action="store_true",
                    help="paper-scale sample sizes (slower)")
    args = ap.parse_args(argv)
    sys.stdout.write(render(args.only, args.full))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
