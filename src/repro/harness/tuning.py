"""Closing the Section 3.4 loop: measure cutoffs, build the criterion.

The paper's workflow is measure (Figure 2 / Table 3) -> parameterize
(eq. 15) -> evaluate (Table 4).  The experiment functions implement the
measuring; this module packages their outputs into a ready-to-use
:class:`~repro.core.cutoff.HybridCutoff`, so a user (or a test) can run
the *entire* loop against any machine model — including one produced by
:func:`repro.machines.calibrate.calibrate_host` for the running host —
and verify the resulting criterion performs like the paper's published
parameters do.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.core.cutoff import HybridCutoff
from repro.machines.model import MachineModel

__all__ = ["tune_hybrid_cutoff"]

#: ``f(m, k, n) -> seconds`` — the timer shape shared with
#: :func:`repro.machines.calibrate.host_timers`.
Timer = Callable[[int, int, int], float]


def tune_hybrid_cutoff(
    mach: Optional[MachineModel],
    *,
    fixed: int = 2000,
    scan_margin: int = 110,
    time_gemm: Optional[Timer] = None,
    time_one_level: Optional[Timer] = None,
) -> Dict:
    """Measure tau and (tau_m, tau_k, tau_n); build eq. (15).

    Runs the same experiments as Table 2/3 (dry-run crossover searches
    against the machine model through the real DGEFMM recursion) and
    returns ``{"criterion": HybridCutoff, "tau": ..., "rect": (...),
    "band": (first, always)}``.

    Timers are injectable: pass ``time_gemm`` / ``time_one_level`` (both
    ``f(m, k, n) -> seconds``, e.g. the wall-clock pair from
    :func:`repro.machines.calibrate.host_timers`) to tune against a live
    host instead of a machine model, in which case ``mach`` may be
    ``None``.  By default both are simulated on ``mach``.

    ``scan_margin`` widens the square scan around a coarse initial guess
    (found by doubling search), keeping the sweep short without knowing
    the machine's cutoff in advance.
    """
    from repro.harness.experiments import _one_level_time
    from repro.harness.simtime import sim_dgemm
    from repro.machines.calibrate import (
        measured_rect_crossover,
        measured_square_crossover,
    )

    if time_gemm is None or time_one_level is None:
        if mach is None:
            raise ValueError(
                "tune_hybrid_cutoff: need a MachineModel or both timers"
            )
        time_gemm = lambda m, k, n: sim_dgemm(mach, m, k, n)  # noqa: E731
        time_one_level = lambda m, k, n: _one_level_time(  # noqa: E731
            mach, m, k, n
        )

    def t_gemm_sq(m: int) -> float:
        return time_gemm(m, m, m)

    def t_one_sq(m: int) -> float:
        return time_one_level(m, m, m)

    # coarse bracket by doubling (even sizes)
    guess = 16
    while guess < 1 << 16 and t_gemm_sq(guess) <= t_one_sq(guess):
        guess *= 2
    lo = max(8, guess // 2 - scan_margin)
    hi = guess + scan_margin
    first, always, tau = measured_square_crossover(
        t_gemm_sq, t_one_sq, lo, hi
    )

    def cross(which: str) -> int:
        def tg(x: int) -> float:
            dims = {"m": (x, fixed, fixed), "k": (fixed, x, fixed),
                    "n": (fixed, fixed, x)}[which]
            return time_gemm(*dims)

        def t1(x: int) -> float:
            dims = {"m": (x, fixed, fixed), "k": (fixed, x, fixed),
                    "n": (fixed, fixed, x)}[which]
            return time_one_level(*dims)

        # linear scan (the boundary is jittery; see table3's note)
        for x in range(4, hi + 1, 2):
            if tg(x) > t1(x):
                return x
        raise RuntimeError(f"no {which} crossover below {hi}")

    tm, tk, tn = cross("m"), cross("k"), cross("n")
    return {
        "criterion": HybridCutoff(tau=tau, tau_m=tm, tau_k=tk, tau_n=tn),
        "tau": tau,
        "rect": (tm, tk, tn),
        "band": (first, always),
    }
