"""Closing the Section 3.4 loop: measure cutoffs, build the criterion.

The paper's workflow is measure (Figure 2 / Table 3) -> parameterize
(eq. 15) -> evaluate (Table 4).  The experiment functions implement the
measuring; this module packages their outputs into a ready-to-use
:class:`~repro.core.cutoff.HybridCutoff`, so a user (or a test) can run
the *entire* loop against any machine model — including one produced by
:func:`repro.machines.calibrate.calibrate_host` for the running host —
and verify the resulting criterion performs like the paper's published
parameters do.
"""

from __future__ import annotations

from typing import Dict

from repro.core.cutoff import HybridCutoff
from repro.machines.model import MachineModel

__all__ = ["tune_hybrid_cutoff"]


def tune_hybrid_cutoff(
    mach: MachineModel,
    *,
    fixed: int = 2000,
    scan_margin: int = 110,
) -> Dict:
    """Measure tau and (tau_m, tau_k, tau_n) on ``mach``; build eq. (15).

    Runs the same experiments as Table 2/3 (dry-run crossover searches
    against the machine model through the real DGEFMM recursion) and
    returns ``{"criterion": HybridCutoff, "tau": ..., "rect": (...),
    "band": (first, always)}``.

    ``scan_margin`` widens the square scan around a coarse initial guess
    (found by doubling search), keeping the sweep short without knowing
    the machine's cutoff in advance.
    """
    from repro.harness.experiments import _one_level_time
    from repro.harness.simtime import sim_dgemm
    from repro.machines.calibrate import (
        measured_rect_crossover,
        measured_square_crossover,
    )

    def t_gemm_sq(m: int) -> float:
        return sim_dgemm(mach, m, m, m)

    def t_one_sq(m: int) -> float:
        return _one_level_time(mach, m, m, m)

    # coarse bracket by doubling (even sizes)
    guess = 16
    while guess < 1 << 16 and t_gemm_sq(guess) <= t_one_sq(guess):
        guess *= 2
    lo = max(8, guess // 2 - scan_margin)
    hi = guess + scan_margin
    first, always, tau = measured_square_crossover(
        t_gemm_sq, t_one_sq, lo, hi
    )

    def cross(which: str) -> int:
        def tg(x: int) -> float:
            dims = {"m": (x, fixed, fixed), "k": (fixed, x, fixed),
                    "n": (fixed, fixed, x)}[which]
            return sim_dgemm(mach, *dims)

        def t1(x: int) -> float:
            dims = {"m": (x, fixed, fixed), "k": (fixed, x, fixed),
                    "n": (fixed, fixed, x)}[which]
            return _one_level_time(mach, *dims)

        # linear scan (the boundary is jittery; see table3's note)
        for x in range(4, hi + 1, 2):
            if tg(x) > t1(x):
                return x
        raise RuntimeError(f"no {which} crossover below {hi}")

    tm, tk, tn = cross("m"), cross("k"), cross("n")
    return {
        "criterion": HybridCutoff(tau=tau, tau_m=tm, tau_k=tk, tau_n=tn),
        "tau": tau,
        "rect": (tm, tk, tn),
        "band": (first, always),
    }
