"""Export figure series as CSV for external plotting.

The paper's figures are scatter/line plots; the experiment functions
return their underlying series, and this module writes them in a plain
CSV layout (one file per figure) so any plotting tool can regenerate the
visuals.  No plotting library is required (or used) anywhere in the
package.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Tuple, Union

from repro.harness import experiments as E

__all__ = ["write_series", "export_all_figures", "FIGURES"]


def write_series(
    path: Union[str, Path],
    header: Sequence[str],
    rows: Iterable[Tuple],
) -> Path:
    """Write one CSV series; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(header)
        for row in rows:
            writer.writerow(row)
    return path


def _fig2(outdir: Path, fast: bool) -> List[Path]:
    d = E.fig2_square_cutoff()
    return [
        write_series(
            outdir / "fig2_square_cutoff.csv",
            ["m", "ratio_dgemm_over_dgefmm_1level"],
            d["points"],
        )
    ]


def _fig3(outdir: Path, fast: bool) -> List[Path]:
    d = E.fig3_vs_essl(step=50 if fast else 25)
    return [
        write_series(
            outdir / "fig3_dgefmm_over_essl.csv",
            ["m", "time_ratio_beta0"],
            d["beta0"]["points"],
        )
    ]


def _fig4(outdir: Path, fast: bool) -> List[Path]:
    d = E.fig4_vs_cray(step=50 if fast else 25)
    return [
        write_series(
            outdir / "fig4_dgefmm_over_cray.csv",
            ["m", "time_ratio_beta0"],
            d["beta0"]["points"],
        )
    ]


def _fig5(outdir: Path, fast: bool) -> List[Path]:
    d = E.fig5_vs_dgemmw(step=50 if fast else 25)
    return [
        write_series(
            outdir / "fig5_dgefmm_over_dgemmw.csv",
            ["m", "time_ratio_general"],
            d["general"]["points"],
        )
    ]


def _fig6(outdir: Path, fast: bool) -> List[Path]:
    d = E.fig6_rect_vs_dgemmw(count=60 if fast else 200)
    return [
        write_series(
            outdir / "fig6_rectangular.csv",
            ["log10_2mnk", "time_ratio_general"],
            d["general"]["points"],
        )
    ]


FIGURES: Dict[str, object] = {
    "fig2": _fig2,
    "fig3": _fig3,
    "fig4": _fig4,
    "fig5": _fig5,
    "fig6": _fig6,
}


def export_all_figures(
    outdir: Union[str, Path], *, fast: bool = True
) -> List[Path]:
    """Write every figure's CSV into ``outdir``; returns the paths."""
    outdir = Path(outdir)
    paths: List[Path] = []
    for fn in FIGURES.values():
        paths.extend(fn(outdir, fast))
    return paths
