"""Cyclic Jacobi eigensolver for symmetric matrices.

Used by ISDA for its base-case subproblems (and directly by tests as an
independent check).  The classical cyclic-by-row Jacobi method: repeatedly
sweep all (p, q) pairs, annihilating each off-diagonal entry with a Givens
rotation; quadratically convergent once the off-diagonal mass is small.

Jacobi is chosen over a QR-iteration solver because it is simple to make
robust, unconditionally stable for symmetric input, and its accuracy on
small dense blocks is excellent — exactly what a divide-and-conquer base
case needs.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ConvergenceError, DimensionError

__all__ = ["jacobi_eigh"]


def _offdiag_norm(a: np.ndarray) -> float:
    """Frobenius norm of the strictly-off-diagonal part.

    Computed on a zero-diagonal copy: the tempting
    ``sqrt(||A||^2 - ||diag||^2)`` form cancels catastrophically once the
    matrix is nearly diagonal and floors at sqrt(eps)*||A||.
    """
    off = a.copy()
    np.fill_diagonal(off, 0.0)
    return float(np.linalg.norm(off))


def jacobi_eigh(
    a: np.ndarray,
    *,
    tol: float = 1e-12,
    max_sweeps: int = 60,
) -> Tuple[np.ndarray, np.ndarray]:
    """Eigendecomposition of a symmetric matrix by cyclic Jacobi.

    Returns ``(w, v)`` with eigenvalues ``w`` ascending and orthonormal
    eigenvectors in the columns of ``v`` (``a @ v == v @ diag(w)``).

    ``tol`` is relative to the Frobenius norm of ``a``; ``max_sweeps``
    bounds the number of full cyclic sweeps (a sweep is O(n^3)).
    """
    a = np.asarray(a, dtype=np.float64)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise DimensionError(f"jacobi_eigh: need a square matrix, got {a.shape}")
    n = a.shape[0]
    if n == 0:
        return np.empty(0), np.empty((0, 0))
    if not np.allclose(a, a.T, atol=1e-8 * max(1.0, float(np.abs(a).max()))):
        raise DimensionError("jacobi_eigh: input is not symmetric")

    w = a.copy()
    v = np.eye(n)
    scale = max(float(np.linalg.norm(w)), 1e-300)

    if n == 1:
        return np.array([w[0, 0]]), v

    for _ in range(max_sweeps):
        if _offdiag_norm(w) <= tol * scale:
            break
        for p in range(n - 1):
            for q in range(p + 1, n):
                apq = w[p, q]
                if abs(apq) <= 1e-18 * scale:
                    continue
                # Rutishauser's stable rotation computation; hypot avoids
                # overflow when the diagonal gap dwarfs the off-diagonal
                theta = (w[q, q] - w[p, p]) / (2.0 * apq)
                t = np.sign(theta) / (abs(theta) + np.hypot(theta, 1.0))
                if theta == 0.0:
                    t = 1.0
                c = 1.0 / np.sqrt(t**2 + 1.0)
                s = t * c
                # rows/columns p and q of W (two-sided), column rotation of V
                wp = w[:, p].copy()
                wq = w[:, q].copy()
                w[:, p] = c * wp - s * wq
                w[:, q] = s * wp + c * wq
                wp = w[p, :].copy()
                wq = w[q, :].copy()
                w[p, :] = c * wp - s * wq
                w[q, :] = s * wp + c * wq
                vp = v[:, p].copy()
                vq = v[:, q].copy()
                v[:, p] = c * vp - s * vq
                v[:, q] = s * vp + c * vq
    else:
        raise ConvergenceError(
            f"jacobi_eigh: not converged after {max_sweeps} sweeps "
            f"(offdiag {_offdiag_norm(w):.3e}, tol {tol * scale:.3e})"
        )

    vals = np.diag(w).copy()
    order = np.argsort(vals)
    return vals[order], v[:, order]
