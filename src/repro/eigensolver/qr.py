"""Householder QR with column pivoting (rank-revealing).

ISDA needs, from a converged spectral projector P (symmetric, idempotent,
rank r), an orthonormal basis of its range and one of its null space.
Column-pivoted QR delivers both at once: with ``P Pi = Q R`` and pivoting
by largest remaining column norm, the first r columns of Q span range(P)
and the rest span its orthogonal complement (= null(P), by symmetry).

Classical Businger-Golub algorithm with the standard downdate-and-refresh
norm maintenance; Q is accumulated explicitly since ISDA consumes it as a
dense basis.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import DimensionError

__all__ = ["qr_column_pivot", "projector_bases"]


def qr_column_pivot(
    a: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Column-pivoted QR factorization: ``A[:, piv] = Q @ R``.

    Returns ``(q, r, piv)`` with ``q`` m-by-m orthogonal, ``r`` m-by-n
    upper triangular with non-increasing ``|r[j, j]|``, and ``piv`` the
    column permutation as an index array.
    """
    a = np.array(a, dtype=np.float64, order="F", copy=True)
    if a.ndim != 2:
        raise DimensionError(f"qr_column_pivot: need a matrix, got {a.shape}")
    m, n = a.shape
    q = np.eye(m)
    piv = np.arange(n)
    if m == 0 or n == 0:
        return q, a, piv

    col_norms = np.sum(a * a, axis=0)
    steps = min(m, n)
    for j in range(steps):
        # pivot: bring the largest remaining column forward
        jmax = j + int(np.argmax(col_norms[j:]))
        if jmax != j:
            a[:, [j, jmax]] = a[:, [jmax, j]]
            piv[[j, jmax]] = piv[[jmax, j]]
            col_norms[[j, jmax]] = col_norms[[jmax, j]]
        x = a[j:, j]
        normx = float(np.linalg.norm(x))
        if normx > 0.0:
            # Householder vector v s.t. (I - 2 v v^T) x = -sign(x0)||x|| e1
            v = x.copy()
            v[0] += np.sign(x[0]) * normx if x[0] != 0.0 else normx
            vnorm = float(np.linalg.norm(v))
            if vnorm > 0.0:
                v /= vnorm
                # two-sided application: trailing columns of A, rows of Q^T
                a[j:, j:] -= 2.0 * np.outer(v, v @ a[j:, j:])
                q[:, j:] -= 2.0 * np.outer(q[:, j:] @ v, v)
        # exact zeros below the diagonal (Householder guarantees this up
        # to roundoff; keep R clean for downstream rank decisions)
        a[j + 1:, j] = 0.0
        if j + 1 < n:
            # downdate remaining squared norms; refresh when cancellation
            # makes them unreliable (standard Businger-Golub safeguard)
            col_norms[j + 1:] -= a[j, j + 1:] ** 2
            bad = col_norms[j + 1:] < 1e-10 * np.abs(a[j, j + 1:] ** 2 + 1.0)
            if np.any(bad):
                idx = j + 1 + np.nonzero(bad)[0]
                col_norms[idx] = np.sum(a[j + 1:, idx] ** 2, axis=0)
    return q, a, piv


def projector_bases(
    p: np.ndarray,
    rank: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Orthonormal bases (V1, V2) of range(P) and its complement.

    ``p`` is a (numerically) symmetric idempotent matrix of the given
    rank; V1 has ``rank`` columns, V2 the remaining ``n - rank``.
    """
    n = p.shape[0]
    if not 0 <= rank <= n:
        raise DimensionError(f"projector_bases: rank {rank} out of range for n={n}")
    q, _r, _piv = qr_column_pivot(p)
    return q[:, :rank], q[:, rank:]
