"""The ISDA polynomial iteration: matrix -> spectral projector.

ISDA's kernel [15] applies a polynomial function to a symmetric matrix
"until a certain convergence criterion is met" (paper Section 4.4); the
converged matrix is a spectral projector whose range/null spaces split
the eigenproblem in two.  The classical choice is the incomplete-beta
(smoothstep) polynomial

    p(x) = 3 x^2 - 2 x^3

on a matrix pre-scaled so its spectrum lies in [0, 1]: 0 and 1 are
attracting fixed points, 1/2 is repelling, so iterating ``C <- p(C)``
drives every eigenvalue below the split point to 0 and every one above
it to 1 — using nothing but matrix multiplication, which is why swapping
DGEMM for DGEFMM accelerates the whole solver.

Each iteration costs exactly two GEMM calls (``S = C*C`` and the fused
``C' = 3S - 2*(S*C)`` via one multiply-accumulate-style update).
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from repro.errors import ConvergenceError

__all__ = ["beta_iteration", "scale_to_unit", "GemmFn"]

#: in-place GEMM contract: gemm(a, b, c, alpha, beta) -> C = a*A*B + b*C
GemmFn = Callable[[np.ndarray, np.ndarray, np.ndarray, float, float], None]


def scale_to_unit(
    a: np.ndarray, split: float, lo: float, hi: float
) -> np.ndarray:
    """Affine map of A so [lo, hi] lands in [0, 1] with ``split`` at 1/2.

    ``lo``/``hi`` bound the spectrum (e.g. from Gershgorin disks); the
    map is ``B = (A - split*I)*s + I/2`` with ``s`` chosen so both ends
    stay inside [0, 1]:  s = 1 / (2 * max(hi - split, split - lo)).
    """
    if not lo <= split <= hi:
        raise ValueError(f"split {split} outside spectral bounds [{lo}, {hi}]")
    half_width = max(hi - split, split - lo)
    if half_width <= 0.0:
        raise ValueError("degenerate spectral bounds")
    s = 0.5 / half_width
    b = a * s
    d = np.arange(a.shape[0])
    b[d, d] += 0.5 - split * s
    return np.asfortranarray(b)


def beta_iteration(
    b: np.ndarray,
    gemm: GemmFn,
    *,
    tol: float = 1e-13,
    max_iter: int = 100,
) -> Tuple[np.ndarray, int]:
    """Iterate ``C <- 3 C^2 - 2 C^3`` to a projector; returns (P, iters).

    ``b`` must be symmetric with spectrum in [0, 1].  Convergence is
    declared when ``||C^2 - C||_F <= tol * n`` (idempotency); raises
    :class:`~repro.errors.ConvergenceError` if an eigenvalue sits too
    close to the repelling point 1/2 to converge in ``max_iter`` steps
    (the ISDA driver then retries with a shifted split point).
    """
    n = b.shape[0]
    c = np.array(b, dtype=np.float64, order="F", copy=True)
    s = np.empty_like(c)   # C^2
    t = np.empty_like(c)   # C^3 staging
    for it in range(1, max_iter + 1):
        gemm(c, c, s, 1.0, 0.0)          # S = C^2
        resid = float(np.linalg.norm(s - c))
        if resid <= tol * max(n, 1):
            return c, it - 1
        gemm(s, c, t, 1.0, 0.0)          # T = C^3
        # C <- 3 S - 2 T  (elementwise combine; no extra GEMM)
        np.multiply(s, 3.0, out=c)
        c -= 2.0 * t
        # symmetrize against roundoff drift (cheap, keeps Jacobi-grade
        # symmetry for the QR split)
        c += c.T
        c *= 0.5
    raise ConvergenceError(
        f"beta_iteration: no projector after {max_iter} iterations "
        f"(an eigenvalue is likely within ~2^-{max_iter} of the split)"
    )
