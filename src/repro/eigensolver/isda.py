"""ISDA divide-and-conquer driver with a pluggable GEMM.

The Invariant Subspace Decomposition Algorithm [15], as used by the paper
to demonstrate DGEFMM (Section 4.4):

1. bound the spectrum (Gershgorin), pick a split point;
2. map the matrix affinely so the split lands at 1/2 with spectrum in
   [0, 1], then run the beta polynomial iteration — *pure matrix
   multiplication* — until it converges to a spectral projector;
3. extract orthonormal range/null bases with rank-revealing QR;
4. compress: ``A1 = V1^T A V1``, ``A2 = V2^T A V2`` (more GEMMs);
5. recurse on the two halves; solve small blocks with Jacobi;
6. back-transform eigenvectors through the accumulated bases.

"Incorporating Strassen's algorithm into this eigensolver was
accomplished easily by renaming all calls to DGEMM as calls to DGEFMM" —
here that renaming is the ``gemm=`` argument, and :class:`GemmCounter`
measures the MM time / total time split that Table 6 reports.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple

import numpy as np

from repro.blas.level3 import dgemm as _blas_dgemm
from repro.core.cutoff import CutoffCriterion
from repro.core.dgefmm import dgefmm as _dgefmm
from repro.errors import ConvergenceError, DimensionError
from repro.eigensolver.jacobi import jacobi_eigh
from repro.eigensolver.polynomial import beta_iteration, scale_to_unit
from repro.eigensolver.qr import projector_bases

__all__ = ["isda_eigh", "make_gemm", "GemmCounter", "IsdaStats"]


class GemmCounter:
    """Wraps a gemm callable; accumulates call count and wall seconds.

    This is the measurement device behind Table 6's "MM time" row.
    """

    def __init__(self, gemm) -> None:
        self._gemm = gemm
        self.calls = 0
        self.seconds = 0.0
        self.flops = 0.0

    def __call__(self, a, b, c, alpha=1.0, beta=0.0) -> None:
        t0 = time.perf_counter()
        self._gemm(a, b, c, alpha, beta)
        self.seconds += time.perf_counter() - t0
        self.calls += 1
        m, k = a.shape
        self.flops += 2.0 * m * k * c.shape[1]


def make_gemm(
    kind: str = "dgemm",
    *,
    cutoff: Optional[CutoffCriterion] = None,
    ctx=None,
):
    """Build a gemm callable for :func:`isda_eigh`.

    ``kind`` is ``"dgemm"`` (the standard algorithm) or ``"dgefmm"``
    (the paper's Strassen routine); this is the "renaming" of Section
    4.4 in callable form.
    """
    if kind == "dgemm":
        def gemm(a, b, c, alpha=1.0, beta=0.0):
            _blas_dgemm(a, b, c, alpha, beta, ctx=ctx)
    elif kind == "dgefmm":
        def gemm(a, b, c, alpha=1.0, beta=0.0):
            _dgefmm(a, b, c, alpha, beta, cutoff=cutoff, ctx=ctx)
    else:
        raise ValueError(f"unknown gemm kind {kind!r}")
    return gemm


@dataclass
class IsdaStats:
    """Work accounting for one :func:`isda_eigh` run."""

    splits: int = 0
    beta_iterations: int = 0
    base_solves: int = 0
    retries: int = 0
    max_depth: int = 0
    gemm_calls: int = 0
    gemm_seconds: float = 0.0
    total_seconds: float = 0.0
    notes: list = field(default_factory=list)


def _gershgorin(a: np.ndarray) -> Tuple[float, float]:
    """Spectral bounds from Gershgorin disks (cheap, always valid)."""
    d = np.diag(a)
    radii = np.sum(np.abs(a), axis=1) - np.abs(d)
    return float(np.min(d - radii)), float(np.max(d + radii))


def isda_eigh(
    a: np.ndarray,
    gemm: Optional[Callable] = None,
    *,
    base_size: int = 32,
    tol: float = 1e-12,
    max_iter: int = 120,
    max_retries: int = 4,
) -> Tuple[np.ndarray, np.ndarray, IsdaStats]:
    """Full symmetric eigendecomposition by ISDA.

    Parameters
    ----------
    a:
        Symmetric matrix (not modified).
    gemm:
        In-place GEMM callable ``gemm(A, B, C, alpha, beta)``; default is
        the substrate's standard-algorithm DGEMM.  Pass
        ``make_gemm("dgefmm")`` (or any wrapped variant) to reproduce the
        paper's swap.  Wrap in :class:`GemmCounter` to measure MM time.
    base_size:
        Subproblems at or below this order are solved with Jacobi.
    tol, max_iter:
        Projector-iteration controls (see
        :func:`repro.eigensolver.polynomial.beta_iteration`).
    max_retries:
        Split-point perturbation attempts when an eigenvalue sits on the
        split (the repelling fixed point).

    Returns
    -------
    (w, v, stats):
        Eigenvalues ascending, orthonormal eigenvectors (columns), and an
        :class:`IsdaStats` record.
    """
    a = np.asarray(a, dtype=np.float64)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise DimensionError(f"isda_eigh: need a square matrix, got {a.shape}")
    scale = max(1.0, float(np.abs(a).max())) if a.size else 1.0
    if a.size and not np.allclose(a, a.T, atol=1e-8 * scale):
        raise DimensionError("isda_eigh: input is not symmetric")

    counter = gemm if isinstance(gemm, GemmCounter) else GemmCounter(
        gemm if gemm is not None else make_gemm("dgemm")
    )
    stats = IsdaStats()
    t0 = time.perf_counter()
    w, v = _solve(np.asfortranarray(a), counter, base_size, tol, max_iter,
                  max_retries, 0, stats)
    order = np.argsort(w)
    stats.total_seconds = time.perf_counter() - t0
    stats.gemm_calls = counter.calls
    stats.gemm_seconds = counter.seconds
    return w[order], v[:, order], stats


def _solve(
    a: np.ndarray,
    gemm: GemmCounter,
    base_size: int,
    tol: float,
    max_iter: int,
    max_retries: int,
    depth: int,
    stats: IsdaStats,
) -> Tuple[np.ndarray, np.ndarray]:
    n = a.shape[0]
    stats.max_depth = max(stats.max_depth, depth)
    if n == 0:
        return np.empty(0), np.empty((0, 0))
    if n <= base_size:
        stats.base_solves += 1
        return jacobi_eigh(a, tol=max(tol, 1e-13))

    lo, hi = _gershgorin(a)
    width = hi - lo
    norm = max(abs(lo), abs(hi), 1e-300)
    if width <= 1e-12 * norm:
        # spectrum is (numerically) a single point: A = c*I
        stats.notes.append(f"cluster of size {n} at depth {depth}")
        c = float(np.trace(a)) / n
        return np.full(n, c), np.eye(n)

    # Split at the midpoint of the Gershgorin interval, nudged on retry.
    for attempt in range(max_retries + 1):
        frac = 0.5 + 0.09 * attempt * (1 if attempt % 2 else -1)
        split = lo + frac * width
        b = scale_to_unit(a, split, lo, hi)
        try:
            p, iters = beta_iteration(b, gemm, tol=tol, max_iter=max_iter)
        except ConvergenceError:
            stats.retries += 1
            continue
        stats.beta_iterations += iters
        r = int(round(float(np.trace(p))))
        if r == 0 or r == n:
            # split missed the spectrum (all eigenvalues on one side):
            # shrink toward the spectral mean and retry
            stats.retries += 1
            continue
        break
    else:
        # Degenerate splitting (tight cluster straddling every split we
        # tried): fall back to Jacobi — correctness over elegance.
        stats.notes.append(f"split failure at n={n}, depth {depth}; Jacobi")
        stats.base_solves += 1
        return jacobi_eigh(a, tol=max(tol, 1e-13), max_sweeps=120)

    stats.splits += 1
    v1, v2 = projector_bases(p, r)

    # Compress: A_i = V_i^T A V_i  (two GEMMs each; the multiplications
    # the paper counts in "MM time")
    tmp = np.empty((n, r), order="F")
    gemm(a, v1, tmp, 1.0, 0.0)
    a1 = np.empty((r, r), order="F")
    gemm(np.asfortranarray(v1.T), tmp, a1, 1.0, 0.0)
    tmp2 = np.empty((n, n - r), order="F")
    gemm(a, v2, tmp2, 1.0, 0.0)
    a2 = np.empty((n - r, n - r), order="F")
    gemm(np.asfortranarray(v2.T), tmp2, a2, 1.0, 0.0)

    # symmetrize compressed blocks (roundoff)
    a1 = np.asfortranarray((a1 + a1.T) * 0.5)
    a2 = np.asfortranarray((a2 + a2.T) * 0.5)

    w1, u1 = _solve(a1, gemm, base_size, tol, max_iter, max_retries,
                    depth + 1, stats)
    w2, u2 = _solve(a2, gemm, base_size, tol, max_iter, max_retries,
                    depth + 1, stats)

    # back-transform eigenvectors: columns V_i @ U_i (two more GEMMs)
    z1 = np.empty((n, r), order="F")
    gemm(np.asfortranarray(v1), np.asfortranarray(u1), z1, 1.0, 0.0)
    z2 = np.empty((n, n - r), order="F")
    gemm(np.asfortranarray(v2), np.asfortranarray(u2), z2, 1.0, 0.0)

    w = np.concatenate([w1, w2])
    v = np.concatenate([z1, z2], axis=1)
    return w, v
