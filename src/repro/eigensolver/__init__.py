"""ISDA — the eigensolver application of paper Section 4.4.

The paper demonstrates DGEFMM's drop-in value by renaming the DGEMM calls
of a divide-and-conquer symmetric eigensolver based on the Invariant
Subspace Decomposition Algorithm (ISDA, the PRISM project [15]) and
measuring a ~20 % saving on the matrix-multiplication time.

This subpackage implements that application end to end:

- :mod:`repro.eigensolver.polynomial` — the ISDA kernel: an incomplete-
  beta-style polynomial iteration that drives a scaled symmetric matrix
  to a spectral projector, using only matrix multiplication;
- :mod:`repro.eigensolver.qr` — Householder QR with column pivoting
  (rank-revealing), which extracts the range/null-space bases of the
  converged projector;
- :mod:`repro.eigensolver.jacobi` — a cyclic Jacobi eigensolver for the
  base-case subproblems;
- :mod:`repro.eigensolver.isda` — the divide-and-conquer driver with a
  pluggable ``gemm`` callable, so DGEMM and DGEFMM can be swapped exactly
  the way the paper swapped them.
"""

from repro.eigensolver.isda import GemmCounter, isda_eigh, make_gemm
from repro.eigensolver.jacobi import jacobi_eigh

__all__ = ["isda_eigh", "jacobi_eigh", "make_gemm", "GemmCounter"]
