"""Hot-swap verification: prove a profile swap changes *speed*, not bits.

The one invariant that makes live retuning safe to run against real
traffic: serving results are bit-identical to a direct
:func:`~repro.core.dgefmm.dgefmm` call under whatever config governed
the request's admission — before a swap (service defaults) and after
(the tuned profile).  :func:`hot_swap_check` stages exactly that
experiment: serve a batch under defaults, load profiles into the live
store *while requests are in flight*, serve another batch, and verify
every response exactly.  The CLI ``tune apply`` and the CI ``tune-smoke``
lane both run this check; the test suite pins its semantics.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from repro.core.config import GemmConfig
from repro.core.dgefmm import dgefmm
from repro.errors import ArgumentError
from repro.plan import PlanCache
from repro.serve.service import GemmService
from repro.tune.store import ProfileStore

__all__ = ["hot_swap_check"]


def _reference(a: np.ndarray, b: np.ndarray, cfg: GemmConfig,
               cache: PlanCache) -> np.ndarray:
    """Direct dgefmm under ``cfg`` through the plan path (the serving
    path's ground truth — fused configs must be verified against fused
    replay, which only the plan path executes)."""
    c = np.zeros((a.shape[0], b.shape[1]),
                 dtype=np.result_type(a, b), order="F")
    dgefmm(
        a, b, c,
        cutoff=cfg.cutoff, scheme=cfg.scheme, peel=cfg.peel,
        nb=cfg.nb, backend=cfg.backend,
        plan_cache=cache, fuse=cfg.fuse, accuracy=cfg.accuracy,
    )
    return c


def hot_swap_check(
    directory: Optional[str] = None,
    *,
    store: Optional[ProfileStore] = None,
    m: int = 200,
    k: int = 200,
    n: int = 200,
    requests: int = 6,
    workers: int = 2,
    strict: bool = True,
    seed: int = 0,
) -> Dict[str, Any]:
    """Serve through a live profile swap and verify bit-exactness.

    Phases:

    1. serve ``requests`` problems with the store *empty* — every
       response must equal direct dgefmm under the service defaults;
    2. submit another ``requests`` problems and, while they are in
       flight, :meth:`~repro.tune.store.ProfileStore.load` the profiles
       from ``directory`` into the live store (the hot swap) — these
       admissions predate the swap, so they too must match defaults;
    3. serve a final ``requests`` problems — these resolve through the
       swapped-in profile and must equal direct dgefmm under *its*
       config.

    Every future must resolve (zero dropped).  Returns a JSON-ready
    report: ``{"ok", "load", "resolved_key", "phases": [...]}``.
    """
    if store is None:
        if directory is None:
            raise ArgumentError(
                "hot_swap_check", "directory",
                "is required when no store is given",
            )
        store = ProfileStore(directory)
    if len(store):
        store.clear()  # phase 1 must observe the pre-swap world

    rng = np.random.default_rng(seed)
    ref_cache = PlanCache(max_plans=16)
    default_cfg = GemmConfig()
    report: Dict[str, Any] = {"phases": [], "ok": True}

    def mats():
        a = np.asfortranarray(rng.standard_normal((m, k)))
        b = np.asfortranarray(rng.standard_normal((k, n)))
        return a, b

    with GemmService(workers=workers, profiles=store) as svc:
        # phase 1: pre-swap, defaults govern
        pre = [mats() for _ in range(requests)]
        pre_futs = [svc.submit(a, b) for a, b in pre]
        exact = sum(
            np.array_equal(
                fut.result(60.0), _reference(a, b, default_cfg, ref_cache)
            )
            for fut, (a, b) in zip(pre_futs, pre)
        )
        report["phases"].append({
            "phase": "pre-swap", "requests": requests, "exact": int(exact),
        })
        report["ok"] &= exact == requests

        # phase 2: swap while requests are in flight — admissions that
        # predate the load keep their already-resolved default knobs
        mid = [mats() for _ in range(requests)]
        mid_futs = [svc.submit(a, b) for a, b in mid]
        load = store.load(directory, strict=strict)
        report["load"] = load
        exact = sum(
            np.array_equal(
                fut.result(60.0), _reference(a, b, default_cfg, ref_cache)
            )
            for fut, (a, b) in zip(mid_futs, mid)
        )
        report["phases"].append({
            "phase": "in-flight", "requests": requests, "exact": int(exact),
        })
        report["ok"] &= exact == requests

        # phase 3: post-swap, the tuned profile governs (when one
        # matches this problem's class)
        prof = store.resolve(m, k, n, dtype="float64", beta_zero=True)
        post_cfg = prof.to_config() if prof is not None else default_cfg
        report["resolved_key"] = prof.key if prof is not None else None
        report["swapped"] = (
            prof is not None and post_cfg != default_cfg
        )
        post = [mats() for _ in range(requests)]
        post_futs = [svc.submit(a, b) for a, b in post]
        exact = sum(
            np.array_equal(
                fut.result(60.0), _reference(a, b, post_cfg, ref_cache)
            )
            for fut, (a, b) in zip(post_futs, post)
        )
        report["phases"].append({
            "phase": "post-swap", "requests": requests, "exact": int(exact),
        })
        report["ok"] &= exact == requests

        stats = svc.stats()
        report["profile_resolved"] = stats["counters"].get(
            "profile_resolved", 0
        )
    report["ok"] = bool(report["ok"])
    return report
