"""TunedProfile: versioned, host-stamped GemmConfig knob bundles.

The paper calibrated cutoffs per machine by hand (Tables 2-3); the tune
subsystem discovers them on the running host and has to hand the result
to a *serving* process that was launched before the measurement ran.
The unit of exchange is a :class:`TunedProfile`: one winning knob
combination — ``(scheme, peel, cutoff, nb, fuse)``, exactly the fields
of :class:`~repro.core.config.GemmConfig` the tuner searches — bound to
a **signature class** (a shape/dtype/scalar bucket, :func:`class_key`),
stamped with the fingerprint of the host it was measured on, and
carrying a monotonically increasing ``version`` so stores can reject
stale writes.

Profiles are plain JSON on disk (:meth:`TunedProfile.to_json` /
:meth:`TunedProfile.from_json` round-trip bit-exactly — pinned by
``tests/test_tune.py``), and :meth:`TunedProfile.to_config` rebuilds
the frozen, validated ``GemmConfig``, so every knob a profile can carry
is a knob the plan-cache signature already keys on: a hot-swapped
profile can never alias a differently-configured plan.

Cutoff criteria are frozen dataclasses; :func:`cutoff_to_json` /
:func:`cutoff_from_json` encode them by registry (class name + field
dict) so any criterion in :mod:`repro.core.cutoff` survives the trip.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Dict, Optional

from repro.blas.level3 import BACKENDS, DEFAULT_TILE
from repro.core import cutoff as _cutoff_mod
from repro.core.config import GemmConfig
from repro.core.cutoff import CutoffCriterion
from repro.errors import ArgumentError

__all__ = [
    "PROFILE_SCHEMA",
    "CUTOFF_KINDS",
    "cutoff_to_json",
    "cutoff_from_json",
    "class_key",
    "TunedProfile",
]

#: on-disk schema version of a profile document
PROFILE_SCHEMA = 1

#: every concrete criterion class, keyed by name — the codec registry
CUTOFF_KINDS: Dict[str, type] = {
    name: getattr(_cutoff_mod, name)
    for name in _cutoff_mod.__all__
    if name != "CutoffCriterion"
}


def cutoff_to_json(crit: CutoffCriterion) -> Dict[str, Any]:
    """Encode a frozen criterion as ``{"kind", "params"}``."""
    kind = type(crit).__name__
    if kind not in CUTOFF_KINDS:
        raise ArgumentError(
            "cutoff_to_json", "crit",
            f"unknown criterion class {kind!r} (not in repro.core.cutoff)",
        )
    return {
        "kind": kind,
        "params": {f.name: getattr(crit, f.name) for f in fields(crit)},
    }


def cutoff_from_json(doc: Dict[str, Any]) -> CutoffCriterion:
    """Decode :func:`cutoff_to_json`'s document back to the criterion."""
    kind = doc.get("kind")
    cls = CUTOFF_KINDS.get(kind)
    if cls is None:
        raise ArgumentError(
            "cutoff_from_json", "kind",
            f"unknown criterion kind {kind!r}",
        )
    return cls(**doc.get("params", {}))


def class_key(
    m: int, k: int, n: int,
    dtype: str = "float64",
    beta_zero: bool = True,
) -> str:
    """The signature-class bucket a problem tunes and resolves under.

    Profiles must generalize past the exact ``(m, k, n)`` they were
    measured on — production traffic repeats *shapes of a kind*, not
    single triples — so problems bucket by:

    - **shape class**: ``sq`` when the aspect ratio ``max/min`` is at
      most 2 (the paper's square-crossover regime), ``rect`` otherwise
      (the long-thin regime of Table 3, where different cutoffs win);
    - **size bucket**: the largest power of two not exceeding the
      geometric mean of the dimensions — crossovers move with problem
      scale, not with every individual size;
    - **dtype** and **beta class**: both change the executed schedule
      (``auto`` dispatches STRASSEN1 vs STRASSEN2 on ``beta``), so they
      change what is worth tuning.

    Degenerate problems (any dimension < 1) return the ``"degenerate"``
    bucket; stores never resolve profiles for it.
    """
    if m < 1 or k < 1 or n < 1:
        return f"degenerate:{dtype}"
    g = float(m * k * n) ** (1.0 / 3.0)
    bucket = 1
    while bucket * 2 <= g:
        bucket *= 2
    aspect = max(m, k, n) / min(m, k, n)
    shape = "sq" if aspect <= 2.0 else "rect"
    b = "b0" if beta_zero else "bg"
    return f"{shape}{bucket}:{dtype}:{b}"


@dataclass(frozen=True)
class TunedProfile:
    """One signature class's winning knobs, host-stamped and versioned.

    ``key``
        The :func:`class_key` bucket this profile serves.
    ``scheme``/``peel``/``cutoff``/``nb``/``backend``/``fuse``
        The knob values — the same vocabulary as
        :class:`~repro.core.config.GemmConfig`, validated identically
        (construction runs ``to_config()`` once).
    ``version``
        Monotonic per key; :class:`~repro.tune.store.ProfileStore`
        refuses to replace a profile with an older or equal version.
    ``created``
        ISO-8601 timestamp of the measurement.
    ``host``
        :func:`~repro.tune.store.host_fingerprint` of the measuring
        host; stores compare the ``digest`` entry and treat a mismatch
        as stale (crossovers are a per-machine property).
    ``measured``
        Free-form measurement evidence (``tuned_s``, ``default_s``,
        ``speedup``, the probe dimensions, budget spent).
    """

    key: str
    scheme: str = "auto"
    peel: str = "tail"
    cutoff: CutoffCriterion = field(
        default_factory=lambda: _cutoff_mod.HybridCutoff(
            tau=128, tau_m=96, tau_k=96, tau_n=96
        )
    )
    nb: int = DEFAULT_TILE
    backend: str = "substrate"
    fuse: bool = False
    accuracy: str = "fast"
    version: int = 1
    created: str = ""
    host: Dict[str, Any] = field(default_factory=dict)
    measured: Dict[str, Any] = field(default_factory=dict)
    note: str = ""

    def __post_init__(self) -> None:
        if not self.key or not isinstance(self.key, str):
            raise ArgumentError(
                "TunedProfile", "key", f"must be a nonempty str, "
                f"got {self.key!r}",
            )
        if self.version < 1:
            raise ArgumentError(
                "TunedProfile", "version",
                f"must be >= 1, got {self.version}",
            )
        # one validation point: every knob combination a profile can
        # carry is a combination GemmConfig accepts
        self.to_config()

    # ------------------------------------------------------------------ #
    def to_config(self) -> GemmConfig:
        """The frozen, validated config these knobs encode.

        Validates under the default (float64) dtype, which restricts
        profile accuracies to ``"fast"``/``"compensated"`` — the exact
        discipline is never *tuned into* a profile, it follows from the
        request's dtype at admission.
        """
        return GemmConfig(
            scheme=self.scheme, peel=self.peel, cutoff=self.cutoff,
            nb=self.nb, backend=self.backend, fuse=self.fuse,
            accuracy=self.accuracy,
        )

    def to_json(self) -> Dict[str, Any]:
        """Plain-JSON document (round-trips via :meth:`from_json`)."""
        return {
            "schema": PROFILE_SCHEMA,
            "key": self.key,
            "scheme": self.scheme,
            "peel": self.peel,
            "cutoff": cutoff_to_json(self.cutoff),
            "nb": self.nb,
            "backend": self.backend,
            "fuse": self.fuse,
            "accuracy": self.accuracy,
            "version": self.version,
            "created": self.created,
            "host": dict(self.host),
            "measured": dict(self.measured),
            "note": self.note,
        }

    @classmethod
    def from_json(cls, doc: Dict[str, Any]) -> "TunedProfile":
        """Rebuild (and re-validate) a profile from its JSON document."""
        schema = doc.get("schema")
        if schema != PROFILE_SCHEMA:
            raise ArgumentError(
                "TunedProfile.from_json", "schema",
                f"expected {PROFILE_SCHEMA}, got {schema!r}",
            )
        return cls(
            key=doc["key"],
            scheme=doc.get("scheme", "auto"),
            peel=doc.get("peel", "tail"),
            cutoff=cutoff_from_json(doc["cutoff"]),
            nb=int(doc.get("nb", DEFAULT_TILE)),
            backend=doc.get("backend", "substrate"),
            fuse=bool(doc.get("fuse", False)),
            # documents written before the precision dimension carry no
            # accuracy key; they decode to the fast discipline
            accuracy=doc.get("accuracy", "fast"),
            version=int(doc.get("version", 1)),
            created=doc.get("created", ""),
            host=dict(doc.get("host", {})),
            measured=dict(doc.get("measured", {})),
            note=doc.get("note", ""),
        )

    def host_digest(self) -> Optional[str]:
        """The measuring host's fingerprint digest (None if unstamped)."""
        return self.host.get("digest")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TunedProfile({self.key!r} v{self.version}: "
            f"{self.scheme}/{self.peel}, {self.cutoff!r}, nb={self.nb}, "
            f"fuse={self.fuse})"
        )


# silence the unused-import lint for BACKENDS: it documents the backend
# vocabulary profiles validate against (via GemmConfig).
_ = BACKENDS
