"""Budgeted knob-space search: successive halving over measured time.

The knob space ``(cutoff, nb, scheme, peel, fuse)`` is small but
measurement is expensive — a single probe of a 512-square candidate
costs real milliseconds, and a tuner sharing a host with serving
traffic gets a *budget*, not an open meter.  Successive halving spends
that budget the way the multi-armed-bandit literature says to: measure
every candidate cheaply (one repeat), keep the best fraction, re-measure
the survivors more carefully, repeat.  Bad configs cost one noisy probe;
only contenders get clean medians.

Two further economies:

- candidates are *ordered by predicted cost* (:func:`repro.models.
  predict.config_cost` under the op-count model) before the first rung,
  so when the deadline truncates a rung mid-scan the unmeasured tail is
  the predictably-worst part of the grid;
- all candidates of one signature class share one
  :class:`~repro.plan.cache.PlanCache`, so each config pays its plan
  compilation once (in warmup) and the measured steady state is the
  serving steady state.

The budget is wall-clock and *checked before every measurement*: a
candidate partway through finishes (measurements are short by
construction), and whatever has been measured is ranked.
"""

from __future__ import annotations

import dataclasses
import datetime
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.config import DEFAULT_CUTOFF, GemmConfig
from repro.core.cutoff import HybridCutoff, NeverRecurse, SimpleCutoff
from repro.errors import ArgumentError
from repro.models.opcount_model import OperationCountModel
from repro.models.predict import config_cost
from repro.plan import PlanCache
from repro.tune.measure import time_config
from repro.tune.profile import TunedProfile, class_key
from repro.tune.store import host_fingerprint

__all__ = ["default_grid", "successive_halving", "tune_class"]


def default_grid(include_fused: bool = True) -> List[GemmConfig]:
    """The default candidate set (~20 configs across every knob).

    Covers each knob's plausible values without exploding the product:
    three cutoff stances (never recurse — the DGEMM baseline every
    tuning run must be allowed to pick; a simple eq. 11 criterion at
    two taus; the paper's hybrid eq. 15 at two scales), three base-case
    tiles, fused and interpreted replay, plus single variants for the
    ``peel`` and ``scheme`` knobs (their effect is secondary but they
    must be reachable).
    """
    grid: List[GemmConfig] = []
    cutoffs = [
        NeverRecurse(),
        SimpleCutoff(64),
        SimpleCutoff(128),
        HybridCutoff(tau=64, tau_m=48, tau_k=48, tau_n=48),
        DEFAULT_CUTOFF,
    ]
    fuses = (False, True) if include_fused else (False,)
    for cutoff in cutoffs:
        for nb in (96, 160, 256):
            for fuse in fuses:
                if isinstance(cutoff, NeverRecurse) and fuse:
                    continue  # nothing to fuse below a no-recursion cutoff
                grid.append(GemmConfig(cutoff=cutoff, nb=nb, fuse=fuse))
    # secondary knobs: one probe each, riding the default cutoff/tile
    grid.append(GemmConfig(peel="head"))
    grid.append(GemmConfig(scheme="strassen1_general"))
    grid.append(GemmConfig(scheme="bdpz"))
    return grid


def successive_halving(
    candidates: Sequence[GemmConfig],
    measure: Callable[[GemmConfig, int], float],
    *,
    rungs: Sequence[int] = (1, 3),
    keep: float = 0.4,
    deadline: Optional[float] = None,
) -> Tuple[Optional[GemmConfig], Optional[float], List[Dict[str, Any]]]:
    """Rank ``candidates`` by measured time under a wall-clock deadline.

    ``measure(config, repeats)`` returns seconds; ``rungs`` gives the
    repeats per round; after each non-final rung only the fastest
    ``keep`` fraction survives.  Returns ``(best_config, best_seconds,
    trace)`` — best is None only if the deadline expired before any
    measurement completed.  The trace records, per rung, how many
    candidates were measured vs skipped, for the ``--json`` reports.
    """
    if not candidates:
        raise ArgumentError(
            "successive_halving", "candidates", "must be non-empty"
        )
    if not 0.0 < keep <= 1.0:
        raise ArgumentError(
            "successive_halving", "keep", f"must be in (0, 1], got {keep}"
        )
    survivors = list(candidates)
    best: Optional[Tuple[float, GemmConfig]] = None
    trace: List[Dict[str, Any]] = []
    for rung_idx, repeats in enumerate(rungs):
        timed: List[Tuple[float, int, GemmConfig]] = []
        skipped = 0
        for order, cfg in enumerate(survivors):
            if deadline is not None and time.monotonic() >= deadline:
                skipped = len(survivors) - order
                break
            timed.append((measure(cfg, repeats), order, cfg))
        if timed:
            timed.sort(key=lambda t: t[:2])
            if best is None or timed[0][0] < best[0]:
                best = (timed[0][0], timed[0][2])
        trace.append({
            "rung": rung_idx,
            "repeats": int(repeats),
            "candidates": len(survivors),
            "measured": len(timed),
            "skipped": skipped,
            "best_s": timed[0][0] if timed else None,
        })
        if not timed:
            break
        if rung_idx < len(rungs) - 1:
            n_keep = max(1, int(len(timed) * keep))
            survivors = [cfg for _, _, cfg in timed[:n_keep]]
    if best is None:
        return None, None, trace
    return best[1], best[0], trace


def tune_class(
    m: int,
    k: int,
    n: int,
    *,
    dtype: str = "float64",
    accuracy: str = "fast",
    beta_zero: bool = True,
    budget_s: float = 30.0,
    grid: Optional[Sequence[GemmConfig]] = None,
    rungs: Sequence[int] = (1, 3),
    keep: float = 0.4,
    version: int = 1,
    note: str = "",
) -> TunedProfile:
    """Tune one signature class on this host; returns the winning profile.

    The representative problem ``(m, k, n)`` stands in for its whole
    :func:`~repro.tune.profile.class_key` bucket.  Measures the default
    config first (the baseline every report compares against — and a
    floor: if the search budget expires before improving on it, the
    default *is* the winner), then successive-halves the grid within
    ``budget_s`` wall seconds.  The returned profile carries the
    measurement evidence (``tuned_s``, ``default_s``, ``speedup``,
    predicted-cost rank of the winner) and this host's fingerprint.

    ``dtype``/``accuracy`` pin the precision class being tuned: every
    candidate is probed with operands of that dtype under that rounding
    discipline (fused candidates drop out for non-fast accuracies —
    fused programs are compiled for the fast kernels only), and the
    winning profile carries the accuracy so admission resolves it.
    """
    if budget_s <= 0:
        raise ArgumentError(
            "tune_class", "budget_s", f"must be > 0, got {budget_s}"
        )
    t_start = time.monotonic()
    deadline = t_start + budget_s
    candidates = list(grid) if grid is not None else default_grid()
    candidates = [
        dataclasses.replace(cfg, dtype=dtype, accuracy=accuracy)
        for cfg in candidates
        if not (cfg.fuse and accuracy != "fast")
    ]

    # cheap model-predicted ordering: if the deadline truncates a rung,
    # the unmeasured tail is the predictably-worst part of the grid
    model = OperationCountModel()
    predicted = {
        cfg: config_cost(model, m, k, n, cfg, beta_zero=beta_zero)
        for cfg in candidates
    }
    candidates.sort(key=lambda cfg: predicted[cfg])

    cache = PlanCache(max_plans=max(64, 2 * len(candidates)))

    def measure(cfg: GemmConfig, repeats: int) -> float:
        return time_config(
            m, k, n, cfg,
            beta_zero=beta_zero, repeats=repeats, plan_cache=cache,
        )

    default_cfg = GemmConfig(dtype=dtype, accuracy=accuracy)
    default_s = measure(default_cfg, max(rungs))

    best_cfg, best_s, trace = successive_halving(
        candidates, measure,
        rungs=rungs, keep=keep, deadline=deadline,
    )
    if best_cfg is None or best_s is None or best_s >= default_s:
        # budget exhausted before any probe, or nothing beat the
        # baseline: the default config is the honest winner
        best_cfg, best_s = default_cfg, default_s

    pred_sorted = sorted(candidates, key=lambda cfg: predicted[cfg])
    try:
        pred_rank = pred_sorted.index(best_cfg)
    except ValueError:
        pred_rank = -1  # winner was the out-of-grid default config

    return TunedProfile(
        key=class_key(m, k, n, dtype=dtype, beta_zero=beta_zero),
        scheme=best_cfg.scheme,
        peel=best_cfg.peel,
        cutoff=best_cfg.cutoff,
        nb=best_cfg.nb,
        backend=best_cfg.backend,
        fuse=best_cfg.fuse,
        accuracy=best_cfg.accuracy,
        version=version,
        created=datetime.datetime.now(datetime.timezone.utc).isoformat(),
        host=host_fingerprint(),
        measured={
            "m": m, "k": k, "n": n,
            "dtype": dtype, "beta_zero": beta_zero,
            "accuracy": accuracy,
            "tuned_s": best_s,
            "default_s": default_s,
            "speedup": default_s / best_s if best_s > 0 else None,
            "budget_s": budget_s,
            "spent_s": time.monotonic() - t_start,
            "candidates": len(candidates),
            "predicted_rank": pred_rank,
            "trace": trace,
        },
        note=note,
    )
