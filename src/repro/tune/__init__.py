"""Online autotuning: close the loop from live metrics to tuned configs.

The paper's methodology (Section 3.4) is offline: measure crossovers on
a machine, fit cutoff parameters, recompile.  This package runs the same
loop *against the serving stack, while it serves*:

- :mod:`repro.tune.measure` — wall-clock probes: per-config timing
  through the warm plan path, and the Section 3.4 crossover scan with
  the cost-model ladder's predictions alongside (the predictor's error
  is tracked in ``BENCH_tune.json``);
- :mod:`repro.tune.search` — budgeted successive halving over the knob
  grid ``(cutoff, nb, scheme, peel, fuse)``, producing a
  :class:`~repro.tune.profile.TunedProfile` per signature class;
- :mod:`repro.tune.profile` / :mod:`repro.tune.store` — versioned,
  host-fingerprinted profile JSON and the thread-safe
  :class:`~repro.tune.store.ProfileStore` the serving admission path
  resolves against (``GemmService(profiles=...)``);
- :mod:`repro.tune.feed` — ranks live per-signature traffic from
  ``GemmService.stats()`` into a tuning worklist;
- :mod:`repro.tune.apply` — the hot-swap bit-exactness check run by
  ``python -m repro tune apply`` and the CI smoke lane.

Layering: tune sits *above* serve (it imports the service to verify
swaps; the service sees only a duck-typed ``profiles`` object), and the
compute stack (blas/core/plan) never imports tune — enforced by
``tests/test_layering.py``.
"""

from repro.tune.apply import hot_swap_check
from repro.tune.feed import observations, select_targets
from repro.tune.measure import make_operands, measure_crossover, time_config
from repro.tune.profile import (
    TunedProfile,
    class_key,
    cutoff_from_json,
    cutoff_to_json,
)
from repro.tune.search import default_grid, successive_halving, tune_class
from repro.tune.store import ProfileStore, host_fingerprint

__all__ = [
    "TunedProfile",
    "class_key",
    "cutoff_to_json",
    "cutoff_from_json",
    "ProfileStore",
    "host_fingerprint",
    "make_operands",
    "time_config",
    "measure_crossover",
    "default_grid",
    "successive_halving",
    "tune_class",
    "observations",
    "select_targets",
    "hot_swap_check",
]
