"""Feed: turn live serve metrics into a tuning worklist.

Closing the loop means the tuner does not guess which problems matter —
it reads the per-signature traffic breakdown that
``GemmService.stats()`` (and ``repro.api``'s aggregated stats) already
publishes, ranks signature classes by their share of total spent
latency, and hands back representative problems to
:func:`~repro.tune.search.tune_class`.  The coupling is one plain JSON
document in one direction: serve publishes stats, tune reads them —
serve never imports tune (the layering lint pins this).
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.tune.profile import class_key

__all__ = ["observations", "select_targets"]

#: labels in the signature breakdown that carry no tunable problem
_SKIP_LABELS = ("degenerate", "__overflow__")


def observations(stats: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Flatten a stats snapshot's ``signatures`` section.

    Each entry gains its :func:`~repro.tune.profile.class_key` and a
    ``total_ms`` (count x mean latency — the traffic-weighted cost this
    signature charged the service), the quantity worth minimizing.
    Entries without dims (degenerate/overflow buckets) are dropped.
    """
    out: List[Dict[str, Any]] = []
    for label, entry in (stats.get("signatures") or {}).items():
        if label in _SKIP_LABELS:
            continue
        m = entry.get("m")
        k = entry.get("k")
        n = entry.get("n")
        if not m or not k or not n:
            continue
        lat = entry.get("latency_ms") or {}
        count = int(entry.get("count", 0))
        mean = lat.get("mean")
        obs = {
            "label": label,
            "m": int(m), "k": int(k), "n": int(n),
            "dtype": entry.get("dtype", "float64"),
            "beta_zero": bool(entry.get("beta_zero", True)),
            "count": count,
            "mean_ms": mean,
            "p99_ms": lat.get("p99"),
            "total_ms": count * mean if mean is not None else 0.0,
            "key": class_key(
                int(m), int(k), int(n),
                dtype=entry.get("dtype", "float64"),
                beta_zero=bool(entry.get("beta_zero", True)),
            ),
        }
        out.append(obs)
    out.sort(key=lambda o: (-o["total_ms"], o["label"]))
    return out


def select_targets(
    stats: Dict[str, Any],
    top: int = 3,
    min_count: int = 1,
) -> List[Dict[str, Any]]:
    """The ``top`` signature *classes* most worth tuning, by time share.

    Observations are grouped by class key (several exact signatures can
    share a bucket); each class is represented by its heaviest member's
    dims — what :func:`~repro.tune.search.tune_class` will measure.
    Classes with fewer than ``min_count`` total completions are noise,
    not signal, and are skipped.
    """
    classes: Dict[str, Dict[str, Any]] = {}
    for obs in observations(stats):
        cls = classes.get(obs["key"])
        if cls is None:
            classes[obs["key"]] = {
                "key": obs["key"],
                "m": obs["m"], "k": obs["k"], "n": obs["n"],
                "dtype": obs["dtype"],
                "beta_zero": obs["beta_zero"],
                "count": obs["count"],
                "total_ms": obs["total_ms"],
            }
        else:
            cls["count"] += obs["count"]
            cls["total_ms"] += obs["total_ms"]
            # heaviest member represents the class

    ranked = sorted(
        (c for c in classes.values() if c["count"] >= min_count),
        key=lambda c: (-c["total_ms"], c["key"]),
    )
    return ranked[: max(0, top)]
