"""Measurement primitives: wall-clock truth for the autotuner.

Everything the tuner decides, it decides from these probes:

- :func:`time_config` — median seconds to run one multiplication under
  a fully-specified :class:`~repro.core.config.GemmConfig`, through the
  warm plan path (one compile absorbed by warmup, exactly the steady
  state a serving worker replays);
- :func:`measure_crossover` — the paper's Section 3.4 square-crossover
  scan run with :func:`repro.machines.calibrate.host_timers`, i.e. the
  *same instruments* as offline host calibration, plus the cost-model
  ladder's predicted crossover alongside, so the predictor's error is a
  number we track (``BENCH_tune.json``) rather than an assumption we
  make.

Operand generation is deterministic per ``(m, k, n, seed)`` so repeated
probes of one candidate touch identical data and differences are timing,
not content.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

import numpy as np

from repro.core.config import GemmConfig
from repro.core.dgefmm import dgefmm
from repro.machines.calibrate import (
    host_timers,
    measured_square_crossover,
)
from repro.models.opcount_model import OperationCountModel
from repro.models.predict import predicted_square_crossover
from repro.models.traffic import MemoryTrafficModel
from repro.plan import PlanCache
from repro.utils.timing import time_call

__all__ = [
    "make_operands",
    "time_config",
    "measure_crossover",
]


def make_operands(
    m: int, k: int, n: int,
    seed: int = 0,
    beta_zero: bool = True,
    dtype: str = "float64",
):
    """Deterministic F-ordered ``(a, b, c, beta)`` for one probe."""
    rng = np.random.default_rng(
        (m * 1000003 + k * 1009 + n) ^ (seed * 2654435761 & 0xFFFFFFFF)
    )
    a = np.asfortranarray(rng.standard_normal((m, k)).astype(dtype))
    b = np.asfortranarray(rng.standard_normal((k, n)).astype(dtype))
    c = np.asfortranarray(rng.standard_normal((m, n)).astype(dtype))
    beta = 0.0 if beta_zero else 1.0
    return a, b, c, beta


def time_config(
    m: int, k: int, n: int,
    config: GemmConfig,
    *,
    beta_zero: bool = True,
    repeats: int = 3,
    seed: int = 0,
    plan_cache: Optional[PlanCache] = None,
) -> float:
    """Median wall seconds for one multiplication under ``config``.

    Runs through the plan path with a warm cache (the warmup run inside
    :func:`~repro.utils.timing.time_call` absorbs compilation), because
    that is what a serving worker replays — tuning the cold path would
    optimize a state production never sits in.  A private cache is used
    unless the caller shares one across candidates of the same
    signature.
    """
    cache = plan_cache if plan_cache is not None else PlanCache(max_plans=8)
    a, b, c0, beta = make_operands(m, k, n, seed=seed, beta_zero=beta_zero,
                                   dtype=config.dtype)
    c = np.array(c0, order="F", copy=True)

    def run() -> None:
        # beta==0 ignores (and overwrites) c, so reuse is safe; with
        # beta!=0 each run accumulates, which changes values but not
        # the executed schedule or its cost.
        dgefmm(
            a, b, c, 1.0, beta,
            cutoff=config.cutoff,
            scheme=config.scheme,
            peel=config.peel,
            nb=config.nb,
            backend=config.backend,
            plan_cache=cache,
            fuse=config.fuse,
            accuracy=config.accuracy,
        )

    med, _ = time_call(run, repeats=repeats)
    return med


def measure_crossover(
    *,
    lo: int = 64,
    hi: int = 384,
    step: int = 32,
    repeats: int = 3,
    time_gemm: Optional[Callable[[int, int, int], float]] = None,
    time_one_level: Optional[Callable[[int, int, int], float]] = None,
) -> Dict[str, Any]:
    """Measured vs predicted square crossover on this host.

    Scans ``lo..hi`` (step ``step``) with the Section 3.4 probes from
    :func:`~repro.machines.calibrate.host_timers` (injectable for
    tests), and evaluates the cost-model ladder's predictions of the
    same experiment.  Degrades gracefully: when no crossover exists in
    the scan range (common for a short CI-budget scan over numpy
    kernels) the measured fields are None and ``reason`` says why —
    the caller still gets the predictions and the scan evidence.

    Returns ``{"measured": {first, always, recommended} | None,
    "predicted": {opcount, traffic}, "error": {...} | None,
    "scan": {lo, hi, step, repeats}, "reason": str | None}``.
    """
    if time_gemm is None or time_one_level is None:
        time_gemm, time_one_level = host_timers(repeats=repeats)

    step = max(2, step)
    step += step % 2  # even steps avoid peel noise, like calibrate_host

    measured: Optional[Dict[str, int]] = None
    reason: Optional[str] = None
    try:
        first, always, recommended = measured_square_crossover(
            lambda s: time_gemm(s, s, s),
            lambda s: time_one_level(s, s, s),
            lo, hi, step,
        )
        measured = {
            "first": int(first),
            "always": int(always),
            "recommended": int(recommended),
        }
    except ValueError:
        reason = f"no crossover in scan range [{lo}, {hi}]"

    predicted = {
        "opcount": int(
            predicted_square_crossover(OperationCountModel(), lo=4, hi=hi)
        ),
        "traffic": int(
            predicted_square_crossover(
                MemoryTrafficModel(), lo=4, hi=hi
            )
        ),
    }

    error: Optional[Dict[str, Any]] = None
    if measured is not None:
        tau = measured["recommended"]
        error = {}
        for name, pred in predicted.items():
            error[name] = {
                "abs": abs(pred - tau),
                "rel": abs(pred - tau) / tau if tau else None,
            }

    return {
        "measured": measured,
        "predicted": predicted,
        "error": error,
        "scan": {"lo": lo, "hi": hi, "step": step, "repeats": repeats},
        "reason": reason,
    }
