"""ProfileStore: thread-safe tuned-profile registry with atomic persistence.

The serving path resolves a profile on every admission, from whatever
thread the caller submits on, while the tuner (or an operator reload)
replaces profiles concurrently — so the store is a lock-protected map
from :func:`~repro.tune.profile.class_key` to
:class:`~repro.tune.profile.TunedProfile` with three invariants:

- **versioned replace**: :meth:`ProfileStore.put` refuses a profile
  whose ``version`` does not exceed the resident one, so a delayed
  tuner worker can never clobber a newer winner;
- **host staleness**: profiles are stamped with the measuring host's
  :func:`host_fingerprint`; :meth:`ProfileStore.load` skips documents
  whose digest differs from this host's (crossovers are a per-machine
  property — the paper's Table 2 spans 199 to 325 for the same code),
  unless ``strict=False``;
- **atomic persistence**: :meth:`ProfileStore.save` writes each profile
  to a temp file and ``os.replace``-es it into place, so a reader (or a
  crashed writer) never observes a torn JSON document.

Resolution (:meth:`ProfileStore.resolve`) is a single dict lookup under
the lock — no I/O, no allocation beyond the key string — because it sits
on the request admission path.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import threading
from typing import Any, Dict, List, Optional

import numpy as np

from repro.errors import ArgumentError
from repro.tune.profile import TunedProfile, class_key

__all__ = ["host_fingerprint", "ProfileStore"]


def host_fingerprint() -> Dict[str, Any]:
    """Identity of this host for profile staleness checks.

    The fields are the ones that move measured crossovers: the machine
    and CPU, the Python build executing the pure-Python control flow,
    the numpy version supplying the kernels, and the core count. The
    ``digest`` entry is a short blake2b over the sorted field items —
    profiles compare digests, humans read the fields.
    """
    info = {
        "platform": platform.system(),
        "machine": platform.machine(),
        "processor": platform.processor(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpus": os.cpu_count() or 1,
    }
    h = hashlib.blake2b(digest_size=8)
    for key in sorted(info):
        h.update(f"{key}={info[key]};".encode())
    info["digest"] = h.hexdigest()
    return info


class ProfileStore:
    """Thread-safe map of signature class -> winning :class:`TunedProfile`.

    ``directory`` (optional) is the persistence root; :meth:`load` with
    no argument reads it, :meth:`save` with no argument writes it.
    Construction never touches the filesystem — a store with a
    directory but no :meth:`load` call serves defaults, which is what a
    fresh worker does until the first reload control message arrives.
    """

    def __init__(self, directory: Optional[str] = None) -> None:
        self.directory = directory
        self._lock = threading.Lock()
        self._profiles: Dict[str, TunedProfile] = {}
        self._host = host_fingerprint()
        self._resolved = 0
        self._missed = 0
        self._skipped_stale = 0

    # ------------------------------------------------------------------ #
    # in-memory operations
    # ------------------------------------------------------------------ #
    def put(self, profile: TunedProfile, force: bool = False) -> bool:
        """Install ``profile`` under its key; newer versions only.

        Returns True if installed.  With ``force`` the version check is
        skipped (used by explicit operator ``apply``).
        """
        with self._lock:
            old = self._profiles.get(profile.key)
            if old is not None and not force and profile.version <= old.version:
                return False
            self._profiles[profile.key] = profile
            return True

    def get(self, key: str) -> Optional[TunedProfile]:
        with self._lock:
            return self._profiles.get(key)

    def remove(self, key: str) -> bool:
        with self._lock:
            return self._profiles.pop(key, None) is not None

    def clear(self) -> None:
        with self._lock:
            self._profiles.clear()

    def keys(self) -> List[str]:
        with self._lock:
            return sorted(self._profiles)

    def profiles(self) -> List[TunedProfile]:
        with self._lock:
            return [self._profiles[k] for k in sorted(self._profiles)]

    def __len__(self) -> int:
        with self._lock:
            return len(self._profiles)

    def resolve(
        self,
        m: int, k: int, n: int,
        dtype: str = "float64",
        beta_zero: bool = True,
    ) -> Optional[TunedProfile]:
        """The profile governing one admission, or None (use defaults).

        This is the serving hot-path entry: one key derivation and one
        dict probe under the lock.
        """
        key = class_key(m, k, n, dtype=dtype, beta_zero=beta_zero)
        with self._lock:
            prof = self._profiles.get(key)
            if prof is None:
                self._missed += 1
            else:
                self._resolved += 1
            return prof

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    @staticmethod
    def _filename(key: str) -> str:
        # keys contain ':' which some filesystems dislike; keep the name
        # readable but safe
        return "profile_" + key.replace(":", "_").replace("/", "_") + ".json"

    def save(self, directory: Optional[str] = None) -> List[str]:
        """Persist every resident profile; returns the paths written."""
        directory = directory or self.directory
        if not directory:
            raise ArgumentError(
                "ProfileStore.save", "directory", "is required "
                "(none given and the store has no default)",
            )
        os.makedirs(directory, exist_ok=True)
        written: List[str] = []
        for prof in self.profiles():
            path = os.path.join(directory, self._filename(prof.key))
            tmp = path + ".tmp"
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(prof.to_json(), fh, indent=2, sort_keys=True)
                fh.write("\n")
            os.replace(tmp, path)
            written.append(path)
        return written

    def load(
        self,
        directory: Optional[str] = None,
        strict: bool = True,
    ) -> Dict[str, Any]:
        """Install every valid profile document under ``directory``.

        ``strict`` enforces the host-fingerprint staleness rule: a
        document whose host digest differs from this host's is skipped
        (counted in the report), because its measured crossovers
        describe another machine.  Unreadable or invalid documents are
        skipped and reported, never fatal — a serving process must
        survive a half-written profiles directory.

        Returns ``{"loaded", "skipped_stale", "skipped_invalid",
        "files"}``.
        """
        directory = directory or self.directory
        if not directory:
            raise ArgumentError(
                "ProfileStore.load", "directory", "is required "
                "(none given and the store has no default)",
            )
        loaded = 0
        stale = 0
        invalid = 0
        files = 0
        if os.path.isdir(directory):
            for name in sorted(os.listdir(directory)):
                if not name.endswith(".json") or name.endswith(".tmp"):
                    continue
                files += 1
                path = os.path.join(directory, name)
                try:
                    with open(path, "r", encoding="utf-8") as fh:
                        doc = json.load(fh)
                    prof = TunedProfile.from_json(doc)
                except (OSError, ValueError, KeyError, TypeError):
                    invalid += 1
                    continue
                digest = prof.host_digest()
                if strict and digest and digest != self._host["digest"]:
                    stale += 1
                    with self._lock:
                        self._skipped_stale += 1
                    continue
                if self.put(prof):
                    loaded += 1
        return {
            "loaded": loaded,
            "skipped_stale": stale,
            "skipped_invalid": invalid,
            "files": files,
        }

    # ------------------------------------------------------------------ #
    def host(self) -> Dict[str, Any]:
        return dict(self._host)

    def stats(self) -> Dict[str, Any]:
        """Counters and resident keys, for ``GemmService.stats()``."""
        with self._lock:
            return {
                "profiles": len(self._profiles),
                "keys": sorted(self._profiles),
                "resolved": self._resolved,
                "missed": self._missed,
                "skipped_stale": self._skipped_stale,
                "host_digest": self._host["digest"],
            }
