"""The wire protocol shared by the api server and client.

One message format serves both transports:

- **HTTP**: ``POST /v1/gemm`` with ``Content-Type:
  application/x-repro-gemm``; the body is one framed message, the
  response body another.
- **WebSocket**: ``GET /v1/ws`` upgrades; each *binary* frame is one
  framed message.  Responses carry the request's ``id`` and may return
  out of order — the socket is a full pipeline.

A framed message is::

    [4-byte big-endian header length] [header JSON, UTF-8] [payload...]

The header's ``"lens"`` list gives the byte length of each payload
buffer, concatenated in order after the JSON.  Matrix payloads are raw
Fortran-order element bytes — exactly the bytes the worker's ndarray
view will alias, so a round trip is bit-exact by construction.

Request headers (``op: "gemm"``) carry the problem (``m, k, n, transa,
transb, alpha, beta, dtype``, scalars as ``[re, im]`` pairs), the plan
knobs the wire supports (``tau`` — a :class:`~repro.core.cutoff.
SimpleCutoff` threshold — ``scheme``, ``peel``, and the ``accuracy``
SLO, ``"fast"`` or ``"compensated"``; omitted knobs defer to the
shard's tuned profile), an optional ``timeout_ms`` deadline that
propagates to the worker's admission queue, and an optional ``client``
id for rate-limit bucketing.
Payloads are ``op``-untransposed A (``m x k`` raw or ``k x m`` when
``transa``), B likewise, and C exactly when ``beta != 0``.

Response headers echo ``id`` and report ``status: "ok"`` (payload: the
``m x n`` result) or ``status: "error"`` with an ``error`` class name
from the service taxonomy (:mod:`repro.errors`) and a ``detail``
string; ``server`` carries shard id and the wait/compute/batch split.
"""

from __future__ import annotations

import base64
import hashlib
import json
import struct
from typing import Any, Dict, List, Sequence, Tuple

import numpy as np

from repro.core.schemes import SCHEME_NAMES

__all__ = [
    "ProtocolError",
    "pack_message",
    "unpack_message",
    "array_payload",
    "array_from_payload",
    "gemm_request_header",
    "validate_gemm",
    "error_response",
    "HTTP_STATUS",
    "WS_GUID",
    "ws_accept",
    "ws_encode_frame",
    "WSFrameAssembler",
    "WIRE_DTYPES",
]

#: element types the wire accepts (mirrors the fuzz case space)
WIRE_DTYPES = ("float64", "float32", "complex128", "complex64")

#: HTTP status for each wire error class (anything else maps to 500)
HTTP_STATUS = {
    "ok": 200,
    "BadRequest": 400,
    "ArgumentError": 400,
    "DimensionError": 400,
    "RateLimited": 429,
    "ServiceOverloaded": 503,
    "ServiceClosed": 503,
    "ServiceTimeout": 504,
    "WorkspaceError": 503,
    "InternalError": 500,
}

_MAX_HEADER = 1 << 20          # 1 MiB of JSON is already absurd
_MAX_DIM = 1 << 20             # per-dimension sanity bound


class ProtocolError(ValueError):
    """A malformed or out-of-contract wire message (HTTP 400)."""


# ---------------------------------------------------------------------- #
# framing
# ---------------------------------------------------------------------- #
def pack_message(header: Dict[str, Any],
                 payloads: Sequence[bytes] = ()) -> bytes:
    """Frame ``header`` + ``payloads`` into one wire message."""
    header = dict(header)
    header["lens"] = [len(p) for p in payloads]
    hj = json.dumps(header, separators=(",", ":")).encode("utf-8")
    return b"".join([struct.pack(">I", len(hj)), hj, *payloads])


def unpack_message(data: bytes) -> Tuple[Dict[str, Any], List[bytes]]:
    """Inverse of :func:`pack_message`; raises :class:`ProtocolError`."""
    if len(data) < 4:
        raise ProtocolError("message shorter than its length prefix")
    (hlen,) = struct.unpack(">I", data[:4])
    if hlen > _MAX_HEADER or 4 + hlen > len(data):
        raise ProtocolError(f"bad header length {hlen}")
    try:
        header = json.loads(data[4:4 + hlen].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"header is not JSON: {exc}") from None
    if not isinstance(header, dict):
        raise ProtocolError("header must be a JSON object")
    lens = header.get("lens", [])
    if not isinstance(lens, list) or not all(
        isinstance(n, int) and n >= 0 for n in lens
    ):
        raise ProtocolError("'lens' must be a list of byte counts")
    off = 4 + hlen
    payloads: List[bytes] = []
    for n in lens:
        if off + n > len(data):
            raise ProtocolError("payloads truncated")
        payloads.append(data[off:off + n])
        off += n
    if off != len(data):
        raise ProtocolError(f"{len(data) - off} trailing bytes")
    return header, payloads


# ---------------------------------------------------------------------- #
# matrix payloads
# ---------------------------------------------------------------------- #
def array_payload(arr: np.ndarray) -> bytes:
    """Raw Fortran-order bytes of a 2-D array (copies iff non-F-contiguous)."""
    return np.asarray(arr).tobytes(order="F")


def array_from_payload(payload: bytes, rows: int, cols: int,
                       dtype: str) -> np.ndarray:
    """Rebuild the ``rows x cols`` Fortran-ordered array (zero-copy view
    of the payload bytes, made writable by copy only by the caller)."""
    dt = np.dtype(dtype)
    expect = rows * cols * dt.itemsize
    if len(payload) != expect:
        raise ProtocolError(
            f"payload is {len(payload)} B, expected {expect} B "
            f"for {rows}x{cols} {dtype}"
        )
    flat = np.frombuffer(payload, dtype=dt)
    return flat.reshape((rows, cols), order="F")


# ---------------------------------------------------------------------- #
# gemm request construction / validation
# ---------------------------------------------------------------------- #
def _scalar_pair(v: Any) -> complex:
    if isinstance(v, (list, tuple)) and len(v) == 2:
        return complex(float(v[0]), float(v[1]))
    if isinstance(v, (int, float)):
        return complex(float(v), 0.0)
    raise ProtocolError(f"scalar must be a number or [re, im], got {v!r}")


def gemm_request_header(
    req_id: int, m: int, k: int, n: int, *,
    transa: bool = False, transb: bool = False,
    alpha: complex = 1.0, beta: complex = 0.0,
    dtype: str = "float64", tau: int = None,
    scheme: str = "auto", peel: str = "tail",
    accuracy: str = None,
    timeout_ms: int = None, client: str = None,
    has_c: bool = False,
) -> Dict[str, Any]:
    """Client-side header builder (kept next to the validator so the
    two sides of the contract evolve together).  ``accuracy`` is the
    request's accuracy SLO; like ``tau``/``timeout_ms`` it is appended
    only when set — an absent key means "no override", letting the
    shard's tuned profile (or the dtype default) govern."""
    alpha, beta = complex(alpha), complex(beta)
    hdr: Dict[str, Any] = {
        "op": "gemm", "id": int(req_id),
        "m": int(m), "k": int(k), "n": int(n),
        "transa": bool(transa), "transb": bool(transb),
        "alpha": [alpha.real, alpha.imag],
        "beta": [beta.real, beta.imag],
        "dtype": str(dtype), "scheme": str(scheme), "peel": str(peel),
        "has_c": bool(has_c),
    }
    if tau is not None:
        hdr["tau"] = int(tau)
    if accuracy is not None:
        hdr["accuracy"] = str(accuracy)
    if timeout_ms is not None:
        hdr["timeout_ms"] = int(timeout_ms)
    if client is not None:
        hdr["client"] = str(client)
    return hdr


def validate_gemm(header: Dict[str, Any],
                  payloads: Sequence[bytes]) -> Dict[str, Any]:
    """Normalize and bounds-check one gemm request.

    Returns a plain dict with typed fields (``alpha``/``beta`` as
    complex, shapes for each operand buffer, byte counts cross-checked
    against the payloads).  Raises :class:`ProtocolError` on any
    mismatch — the server maps that to HTTP 400 before anything
    touches a shard.
    """
    if header.get("op") != "gemm":
        raise ProtocolError(f"unsupported op {header.get('op')!r}")
    try:
        m = int(header["m"])
        k = int(header["k"])
        n = int(header["n"])
    except (KeyError, TypeError, ValueError):
        raise ProtocolError("m/k/n must be integers") from None
    for name, dim in (("m", m), ("k", k), ("n", n)):
        if not 0 <= dim <= _MAX_DIM:
            raise ProtocolError(f"{name}={dim} out of range [0, {_MAX_DIM}]")
    transa = bool(header.get("transa", False))
    transb = bool(header.get("transb", False))
    alpha = _scalar_pair(header.get("alpha", 1.0))
    beta = _scalar_pair(header.get("beta", 0.0))
    dtype = str(header.get("dtype", "float64"))
    if dtype not in WIRE_DTYPES:
        raise ProtocolError(f"dtype must be one of {WIRE_DTYPES}, "
                            f"got {dtype!r}")
    if np.dtype(dtype).kind != "c" and (alpha.imag or beta.imag):
        raise ProtocolError("complex scalars require a complex dtype")
    scheme = str(header.get("scheme", "auto"))
    if scheme not in SCHEME_NAMES:
        raise ProtocolError(f"scheme must be one of {tuple(SCHEME_NAMES)}, "
                            f"got {scheme!r}")
    peel = str(header.get("peel", "tail"))
    if peel not in ("tail", "head"):
        raise ProtocolError(f"peel must be 'tail' or 'head', got {peel!r}")
    tau = header.get("tau")
    if tau is not None:
        tau = int(tau)
        if tau < 0:
            raise ProtocolError(f"tau must be >= 0, got {tau}")
    accuracy = header.get("accuracy")
    if accuracy is not None:
        accuracy = str(accuracy)
        # the wire's dtypes are all inexact, so "exact" is not a legal
        # SLO here — integer/object serving stays an in-process affair
        if accuracy not in ("fast", "compensated"):
            raise ProtocolError(
                f"accuracy must be 'fast' or 'compensated', "
                f"got {accuracy!r}"
            )
    timeout_ms = header.get("timeout_ms")
    if timeout_ms is not None:
        timeout_ms = int(timeout_ms)
        if timeout_ms < 0:
            raise ProtocolError(f"timeout_ms must be >= 0, got {timeout_ms}")
    has_c = bool(header.get("has_c", False))
    if (beta != 0) and not has_c:
        raise ProtocolError("beta != 0 requires a C payload")
    if np.dtype(dtype).kind != "c":
        # real dtype: hand the service real scalars, or beta * C would
        # upcast the whole computation to complex
        alpha, beta = alpha.real, beta.real

    itemsize = np.dtype(dtype).itemsize
    a_shape = (k, m) if transa else (m, k)
    b_shape = (n, k) if transb else (k, n)
    shapes = [a_shape, b_shape] + ([(m, n)] if has_c else [])
    if len(payloads) != len(shapes):
        raise ProtocolError(
            f"expected {len(shapes)} payload buffers, got {len(payloads)}"
        )
    for which, (shape, buf) in enumerate(zip(shapes, payloads)):
        expect = shape[0] * shape[1] * itemsize
        if len(buf) != expect:
            raise ProtocolError(
                f"buffer {which} is {len(buf)} B, expected {expect} B "
                f"for {shape[0]}x{shape[1]} {dtype}"
            )
    return {
        "id": int(header.get("id", 0)),
        "m": m, "k": k, "n": n,
        "transa": transa, "transb": transb,
        "alpha": alpha, "beta": beta,
        "dtype": dtype, "tau": tau, "scheme": scheme, "peel": peel,
        "accuracy": accuracy,
        "timeout_ms": timeout_ms,
        "client": str(header["client"]) if "client" in header else None,
        "has_c": has_c,
        "a_shape": a_shape, "b_shape": b_shape,
        "out_bytes": m * n * itemsize,
    }


def error_response(req_id: int, error: str, detail: str) -> Dict[str, Any]:
    """A status="error" response header."""
    return {"id": int(req_id), "status": "error",
            "error": error, "detail": detail}


# ---------------------------------------------------------------------- #
# WebSocket (RFC 6455) helpers — stdlib-only, binary frames
# ---------------------------------------------------------------------- #
WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"


def ws_accept(key: str) -> str:
    """Sec-WebSocket-Accept for a handshake key."""
    digest = hashlib.sha1((key + WS_GUID).encode("ascii")).digest()
    return base64.b64encode(digest).decode("ascii")


def ws_encode_frame(opcode: int, payload: bytes, *,
                    mask: bool = False) -> bytes:
    """One unfragmented frame (FIN set).  Clients must mask."""
    head = bytearray([0x80 | (opcode & 0x0F)])
    n = len(payload)
    mask_bit = 0x80 if mask else 0
    if n < 126:
        head.append(mask_bit | n)
    elif n < (1 << 16):
        head.append(mask_bit | 126)
        head += struct.pack(">H", n)
    else:
        head.append(mask_bit | 127)
        head += struct.pack(">Q", n)
    if mask:
        import os

        key = os.urandom(4)
        head += key
        return bytes(head) + _xor_mask(payload, key)
    return bytes(head) + payload


def _xor_mask(data: bytes, key: bytes) -> bytes:
    """XOR ``data`` with the repeating 4-byte ``key`` (vectorized —
    matrix payloads run to megabytes, a Python byte loop would dominate
    the whole request)."""
    if not data:
        return b""
    arr = np.frombuffer(data, dtype=np.uint8)
    karr = np.resize(np.frombuffer(key, dtype=np.uint8), arr.size)
    return np.bitwise_xor(arr, karr).tobytes()


class WSFrameAssembler:
    """Incremental RFC 6455 frame parser for a byte stream.

    Feed raw socket bytes in any chunking; complete *messages* come out
    as ``(opcode, payload)`` pairs (fragmented messages are reassembled;
    control frames are never fragmented and pass straight through).
    Used by both sides: the server sees masked client frames, the
    client sees unmasked server frames.
    """

    def __init__(self, *, max_message: int = 1 << 30) -> None:
        self._buf = bytearray()
        self._frag_op: int = 0
        self._frag: List[bytes] = []
        self.max_message = max_message

    def feed(self, data: bytes) -> List[Tuple[int, bytes]]:
        self._buf += data
        out: List[Tuple[int, bytes]] = []
        while True:
            frame = self._next_frame()
            if frame is None:
                return out
            fin, opcode, payload = frame
            if opcode >= 0x8:            # control frame, never fragmented
                out.append((opcode, payload))
                continue
            if opcode != 0:              # first (or only) fragment
                self._frag_op, self._frag = opcode, [payload]
            else:                        # continuation
                if not self._frag_op:
                    raise ProtocolError("continuation frame with no start")
                self._frag.append(payload)
            if sum(map(len, self._frag)) > self.max_message:
                raise ProtocolError("websocket message too large")
            if fin:
                out.append((self._frag_op, b"".join(self._frag)))
                self._frag_op, self._frag = 0, []

    def _next_frame(self):
        buf = self._buf
        if len(buf) < 2:
            return None
        fin = bool(buf[0] & 0x80)
        opcode = buf[0] & 0x0F
        masked = bool(buf[1] & 0x80)
        n = buf[1] & 0x7F
        off = 2
        if n == 126:
            if len(buf) < off + 2:
                return None
            (n,) = struct.unpack(">H", buf[off:off + 2])
            off += 2
        elif n == 127:
            if len(buf) < off + 8:
                return None
            (n,) = struct.unpack(">Q", buf[off:off + 8])
            off += 8
        if n > self.max_message:
            raise ProtocolError(f"websocket frame of {n} B refused")
        key = b""
        if masked:
            if len(buf) < off + 4:
                return None
            key = bytes(buf[off:off + 4])
            off += 4
        if len(buf) < off + n:
            return None
        payload = bytes(buf[off:off + n])
        del self._buf[:off + n]
        if masked:
            payload = _xor_mask(payload, key)
        return fin, opcode, payload
