"""The shard worker process: one GemmService, cache-hot, GIL-free.

Each worker is a separate OS process hosting its own
:class:`~repro.serve.service.GemmService` with a **private**
:class:`~repro.plan.cache.PlanCache` and
:class:`~repro.core.pool.WorkspacePool`.  The router shards requests by
plan signature, so every signature lands on the same worker run after
run — its plan cache stays hot and its pooled arenas stay warm (the
amortization the in-process service already exploits, now multiplied
across processes instead of fighting over one GIL).

Operands never travel through the pipe: the router leases regions of
this worker's :class:`~repro.api.shm.ShmArena` and sends a descriptor
(offsets + shapes); :func:`worker_main` maps Fortran-ordered ndarray
*views* over the same physical pages and submits them to the local
service.  The result is written back into the descriptor's ``out``
region **before** the completion message is sent, so the router may
read it the moment the reply arrives.

Two threads per worker: the main thread drains the pipe (submissions
stay admission-ordered, so the shard's queue policy sees arrivals in
true order) and a responder thread resolves futures FIFO and replies.
Deadlines propagate: the descriptor carries the *remaining* seconds,
re-anchored on this process's clock, and the local admission queue
enforces it exactly like an in-process caller's.

Control ops: ``("stats", token)`` returns the service's full metrics
snapshot; ``("reload", token, directory)`` hot-swaps tuned profiles
into the worker's live :class:`~repro.tune.store.ProfileStore` (None =
the configured ``profile_dir``) without touching in-flight requests and
answers ``("reloaded", token, report)``; ``("drain",)`` closes the
service gracefully (stop admitting, flush in-flight batches, join
workers), flushes every queued reply, and answers ``("drained",
stats)`` before exiting — the clean-shutdown contract the api CI lane
asserts.
"""

from __future__ import annotations

import queue
import signal
import threading
import time
from typing import Any, Dict, Optional

from repro.api.shm import ShmArena
from repro.core.cutoff import SimpleCutoff
from repro.serve.service import GemmService
from repro.tune.store import ProfileStore

__all__ = ["worker_main", "WORKER_DEFAULTS"]

#: service knobs a worker accepts from the router (with defaults)
WORKER_DEFAULTS = {
    "threads": 1,
    "capacity": 256,
    "policy": "reject",
    "max_batch": 32,
    "profile_dir": None,
}

_STOP = object()


def _gemm_views(arena: ShmArena, d: Dict[str, Any]):
    """Map the descriptor's operand regions as ndarray views."""
    dtype = d["dtype"]
    a = arena.view(d["a"][0], (d["a"][1], d["a"][2]), dtype)
    b = arena.view(d["b"][0], (d["b"][1], d["b"][2]), dtype)
    c = None
    if d.get("c") is not None:
        c = arena.view(d["c"][0], (d["c"][1], d["c"][2]), dtype)
    return a, b, c


def worker_main(conn, shm_name: str, cfg: Dict[str, Any]) -> None:
    """Entry point of one worker process (spawn-safe, import-by-name)."""
    # A terminal Ctrl-C signals the whole foreground process group,
    # workers included.  Shutdown is coordinated by the router over the
    # pipe (the "drain" op), so a worker taking its own KeyboardInterrupt
    # mid-recv would abandon in-flight requests and die loudly instead
    # of draining.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover — exotic platforms
        pass
    knobs = dict(WORKER_DEFAULTS)
    knobs.update(cfg or {})
    arena = ShmArena.attach(shm_name)
    # Every worker carries a live ProfileStore; it starts empty (serving
    # defaults) unless a profile_dir was configured, and the "reload"
    # control op swaps new profiles in at any point without touching
    # requests already admitted.
    profile_dir = knobs.get("profile_dir")
    profiles = ProfileStore(profile_dir)
    if profile_dir:
        profiles.load()
    svc = GemmService(
        workers=int(knobs["threads"]),
        capacity=int(knobs["capacity"]),
        policy=str(knobs["policy"]),
        max_batch=int(knobs["max_batch"]),
        profiles=profiles,
    )
    send_lock = threading.Lock()
    pending: "queue.SimpleQueue" = queue.SimpleQueue()

    def reply(msg) -> None:
        with send_lock:
            try:
                conn.send(msg)
            except (BrokenPipeError, OSError):  # router died; nothing to do
                pass

    def respond_loop() -> None:
        while True:
            item = pending.get()
            if item is _STOP:
                return
            req_id, fut, out_desc, dtype = item
            try:
                result = fut.result()
            except BaseException as exc:  # noqa: BLE001 — wire taxonomy
                reply(("done", req_id, {
                    "ok": False,
                    "error": type(exc).__name__,
                    "detail": str(exc),
                }))
                continue
            out = arena.view(out_desc[0], (out_desc[1], out_desc[2]), dtype)
            out[...] = result
            reply(("done", req_id, {
                "ok": True,
                "wait_ms": (fut.wait_s or 0.0) * 1e3,
                "compute_ms": (fut.compute_s or 0.0) * 1e3,
                "batch_size": fut.batch_size,
            }))

    responder = threading.Thread(
        target=respond_loop, name="api-worker-responder", daemon=True
    )
    responder.start()

    def handle_gemm(req_id: int, d: Dict[str, Any]) -> None:
        try:
            a, b, c = _gemm_views(arena, d)
            timeout: Optional[float] = d.get("timeout")
            cutoff = None if d.get("tau") is None else SimpleCutoff(d["tau"])
            # Wire defaults mean "the client didn't ask": map them to
            # None so tuned profiles can govern.  An explicit client
            # pin survives because it differs from the default — except
            # scheme="auto"/peel="tail" themselves, which are identical
            # to the no-request case by the wire protocol's design (the
            # request dict carries no was-it-explicit bit).
            scheme = None if d["scheme"] == "auto" else d["scheme"]
            peel = None if d["peel"] == "tail" else d["peel"]
            # accuracy is already None when the wire header omitted it
            # (no-override: profile, then dtype default, governs)
            fut = svc.submit(
                a, b, c, d["alpha"], d["beta"], d["transa"], d["transb"],
                timeout=timeout, block_timeout=timeout,
                cutoff=cutoff, scheme=scheme, peel=peel,
                accuracy=d.get("accuracy"),
            )
        except BaseException as exc:  # noqa: BLE001 — admission failures
            reply(("done", req_id, {
                "ok": False,
                "error": type(exc).__name__,
                "detail": str(exc),
            }))
            return
        pending.put((req_id, fut, d["out"], d["dtype"]))

    draining = False
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            op = msg[0]
            if op == "gemm":
                handle_gemm(msg[1], msg[2])
            elif op == "stats":
                stats = svc.stats()
                stats["pid"] = __import__("os").getpid()
                reply(("stats", msg[1], stats))
            elif op == "reload":
                directory = msg[2] if len(msg) > 2 else None
                try:
                    report = profiles.load(directory)
                    report["ok"] = True
                except BaseException as exc:  # noqa: BLE001 — wire taxonomy
                    report = {
                        "ok": False,
                        "error": type(exc).__name__,
                        "detail": str(exc),
                    }
                report["profiles"] = profiles.stats()
                reply(("reloaded", msg[1], report))
            elif op == "drain":
                draining = True
                break
    finally:
        # Graceful path: stop admitting, let the service flush every
        # queued batch, then flush every queued reply before answering.
        t0 = time.monotonic()
        svc.close(drain=draining, timeout=max(1.0, float(
            knobs.get("drain_timeout", 30.0)
        )))
        pending.put(_STOP)
        responder.join(timeout=30.0)
        if draining:
            stats = svc.stats()
            stats["drain_s"] = time.monotonic() - t0
            reply(("drained", stats))
        arena.close()
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass
