"""ShmArena: the zero-copy operand transport between router and workers.

Network payloads land in the front-end process, but the matrices they
carry are *computed* in worker processes.  Pickling ndarrays through a
``multiprocessing`` pipe would copy every operand twice (serialize +
deserialize) and burn the GIL-free parallelism the process pool exists
to buy.  Instead each worker owns one ``multiprocessing.shared_memory``
segment managed as a :class:`ShmArena`: the router leases regions,
copies the wire bytes in once, and sends only a tiny descriptor
(offset, shape, dtype) over the pipe; the worker maps the same region
as a Fortran-ordered ndarray **view** — zero bytes cross the process
boundary beyond the descriptor (cf. the contiguous-buffer operand
packing of Huang et al.'s BLIS Strassen, applied at the transport
layer: operands live in one flat, reusable buffer per worker).

Leases are explicit and audited.  :meth:`ShmArena.lease` carves a
region out of a first-fit free list (16-byte aligned, coalescing on
release), and :meth:`ShmArena.stats` exposes the grant/release
counters; a served request that forgets to release shows up as
``leases_outstanding != 0``, which the api test-suite and the fuzz
campaign assert against after every run — the transport cannot leak
silently.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

import numpy as np
from multiprocessing import shared_memory

from repro.errors import ArgumentError, WorkspaceError

__all__ = ["ShmArena", "ShmLease"]

#: allocation granularity: every lease offset/size is a multiple of this,
#: so any ndarray view (complex128 included) is element-aligned
ALIGN = 16


class ShmLease:
    """One leased region of an arena: ``[offset, offset + nbytes)``.

    A value object handed out by :meth:`ShmArena.lease`; its
    ``(offset, nbytes)`` pair is what travels in the pipe descriptor.
    """

    __slots__ = ("offset", "nbytes", "_released")

    def __init__(self, offset: int, nbytes: int) -> None:
        self.offset = offset
        self.nbytes = nbytes
        self._released = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ShmLease(offset={self.offset}, nbytes={self.nbytes})"


class ShmArena:
    """A shared-memory segment with first-fit lease/release accounting.

    Created by the router (``create=True``) and attached by the worker
    process it serves (:meth:`attach`).  Only the creating side
    allocates; the attaching side just maps views at descriptor offsets
    — so the free list needs no cross-process coordination.

    The allocator is first-fit over an address-ordered free list with
    coalescing on release: robust to out-of-order lifetimes (a slow
    request does not block reuse of its neighbours).  Exhaustion raises
    :class:`~repro.errors.WorkspaceError`; the router surfaces that as
    service overload, which is exactly what a full transport is.
    """

    def __init__(self, size: int, *, name: Optional[str] = None,
                 create: bool = True) -> None:
        if create and size < ALIGN:
            raise ArgumentError(
                "ShmArena", "size", f"must be >= {ALIGN}, got {size}"
            )
        if create:
            size = -(-size // ALIGN) * ALIGN
            self._shm = shared_memory.SharedMemory(
                name=name, create=True, size=size
            )
        else:
            # CPython < 3.13 registers *attached* segments with the
            # resource tracker too (bpo-39959).  Here that is benign:
            # workers are spawn-children of the router, so they share
            # the router's tracker process and the attach registration
            # is a set no-op — unregistering would instead delete the
            # creator's entry and make unlink() warn.  Do nothing.
            self._shm = shared_memory.SharedMemory(name=name, create=False)
        self.size = self._shm.size
        self.created = bool(create)
        self._lock = threading.Lock()
        #: address-ordered (offset, size) holes; creator-side only
        self._free: List[Tuple[int, int]] = [(0, self.size)]
        self._granted = 0
        self._released = 0
        self._leased_bytes = 0
        self._peak_leased = 0
        self._failed = 0

    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        """The segment name a worker passes to :meth:`attach`."""
        return self._shm.name

    @classmethod
    def attach(cls, name: str) -> "ShmArena":
        """Map an existing segment (worker side; no allocator state)."""
        return cls(0, name=name, create=False)

    # ------------------------------------------------------------------ #
    def lease(self, nbytes: int) -> ShmLease:
        """Reserve ``nbytes`` (rounded up to the 16-byte grain).

        Zero-byte leases are legal (degenerate operands) and occupy no
        space.  Raises :class:`~repro.errors.WorkspaceError` when no
        hole fits — the caller translates that into backpressure.
        """
        if nbytes < 0:
            raise ArgumentError(
                "ShmArena", "nbytes", f"must be >= 0, got {nbytes}"
            )
        with self._lock:
            self._granted += 1
            if nbytes == 0:
                return ShmLease(0, 0)
            need = -(-nbytes // ALIGN) * ALIGN
            for i, (off, size) in enumerate(self._free):
                if size >= need:
                    if size == need:
                        del self._free[i]
                    else:
                        self._free[i] = (off + need, size - need)
                    self._leased_bytes += need
                    self._peak_leased = max(
                        self._peak_leased, self._leased_bytes
                    )
                    return ShmLease(off, need)
            self._granted -= 1
            self._failed += 1
            raise WorkspaceError(
                f"ShmArena {self.name}: no hole for {need} B "
                f"({self._leased_bytes}/{self.size} B leased)"
            )

    def release(self, lease: ShmLease) -> None:
        """Return a lease to the free list, coalescing neighbours.

        A freed block adjacent to free holes on *both* sides merges
        with both, so interleaved lease/release traffic always
        re-coalesces an idle arena back to one hole (no permanent
        fragmentation).  The freed region is validated against both
        neighbouring holes *before* the free list is mutated: a lease
        overlapping an existing hole means corrupted accounting (a
        forged or stale lease), and raising then — with the list
        untouched — keeps the allocator usable for the leases that are
        still legitimately outstanding.
        """
        with self._lock:
            if lease._released:
                raise WorkspaceError(
                    f"ShmArena {self.name}: double release of {lease!r}"
                )
            off, size = lease.offset, lease.nbytes
            if size == 0:
                lease._released = True
                self._released += 1
                return
            # locate the first hole at-or-after the freed block
            lo, hi = 0, len(self._free)
            while lo < hi:
                mid = (lo + hi) // 2
                if self._free[mid][0] < off:
                    lo = mid + 1
                else:
                    hi = mid
            # validate against both neighbours before any mutation
            prev_adj = next_adj = False
            if lo > 0:
                poff, psize = self._free[lo - 1]
                if poff + psize > off:
                    raise WorkspaceError(
                        f"ShmArena {self.name}: release of {lease!r} "
                        f"overlaps free hole ({poff}, {psize})"
                    )
                prev_adj = poff + psize == off
            if lo < len(self._free):
                noff, nsize = self._free[lo]
                if off + size > noff:
                    raise WorkspaceError(
                        f"ShmArena {self.name}: release of {lease!r} "
                        f"overlaps free hole ({noff}, {nsize})"
                    )
                next_adj = off + size == noff
            # merge with whichever neighbours touch the freed block
            if prev_adj and next_adj:
                poff, psize = self._free[lo - 1]
                nsize = self._free[lo][1]
                self._free[lo - 1] = (poff, psize + size + nsize)
                del self._free[lo]
            elif prev_adj:
                poff, psize = self._free[lo - 1]
                self._free[lo - 1] = (poff, psize + size)
            elif next_adj:
                nsize = self._free[lo][1]
                self._free[lo] = (off, size + nsize)
            else:
                self._free.insert(lo, (off, size))
            lease._released = True
            self._released += 1
            self._leased_bytes -= size

    # ------------------------------------------------------------------ #
    def view(self, offset: int, shape: Tuple[int, ...],
             dtype: str) -> np.ndarray:
        """A Fortran-ordered ndarray view of ``shape`` at ``offset``.

        Works on either side of the pipe: the router writes operands
        through it, the worker reads them and writes results back —
        the same physical pages, no copies.
        """
        dt = np.dtype(dtype)
        return np.ndarray(shape, dtype=dt, buffer=self._shm.buf,
                          offset=offset, order="F")

    def write_bytes(self, lease: ShmLease, data) -> None:
        """Copy raw bytes into a leased region (the one network->shm copy)."""
        n = len(data)
        if n > lease.nbytes:
            raise WorkspaceError(
                f"ShmArena {self.name}: {n} B into a {lease.nbytes} B lease"
            )
        if n:
            self._shm.buf[lease.offset:lease.offset + n] = data

    def read_bytes(self, offset: int, nbytes: int) -> bytes:
        """Copy raw bytes out of the segment (the one shm->socket copy)."""
        return bytes(self._shm.buf[offset:offset + nbytes])

    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, int]:
        """Lease accounting snapshot; ``leases_outstanding`` must return
        to zero when the transport is idle — the no-leak invariant."""
        with self._lock:
            return {
                "size": self.size,
                "leased_bytes": self._leased_bytes,
                "peak_leased_bytes": self._peak_leased,
                "leases_granted": self._granted,
                "leases_released": self._released,
                "leases_outstanding": self._granted - self._released,
                "lease_failures": self._failed,
                "free_holes": len(self._free),
            }

    def close(self) -> None:
        """Unmap the segment (both sides); idempotent."""
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - views still alive
            pass

    def unlink(self) -> None:
        """Destroy the segment (creator side only); idempotent."""
        if not self.created:
            return
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        s = self.stats()
        return (
            f"ShmArena({self.name}, {s['leased_bytes']}/{s['size']} B "
            f"leased, {s['leases_outstanding']} outstanding)"
        )
