"""repro.api — the network front-end over multi-process sharded serving.

The layer above :mod:`repro.serve`: an asyncio HTTP + WebSocket server
(:class:`~repro.api.server.ApiServer`, ``python -m repro api serve``)
routes wire requests across a pool of worker *processes*, each hosting
its own :class:`~repro.serve.service.GemmService` with a private plan
cache and workspace pool.  Requests shard by plan signature over a
consistent hash ring (:class:`~repro.api.router.Router`), so every
signature keeps hitting the same warm worker; operands travel through
per-worker shared memory (:class:`~repro.api.shm.ShmArena`) rather
than pickles; per-client token buckets
(:class:`~repro.api.ratelimit.ClientLimits`) and per-shard admission
gates apply the same overload policies the in-process service uses.

:class:`~repro.api.client.GemmClient` is the caller's side: a
``GemmService``-shaped handle whose futures resolve over the wire,
plus :func:`~repro.api.client.http_gemm` for one-shot calls.
:func:`~repro.api.wirefuzz.run_wire_fuzz` proves the whole path
bit-identical to in-process DGEFMM.

Layering: ``api`` may import ``serve``, ``plan``, ``core``, ``blas``;
nothing below ``api`` may import it or touch the network
(``tests/test_layering.py`` enforces both directions).
"""

from repro.api.client import GemmClient, WireFuture, http_gemm, http_get
from repro.api.protocol import (
    HTTP_STATUS,
    ProtocolError,
    WIRE_DTYPES,
    pack_message,
    unpack_message,
    validate_gemm,
)
from repro.api.ratelimit import ClientLimits, TokenBucket
from repro.api.router import HashRing, Router, ShardGate, routing_signature
from repro.api.server import ApiServer, ApiServerThread
from repro.api.shm import ShmArena, ShmLease
from repro.api.wirefuzz import run_wire_fuzz

__all__ = [
    "ApiServer",
    "ApiServerThread",
    "ClientLimits",
    "GemmClient",
    "HashRing",
    "HTTP_STATUS",
    "ProtocolError",
    "Router",
    "ShardGate",
    "ShmArena",
    "ShmLease",
    "TokenBucket",
    "WIRE_DTYPES",
    "WireFuture",
    "http_gemm",
    "http_get",
    "pack_message",
    "routing_signature",
    "run_wire_fuzz",
    "unpack_message",
    "validate_gemm",
]
