"""Per-client token-bucket rate limiting for the network front-end.

A classic token bucket: capacity ``burst`` tokens, refilled at ``rate``
tokens per second, one token per request.  An empty bucket refuses the
request immediately (:class:`~repro.errors.RateLimited` over the wire
as HTTP 429) — admission control belongs *before* the shard queues, so
one chatty client cannot fill a worker's admission queue and starve
everyone sharing its shard.

:class:`ClientLimits` keys buckets by client id (the ``client`` field a
request carries, falling back to the peer address), creating them on
first sight and expiring idle ones so a long-lived server does not
accumulate a bucket per ephemeral port.  Time is injected (``clock``)
so tests drive refill deterministically.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional, Tuple

from repro.errors import ArgumentError

__all__ = ["TokenBucket", "ClientLimits"]


class TokenBucket:
    """``burst``-deep bucket refilled at ``rate`` tokens/second."""

    __slots__ = ("rate", "burst", "_tokens", "_t_last", "_clock",
                 "allowed", "refused")

    def __init__(self, rate: float, burst: float,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if rate <= 0:
            raise ArgumentError(
                "TokenBucket", "rate", f"must be > 0, got {rate}"
            )
        if burst < 1:
            raise ArgumentError(
                "TokenBucket", "burst", f"must be >= 1, got {burst}"
            )
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._clock = clock
        self._t_last = clock()
        self.allowed = 0
        self.refused = 0

    def try_acquire(self, n: float = 1.0) -> bool:
        """Take ``n`` tokens if available; False (and no debit) if not."""
        now = self._clock()
        self._tokens = min(
            self.burst, self._tokens + (now - self._t_last) * self.rate
        )
        self._t_last = now
        if self._tokens >= n:
            self._tokens -= n
            self.allowed += 1
            return True
        self.refused += 1
        return False

    @property
    def tokens(self) -> float:
        """Current (pre-refill) token balance — introspection only."""
        return self._tokens

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TokenBucket(rate={self.rate}, burst={self.burst}, "
            f"tokens={self._tokens:.2f})"
        )


class ClientLimits:
    """A bucket per client id, with idle expiry.

    ``rate <= 0`` disables limiting entirely (every check passes), so
    one code path serves both configurations.  Single-threaded by
    design: the asyncio front-end calls it from the event loop only.
    """

    def __init__(self, rate: float, burst: Optional[float] = None, *,
                 idle_expiry: float = 300.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else max(
            1.0, 2.0 * self.rate
        )
        self.idle_expiry = float(idle_expiry)
        self._clock = clock
        self._buckets: Dict[str, Tuple[TokenBucket, float]] = {}
        self.refused = 0

    @property
    def enabled(self) -> bool:
        return self.rate > 0

    def check(self, client_id: str) -> bool:
        """True when ``client_id`` may proceed (debits one token)."""
        if not self.enabled:
            return True
        now = self._clock()
        entry = self._buckets.get(client_id)
        if entry is None:
            self._expire(now)
            bucket = TokenBucket(self.rate, self.burst, clock=self._clock)
            self._buckets[client_id] = (bucket, now)
        else:
            bucket = entry[0]
            self._buckets[client_id] = (bucket, now)
        ok = bucket.try_acquire()
        if not ok:
            self.refused += 1
        return ok

    def _expire(self, now: float) -> None:
        dead = [
            cid for cid, (_b, seen) in self._buckets.items()
            if now - seen > self.idle_expiry
        ]
        for cid in dead:
            del self._buckets[cid]

    def stats(self) -> Dict[str, float]:
        return {
            "rate": self.rate,
            "burst": self.burst,
            "clients": len(self._buckets),
            "refused": self.refused,
        }
