"""The asyncio network front-end: HTTP + WebSocket over one port.

``python -m repro api serve`` runs this server.  One asyncio event
loop accepts connections and speaks two transports over the same
listener — plain HTTP/1.1 (``POST /v1/gemm``, one framed message per
request body) and RFC 6455 WebSockets (``GET /v1/ws`` upgrades; each
binary frame is one framed message and responses may return out of
order, so a single socket is a full request pipeline).  Both are
implemented directly on ``asyncio`` streams: the contract of this repo
is stdlib + numpy/scipy, so there is no aiohttp to lean on — and a
gemm wire protocol needs exactly none of it.

The front-end owns admission, the :class:`~repro.api.router.Router`
owns placement.  Per-client token buckets
(:class:`~repro.api.ratelimit.ClientLimits`) refuse chatty clients
before anything is parsed into matrices (HTTP 429); the router's
per-shard gates apply the configured overload policy; and the error
taxonomy of :mod:`repro.errors` maps onto HTTP status codes
(:data:`~repro.api.protocol.HTTP_STATUS`) so callers can tell a
malformed request (400) from overload (503) from a blown deadline
(504).

Lifecycle: ``GET /healthz`` reports ``ok``/``degraded``/``draining``,
``GET /metrics`` returns the full counter snapshot (front-end counters,
rate-limit stats, per-shard service + transport stats), and
:meth:`ApiServer.drain` performs the graceful shutdown the CI smoke
lane asserts — stop accepting, fail new work with ``ServiceClosed``,
flush every in-flight request, drain every worker, free every shm
segment.  :class:`ApiServerThread` embeds the whole thing in a
background thread for tests, benchmarks, and the loadgen CLI.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.api.protocol import (
    HTTP_STATUS,
    ProtocolError,
    WSFrameAssembler,
    error_response,
    pack_message,
    unpack_message,
    validate_gemm,
    ws_accept,
    ws_encode_frame,
)
from repro.api.ratelimit import ClientLimits
from repro.api.router import DEFAULT_ARENA_BYTES, Router
from repro.errors import RateLimited, ServiceClosed

__all__ = ["ApiServer", "ApiServerThread"]

_REASONS = {
    101: "Switching Protocols", 200: "OK", 400: "Bad Request",
    404: "Not Found", 405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable", 504: "Gateway Timeout",
}

#: largest accepted HTTP body / websocket message (operands included)
MAX_BODY = 1 << 30


class ApiServer:
    """HTTP + WebSocket front-end over a sharded worker pool."""

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        threads: int = 1,
        capacity: int = 256,
        policy: str = "reject",
        max_batch: int = 32,
        arena_bytes: int = DEFAULT_ARENA_BYTES,
        rate: float = 0.0,
        burst: Optional[float] = None,
        profile_dir: Optional[str] = None,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.router = Router(
            workers=workers, threads=threads, capacity=capacity,
            policy=policy, max_batch=max_batch, arena_bytes=arena_bytes,
            profile_dir=profile_dir,
        )
        self.limits = ClientLimits(rate, burst)
        self._server: Optional[asyncio.base_events.Server] = None
        self._draining = False
        self._tasks: set = set()
        self._t_start = 0.0
        self.counters: Dict[str, Any] = {
            "requests_total": 0,
            "ok_total": 0,
            "ratelimited_total": 0,
            "errors": {},
            "http_requests": 0,
            "ws_connections": 0,
            "ws_messages": 0,
            "bytes_in": 0,
            "bytes_out": 0,
        }

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        """Spawn the worker pool, then bind and listen."""
        await self.router.start()
        self._server = await asyncio.start_server(
            self._on_conn, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._t_start = time.monotonic()

    async def serve_forever(self) -> None:
        async with self._server:
            await self._server.serve_forever()

    async def drain(self, timeout: float = 30.0) -> Dict[str, Any]:
        """Graceful shutdown; returns the final stats snapshot."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        deadline = time.monotonic() + timeout
        while self._tasks and time.monotonic() < deadline:
            await asyncio.sleep(0.01)
        shards = await self.router.drain(
            max(1.0, deadline - time.monotonic())
        )
        return self._snapshot(shards)

    def kill(self) -> None:
        """Hard stop (tests/error paths): terminate workers, free shm."""
        self._draining = True
        if self._server is not None:
            self._server.close()
        self.router.kill()

    # ------------------------------------------------------------------ #
    # stats
    # ------------------------------------------------------------------ #
    def _snapshot(self, shards: List[Dict[str, Any]]) -> Dict[str, Any]:
        return {
            "uptime_s": time.monotonic() - self._t_start,
            "health": self.router.health(),
            "frontend": dict(self.counters, errors=dict(
                self.counters["errors"]
            )),
            "ratelimit": self.limits.stats(),
            "shards": shards,
        }

    async def stats(self) -> Dict[str, Any]:
        return self._snapshot(await self.router.stats())

    # ------------------------------------------------------------------ #
    # request handling (transport-independent)
    # ------------------------------------------------------------------ #
    async def _handle_message(
        self, data: bytes, peer: str
    ) -> Tuple[Dict[str, Any], bytes]:
        """One framed request in, one framed response header+payload out."""
        self.counters["requests_total"] += 1
        self.counters["bytes_in"] += len(data)
        req_id = 0
        try:
            header, payloads = unpack_message(data)
            req_id = int(header.get("id", 0) or 0)
            g = validate_gemm(header, payloads)
            req_id = g["id"]
            client = g["client"] or peer
            if not self.limits.check(client):
                raise RateLimited(
                    f"client {client!r} exceeded "
                    f"{self.limits.rate:g} req/s"
                )
            if self._draining:
                raise ServiceClosed("api server is draining")
            resp, payload = await self.router.dispatch(g, payloads)
        except ProtocolError as exc:
            resp, payload = error_response(req_id, "BadRequest",
                                           str(exc)), b""
        except Exception as exc:  # noqa: BLE001 — wire taxonomy boundary
            resp, payload = error_response(req_id, type(exc).__name__,
                                           str(exc)), b""
        if resp.get("status") == "ok":
            self.counters["ok_total"] += 1
        else:
            name = resp.get("error", "InternalError")
            if name == "RateLimited":
                self.counters["ratelimited_total"] += 1
            errs = self.counters["errors"]
            errs[name] = errs.get(name, 0) + 1
        return resp, payload

    # ------------------------------------------------------------------ #
    # HTTP
    # ------------------------------------------------------------------ #
    async def _on_conn(self, reader: asyncio.StreamReader,
                       writer: asyncio.StreamWriter) -> None:
        peername = writer.get_extra_info("peername")
        peer = f"{peername[0]}:{peername[1]}" if peername else "unknown"
        try:
            while True:
                req = await self._read_http_request(reader)
                if req is None:
                    break
                method, path, headers, body = req
                self.counters["http_requests"] += 1
                if (path == "/v1/ws"
                        and "websocket" in headers.get(
                            "upgrade", "").lower()):
                    await self._ws_session(reader, writer, headers, peer)
                    break
                keep = headers.get("connection", "").lower() != "close"
                await self._http_dispatch(writer, method, path, body, peer)
                if not keep:
                    break
        except (asyncio.IncompleteReadError, ConnectionError,
                ProtocolError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _read_http_request(self, reader: asyncio.StreamReader):
        try:
            line = await reader.readline()
        except (ValueError, ConnectionError):
            return None
        if not line:
            return None
        parts = line.decode("latin-1").split()
        if len(parts) < 2:
            raise ProtocolError("malformed request line")
        method, path = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            if b":" in line:
                k, v = line.decode("latin-1").split(":", 1)
                headers[k.strip().lower()] = v.strip()
        n = int(headers.get("content-length", 0) or 0)
        if n > MAX_BODY:
            raise ProtocolError(f"body of {n} B refused")
        body = await reader.readexactly(n) if n else b""
        return method, path, headers, body

    async def _http_dispatch(self, writer, method: str, path: str,
                             body: bytes, peer: str) -> None:
        if path == "/healthz":
            health = self.router.health()
            if self._draining:
                health["status"] = "draining"
            self._write_http(writer, 200, json.dumps(health).encode(),
                             "application/json")
        elif path == "/metrics":
            snap = await self.stats()
            self._write_http(writer, 200, json.dumps(snap).encode(),
                             "application/json")
        elif path == "/v1/reload":
            if method != "POST":
                self._write_http(writer, 405, b'{"error":"use POST"}',
                                 "application/json")
            else:
                try:
                    doc = json.loads(body) if body else {}
                except ValueError:
                    doc = {}
                reports = await self.router.reload_profiles(
                    doc.get("directory")
                )
                ok = all(r.get("ok") for r in reports)
                self._write_http(
                    writer,
                    200 if ok else 500,
                    json.dumps({"ok": ok, "shards": reports}).encode(),
                    "application/json",
                )
        elif path == "/v1/gemm":
            if method != "POST":
                self._write_http(writer, 405, b'{"error":"use POST"}',
                                 "application/json")
            else:
                resp, payload = await self._handle_message(body, peer)
                status = (200 if resp.get("status") == "ok"
                          else HTTP_STATUS.get(resp.get("error"), 500))
                out = pack_message(resp, [payload] if payload else [])
                self._write_http(writer, status, out,
                                 "application/x-repro-gemm")
        else:
            self._write_http(writer, 404, b'{"error":"not found"}',
                             "application/json")
        await writer.drain()

    def _write_http(self, writer, status: int, body: bytes,
                    ctype: str) -> None:
        reason = _REASONS.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {ctype}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        self.counters["bytes_out"] += len(body)

    # ------------------------------------------------------------------ #
    # WebSocket
    # ------------------------------------------------------------------ #
    async def _ws_session(self, reader, writer,
                          headers: Dict[str, str], peer: str) -> None:
        key = headers.get("sec-websocket-key")
        if not key:
            self._write_http(writer, 400, b'{"error":"missing ws key"}',
                             "application/json")
            await writer.drain()
            return
        writer.write((
            "HTTP/1.1 101 Switching Protocols\r\n"
            "Upgrade: websocket\r\n"
            "Connection: Upgrade\r\n"
            f"Sec-WebSocket-Accept: {ws_accept(key)}\r\n"
            "\r\n"
        ).encode("latin-1"))
        await writer.drain()
        self.counters["ws_connections"] += 1
        asm = WSFrameAssembler(max_message=MAX_BODY)
        send_lock = asyncio.Lock()

        async def send_frame(opcode: int, payload: bytes) -> None:
            async with send_lock:
                writer.write(ws_encode_frame(opcode, payload))
                self.counters["bytes_out"] += len(payload)
                await writer.drain()

        async def answer(data: bytes) -> None:
            self.counters["ws_messages"] += 1
            resp, payload = await self._handle_message(data, peer)
            out = pack_message(resp, [payload] if payload else [])
            try:
                await send_frame(0x2, out)
            except (ConnectionError, OSError):  # peer went away mid-reply
                pass

        while True:
            data = await reader.read(1 << 16)
            if not data:
                return
            for opcode, payload in asm.feed(data):
                if opcode == 0x2:                      # binary: a request
                    task = asyncio.ensure_future(answer(payload))
                    self._tasks.add(task)
                    task.add_done_callback(self._tasks.discard)
                elif opcode == 0x8:                    # close
                    try:
                        await send_frame(0x8, payload[:2])
                    except (ConnectionError, OSError):
                        pass
                    return
                elif opcode == 0x9:                    # ping -> pong
                    await send_frame(0xA, payload)


class ApiServerThread:
    """An :class:`ApiServer` on a background event-loop thread.

    The embedded form used by tests, ``benchmarks/bench_api.py``, and
    the ``api load``/``api fuzz`` CLI actions: start() blocks until the
    socket is bound (the real port is in ``.port``), drain()/kill()
    marshal into the loop, and the thread exits when the loop stops.
    """

    def __init__(self, **cfg: Any) -> None:
        self._cfg = cfg
        self.server: Optional[ApiServer] = None
        self.port: Optional[int] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_exc: Optional[BaseException] = None

    # -- context manager sugar ----------------------------------------- #
    def __enter__(self) -> "ApiServerThread":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._thread is not None and self._thread.is_alive():
            try:
                self.drain(timeout=10.0)
            except Exception:  # noqa: BLE001 — teardown must not mask
                self.kill()

    def start(self, timeout: float = 60.0) -> "ApiServerThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-api-server", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise TimeoutError("api server failed to start in time")
        if self._startup_exc is not None:
            raise self._startup_exc
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        self.server = ApiServer(**self._cfg)
        try:
            loop.run_until_complete(self.server.start())
            self.port = self.server.port
        except BaseException as exc:  # noqa: BLE001 — report to starter
            self._startup_exc = exc
            self._ready.set()
            self.server.kill()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            loop.close()

    def _call(self, coro, timeout: float):
        fut = asyncio.run_coroutine_threadsafe(coro, self._loop)
        return fut.result(timeout)

    def stats(self, timeout: float = 10.0) -> Dict[str, Any]:
        return self._call(self.server.stats(), timeout)

    def reload(
        self,
        directory: Optional[str] = None,
        timeout: float = 15.0,
    ) -> List[Dict[str, Any]]:
        """Hot-swap tuned profiles into every worker (see Router)."""
        return self._call(
            self.server.router.reload_profiles(directory), timeout
        )

    def drain(self, timeout: float = 30.0) -> Dict[str, Any]:
        """Graceful shutdown; joins the server thread."""
        final = self._call(self.server.drain(timeout), timeout + 15.0)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10.0)
        return final

    def kill(self) -> None:
        if self._loop is not None and self._loop.is_running():
            try:
                self._call(asyncio.sleep(0), 1.0)   # flush pending
            except Exception:  # noqa: BLE001
                pass
            self._loop.call_soon_threadsafe(self.server.kill)
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=5.0)
        elif self.server is not None:
            self.server.kill()
