"""Differential fuzzing *through the network stack*.

The in-process campaign (:mod:`repro.fuzz`) already proves DGEFMM
against the naive triple product.  This module replays the same
edge-heavy case distribution through the full wire path — client
framing, HTTP/WS transport, router sharding, shm transit, worker
service, and back — and demands **bit-identical** agreement with the
direct in-process computation of the same operands.  Any divergence
means the transport corrupted, re-ordered, or re-computed something:
serialization is not allowed to cost even one ulp.

The reference is :func:`repro.serve.loadgen._reference` — the service
output contract (``beta == 0`` outputs start from Fortran-ordered
zeros; ``beta != 0`` from a copy of C) — so the equality asserted here
is the plan-replay guarantee end to end over the wire.

Cases are drawn exactly like the service load mix: aliased cases are
skipped (the wire has no aliasing — operands are serialized), and the
pool/workers/depth knobs don't travel; everything else (degenerate
dims, zero scalars, hostile layouts, every scheme, both peels, mixed
dtypes) stays in.  After an owned-server run the campaign also asserts
the transport's no-leak invariant (every shm lease released) and
drains the pool cleanly — a leak or dirty drain is reported as a
failure even when every case matched.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.api.client import GemmClient
from repro.api.protocol import WIRE_DTYPES
from repro.core.cutoff import SimpleCutoff
from repro.fuzz.cases import FuzzCase, case_to_dict, draw_case, materialize
from repro.fuzz.runner import FuzzReport
from repro.serve.loadgen import _reference

__all__ = ["run_wire_fuzz", "draw_wire_cases"]

#: futures kept in flight at once — enough to keep every shard's
#: admission queue busy without racing ahead of backpressure
_WINDOW = 32


def draw_wire_cases(cases: int, seed: int,
                    max_dim: int = 32) -> List[FuzzCase]:
    """The campaign's case list: the fuzz distribution minus aliasing
    and minus the exact dtypes (the wire's dtypes are all inexact —
    integer/object serving is an in-process affair)."""
    rng = np.random.default_rng(seed)
    out: List[FuzzCase] = []
    while len(out) < cases:
        case = draw_case(rng, max_dim=max_dim)
        if case.alias != "none" or case.dtype not in WIRE_DTYPES:
            continue
        out.append(case)
    return out


def _check_one(case: FuzzCase, got: np.ndarray,
               expected: np.ndarray) -> List[str]:
    failures: List[str] = []
    if str(got.dtype) != str(expected.dtype):
        failures.append(
            f"dtype drift over the wire: sent computation in "
            f"{expected.dtype}, got {got.dtype}"
        )
    elif got.shape != expected.shape:
        failures.append(
            f"shape drift: expected {expected.shape}, got {got.shape}"
        )
    elif not np.array_equal(got, expected):
        bad = int(np.sum(got != expected))
        failures.append(
            f"wire result differs from in-process dgefmm in {bad} "
            f"of {got.size} elements (bit-identity violated)"
        )
    return failures


def run_wire_fuzz(
    cases: int = 200,
    seed: int = 0,
    max_dim: int = 32,
    *,
    scheme: Optional[str] = None,
    host: Optional[str] = None,
    port: Optional[int] = None,
    workers: int = 2,
    threads: int = 1,
    capacity: int = 512,
    policy: str = "block",
    max_batch: int = 32,
    progress: Optional[Any] = None,
) -> Tuple[FuzzReport, Dict[str, Any]]:
    """Run the over-the-wire campaign; returns ``(report, server_stats)``.

    With ``host``/``port`` the campaign targets a live server (the CI
    smoke lane's mode); otherwise it owns an embedded
    :class:`~repro.api.server.ApiServerThread` and additionally asserts
    clean drain + zero leaked shm leases on the way out.  ``scheme``
    pins every case, mirroring ``repro fuzz --scheme``.
    """
    todo = draw_wire_cases(cases, seed, max_dim=max_dim)
    if scheme is not None:
        todo = [dataclasses.replace(c, scheme=scheme) for c in todo]

    own_server = None
    if host is None:
        from repro.api.server import ApiServerThread

        own_server = ApiServerThread(
            workers=workers, threads=threads, capacity=capacity,
            policy=policy, max_batch=max_batch,
        ).start()
        host, port = "127.0.0.1", own_server.port

    report = FuzzReport()
    client = GemmClient(host, port, client_id="wirefuzz")
    stats: Dict[str, Any] = {}
    try:
        inflight: List[Tuple[FuzzCase, Any, np.ndarray]] = []

        def collect(entry) -> None:
            case, fut, expected = entry
            report.cases += 1
            report._cover(case)
            try:
                got = fut.result(timeout=120.0)
                failures = _check_one(case, got, expected)
            except Exception as exc:  # noqa: BLE001 — a failure record
                failures = [f"{type(exc).__name__}: {exc}"]
            if failures:
                report.divergent += 1
                report.failures.append(
                    {"case": case_to_dict(case), "failures": failures}
                )
            if progress is not None:
                progress(report.cases, len(todo), report.divergent)

        for case in todo:
            a, b, c, _c0 = materialize(case)
            alpha, beta = case.scalars()
            # The reference must see the operands exactly as transmitted:
            # serialization canonicalizes layout to Fortran order, and
            # BLAS picks layout-dependent accumulation paths, so bit-
            # identity is defined relative to the canonical bytes.  The
            # hostile layouts still exercise the client's serializer.
            aF = np.asarray(a, order="F")
            bF = np.asarray(b, order="F")
            cF = np.asarray(c, order="F")
            expected = _reference(case, aF, bF, cF)
            fut = client.submit(
                a, b, c if beta != 0 else None, alpha, beta,
                case.transa, case.transb,
                cutoff=SimpleCutoff(case.tau),
                scheme=case.scheme, peel=case.peel,
                accuracy=case.accuracy,
            )
            inflight.append((case, fut, expected))
            if len(inflight) >= _WINDOW:
                collect(inflight.pop(0))
        while inflight:
            collect(inflight.pop(0))

        stats = client.stats()
    finally:
        client.close()
        if own_server is not None:
            try:
                stats = own_server.drain(timeout=30.0)
            except Exception as exc:  # noqa: BLE001 — dirty drain = fail
                own_server.kill()
                report.divergent += 1
                report.failures.append({
                    "case": None,
                    "failures": [f"drain failed: "
                                 f"{type(exc).__name__}: {exc}"],
                })

    leaked = [
        (s.get("shard"), s["arena"]["leases_outstanding"])
        for s in stats.get("shards", [])
        if s.get("arena") and s["arena"]["leases_outstanding"]
    ]
    if leaked:
        report.divergent += 1
        report.failures.append({
            "case": None,
            "failures": [f"shm leases leaked: {leaked}"],
        })
    return report, stats
