"""Blocking client for the api server — the network GemmService.

:class:`GemmClient` opens one WebSocket and pipelines requests over it:
``submit`` returns a :class:`WireFuture` immediately (same contract as
the in-process :class:`~repro.serve.request.GemmFuture` — ``result``,
``exception``, ``done``, and the ``wait_s``/``compute_s``/``batch_size``
latency split, now measured on the worker's side of the wire), and a
background reader thread resolves futures as binary response frames
arrive, in whatever order the shards finish.  Because the surface
matches ``GemmService``, existing machinery runs unchanged against the
network: ``repro.serve.loadgen.run_load(service=client)`` is exactly
how the ``api load`` CLI and ``bench_api`` drive a live server.

Wire failures come back as error headers; the client re-raises the
service taxonomy (:class:`~repro.errors.ServiceOverloaded`,
``ServiceTimeout``, ``ServiceClosed``, ``RateLimited``, ...) so caller
code cannot tell a remote rejection from a local one.  Classes whose
constructors need more than a message string arrive as
:class:`~repro.errors.RemoteError` with the original class name in
``.error``.

:func:`http_gemm` is the one-shot form (``POST /v1/gemm``) for callers
that want request/response semantics without a socket to manage.
"""

from __future__ import annotations

import base64
import itertools
import json
import os
import socket
import threading
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.api.protocol import (
    ProtocolError,
    WSFrameAssembler,
    array_payload,
    gemm_request_header,
    pack_message,
    unpack_message,
    ws_accept,
    ws_encode_frame,
)
from repro.errors import (
    ArgumentError,
    RateLimited,
    RemoteError,
    ServiceClosed,
    ServiceError,
    ServiceOverloaded,
    ServiceTimeout,
    WorkspaceError,
)

__all__ = ["GemmClient", "WireFuture", "http_gemm", "http_get"]

#: wire error classes safe to reconstruct from a single message string
_EXC_MAP = {
    "ServiceOverloaded": ServiceOverloaded,
    "ServiceTimeout": ServiceTimeout,
    "ServiceClosed": ServiceClosed,
    "RateLimited": RateLimited,
    "WorkspaceError": WorkspaceError,
    "ServiceError": ServiceError,
}


def _wire_exception(error: str, detail: str) -> Exception:
    cls = _EXC_MAP.get(error)
    if cls is not None:
        return cls(detail)
    return RemoteError(error, detail)


class WireFuture:
    """GemmFuture-compatible handle for one in-flight wire request."""

    __slots__ = ("_event", "_result", "_exception",
                 "wait_s", "compute_s", "batch_size", "shard")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._result: Optional[np.ndarray] = None
        self._exception: Optional[BaseException] = None
        self.wait_s: Optional[float] = None
        self.compute_s: Optional[float] = None
        self.batch_size: Optional[int] = None
        self.shard: Optional[int] = None

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> np.ndarray:
        if not self._event.wait(timeout):
            raise ServiceTimeout(f"result not available within {timeout} s")
        if self._exception is not None:
            raise self._exception
        return self._result

    def exception(
        self, timeout: Optional[float] = None
    ) -> Optional[BaseException]:
        if not self._event.wait(timeout):
            raise ServiceTimeout(f"result not available within {timeout} s")
        return self._exception

    def _set_result(self, value: np.ndarray) -> None:
        self._result = value
        self._event.set()

    def _set_exception(self, exc: BaseException) -> None:
        self._exception = exc
        self._event.set()


class GemmClient:
    """One pipelined WebSocket connection to an api server."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8771, *,
                 client_id: Optional[str] = None,
                 connect_timeout: float = 10.0) -> None:
        self.host = host
        self.port = int(port)
        self.client_id = client_id
        self._sock = socket.create_connection(
            (host, self.port), timeout=connect_timeout
        )
        self._handshake(connect_timeout)
        self._sock.settimeout(None)
        self._send_lock = threading.Lock()
        self._lock = threading.Lock()
        self._pending: Dict[int, Tuple[WireFuture, Tuple[int, int], str]] = {}
        self._ids = itertools.count(1)
        self._closed = False
        self.submitted = 0
        self.completed = 0
        self._reader = threading.Thread(
            target=self._read_loop, name="gemm-client-reader", daemon=True
        )
        self._reader.start()

    # ------------------------------------------------------------------ #
    def _handshake(self, timeout: float) -> None:
        key = base64.b64encode(os.urandom(16)).decode("ascii")
        self._sock.sendall((
            f"GET /v1/ws HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Upgrade: websocket\r\n"
            f"Connection: Upgrade\r\n"
            f"Sec-WebSocket-Key: {key}\r\n"
            f"Sec-WebSocket-Version: 13\r\n"
            f"\r\n"
        ).encode("latin-1"))
        self._sock.settimeout(timeout)
        buf = b""
        while b"\r\n\r\n" not in buf:
            chunk = self._sock.recv(4096)
            if not chunk:
                raise ServiceError("server closed during ws handshake")
            buf += chunk
        head, rest = buf.split(b"\r\n\r\n", 1)
        lines = head.decode("latin-1").split("\r\n")
        if " 101 " not in lines[0] + " ":
            raise ServiceError(f"ws upgrade refused: {lines[0]}")
        accept = next(
            (ln.split(":", 1)[1].strip() for ln in lines[1:]
             if ln.lower().startswith("sec-websocket-accept:")), None,
        )
        if accept != ws_accept(key):
            raise ServiceError("bad Sec-WebSocket-Accept from server")
        self._preread = rest

    def _read_loop(self) -> None:
        asm = WSFrameAssembler()
        data = self._preread
        while True:
            if data:
                try:
                    messages = asm.feed(data)
                except ProtocolError as exc:
                    self._fail_all(ServiceError(f"bad frame: {exc}"))
                    return
                for opcode, payload in messages:
                    if opcode == 0x2:
                        self._on_response(payload)
                    elif opcode == 0x8:
                        self._fail_all(
                            ServiceClosed("server closed the connection")
                        )
                        return
            try:
                data = self._sock.recv(1 << 16)
            except OSError:
                data = b""
            if not data:
                self._fail_all(ServiceClosed("connection lost"))
                return

    def _on_response(self, payload: bytes) -> None:
        try:
            header, payloads = unpack_message(payload)
        except ProtocolError:
            return
        with self._lock:
            entry = self._pending.pop(int(header.get("id", 0)), None)
        if entry is None:
            return
        fut, (m, n), dtype = entry
        self.completed += 1
        server = header.get("server") or {}
        fut.wait_s = (server.get("wait_ms") or 0.0) / 1e3
        fut.compute_s = (server.get("compute_ms") or 0.0) / 1e3
        fut.batch_size = server.get("batch_size")
        fut.shard = server.get("shard")
        if header.get("status") == "ok" and payloads:
            flat = np.frombuffer(payloads[0], dtype=np.dtype(dtype))
            fut._set_result(flat.reshape((m, n), order="F").copy(order="F"))
        elif header.get("status") == "ok":
            fut._set_result(
                np.zeros((m, n), dtype=np.dtype(dtype), order="F")
            )
        else:
            fut._set_exception(_wire_exception(
                header.get("error", "InternalError"),
                header.get("detail", ""),
            ))

    def _fail_all(self, exc: Exception) -> None:
        with self._lock:
            pending = list(self._pending.values())
            self._pending.clear()
        for fut, _shape, _dtype in pending:
            if not fut.done():
                fut._set_exception(exc)

    # ------------------------------------------------------------------ #
    def submit(self, a, b, c=None, alpha=1.0, beta=0.0,
               transa: bool = False, transb: bool = False, *,
               timeout: Optional[float] = None,
               block_timeout: Optional[float] = None,
               cutoff=None, scheme: str = "auto",
               peel: str = "tail",
               accuracy: Optional[str] = None) -> WireFuture:
        """Pipeline one gemm; mirrors ``GemmService.submit``.

        ``block_timeout`` has no client-side meaning (admission waits
        happen on the server, bounded by ``timeout``); it is accepted
        so call sites are interchangeable with the in-process service.
        ``accuracy`` is the request's accuracy SLO (``"fast"`` or
        ``"compensated"`` — the wire's dtypes are all inexact); None
        omits the header key, deferring to the shard's tuned profile
        and then the dtype default.
        """
        if self._closed:
            raise ServiceClosed("client is closed")
        beta_c = complex(beta)
        if beta_c != 0 and c is None:
            raise ArgumentError("GemmClient.submit", "c",
                                "beta != 0 requires C")
        a = np.asarray(a)
        b = np.asarray(b)
        if a.ndim != 2 or b.ndim != 2:
            raise ArgumentError("GemmClient.submit", "a/b",
                                "operands must be 2-D")
        m, k = (a.shape[1], a.shape[0]) if transa else a.shape
        kb, n = (b.shape[1], b.shape[0]) if transb else b.shape
        if kb != k:
            raise ArgumentError(
                "GemmClient.submit", "b",
                f"inner dims disagree: A gives k={k}, B gives k={kb}",
            )
        dt = np.result_type(a.dtype, b.dtype)
        if c is not None and beta_c != 0:
            dt = np.result_type(dt, np.asarray(c).dtype)
        if complex(alpha).imag or beta_c.imag:
            dt = np.result_type(dt, np.complex64)
        dtype = str(dt)
        tau = None
        if cutoff is not None:
            tau = getattr(cutoff, "tau", None)
            if tau is None:
                raise ArgumentError(
                    "GemmClient.submit", "cutoff",
                    "only tau-style cutoffs cross the wire",
                )
        has_c = beta_c != 0
        payloads = [
            array_payload(np.asarray(a, dtype=dt)),
            array_payload(np.asarray(b, dtype=dt)),
        ]
        if has_c:
            payloads.append(array_payload(np.asarray(c, dtype=dt)))
        req_id = next(self._ids)
        header = gemm_request_header(
            req_id, m, k, n, transa=transa, transb=transb,
            alpha=complex(alpha), beta=beta_c, dtype=dtype, tau=tau,
            scheme=scheme, peel=peel, accuracy=accuracy,
            timeout_ms=(None if timeout is None
                        else max(0, int(timeout * 1e3))),
            client=self.client_id, has_c=has_c,
        )
        fut = WireFuture()
        with self._lock:
            if self._closed:
                raise ServiceClosed("client is closed")
            self._pending[req_id] = (fut, (m, n), dtype)
        frame = ws_encode_frame(
            0x2, pack_message(header, payloads), mask=True
        )
        try:
            with self._send_lock:
                self._sock.sendall(frame)
        except OSError as exc:
            with self._lock:
                self._pending.pop(req_id, None)
            raise ServiceClosed(f"connection lost: {exc}") from None
        self.submitted += 1
        return fut

    def call(self, a, b, c=None, alpha=1.0, beta=0.0,
             transa: bool = False, transb: bool = False, *,
             timeout: Optional[float] = None, result_timeout: float = 60.0,
             **kw: Any) -> np.ndarray:
        """Synchronous convenience: submit and wait for the result."""
        fut = self.submit(a, b, c, alpha, beta, transa, transb,
                          timeout=timeout, **kw)
        return fut.result(timeout=result_timeout)

    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, Any]:
        """The server's ``/metrics`` snapshot (fresh HTTP connection, so
        it works before, during, and after this socket's lifetime)."""
        status, body = http_get(self.host, self.port, "/metrics")
        if status != 200:
            raise ServiceError(f"/metrics returned HTTP {status}")
        return json.loads(body)

    def healthz(self) -> Dict[str, Any]:
        status, body = http_get(self.host, self.port, "/healthz")
        return dict(json.loads(body), http_status=status)

    def close(self) -> None:
        """Send a close frame and tear down; pending futures fail."""
        if self._closed:
            return
        self._closed = True
        try:
            with self._send_lock:
                self._sock.sendall(ws_encode_frame(0x8, b"", mask=True))
        except OSError:
            pass
        try:
            self._sock.shutdown(socket.SHUT_WR)
        except OSError:
            pass
        self._reader.join(timeout=5.0)
        self._fail_all(ServiceClosed("client closed"))
        try:
            self._sock.close()
        except OSError:  # pragma: no cover
            pass

    def __enter__(self) -> "GemmClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


# ---------------------------------------------------------------------- #
# one-shot HTTP helpers
# ---------------------------------------------------------------------- #
def _http_roundtrip(host: str, port: int, method: str, path: str,
                    body: bytes = b"", ctype: str = "application/json",
                    timeout: float = 60.0) -> Tuple[int, bytes]:
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall((
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            f"Content-Type: {ctype}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n"
            f"\r\n"
        ).encode("latin-1") + body)
        buf = b""
        while b"\r\n\r\n" not in buf:
            chunk = sock.recv(1 << 16)
            if not chunk:
                raise ServiceError("server closed mid-response")
            buf += chunk
        head, rest = buf.split(b"\r\n\r\n", 1)
        lines = head.decode("latin-1").split("\r\n")
        status = int(lines[0].split()[1])
        length = next(
            (int(ln.split(":", 1)[1]) for ln in lines[1:]
             if ln.lower().startswith("content-length:")), None,
        )
        while length is not None and len(rest) < length:
            chunk = sock.recv(1 << 16)
            if not chunk:
                break
            rest += chunk
        return status, rest


def http_get(host: str, port: int, path: str,
             timeout: float = 60.0) -> Tuple[int, bytes]:
    """GET a JSON endpoint (``/healthz``, ``/metrics``)."""
    return _http_roundtrip(host, port, "GET", path, timeout=timeout)


def http_gemm(host: str, port: int, a, b, c=None, alpha=1.0, beta=0.0,
              transa: bool = False, transb: bool = False, *,
              tau: Optional[int] = None, scheme: str = "auto",
              peel: str = "tail", accuracy: Optional[str] = None,
              timeout_ms: Optional[int] = None,
              client: Optional[str] = None,
              timeout: float = 60.0) -> np.ndarray:
    """One-shot ``POST /v1/gemm``: same wire message, no socket to keep.

    Raises the same mapped taxonomy as :class:`GemmClient` on error
    responses.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    m, k = (a.shape[1], a.shape[0]) if transa else a.shape
    _, n = (b.shape[1], b.shape[0]) if transb else b.shape
    beta_c = complex(beta)
    dt = np.result_type(a.dtype, b.dtype)
    if c is not None and beta_c != 0:
        dt = np.result_type(dt, np.asarray(c).dtype)
    if complex(alpha).imag or beta_c.imag:
        dt = np.result_type(dt, np.complex64)
    has_c = beta_c != 0
    payloads = [array_payload(np.asarray(a, dtype=dt)),
                array_payload(np.asarray(b, dtype=dt))]
    if has_c:
        payloads.append(array_payload(np.asarray(c, dtype=dt)))
    header = gemm_request_header(
        1, m, k, n, transa=transa, transb=transb,
        alpha=complex(alpha), beta=beta_c, dtype=str(dt), tau=tau,
        scheme=scheme, peel=peel, accuracy=accuracy,
        timeout_ms=timeout_ms, client=client,
        has_c=has_c,
    )
    body = pack_message(header, payloads)
    status, resp_body = _http_roundtrip(
        host, port, "POST", "/v1/gemm", body,
        ctype="application/x-repro-gemm", timeout=timeout,
    )
    resp, resp_payloads = unpack_message(resp_body)
    if resp.get("status") != "ok":
        raise _wire_exception(resp.get("error", "InternalError"),
                              resp.get("detail", f"HTTP {status}"))
    if not resp_payloads:                       # empty result (m*n == 0)
        return np.zeros((m, n), dtype=np.dtype(str(dt)), order="F")
    flat = np.frombuffer(resp_payloads[0], dtype=np.dtype(str(dt)))
    return flat.reshape((m, n), order="F").copy(order="F")
