"""Signature-sharded router over a pool of worker processes.

The router owns the worker pool: it spawns each
:func:`~repro.api.worker.worker_main` process (``spawn`` context — the
front-end runs an event loop and threads, which ``fork`` would
duplicate into the children), one pipe and one
:class:`~repro.api.shm.ShmArena` per worker, and dispatches every
request to the shard its **plan signature** consistently hashes to.
Sharding by signature is the point of the whole design: a signature
always lands on the same worker, so that worker's private
:class:`~repro.plan.cache.PlanCache` compiles each plan once and its
:class:`~repro.core.pool.WorkspacePool` keeps warm arenas sized for
exactly the signatures it serves — cache-hot serving without any
cross-process cache coherence.

The hash ring is the classic consistent-hashing construction (64
virtual nodes per shard, BLAKE2b points): adding or losing a worker
remaps only the keys adjacent to its vnodes, and lookups walk the ring
past dead shards so a crashed worker degrades capacity instead of
availability.

Backpressure mirrors the in-process admission policies
(:mod:`repro.serve.queue`) at the dispatch boundary: each shard has a
:class:`ShardGate` bounding its in-flight requests, and at capacity the
configured policy decides — ``reject`` fails fast
(:class:`~repro.errors.ServiceOverloaded` → HTTP 503), ``block`` makes
the dispatcher await a slot (bounded by the request deadline), and
``shed-oldest`` fails the oldest *waiting* dispatch so the wait set
stays fresh.  The same policy configures each worker's own
``AdmissionQueue``, so the deep queue behaves identically.  Deadlines
propagate end to end: the wire's ``timeout_ms`` bounds the gate wait,
and the remaining budget rides the descriptor into the worker's
admission queue.
"""

from __future__ import annotations

import asyncio
import bisect
import hashlib
import itertools
import multiprocessing as mp
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

from repro.api.shm import ShmArena, ShmLease
from repro.api.worker import worker_main
from repro.blas.dtypes import default_accuracy
from repro.blas.level3 import DEFAULT_TILE
from repro.core.config import GemmConfig
from repro.core.cutoff import SimpleCutoff
from repro.core.dgefmm import DEFAULT_CUTOFF
from repro.errors import (
    ArgumentError,
    ServiceClosed,
    ServiceError,
    ServiceOverloaded,
    ServiceTimeout,
    WorkspaceError,
)
from repro.plan.compiler import signature_for
from repro.serve.queue import POLICIES

__all__ = ["HashRing", "Router", "ShardGate", "routing_signature"]

#: default shared-memory transport size per worker
DEFAULT_ARENA_BYTES = 64 * 1024 * 1024


# ---------------------------------------------------------------------- #
# consistent hashing
# ---------------------------------------------------------------------- #
def _hash_point(key: str) -> int:
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Consistent hash ring: ``vnodes`` points per shard, BLAKE2b keyed.

    Deterministic across processes and runs (no PYTHONHASHSEED
    dependence), so a given signature routes to the same shard on every
    server start with the same worker count — warm-start friendly.
    """

    def __init__(self, n_shards: int, vnodes: int = 64) -> None:
        if n_shards < 1:
            raise ArgumentError(
                "HashRing", "n_shards", f"must be >= 1, got {n_shards}"
            )
        self.n_shards = n_shards
        self.vnodes = vnodes
        points: List[Tuple[int, int]] = []
        for idx in range(n_shards):
            for v in range(vnodes):
                points.append((_hash_point(f"shard-{idx}-vnode-{v}"), idx))
        points.sort()
        self._points = points
        self._keys = [p[0] for p in points]

    def lookup(self, key: str, alive=None) -> Optional[int]:
        """Shard index for ``key``; walks past shards ``alive`` rejects.

        Returns None when every shard is rejected (no live workers).
        """
        h = _hash_point(key)
        start = bisect.bisect_left(self._keys, h) % len(self._points)
        for step in range(len(self._points)):
            idx = self._points[(start + step) % len(self._points)][1]
            if alive is None or alive(idx):
                return idx
        return None


def routing_signature(g: Dict[str, Any]) -> str:
    """The ring key for one validated gemm request.

    Batchable requests key on the **exact PlanSignature** their shard's
    service will group and cache by (constructed with the same
    ``signature_for`` the in-process path uses, wire defaults for
    ``nb``/``backend``), so shard-affinity and plan-cache keying can
    never drift apart.  Degenerate problems (zero dims, ``alpha == 0``)
    never reach the plan machinery; they key on their coordinates just
    to spread across shards.
    """
    m, k, n = g["m"], g["k"], g["n"]
    if m == 0 or n == 0 or k == 0 or g["alpha"] == 0:
        return f"solo:{m}x{k}x{n}:{g['dtype']}"
    cutoff = DEFAULT_CUTOFF if g["tau"] is None else SimpleCutoff(g["tau"])
    accuracy = g.get("accuracy")
    if accuracy is None:
        accuracy = default_accuracy(g["dtype"])
    cfg = GemmConfig(scheme=g["scheme"], peel=g["peel"], cutoff=cutoff,
                     nb=DEFAULT_TILE, backend="substrate",
                     dtype=g["dtype"], accuracy=accuracy)
    sig = signature_for(
        "serial", m, k, n, g["transa"], g["transb"],
        False, g["beta"] == 0, g["dtype"], cfg,
    )
    return repr(sig)


# ---------------------------------------------------------------------- #
# per-shard dispatch gate
# ---------------------------------------------------------------------- #
class ShardGate:
    """Bounded in-flight gate with the admission-queue policy vocabulary.

    Single event loop only (no locks).  ``acquire`` admits immediately
    while slots are free; at capacity the policy decides: ``reject``
    raises, ``block`` waits FIFO (bounded by the request deadline),
    ``shed-oldest`` fails the oldest waiter and then waits — the wait
    set keeps the newest work, matching the in-process queue's
    freshness-first semantics.  Slots transfer directly to the next
    live waiter on :meth:`release`.
    """

    def __init__(self, capacity: int, policy: str) -> None:
        if capacity < 1:
            raise ArgumentError(
                "ShardGate", "capacity", f"must be >= 1, got {capacity}"
            )
        if policy not in POLICIES:
            raise ArgumentError(
                "ShardGate", "policy",
                f"must be one of {POLICIES}, got {policy!r}",
            )
        self.capacity = int(capacity)
        self.policy = policy
        self._inflight = 0
        self._waiters: Deque[asyncio.Future] = deque()
        self.admitted = 0
        self.rejected = 0
        self.shed = 0

    @property
    def inflight(self) -> int:
        return self._inflight

    @property
    def waiting(self) -> int:
        return sum(1 for f in self._waiters if not f.done())

    async def acquire(self, deadline: Optional[float] = None) -> None:
        if self._inflight < self.capacity and not self.waiting:
            self._inflight += 1
            self.admitted += 1
            return
        if self.policy == "reject":
            self.rejected += 1
            raise ServiceOverloaded(
                f"shard at capacity ({self._inflight}/{self.capacity})"
            )
        if self.policy == "shed-oldest":
            while self._waiters:
                old = self._waiters.popleft()
                if not old.done():
                    old.set_exception(ServiceOverloaded(
                        "shed by a newer request (shed-oldest policy)"
                    ))
                    self.shed += 1
                    break
        fut = asyncio.get_running_loop().create_future()
        self._waiters.append(fut)
        try:
            if deadline is None:
                await fut
            else:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    fut.cancel()
                    self.rejected += 1
                    raise ServiceOverloaded(
                        "deadline expired waiting for a dispatch slot"
                    )
                await asyncio.wait_for(fut, remaining)
        except asyncio.TimeoutError:
            self.rejected += 1
            raise ServiceOverloaded(
                f"no dispatch slot within the request deadline "
                f"({self._inflight}/{self.capacity} in flight)"
            ) from None
        self.admitted += 1

    def release(self) -> None:
        while self._waiters:
            fut = self._waiters.popleft()
            if not fut.done():
                fut.set_result(None)   # slot transfers to the waiter
                return
        self._inflight -= 1

    def stats(self) -> Dict[str, int]:
        return {
            "capacity": self.capacity,
            "policy": self.policy,
            "inflight": self._inflight,
            "waiting": self.waiting,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "shed": self.shed,
        }


# ---------------------------------------------------------------------- #
# the router
# ---------------------------------------------------------------------- #
class _Shard:
    """One worker process and its transport state (router side)."""

    def __init__(self, idx: int) -> None:
        self.idx = idx
        self.proc: Optional[mp.process.BaseProcess] = None
        self.conn = None
        self.arena: Optional[ShmArena] = None
        self.gate: Optional[ShardGate] = None
        self.reader: Optional[threading.Thread] = None
        self.alive = False
        self.inflight: Dict[int, asyncio.Future] = {}
        self.control: Dict[int, asyncio.Future] = {}
        self.routed = 0
        self.completed = 0
        self.failed = 0
        self.final_stats: Optional[Dict[str, Any]] = None


class Router:
    """Spawns, shards over, and drains the worker-process pool."""

    def __init__(
        self,
        *,
        workers: int = 2,
        threads: int = 1,
        capacity: int = 256,
        policy: str = "reject",
        max_batch: int = 32,
        arena_bytes: int = DEFAULT_ARENA_BYTES,
        gate_capacity: Optional[int] = None,
        profile_dir: Optional[str] = None,
    ) -> None:
        if workers < 1:
            raise ArgumentError(
                "Router", "workers", f"must be >= 1, got {workers}"
            )
        self.workers = int(workers)
        self.worker_cfg = {
            "threads": int(threads),
            "capacity": int(capacity),
            "policy": str(policy),
            "max_batch": int(max_batch),
            "profile_dir": profile_dir,
        }
        self.profile_dir = profile_dir
        self.policy = str(policy)
        self.arena_bytes = int(arena_bytes)
        self.gate_capacity = int(
            gate_capacity if gate_capacity is not None else capacity
        )
        self.ring = HashRing(self.workers)
        self._shards: List[_Shard] = [_Shard(i) for i in range(self.workers)]
        self._ids = itertools.count(1)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._draining = False
        self._started = False

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        """Spawn every worker and its reader thread."""
        self._loop = asyncio.get_running_loop()
        ctx = mp.get_context("spawn")
        for shard in self._shards:
            shard.arena = ShmArena(self.arena_bytes)
            shard.gate = ShardGate(self.gate_capacity, self.policy)
            parent, child = ctx.Pipe()
            shard.conn = parent
            shard.proc = ctx.Process(
                target=worker_main,
                args=(child, shard.arena.name, self.worker_cfg),
                name=f"repro-api-worker-{shard.idx}",
                daemon=True,
            )
            shard.proc.start()
            child.close()
            shard.alive = True
            shard.reader = threading.Thread(
                target=self._read_loop, args=(shard,),
                name=f"api-shard-reader-{shard.idx}", daemon=True,
            )
            shard.reader.start()
        self._started = True

    def _read_loop(self, shard: _Shard) -> None:
        while True:
            try:
                msg = shard.conn.recv()
            except (EOFError, OSError):
                break
            self._loop.call_soon_threadsafe(self._on_message, shard, msg)
        self._loop.call_soon_threadsafe(self._on_reader_exit, shard)

    def _on_message(self, shard: _Shard, msg) -> None:
        kind = msg[0]
        if kind == "done":
            fut = shard.inflight.pop(msg[1], None)
            if fut is not None and not fut.done():
                fut.set_result(msg[2])
        elif kind in ("stats", "reloaded"):
            fut = shard.control.pop(msg[1], None)
            if fut is not None and not fut.done():
                fut.set_result(msg[2])
        elif kind == "drained":
            shard.final_stats = msg[1]
            fut = shard.control.pop(-1, None)
            if fut is not None and not fut.done():
                fut.set_result(msg[1])

    def _on_reader_exit(self, shard: _Shard) -> None:
        shard.alive = False
        exc = ServiceError(f"api worker {shard.idx} exited")
        for fut in list(shard.inflight.values()):
            if not fut.done():
                fut.set_exception(exc)
        shard.inflight.clear()
        for fut in list(shard.control.values()):
            if not fut.done():
                fut.set_exception(exc)
        shard.control.clear()

    # ------------------------------------------------------------------ #
    # dispatch
    # ------------------------------------------------------------------ #
    def shard_index_for(self, key: str) -> Optional[int]:
        """Ring lookup skipping dead shards (None = no live workers)."""
        return self.ring.lookup(
            key, alive=lambda i: self._shards[i].alive
        )

    async def dispatch(
        self, g: Dict[str, Any], payloads: Sequence[bytes]
    ) -> Tuple[Dict[str, Any], bytes]:
        """Route one validated gemm request; returns (header, payload).

        Worker-reported failures come back as ``status="error"``
        headers; router-side failures (overload, timeout, closed) raise
        the corresponding :mod:`repro.errors` exception for the server
        to map onto the wire.
        """
        if self._draining or not self._started:
            raise ServiceClosed("api server is draining")
        key = routing_signature(g)
        idx = self.shard_index_for(key)
        if idx is None:
            raise ServiceClosed("no live workers")
        shard = self._shards[idx]
        deadline = None
        if g["timeout_ms"] is not None:
            deadline = time.monotonic() + g["timeout_ms"] / 1e3

        await shard.gate.acquire(deadline)
        leases: List[ShmLease] = []
        req_id = next(self._ids)
        try:
            try:
                for buf in payloads:
                    leases.append(shard.arena.lease(len(buf)))
                out_lease = shard.arena.lease(g["out_bytes"])
                leases.append(out_lease)
            except WorkspaceError as exc:
                raise ServiceOverloaded(
                    f"shard {idx} transport arena full: {exc}"
                ) from None
            for lease, buf in zip(leases, payloads):
                shard.arena.write_bytes(lease, buf)

            remaining = None
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise ServiceTimeout(
                        "deadline expired before dispatch"
                    )
            desc = {
                "m": g["m"], "k": g["k"], "n": g["n"],
                "transa": g["transa"], "transb": g["transb"],
                "alpha": g["alpha"], "beta": g["beta"],
                "dtype": g["dtype"], "tau": g["tau"],
                "scheme": g["scheme"], "peel": g["peel"],
                "accuracy": g.get("accuracy"),
                "timeout": remaining,
                "a": (leases[0].offset, *g["a_shape"]),
                "b": (leases[1].offset, *g["b_shape"]),
                "c": ((leases[2].offset, g["m"], g["n"])
                      if g["has_c"] else None),
                "out": (out_lease.offset, g["m"], g["n"]),
            }
            fut = self._loop.create_future()
            shard.inflight[req_id] = fut
            shard.routed += 1
            try:
                shard.conn.send(("gemm", req_id, desc))
            except (BrokenPipeError, OSError):
                shard.inflight.pop(req_id, None)
                raise ServiceError(f"api worker {idx} unreachable") from None
            d = await fut
            if d["ok"]:
                shard.completed += 1
                payload = shard.arena.read_bytes(
                    out_lease.offset, g["out_bytes"]
                )
                return ({
                    "id": g["id"], "status": "ok",
                    "m": g["m"], "n": g["n"], "dtype": g["dtype"],
                    "server": {
                        "shard": idx,
                        "wait_ms": d.get("wait_ms"),
                        "compute_ms": d.get("compute_ms"),
                        "batch_size": d.get("batch_size"),
                    },
                }, payload)
            shard.failed += 1
            return ({
                "id": g["id"], "status": "error",
                "error": d.get("error", "InternalError"),
                "detail": d.get("detail", ""),
                "server": {"shard": idx},
            }, b"")
        finally:
            shard.inflight.pop(req_id, None)
            for lease in leases:
                shard.arena.release(lease)
            shard.gate.release()

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def live_workers(self) -> int:
        return sum(1 for s in self._shards if s.alive)

    def health(self) -> Dict[str, Any]:
        return {
            "status": (
                "draining" if self._draining
                else "ok" if self.live_workers == self.workers
                else "degraded" if self.live_workers else "down"
            ),
            "workers": [
                {"shard": s.idx,
                 "pid": s.proc.pid if s.proc is not None else None,
                 "alive": s.alive,
                 "inflight": s.gate.inflight if s.gate else 0}
                for s in self._shards
            ],
        }

    async def stats(self, timeout: float = 5.0) -> List[Dict[str, Any]]:
        """Per-shard snapshots: worker service stats + transport stats."""
        async def one(shard: _Shard) -> Dict[str, Any]:
            base = {
                "shard": shard.idx,
                "alive": shard.alive,
                "routed": shard.routed,
                "completed": shard.completed,
                "failed": shard.failed,
                "gate": shard.gate.stats() if shard.gate else None,
                "arena": shard.arena.stats() if shard.arena else None,
            }
            stats_src = shard.final_stats
            if stats_src is None and shard.alive:
                token = next(self._ids)
                fut = self._loop.create_future()
                shard.control[token] = fut
                try:
                    shard.conn.send(("stats", token))
                    stats_src = await asyncio.wait_for(fut, timeout)
                except (asyncio.TimeoutError, OSError, ServiceError):
                    shard.control.pop(token, None)
                    base["stale"] = True
            if stats_src is not None:
                base["service"] = stats_src
            return base

        return list(await asyncio.gather(
            *(one(s) for s in self._shards)
        ))

    async def reload_profiles(
        self, directory: Optional[str] = None, timeout: float = 10.0
    ) -> List[Dict[str, Any]]:
        """Hot-swap tuned profiles into every live worker.

        Sends the ``reload`` control op (``directory`` None = each
        worker's configured ``profile_dir``) and gathers the per-shard
        reports.  Workers load under their store's lock while serving
        continues — requests admitted before the swap keep their
        resolved knobs, requests after it see the new profiles; nothing
        is dropped.  A dead or unresponsive shard reports
        ``{"ok": False, ...}`` instead of failing the whole reload.
        """
        async def one(shard: _Shard) -> Dict[str, Any]:
            base: Dict[str, Any] = {"shard": shard.idx, "alive": shard.alive}
            if not shard.alive:
                base.update(ok=False, error="ShardDown")
                return base
            token = next(self._ids)
            fut = self._loop.create_future()
            shard.control[token] = fut
            try:
                shard.conn.send(("reload", token, directory))
                base.update(await asyncio.wait_for(fut, timeout))
            except (asyncio.TimeoutError, OSError, ServiceError) as exc:
                shard.control.pop(token, None)
                base.update(ok=False, error=type(exc).__name__)
            return base

        return list(await asyncio.gather(
            *(one(s) for s in self._shards)
        ))

    # ------------------------------------------------------------------ #
    # shutdown
    # ------------------------------------------------------------------ #
    async def drain(self, timeout: float = 30.0) -> List[Dict[str, Any]]:
        """Graceful shutdown: refuse new work, flush in-flight, stop.

        Returns the final per-shard stats snapshots.  In-flight
        dispatches get ``timeout`` seconds to complete; anything still
        pending after that fails with ``ServiceClosed`` when the
        workers exit.
        """
        self._draining = True
        deadline = time.monotonic() + timeout
        while any(s.inflight for s in self._shards):
            if time.monotonic() >= deadline:
                break
            await asyncio.sleep(0.01)
        finals: List[Dict[str, Any]] = []
        for shard in self._shards:
            if shard.alive:
                fut = self._loop.create_future()
                shard.control[-1] = fut
                try:
                    shard.conn.send(("drain",))
                    await asyncio.wait_for(
                        fut, max(1.0, deadline - time.monotonic())
                    )
                except (asyncio.TimeoutError, OSError, ServiceError):
                    shard.control.pop(-1, None)
        stats = await self.stats(timeout=1.0)
        for shard in self._shards:
            if shard.proc is not None:
                await self._join_proc(shard, 5.0)
            finals.append(stats[shard.idx])
        self._teardown()
        return finals

    async def _join_proc(self, shard: _Shard, timeout: float) -> None:
        deadline = time.monotonic() + timeout
        while shard.proc.is_alive() and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        if shard.proc.is_alive():
            shard.proc.terminate()
            shard.proc.join(1.0)

    def kill(self) -> None:
        """Hard stop (no drain): terminate processes, free transports."""
        for shard in self._shards:
            if shard.proc is not None and shard.proc.is_alive():
                shard.proc.terminate()
                shard.proc.join(1.0)
        self._teardown()

    def _teardown(self) -> None:
        for shard in self._shards:
            shard.alive = False
            if shard.conn is not None:
                try:
                    shard.conn.close()
                except OSError:  # pragma: no cover
                    pass
            if shard.arena is not None:
                shard.arena.close()
                shard.arena.unlink()
