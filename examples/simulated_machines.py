#!/usr/bin/env python3
"""Tour of the machine-simulation machinery.

Walks the three calibrated 1996 machines through the Section 3.4
experiments: the Figure 2 win band, the Table 3 asymmetry, a tuned
eq. (15) criterion built from the measurements, and a recursion trace
showing what that criterion decides on a concrete problem.

Usage:  python examples/simulated_machines.py
"""

from repro.context import ExecutionContext
from repro.core.dgefmm import dgefmm
from repro.harness.tuning import tune_hybrid_cutoff
from repro.machines.presets import FIXED_DIM, MACHINES
from repro.phantom import Phantom
from repro.utils.trace import render_trace, trace_summary


def main() -> int:
    for name, mach in MACHINES.items():
        d = tune_hybrid_cutoff(mach, fixed=FIXED_DIM[name])
        first, always = d["band"]
        tm, tk, tn = d["rect"]
        print(f"{name}:")
        print(f"  square win band [{first}, {always}], tuned tau = "
              f"{d['tau']}")
        print(f"  long-thin crossovers (tau_m, tau_k, tau_n) = "
              f"({tm}, {tk}, {tn})  sum {tm + tk + tn}")
        crit = d["criterion"]
        ctx = ExecutionContext(mach, dry=True, trace=True)
        m, k, n = 160, 1957, 957   # the paper's criterion-(11) blind spot
        dgefmm(Phantom(m, k), Phantom(k, n), Phantom(m, n),
               cutoff=crit, ctx=ctx)
        s = trace_summary(ctx.events)
        print(f"  on {m}x{k}x{n}: {s['recurse']} recursions, "
              f"{s['base']} base multiplies, depth {s['max_depth']}, "
              f"modeled {ctx.elapsed:.3f} s")
    print("\nrecursion trace for RS/6000 on 700x700x700, tuned criterion:")
    mach = MACHINES["RS6000"]
    crit = tune_hybrid_cutoff(mach)["criterion"]
    ctx = ExecutionContext(mach, dry=True, trace=True)
    dgefmm(Phantom(700, 700), Phantom(700, 700), Phantom(700, 700),
           cutoff=crit, ctx=ctx)
    print(render_trace(ctx.events))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
