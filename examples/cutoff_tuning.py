#!/usr/bin/env python3
"""Calibrating DGEFMM's cutoff parameters, the Section 3.4 way.

The paper's criterion (eq. 15) has four machine parameters: the square
crossover tau and the long-thin crossovers (tau_m, tau_k, tau_n).  This
script measures all four:

- on this host, by wall-clock timing the real kernels (small sizes so it
  finishes quickly), and
- on the simulated RS/6000, where the same procedure lands on the
  paper's Table 2/3 values — which is how the reproduction validates its
  machine models.

Usage:  python examples/cutoff_tuning.py [--host-max 512]
"""

import argparse
import time

import numpy as np

from repro import ExecutionContext, dgefmm, dgemm
from repro.core.cutoff import DepthCutoff
from repro.machines.calibrate import measured_square_crossover
from repro.machines.presets import RS6000
from repro.phantom import Phantom


def host_times(m: int, repeats: int = 3):
    rng = np.random.default_rng(m)
    a = np.asfortranarray(rng.standard_normal((m, m)))
    b = np.asfortranarray(rng.standard_normal((m, m)))
    c = np.zeros((m, m), order="F")

    def best(fn):
        ts = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn()
            ts.append(time.perf_counter() - t0)
        return min(ts)

    t_std = best(lambda: dgemm(a, b, c))
    t_one = best(lambda: dgefmm(a, b, c, cutoff=DepthCutoff(1)))
    return t_std, t_one


def sim_times(m: int):
    def t(fn_is_one: bool) -> float:
        ctx = ExecutionContext(RS6000, dry=True)
        if fn_is_one:
            dgefmm(Phantom(m, m), Phantom(m, m), Phantom(m, m),
                   cutoff=DepthCutoff(1), ctx=ctx)
        else:
            dgemm(Phantom(m, m), Phantom(m, m), Phantom(m, m), ctx=ctx)
        return ctx.elapsed

    return t(False), t(True)


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--host-max", type=int, default=448,
                    help="largest host order to probe (wall clock)")
    args = ap.parse_args()

    print("== host calibration (wall clock, this machine) ==")
    print("   m    DGEMM s   1-level s   ratio")
    host_tau = None
    for m in range(64, args.host_max + 1, 32):
        t_std, t_one = host_times(m)
        marker = ""
        if host_tau is None and t_std > t_one:
            host_tau = m
            marker = "   <- first win"
        print(f"  {m:4d}  {t_std:8.4f}   {t_one:8.4f}   "
              f"{t_std / max(t_one, 1e-12):5.2f}{marker}")
    print(f"host square crossover (coarse): "
          f"{host_tau if host_tau else '> ' + str(args.host_max)}")

    print("\n== simulated RS/6000 (Section 3.4 procedure, dry run) ==")
    first, always, rec = measured_square_crossover(
        lambda m: sim_times(m)[0], lambda m: sim_times(m)[1], 150, 260)
    print(f"first win {first}, always wins {always}, recommended {rec} "
          f"(paper: 176 / 214 / chose 199)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
