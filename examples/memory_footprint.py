#!/usr/bin/env python3
"""Measuring temporary memory: reproducing Table 1 interactively.

Every Strassen implementation in this package draws its temporaries from
an instrumented workspace, so the paper's memory-requirement table can be
*measured* rather than trusted.  This script dry-runs each code on an
order-m problem (no floating point work — instant even at m = 4096) and
prints peak workspace in units of m^2.

Usage:  python examples/memory_footprint.py [m]
"""

import sys

from repro.comparators.cray_sgemms import cray_sgemms
from repro.comparators.dgemmw import dgemmw
from repro.comparators.essl_dgemms import essl_dgemms_general
from repro.context import ExecutionContext
from repro.core.cutoff import SimpleCutoff
from repro.core.dgefmm import dgefmm
from repro.core.workspace import Workspace
from repro.phantom import Phantom


def peak(fn, m: int, beta: float) -> float:
    ctx = ExecutionContext(dry=True)
    ws = Workspace(dry=True)
    fn(Phantom(m, m), Phantom(m, m), Phantom(m, m), 1.0, beta,
       ctx=ctx, workspace=ws)
    return ws.peak_elements / m**2


def main() -> int:
    m = int(sys.argv[1]) if len(sys.argv) > 1 else 4096
    crit = SimpleCutoff(64)
    impls = [
        ("DGEFMM (auto dispatch)",
         lambda a, b, c, al, be, **kw: dgefmm(a, b, c, al, be,
                                              cutoff=crit, **kw)),
        ("  scheme=strassen1",
         lambda a, b, c, al, be, **kw: dgefmm(a, b, c, al, be,
                                              scheme="strassen1",
                                              cutoff=crit, **kw)),
        ("  scheme=strassen2",
         lambda a, b, c, al, be, **kw: dgefmm(a, b, c, al, be,
                                              scheme="strassen2",
                                              cutoff=crit, **kw)),
        ("DGEMMW (Douglas et al.)",
         lambda a, b, c, al, be, **kw: dgemmw(a, b, c, al, be,
                                              cutoff=crit, **kw)),
        ("ESSL-style DGEMMS",
         lambda a, b, c, al, be, **kw: essl_dgemms_general(
             a, b, c, al, be, cutoff=crit, **kw)),
        ("CRAY-style SGEMMS",
         lambda a, b, c, al, be, **kw: cray_sgemms(a, b, c, al, be,
                                                   cutoff=crit, **kw)),
    ]
    print(f"peak temporary memory for an order-{m} multiply, "
          f"in units of m^2 elements\n")
    print(f"{'implementation':28s} {'beta = 0':>10s} {'beta != 0':>10s}")
    for name, fn in impls:
        print(f"{name:28s} {peak(fn, m, 0.0):10.3f} {peak(fn, m, 1.0):10.3f}")
    print("\npaper Table 1: DGEFMM 2/3 and 1; STRASSEN1 2/3 and 2; "
          "STRASSEN2 1 and 1;\n               DGEMMW 2/3 and 5/3; "
          "ESSL 1.40; CRAY 7/3 (documented values)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
