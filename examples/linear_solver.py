#!/usr/bin/env python3
"""Accelerating a linear solver with Strassen (Bailey et al. [3]).

The paper's reference [3] used Strassen's algorithm to accelerate dense
linear-system solution; the mechanism is the same as the eigensolver
study: blocked LU spends ~2n^3/3 flops in its trailing-matrix GEMM
updates, so swapping that one callable swaps the whole solver's kernel.

Usage:  python examples/linear_solver.py [n]
"""

import sys
import time

import numpy as np

from repro.context import ExecutionContext
from repro.core.cutoff import SimpleCutoff
from repro.core.dgefmm import dgefmm
from repro.blas.level3 import dgemm
from repro.linalg import getrf, lu_solve
from repro.utils.matrixgen import random_matrix


def main() -> int:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 768
    a = random_matrix(n, n, seed=0) + n * np.eye(n)
    x_true = np.linspace(-1.0, 1.0, n)
    b = a @ x_true

    print(f"solving a random {n}x{n} system by blocked LU "
          f"(panel n/4), GEMM swapped:\n")
    for kind in ("dgemm", "dgefmm"):
        ctx = ExecutionContext()
        if kind == "dgemm":
            def gemm(aa, bb, cc, alpha=1.0, beta=0.0):
                dgemm(aa, bb, cc, alpha, beta, ctx=ctx)
        else:
            crit = SimpleCutoff(64)

            def gemm(aa, bb, cc, alpha=1.0, beta=0.0):
                dgefmm(aa, bb, cc, alpha, beta, cutoff=crit, ctx=ctx)

        t0 = time.perf_counter()
        lu, piv = getrf(a, gemm, block=max(64, n // 4))
        t_fac = time.perf_counter() - t0
        x = lu_solve(lu, piv, b)
        err = float(np.max(np.abs(x - x_true)))
        print(f"  {kind.upper():7s}: factor {t_fac:6.2f} s, "
              f"{ctx.mul_flops / 1e9:.3f} G multiplies in updates, "
              f"max |x - x_true| = {err:.2e}")
    print("\nNote: the trailing updates after the first panels involve "
          "tall-thin GEMMs\n(rank-64 updates), where the hybrid cutoff's "
          "rectangular handling decides;\nStrassen engages fully once the "
          "trailing blocks are large and square-ish.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
