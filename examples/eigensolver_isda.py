#!/usr/bin/env python3
"""The paper's application study (Section 4.4): an ISDA eigensolver
whose only change is "renaming DGEMM to DGEFMM".

Solves a random symmetric eigenproblem twice — once with each multiply —
and reports total time, matrix-multiplication time, and the residuals,
i.e. this reproduction's Table 6.

Usage:  python examples/eigensolver_isda.py [n]
"""

import sys

import numpy as np

from repro.core.cutoff import SimpleCutoff
from repro.eigensolver import GemmCounter, isda_eigh, make_gemm
from repro.utils.matrixgen import random_symmetric


def main() -> int:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 192
    a = random_symmetric(n, seed=1996)
    print(f"ISDA eigensolver, random symmetric {n}x{n} "
          f"(paper: 1000x1000 on an RS/6000)\n")

    results = {}
    for kind in ("dgemm", "dgefmm"):
        gemm = GemmCounter(
            make_gemm(kind, cutoff=SimpleCutoff(96))
        )
        w, v, stats = isda_eigh(a, gemm, base_size=32)
        resid = float(np.linalg.norm(a @ v - v * w))
        wref = np.linalg.eigvalsh(a)
        results[kind] = stats
        print(f"using {kind.upper():7s}: total {stats.total_seconds:7.2f} s"
              f"   MM {stats.gemm_seconds:7.2f} s in {stats.gemm_calls} "
              f"calls   residual {resid:.2e}   "
              f"max |w - w_ref| {np.max(np.abs(w - wref)):.2e}")

    r = results["dgefmm"].gemm_seconds / results["dgemm"].gemm_seconds
    print(f"\nMM-time ratio DGEFMM/DGEMM: {r:.3f} "
          f"(paper: 812/1030 = 0.788)")
    print("The only difference between the runs is the gemm callable — "
          "the paper's 'renaming all calls to DGEMM as calls to DGEFMM'.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
