#!/usr/bin/env python3
"""Quickstart: DGEFMM as a drop-in DGEMM replacement.

Runs the same GEMM through the standard-algorithm substrate DGEMM and
through DGEFMM (Winograd-variant Strassen with dynamic peeling), checks
they agree, and shows the instrumentation a caller gets for free:
operation counts, kernel breakdown, recursion trace, and workspace peak.

Usage:  python examples/quickstart.py [order]
"""

import sys
import time

import numpy as np

from repro import ExecutionContext, SimpleCutoff, dgefmm, dgemm
from repro.core.workspace import Workspace


def main() -> int:
    m = int(sys.argv[1]) if len(sys.argv) > 1 else 600
    rng = np.random.default_rng(0)
    a = np.asfortranarray(rng.standard_normal((m, m)))
    b = np.asfortranarray(rng.standard_normal((m, m)))

    # --- standard algorithm --------------------------------------------
    c_std = np.zeros((m, m), order="F")
    ctx_std = ExecutionContext()
    t0 = time.perf_counter()
    dgemm(a, b, c_std, ctx=ctx_std)
    t_std = time.perf_counter() - t0

    # --- DGEFMM: same call shape, Strassen underneath ------------------
    c_str = np.zeros((m, m), order="F")
    ctx_str = ExecutionContext(trace=True)
    ws = Workspace()
    cutoff = SimpleCutoff(128)  # see examples/cutoff_tuning.py
    t0 = time.perf_counter()
    dgefmm(a, b, c_str, cutoff=cutoff, ctx=ctx_str, workspace=ws)
    t_str = time.perf_counter() - t0

    err = np.max(np.abs(c_std - c_str)) / np.max(np.abs(c_std))
    print(f"order {m}")
    print(f"  DGEMM   : {t_std:7.3f} s, {ctx_std.mul_flops / 1e9:.3f} G "
          f"multiplies")
    print(f"  DGEFMM  : {t_str:7.3f} s, {ctx_str.mul_flops / 1e9:.3f} G "
          f"multiplies  (speedup {t_std / t_str:.2f}x)")
    print(f"  max relative difference: {err:.2e}")
    print(f"  multiply reduction: "
          f"{100 * (1 - ctx_str.mul_flops / ctx_std.mul_flops):.1f}% "
          f"(one Strassen level saves 1/8)")
    depth = max((e.depth for e in ctx_str.events), default=0)
    print(f"  recursion depth: {depth + 1}, kernel calls: "
          f"{dict(ctx_str.kernel_calls)}")
    print(f"  workspace peak: {ws.peak_elements / m**2:.3f} m^2 "
          f"(paper Table 1: 2/3 m^2 for beta = 0)")
    return 0 if err < 1e-10 else 1


if __name__ == "__main__":
    raise SystemExit(main())
