"""End-to-end integration: the public API, the report CLI, and the
replace-DGEMM story across module boundaries."""

import numpy as np
import pytest

import repro
from repro import SimpleCutoff, dgefmm, dgemm, isda_eigh
from repro.context import ExecutionContext
from repro.core.workspace import Workspace
from repro.harness.report import EXHIBITS, render
from repro.utils.matrixgen import random_symmetric
from repro.utils.tables import format_table


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_quickstart_docstring_flow(self, rng):
        a = np.asfortranarray(rng.standard_normal((120, 120)))
        b = np.asfortranarray(rng.standard_normal((120, 120)))
        c = np.zeros((120, 120), order="F")
        out = dgefmm(a, b, c, cutoff=SimpleCutoff(32))
        assert out is c
        np.testing.assert_allclose(c, a @ b, atol=1e-9)

    def test_c_order_inputs_work_end_to_end(self, rng):
        """Users will pass default (C-order) numpy arrays."""
        a = rng.standard_normal((70, 50))
        b = rng.standard_normal((50, 90))
        c = np.zeros((70, 90))
        dgefmm(a, b, c, cutoff=SimpleCutoff(16))
        np.testing.assert_allclose(c, a @ b, atol=1e-9)


class TestReplaceDgemmStory:
    """Paper Section 4.4: the swap is a rename, results are identical,
    multiply work goes down."""

    def test_identical_application_results(self):
        a = random_symmetric(48, seed=42)
        w_ref, _, _ = isda_eigh(a)
        np.testing.assert_allclose(
            w_ref, np.linalg.eigvalsh(a), atol=1e-8)

    def test_strassen_reduces_multiplies(self, rng):
        m = 128
        a = np.asfortranarray(rng.standard_normal((m, m)))
        b = np.asfortranarray(rng.standard_normal((m, m)))
        c = np.zeros((m, m), order="F")
        ctx1 = ExecutionContext()
        dgemm(a, b, c, ctx=ctx1)
        ctx2 = ExecutionContext()
        dgefmm(a, b, c, cutoff=SimpleCutoff(16), ctx=ctx2)
        assert ctx2.mul_flops < ctx1.mul_flops
        # 3 recursion levels: (7/8)^3 of the multiplies
        assert ctx2.mul_flops == pytest.approx(
            (7 / 8) ** 3 * ctx1.mul_flops, rel=1e-12)


class TestReportCli:
    def test_every_exhibit_renders(self):
        # cheap exhibits render fully; this catches format regressions
        for key in ("section2", "table2", "table3", "table5"):
            out = render(only=key)
            assert key in out or "Table" in out or "Section" in out
            assert "paper" in out.lower()

    def test_unknown_exhibit(self):
        with pytest.raises(KeyError):
            render(only="table99")

    def test_exhibit_registry_complete(self):
        expected = {"section2", "table1", "fig2", "table2", "table3",
                    "table4", "table5", "fig3", "fig4", "fig5", "fig6",
                    "table6", "extensions"}
        assert set(EXHIBITS) == expected


class TestFormatTable:
    def test_basic_layout(self):
        out = format_table(["a", "bb"], [[1, 2.5], ["xyz", 3.0]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "bb" in lines[0]
        assert "-" in lines[1]

    def test_title(self):
        out = format_table(["x"], [[1]], title="T")
        assert out.splitlines()[0] == "T"


class TestSharedContextAcrossModules:
    def test_one_context_collects_everything(self, rng):
        """A single context can instrument a whole application run."""
        ctx = ExecutionContext()
        ws = Workspace()
        a = np.asfortranarray(rng.standard_normal((33, 44)))
        b = np.asfortranarray(rng.standard_normal((44, 55)))
        c = np.zeros((33, 55), order="F")
        dgefmm(a, b, c, cutoff=SimpleCutoff(8), ctx=ctx, workspace=ws)
        from repro.comparators import dgemmw

        c2 = np.zeros((33, 55), order="F")
        dgemmw(a, b, c2, cutoff=SimpleCutoff(8), ctx=ctx, workspace=ws)
        assert ctx.kernel_calls["dgemm"] > 10
        assert ws.live_bytes == 0
        np.testing.assert_allclose(c, c2, atol=1e-10)
