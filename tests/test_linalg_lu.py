"""Blocked LU with pluggable GEMM (the Bailey [3] consumer)."""

import numpy as np
import pytest
import scipy.linalg

from repro.core.cutoff import SimpleCutoff
from repro.core.dgefmm import dgefmm
from repro.errors import DimensionError
from repro.linalg import getrf, lu_reconstruct, lu_solve, solve
from repro.utils.matrixgen import random_matrix


def dgefmm_gemm(a, b, c, alpha=1.0, beta=0.0):
    dgefmm(a, b, c, alpha, beta, cutoff=SimpleCutoff(16))


class TestFactorization:
    @pytest.mark.parametrize("n", [1, 2, 5, 16, 33, 64, 100, 150])
    def test_palu(self, n):
        a = random_matrix(n, n, seed=n)
        lu, piv = getrf(a, block=32)
        p, l, u = lu_reconstruct(lu, piv)
        np.testing.assert_allclose(p @ a, l @ u, atol=1e-10)

    @pytest.mark.parametrize("block", [1, 7, 32, 200])
    def test_block_sizes_agree(self, block):
        a = random_matrix(90, 90, seed=3)
        lu1, piv1 = getrf(a, block=block)
        lu2, piv2 = getrf(a, block=90)
        np.testing.assert_allclose(lu1, lu2, atol=1e-11)
        np.testing.assert_array_equal(piv1, piv2)

    def test_matches_scipy_factors(self):
        a = random_matrix(60, 60, seed=9)
        lu, piv = getrf(a)
        lu_sp, piv_sp = scipy.linalg.lu_factor(a)
        np.testing.assert_allclose(lu, lu_sp, atol=1e-10)
        np.testing.assert_array_equal(piv, piv_sp)

    def test_pivoting_actually_happens(self):
        a = np.array([[0.0, 1.0], [1.0, 0.0]], order="F")
        lu, piv = getrf(a)
        assert piv[0] == 1  # first pivot row swapped

    def test_singular_detected(self):
        a = np.ones((4, 4), order="F")
        with pytest.raises(DimensionError):
            getrf(a)

    def test_input_not_modified(self):
        a = random_matrix(20, 20, seed=4)
        a0 = a.copy()
        getrf(a)
        np.testing.assert_array_equal(a, a0)

    def test_gemm_swap_identical_factors(self):
        """The Strassen-ized factorization computes the same (well-
        conditioned) factors to fp accuracy — the drop-in claim."""
        a = random_matrix(120, 120, seed=11)
        lu1, piv1 = getrf(a, block=48)
        lu2, piv2 = getrf(a, dgefmm_gemm, block=48)
        np.testing.assert_array_equal(piv1, piv2)
        np.testing.assert_allclose(lu1, lu2, atol=1e-9)


class TestSolve:
    @pytest.mark.parametrize("n", [1, 8, 50, 120])
    def test_residual(self, n):
        a = random_matrix(n, n, seed=n + 1) + n * np.eye(n)  # well-cond.
        x_true = np.linspace(-1, 1, n)
        b = a @ x_true
        x = solve(a, b)
        np.testing.assert_allclose(x, x_true, atol=1e-8)

    def test_multiple_rhs(self):
        n = 40
        a = random_matrix(n, n, seed=2) + n * np.eye(n)
        b = random_matrix(n, 5, seed=3)
        x = solve(a, b)
        np.testing.assert_allclose(a @ x, b, atol=1e-9)

    def test_strassen_solve(self):
        n = 100
        a = random_matrix(n, n, seed=7) + n * np.eye(n)
        b = random_matrix(n, 3, seed=8)
        x = solve(a, b, dgefmm_gemm, block=32)
        np.testing.assert_allclose(a @ x, b, atol=1e-8)

    def test_lu_solve_validates(self):
        a = random_matrix(5, 5, seed=1) + 5 * np.eye(5)
        lu, piv = getrf(a)
        with pytest.raises(DimensionError):
            lu_solve(lu, piv, np.zeros(4))

    def test_vector_and_matrix_rhs_agree(self):
        n = 30
        a = random_matrix(n, n, seed=5) + n * np.eye(n)
        b = random_matrix(n, 1, seed=6)
        lu, piv = getrf(a)
        x1 = lu_solve(lu, piv, b[:, 0])
        x2 = lu_solve(lu, piv, b)
        np.testing.assert_allclose(x1, x2[:, 0], atol=1e-12)


class TestGemmDominance:
    def test_trailing_updates_dominate_flops(self):
        """~2n^3/3 of the work flows through the injected gemm — why the
        swap matters (instrumented count)."""
        from repro.context import ExecutionContext
        from repro.blas.level3 import dgemm as raw_dgemm

        ctx = ExecutionContext()

        def counting_gemm(a, b, c, alpha=1.0, beta=0.0):
            raw_dgemm(a, b, c, alpha, beta, ctx=ctx)

        n = 160
        a = random_matrix(n, n, seed=12) + n * np.eye(n)
        getrf(a, counting_gemm, block=32)
        gemm_flops = ctx.mul_flops
        total = n**3 / 3  # multiplies in LU
        assert gemm_flops > 0.7 * total


class TestRecursiveLu:
    """Toledo-style recursive LU: same factors, better Strassen shapes."""

    @pytest.mark.parametrize("n", [1, 2, 5, 16, 33, 64, 100, 150])
    def test_matches_blocked_exactly(self, n):
        from repro.linalg.lu_recursive import getrf_recursive

        a = random_matrix(n, n, seed=n) + 0.1 * np.eye(n)
        lu1, p1 = getrf(a)
        lu2, p2 = getrf_recursive(a, base=8)
        np.testing.assert_array_equal(p1, p2)
        np.testing.assert_allclose(lu1, lu2, atol=1e-11)

    @pytest.mark.parametrize("base", [1, 4, 16, 200])
    def test_base_sizes_agree(self, base):
        from repro.linalg.lu_recursive import getrf_recursive

        a = random_matrix(70, 70, seed=2) + np.eye(70)
        lu1, p1 = getrf_recursive(a, base=base)
        lu2, p2 = getrf_recursive(a, base=70)
        np.testing.assert_array_equal(p1, p2)
        np.testing.assert_allclose(lu1, lu2, atol=1e-11)

    def test_solve_through_recursive_factors(self):
        from repro.linalg.lu_recursive import getrf_recursive

        n = 80
        a = random_matrix(n, n, seed=3) + n * np.eye(n)
        x_true = np.linspace(-1, 1, n)
        lu, piv = getrf_recursive(a, base=16)
        x = lu_solve(lu, piv, a @ x_true)
        np.testing.assert_allclose(x, x_true, atol=1e-9)

    def test_pivoting_matrix_identity(self):
        from repro.linalg.lu_recursive import getrf_recursive

        a = random_matrix(48, 48, seed=4)
        lu, piv = getrf_recursive(a, base=8)
        p, l, u = lu_reconstruct(lu, piv)
        np.testing.assert_allclose(p @ a, l @ u, atol=1e-10)

    def test_better_strassen_utilization_than_blocked(self):
        """Under the same cutoff, the recursive form's big half-width
        updates let Strassen remove far more multiplies than the panel
        form's rank-nb updates — the shape lesson of Section 2, live."""
        from functools import partial

        from repro.context import ExecutionContext
        from repro.core.cutoff import SimpleCutoff
        from repro.core.dgefmm import dgefmm
        from repro.linalg.lu_recursive import getrf_recursive

        def count(factor_fn, n=384):
            a = random_matrix(n, n, seed=1) + n * np.eye(n)
            ctx = ExecutionContext()
            crit = SimpleCutoff(48)

            def gemm(aa, bb, cc, al=1.0, be=0.0):
                dgefmm(aa, bb, cc, al, be, cutoff=crit, ctx=ctx)

            factor_fn(a, gemm)
            return ctx.mul_flops

        blocked = count(partial(getrf, block=48))
        recursive = count(partial(getrf_recursive, base=48))
        assert recursive < 0.85 * blocked

    def test_bad_base(self):
        from repro.linalg.lu_recursive import getrf_recursive

        with pytest.raises(DimensionError):
            getrf_recursive(np.eye(4), base=0)
