"""Phantom array semantics (shape-only stand-ins for dry runs)."""

import numpy as np
import pytest

from repro.phantom import Phantom, is_phantom, like, shape_of


class TestConstruction:
    def test_basic_shape(self):
        p = Phantom(3, 4)
        assert p.shape == (3, 4)
        assert p.ndim == 2
        assert p.size == 12

    def test_tuple_shape(self):
        assert Phantom((5, 6)).shape == (5, 6)

    def test_zero_dims_allowed(self):
        assert Phantom(0, 7).size == 0

    def test_negative_dim_rejected(self):
        with pytest.raises(ValueError):
            Phantom(-1, 3)

    def test_dtype_is_float64(self):
        assert Phantom(2, 2).dtype == np.float64

    def test_1d(self):
        p = Phantom(9)
        assert p.shape == (9,)
        assert p.ndim == 1


class TestSlicing:
    def test_2d_slice(self):
        p = Phantom(10, 8)
        assert p[2:7, 1:4].shape == (5, 3)

    def test_open_slices(self):
        p = Phantom(10, 8)
        assert p[:, :4].shape == (10, 4)
        assert p[5:, :].shape == (5, 8)

    def test_slice_matches_numpy(self):
        a = np.zeros((11, 7))
        p = Phantom(11, 7)
        for sl in [
            (slice(0, 5), slice(2, None)),
            (slice(None), slice(None, 3)),
            (slice(4, 4), slice(None)),
            (slice(None, None, 2), slice(1, 7, 3)),
        ]:
            assert p[sl].shape == a[sl].shape

    def test_int_index_drops_dim(self):
        p = Phantom(10, 8)
        assert p[3, :].shape == (8,)
        assert p[:, 7].shape == (10,)

    def test_negative_int_index(self):
        assert Phantom(10, 8)[-1, :].shape == (8,)

    def test_int_out_of_range(self):
        with pytest.raises(IndexError):
            Phantom(4, 4)[4, :]

    def test_too_many_indices(self):
        with pytest.raises(IndexError):
            Phantom(4, 4)[1:2, 1:2, 1:2]

    def test_negative_step_rejected(self):
        with pytest.raises(IndexError):
            Phantom(4, 4)[::-1, :]


class TestOps:
    def test_transpose(self):
        assert Phantom(3, 5).T.shape == (5, 3)

    def test_reshape(self):
        assert Phantom(4, 6).reshape(8, 3).shape == (8, 3)

    def test_reshape_bad_size(self):
        with pytest.raises(ValueError):
            Phantom(4, 6).reshape(5, 5)

    @pytest.mark.parametrize("op", ["__add__", "__mul__", "__matmul__",
                                    "__sub__", "__truediv__"])
    def test_arithmetic_refused(self, op):
        p = Phantom(2, 2)
        with pytest.raises(TypeError):
            getattr(p, op)(p)


class TestHelpers:
    def test_is_phantom(self):
        assert is_phantom(Phantom(1, 1))
        assert not is_phantom(np.zeros((1, 1)))

    def test_shape_of(self):
        assert shape_of(Phantom(2, 3)) == (2, 3)
        assert shape_of(np.zeros((4, 5))) == (4, 5)

    def test_like_phantom(self):
        assert is_phantom(like(Phantom(1, 1), 6, 7))

    def test_like_numpy_is_fortran(self):
        out = like(np.zeros((1, 1)), 6, 7)
        assert out.shape == (6, 7)
        assert out.flags.f_contiguous
