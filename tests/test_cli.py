"""The ``python -m repro`` command-line interface."""

import csv
import json
import subprocess
import sys

import pytest

from repro.__main__ import main
from repro.harness.figdata import FIGURES, export_all_figures, write_series


class TestMain:
    def test_selftest(self, capsys):
        assert main(["selftest"]) == 0
        out = capsys.readouterr().out
        assert "dgefmm: ok" in out
        assert "isda_eigh: ok" in out

    def test_memory(self, capsys):
        assert main(["memory", "--order", "512"]) == 0
        out = capsys.readouterr().out
        assert "DGEFMM" in out and "0.65" in out  # ~2/3 at order 512

    def test_report_single(self, capsys):
        assert main(["report", "--only", "section2"]) == 0
        out = capsys.readouterr().out
        assert "theoretical square cutoff: 12" in out

    def test_figures(self, tmp_path, capsys):
        assert main(["figures", "--outdir", str(tmp_path)]) == 0
        written = list(tmp_path.glob("*.csv"))
        assert len(written) == len(FIGURES)

    def test_subprocess_entry(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "selftest"],
            capture_output=True, text=True, timeout=300,
        )
        assert proc.returncode == 0, proc.stderr

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_parallel(self, capsys):
        assert main(["parallel", "--order", "96", "--workers", "7",
                     "--depth", "2", "--repeat", "2", "--cutoff", "32"]) == 0
        out = capsys.readouterr().out
        assert "serial" in out and "speedup" in out
        # warm pool: fresh allocation per call reported as zero
        assert "0 fresh B/call after warm-up" in out

    def test_parallel_no_pool(self, capsys):
        assert main(["parallel", "--order", "64", "--repeat", "1",
                     "--cutoff", "32", "--no-pool"]) == 0
        out = capsys.readouterr().out
        assert "untracked (no pool)" in out


class TestJsonUniformity:
    """Every subcommand accepts --json and emits the benchmark schema."""

    ALL_COMMANDS = ("report", "figures", "memory", "parallel", "plan",
                    "fuzz", "serve", "selftest")

    @pytest.mark.parametrize("command", ALL_COMMANDS)
    def test_every_command_advertises_json(self, command, capsys):
        with pytest.raises(SystemExit):
            main([command, "--help"])
        assert "--json" in capsys.readouterr().out

    @pytest.mark.parametrize("argv", [
        ["memory", "--order", "256", "--json"],
        ["report", "--only", "section2", "--json"],
        ["plan", "--order", "48", "--json"],
        ["fuzz", "--cases", "10", "--max-dim", "12", "--json"],
        ["selftest", "--json"],
    ])
    def test_json_documents_share_the_bench_schema(self, argv, capsys):
        assert main(argv) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == 1
        assert doc["bench"].startswith(argv[0])  # plan -> "plan_compile"
        assert isinstance(doc["params"], dict)
        assert isinstance(doc["rows"], list)

    def test_figures_json(self, tmp_path, capsys):
        assert main(["figures", "--outdir", str(tmp_path), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["bench"] == "figures"
        assert all("path" in row for row in doc["rows"])

    def test_internal_error_exits_70(self, monkeypatch, capsys):
        import repro.harness.report as report_mod

        def boom(*args, **kwargs):
            raise RuntimeError("synthetic internal failure")

        monkeypatch.setattr(report_mod, "render", boom)
        assert main(["report"]) == 70
        err = capsys.readouterr().err
        assert "RuntimeError" in err and "synthetic" in err

    def test_check_failure_exits_1_not_70(self, monkeypatch, capsys):
        # a *failed check* (serve divergence) is exit 1, not 70: the two
        # must stay distinguishable for CI lanes
        import repro.serve

        fake = {"attempts": 5, "completed": 5, "rejected": 0, "shed": 0,
                "timeouts": 0, "errors": 0, "divergent": 1,
                "achieved_rate": 5.0, "duration_s": 1.0,
                "offered_rate": 5.0, "verified": True,
                "failures": ["divergence on 4x4x4 dtype=float64"],
                "mix": [], "service": {}}
        monkeypatch.setattr(repro.serve, "run_load", lambda **kw: fake)
        assert main(["serve", "--duration", "1", "--json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is False


class TestFigData:
    def test_write_series_roundtrip(self, tmp_path):
        p = write_series(tmp_path / "x.csv", ["a", "b"],
                         [(1, 2.5), (3, 4.5)])
        with p.open() as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == ["a", "b"]
        assert rows[1] == ["1", "2.5"]

    def test_export_all(self, tmp_path):
        paths = export_all_figures(tmp_path, fast=True)
        assert len(paths) == 5
        for p in paths:
            with p.open() as fh:
                rows = list(csv.reader(fh))
            assert len(rows) > 5          # header + data
            assert len(rows[0]) == 2      # x, y

    def test_fig2_series_content(self, tmp_path):
        paths = export_all_figures(tmp_path, fast=True)
        fig2 = next(p for p in paths if "fig2" in p.name)
        with fig2.open() as fh:
            rows = list(csv.reader(fh))[1:]
        ms = [int(r[0]) for r in rows]
        ratios = [float(r[1]) for r in rows]
        assert ms == sorted(ms)
        assert any(r > 1 for r in ratios) and any(r < 1 for r in ratios)
