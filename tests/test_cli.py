"""The ``python -m repro`` command-line interface."""

import csv
import subprocess
import sys

import pytest

from repro.__main__ import main
from repro.harness.figdata import FIGURES, export_all_figures, write_series


class TestMain:
    def test_selftest(self, capsys):
        assert main(["selftest"]) == 0
        out = capsys.readouterr().out
        assert "dgefmm: ok" in out
        assert "isda_eigh: ok" in out

    def test_memory(self, capsys):
        assert main(["memory", "--order", "512"]) == 0
        out = capsys.readouterr().out
        assert "DGEFMM" in out and "0.65" in out  # ~2/3 at order 512

    def test_report_single(self, capsys):
        assert main(["report", "--only", "section2"]) == 0
        out = capsys.readouterr().out
        assert "theoretical square cutoff: 12" in out

    def test_figures(self, tmp_path, capsys):
        assert main(["figures", "--outdir", str(tmp_path)]) == 0
        written = list(tmp_path.glob("*.csv"))
        assert len(written) == len(FIGURES)

    def test_subprocess_entry(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "selftest"],
            capture_output=True, text=True, timeout=300,
        )
        assert proc.returncode == 0, proc.stderr

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_parallel(self, capsys):
        assert main(["parallel", "--order", "96", "--workers", "7",
                     "--depth", "2", "--repeat", "2", "--cutoff", "32"]) == 0
        out = capsys.readouterr().out
        assert "serial" in out and "speedup" in out
        # warm pool: fresh allocation per call reported as zero
        assert "0 fresh B/call after warm-up" in out

    def test_parallel_no_pool(self, capsys):
        assert main(["parallel", "--order", "64", "--repeat", "1",
                     "--cutoff", "32", "--no-pool"]) == 0
        out = capsys.readouterr().out
        assert "untracked (no pool)" in out


class TestFigData:
    def test_write_series_roundtrip(self, tmp_path):
        p = write_series(tmp_path / "x.csv", ["a", "b"],
                         [(1, 2.5), (3, 4.5)])
        with p.open() as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == ["a", "b"]
        assert rows[1] == ["1", "2.5"]

    def test_export_all(self, tmp_path):
        paths = export_all_figures(tmp_path, fast=True)
        assert len(paths) == 5
        for p in paths:
            with p.open() as fh:
                rows = list(csv.reader(fh))
            assert len(rows) > 5          # header + data
            assert len(rows[0]) == 2      # x, y

    def test_fig2_series_content(self, tmp_path):
        paths = export_all_figures(tmp_path, fast=True)
        fig2 = next(p for p in paths if "fig2" in p.name)
        with fig2.open() as fh:
            rows = list(csv.reader(fh))[1:]
        ms = [int(r[0]) for r in rows]
        ratios = [float(r[1]) for r in rows]
        assert ms == sorted(ms)
        assert any(r > 1 for r in ratios) and any(r < 1 for r in ratios)
