"""The ``python -m repro`` command-line interface."""

import csv
import json
import subprocess
import sys

import pytest

from repro.__main__ import main
from repro.harness.figdata import FIGURES, export_all_figures, write_series


class TestMain:
    def test_selftest(self, capsys):
        assert main(["selftest"]) == 0
        out = capsys.readouterr().out
        assert "dgefmm: ok" in out
        assert "isda_eigh: ok" in out

    def test_memory(self, capsys):
        assert main(["memory", "--order", "512"]) == 0
        out = capsys.readouterr().out
        assert "DGEFMM" in out and "0.65" in out  # ~2/3 at order 512

    def test_report_single(self, capsys):
        assert main(["report", "--only", "section2"]) == 0
        out = capsys.readouterr().out
        assert "theoretical square cutoff: 12" in out

    def test_figures(self, tmp_path, capsys):
        assert main(["figures", "--outdir", str(tmp_path)]) == 0
        written = list(tmp_path.glob("*.csv"))
        assert len(written) == len(FIGURES)

    def test_subprocess_entry(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "selftest"],
            capture_output=True, text=True, timeout=300,
        )
        assert proc.returncode == 0, proc.stderr

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_parallel(self, capsys):
        assert main(["parallel", "--order", "96", "--workers", "7",
                     "--depth", "2", "--repeat", "2", "--cutoff", "32"]) == 0
        out = capsys.readouterr().out
        assert "serial" in out and "speedup" in out
        # warm pool: fresh allocation per call reported as zero
        assert "0 fresh B/call after warm-up" in out

    def test_parallel_no_pool(self, capsys):
        assert main(["parallel", "--order", "64", "--repeat", "1",
                     "--cutoff", "32", "--no-pool"]) == 0
        out = capsys.readouterr().out
        assert "untracked (no pool)" in out


class TestJsonUniformity:
    """Every subcommand accepts --json and emits the benchmark schema."""

    ALL_COMMANDS = ("report", "figures", "memory", "parallel", "plan",
                    "fuzz", "serve", "calibrate", "selftest")

    @pytest.mark.parametrize("command", ALL_COMMANDS)
    def test_every_command_advertises_json(self, command, capsys):
        with pytest.raises(SystemExit):
            main([command, "--help"])
        assert "--json" in capsys.readouterr().out

    @pytest.mark.parametrize("argv", [
        ["memory", "--order", "256", "--json"],
        ["report", "--only", "section2", "--json"],
        ["plan", "--order", "48", "--json"],
        ["fuzz", "--cases", "10", "--max-dim", "12", "--json"],
        ["calibrate", "--json"],
        ["selftest", "--json"],
    ])
    def test_json_documents_share_the_bench_schema(self, argv, capsys):
        assert main(argv) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == 1
        assert doc["bench"].startswith(argv[0])  # plan -> "plan_compile"
        assert isinstance(doc["params"], dict)
        assert isinstance(doc["rows"], list)

    def test_figures_json(self, tmp_path, capsys):
        assert main(["figures", "--outdir", str(tmp_path), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["bench"] == "figures"
        assert all("path" in row for row in doc["rows"])

    def test_internal_error_exits_70(self, monkeypatch, capsys):
        import repro.harness.report as report_mod

        def boom(*args, **kwargs):
            raise RuntimeError("synthetic internal failure")

        monkeypatch.setattr(report_mod, "render", boom)
        assert main(["report"]) == 70
        err = capsys.readouterr().err
        assert "RuntimeError" in err and "synthetic" in err

    def test_check_failure_exits_1_not_70(self, monkeypatch, capsys):
        # a *failed check* (serve divergence) is exit 1, not 70: the two
        # must stay distinguishable for CI lanes
        import repro.serve

        fake = {"attempts": 5, "completed": 5, "rejected": 0, "shed": 0,
                "timeouts": 0, "errors": 0, "divergent": 1,
                "achieved_rate": 5.0, "duration_s": 1.0,
                "offered_rate": 5.0, "verified": True,
                "failures": ["divergence on 4x4x4 dtype=float64"],
                "mix": [], "service": {}}
        monkeypatch.setattr(repro.serve, "run_load", lambda **kw: fake)
        assert main(["serve", "--duration", "1", "--json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is False


class TestCalibrateCli:
    def test_preset_human_output(self, capsys):
        assert main(["calibrate", "--preset", "C90"]) == 0
        out = capsys.readouterr().out
        assert "machine: C90" in out and "square crossover" in out

    def test_model_export_round_trips(self, tmp_path, capsys):
        import json as _json

        from repro.machines.calibrate import machine_from_json
        from repro.machines.presets import MACHINES

        out = tmp_path / "model.json"
        assert main(["calibrate", "--preset", "RS6000",
                     "--out", str(out)]) == 0
        capsys.readouterr()
        with out.open() as fh:
            mach = machine_from_json(_json.load(fh))
        assert mach == MACHINES["RS6000"]


class TestTuneCli:
    """The tune subcommands honour the JSON contract and exit taxonomy."""

    @pytest.mark.parametrize(
        "subcommand", ("measure", "search", "show", "apply")
    )
    def test_every_subcommand_advertises_json(self, subcommand, capsys):
        with pytest.raises(SystemExit):
            main(["tune", subcommand, "--help"])
        assert "--json" in capsys.readouterr().out

    def test_show_empty_directory_json(self, tmp_path, capsys):
        assert main(["tune", "show", "--dir", str(tmp_path), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["bench"] == "tune_show" and doc["schema"] == 1
        assert doc["rows"] == []
        assert doc["load"]["loaded"] == 0

    def test_search_show_apply_loop(self, tmp_path, capsys):
        """The CI tune-smoke lane in miniature: short-budget search
        writes a profile, show reads it back, apply hot-swaps it."""
        prof_dir = str(tmp_path / "profiles")
        assert main(["tune", "search", "--order", "64", "--budget", "5",
                     "--out", prof_dir, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["bench"] == "tune_search"
        assert len(doc["rows"]) == 1 and len(doc["saved"]) == 1
        assert doc["rows"][0]["measured"]["speedup"] is not None

        assert main(["tune", "show", "--dir", prof_dir, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert len(doc["rows"]) == 1
        assert doc["rows"][0]["stale"] is False

        assert main(["tune", "apply", "--dir", prof_dir, "--order", "64",
                     "--requests", "2", "--workers", "1", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True
        assert all(ph["exact"] == ph["requests"] for ph in doc["rows"])


class TestFigData:
    def test_write_series_roundtrip(self, tmp_path):
        p = write_series(tmp_path / "x.csv", ["a", "b"],
                         [(1, 2.5), (3, 4.5)])
        with p.open() as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == ["a", "b"]
        assert rows[1] == ["1", "2.5"]

    def test_export_all(self, tmp_path):
        paths = export_all_figures(tmp_path, fast=True)
        assert len(paths) == 5
        for p in paths:
            with p.open() as fh:
                rows = list(csv.reader(fh))
            assert len(rows) > 5          # header + data
            assert len(rows[0]) == 2      # x, y

    def test_fig2_series_content(self, tmp_path):
        paths = export_all_figures(tmp_path, fast=True)
        fig2 = next(p for p in paths if "fig2" in p.name)
        with fig2.open() as fh:
            rows = list(csv.reader(fh))[1:]
        ms = [int(r[0]) for r in rows]
        ratios = [float(r[1]) for r in rows]
        assert ms == sorted(ms)
        assert any(r > 1 for r in ratios) and any(r < 1 for r in ratios)
