"""Property-based tests for the extension modules."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cutoff import SimpleCutoff
from repro.core.dgefmm import dgefmm, zgefmm
from repro.core.stability import (
    UNIT_ROUNDOFF,
    strassen_growth,
    winograd_growth,
)
from repro.linalg import getrf, lu_reconstruct, lu_solve
from repro.linalg.inverse import strassen_inverse
from repro.models import (
    MemoryTrafficModel,
    OperationCountModel,
    WeightedOpsModel,
    strassen_cost,
)
from repro.models.predict import dgemm_cost

dims = st.integers(min_value=1, max_value=40)


class TestLuProperties:
    @given(n=st.integers(2, 48), seed=st.integers(0, 2**31),
           block=st.sampled_from([1, 8, 32]))
    @settings(max_examples=40, deadline=None)
    def test_palu_identity(self, n, seed, block):
        rng = np.random.default_rng(seed)
        a = np.asfortranarray(rng.uniform(-1, 1, (n, n)) + n * np.eye(n))
        lu, piv = getrf(a, block=block)
        p, l, u = lu_reconstruct(lu, piv)
        np.testing.assert_allclose(p @ a, l @ u, atol=1e-9 * n)

    @given(n=st.integers(2, 40), seed=st.integers(0, 2**31))
    @settings(max_examples=30, deadline=None)
    def test_solve_residual(self, n, seed):
        rng = np.random.default_rng(seed)
        a = np.asfortranarray(rng.uniform(-1, 1, (n, n)) + n * np.eye(n))
        b = rng.uniform(-1, 1, n)
        lu, piv = getrf(a)
        x = lu_solve(lu, piv, b)
        assert np.linalg.norm(a @ x - b) < 1e-9 * n

    @given(n=st.integers(2, 32), seed=st.integers(0, 2**31))
    @settings(max_examples=25, deadline=None)
    def test_inverse_roundtrip(self, n, seed):
        rng = np.random.default_rng(seed)
        x = rng.uniform(-1, 1, (n, n))
        a = np.asfortranarray(x @ x.T + n * np.eye(n))
        inv = strassen_inverse(a, base=8)
        np.testing.assert_allclose(a @ inv, np.eye(n), atol=1e-7 * n)


class TestComplexProperty:
    @given(m=dims, k=dims, n=dims, seed=st.integers(0, 2**31))
    @settings(max_examples=50, deadline=None)
    def test_zgefmm_contract(self, m, k, n, seed):
        rng = np.random.default_rng(seed)

        def z(p, q):
            return np.asfortranarray(
                rng.uniform(-1, 1, (p, q)) + 1j * rng.uniform(-1, 1, (p, q))
            )

        a, b, c = z(m, k), z(k, n), z(m, n)
        alpha, beta = complex(rng.uniform(-1, 1), rng.uniform(-1, 1)), 0.5j
        expect = alpha * (a @ b) + beta * c
        zgefmm(a, b, c, alpha, beta, cutoff=SimpleCutoff(6))
        np.testing.assert_allclose(c, expect, atol=1e-10)

    @given(m=dims, k=dims, n=dims, seed=st.integers(0, 2**31))
    @settings(max_examples=30, deadline=None)
    def test_complex_real_consistency(self, m, k, n, seed):
        """A complex multiply with zero imaginary parts equals the real
        multiply exactly (same code path, same schedule)."""
        rng = np.random.default_rng(seed)
        ar = np.asfortranarray(rng.uniform(-1, 1, (m, k)))
        br = np.asfortranarray(rng.uniform(-1, 1, (k, n)))
        cr = np.zeros((m, n), order="F")
        cz = np.zeros((m, n), dtype=complex, order="F")
        dgefmm(ar, br, cr, cutoff=SimpleCutoff(6))
        zgefmm(ar.astype(complex), br.astype(complex), cz,
               cutoff=SimpleCutoff(6))
        np.testing.assert_allclose(cz.real, cr, atol=1e-13)
        np.testing.assert_allclose(cz.imag, 0.0, atol=1e-13)


class TestModelProperties:
    models = st.sampled_from([
        OperationCountModel(),
        WeightedOpsModel(add_weight=3.0),
        WeightedOpsModel(add_weight=9.0, level2_weight=1.5),
        MemoryTrafficModel(cache_words=4096, word_cost=2.0),
    ])

    @given(model=models, m=st.integers(2, 64), k=st.integers(2, 64),
           n=st.integers(2, 64))
    @settings(max_examples=60, deadline=None)
    def test_costs_positive_and_monotone(self, model, m, k, n):
        c = model.mult_cost(m, k, n)
        assert c > 0
        assert model.mult_cost(m + 2, k, n) > c
        assert model.add_cost(m, n) > 0

    @given(model=models, m=st.integers(4, 96))
    @settings(max_examples=40, deadline=None)
    def test_full_strassen_never_beats_best_cutoff(self, model, m):
        """Under any model, the cutoff-free cost is >= the cost with
        the model's own one-step-optimal decisions (sanity of the
        predict machinery)."""
        from repro.core.cutoff import AlwaysRecurse, NeverRecurse

        always = strassen_cost(model, m, m, m, AlwaysRecurse())
        never = strassen_cost(model, m, m, m, NeverRecurse())
        assert never == dgemm_cost(model, m, m, m)
        assert min(always, never) > 0


class TestStabilityProperties:
    @given(d=st.integers(0, 8), m0=st.integers(1, 64))
    @settings(max_examples=60, deadline=None)
    def test_growth_positive_and_monotone(self, d, m0):
        f_s = strassen_growth(d, m0)
        f_w = winograd_growth(d, m0)
        assert f_s > 0 and f_w > 0
        assert strassen_growth(d + 1, m0) > f_s
        assert winograd_growth(d + 1, m0) > f_w

    @given(d=st.integers(1, 8), m0=st.integers(1, 64))
    @settings(max_examples=40, deadline=None)
    def test_winograd_pays_for_fewer_adds_in_stability(self, d, m0):
        """Winograd's 15-add reuse chains grow error faster than the
        original's 18 independent adds — a real trade, quantified."""
        assert winograd_growth(d, m0) > strassen_growth(d, m0)

    def test_unit_roundoff(self):
        assert UNIT_ROUNDOFF == np.finfo(np.float64).eps / 2
