"""Level 2 BLAS: DGEMV and DGER (the peeling fix-up kernels)."""

import numpy as np
import pytest

from repro.blas import dgemv, dger
from repro.context import ExecutionContext
from repro.errors import DimensionError
from repro.phantom import Phantom


@pytest.fixture
def setup(rng):
    a = np.asfortranarray(rng.standard_normal((7, 5)))
    x = rng.standard_normal(5)
    y = rng.standard_normal(7)
    return a, x, y


class TestDgemv:
    @pytest.mark.parametrize("alpha,beta", [(1.0, 0.0), (2.0, 0.5),
                                            (-1.0, 1.0), (0.5, -0.25)])
    def test_notrans(self, setup, alpha, beta):
        a, x, y = setup
        expect = alpha * (a @ x) + beta * y
        dgemv(a, x, y, alpha, beta)
        np.testing.assert_allclose(y, expect)

    @pytest.mark.parametrize("alpha,beta", [(1.0, 0.0), (0.3, 1.7)])
    def test_trans(self, setup, alpha, beta):
        a, x, y = setup
        expect = alpha * (a.T @ y) + beta * x
        dgemv(a, y, x, alpha, beta, trans=True)
        np.testing.assert_allclose(x, expect)

    def test_beta_zero_ignores_garbage(self, setup):
        a, x, _ = setup
        y = np.full(7, np.nan)
        dgemv(a, x, y, 1.0, 0.0)
        np.testing.assert_allclose(y, a @ x)

    def test_alpha_zero(self, setup):
        a, x, y = setup
        expect = 3.0 * y
        dgemv(a, x, y, 0.0, 3.0)
        np.testing.assert_allclose(y, expect)

    def test_wrong_x_length(self, setup):
        a, _, y = setup
        with pytest.raises(DimensionError):
            dgemv(a, np.zeros(6), y)

    def test_wrong_y_length(self, setup):
        a, x, _ = setup
        with pytest.raises(DimensionError):
            dgemv(a, x, np.zeros(6))

    def test_strided_view_input(self, rng):
        big = np.asfortranarray(rng.standard_normal((10, 10)))
        a = big[1:8, 2:7]  # strided view, like a peeled block
        x = rng.standard_normal(5)
        y = np.zeros(7)
        dgemv(a, x, y)
        np.testing.assert_allclose(y, a @ x)

    def test_dry_charges(self):
        ctx = ExecutionContext(dry=True)
        dgemv(Phantom(7, 5), Phantom(5), Phantom(7), ctx=ctx)
        assert ctx.mul_flops == 35
        assert ctx.kernel_calls["dgemv"] == 1


class TestDger:
    @pytest.mark.parametrize("alpha", [1.0, -0.5, 2.0])
    def test_update(self, setup, alpha):
        a, x, y = setup
        expect = a + alpha * np.outer(y, x)
        dger(y, x, a, alpha)
        np.testing.assert_allclose(a, expect)

    def test_alpha_zero_noop(self, setup):
        a, x, y = setup
        expect = a.copy()
        dger(y, x, a, 0.0)
        np.testing.assert_array_equal(a, expect)

    def test_dim_mismatch(self, setup):
        a, x, y = setup
        with pytest.raises(DimensionError):
            dger(x, x, a)  # x has length 5, A has 7 rows

    def test_row_view_target(self, rng):
        # the k-odd fix-up updates a sub-block view of C
        c = np.asfortranarray(rng.standard_normal((9, 9)))
        block = c[:8, :8]
        x = rng.standard_normal(8)
        y = rng.standard_normal(8)
        expect = block + np.outer(x, y)
        dger(x, y, block)
        np.testing.assert_allclose(c[:8, :8], expect)

    def test_dry_charges(self):
        ctx = ExecutionContext(dry=True)
        dger(Phantom(7), Phantom(5), Phantom(7, 5), ctx=ctx)
        assert ctx.mul_flops == 35 and ctx.add_flops == 35
