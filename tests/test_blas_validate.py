"""Validation helpers (xerbla-style argument checking)."""

import numpy as np
import pytest

from repro.blas.validate import (
    opshape,
    require_matrix,
    require_shape,
    require_vector,
    require_writable,
)
from repro.errors import ArgumentError, DimensionError
from repro.phantom import Phantom


class TestRequireMatrix:
    def test_accepts_numpy_and_phantom(self):
        assert require_matrix("r", "x", np.zeros((2, 3))) == (2, 3)
        assert require_matrix("r", "x", Phantom(4, 5)) == (4, 5)

    def test_rejects_vector(self):
        with pytest.raises(ArgumentError) as e:
            require_matrix("myroutine", "a", np.zeros(4))
        assert "myroutine" in str(e.value)
        assert "'a'" in str(e.value)

    def test_rejects_scalar(self):
        with pytest.raises(ArgumentError):
            require_matrix("r", "x", 3.0)

    def test_rejects_3d(self):
        with pytest.raises(ArgumentError):
            require_matrix("r", "x", np.zeros((2, 2, 2)))


class TestRequireVector:
    def test_length(self):
        assert require_vector("r", "x", np.zeros(7)) == 7
        assert require_vector("r", "x", Phantom(9)) == 9

    def test_rejects_matrix(self):
        with pytest.raises(ArgumentError):
            require_vector("r", "x", np.zeros((2, 2)))


class TestRequireShape:
    def test_match(self):
        require_shape("r", "x", np.zeros((2, 3)), (2, 3))

    def test_mismatch_message(self):
        with pytest.raises(DimensionError) as e:
            require_shape("dgemm", "c", np.zeros((2, 3)), (3, 3))
        assert "dgemm" in str(e.value) and "(3, 3)" in str(e.value)


class TestRequireWritable:
    def test_phantom_trivially_writable(self):
        require_writable("r", "x", Phantom(2, 2))

    def test_readonly_rejected(self):
        x = np.zeros((2, 2))
        x.flags.writeable = False
        with pytest.raises(ArgumentError):
            require_writable("r", "x", x)

    def test_view_of_readonly_rejected(self):
        x = np.zeros((4, 4))
        x.flags.writeable = False
        with pytest.raises(ArgumentError):
            require_writable("r", "x", x[:2, :2])


class TestOpshape:
    def test_plain_and_transposed(self):
        a = np.zeros((3, 5))
        assert opshape(a, False) == (3, 5)
        assert opshape(a, True) == (5, 3)

    def test_phantom(self):
        assert opshape(Phantom(3, 5), True) == (5, 3)
