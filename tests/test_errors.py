"""Error taxonomy: the right exception type at every failure point."""

import numpy as np
import pytest

from repro.errors import (
    ArgumentError,
    ConvergenceError,
    DimensionError,
    ReproError,
    WorkspaceError,
)


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (ArgumentError, DimensionError, WorkspaceError,
                    ConvergenceError):
            assert issubclass(exc, ReproError)

    def test_argument_error_is_value_error(self):
        assert issubclass(ArgumentError, ValueError)
        assert issubclass(DimensionError, ValueError)

    def test_workspace_error_is_runtime_error(self):
        assert issubclass(WorkspaceError, RuntimeError)

    def test_argument_error_message_names_routine(self):
        e = ArgumentError("dgemm", "nb", "must be positive")
        assert "dgemm" in str(e) and "nb" in str(e)
        assert e.routine == "dgemm" and e.argument == "nb"


class TestCatchability:
    """A caller can catch everything with one except clause."""

    def test_blas_errors_catchable(self):
        from repro.blas import dgemm

        with pytest.raises(ReproError):
            dgemm(np.zeros((2, 3)), np.zeros((4, 2)), np.zeros((2, 2)))

    def test_driver_errors_catchable(self):
        from repro.core.dgefmm import dgefmm

        with pytest.raises(ReproError):
            dgefmm(np.zeros((2, 2)), np.zeros((2, 2)), np.zeros((2, 2)),
                   scheme="nope")

    def test_workspace_errors_catchable(self):
        from repro.core.workspace import Workspace

        with pytest.raises(ReproError):
            Workspace().alloc(1, 1)

    def test_eigensolver_errors_catchable(self):
        from repro.eigensolver import isda_eigh

        with pytest.raises(ReproError):
            isda_eigh(np.zeros((2, 3)))
