"""Stability bounds and empirical error growth (Brent/Higham, Section 1)."""

import numpy as np
import pytest

from repro.core.cutoff import DepthCutoff, SimpleCutoff
from repro.core.dgefmm import dgefmm
from repro.core.stability import (
    UNIT_ROUNDOFF,
    measure_error,
    normwise_bound,
    standard_growth,
    strassen_growth,
    winograd_growth,
)


class TestGrowthFactors:
    def test_depth_zero_reduces_to_quadratic(self):
        # f(0, m0) = m0^2 + 5 m0 - 5 (Strassen), m0^2 + 6 m0 - 6 (Winograd)
        assert strassen_growth(0, 8) == 8**2 + 5 * 8 - 5
        assert winograd_growth(0, 8) == 8**2 + 6 * 8 - 6

    def test_monotone_in_depth(self):
        for d in range(5):
            assert strassen_growth(d + 1, 8) > strassen_growth(d, 8)
            assert winograd_growth(d + 1, 8) > winograd_growth(d, 8)

    def test_winograd_grows_faster_than_strassen(self):
        """The variant's longer chains: base 18 vs 12 per level."""
        assert winograd_growth(4, 8) > strassen_growth(4, 8)

    def test_earlier_cutoff_smaller_growth(self):
        """Fixed total order: larger base blocks = fewer levels = better
        stability (the quiet second benefit of cutoffs)."""
        # order 1024 = 2^7 * 8 = 2^5 * 32
        assert winograd_growth(5, 32) < winograd_growth(7, 8)

    def test_polynomial_not_exponential_in_m(self):
        """Growth for full recursion on order m is O(m^lg 18) ~ m^4.17 —
        polynomial, the core of the 'stable enough' verdict."""
        f1 = winograd_growth(10, 1)
        f2 = winograd_growth(11, 1)   # doubled order
        assert f2 / f1 < 2**4.2

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            strassen_growth(-1, 8)
        with pytest.raises(ValueError):
            winograd_growth(2, 0)

    def test_standard_growth(self):
        assert standard_growth(100) == 100.0


class TestEmpiricalError:
    @pytest.mark.parametrize("depth", [0, 1, 2, 3])
    def test_error_within_normwise_bound(self, depth):
        m = 128

        def mult(a, b, c):
            dgefmm(a, b, c, cutoff=DepthCutoff(depth))

        err, denom = measure_error(mult, m, seed=depth)
        m0 = m >> depth
        bound = winograd_growth(depth, m0) * UNIT_ROUNDOFF * denom
        assert err <= bound

    def test_error_grows_gently_with_depth(self):
        """Measured error rises with recursion depth but stays tiny —
        the practical upshot of the stability analyses."""
        m = 128
        errs = []
        for depth in range(4):
            def mult(a, b, c, d=depth):
                dgefmm(a, b, c, cutoff=DepthCutoff(d))
            err, denom = measure_error(mult, m, seed=7)
            errs.append(err / (UNIT_ROUNDOFF * denom))
        # deepest recursion within ~64x of the standard algorithm's error
        assert errs[3] / max(errs[0], 1.0) < 64
        # and absolutely tiny: < 1e-11 on unit-scaled data
        assert errs[3] * UNIT_ROUNDOFF < 1e-11

    def test_bound_helper(self, rng):
        a = np.asfortranarray(rng.uniform(-1, 1, (64, 64)))
        b = np.asfortranarray(rng.uniform(-1, 1, (64, 64)))
        bd = normwise_bound(a, b, 2, 16)
        assert bd == pytest.approx(
            winograd_growth(2, 16) * UNIT_ROUNDOFF
            * np.max(np.abs(a)) * np.max(np.abs(b))
        )

    def test_strassen_original_also_bounded(self):
        from repro.comparators import cray_sgemms

        m, depth = 128, 2

        def mult(a, b, c):
            cray_sgemms(a, b, c, cutoff=SimpleCutoff(m >> depth))

        err, denom = measure_error(mult, m, seed=3)
        bound = strassen_growth(depth, m >> depth) * UNIT_ROUNDOFF * denom
        assert err <= bound
