"""The traversal core: unit behaviour + decision-trace equivalence.

The tentpole property: every walker of the DGEFMM recursion — the eager
driver, the plan compiler, and the closed-form analytics — consumes one
decision kernel (:func:`repro.core.traversal.decide`), so their
decision traces must agree *node for node* over random shapes, cutoffs,
schemes, and peeling sides.  The property test draws from that space
with hypothesis (derandomized: fixed seeds, reproducible in CI) and
cross-checks three independent representations:

- the live driver's ``RecursionEvent`` stream (``trace=True``);
- the compiled plan's embedded EVENT ops;
- ``recursion_profile``'s closed-form node counts.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, example, given, settings
from hypothesis import strategies as st

from repro.context import ExecutionContext
from repro.core.config import GemmConfig
from repro.core.cutoff import (
    AlwaysRecurse,
    DepthCutoff,
    HybridCutoff,
    NeverRecurse,
    SimpleCutoff,
    TheoreticalCutoff,
)
from repro.core.dgefmm import dgefmm
from repro.core.recursion import recursion_profile
from repro.core.schemes import SCHEME_NAMES
from repro.core.traversal import (
    LEVELS,
    Base,
    Peel,
    Recurse,
    decide,
    peel_split,
    pick_level,
)
from repro.plan.compiler import compile_plan, signature_for
from repro.plan.ops import OP_EVENT


class TestPeelSplit:
    def test_even_unchanged(self):
        assert peel_split(4, 6, 8) == (4, 6, 8)

    def test_odd_stripped(self):
        assert peel_split(5, 7, 9) == (4, 6, 8)
        assert peel_split(1, 1, 1) == (0, 0, 0)

    def test_mod3_divisors(self):
        """Non-2x2 partition shapes peel to the next lower multiple."""
        assert peel_split(9, 6, 12, (3, 3, 3)) == (9, 6, 12)
        assert peel_split(10, 7, 11, (3, 3, 3)) == (9, 6, 9)
        assert peel_split(2, 2, 2, (3, 3, 3)) == (0, 0, 0)

    def test_mixed_divisors(self):
        assert peel_split(10, 9, 8, (2, 3, 2)) == (10, 9, 8)
        assert peel_split(11, 10, 9, (2, 3, 2)) == (10, 9, 8)


class TestPickLevel:
    @pytest.mark.parametrize("scheme,beta_zero,expect", [
        ("auto", True, ("s1b0", "auto")),
        ("auto", False, ("s2", "auto")),
        ("strassen2", True, ("s2", "strassen2")),
        ("strassen2", False, ("s2", "strassen2")),
        ("strassen1", True, ("s1b0", "strassen1")),
        ("strassen1", False, ("s1g", "strassen1_general")),
        ("strassen1_general", True, ("s1g", "strassen1_general")),
        ("strassen1_general", False, ("s1g", "strassen1_general")),
        ("textbook", True, ("tb", "textbook")),
        ("textbook", False, ("tb", "textbook")),
        ("bdpz", True, ("bdpz", "bdpz")),
        ("bdpz", False, ("bdpz", "bdpz")),
        ("laderman", True, ("l23", "laderman")),
        ("laderman", False, ("l23", "laderman")),
    ])
    def test_dispatch_table(self, scheme, beta_zero, expect):
        assert pick_level(scheme, beta_zero) == expect

    def test_unknown_scheme_raises(self):
        with pytest.raises(ValueError):
            pick_level("winograd", True)

    def test_level_child_counts(self):
        """Product counts per level: the 2x2 schedules spawn 7 children,
        the ⟨3,3,3;23⟩ Laderman level 23."""
        assert LEVELS == {"s1b0": 7, "s1g": 7, "s2": 7, "tb": 7,
                          "bdpz": 7, "l23": 23}


class TestDecide:
    def test_stop_returns_base(self):
        node = decide(8, 8, 8, 0, "auto", True, NeverRecurse())
        assert isinstance(node, Base)
        assert (node.m, node.k, node.n, node.depth) == (8, 8, 8, 0)

    def test_tiny_dims_stop_even_when_criterion_recurses(self):
        assert isinstance(
            decide(1, 64, 64, 0, "auto", True, AlwaysRecurse()), Base
        )

    def test_even_recurse_node(self):
        node = decide(8, 12, 16, 2, "auto", True, AlwaysRecurse())
        assert isinstance(node, Recurse) and not isinstance(node, Peel)
        assert not node.peeled
        assert node.level == "s1b0" and node.child_scheme == "auto"
        assert node.children == 7
        assert node.child_dims == (4, 6, 8)

    def test_odd_dims_peel_node(self):
        node = decide(9, 12, 17, 0, "strassen2", False, AlwaysRecurse())
        assert isinstance(node, Peel) and node.peeled
        assert (node.mp, node.kp, node.np_) == (8, 12, 16)
        assert node.child_dims == (4, 6, 8)

    def test_textbook_has_seven_children(self):
        node = decide(8, 8, 8, 0, "textbook", True, AlwaysRecurse())
        assert node.level == "tb" and node.children == 7

    def test_laderman_partitions_by_three(self):
        node = decide(27, 27, 27, 0, "laderman", True, AlwaysRecurse())
        assert isinstance(node, Recurse) and not node.peeled
        assert node.level == "l23" and node.children == 23
        assert node.divisors == (3, 3, 3)
        assert node.child_dims == (9, 9, 9)

    def test_laderman_peels_to_multiple_of_three(self):
        node = decide(28, 29, 31, 0, "laderman", False, AlwaysRecurse())
        assert isinstance(node, Peel) and node.peeled
        assert (node.mp, node.kp, node.np_) == (27, 27, 30)
        assert node.child_dims == (9, 9, 10)

    def test_bdpz_is_a_seven_product_2x2_level(self):
        node = decide(8, 8, 8, 0, "bdpz", False, AlwaysRecurse())
        assert node.level == "bdpz" and node.children == 7
        assert node.divisors == (2, 2, 2)

    def test_depth_reaches_criterion(self):
        crit = DepthCutoff(2)
        assert isinstance(decide(64, 64, 64, 2, "auto", True, crit), Base)
        assert isinstance(
            decide(64, 64, 64, 1, "auto", True, crit), Recurse
        )

    def test_nodes_frozen_and_hashable(self):
        a = decide(8, 8, 8, 0, "auto", True, AlwaysRecurse())
        b = decide(8, 8, 8, 0, "auto", True, AlwaysRecurse())
        assert a == b and hash(a) == hash(b)


# ---------------------------------------------------------------------- #
_CUTOFFS = (
    SimpleCutoff(4),
    SimpleCutoff(8),
    SimpleCutoff(16),
    HybridCutoff(tau=8, tau_m=6, tau_k=6, tau_n=6),
    TheoreticalCutoff(),
    DepthCutoff(1),
    DepthCutoff(2),
    DepthCutoff(3),
    AlwaysRecurse(),
    NeverRecurse(),
)
_SCHEMES = SCHEME_NAMES  # the full registry, non-2x2 families included


def _event_tuples(events):
    return [(e.action, e.m, e.k, e.n, e.depth, e.scheme) for e in events]


@settings(max_examples=80, deadline=None, derandomize=True,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    m=st.integers(1, 40),
    k=st.integers(1, 40),
    n=st.integers(1, 40),
    ci=st.integers(0, len(_CUTOFFS) - 1),
    si=st.integers(0, len(_SCHEMES) - 1),
    peel=st.sampled_from(["tail", "head"]),
    beta=st.sampled_from([0.0, 1.5]),
)
@example(m=33, k=17, n=29, ci=1, si=0, peel="tail", beta=0.0)
@example(m=32, k=32, n=32, ci=6, si=3, peel="tail", beta=1.5)
@example(m=25, k=25, n=25, ci=0, si=4, peel="head", beta=0.0)
@example(m=40, k=3, n=40, ci=2, si=1, peel="tail", beta=1.5)
@example(m=1, k=40, n=40, ci=8, si=0, peel="tail", beta=0.0)
@example(m=27, k=27, n=27, ci=1, si=6, peel="tail", beta=0.0)
@example(m=28, k=30, n=31, ci=0, si=6, peel="head", beta=1.5)
@example(m=32, k=32, n=32, ci=6, si=5, peel="tail", beta=1.5)
def test_decision_trace_equivalence(m, k, n, ci, si, peel, beta):
    """Eager events == compiled-plan events; both match the closed-form
    profile's node counts — for every shape/cutoff/scheme/peel/beta."""
    crit = _CUTOFFS[ci]
    scheme = _SCHEMES[si]
    cfg = GemmConfig(scheme=scheme, peel=peel, cutoff=crit)

    rng = np.random.default_rng(m * 1663 + k * 97 + n)
    a = np.asfortranarray(rng.standard_normal((m, k)))
    b = np.asfortranarray(rng.standard_normal((k, n)))
    c = np.asfortranarray(rng.standard_normal((m, n)))
    ctx = ExecutionContext(trace=True)
    dgefmm(a, b, c, 1.0, beta, cutoff=crit, scheme=scheme, peel=peel,
           ctx=ctx)
    live = _event_tuples(ctx.events)

    sig = signature_for("serial", m, k, n, False, False, False,
                        beta == 0.0, "float64", cfg)
    plan = compile_plan(sig)
    compiled = _event_tuples(
        op[1] for op in plan.ops if op[0] == OP_EVENT
    )
    assert compiled == live

    prof = recursion_profile(m, k, n, crit, scheme=scheme)
    by_action = {"base": 0, "recurse": 0, "peel": 0}
    for action, *_rest in live:
        by_action[action] += 1
    assert prof["base"] == by_action["base"]
    assert prof["recurse"] == by_action["recurse"]
    assert prof["peel"] == by_action["peel"]
    assert prof["max_depth"] == max(
        (t[4] for t in live), default=0
    )
    assert prof["mul_flops"] == sum(
        float(t[1]) * t[2] * t[3] for t in live if t[0] == "base"
    )
    assert prof["base_shapes"] == {
        shape: cnt
        for shape, cnt in plan.counts["base_shapes"].items()
    }
