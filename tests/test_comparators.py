"""Comparator codes: DGEMMW, ESSL DGEMMS, CRAY SGEMMS, Strassen-original."""

import numpy as np
import pytest

from repro.comparators import (
    cray_sgemms,
    dgemmw,
    essl_dgemms,
    essl_dgemms_general,
    strassen_original,
)
from repro.context import ExecutionContext
from repro.core.cutoff import AlwaysRecurse, SimpleCutoff
from repro.core.workspace import Workspace
from repro.errors import DimensionError
from repro.phantom import Phantom

CUT = SimpleCutoff(8)
SHAPES = [(16, 16, 16), (17, 19, 23), (33, 9, 65), (2, 2, 2), (5, 3, 4),
          (40, 40, 1), (1, 7, 5)]


class TestStrassenOriginal:
    @pytest.mark.parametrize("m,k,n", [(16, 16, 16), (8, 12, 4),
                                       (32, 16, 64)])
    @pytest.mark.parametrize("alpha", [1.0, -2.0])
    def test_product(self, mats, m, k, n, alpha):
        a, b, c = mats(m, k, n)
        strassen_original(a, b, c, alpha, cutoff=CUT)
        np.testing.assert_allclose(c, alpha * (a @ b), atol=1e-10)

    def test_odd_recursion_point_rejected(self, mats):
        a, b, c = mats(18, 18, 18)  # 18 -> 9 odd at depth 1
        with pytest.raises(DimensionError):
            strassen_original(a, b, c, cutoff=AlwaysRecurse())

    def test_seven_multiplies_per_level(self, mats):
        a, b, c = mats(16, 16, 16)
        ctx = ExecutionContext()
        strassen_original(a, b, c, cutoff=SimpleCutoff(4), ctx=ctx)
        assert ctx.kernel_calls["dgemm"] == 49

    def test_eighteen_adds_per_level(self, mats):
        a, b, c = mats(16, 16, 16)
        ctx = ExecutionContext()
        strassen_original(a, b, c, cutoff=SimpleCutoff(9), ctx=ctx)
        adds = sum(ctx.kernel_calls[k]
                   for k in ("madd", "msub", "accum", "axpby"))
        assert adds == 18  # one level of the original construction


class TestDgemmw:
    @pytest.mark.parametrize("m,k,n", SHAPES)
    @pytest.mark.parametrize("alpha,beta", [(1.0, 0.0), (0.5, -2.0),
                                            (1.0, 1.0)])
    def test_correct(self, mats, m, k, n, alpha, beta):
        a, b, c = mats(m, k, n)
        expect = alpha * (a @ b) + beta * c
        dgemmw(a, b, c, alpha, beta, cutoff=CUT)
        np.testing.assert_allclose(c, expect, atol=1e-10)

    @pytest.mark.parametrize("ta,tb", [(True, False), (False, True),
                                       (True, True)])
    def test_transposes(self, rng, ta, tb):
        m, k, n = 21, 34, 27
        a = np.asfortranarray(rng.standard_normal((k, m) if ta else (m, k)))
        b = np.asfortranarray(rng.standard_normal((n, k) if tb else (k, n)))
        c = np.asfortranarray(rng.standard_normal((m, n)))
        opa, opb = (a.T if ta else a), (b.T if tb else b)
        expect = 0.5 * (opa @ opb) + 0.25 * c
        dgemmw(a, b, c, 0.5, 0.25, ta, tb, cutoff=CUT)
        np.testing.assert_allclose(c, expect, atol=1e-10)

    def test_uses_dynamic_padding_not_peeling(self):
        ctx = ExecutionContext(dry=True, trace=True)
        dgemmw(Phantom(65, 65), Phantom(65, 65), Phantom(65, 65),
               cutoff=SimpleCutoff(16), ctx=ctx)
        assert any(e.action == "pad" for e in ctx.events)
        assert ctx.kernel_calls.get("dger", 0) == 0   # no peel fix-ups
        assert ctx.kernel_calls.get("dgemv", 0) == 0

    def test_general_case_uses_product_buffer(self):
        """mn + (mk + kn)/3-ish footprint, versus DGEFMM's (sum)/3."""
        m = 512
        ctx = ExecutionContext(dry=True)
        ws = Workspace(dry=True)
        dgemmw(Phantom(m, m), Phantom(m, m), Phantom(m, m), 1.0, 1.0,
               cutoff=SimpleCutoff(16), ctx=ctx, workspace=ws)
        coeff = ws.peak_elements / m**2
        assert coeff == pytest.approx(5 / 3, abs=0.02)

    def test_beta0_memory_matches_dgefmm(self):
        m = 512
        ws = Workspace(dry=True)
        dgemmw(Phantom(m, m), Phantom(m, m), Phantom(m, m), 1.0, 0.0,
               cutoff=SimpleCutoff(16), ctx=ExecutionContext(dry=True),
               workspace=ws)
        assert ws.peak_elements / m**2 == pytest.approx(2 / 3, abs=0.01)


class TestEssl:
    @pytest.mark.parametrize("m,k,n", SHAPES)
    def test_multiply_only(self, mats, m, k, n):
        a, b, c = mats(m, k, n)
        essl_dgemms(a, b, c, cutoff=CUT)
        np.testing.assert_allclose(c, a @ b, atol=1e-10)

    def test_ignores_c_contents(self, mats):
        a, b, c = mats(12, 12, 12)
        c[:] = np.nan
        essl_dgemms(a, b, c, cutoff=CUT)
        np.testing.assert_allclose(c, a @ b, atol=1e-10)

    @pytest.mark.parametrize("alpha,beta", [(0.5, 1.5), (2.0, 0.0),
                                            (1.0, 1.0)])
    def test_general_wrapper(self, mats, alpha, beta):
        a, b, c = mats(14, 18, 10)
        expect = alpha * (a @ b) + beta * c
        essl_dgemms_general(a, b, c, alpha, beta, cutoff=CUT)
        np.testing.assert_allclose(c, expect, atol=1e-10)

    def test_general_wrapper_buffer_cost(self):
        """The paper's extra caller loop: general case costs an extra
        m*n buffer over the multiply-only call."""
        m = 256
        def peak(alpha, beta):
            ws = Workspace(dry=True)
            essl_dgemms_general(
                Phantom(m, m), Phantom(m, m), Phantom(m, m), alpha, beta,
                cutoff=SimpleCutoff(16), ctx=ExecutionContext(dry=True),
                workspace=ws)
            return ws.peak_elements
        assert peak(0.5, 1.0) - peak(1.0, 0.0) == pytest.approx(m * m)

    def test_transpose(self, rng):
        a = np.asfortranarray(rng.standard_normal((13, 9)))
        b = np.asfortranarray(rng.standard_normal((13, 11)))
        c = np.zeros((9, 11), order="F")
        essl_dgemms(a, b, c, transa=True, cutoff=CUT)
        np.testing.assert_allclose(c, a.T @ b, atol=1e-10)


class TestCray:
    @pytest.mark.parametrize("m,k,n", SHAPES)
    @pytest.mark.parametrize("alpha,beta", [(1.0, 0.0), (0.5, -2.0)])
    def test_correct(self, mats, m, k, n, alpha, beta):
        a, b, c = mats(m, k, n)
        expect = alpha * (a @ b) + beta * c
        cray_sgemms(a, b, c, alpha, beta, cutoff=CUT)
        np.testing.assert_allclose(c, expect, atol=1e-10)

    def test_memory_much_larger_than_dgefmm(self):
        """The Table 1 story: the straightforward original-Strassen
        scheme needs several m^2, versus DGEFMM's 2/3."""
        m = 512
        ws = Workspace(dry=True)
        cray_sgemms(Phantom(m, m), Phantom(m, m), Phantom(m, m), 1.0, 0.0,
                    cutoff=SimpleCutoff(16), ctx=ExecutionContext(dry=True),
                    workspace=ws)
        coeff = ws.peak_elements / m**2
        assert 2.5 < coeff < 3.2

    def test_uses_original_recursion(self, mats):
        """7 multiplies but 18 adds per level (not Winograd's 15)."""
        a, b, c = mats(16, 16, 16)
        ctx = ExecutionContext()
        cray_sgemms(a, b, c, 1.0, 0.0, cutoff=SimpleCutoff(9), ctx=ctx)
        assert ctx.kernel_calls["dgemm"] == 7
        adds = sum(ctx.kernel_calls[k]
                   for k in ("madd", "msub", "accum", "axpby"))
        assert adds == 18


class TestBailey:
    """Bailey's (mk+kn+mn)/3 scheme for Strassen's original algorithm."""

    @pytest.mark.parametrize("m,k,n", SHAPES)
    @pytest.mark.parametrize("alpha,beta", [(1.0, 0.0), (0.5, -2.0),
                                            (1.0, 1.0)])
    def test_correct(self, mats, m, k, n, alpha, beta):
        from repro.comparators import bailey_strassen

        a, b, c = mats(m, k, n)
        expect = alpha * (a @ b) + beta * c
        bailey_strassen(a, b, c, alpha, beta, cutoff=CUT)
        np.testing.assert_allclose(c, expect, atol=1e-10)

    def test_memory_is_one_m_squared(self):
        """The documented (mk + kn + mn)/3 — measured exactly."""
        from repro.comparators import bailey_strassen

        m = 1024
        ws = Workspace(dry=True)
        bailey_strassen(Phantom(m, m), Phantom(m, m), Phantom(m, m),
                        1.0, 0.0, cutoff=SimpleCutoff(16),
                        ctx=ExecutionContext(dry=True), workspace=ws)
        assert ws.peak_elements / m**2 == pytest.approx(1.0, abs=0.01)

    def test_far_leaner_than_straightforward_original(self):
        """Bailey 1.0 m^2 vs the straightforward CRAY-style ~3 m^2 for
        the same algorithm — the memory design space the paper maps."""
        from repro.comparators import bailey_strassen, cray_sgemms

        m = 512

        def peak(fn):
            ws = Workspace(dry=True)
            fn(Phantom(m, m), Phantom(m, m), Phantom(m, m), 1.0, 0.0,
               cutoff=SimpleCutoff(16), ctx=ExecutionContext(dry=True),
               workspace=ws)
            return ws.peak_elements

        assert peak(bailey_strassen) < 0.4 * peak(cray_sgemms)

    def test_seven_multiplies_and_original_adds(self, mats):
        from repro.comparators import bailey_strassen

        a, b, c = mats(16, 16, 16)
        ctx = ExecutionContext()
        bailey_strassen(a, b, c, 1.0, 0.0, cutoff=SimpleCutoff(9), ctx=ctx)
        assert ctx.kernel_calls["dgemm"] == 7
        adds = sum(ctx.kernel_calls[k]
                   for k in ("madd", "msub", "accum", "axpby"))
        copies = ctx.kernel_calls["mcopy"]
        # 10 input adds + 8 combination ops, plus 2 copies (the price of
        # the single product temporary)
        assert adds == 18
        assert copies == 2

    def test_transposes(self, rng):
        from repro.comparators import bailey_strassen

        a = np.asfortranarray(rng.standard_normal((18, 22)))
        b = np.asfortranarray(rng.standard_normal((26, 18)))
        c = np.zeros((22, 26), order="F")
        bailey_strassen(a, b, c, transa=True, transb=True, cutoff=CUT)
        np.testing.assert_allclose(c, a.T @ b.T, atol=1e-10)
