"""Simulated-timing wrappers (harness.simtime)."""

import pytest

from repro.core.cutoff import HybridCutoff, NeverRecurse, SimpleCutoff
from repro.harness.simtime import (
    paper_hybrid_cutoff,
    paper_simple_cutoff,
    sim_cray,
    sim_dgefmm,
    sim_dgemm,
    sim_dgemmw,
    sim_essl,
)
from repro.machines.presets import C90, RS6000, T3D, VENDOR_GAIN


class TestCutoffBuilders:
    def test_hybrid_params_from_tables(self):
        c = paper_hybrid_cutoff("RS6000")
        assert c == HybridCutoff(199, 75, 125, 95)
        c = paper_hybrid_cutoff("T3D")
        assert c == HybridCutoff(325, 125, 75, 109)

    def test_simple_from_table2(self):
        assert paper_simple_cutoff("C90") == SimpleCutoff(129)

    def test_unknown_machine(self):
        with pytest.raises(KeyError):
            paper_hybrid_cutoff("VAX")


class TestSimWrappers:
    def test_all_positive(self):
        for fn in (sim_dgemm,):
            assert fn(RS6000, 100, 100, 100) > 0
        for fn in (sim_dgefmm, sim_dgemmw, sim_essl, sim_cray):
            assert fn(RS6000, 100, 100, 100) > 0

    def test_dgemm_scales_cubically(self):
        t1 = sim_dgemm(RS6000, 200, 200, 200)
        t2 = sim_dgemm(RS6000, 400, 400, 400)
        assert 7.0 < t2 / t1 < 9.0  # ~8x plus overhead terms

    def test_machine_ordering_by_rate(self):
        """The C90 is far faster than the other two in absolute terms."""
        for m in (256, 512):
            assert sim_dgemm(C90, m, m, m) < sim_dgemm(RS6000, m, m, m)
            assert sim_dgemm(C90, m, m, m) < sim_dgemm(T3D, m, m, m)

    def test_tuned_machine_accepted_by_vendor_sims(self):
        tuned = RS6000.tuned(VENDOR_GAIN["RS6000"])
        t = sim_essl(tuned, 512, 512, 512)
        assert t < sim_essl(RS6000, 512, 512, 512)

    def test_vendor_default_cutoff_resolves_through_tuned_name(self):
        """`RS6000(gain=0.93)` must still map onto RS6000's cutoffs."""
        tuned = RS6000.tuned(0.93)
        # would raise KeyError if the name mangling leaked through
        assert sim_cray(tuned, 300, 300, 300) > 0

    def test_dgefmm_cutoff_override(self):
        m = 1024
        t_rec = sim_dgefmm(RS6000, m, m, m)
        t_none = sim_dgefmm(RS6000, m, m, m, cutoff=NeverRecurse())
        assert t_rec < t_none

    def test_general_case_costs_more_for_buffer_codes(self):
        """ESSL/DGEMMW pay an extra pass when beta != 0."""
        m = 768
        assert sim_essl(RS6000, m, m, m, 0.5, 0.5) > sim_essl(
            RS6000, m, m, m, 1.0, 0.0)
        assert sim_dgemmw(RS6000, m, m, m, 0.5, 0.5) > sim_dgemmw(
            RS6000, m, m, m, 1.0, 0.0)

    def test_dgefmm_general_case_nearly_free(self):
        """STRASSEN2 handles beta != 0 without a product buffer."""
        m = 768
        t0 = sim_dgefmm(RS6000, m, m, m, 1.0, 0.0)
        t1 = sim_dgefmm(RS6000, m, m, m, 0.5, 0.5)
        assert t1 / t0 < 1.02
